// Package stats provides the probability and descriptive-statistics
// substrate for the SSTA engine: standard-normal math, moment summaries,
// histograms, empirical CDFs and distribution distances.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// invSqrt2Pi is 1/sqrt(2*pi), the normalization of the standard normal pdf.
const invSqrt2Pi = 0.3989422804014327

// NormPDF returns the standard normal density phi(x).
func NormPDF(x float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormCDF returns the standard normal distribution function Phi(x).
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormTP returns Phi(z) and phi(z) from one shared exponential — the pair
// every Clark max step consumes. The CDF uses Hart's rational approximation
// (the double-precision variant popularized by West), whose body and tail
// are both built around exp(-z^2/2); evaluating the density from the same
// exponential makes the pair roughly the price of one Erfc call. Absolute
// error of the CDF is below 1e-14; the density is bit-identical to
// NormPDF. The symmetry Phi(z) + Phi(-z) = 1 is exact by construction.
//
// NormTP is the hot-path companion of NormCDF, not a replacement: NormCDF
// (erfc-based) remains the reference used by propagation, quantiles and
// tests, while the criticality chain kernels — which consume hundreds of
// millions of (Phi, phi) pairs per run — use NormTP.
func NormTP(z float64) (cdf, pdf float64) {
	x := math.Abs(z)
	e := math.Exp(-0.5 * x * x)
	pdf = invSqrt2Pi * e
	var c float64
	switch {
	case x < 7.07106781186547:
		n := 3.52624965998911e-02*x + 0.700383064443688
		n = n*x + 6.37396220353165
		n = n*x + 33.912866078383
		n = n*x + 112.079291497871
		n = n*x + 221.213596169931
		n = n*x + 220.206867912376
		d := 8.83883476483184e-02*x + 1.75566716318264
		d = d*x + 16.064177579207
		d = d*x + 86.7807322029461
		d = d*x + 296.564248779674
		d = d*x + 637.333633378831
		d = d*x + 793.826512519948
		d = d*x + 440.413735824752
		c = e * n / d
	default:
		lo := x + 0.65
		lo = x + 4/lo
		lo = x + 3/lo
		lo = x + 2/lo
		lo = x + 1/lo
		c = e / (lo * 2.506628274631)
	}
	if z > 0 {
		c = 1 - c
	}
	return c, pdf
}

// NormQuantile returns Phi^-1(p) for p in (0, 1). It uses the Acklam
// rational approximation refined by one Halley step, accurate to ~1e-15.
// p <= 0 returns -Inf and p >= 1 returns +Inf.
func NormQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// Summary holds the first two moments plus extrema of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. The standard deviation uses the
// unbiased (n-1) denominator; a single sample reports Std = 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Histogram is a fixed-range equal-width histogram. Samples outside
// [Lo, Hi] are clamped into the first/last bin so nothing is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bins, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs hi > lo, got [%g, %g]", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinBounds returns the [lo, hi) interval of bin b.
func (h *Histogram) BinBounds(b int) (float64, float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(b)*w, h.Lo + float64(b+1)*w
}

// Fraction returns the fraction of samples falling in bin b.
func (h *Histogram) Fraction(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.total)
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied and sorted).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: ECDF needs at least one sample")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// Eval returns P(X <= x) under the empirical distribution.
func (e *ECDF) Eval(x float64) float64 {
	// Number of samples <= x.
	n := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(n) / float64(len(e.sorted))
}

// Quantile returns the p-quantile for p in [0,1] using the nearest-rank
// definition.
func (e *ECDF) Quantile(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Min and Max return the sample extremes.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// KSAgainst returns the Kolmogorov-Smirnov distance between the ECDF and a
// reference CDF evaluated via cdf(x).
func (e *ECDF) KSAgainst(cdf func(float64) float64) float64 {
	var d float64
	n := float64(len(e.sorted))
	for i, x := range e.sorted {
		f := cdf(x)
		d = math.Max(d, math.Abs(float64(i+1)/n-f))
		d = math.Max(d, math.Abs(float64(i)/n-f))
	}
	return d
}

// KSTwoSample returns the two-sample KS distance between two ECDFs.
func KSTwoSample(a, b *ECDF) float64 {
	var d float64
	for _, x := range a.sorted {
		d = math.Max(d, math.Abs(a.Eval(x)-b.Eval(x)))
	}
	for _, x := range b.sorted {
		d = math.Max(d, math.Abs(a.Eval(x)-b.Eval(x)))
	}
	return d
}
