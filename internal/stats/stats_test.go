package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormPDF(t *testing.T) {
	if got := NormPDF(0); math.Abs(got-0.3989422804014327) > 1e-15 {
		t.Fatalf("NormPDF(0) = %v", got)
	}
	if got := NormPDF(1); math.Abs(got-0.24197072451914337) > 1e-15 {
		t.Fatalf("NormPDF(1) = %v", got)
	}
	if NormPDF(-2) != NormPDF(2) {
		t.Fatal("NormPDF not symmetric")
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormCDF(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestNormQuantileRoundtrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-5, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1 - 1e-5, 1 - 1e-10} {
		x := NormQuantile(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-10*math.Max(1, 1/math.Min(p, 1-p)*1e-4) && math.Abs(back-p) > 1e-12 {
			t.Errorf("roundtrip p=%g -> x=%g -> %g", p, x, back)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("NormQuantile boundary values wrong")
	}
	if !math.IsNaN(NormQuantile(math.NaN())) {
		t.Fatal("NormQuantile(NaN) should be NaN")
	}
}

func TestNormQuantileQuick(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p == 0 {
			p = 0.5
		}
		x := NormQuantile(p)
		return math.Abs(NormCDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	// Sample std with n-1 denominator: sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("Std = %g", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("extremes = %g, %g", s.Min, s.Max)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary should be zero")
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.3, 0.3, 0.6, 0.9, -5, 7} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -5 clamps to bin 0, 7 clamps to bin 3.
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[3] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	lo, hi := h.BinBounds(1)
	if lo != 0.25 || hi != 0.5 {
		t.Fatalf("BinBounds(1) = %g, %g", lo, hi)
	}
	if math.Abs(h.Fraction(0)-2.0/7.0) > 1e-15 {
		t.Fatalf("Fraction(0) = %g", h.Fraction(0))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Fatal("empty range accepted")
	}
	h, _ := NewHistogram(0, 1, 3)
	if h.Fraction(0) != 0 {
		t.Fatal("Fraction on empty histogram should be 0")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 3 || e.Min() != 1 || e.Max() != 3 {
		t.Fatalf("ECDF basics wrong: n=%d min=%g max=%g", e.N(), e.Min(), e.Max())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 1.0 / 3}, {1.5, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 3 || e.Quantile(0.5) != 2 {
		t.Fatalf("quantiles wrong: %g %g %g", e.Quantile(0), e.Quantile(0.5), e.Quantile(1))
	}
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("empty ECDF accepted")
	}
}

func TestECDFMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e, _ := NewECDF(xs)
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return e.Eval(a) <= e.Eval(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKSAgainstNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e, _ := NewECDF(xs)
	d := e.KSAgainst(NormCDF)
	// For n=20000 the expected KS distance is ~ 1/sqrt(n) ~ 0.007.
	if d > 0.02 {
		t.Fatalf("KS distance of normal sample vs normal CDF = %g, too large", d)
	}
	// A shifted normal should be far.
	dShift := e.KSAgainst(func(x float64) float64 { return NormCDF(x - 1) })
	if dShift < 0.3 {
		t.Fatalf("KS vs shifted normal = %g, too small", dShift)
	}
}

func TestKSTwoSample(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	c := make([]float64, 5000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
		c[i] = rng.NormFloat64() + 2
	}
	ea, _ := NewECDF(a)
	eb, _ := NewECDF(b)
	ec, _ := NewECDF(c)
	if d := KSTwoSample(ea, eb); d > 0.05 {
		t.Fatalf("same-distribution KS = %g", d)
	}
	if d := KSTwoSample(ea, ec); d < 0.5 {
		t.Fatalf("shifted-distribution KS = %g, want large", d)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	e, _ := NewECDF([]float64{10, 20, 30, 40})
	if e.Quantile(0.25) != 10 || e.Quantile(0.26) != 20 || e.Quantile(0.75) != 30 || e.Quantile(0.76) != 40 {
		t.Fatalf("nearest-rank quantiles wrong: %g %g %g %g",
			e.Quantile(0.25), e.Quantile(0.26), e.Quantile(0.75), e.Quantile(0.76))
	}
}
