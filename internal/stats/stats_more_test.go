package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormCDFMonotoneQuick(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		a, b = math.Mod(a, 20), math.Mod(b, 20)
		if a > b {
			a, b = b, a
		}
		return NormCDF(a) <= NormCDF(b)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormCDFSymmetry(t *testing.T) {
	for _, x := range []float64{0.1, 0.7, 1.5, 2.5, 4} {
		if d := math.Abs(NormCDF(x) + NormCDF(-x) - 1); d > 1e-14 {
			t.Fatalf("CDF(%g)+CDF(-%g)-1 = %g", x, x, d)
		}
	}
}

// TestNormTPAgainstReference drives the fused (Phi, phi) pair against the
// erfc-based NormCDF and NormPDF over the z range the Clark kernels see:
// the CDF must agree absolutely to sub-ulp-of-1 precision, the PDF
// bit-for-bit, and the symmetry must be exact.
func TestNormTPAgainstReference(t *testing.T) {
	for z := -37.5; z <= 37.5; z += 0.0137 {
		c, p := NormTP(z)
		if p != NormPDF(z) {
			t.Fatalf("NormTP(%g) pdf %g != NormPDF %g", z, p, NormPDF(z))
		}
		// The CDF tracks the erfc reference to ~1 ulp of 1.0 everywhere
		// (measured max 2.3e-16 over |z| <= 40). Every consumer — blend
		// weights, moment updates, tightness-vs-threshold comparisons —
		// uses the value absolutely, so absolute agreement is the
		// contract; relative accuracy on sub-1e-12 tail values is not.
		ref := NormCDF(z)
		if d := math.Abs(c - ref); d > 5e-16 {
			t.Fatalf("NormTP(%g) cdf %.17g vs NormCDF %.17g (|d|=%g)", z, c, ref, d)
		}
		cn, _ := NormTP(-z)
		if c+cn != 1 {
			t.Fatalf("NormTP(%g): cdf(z)+cdf(-z) = %.17g, not exactly 1", z, c+cn)
		}
	}
	if c, _ := NormTP(math.Inf(1)); c != 1 {
		t.Fatalf("NormTP(+Inf) cdf = %g", c)
	}
	if c, _ := NormTP(math.Inf(-1)); c != 0 {
		t.Fatalf("NormTP(-Inf) cdf = %g", c)
	}
}

func TestSummarizeMatchesECDFQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	xs := make([]float64, 10001)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	s := Summarize(xs)
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	if med := e.Quantile(0.5); math.Abs(med-s.Mean) > 0.15 {
		t.Fatalf("median %g far from mean %g for symmetric sample", med, s.Mean)
	}
	if e.Min() != s.Min || e.Max() != s.Max {
		t.Fatal("extremes disagree between Summary and ECDF")
	}
}

func TestHistogramTotalInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHistogram(-2, 2, 1+rng.Intn(30))
		if err != nil {
			return false
		}
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64() * 3)
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == n && h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFEvalAtSamplePoints(t *testing.T) {
	e, _ := NewECDF([]float64{1, 1, 2, 3})
	// Duplicates: CDF at 1 counts both.
	if got := e.Eval(1); got != 0.5 {
		t.Fatalf("Eval(1) = %g, want 0.5", got)
	}
}

func TestKSAgainstSelfQuantiles(t *testing.T) {
	// ECDF against its own empirical distribution function: the statistic
	// also probes the left limit of each step, so the distance is exactly
	// 1/n, never zero.
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	e, _ := NewECDF(xs)
	d := e.KSAgainst(func(x float64) float64 { return e.Eval(x) })
	if d > 1.0/float64(len(xs))+1e-12 {
		t.Fatalf("KS against self = %g, want <= 1/n = %g", d, 1.0/float64(len(xs)))
	}
}

func TestNormQuantileMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.001 {
		q := NormQuantile(p)
		if q <= prev {
			t.Fatalf("quantile not increasing at p=%g", p)
		}
		prev = q
	}
}
