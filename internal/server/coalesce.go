package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/ssta"
)

// This file is the coalescing/batching front of the request path: every
// synchronous analysis flows through here instead of reaching the engine
// directly. Two layers, both keyed by the canonical fingerprints of
// fingerprint.go:
//
//  1. The coalescer is an in-flight singleflight table over full request
//     fingerprints: identical concurrent /v1/analyze and /v1/sweep requests
//     attach to one execution and share its response bytes verbatim. The
//     graph cache dedupes *completed* work; this dedupes work that is
//     still running.
//  2. The micro-batcher gathers *compatible* requests — same analysis
//     subject (ItemFingerprint) and mode, different scenarios — within a
//     size/latency window (Config.BatchMax / Config.BatchWindow) and
//     answers them all from ONE shared-prep sweep, splitting the report
//     back per caller. A plain /v1/analyze request rides along as the
//     identity scenario, which the sweep engine evaluates over the shared
//     base bank — numerically identical to a direct analysis at 1e-9.
//
// Admission accounting is per-execution: one coalesced or batched
// execution holds one analysis slot no matter how many callers it answers.
// Coalescing is always on (it is pure dedup); batching is opt-in via
// Config.BatchWindow because it trades first-request latency for
// throughput and changes which per-item metrics fire (batched items are
// accounted as sweep scenarios).

// flight is one in-flight coalesced execution. The leader runs it and
// publishes the response; followers wait on done and replay the bytes.
// refs counts attached callers; when the last one departs before the
// result lands, execCancel aborts the execution.
type flight struct {
	fp         Fingerprint
	done       chan struct{}
	status     int
	body       []byte
	refs       int
	published  bool
	execCancel context.CancelFunc
}

// coalescer is the in-flight singleflight table.
type coalescer struct {
	mu      sync.Mutex
	flights map[Fingerprint]*flight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[Fingerprint]*flight)}
}

// join attaches to the in-flight execution for fp, creating it when none
// exists. The second result is true for the leader (creator).
func (c *coalescer) join(fp Fingerprint) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[fp]; ok {
		f.refs++
		return f, false
	}
	f := &flight{fp: fp, done: make(chan struct{}), refs: 1}
	c.flights[fp] = f
	return f, true
}

// leave detaches one caller. When the last caller leaves an unpublished
// flight, the execution is cancelled — nobody is waiting for its result.
func (c *coalescer) leave(f *flight) {
	c.mu.Lock()
	f.refs--
	abort := f.refs == 0 && !f.published
	cancel := f.execCancel
	c.mu.Unlock()
	if abort && cancel != nil {
		cancel()
	}
}

// publish records the response and releases every waiter. The flight
// leaves the table first, so late identical requests start fresh —
// coalescing shares in-flight work only, never stale results.
func (c *coalescer) publish(f *flight, status int, body []byte) {
	c.mu.Lock()
	f.status, f.body = status, body
	f.published = true
	delete(c.flights, f.fp)
	c.mu.Unlock()
	close(f.done)
}

// inFlight samples the table size for /metrics.
func (c *coalescer) inFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flights)
}

// serveCoalesced funnels one synchronous request through the coalescer:
// followers of an identical in-flight request wait for its bytes; the
// leader runs exec under a context that is detached from any single client
// (derived from the server lifetime plus the request deadline) and
// cancelled only when every attached caller has disconnected.
func (s *Server) serveCoalesced(w http.ResponseWriter, r *http.Request, endpoint string, fp Fingerprint, timeoutMS int64, exec func(ctx context.Context) (int, []byte)) {
	f, leader := s.coalesce.join(fp)
	if !leader {
		s.metrics.coalesceHit(endpoint)
		defer s.coalesce.leave(f)
		select {
		case <-f.done:
			writeRaw(w, f.status, f.body)
		case <-r.Context().Done():
			// Client gone; the execution continues for the other callers.
		}
		return
	}
	execCtx, execCancel := s.requestCtx(s.baseCtx, &AnalyzeRequest{TimeoutMS: timeoutMS})
	defer execCancel()
	f.execCancel = execCancel
	// The leader's own departure is tracked like a follower's: if its
	// client disconnects mid-execution while followers remain, the work
	// keeps running for them.
	stop := context.AfterFunc(r.Context(), func() { s.coalesce.leave(f) })
	status, body := exec(execCtx)
	s.coalesce.publish(f, status, body)
	if stop() {
		s.coalesce.leave(f)
	}
	writeRaw(w, status, body)
}

// batchKey groups compatible requests: same analysis subject, same
// correlation mode. Scheduling knobs (workers, timeout) deliberately stay
// out — they do not change results, and the batch runs under the most
// generous of its callers' settings.
type batchKey struct {
	subject Fingerprint
	mode    ssta.Mode
}

// batchCall is one caller's seat in a micro-batch.
type batchCall struct {
	endpoint string              // "analyze" or "sweep"
	name     string              // caller's display name ("" = subject default)
	specs    []SweepScenarioSpec // caller's scenarios; nil means the identity scenario (analyze)
	topK     int
	workers  int
	timeout  time.Duration   // effective deadline contribution to the group
	ctx      context.Context // caller-side context (departure tracking)
	done     chan struct{}
	status   int
	body     []byte
	unionIdx []int // caller scenario k -> union scenario index
}

// batchGroup is one gathering micro-batch.
type batchGroup struct {
	key     batchKey
	spec    ItemSpec // subject (Name cleared); first caller's wording
	calls   []*batchCall
	timer   *time.Timer
	flushed bool
}

// batcher gathers compatible requests and flushes them onto one
// shared-prep sweep when the group reaches max callers or the window
// expires, whichever comes first.
type batcher struct {
	s      *Server
	mu     sync.Mutex
	groups map[batchKey]*batchGroup
	max    int
	window time.Duration
}

func newBatcher(s *Server, max int, window time.Duration) *batcher {
	if max <= 1 {
		max = 8
	}
	return &batcher{s: s, groups: make(map[batchKey]*batchGroup), max: max, window: window}
}

// do enqueues one call and blocks until the group's execution answers it
// (or the caller's context dies first — the group then continues for the
// others and this response is dropped).
func (b *batcher) do(ctx context.Context, key batchKey, spec ItemSpec, call *batchCall) (int, []byte) {
	call.ctx = ctx
	call.done = make(chan struct{})
	b.s.metrics.batchRequests.Add(1)
	b.mu.Lock()
	g, ok := b.groups[key]
	if !ok {
		spec.Name = ""
		g = &batchGroup{key: key, spec: spec}
		b.groups[key] = g
		g.timer = time.AfterFunc(b.window, func() { b.flush(g, "deadline") })
	}
	g.calls = append(g.calls, call)
	full := len(g.calls) >= b.max
	b.mu.Unlock()
	if full {
		b.flush(g, "size")
	}
	select {
	case <-call.done:
		return call.status, call.body
	case <-ctx.Done():
		// Late result may have raced the cancellation; prefer it.
		select {
		case <-call.done:
			return call.status, call.body
		default:
		}
		return http.StatusRequestTimeout,
			errorBody(http.StatusRequestTimeout, fmt.Sprintf("request expired before its micro-batch completed: %v", ctx.Err()))
	}
}

// flush detaches the group from the gathering table and runs it. Exactly
// one flush wins (size and deadline can race); the execution runs on its
// own goroutine so neither the timer goroutine nor a caller blocks on it.
func (b *batcher) flush(g *batchGroup, reason string) {
	b.mu.Lock()
	if g.flushed {
		b.mu.Unlock()
		return
	}
	g.flushed = true
	delete(b.groups, g.key)
	if g.timer != nil {
		g.timer.Stop()
	}
	calls := g.calls
	b.mu.Unlock()
	b.s.metrics.batchFlush(reason)
	go b.run(g.key, g.spec, calls)
}

// gathering samples the number of groups currently open for /metrics.
func (b *batcher) gathering() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.groups)
}

// identitySpec is the scenario a plain analyze request contributes to a
// batch: the zero transform, evaluated over the shared base bank.
var identitySpec = []SweepScenarioSpec{{}}

// callSpecs returns the caller's scenario list (identity for analyze).
func (c *batchCall) callSpecs() []SweepScenarioSpec {
	if c.specs == nil {
		return identitySpec
	}
	return c.specs
}

// run executes one flushed micro-batch: dedupe scenarios across callers,
// take ONE admission slot, resolve the shared subject, run ONE shared-prep
// sweep, and split the report back per caller.
func (b *batcher) run(key batchKey, spec ItemSpec, calls []*batchCall) {
	s, m := b.s, b.s.metrics
	m.batchExecutions.Add(1)
	m.batchOccSum.Add(int64(len(calls)))

	publish := func(c *batchCall, status int, body []byte) {
		c.status, c.body = status, body
		close(c.done)
	}
	failAll := func(alive []*batchCall, status int, msg string) {
		for _, c := range alive {
			publish(c, status, errorBody(status, msg))
		}
	}
	classify := func(err error) int {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return http.StatusRequestTimeout
		}
		return http.StatusBadRequest
	}

	// Union of distinct scenario transforms across callers, content-keyed:
	// two callers naming the same knobs differently share one evaluation.
	// Union scenarios carry opaque internal names; caller-facing names are
	// rewritten at reassembly.
	var union []SweepScenarioSpec
	index := make(map[Fingerprint]int)
	total := 0
	for _, c := range calls {
		specs := c.callSpecs()
		c.unionIdx = make([]int, len(specs))
		for k := range specs {
			total++
			fp := ScenarioFingerprint(&specs[k])
			u, ok := index[fp]
			if !ok {
				u = len(union)
				index[fp] = u
				sp := specs[k]
				sp.Name = fmt.Sprintf("u%d", u)
				union = append(union, sp)
			}
			c.unionIdx[k] = u
		}
	}
	m.scenariosDeduped.Add(int64(total - len(union)))

	// Group execution context: the server's lifetime bounded by the most
	// generous caller deadline, cancelled early when every caller departs.
	dur := time.Duration(0)
	workers := s.cfg.Workers
	for _, c := range calls {
		if c.timeout > dur {
			dur = c.timeout
		}
		if c.workers > workers {
			workers = c.workers
		}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, dur)
	defer cancel()
	var refs atomic.Int64
	refs.Store(int64(len(calls)))
	for _, c := range calls {
		context.AfterFunc(c.ctx, func() {
			if refs.Add(-1) == 0 {
				cancel()
			}
		})
	}

	// ONE admission slot covers the whole batch — this is the accounting
	// shift from per-request to per-execution.
	if err := s.acquireSlotWait(ctx, s.admissionWait(ctx)); err != nil {
		for range calls {
			m.rejected.Add(1)
		}
		failAll(calls, http.StatusTooManyRequests, err.Error())
		return
	}
	defer s.releaseSlot()

	start := time.Now()
	item, subjName, isQuad, mode, err := s.resolveSweepItem(ctx, &spec)
	if err != nil {
		status := classify(err)
		for range calls {
			if status == http.StatusRequestTimeout {
				m.itemsRejected.Add(1)
			} else {
				m.badRequests.Add(1)
			}
		}
		failAll(calls, status, err.Error())
		return
	}
	_ = mode // the group key's mode was parsed from the same spec

	// Materialize the union scenarios. A failing scenario fails only the
	// callers that asked for it; the rest of the batch proceeds without it.
	scens := make([]ssta.Scenario, len(union))
	var failedUnion map[int]error
	for u := range union {
		sc, cerr := s.convertScenario(ctx, &union[u], isQuad)
		if cerr != nil {
			if failedUnion == nil {
				failedUnion = make(map[int]error)
			}
			failedUnion[u] = cerr
			continue
		}
		scens[u] = sc
	}
	alive := calls
	if failedUnion != nil {
		var keep []*batchCall
		for _, c := range calls {
			bad := -1
			for k, u := range c.unionIdx {
				if _, failed := failedUnion[u]; failed {
					bad = k
					break
				}
			}
			if bad < 0 {
				keep = append(keep, c)
				continue
			}
			cerr := failedUnion[c.unionIdx[bad]]
			status := classify(cerr)
			if status == http.StatusRequestTimeout {
				m.itemsRejected.Add(1)
			} else {
				m.badRequests.Add(1)
			}
			publish(c, status, errorBody(status, fmt.Sprintf("scenario %d: %v", bad, cerr)))
		}
		alive = keep
		if len(alive) == 0 {
			return
		}
		remap := make([]int, len(union))
		var cs []ssta.Scenario
		var us []SweepScenarioSpec
		for u := range union {
			if _, failed := failedUnion[u]; failed {
				remap[u] = -1
				continue
			}
			remap[u] = len(cs)
			cs = append(cs, scens[u])
			us = append(us, union[u])
		}
		scens, union = cs, us
		for _, c := range alive {
			for k := range c.unionIdx {
				c.unionIdx[k] = remap[c.unionIdx[k]]
			}
		}
	}

	opt := ssta.SweepOptions{
		Workers:        workers,
		OnScenarioDone: s.scenarioMetricsHook(),
	}
	// The batch runs through the same dispatch seam as a solo sweep, so a
	// clustered coordinator shards micro-batch executions across workers
	// exactly like direct /v1/sweep traffic.
	pr := &sweepPrep{
		item:    item,
		name:    subjName,
		isQuad:  isQuad,
		mode:    key.mode,
		scens:   scens,
		workers: workers,
		spec:    spec,
		specs:   union,
	}
	rep, err := s.runSweep(ctx, pr, opt)
	if err != nil {
		status := classify(err)
		for range alive {
			if status == http.StatusRequestTimeout {
				m.itemsRejected.Add(1)
			} else {
				m.badRequests.Add(1)
			}
		}
		failAll(alive, status, err.Error())
		return
	}
	elapsedMS := float64(time.Since(start).Microseconds()) / 1000

	// Split the shared report back per caller: caller-local scenario names
	// and order, caller-local envelope/divergence (recomputed over exactly
	// the caller's scenarios, so the response matches a solo request).
	for _, c := range alive {
		name := c.name
		if name == "" {
			name = subjName
		}
		if c.endpoint == "analyze" {
			r := rep.Results[c.unionIdx[0]]
			out := ItemResult{Name: name, ElapsedMS: float64(r.Elapsed.Microseconds()) / 1000}
			if r.Err != nil {
				out.Error = r.Err.Error()
			} else {
				out.MeanPS, out.StdPS, out.P9987PS = r.Mean, r.Std, r.Quantile
				// Scalar graph stats survive distributed execution where
				// rep.Top stays nil (the worker-side graph never crosses the
				// wire) — the analyze-rider half of the PR 9 Top-loss fix.
				out.Verts, out.Edges = rep.TopVerts, rep.TopEdges
				out.Setup = slackViewOfStat(r.SetupSlack)
				out.Hold = slackViewOfStat(r.HoldSlack)
			}
			publish(c, http.StatusOK, marshalJSON(&AnalyzeResponse{Results: []ItemResult{out}, ElapsedMS: elapsedMS}))
			continue
		}
		specs := c.callSpecs()
		results := make([]ssta.ScenarioResult, len(specs))
		for k, u := range c.unionIdx {
			r := rep.Results[u]
			r.Name = specs[k].Name
			if r.Name == "" {
				r.Name = fmt.Sprintf("scenario-%d", k)
			}
			results[k] = r
		}
		crep := scenario.NewReport(results, scenario.Options{TopK: c.topK})
		crep.Top = rep.Top
		crep.TopVerts, crep.TopEdges = rep.TopVerts, rep.TopEdges
		publish(c, http.StatusOK, marshalJSON(sweepResponseView(name, crep, elapsedMS)))
	}
}

// scenarioMetricsHook is the shared per-scenario accounting of every sweep
// execution: deadline-cut scenarios are rejections, not latency samples.
func (s *Server) scenarioMetricsHook() func(int, *ssta.ScenarioResult) {
	return func(_ int, res *ssta.ScenarioResult) {
		if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
			s.metrics.scenariosRejected.Add(1)
			return
		}
		s.metrics.observeScenario(res.Elapsed, res.Err != nil)
	}
}

// analyzeBatchCall maps a batchable analyze request onto its batch seat.
// Batchable means: exactly one item, exactly one input selector, no
// extraction (the sweep engine does not extract models), and a parseable
// mode. Everything else takes the direct runBatch path.
func (s *Server) analyzeBatchCall(req *AnalyzeRequest) (batchKey, ItemSpec, *batchCall, bool) {
	if len(req.Items) != 1 {
		return batchKey{}, ItemSpec{}, nil, false
	}
	spec := req.Items[0]
	if spec.Extract || len(spec.inputs()) != 1 {
		return batchKey{}, ItemSpec{}, nil, false
	}
	mode, err := parseMode(spec.Mode)
	if err != nil {
		return batchKey{}, ItemSpec{}, nil, false
	}
	call := &batchCall{
		endpoint: "analyze",
		name:     spec.Name,
		workers:  req.ItemWorkers,
		timeout:  s.effectiveTimeout(req.TimeoutMS),
	}
	return batchKey{subject: ItemFingerprint(&spec), mode: mode}, spec, call, true
}

// sweepBatchCall maps a batchable sweep request onto its batch seat.
func (s *Server) sweepBatchCall(req *SweepRequest, specs []SweepScenarioSpec) (batchKey, ItemSpec, *batchCall, bool) {
	spec := req.ItemSpec
	if len(spec.inputs()) != 1 {
		return batchKey{}, ItemSpec{}, nil, false
	}
	mode, err := parseMode(spec.Mode)
	if err != nil {
		return batchKey{}, ItemSpec{}, nil, false
	}
	call := &batchCall{
		endpoint: "sweep",
		name:     spec.Name,
		specs:    specs,
		topK:     req.TopK,
		workers:  req.Workers,
		timeout:  s.effectiveTimeout(req.TimeoutMS),
	}
	return batchKey{subject: ItemFingerprint(&spec), mode: mode}, spec, call, true
}

// effectiveTimeout resolves the timeout_ms knob against server defaults
// and the clamp — the same arithmetic as requestCtx, without the context.
func (s *Server) effectiveTimeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// admissionWait is the sync-path slot-wait bound: the configured
// AdmissionWait, or half the remaining deadline so an overloaded server
// sheds load instead of queueing work that will blow its deadline anyway.
func (s *Server) admissionWait(ctx context.Context) time.Duration {
	if s.cfg.AdmissionWait > 0 {
		return s.cfg.AdmissionWait
	}
	if dl, ok := ctx.Deadline(); ok {
		return time.Until(dl) / 2
	}
	return 0
}

// acquireSlotWait takes an analysis slot under ctx, additionally bounded
// by wait when positive. The error wraps the context cause.
func (s *Server) acquireSlotWait(ctx context.Context, wait time.Duration) error {
	admit := ctx
	if wait > 0 {
		var cancel context.CancelFunc
		admit, cancel = context.WithTimeout(ctx, wait)
		defer cancel()
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-admit.Done():
		return fmt.Errorf("no analysis slot: %w", admit.Err())
	}
}

// marshalJSON renders v exactly like writeJSON does (no HTML escaping,
// trailing newline), so coalesced followers replay byte-identical bodies.
func marshalJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
	return buf.Bytes()
}

// errorBody is the byte form of httpError's payload.
func errorBody(code int, msg string) []byte {
	return marshalJSON(map[string]any{"error": msg, "status": fmt.Sprint(code)})
}

// writeRaw writes a prerendered JSON response, carrying the Retry-After
// hint on overload statuses like the direct handlers do.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
