package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/ssta"
)

// metrics aggregates the serving-layer counters surfaced on /metrics in
// Prometheus text exposition format. All counters are monotonic except the
// gauges (active analyses, queue depth) which are sampled at scrape time.
type metrics struct {
	start time.Time

	analyzeRequests atomic.Int64 // POST /v1/analyze accepted
	jobRequests     atomic.Int64 // POST /v1/jobs accepted
	rejected        atomic.Int64 // requests refused at admission (429/503)
	badRequests     atomic.Int64 // malformed bodies / invalid specs
	internalErrors  atomic.Int64 // server-side faults answered with a 500

	itemsTotal atomic.Int64 // batch items completed by the engine
	itemErrors atomic.Int64 // batch items finished with an error
	// itemsRejected counts items refused before the engine ran (bad spec
	// or expired deadline); they stay out of the latency histogram so a
	// rejection burst cannot drag the reported mean toward zero.
	itemsRejected atomic.Int64

	// Per-item latency: sum/count for the mean, max tracked under a lock
	// (atomics cannot do floating-point max).
	latMu    sync.Mutex
	latSum   float64
	latCount int64
	latMax   float64

	// MCMM sweep surface: request and per-scenario accounting plus the
	// per-scenario latency aggregate. Scenarios cut by a deadline are
	// rejections, not latency samples — same rule as batch items.
	sweepRequests     atomic.Int64
	scenariosTotal    atomic.Int64
	scenarioErrors    atomic.Int64
	scenariosRejected atomic.Int64

	sweepMu    sync.Mutex
	sweepSum   float64 // seconds, per completed scenario
	sweepCount int64
	sweepMax   float64

	// Session lifecycle and incremental-reanalysis latency.
	sessionsCreated atomic.Int64
	sessionsDeleted atomic.Int64
	sessionsEvicted atomic.Int64
	editsApplied    atomic.Int64 // individual edits across all batches

	reanMu    sync.Mutex
	reanSum   float64 // seconds, per applied edit batch
	reanCount int64
	reanMax   float64

	// Coalescing front: followers answered from another caller's in-flight
	// execution, by endpoint.
	coalesceAnalyze atomic.Int64
	coalesceSweep   atomic.Int64

	// Micro-batching front. Occupancy sum / executions = mean batch size;
	// scenariosDeduped counts union scenarios shared by multiple callers.
	batchRequests      atomic.Int64 // calls routed through the batcher
	batchExecutions    atomic.Int64 // batched sweep executions launched
	batchOccSum        atomic.Int64 // callers summed over executions
	batchFlushSize     atomic.Int64 // groups flushed by reaching -batch-max
	batchFlushDeadline atomic.Int64 // groups flushed by the -batch-window timer
	scenariosDeduped   atomic.Int64

	// streaming tracks live SSE connections (gauge).
	streaming atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// coalesceHit records one request answered from another caller's
// in-flight execution.
func (m *metrics) coalesceHit(endpoint string) {
	switch endpoint {
	case "analyze":
		m.coalesceAnalyze.Add(1)
	default:
		m.coalesceSweep.Add(1)
	}
}

// batchFlush records why a micro-batch group closed.
func (m *metrics) batchFlush(reason string) {
	switch reason {
	case "size":
		m.batchFlushSize.Add(1)
	default:
		m.batchFlushDeadline.Add(1)
	}
}

// observeItem records one finished batch item.
func (m *metrics) observeItem(d time.Duration, failed bool) {
	m.itemsTotal.Add(1)
	if failed {
		m.itemErrors.Add(1)
	}
	sec := d.Seconds()
	m.latMu.Lock()
	m.latSum += sec
	m.latCount++
	if sec > m.latMax {
		m.latMax = sec
	}
	m.latMu.Unlock()
}

// observeScenario records one finished sweep scenario.
func (m *metrics) observeScenario(d time.Duration, failed bool) {
	m.scenariosTotal.Add(1)
	if failed {
		m.scenarioErrors.Add(1)
	}
	sec := d.Seconds()
	m.sweepMu.Lock()
	m.sweepSum += sec
	m.sweepCount++
	if sec > m.sweepMax {
		m.sweepMax = sec
	}
	m.sweepMu.Unlock()
}

// observeReanalysis records one applied session edit batch.
func (m *metrics) observeReanalysis(d time.Duration, edits int) {
	m.editsApplied.Add(int64(edits))
	sec := d.Seconds()
	m.reanMu.Lock()
	m.reanSum += sec
	m.reanCount++
	if sec > m.reanMax {
		m.reanMax = sec
	}
	m.reanMu.Unlock()
}

// handleMetrics renders the scrape. The gauges come from the server so the
// text reflects live admission and queue state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	m.latMu.Lock()
	latSum, latCount, latMax := m.latSum, m.latCount, m.latMax
	m.latMu.Unlock()
	cache := s.flow.Cache.Metrics()
	gHits, gMisses := s.graphs.stats()
	queued, running, finished := s.jobs.counts()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	p("# HELP sstad_uptime_seconds Seconds since the server started.")
	p("sstad_uptime_seconds %g", time.Since(m.start).Seconds())
	p("# HELP sstad_requests_total Accepted analysis requests by endpoint.")
	p(`sstad_requests_total{endpoint="analyze"} %d`, m.analyzeRequests.Load())
	p(`sstad_requests_total{endpoint="jobs"} %d`, m.jobRequests.Load())
	p("# HELP sstad_requests_rejected_total Requests refused at admission (full queue or shutdown).")
	p("sstad_requests_rejected_total %d", m.rejected.Load())
	p("# HELP sstad_bad_requests_total Malformed or invalid requests.")
	p("sstad_bad_requests_total %d", m.badRequests.Load())
	p("# HELP sstad_internal_errors_total Server-side faults answered with a 500.")
	p("sstad_internal_errors_total %d", m.internalErrors.Load())
	p("# HELP sstad_items_total Batch items completed.")
	p("sstad_items_total %d", m.itemsTotal.Load())
	p("sstad_item_errors_total %d", m.itemErrors.Load())
	p("# HELP sstad_items_rejected_total Items refused before analysis (bad spec or expired deadline).")
	p("sstad_items_rejected_total %d", m.itemsRejected.Load())
	p("# HELP sstad_item_latency_seconds Per-item wall-clock latency.")
	p("sstad_item_latency_seconds_sum %g", latSum)
	p("sstad_item_latency_seconds_count %d", latCount)
	p("sstad_item_latency_seconds_max %g", latMax)
	p("# HELP sstad_active_analyses Requests currently holding an analysis slot.")
	p("sstad_active_analyses %d", s.activeAnalyses())
	p("# HELP sstad_analysis_slots Configured concurrent-analysis bound.")
	p("sstad_analysis_slots %d", cap(s.sem))
	p("# HELP sstad_jobs Queue depth and lifecycle counts of async jobs.")
	p(`sstad_jobs{state="queued"} %d`, queued)
	p(`sstad_jobs{state="running"} %d`, running)
	p(`sstad_jobs{state="finished"} %d`, finished)
	p("# HELP sstad_extract_cache Extraction-cache counters (hit rate = hits / (hits+misses)).")
	p("sstad_extract_cache_hits_total %d", cache.Hits)
	p("sstad_extract_cache_misses_total %d", cache.Misses)
	p("sstad_extract_cache_evictions_total %d", cache.Evictions)
	p("sstad_extract_cache_entries %d", cache.Entries)
	p("sstad_extract_cache_cost_bytes %d", cache.Cost)
	p("sstad_extract_cache_entry_cap %d", cache.MaxEntries)
	p("# HELP sstad_graph_cache Built-graph cache counters.")
	p("sstad_graph_cache_hits_total %d", gHits)
	p("sstad_graph_cache_misses_total %d", gMisses)
	prepHits, prepMisses := ssta.PrepCacheStats()
	p("# HELP sstad_prep_cache Per-mode analysis-prep cache counters (process-wide).")
	p("sstad_prep_cache_hits_total %d", prepHits)
	p("sstad_prep_cache_misses_total %d", prepMisses)
	p("# HELP sstad_coalesce_hits_total Requests answered from another caller's in-flight execution.")
	p(`sstad_coalesce_hits_total{endpoint="analyze"} %d`, m.coalesceAnalyze.Load())
	p(`sstad_coalesce_hits_total{endpoint="sweep"} %d`, m.coalesceSweep.Load())
	p("# HELP sstad_coalesce_inflight Distinct executions currently coalescing callers.")
	p("sstad_coalesce_inflight %d", s.coalesce.inFlight())
	p("# HELP sstad_batch_requests_total Calls routed through the micro-batcher.")
	p("sstad_batch_requests_total %d", m.batchRequests.Load())
	p("# HELP sstad_batch_executions Batched sweep executions; occupancy_sum/executions = mean batch size.")
	p("sstad_batch_executions_total %d", m.batchExecutions.Load())
	p("sstad_batch_occupancy_sum %d", m.batchOccSum.Load())
	p("# HELP sstad_batch_flush_total Micro-batch group flushes by trigger.")
	p(`sstad_batch_flush_total{reason="size"} %d`, m.batchFlushSize.Load())
	p(`sstad_batch_flush_total{reason="deadline"} %d`, m.batchFlushDeadline.Load())
	p("# HELP sstad_batch_scenarios_deduped_total Union scenarios shared by multiple batched callers.")
	p("sstad_batch_scenarios_deduped_total %d", m.scenariosDeduped.Load())
	if s.batch != nil {
		p("# HELP sstad_batch_gathering Micro-batch groups currently gathering callers.")
		p("sstad_batch_gathering %d", s.batch.gathering())
	}
	p("# HELP sstad_streaming_connections Live SSE streaming connections.")
	p("sstad_streaming_connections %d", m.streaming.Load())
	m.sweepMu.Lock()
	sweepSum, sweepCount, sweepMax := m.sweepSum, m.sweepCount, m.sweepMax
	m.sweepMu.Unlock()
	p("# HELP sstad_sweep_requests_total MCMM sweep requests received (before admission and validation).")
	p("sstad_sweep_requests_total %d", m.sweepRequests.Load())
	p("# HELP sstad_sweep_scenarios_total Sweep scenarios completed by the engine.")
	p("sstad_sweep_scenarios_total %d", m.scenariosTotal.Load())
	p("sstad_sweep_scenario_errors_total %d", m.scenarioErrors.Load())
	p("# HELP sstad_sweep_scenarios_rejected_total Scenarios cut before completion (expired deadline).")
	p("sstad_sweep_scenarios_rejected_total %d", m.scenariosRejected.Load())
	p("# HELP sstad_sweep_scenario_latency_seconds Per-scenario wall-clock latency.")
	p("sstad_sweep_scenario_latency_seconds_sum %g", sweepSum)
	p("sstad_sweep_scenario_latency_seconds_count %d", sweepCount)
	p("sstad_sweep_scenario_latency_seconds_max %g", sweepMax)
	m.reanMu.Lock()
	reanSum, reanCount, reanMax := m.reanSum, m.reanCount, m.reanMax
	m.reanMu.Unlock()
	p("# HELP sstad_sessions Live timing sessions.")
	p("sstad_sessions %d", s.sessions.len())
	p("# HELP sstad_sessions_lifecycle_total Session lifecycle counters.")
	p(`sstad_sessions_lifecycle_total{event="created"} %d`, m.sessionsCreated.Load())
	p(`sstad_sessions_lifecycle_total{event="deleted"} %d`, m.sessionsDeleted.Load())
	p(`sstad_sessions_lifecycle_total{event="evicted"} %d`, m.sessionsEvicted.Load())
	p("# HELP sstad_session_edits_total Individual edits applied across all batches.")
	p("sstad_session_edits_total %d", m.editsApplied.Load())
	p("# HELP sstad_session_reanalysis_seconds Incremental re-analysis latency per edit batch.")
	p("sstad_session_reanalysis_seconds_sum %g", reanSum)
	p("sstad_session_reanalysis_seconds_count %d", reanCount)
	p("sstad_session_reanalysis_seconds_max %g", reanMax)
	if ps := s.persist; ps != nil {
		now := time.Now()
		p("# HELP sstad_store_ops_total Durable-store backend operations by kind.")
		for i, name := range storeOpNames {
			p(`sstad_store_ops_total{op=%q} %d`, name, ps.store.ops[i].Load())
		}
		p("# HELP sstad_store_errors_total Failed durable-store operations by kind (a Get miss is not an error).")
		for i, name := range storeOpNames {
			p(`sstad_store_errors_total{op=%q} %d`, name, ps.store.errs[i].Load())
		}
		p("# HELP sstad_store_flush_lag_seconds Age of the oldest unflushed checkpoint (0 when drained).")
		p("sstad_store_flush_lag_seconds %g", ps.flushLag(now).Seconds())
		p("# HELP sstad_store_pending Checkpoints waiting in the write-behind queue.")
		p("sstad_store_pending %d", ps.pending())
		p("# HELP sstad_store_quarantined_total Snapshots moved aside as corrupt or version-skewed.")
		p("sstad_store_quarantined_total %d", ps.quarantined.Load())
		p("# HELP sstad_store_sessions_restored_total Sessions restored at warm start.")
		p("sstad_store_sessions_restored_total %d", ps.restored.Load())
	}
	if rc := &s.remoteCache; rc.hits.Load()+rc.misses.Load()+rc.puts.Load()+rc.putErrs.Load() > 0 {
		p("# HELP sstad_remote_model_cache_total Worker-side remote model-cache lookups against the coordinator.")
		p(`sstad_remote_model_cache_total{result="hit"} %d`, rc.hits.Load())
		p(`sstad_remote_model_cache_total{result="miss"} %d`, rc.misses.Load())
		p("# HELP sstad_remote_model_cache_puts_total Models pushed back to the coordinator after local extraction.")
		p("sstad_remote_model_cache_puts_total %d", rc.puts.Load())
		p("sstad_remote_model_cache_put_errors_total %d", rc.putErrs.Load())
	}
	if cl := s.cluster; cl != nil {
		p("# HELP sstad_cluster_dispatches_total Sweep shards dispatched to workers.")
		p("sstad_cluster_dispatches_total %d", cl.dispatches.Load())
		p("# HELP sstad_cluster_retries_total Shard dispatch retries after a transport or worker failure.")
		p("sstad_cluster_retries_total %d", cl.retries.Load())
		p("# HELP sstad_cluster_failovers_total Shards re-homed to a surviving node or pulled back locally.")
		p("sstad_cluster_failovers_total %d", cl.failovers.Load())
		p("# HELP sstad_cluster_local_fallbacks_total Executions served locally because no worker could.")
		p("sstad_cluster_local_fallbacks_total %d", cl.localFallbacks.Load())
		p("# HELP sstad_cluster_proxy_errors_total Session proxy round-trips that failed in transport.")
		p("sstad_cluster_proxy_errors_total %d", cl.proxyErrors.Load())
		p("# HELP sstad_cluster_routed_sessions Sessions currently pinned to a worker node.")
		p("sstad_cluster_routed_sessions %d", cl.routedSessions())
		p("# HELP sstad_cluster_model_index Coordinator-side remote model-cache index.")
		p("sstad_cluster_model_index_entries %d", cl.indexLen())
		p(`sstad_cluster_model_index_total{result="hit"} %d`, cl.indexHits.Load())
		p(`sstad_cluster_model_index_total{result="miss"} %d`, cl.indexMisses.Load())
		p("sstad_cluster_model_index_puts_total %d", cl.putsReceived.Load())
		p("# HELP sstad_cluster_node Per-node health and dispatch counters.")
		for _, n := range cl.pool.Nodes() {
			healthy := 0
			if n.Healthy() {
				healthy = 1
			}
			p(`sstad_cluster_node_healthy{node=%q} %d`, n.Addr(), healthy)
			p(`sstad_cluster_node_inflight{node=%q} %d`, n.Addr(), n.InFlight.Load())
			p(`sstad_cluster_node_dispatches_total{node=%q} %d`, n.Addr(), n.Dispatches.Load())
			p(`sstad_cluster_node_errors_total{node=%q} %d`, n.Addr(), n.Errors.Load())
			p(`sstad_cluster_node_sessions{node=%q} %d`, n.Addr(), n.Sessions.Load())
		}
	}
}
