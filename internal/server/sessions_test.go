package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/ssta"
)

func createSession(t *testing.T, base string, req SessionCreateRequest) SessionView {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", resp.StatusCode, data)
	}
	var v SessionView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("create session: bad body %q: %v", data, err)
	}
	return v
}

func applyEdits(t *testing.T, base, id string, req SessionEditRequest) SessionEditResponse {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/sessions/"+id+"/edits", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edits: status %d: %s", resp.StatusCode, data)
	}
	var out SessionEditResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("edits: bad body %q: %v", data, err)
	}
	return out
}

// TestSessionFlatLifecycle drives a flat session end to end: create,
// edit incrementally, compare against the direct library computation,
// delete.
func TestSessionFlatLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	v := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	if v.Kind != "flat" || v.Verts == 0 || v.Edges == 0 {
		t.Fatalf("unexpected session view: %+v", v)
	}

	// Direct reference: same deterministic pipeline, same edits.
	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := flow.NewGraphSession(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ref.Delay().Mean() - v.MeanPS); d > 1e-9 {
		t.Fatalf("initial mean differs from direct path by %g", d)
	}

	edits := SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 5, Scale: 1.5},
		{Op: "set_nominal", Edge: 9, ValuePS: 120},
		{Op: "remove_edge", Edge: 17},
	}}
	got := applyEdits(t, hs.URL, v.ID, edits)
	rep, err := ref.Apply(context.Background(), []ssta.Edit{
		{Op: ssta.EditScaleDelay, Edge: 5, Scale: 1.5},
		{Op: ssta.EditSetNominal, Edge: 9, Value: 120},
		{Op: ssta.EditRemoveEdge, Edge: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Applied != 3 {
		t.Fatalf("applied %d edits, want 3", got.Applied)
	}
	if d := math.Abs(got.MeanPS - rep.Delay.Mean()); d > 1e-9 {
		t.Fatalf("post-edit mean differs from direct path by %g", d)
	}
	if got.RecomputedVerts == 0 || got.RecomputedVerts >= got.TotalVerts {
		t.Fatalf("recomputed %d of %d vertices — not incremental", got.RecomputedVerts, got.TotalVerts)
	}

	// GET reflects the edits; DELETE makes it 404.
	resp, data := httpGet(t, hs.URL+"/v1/sessions/"+v.ID)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"edits":3`) {
		t.Fatalf("GET session: %d %s", resp.StatusCode, data)
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/sessions/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}
	resp, _ = httpGet(t, hs.URL+"/v1/sessions/"+v.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d, want 404", resp.StatusCode)
	}
}

func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSessionIdentityEditsMatchAnalyze checks the smoke-test invariant the
// CI job relies on: a scale-up immediately undone by the inverse scale
// (both powers of two, hence exact) returns the session to the pristine
// benchmark delay, equal to a fresh /v1/analyze of the same item.
func TestSessionIdentityEditsMatchAnalyze(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	v := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c499", Seed: 1}})
	got := applyEdits(t, hs.URL, v.ID, SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 3, Scale: 2},
		{Op: "scale_delay", Edge: 3, Scale: 0.5},
	}})
	fresh := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{{Bench: "c499", Seed: 1}}})
	if fresh.Results[0].Error != "" {
		t.Fatal(fresh.Results[0].Error)
	}
	if d := math.Abs(got.MeanPS - fresh.Results[0].MeanPS); d > 1e-9 {
		t.Fatalf("identity edit batch drifted from fresh analyze by %g", d)
	}
}

// TestSessionQuadSwap runs the hierarchical ECO over HTTP: swap one
// instance's module to a re-characterized variant and compare against the
// direct library path.
func TestSessionQuadSwap(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	v := createSession(t, hs.URL, SessionCreateRequest{
		ItemSpec: ItemSpec{Quad: &QuadSpec{Bench: "c432", Seed: 1}, Mode: "full"},
	})
	if v.Kind != "hier" {
		t.Fatalf("kind %q, want hier", v.Kind)
	}
	got := applyEdits(t, hs.URL, v.ID, SessionEditRequest{Edits: []EditSpec{
		{Op: "swap_module", Instance: "B", Bench: "c432", Seed: 2},
		{Op: "set_net_delay", Net: 0, ValuePS: 9},
	}})
	if !got.FullReprop {
		t.Fatal("module swap did not report full re-propagation")
	}

	// Direct reference through the same server flow (shared extract cache).
	d, err := s.quadDesign(context.Background(), &QuadSpec{Bench: "c432", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, plan2, err := s.graphs.get(context.Background(), s.flow, graphKey{bench: "c432", seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	model2, err := s.flow.ExtractCtx(context.Background(), g2, ssta.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alt, err := ssta.NewModule("c432", model2, plan2)
	if err != nil {
		t.Fatal(err)
	}
	mirror := d.CopyStructure()
	mirror.Instances[1].Module = alt
	mirror.Nets[0].Delay = 9
	res, err := mirror.Analyze(ssta.FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(got.MeanPS - res.Delay.Mean()); diff > 1e-9 {
		t.Fatalf("post-swap session differs from direct Analyze by %g", diff)
	}
}

// TestSessionEditValidation covers wire-level rejection paths.
func TestSessionEditValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	v := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})

	for _, tc := range []struct {
		name string
		req  SessionEditRequest
	}{
		{"no edits", SessionEditRequest{}},
		{"unknown op", SessionEditRequest{Edits: []EditSpec{{Op: "frob"}}}},
		{"bad scale", SessionEditRequest{Edits: []EditSpec{{Op: "scale_delay", Edge: 0, Scale: -1}}}},
		{"net on flat", SessionEditRequest{Edits: []EditSpec{{Op: "set_net_delay", Net: 0, ValuePS: 1}}}},
		{"swap missing bench", SessionEditRequest{Edits: []EditSpec{{Op: "swap_module", Instance: "A"}}}},
	} {
		resp, data := postJSON(t, hs.URL+"/v1/sessions/"+v.ID+"/edits", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, data)
		}
	}
	resp, _ := postJSON(t, hs.URL+"/v1/sessions/nope/edits",
		SessionEditRequest{Edits: []EditSpec{{Op: "scale_delay", Edge: 0, Scale: 2}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}
	// An invalid edit mid-batch reports 400 but the session stays usable,
	// and the body discloses the partially applied prefix so the client
	// knows not to resend the whole batch.
	resp, data := postJSON(t, hs.URL+"/v1/sessions/"+v.ID+"/edits", SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 0, Scale: 2},
		{Op: "remove_edge", Edge: 99999},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(data), "1 of 2 edits were applied") {
		t.Fatalf("partial application not disclosed: %s", data)
	}
	got := applyEdits(t, hs.URL, v.ID, SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 0, Scale: 2},
	}})
	if got.Applied != 1 {
		t.Fatalf("session unusable after failed batch: %+v", got)
	}
}

// TestSessionCapAndTTL checks the session table bound and idle eviction.
func TestSessionCapAndTTL(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxSessions: 1, SessionTTL: 150 * time.Millisecond})
	v := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	resp, _ := postJSON(t, hs.URL+"/v1/sessions", SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 2}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: status %d, want 429", resp.StatusCode)
	}
	// Wait out the TTL; the janitor ticks at ttl/4.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, _ := httpGet(t, hs.URL+"/v1/sessions/"+v.ID); resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not evicted after TTL")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := s.sessions.len(); n != 0 {
		t.Fatalf("%d sessions after eviction", n)
	}
	_, data := httpGet(t, hs.URL+"/metrics")
	if !strings.Contains(string(data), `sstad_sessions_lifecycle_total{event="evicted"} 1`) {
		t.Fatalf("eviction not counted in metrics:\n%s", data)
	}
}

// TestSessionsConcurrentHTTP hammers distinct sessions and one shared
// session from parallel clients (run under -race in CI).
func TestSessionsConcurrentHTTP(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 4})
	shared := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: int64(10 + w)}}
			resp, data := postJSON(t, hs.URL+"/v1/sessions", own)
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("worker %d create: %d %s", w, resp.StatusCode, data)
				return
			}
			var v SessionView
			if err := json.Unmarshal(data, &v); err != nil {
				errs <- err
				return
			}
			for k := 0; k < 3; k++ {
				for _, id := range []string{v.ID, shared.ID} {
					resp, data := postJSON(t, hs.URL+"/v1/sessions/"+id+"/edits", SessionEditRequest{
						Edits: []EditSpec{{Op: "scale_delay", Edge: (w + k) % 50, Scale: 1.01}},
					})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("worker %d edit: %d %s", w, resp.StatusCode, data)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestApplyErrorStatus checks the session-edit failure classification:
// cancellation stays 408, re-analysis faults (server-side) become 500, and
// only edit validation is answered as the client's fault.
func TestApplyErrorStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{context.Canceled, http.StatusRequestTimeout},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), http.StatusRequestTimeout},
		// A re-analysis interrupted by the client deadline is still a 408.
		{&ssta.ReanalysisError{Err: context.Canceled}, http.StatusRequestTimeout},
		{&ssta.ReanalysisError{Err: errStub("restitch failed")}, http.StatusInternalServerError},
		{errStub("edge index 99 out of range"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := applyErrorStatus(c.err); got != c.want {
			t.Errorf("applyErrorStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

type errStub string

func (e errStub) Error() string { return string(e) }
