package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/store"
	"repro/ssta"
)

// workerNode is one in-process worker: a full Server plus its cluster RPC
// listener. stop severs the transport (listener and every live connection)
// without closing the Server — the test-level analogue of kill -9.
type workerNode struct {
	srv  *Server
	addr string
	stop func()
}

func startWorker(t *testing.T, cfg Config) *workerNode {
	t.Helper()
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = cluster.Serve(ctx, ln, s.WorkerService()) }()
	var once sync.Once
	w := &workerNode{srv: s, addr: ln.Addr().String()}
	w.stop = func() {
		once.Do(func() {
			cancel()
			ln.Close()
		})
	}
	t.Cleanup(func() {
		w.stop()
		s.Close()
	})
	return w
}

// startCluster boots n workers and a coordinator over them, waiting until
// every node has passed its first health check. Long ping intervals keep
// node health under the test's control: only dispatch failures demote.
func startCluster(t *testing.T, n int, coordCfg Config, dial cluster.DialFunc) ([]*workerNode, *Server, *httptest.Server) {
	t.Helper()
	workers := make([]*workerNode, n)
	addrs := make([]string, n)
	for i := range workers {
		workers[i] = startWorker(t, Config{})
		addrs[i] = workers[i].addr
	}
	pool := cluster.NewPool(cluster.PoolConfig{
		Addrs:        addrs,
		Dial:         dial,
		PingInterval: 10 * time.Second,
		PingTimeout:  2 * time.Second,
	})
	coordCfg.Cluster = pool
	s, hs := newTestServer(t, coordCfg)
	waitFor(t, 5*time.Second, "all workers healthy", func() bool {
		return len(pool.Healthy()) == n
	})
	return workers, s, hs
}

// TestClusterSweepMatchesStandalone is the distributed acceptance check: a
// coordinator sharding across two workers answers /v1/sweep — flat and
// hierarchical quad with a module swap — identically to a standalone server
// at 1e-9, while actually dispatching shards and serving worker extractions
// from the remote model-cache tier.
func TestClusterSweepMatchesStandalone(t *testing.T) {
	workers, cs, chs := startCluster(t, 2, Config{}, nil)
	_, shs := newTestServer(t, Config{})

	// An unnamed scenario rides along to pin down global default naming.
	specs := append(testSweepSpecs(), SweepScenarioSpec{ScenarioSpec: ssta.ScenarioSpec{Derate: 1.3}})
	flatReq := SweepRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: specs}
	compareSweepResponses(t, "flat", sweepHTTP(t, chs.URL, flatReq), sweepHTTP(t, shs.URL, flatReq))

	quadReq := SweepRequest{
		ItemSpec: ItemSpec{Quad: &QuadSpec{Bench: "c432", Seed: 1}, Mode: "full"},
		Scenarios: append(testSweepSpecs(), SweepScenarioSpec{
			ScenarioSpec: ssta.ScenarioSpec{Name: "eco"},
			Swaps:        map[string]SwapSpec{"B": {Bench: "c432", Seed: 2}},
		}),
	}
	compareSweepResponses(t, "quad", sweepHTTP(t, chs.URL, quadReq), sweepHTTP(t, shs.URL, quadReq))

	if got := cs.cluster.dispatches.Load(); got < 2 {
		t.Fatalf("coordinator dispatched %d shards, want >= 2 (both sweeps sharded)", got)
	}
	var workerScenarios, remoteHits int64
	for _, w := range workers {
		workerScenarios += w.srv.metrics.scenariosTotal.Load()
		remoteHits += w.srv.remoteCache.hits.Load()
	}
	if workerScenarios == 0 {
		t.Fatal("no scenario ran on any worker")
	}
	if remoteHits == 0 {
		t.Fatal("quad sweep extracted on workers without a remote model-cache hit")
	}

	// Observability: the cluster block surfaces in /metrics and /healthz.
	if v := metricValue(t, chs.URL, "sstad_cluster_dispatches_total"); v < 2 {
		t.Fatalf("sstad_cluster_dispatches_total = %g, want >= 2", v)
	}
	for _, w := range workers {
		name := `sstad_cluster_node_healthy{node="` + w.addr + `"}`
		if v := metricValue(t, chs.URL, name); v != 1 {
			t.Fatalf("%s = %g, want 1", name, v)
		}
	}
	hz := getHealthz(t, chs.URL)
	cl, ok := hz["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no cluster block: %v", hz)
	}
	nodes, ok := cl["nodes"].([]any)
	if !ok || len(nodes) != 2 {
		t.Fatalf("healthz cluster nodes = %v, want 2", cl["nodes"])
	}
}

// compareSweepResponses asserts two wire-level sweep answers agree at 1e-9:
// names, per-scenario statistics, accounting, and envelope.
func compareSweepResponses(t *testing.T, label string, got, want SweepResponse) {
	t.Helper()
	if got.Completed != want.Completed || got.Scenarios != want.Scenarios || len(got.Results) != len(want.Results) {
		t.Fatalf("%s: accounting %d/%d vs %d/%d", label, got.Completed, got.Scenarios, want.Completed, want.Scenarios)
	}
	for i, w := range want.Results {
		r := got.Results[i]
		if r.Name != w.Name {
			t.Fatalf("%s scenario %d: name %q vs %q", label, i, r.Name, w.Name)
		}
		if (r.Error != "") != (w.Error != "") {
			t.Fatalf("%s scenario %q: error %q vs %q", label, w.Name, r.Error, w.Error)
		}
		if w.Error != "" {
			continue
		}
		if math.Abs(r.MeanPS-w.MeanPS) > 1e-9 || math.Abs(r.StdPS-w.StdPS) > 1e-9 || math.Abs(r.P9987PS-w.P9987PS) > 1e-9 {
			t.Fatalf("%s scenario %q: (%g, %g, %g) vs (%g, %g, %g)",
				label, w.Name, r.MeanPS, r.StdPS, r.P9987PS, w.MeanPS, w.StdPS, w.P9987PS)
		}
		if r.Shared != w.Shared {
			t.Fatalf("%s scenario %q: shared %v vs %v", label, w.Name, r.Shared, w.Shared)
		}
	}
	if math.Abs(got.Envelope.MeanPS-want.Envelope.MeanPS) > 1e-9 ||
		math.Abs(got.Envelope.P9987PS-want.Envelope.P9987PS) > 1e-9 ||
		got.Envelope.Worst != want.Envelope.Worst {
		t.Fatalf("%s: envelope %+v vs %+v", label, got.Envelope, want.Envelope)
	}
	// Regression: distributed sweeps used to lose Report.Top entirely, so
	// clustered responses reported zero verts/edges. Graph stats must
	// survive the shard round-trip and match the standalone answer.
	if got.Verts == 0 || got.Edges == 0 {
		t.Fatalf("%s: clustered sweep lost graph stats: verts=%d edges=%d", label, got.Verts, got.Edges)
	}
	if got.Verts != want.Verts || got.Edges != want.Edges {
		t.Fatalf("%s: graph stats %d/%d vs standalone %d/%d", label, got.Verts, got.Edges, want.Verts, want.Edges)
	}
}

// TestClusterOfOneMatchesStandalone: the degenerate cluster behaves exactly
// like standalone — same answers, everything dispatched to the one worker.
func TestClusterOfOneMatchesStandalone(t *testing.T) {
	_, cs, chs := startCluster(t, 1, Config{}, nil)
	_, shs := newTestServer(t, Config{})
	req := SweepRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: testSweepSpecs()}
	compareSweepResponses(t, "one-node", sweepHTTP(t, chs.URL, req), sweepHTTP(t, shs.URL, req))
	if cs.cluster.dispatches.Load() == 0 {
		t.Fatal("one-node cluster did not dispatch")
	}
	if cs.cluster.localFallbacks.Load() != 0 {
		t.Fatal("one-node cluster fell back locally")
	}
}

// TestClusterSweepSSE: SSE delivery through the distributed path — one
// scenario event per scenario (streamed back from the workers) and a
// summary equal to the synchronous answer.
func TestClusterSweepSSE(t *testing.T) {
	_, _, chs := startCluster(t, 2, Config{}, nil)
	req := SweepRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: testSweepSpecs()}
	want := sweepHTTP(t, chs.URL, req)

	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, chs.URL+"/v1/sweep", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	r, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK || !strings.HasPrefix(r.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("SSE: status %d content-type %q: %s", r.StatusCode, r.Header.Get("Content-Type"), raw)
	}
	evs := parseSSE(t, raw)
	if len(evs) != len(req.Scenarios)+1 {
		t.Fatalf("got %d events, want %d scenario + 1 summary:\n%s", len(evs), len(req.Scenarios), raw)
	}
	seen := make(map[int]bool)
	for _, ev := range evs[:len(req.Scenarios)] {
		if ev.name != "scenario" {
			t.Fatalf("event %q before summary", ev.name)
		}
		var sc SweepScenarioEvent
		if err := json.Unmarshal(ev.data, &sc); err != nil {
			t.Fatalf("scenario event: %v: %s", err, ev.data)
		}
		if sc.Error != "" || seen[sc.Index] {
			t.Fatalf("scenario event %+v (err or duplicate index)", sc)
		}
		seen[sc.Index] = true
		w := want.Results[sc.Index]
		if sc.Name != w.Name || math.Abs(sc.MeanPS-w.MeanPS) > 1e-9 {
			t.Fatalf("scenario event %+v vs sync %+v", sc, w)
		}
	}
	var sum SweepResponse
	if evs[len(evs)-1].name != "summary" {
		t.Fatalf("final event %q, want summary", evs[len(evs)-1].name)
	}
	if err := json.Unmarshal(evs[len(evs)-1].data, &sum); err != nil {
		t.Fatal(err)
	}
	compareSweepResponses(t, "sse-summary", sum, want)
}

// TestClusterSessionAffinity: sessions created through the coordinator pin
// to a worker and are served through the proxy byte-compatibly — create
// view, incremental edits, SSE edit streams, GET, DELETE — while the
// coordinator itself holds no session state.
func TestClusterSessionAffinity(t *testing.T) {
	workers, cs, chs := startCluster(t, 2, Config{}, nil)

	create := SessionCreateRequest{
		ItemSpec: ItemSpec{Bench: "c432", Seed: 1},
		Scenarios: []SweepScenarioSpec{
			{ScenarioSpec: ssta.ScenarioSpec{Name: "unit"}},
			{ScenarioSpec: ssta.ScenarioSpec{Name: "hot", Derate: 1.15}},
		},
	}
	v := createSession(t, chs.URL, create)
	if v.Kind != "flat" || v.Sweep == nil || len(v.Sweep.Results) != 2 {
		t.Fatalf("unexpected proxied create view: %+v", v)
	}
	if cs.sessions.len() != 0 {
		t.Fatalf("coordinator holds %d sessions, want 0 (state lives on the worker)", cs.sessions.len())
	}
	if got := cs.cluster.routedSessions(); got != 1 {
		t.Fatalf("routed sessions = %d, want 1", got)
	}
	onWorkers := 0
	for _, w := range workers {
		onWorkers += w.srv.sessions.len()
	}
	if onWorkers != 1 {
		t.Fatalf("%d sessions across workers, want 1", onWorkers)
	}

	// Direct reference: identical pipeline, identical edits.
	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := flow.NewGraphSession(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ref.Delay().Mean() - v.MeanPS); d > 1e-9 {
		t.Fatalf("proxied create mean differs from direct by %g", d)
	}
	got := applyEdits(t, chs.URL, v.ID, SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 5, Scale: 1.5},
	}})
	rep, err := ref.Apply(context.Background(), []ssta.Edit{{Op: ssta.EditScaleDelay, Edge: 5, Scale: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Applied != 1 || math.Abs(got.MeanPS-rep.Delay.Mean()) > 1e-9 {
		t.Fatalf("proxied edit %+v vs direct mean %g", got, rep.Delay.Mean())
	}

	// SSE edit stream crosses the proxy intact: scenario events then summary.
	edits, _ := json.Marshal(SessionEditRequest{Edits: []EditSpec{{Op: "scale_delay", Edge: 7, Scale: 1.25}}})
	hreq, _ := http.NewRequest(http.MethodPost, chs.URL+"/v1/sessions/"+v.ID+"/edits", bytes.NewReader(edits))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	r, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK || !strings.HasPrefix(r.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("proxied edit SSE: status %d content-type %q: %s", r.StatusCode, r.Header.Get("Content-Type"), raw)
	}
	evs := parseSSE(t, raw)
	if len(evs) != 3 || evs[0].name != "scenario" || evs[2].name != "summary" {
		t.Fatalf("proxied edit SSE events: %d (%s)", len(evs), raw)
	}

	// GET reflects both edit batches; DELETE unpins and 404s afterwards.
	gresp, gdata := httpGet(t, chs.URL+"/v1/sessions/"+v.ID)
	if gresp.StatusCode != http.StatusOK || !strings.Contains(string(gdata), `"edits":2`) {
		t.Fatalf("proxied GET: %d %s", gresp.StatusCode, gdata)
	}
	dreq, _ := http.NewRequest(http.MethodDelete, chs.URL+"/v1/sessions/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("proxied DELETE: %d", dresp.StatusCode)
	}
	if got := cs.cluster.routedSessions(); got != 0 {
		t.Fatalf("routed sessions after delete = %d, want 0", got)
	}
	gresp, _ = httpGet(t, chs.URL+"/v1/sessions/"+v.ID)
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d, want 404", gresp.StatusCode)
	}
}

// TestClusterWorkerDeathFailover: with pings too slow to notice, a worker
// whose transport dies is discovered by the dispatch itself; its shard
// re-homes to the survivor and the sweep still answers standalone-identical
// results. The request never fails.
func TestClusterWorkerDeathFailover(t *testing.T) {
	workers, cs, chs := startCluster(t, 2, Config{}, nil)
	_, shs := newTestServer(t, Config{})

	req := SweepRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: testSweepSpecs()}
	compareSweepResponses(t, "pre-kill", sweepHTTP(t, chs.URL, req), sweepHTTP(t, shs.URL, req))

	// Sever one worker's transport. The 10s ping interval guarantees the
	// pool still lists it healthy when the next sweep dispatches.
	workers[0].stop()
	compareSweepResponses(t, "post-kill", sweepHTTP(t, chs.URL, req), sweepHTTP(t, shs.URL, req))

	if cs.cluster.retries.Load() == 0 {
		t.Fatal("dead worker's shard was not retried")
	}
	if cs.cluster.failovers.Load() == 0 {
		t.Fatal("dead worker's shard did not fail over")
	}
	if v := metricValue(t, chs.URL, "sstad_cluster_failovers_total"); v < 1 {
		t.Fatalf("sstad_cluster_failovers_total = %g, want >= 1", v)
	}

	// Kill the survivor too: the sweep runs entirely locally and still
	// answers the same numbers.
	workers[1].stop()
	compareSweepResponses(t, "all-dead", sweepHTTP(t, chs.URL, req), sweepHTTP(t, shs.URL, req))
	if cs.cluster.localFallbacks.Load() == 0 {
		t.Fatal("sweep with no live workers did not fall back locally")
	}
}

// TestClusterTransportFaults: dropped and torn RPC frames (satellite
// fault-injection matrix at the serving layer — the transport-level cases
// live in internal/cluster). Each fault surfaces as a failed dispatch; the
// retry ladder absorbs it and the answer stays standalone-identical.
func TestClusterTransportFaults(t *testing.T) {
	_, shs := newTestServer(t, Config{})
	req := SweepRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: testSweepSpecs()}
	want := sweepHTTP(t, shs.URL, req)

	cases := []struct {
		name string
		cfg  cluster.FaultConfig
	}{
		// Write 1 on the pool conn is the health-check ping; write 2 is the
		// first shard dispatch. Dropping or tearing it kills that RPC; the
		// retry dials a clean connection (per-connection fault counters).
		{"dropped", cluster.FaultConfig{DropAfterWrites: 2}},
		{"torn", cluster.FaultConfig{TearAtWrite: 2}},
		{"latent", cluster.FaultConfig{WriteLatency: 30 * time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := func(ctx context.Context, addr string) (net.Conn, error) {
				d := net.Dialer{Timeout: 2 * time.Second}
				return d.DialContext(ctx, "tcp", addr)
			}
			fd := cluster.NewFaultDialer(base, tc.cfg)
			_, cs, chs := startCluster(t, 1, Config{}, fd.Dial)
			got := sweepHTTP(t, chs.URL, req)
			compareSweepResponses(t, tc.name, got, want)
			if tc.cfg.WriteLatency == 0 && cs.cluster.retries.Load() == 0 && cs.cluster.localFallbacks.Load() == 0 {
				t.Fatalf("%s fault absorbed without a retry or fallback", tc.name)
			}
			// The faulty path must not have dropped or duplicated scenario
			// accounting on the coordinator.
			if got.Completed != want.Completed {
				t.Fatalf("%s: completed %d vs %d", tc.name, got.Completed, want.Completed)
			}
		})
	}
}

// TestRestoredFlatSurfaced (satellite): a hierarchical session restored
// from its checkpoint re-enters life as a flat session; the view and
// /healthz must say so, since criticality queries lose hierarchy info.
func TestRestoredFlatSurfaced(t *testing.T) {
	dir := t.TempDir()
	backend := func() store.Backend {
		fs, err := store.NewFS(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}

	s1, hs1 := crashableServer(t, Config{Store: backend(), StoreFlushInterval: 10 * time.Millisecond})
	v := createSession(t, hs1.URL, SessionCreateRequest{
		ItemSpec: ItemSpec{Quad: &QuadSpec{Bench: "c432", Seed: 1}, Mode: "full"},
	})
	if v.Kind != "hier" || v.RestoredFlat {
		t.Fatalf("fresh quad session view: %+v", v)
	}
	waitFor(t, 5*time.Second, "session checkpoint on disk", func() bool {
		_, err := os.Stat(filepath.Join(dir, "sessions", v.ID+".snap"))
		return err == nil
	})
	s1.crash()

	_, hs2 := newTestServer(t, Config{Store: backend(), StoreFlushInterval: 10 * time.Millisecond})
	waitFor(t, 30*time.Second, "warm start finished", func() bool {
		return getHealthz(t, hs2.URL)["recovering"] == false
	})
	resp, data := httpGet(t, hs2.URL+"/v1/sessions/"+v.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored session GET: %d %s", resp.StatusCode, data)
	}
	var rv SessionView
	if err := json.Unmarshal(data, &rv); err != nil {
		t.Fatal(err)
	}
	if !rv.RestoredFlat {
		t.Fatalf("restored hier session not flagged restored_flat: %s", data)
	}
	if !strings.Contains(string(data), `"restored_flat":true`) {
		t.Fatalf("restored_flat missing from wire body: %s", data)
	}
	hz := getHealthz(t, hs2.URL)
	if n, ok := hz["sessions_restored_flat"].(float64); !ok || n != 1 {
		t.Fatalf("healthz sessions_restored_flat = %v, want 1", hz["sessions_restored_flat"])
	}
}

// TestPrepWarmAcrossRestart (satellite): a sweep of a hierarchical design
// stamps the design's prep identity; after a restart over the same store,
// the warm start rebuilds and re-stitches it, so the daemon's FIRST sweep
// hits the prep cache instead of recomputing partition/PCA/replacements.
func TestPrepWarmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	backend := func() store.Backend {
		fs, err := store.NewFS(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	req := SweepRequest{
		ItemSpec:  ItemSpec{Quad: &QuadSpec{Bench: "c432", Seed: 1}, Mode: "full"},
		Scenarios: testSweepSpecs(),
	}

	s1 := New(Config{Store: backend(), StoreFlushInterval: 10 * time.Millisecond})
	hs1 := httptest.NewServer(s1.Handler())
	want := sweepHTTP(t, hs1.URL, req)
	hs1.Close()
	s1.Close() // graceful: the final flush writes the prep stamp
	if _, err := os.Stat(filepath.Join(dir, "preps", "quad-c432-s1-g0-full.snap")); err != nil {
		t.Fatalf("prep stamp not on disk after shutdown: %v", err)
	}

	hits0, misses0 := ssta.PrepCacheStats()
	_, hs2 := newTestServer(t, Config{Store: backend(), StoreFlushInterval: 10 * time.Millisecond})
	waitFor(t, 30*time.Second, "warm start finished", func() bool {
		return getHealthz(t, hs2.URL)["recovering"] == false
	})
	// The warm start itself computes the prep once (a miss); the first
	// request must then hit it.
	_, missesWarm := ssta.PrepCacheStats()
	if missesWarm == misses0 {
		t.Fatal("warm start did not rebuild the stamped prep")
	}
	got := sweepHTTP(t, hs2.URL, req)
	compareSweepResponses(t, "post-restart", got, want)
	hits1, misses1 := ssta.PrepCacheStats()
	if hits1 <= hits0 {
		t.Fatalf("first sweep after restart missed the prep cache (hits %d -> %d)", hits0, hits1)
	}
	if misses1 != missesWarm {
		t.Fatalf("first sweep after restart recomputed the prep (misses %d -> %d)", missesWarm, misses1)
	}
}
