package server

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Job states.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobView is the wire representation of an async job.
type JobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// QueuePosition is the number of jobs ahead of this one (queued only).
	QueuePosition int              `json:"queue_position,omitempty"`
	Error         string           `json:"error,omitempty"`
	Result        *AnalyzeResponse `json:"result,omitempty"`
	CreatedMS     int64            `json:"created_unix_ms"`
	ElapsedMS     float64          `json:"elapsed_ms,omitempty"`
}

// job is one async analysis: submitted over POST /v1/jobs, executed by the
// job workers, polled over GET /v1/jobs/{id}.
type job struct {
	id      string
	seq     int64
	req     AnalyzeRequest
	status  string
	err     string
	result  *AnalyzeResponse
	created time.Time
	started time.Time
	ended   time.Time
	cancel  context.CancelFunc // non-nil only while running
}

// jobStore is the bounded in-memory job registry. The queue is a
// mutex-guarded FIFO slice (not a channel) so cancelling a queued job
// reclaims its capacity immediately; wake is a buffered signal channel the
// workers block on. Finished jobs are evicted oldest-first beyond
// maxFinished.
type jobStore struct {
	mu       sync.Mutex
	jobs     map[string]*job
	seq      int64
	pending  []*job // FIFO of queued jobs
	depth    int    // admission bound on len(pending)
	wake     chan struct{}
	maxJobs  int // retained finished jobs
	running  int
	finished int64
}

func newJobStore(queueDepth, maxFinished int) *jobStore {
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if maxFinished <= 0 {
		maxFinished = 256
	}
	return &jobStore{
		jobs:    make(map[string]*job),
		depth:   queueDepth,
		wake:    make(chan struct{}, queueDepth),
		maxJobs: maxFinished,
	}
}

// submit enqueues a new job, failing when the queue is full (bounded
// admission: the caller maps this to 503 + Retry-After).
func (st *jobStore) submit(req AnalyzeRequest) (*job, error) {
	st.mu.Lock()
	if len(st.pending) >= st.depth {
		n := len(st.pending)
		st.mu.Unlock()
		return nil, fmt.Errorf("job queue full (%d queued)", n)
	}
	st.seq++
	j := &job{
		id:      fmt.Sprintf("job-%d", st.seq),
		seq:     st.seq,
		req:     req,
		status:  JobQueued,
		created: time.Now(),
	}
	st.pending = append(st.pending, j)
	st.jobs[j.id] = j
	st.evictLocked()
	st.mu.Unlock()
	select {
	case st.wake <- struct{}{}:
	default: // a wake is already pending; a worker will drain the queue
	}
	return j, nil
}

// pop removes the next queued job, or nil when the queue is empty (a
// spurious wake after a cancellation).
func (st *jobStore) pop() *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.pending) == 0 {
		return nil
	}
	j := st.pending[0]
	st.pending = st.pending[1:]
	return j
}

// evictLocked drops the oldest finished jobs beyond the retention bound so
// an abandoned poller cannot pin results forever.
func (st *jobStore) evictLocked() {
	var done []*job
	for _, j := range st.jobs {
		if j.status == JobDone || j.status == JobFailed || j.status == JobCancelled {
			done = append(done, j)
		}
	}
	if len(done) <= st.maxJobs {
		return
	}
	sort.Slice(done, func(a, b int) bool { return done[a].seq < done[b].seq })
	for _, j := range done[:len(done)-st.maxJobs] {
		delete(st.jobs, j.id)
	}
}

// view snapshots a job for the wire.
func (st *jobStore) view(id string) (JobView, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return JobView{}, false
	}
	v := JobView{
		ID: j.id, Status: j.status, Error: j.err, Result: j.result,
		CreatedMS: j.created.UnixMilli(),
	}
	if !j.ended.IsZero() && !j.started.IsZero() {
		v.ElapsedMS = float64(j.ended.Sub(j.started).Microseconds()) / 1000
	}
	if j.status == JobQueued {
		for _, o := range st.pending {
			if o.seq < j.seq {
				v.QueuePosition++
			}
		}
	}
	return v, true
}

// JobSummary is one row of GET /v1/jobs: identity and state only — polling
// a specific id is how a client gets the result payload.
type JobSummary struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	CreatedMS int64  `json:"created_unix_ms"`
}

// list snapshots up to limit job summaries, newest first.
func (st *jobStore) list(limit int) []JobSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	all := make([]*job, 0, len(st.jobs))
	for _, j := range st.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq > all[b].seq })
	if len(all) > limit {
		all = all[:limit]
	}
	out := make([]JobSummary, len(all))
	for i, j := range all {
		out[i] = JobSummary{ID: j.id, Status: j.status, CreatedMS: j.created.UnixMilli()}
	}
	return out
}

// cancelJob cancels a queued or running job. A queued job is removed from
// the pending FIFO immediately — its queue capacity is reclaimed on the
// spot; a running job is cancelled through its context and marked by the
// worker once the batch unwinds. terminal reports that the job had already
// finished — the cancel was a no-op (repeat DELETEs are idempotent).
func (st *jobStore) cancelJob(id string) (v JobView, terminal, ok bool) {
	st.mu.Lock()
	j, ok := st.jobs[id]
	if !ok {
		st.mu.Unlock()
		return JobView{}, false, false
	}
	terminal = j.status == JobDone || j.status == JobFailed || j.status == JobCancelled
	cancel := j.cancel
	if j.status == JobQueued {
		j.status = JobCancelled
		j.ended = time.Now()
		for k, o := range st.pending {
			if o == j {
				st.pending = append(st.pending[:k], st.pending[k+1:]...)
				break
			}
		}
		st.finished++ // terminal without ever reaching a worker
		st.evictLocked()
	}
	st.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	v, _ = st.view(id)
	return v, terminal, true
}

// counts samples the queue gauges for /metrics.
func (st *jobStore) counts() (queued, running int, finished int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.pending), st.running, st.finished
}

// runJobs is a job-worker loop: it drains the queue until the server shuts
// down. Each worker runs one job at a time; the analysis itself fans out
// per the request's workers knob and still passes through the same
// admission semaphore as sync requests, so total analysis concurrency stays
// bounded no matter how the work arrives.
func (s *Server) runJobs(base context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-base.Done():
			return
		case <-s.jobs.wake:
			// A wake may be spurious (its job was cancelled while queued);
			// pop returns nil then and the worker just goes back to sleep.
			if j := s.jobs.pop(); j != nil {
				s.runJob(base, j)
			}
		}
	}
}

func (s *Server) runJob(base context.Context, j *job) {
	// Jobs honor the same per-request deadline knob as sync requests, on
	// top of explicit DELETE cancellation.
	ctx, cancel := s.requestCtx(base, &j.req)
	defer cancel()

	st := s.jobs
	st.mu.Lock()
	if j.status != JobQueued { // cancelled while queued
		st.mu.Unlock()
		return
	}
	j.status = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	st.running++
	st.mu.Unlock()

	resp, err := s.runBatch(ctx, 0, j.req)

	st.mu.Lock()
	j.ended = time.Now()
	j.cancel = nil
	j.result = resp // keep partial per-item results even when cancelled
	cancelled := ctx.Err() != nil && base.Err() == nil
	switch {
	case err != nil && cancelled:
		j.status = JobCancelled
		j.err = ctx.Err().Error() // DELETE -> canceled, timeout_ms -> deadline exceeded
	case err != nil:
		j.status = JobFailed
		j.err = err.Error()
	case cancelled && hasContextItemError(resp):
		// The batch was genuinely cut short. A ctx that fired only after
		// every item completed must not demote a finished job.
		j.status = JobCancelled
		j.err = ctx.Err().Error()
	default:
		j.status = JobDone
	}
	st.running--
	st.finished++
	st.evictLocked()
	st.mu.Unlock()
}

// hasContextItemError reports whether any item of the response was cut off
// by cancellation or a deadline.
func hasContextItemError(resp *AnalyzeResponse) bool {
	if resp == nil {
		return true
	}
	for _, r := range resp.Results {
		if strings.Contains(r.Error, context.Canceled.Error()) ||
			strings.Contains(r.Error, context.DeadlineExceeded.Error()) {
			return true
		}
	}
	return false
}
