package server

import (
	"context"
	"net/http"
	"strings"
	"time"

	"repro/ssta"
)

// Server-sent-events delivery: a client that asks for
// `Accept: text/event-stream` on POST /v1/sweep or POST
// /v1/sessions/{id}/edits gets per-scenario progress as the engine
// finishes each scenario, then one final summary that is byte-identical
// (modulo SSE framing) to the synchronous JSON answer.
//
// Streaming requests are never coalesced or micro-batched: the stream is
// the caller's private progress channel, so sharing an execution would
// interleave foreign event orders. Validation and admission errors raised
// before the first event still travel as plain JSON status codes; once the
// stream is open, failures arrive as an `error` event.
//
// Shutdown ordering: every live stream registers in Server.streamWG and
// ties its context to the server's base context, so SIGTERM cancels the
// in-flight sweep (per-scenario cancellation errors stream out), the
// handler emits its final event and returns, and Close drains streamWG
// before the durable store's final flush — no stream outlives persistence.

// wantsEventStream reports whether the client negotiated SSE delivery.
func wantsEventStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// SweepScenarioEvent is the payload of one `scenario` SSE event: the
// finished scenario's result plus its index in the request's scenario list
// (events arrive in completion order, not request order).
type SweepScenarioEvent struct {
	Index int `json:"index"`
	SweepScenarioResult
}

// sseWriter frames events onto a flushable response.
type sseWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

// start switches the response to an event stream. Must be called before
// any event; once called, status codes can no longer change.
func (e *sseWriter) start() {
	h := e.w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	e.w.WriteHeader(http.StatusOK)
	e.fl.Flush()
}

// event frames one named event. The payload is the same encoder as the
// synchronous JSON path (marshalJSON), so a summary event's data line is
// byte-identical to the sync response body.
func (e *sseWriter) event(name string, v any) {
	body := marshalJSON(v)
	// marshalJSON ends with exactly one newline and (compact encoding)
	// contains none internally, so a single data line frames it.
	e.w.Write([]byte("event: " + name + "\ndata: "))
	e.w.Write(body)
	e.w.Write([]byte("\n"))
	e.fl.Flush()
}

// eventError frames a failure that happened after the stream opened, with
// the same body shape httpError would have sent.
func (e *sseWriter) eventError(status int, msg string) {
	e.w.Write([]byte("event: error\ndata: "))
	e.w.Write(errorBody(status, msg))
	e.w.Write([]byte("\n"))
	e.fl.Flush()
}

// trackStream registers a live stream for shutdown draining and ties ctx
// to the server's base context so SIGTERM cancels in-flight work. The
// returned release must be deferred.
func (s *Server) trackStream(cancel context.CancelFunc) (release func()) {
	s.streamWG.Add(1)
	s.metrics.streaming.Add(1)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return func() {
		stop()
		s.metrics.streaming.Add(-1)
		s.streamWG.Done()
	}
}

// streamSweep is the SSE arm of POST /v1/sweep: one `scenario` event per
// finished scenario (completion order), then one `summary` event carrying
// the exact synchronous SweepResponse.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, req *SweepRequest, specs []SweepScenarioSpec) {
	fl, ok := w.(http.Flusher)
	if !ok {
		// Transport cannot flush incrementally; serve the sync answer.
		ctx, cancel := s.requestCtx(r.Context(), &AnalyzeRequest{TimeoutMS: req.TimeoutMS})
		defer cancel()
		status, body := s.doSweep(ctx, req, specs)
		writeRaw(w, status, body)
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), &AnalyzeRequest{TimeoutMS: req.TimeoutMS})
	defer cancel()
	release := s.trackStream(cancel)
	defer release()

	// Admission and validation run before the stream opens, so their
	// failures keep real status codes.
	if err := s.acquireSlotWait(ctx, 0); err != nil {
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	defer s.releaseSlot()
	pr, status, body := s.prepSweep(ctx, req, specs)
	if pr == nil {
		writeRaw(w, status, body)
		return
	}

	sse := &sseWriter{w: w, fl: fl}
	sse.start()

	// The engine's hook runs on sweep worker goroutines; the response
	// writer is not concurrency-safe, so events cross a channel sized to
	// the scenario count — the hook can never block on a slow client.
	metricsHook := s.scenarioMetricsHook()
	events := make(chan SweepScenarioEvent, len(pr.scens))
	opt := ssta.SweepOptions{
		Workers: pr.workers,
		TopK:    req.TopK,
		OnScenarioDone: func(i int, res *ssta.ScenarioResult) {
			metricsHook(i, res)
			events <- SweepScenarioEvent{Index: i, SweepScenarioResult: sweepScenarioView(res)}
		},
	}
	start := time.Now()
	var rep *ssta.SweepReport
	var runErr error
	go func() {
		defer close(events)
		rep, runErr = s.runSweep(ctx, pr, opt)
	}()
	for ev := range events {
		sse.event("scenario", ev)
	}
	if runErr != nil {
		status, _ := s.sweepFailure(runErr, runErr.Error())
		sse.eventError(status, runErr.Error())
		return
	}
	sse.event("summary", sweepResponseView(pr.name, rep, float64(time.Since(start).Microseconds())/1000))
}
