package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/ssta"
)

// BenchmarkBatchedFront measures aggregate throughput of 8 concurrent
// compatible requests — single-scenario MCMM sweeps against the same
// hierarchical quad design, each with a different derate — served
// per-request versus micro-batched. Per-request, every sweep pays its own
// design stitch (boundary conditions + per-edge rewrite + propagation;
// the geometry/PCA prep cache is warm in both arms); batched, the 8
// callers merge into ONE shared-prep sweep: one stitch, then 8 flat
// delay-bank rescales + propagation passes. One iteration = all 8
// requests answered.
func BenchmarkBatchedFront(b *testing.B) {
	reqs := make([][]byte, 8)
	for i := range reqs {
		body, err := json.Marshal(SweepRequest{
			ItemSpec: ItemSpec{Quad: &QuadSpec{Bench: "c1355", Seed: 1}},
			Scenarios: []SweepScenarioSpec{
				{ScenarioSpec: ssta.ScenarioSpec{Name: fmt.Sprintf("corner-%d", i), Derate: 1 + 0.02*float64(i)}},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = body
	}

	fire := func(b *testing.B, url string) {
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(body []byte) {
				defer wg.Done()
				r, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				data, _ := io.ReadAll(r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					b.Errorf("status %d: %s", r.StatusCode, data)
				}
			}(reqs[i])
		}
		wg.Wait()
	}

	run := func(b *testing.B, cfg Config) {
		s := New(cfg)
		hs := httptest.NewServer(s.Handler())
		defer func() {
			hs.Close()
			s.Close()
		}()
		fire(b, hs.URL) // warm the design/extract/prep caches in both arms
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			fire(b, hs.URL)
		}
	}

	b.Run("independent", func(b *testing.B) {
		run(b, Config{MaxConcurrent: 8})
	})
	b.Run("batched", func(b *testing.B) {
		run(b, Config{MaxConcurrent: 8, BatchMax: 8, BatchWindow: 20 * time.Millisecond})
	})
}
