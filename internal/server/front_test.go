package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/ssta"
)

// metricValue scrapes /metrics and returns the value of the series with
// the exact given name (including any label set), or -1 when absent.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	return -1
}

// TestCoalesceIdenticalRequests: N byte-identical concurrent /v1/analyze
// requests run exactly ONE engine execution, and every caller receives
// byte-identical response bodies. The execution is pinned behind the
// single analysis slot until all followers have attached, so the test is
// deterministic.
func TestCoalesceIdenticalRequests(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1})
	s.sem <- struct{}{} // hold the only slot: the leader blocks at admission

	const N = 4
	req, _ := json.Marshal(AnalyzeRequest{Items: []ItemSpec{{Bench: "c432", Seed: 1}}})
	bodies := make([][]byte, N)
	statuses := make([]int, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := http.Post(hs.URL+"/v1/analyze", "application/json", bytes.NewReader(req))
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Body.Close()
			statuses[i] = r.StatusCode
			bodies[i], _ = io.ReadAll(r.Body)
		}(i)
	}

	// All but the leader must register as coalesce hits while the leader is
	// still parked at the slot; only then may the execution proceed.
	deadline := time.Now().Add(10 * time.Second)
	for metricValue(t, hs.URL, `sstad_coalesce_hits_total{endpoint="analyze"}`) < N-1 {
		if time.Now().After(deadline) {
			t.Fatal("followers did not coalesce onto the in-flight request")
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-s.sem // release the slot; the single execution runs
	wg.Wait()

	for i := 0; i < N; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(bodies[0], &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Error != "" || out.Results[0].MeanPS <= 0 {
		t.Fatalf("bad coalesced result: %+v", out.Results)
	}
	// Exactly ONE engine execution for N callers.
	if got := metricValue(t, hs.URL, "sstad_items_total"); got != 1 {
		t.Fatalf("sstad_items_total = %g, want 1 (single coalesced execution)", got)
	}
	if got := metricValue(t, hs.URL, `sstad_requests_total{endpoint="analyze"}`); got != N {
		t.Fatalf("analyze requests = %g, want %d", got, N)
	}
}

const frontTol = 1e-9

func near(a, b float64) bool {
	return math.Abs(a-b) <= frontTol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestBatchedFrontMatchesIndependent: compatible concurrent requests —
// three sweeps with overlapping scenario sets plus one plain analyze, all
// against the same subject — merge into ONE shared-prep sweep execution,
// and every caller's response matches the unbatched server's answer for
// the same request at 1e-9.
func TestBatchedFrontMatchesIndependent(t *testing.T) {
	_, batched := newTestServer(t, Config{MaxConcurrent: 4, BatchWindow: 5 * time.Second, BatchMax: 4})
	_, plain := newTestServer(t, Config{MaxConcurrent: 4})

	item := ItemSpec{Bench: "c432", Seed: 1}
	sweeps := []SweepRequest{
		{ItemSpec: item, Scenarios: []SweepScenarioSpec{
			{ScenarioSpec: ssta.ScenarioSpec{Name: "unit"}},
			{ScenarioSpec: ssta.ScenarioSpec{Name: "hot", Derate: 1.15}},
		}},
		{ItemSpec: item, Scenarios: []SweepScenarioSpec{
			{ScenarioSpec: ssta.ScenarioSpec{Name: "toasty", Derate: 1.15}}, // dedupes with "hot"
			{ScenarioSpec: ssta.ScenarioSpec{Name: "sigma", GlobSigma: 1.4, RandSigma: 1.2}},
		}},
		{ItemSpec: item, Scenarios: []SweepScenarioSpec{
			{ScenarioSpec: ssta.ScenarioSpec{Name: "cold", Derate: 0.9}},
		}},
	}
	analyzeReq := AnalyzeRequest{Items: []ItemSpec{item}}

	// Fire all four concurrently at the batched server; BatchMax=4 flushes
	// the group the moment the last one arrives.
	gotSweeps := make([]SweepResponse, len(sweeps))
	var gotAnalyze AnalyzeResponse
	var wg sync.WaitGroup
	for i := range sweeps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gotSweeps[i] = sweepHTTP(t, batched.URL, sweeps[i])
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		gotAnalyze = analyze(t, batched.URL, analyzeReq)
	}()
	wg.Wait()

	// Reference answers, one independent request each.
	for i := range sweeps {
		want := sweepHTTP(t, plain.URL, sweeps[i])
		got := gotSweeps[i]
		if got.Scenarios != want.Scenarios || len(got.Results) != len(want.Results) {
			t.Fatalf("sweep %d: shape %d/%d vs %d/%d", i, got.Scenarios, len(got.Results), want.Scenarios, len(want.Results))
		}
		for k := range want.Results {
			g, w := got.Results[k], want.Results[k]
			if g.Name != w.Name || g.Error != w.Error ||
				!near(g.MeanPS, w.MeanPS) || !near(g.StdPS, w.StdPS) || !near(g.P9987PS, w.P9987PS) {
				t.Fatalf("sweep %d scenario %d: batched %+v vs independent %+v", i, k, g, w)
			}
		}
		if !near(got.Envelope.P9987PS, want.Envelope.P9987PS) || got.Envelope.Worst != want.Envelope.Worst {
			t.Fatalf("sweep %d envelope: batched %+v vs independent %+v", i, got.Envelope, want.Envelope)
		}
	}
	wantAnalyze := analyze(t, plain.URL, analyzeReq)
	g, w := gotAnalyze.Results[0], wantAnalyze.Results[0]
	if g.Error != "" || w.Error != "" {
		t.Fatalf("analyze errored: %q / %q", g.Error, w.Error)
	}
	if !near(g.MeanPS, w.MeanPS) || !near(g.StdPS, w.StdPS) || !near(g.P9987PS, w.P9987PS) ||
		g.Verts != w.Verts || g.Edges != w.Edges || g.Name != w.Name {
		t.Fatalf("analyze: batched %+v vs independent %+v", g, w)
	}

	// ONE batched execution answered all four callers, and the overlapping
	// derate scenario was evaluated once.
	if got := metricValue(t, batched.URL, "sstad_batch_executions_total"); got != 1 {
		t.Fatalf("batch executions = %g, want 1", got)
	}
	if got := metricValue(t, batched.URL, "sstad_batch_occupancy_sum"); got != 4 {
		t.Fatalf("batch occupancy = %g, want 4", got)
	}
	if got := metricValue(t, batched.URL, "sstad_batch_scenarios_deduped_total"); got < 1 {
		t.Fatalf("scenarios deduped = %g, want >= 1 (hot/toasty share a transform)", got)
	}
	if got := metricValue(t, batched.URL, `sstad_batch_flush_total{reason="size"}`); got != 1 {
		t.Fatalf("size flushes = %g, want 1", got)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data []byte
}

func parseSSE(t *testing.T, raw []byte) []sseEvent {
	t.Helper()
	var evs []sseEvent
	for _, block := range bytes.Split(raw, []byte("\n\n")) {
		if len(bytes.TrimSpace(block)) == 0 {
			continue
		}
		var ev sseEvent
		for _, line := range bytes.Split(block, []byte("\n")) {
			if rest, ok := bytes.CutPrefix(line, []byte("event: ")); ok {
				ev.name = string(rest)
			} else if rest, ok := bytes.CutPrefix(line, []byte("data: ")); ok {
				ev.data = rest
			}
		}
		if ev.name == "" {
			t.Fatalf("unnamed SSE block: %q", block)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestSweepSSE: /v1/sweep with Accept: text/event-stream delivers one
// `scenario` event per scenario and a final `summary` whose payload
// matches the synchronous JSON answer.
func TestSweepSSE(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	req := SweepRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: testSweepSpecs()}
	want := sweepHTTP(t, hs.URL, req)

	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/sweep", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	r, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.HasPrefix(r.Header.Get("Content-Type"), "text/event-stream") {
		data, _ := io.ReadAll(r.Body)
		t.Fatalf("SSE: status %d content-type %q: %s", r.StatusCode, r.Header.Get("Content-Type"), data)
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	evs := parseSSE(t, raw)
	if len(evs) != len(req.Scenarios)+1 {
		t.Fatalf("got %d events, want %d scenario + 1 summary:\n%s", len(evs), len(req.Scenarios), raw)
	}
	seen := make(map[int]bool)
	for _, ev := range evs[:len(req.Scenarios)] {
		if ev.name != "scenario" {
			t.Fatalf("event %q before summary, want scenario", ev.name)
		}
		var sc SweepScenarioEvent
		if err := json.Unmarshal(ev.data, &sc); err != nil {
			t.Fatalf("scenario event: %v: %s", err, ev.data)
		}
		if sc.Error != "" || seen[sc.Index] {
			t.Fatalf("scenario event %+v (err or duplicate index)", sc)
		}
		seen[sc.Index] = true
		w := want.Results[sc.Index]
		if sc.Name != w.Name || !near(sc.MeanPS, w.MeanPS) || !near(sc.P9987PS, w.P9987PS) {
			t.Fatalf("scenario event %+v vs sync %+v", sc, w)
		}
	}
	last := evs[len(evs)-1]
	if last.name != "summary" {
		t.Fatalf("final event %q, want summary", last.name)
	}
	var sum SweepResponse
	if err := json.Unmarshal(last.data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Completed != want.Completed || !near(sum.Envelope.P9987PS, want.Envelope.P9987PS) ||
		sum.Envelope.Worst != want.Envelope.Worst || len(sum.Results) != len(want.Results) {
		t.Fatalf("summary %+v vs sync %+v", sum, want)
	}
}

// TestSessionSweepAndEditSSE: a session created with scenarios carries an
// active MCMM sweep; an SSE edit batch streams one re-evaluated scenario
// event per scenario before the summary, and the summary carries the
// refreshed sweep.
func TestSessionSweepAndEditSSE(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	create := SessionCreateRequest{
		ItemSpec: ItemSpec{Bench: "c432", Seed: 1},
		Scenarios: []SweepScenarioSpec{
			{ScenarioSpec: ssta.ScenarioSpec{Name: "unit"}},
			{ScenarioSpec: ssta.ScenarioSpec{Name: "hot", Derate: 1.15}},
		},
	}
	resp, data := postJSON(t, hs.URL+"/v1/sessions", create)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, data)
	}
	var v SessionView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Sweep == nil || len(v.Sweep.Results) != 2 || v.Sweep.Results[1].Name != "hot" {
		t.Fatalf("create response carries no sweep: %s", data)
	}
	baseHot := v.Sweep.Results[1].MeanPS

	edits, _ := json.Marshal(SessionEditRequest{Edits: []EditSpec{{Op: "scale_delay", Edge: 0, Scale: 1.5}}})
	hreq, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/sessions/"+v.ID+"/edits", bytes.NewReader(edits))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	r, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK || !strings.HasPrefix(r.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("edit SSE: status %d content-type %q: %s", r.StatusCode, r.Header.Get("Content-Type"), raw)
	}
	evs := parseSSE(t, raw)
	if len(evs) != 3 { // 2 scenario + 1 summary
		t.Fatalf("got %d events, want 3:\n%s", len(evs), raw)
	}
	for _, ev := range evs[:2] {
		if ev.name != "scenario" {
			t.Fatalf("event %q, want scenario", ev.name)
		}
	}
	var sum SessionEditResponse
	if evs[2].name != "summary" {
		t.Fatalf("final event %q, want summary", evs[2].name)
	}
	if err := json.Unmarshal(evs[2].data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Applied != 1 || sum.Sweep == nil || len(sum.Sweep.Results) != 2 {
		t.Fatalf("summary missing refreshed sweep: %s", evs[2].data)
	}
	if sum.Sweep.Results[1].MeanPS <= baseHot {
		t.Fatalf("hot scenario did not move after a 1.5x edge scale: %g vs %g", sum.Sweep.Results[1].MeanPS, baseHot)
	}
	// The synchronous view reflects the same refreshed sweep.
	gr, err := http.Get(hs.URL + "/v1/sessions/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	gdata, _ := io.ReadAll(gr.Body)
	gr.Body.Close()
	var after SessionView
	if err := json.Unmarshal(gdata, &after); err != nil {
		t.Fatal(err)
	}
	if after.Sweep == nil || !near(after.Sweep.Results[1].MeanPS, sum.Sweep.Results[1].MeanPS) {
		t.Fatalf("GET sweep %+v does not match edit summary %+v", after.Sweep, sum.Sweep)
	}
}

// TestJobsListAndIdempotentDelete: GET /v1/jobs pages newest-first, and
// DELETE of a job that already reached a terminal state answers 204 with
// no body — repeat DELETEs are idempotent.
func TestJobsListAndIdempotentDelete(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, data := postJSON(t, hs.URL+"/v1/jobs", AnalyzeRequest{Items: []ItemSpec{{Bench: "c432", Seed: 1}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var jv JobView
	if err := json.Unmarshal(data, &jv); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for jv.Status != JobDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
		r, _ := http.Get(hs.URL + "/v1/jobs/" + jv.ID)
		data, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(data, &jv); err != nil {
			t.Fatal(err)
		}
	}

	r, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(r.Body)
	r.Body.Close()
	var list struct {
		Jobs  []JobSummary `json:"jobs"`
		Count int          `json:"count"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatalf("list: %v: %s", err, data)
	}
	if list.Count != 1 || len(list.Jobs) != 1 || list.Jobs[0].ID != jv.ID || list.Jobs[0].Status != JobDone {
		t.Fatalf("list = %s, want one done job %s", data, jv.ID)
	}
	if r, _ := http.Get(hs.URL + "/v1/jobs?limit=abc"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: %d, want 400", r.StatusCode)
	} else {
		r.Body.Close()
	}

	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+jv.ID, nil)
		dr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(dr.Body)
		dr.Body.Close()
		if dr.StatusCode != http.StatusNoContent || len(body) != 0 {
			t.Fatalf("DELETE %d of finished job: status %d body %q, want 204 empty", i, dr.StatusCode, body)
		}
	}
	// The job record is untouched: still done, still pollable.
	pr, _ := http.Get(hs.URL + "/v1/jobs/" + jv.ID)
	pdata, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK || !strings.Contains(string(pdata), fmt.Sprintf("%q", JobDone)) {
		t.Fatalf("poll after DELETE: %d %s", pr.StatusCode, pdata)
	}
}
