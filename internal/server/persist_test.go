package server

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
	"repro/ssta"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// crashableServer boots a server without the auto-Close cleanup so a test
// can simulate a crash: stop the goroutines WITHOUT the final flush that
// a graceful Close performs.
func crashableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// crash kills the background goroutines with no final flush — whatever the
// write-behind pipeline had not flushed is lost, as in a real crash.
func (s *Server) crash() {
	s.baseStop()
	s.wg.Wait()
}

func getHealthz(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

func TestModelKeyRoundTrip(t *testing.T) {
	cases := []graphKey{
		{bench: "c432", seed: 1},
		{bench: "c880", seed: -7},
		{mult: 8},
	}
	for _, gk := range cases {
		key, ok := modelKey(gk)
		if !ok {
			t.Fatalf("modelKey(%+v) rejected", gk)
		}
		back, ok := parseModelKey(key)
		if !ok || back != gk {
			t.Fatalf("parseModelKey(%q) = %+v, %v; want %+v", key, back, ok, gk)
		}
	}
	if _, ok := modelKey(graphKey{}); ok {
		t.Fatal("empty graph key got a model key")
	}
	if _, ok := modelKey(graphKey{bench: "../evil", seed: 1}); ok {
		t.Fatal("path-traversal bench name got a model key")
	}
	for _, bad := range []string{"models/what.snap", "models/bench-x.snap", "sessions/sess-1.snap", "models/mult-0.snap"} {
		if _, ok := parseModelKey(bad); ok {
			t.Fatalf("parseModelKey(%q) accepted", bad)
		}
	}
}

// TestStoreDegradationNeverFailsRequests is the degradation contract: with
// a backend failing 100% of writes, analyze, sweep, and session traffic
// all succeed; the trouble shows up only in /healthz and /metrics.
func TestStoreDegradationNeverFailsRequests(t *testing.T) {
	fault := store.NewFault(store.NewMem(), store.FaultConfig{
		FailEveryN: 1,
		Only:       map[store.Op]bool{store.OpPut: true},
	})
	_, hs := newTestServer(t, Config{Store: fault, StoreFlushInterval: 10 * time.Millisecond})

	resp := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{{Bench: "c432", Seed: 1, Extract: true}}})
	if resp.Results[0].Error != "" {
		t.Fatalf("analyze failed under store faults: %s", resp.Results[0].Error)
	}
	sweepHTTP(t, hs.URL, SweepRequest{
		ItemSpec:  ItemSpec{Bench: "c432", Seed: 1},
		Scenarios: testSweepSpecs(),
	})
	v := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	out := applyEdits(t, hs.URL, v.ID, SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 3, Scale: 1.2},
	}})
	if out.Applied != 1 {
		t.Fatalf("edit not applied under store faults: %+v", out)
	}

	// The store flips to degraded after enough failed flush rounds without
	// a single request having noticed.
	waitFor(t, 5*time.Second, "degraded store in /healthz", func() bool {
		body := getHealthz(t, hs.URL)
		st, ok := body["store"].(map[string]any)
		if !ok {
			return false
		}
		degraded, _ := st["degraded"].(bool)
		errs, _ := st["errors"].(float64)
		return degraded && errs > 0
	})

	// And the error counters are on /metrics.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `sstad_store_ops_total{op="put"}`) {
		t.Fatalf("metrics missing store ops counter:\n%s", text)
	}
	if strings.Contains(text, `sstad_store_errors_total{op="put"} 0`) {
		t.Fatal("metrics report zero put errors under an always-failing store")
	}

	// Requests still succeed now that the store is formally degraded.
	resp = analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{{Bench: "c432", Seed: 2}}})
	if resp.Results[0].Error != "" {
		t.Fatalf("analyze failed on degraded store: %s", resp.Results[0].Error)
	}
}

// TestCrashRecoveryRestoresSession is the crash-safety acceptance test:
// create + edit a session, let the write-behind flusher persist it, kill
// the server without a final flush, boot a new one on the same store, and
// check the restored session answers an identical edit batch identically.
func TestCrashRecoveryRestoresSession(t *testing.T) {
	mem := store.NewMem()
	ctx := context.Background()
	s1, hs1 := crashableServer(t, Config{Store: mem, StoreFlushInterval: 10 * time.Millisecond})

	v := createSession(t, hs1.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	applyEdits(t, hs1.URL, v.ID, SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 3, Scale: 1.25},
		{Op: "set_nominal", Edge: 10, ValuePS: 42.5},
		{Op: "remove_edge", Edge: 20},
	}})
	key := sessionKey(v.ID)
	waitFor(t, 5*time.Second, "session checkpoint flush", func() bool {
		data, err := mem.Get(ctx, key)
		if err != nil {
			return false
		}
		// The checkpoint must already carry the edits, not just the create.
		cp, err := decodeCheckpoint(data)
		return err == nil && cp.Edits == 3
	})
	s1.crash()

	s2, hs2 := newTestServer(t, Config{Store: mem, StoreFlushInterval: 10 * time.Millisecond})
	waitFor(t, 10*time.Second, "warm start", func() bool {
		return !s2.persist.recovering.Load() && s2.sessions.len() == 1
	})

	// The restored session is served under its old id with its history.
	resp, err := http.Get(hs2.URL + "/v1/sessions/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rv SessionView
	if err := json.NewDecoder(resp.Body).Decode(&rv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rv.ID != v.ID || rv.Edits != 3 {
		t.Fatalf("restored session view: status %d, %+v", resp.StatusCode, rv)
	}

	// Reference: the same pipeline run fresh in-process.
	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := flow.NewGraphSession(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Apply(ctx, []ssta.Edit{
		{Op: ssta.EditScaleDelay, Edge: 3, Scale: 1.25},
		{Op: ssta.EditSetNominal, Edge: 10, Value: 42.5},
		{Op: ssta.EditRemoveEdge, Edge: 20},
	}); err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ref.Delay().Mean() - rv.MeanPS); d > 1e-9 {
		t.Fatalf("restored mean differs from reference by %g", d)
	}

	// An identical post-restart edit batch answers identically.
	out := applyEdits(t, hs2.URL, v.ID, SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 7, Scale: 0.8},
	}})
	rep, err := ref.Apply(ctx, []ssta.Edit{{Op: ssta.EditScaleDelay, Edge: 7, Scale: 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(rep.Delay.Mean() - out.MeanPS); d > 1e-9 {
		t.Fatalf("post-restore edit mean differs from reference by %g", d)
	}
	if d := math.Abs(rep.Delay.Std() - out.StdPS); d > 1e-9 {
		t.Fatalf("post-restore edit std differs from reference by %g", d)
	}
}

// TestDeleteRemovesCheckpoint: create -> delete -> restart -> 404. A
// deleted session must not resurrect from its checkpoint.
func TestDeleteRemovesCheckpoint(t *testing.T) {
	mem := store.NewMem()
	ctx := context.Background()
	s1, hs1 := crashableServer(t, Config{Store: mem, StoreFlushInterval: 10 * time.Millisecond})

	v := createSession(t, hs1.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	key := sessionKey(v.ID)
	waitFor(t, 5*time.Second, "checkpoint flush", func() bool {
		_, err := mem.Get(ctx, key)
		return err == nil
	})

	req, _ := http.NewRequest(http.MethodDelete, hs1.URL+"/v1/sessions/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	waitFor(t, 5*time.Second, "checkpoint delete flush", func() bool {
		_, err := mem.Get(ctx, key)
		return err != nil
	})
	s1.crash()

	s2, hs2 := newTestServer(t, Config{Store: mem, StoreFlushInterval: 10 * time.Millisecond})
	waitFor(t, 10*time.Second, "warm start", func() bool {
		return !s2.persist.recovering.Load()
	})
	resp, err = http.Get(hs2.URL + "/v1/sessions/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session resurrected: status %d", resp.StatusCode)
	}
}

// TestEvictionDropsCheckpoint: idle-TTL eviction also deletes the durable
// checkpoint, so an evicted session stays gone across a restart.
func TestEvictionDropsCheckpoint(t *testing.T) {
	mem := store.NewMem()
	ctx := context.Background()
	_, hs := newTestServer(t, Config{
		Store:              mem,
		StoreFlushInterval: 10 * time.Millisecond,
		SessionTTL:         150 * time.Millisecond,
	})
	v := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	key := sessionKey(v.ID)
	waitFor(t, 5*time.Second, "checkpoint flush", func() bool {
		_, err := mem.Get(ctx, key)
		return err == nil
	})
	waitFor(t, 10*time.Second, "eviction to delete the checkpoint", func() bool {
		_, err := mem.Get(ctx, key)
		return err != nil
	})
	resp, err := http.Get(hs.URL + "/v1/sessions/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still live: status %d", resp.StatusCode)
	}
}

// TestWarmStartQuarantinesCorrupt: damaged and version-skewed checkpoints
// are moved aside and counted; good ones still restore; boot never fails.
func TestWarmStartQuarantinesCorrupt(t *testing.T) {
	mem := store.NewMem()
	ctx := context.Background()
	s1, hs1 := crashableServer(t, Config{Store: mem, StoreFlushInterval: 10 * time.Millisecond})
	v := createSession(t, hs1.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	waitFor(t, 5*time.Second, "checkpoint flush", func() bool {
		_, err := mem.Get(ctx, sessionKey(v.ID))
		return err == nil
	})
	s1.crash()

	// Plant damage next to the good checkpoint: raw garbage, a truncated
	// copy, and a version-skewed envelope.
	good, err := mem.Get(ctx, sessionKey(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	_ = mem.Put(ctx, "sessions/sess-90.snap", []byte("this is not a checkpoint"))
	_ = mem.Put(ctx, "sessions/sess-91.snap", good[:len(good)/3])
	_ = mem.Put(ctx, "sessions/sess-92.snap", store.Seal(checkpointKind, checkpointVersion+1, []byte("{}")))
	_ = mem.Put(ctx, "models/bench-c432-s1.snap", []byte("junk model"))

	s2, _ := newTestServer(t, Config{Store: mem, StoreFlushInterval: 10 * time.Millisecond})
	waitFor(t, 10*time.Second, "warm start", func() bool {
		return !s2.persist.recovering.Load()
	})
	if got := s2.persist.quarantined.Load(); got != 4 {
		t.Fatalf("quarantined %d snapshots, want 4 (%v)", got, mem.Quarantined())
	}
	if s2.sessions.len() != 1 {
		t.Fatalf("good session not restored: %d live", s2.sessions.len())
	}
	if _, ok := s2.sessions.get(v.ID); !ok {
		t.Fatalf("restored session has wrong id")
	}
	// The damaged keys are out of the listing (no re-quarantine loop on
	// the next boot) but their bytes are preserved for forensics.
	keys, err := mem.List(ctx, sessionKeyPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != sessionKey(v.ID) {
		t.Fatalf("quarantined keys still listed: %v", keys)
	}
	if len(mem.Quarantined()) != 4 {
		t.Fatalf("quarantine preserved %d entries, want 4", len(mem.Quarantined()))
	}
}

// TestWarmStartSeedsModelCache: a model extracted before the crash is
// decoded at boot and seeded into the extraction cache, so the first
// extraction after restart is a hit, not a recompute.
func TestWarmStartSeedsModelCache(t *testing.T) {
	mem := store.NewMem()
	ctx := context.Background()
	s1, hs1 := crashableServer(t, Config{Store: mem, StoreFlushInterval: 10 * time.Millisecond})
	resp := analyze(t, hs1.URL, AnalyzeRequest{Items: []ItemSpec{{Bench: "c432", Seed: 1, Extract: true}}})
	if resp.Results[0].Error != "" || resp.Results[0].ModelVerts == 0 {
		t.Fatalf("extract item failed: %+v", resp.Results[0])
	}
	mkey, _ := modelKey(graphKey{bench: "c432", seed: 1})
	waitFor(t, 5*time.Second, "model checkpoint flush", func() bool {
		_, err := mem.Get(ctx, mkey)
		return err == nil
	})
	s1.crash()

	s2, hs2 := newTestServer(t, Config{Store: mem, StoreFlushInterval: 10 * time.Millisecond})
	waitFor(t, 10*time.Second, "warm start", func() bool {
		return !s2.persist.recovering.Load()
	})
	if entries := s2.flow.Cache.Metrics().Entries; entries != 1 {
		t.Fatalf("extraction cache has %d entries after warm start, want 1", entries)
	}
	// Same item again: the extraction must be a cache hit.
	before := s2.flow.Cache.Metrics()
	resp = analyze(t, hs2.URL, AnalyzeRequest{Items: []ItemSpec{{Bench: "c432", Seed: 1, Extract: true}}})
	if resp.Results[0].Error != "" {
		t.Fatalf("extract item failed after restart: %+v", resp.Results[0])
	}
	after := s2.flow.Cache.Metrics()
	if after.Hits <= before.Hits || after.Misses != before.Misses {
		t.Fatalf("extraction after warm start was not a pure hit: before %+v, after %+v", before, after)
	}
}

// TestCloseFlushesPendingState: a graceful shutdown flushes checkpoints
// the write-behind pipeline had not gotten to (flush interval far beyond
// the test's lifetime).
func TestCloseFlushesPendingState(t *testing.T) {
	mem := store.NewMem()
	ctx := context.Background()
	s := New(Config{Store: mem, StoreFlushInterval: time.Hour})
	hs := httptest.NewServer(s.Handler())
	v := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	hs.Close()
	if _, err := mem.Get(ctx, sessionKey(v.ID)); err == nil {
		t.Fatal("checkpoint flushed before Close despite 1h interval")
	}
	s.Close()
	data, err := mem.Get(ctx, sessionKey(v.ID))
	if err != nil {
		t.Fatalf("final flush did not persist the session: %v", err)
	}
	if _, err := decodeCheckpoint(data); err != nil {
		t.Fatalf("final-flush checkpoint does not decode: %v", err)
	}
}

// TestNoopStoreServes: the explicit durability-off backend works end to
// end — same code path, writes go nowhere, nothing to restore.
func TestNoopStoreServes(t *testing.T) {
	_, hs := newTestServer(t, Config{Store: store.NewNoop(), StoreFlushInterval: 10 * time.Millisecond})
	v := createSession(t, hs.URL, SessionCreateRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	out := applyEdits(t, hs.URL, v.ID, SessionEditRequest{Edits: []EditSpec{
		{Op: "scale_delay", Edge: 1, Scale: 1.1},
	}})
	if out.Applied != 1 {
		t.Fatalf("edit not applied with noop store: %+v", out)
	}
	body := getHealthz(t, hs.URL)
	st, ok := body["store"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing store block: %v", body)
	}
	if st["backend"] != "noop" {
		t.Fatalf("healthz backend = %v, want noop", st["backend"])
	}
}
