package server

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/ssta"
)

// AnalyzeRequest is the body of POST /v1/analyze and POST /v1/jobs: a batch
// of independent analyses plus scheduling knobs.
type AnalyzeRequest struct {
	// Items are the analyses to run; results come back in item order.
	Items []ItemSpec `json:"items"`
	// Workers bounds how many items run concurrently (<=0: server default).
	Workers int `json:"workers,omitempty"`
	// ItemWorkers bounds the goroutines inside one hierarchical analysis.
	ItemWorkers int `json:"item_workers,omitempty"`
	// TimeoutMS caps the wall-clock time of the whole batch. Zero selects
	// the server default; values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ItemSpec describes one analysis over the wire. Exactly one input —
// bench, netlist, mult or quad — must be set, mirroring ssta.BatchItem.
type ItemSpec struct {
	// Name labels the result; defaults to the input's own name.
	Name string `json:"name,omitempty"`

	// Bench generates a topology-matched ISCAS85-like benchmark.
	Bench string `json:"bench,omitempty"`
	// Seed is the generator seed for bench and quad items.
	Seed int64 `json:"seed,omitempty"`
	// Netlist is an inline ISCAS85 .bench netlist.
	Netlist string `json:"netlist,omitempty"`
	// Mult builds a structural n x n array multiplier.
	Mult int `json:"mult,omitempty"`
	// Quad builds and analyzes the paper's four-instance hierarchical
	// design around an extracted benchmark model.
	Quad *QuadSpec `json:"quad,omitempty"`

	// Mode selects the hierarchical correlation treatment for quad items:
	// "full" (default, the paper's proposed method) or "global".
	Mode string `json:"mode,omitempty"`
	// Extract additionally runs cached timing-model extraction on flat
	// items and reports the reduced model size.
	Extract bool `json:"extract,omitempty"`
	// Clocked wraps the item's circuit with input and capture register
	// stages (bench/mult/netlist items), so the analysis reports statistical
	// setup/hold slack alongside the delay. Netlists may also carry explicit
	// DFF lines without this flag. Not applicable to quad items.
	Clocked bool `json:"clocked,omitempty"`
}

// QuadSpec names the module of a hierarchical quad-design item: the module
// graph is generated from the benchmark spec, extracted (through the shared
// extraction cache) and instantiated four times as in paper Section VI-B.
type QuadSpec struct {
	Bench string `json:"bench"`
	Seed  int64  `json:"seed,omitempty"`
	// Gap separates the instances by this many grid pitches (0: abutted).
	Gap int `json:"gap,omitempty"`
}

// AnalyzeResponse is the body returned by /v1/analyze and stored for
// finished jobs.
type AnalyzeResponse struct {
	Results   []ItemResult `json:"results"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

// ItemResult is the outcome of one item. Error is set when the item
// failed; the statistical fields are the delay distribution over all
// primary outputs.
type ItemResult struct {
	Name       string  `json:"name"`
	Error      string  `json:"error,omitempty"`
	MeanPS     float64 `json:"mean_ps,omitempty"`
	StdPS      float64 `json:"std_ps,omitempty"`
	P9987PS    float64 `json:"p9987_ps,omitempty"`
	Verts      int     `json:"verts,omitempty"`
	Edges      int     `json:"edges,omitempty"`
	ModelVerts int     `json:"model_verts,omitempty"`
	ModelEdges int     `json:"model_edges,omitempty"`
	// Setup/Hold summarize the worst statistical setup/hold slack when the
	// analyzed item is sequential (default clock); absent otherwise.
	Setup     *SlackView `json:"setup,omitempty"`
	Hold      *SlackView `json:"hold,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// SlackView is one worst-slack distribution on the wire: mean, std, and the
// low-tail (0.135%) quantile — the yield-side margin.
type SlackView struct {
	MeanPS float64 `json:"mean_ps"`
	StdPS  float64 `json:"std_ps"`
	QPS    float64 `json:"q_ps"`
}

// parseMode maps the wire mode names onto hier modes.
func parseMode(s string) (ssta.Mode, error) {
	switch strings.ToLower(s) {
	case "", "full", "proposed":
		return ssta.FullCorrelation, nil
	case "global", "globalonly", "global-only":
		return ssta.GlobalOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want \"full\" or \"global\")", s)
	}
}

// countInputs returns the populated input selectors of the spec.
func (s *ItemSpec) inputs() []string {
	var set []string
	if s.Bench != "" {
		set = append(set, "bench")
	}
	if s.Netlist != "" {
		set = append(set, "netlist")
	}
	if s.Mult > 0 {
		set = append(set, "mult")
	}
	if s.Quad != nil {
		set = append(set, "quad")
	}
	return set
}

// prepareItem converts one wire spec into a runnable ssta.BatchItem.
// Flat graphs come out of the server's bounded graph cache, so a repeated
// bench/mult/quad request reuses one *Graph — which is also what makes the
// extraction cache hit on repeats (it is keyed by graph identity).
func (s *Server) prepareItem(ctx context.Context, spec *ItemSpec) (ssta.BatchItem, error) {
	set := spec.inputs()
	switch len(set) {
	case 0:
		return ssta.BatchItem{}, fmt.Errorf("item has no input: set one of bench, netlist, mult or quad")
	case 1:
	default:
		return ssta.BatchItem{}, fmt.Errorf("item sets %d inputs (%s); exactly one of bench, netlist, mult or quad must be set",
			len(set), strings.Join(set, ", "))
	}
	mode, err := parseMode(spec.Mode)
	if err != nil {
		return ssta.BatchItem{}, err
	}

	item := ssta.BatchItem{Name: spec.Name, Extract: spec.Extract}
	switch {
	case spec.Quad != nil:
		if spec.Clocked {
			return ssta.BatchItem{}, fmt.Errorf("clocked applies to bench, netlist or mult items only")
		}
		d, err := s.quadDesign(ctx, spec.Quad)
		if err != nil {
			return ssta.BatchItem{}, err
		}
		// The upcoming analysis warms this design's per-mode prep; stamp it
		// so a restarted daemon can rebuild the warm prep before its first
		// sweep (satellite of the durable-state story).
		s.checkpointPrep(spec.Quad, mode)
		item.Design = d
		item.Mode = mode
		if item.Name == "" {
			item.Name = d.Name
		}
		item.Extract = false // extraction applies to flat items only

	case spec.Netlist != "":
		c, err := ssta.ParseBench(spec.Name, strings.NewReader(spec.Netlist))
		if err != nil {
			return ssta.BatchItem{}, fmt.Errorf("netlist: %w", err)
		}
		if spec.Clocked {
			if c, err = ssta.Clocked(c); err != nil {
				return ssta.BatchItem{}, fmt.Errorf("netlist: %w", err)
			}
		}
		item.Circuit = c
		if item.Name == "" {
			item.Name = c.Name
		}

	default: // bench or mult: served from the graph cache
		g, err := s.cachedGraph(ctx, graphKey{bench: spec.Bench, seed: spec.Seed, mult: spec.Mult, clocked: spec.Clocked})
		if err != nil {
			return ssta.BatchItem{}, err
		}
		item.Graph = g
		if item.Name == "" {
			if spec.Bench != "" {
				item.Name = spec.Bench
			} else {
				item.Name = fmt.Sprintf("mult%d", spec.Mult)
			}
		}
	}
	return item, nil
}

// itemResult flattens one BatchResult into its wire form.
func itemResult(r *ssta.BatchResult) ItemResult {
	out := ItemResult{Name: r.Name, ElapsedMS: float64(r.Elapsed.Microseconds()) / 1000}
	if r.Err != nil {
		out.Error = r.Err.Error()
		return out
	}
	if r.Delay != nil {
		out.MeanPS = r.Delay.Mean()
		out.StdPS = r.Delay.Std()
		out.P9987PS = r.Delay.Quantile(0.99865)
	}
	if r.Graph != nil {
		out.Verts = r.Graph.NumVerts
		out.Edges = len(r.Graph.Edges)
	} else if r.Hier != nil && r.Hier.Graph != nil {
		out.Verts = r.Hier.Graph.NumVerts
		out.Edges = len(r.Hier.Graph.Edges)
	}
	if r.Model != nil && r.Model.Graph != nil {
		out.ModelVerts = r.Model.Graph.NumVerts
		out.ModelEdges = len(r.Model.Graph.Edges)
	}
	if r.Seq != nil {
		out.Setup = slackViewOfForm(r.Seq.WorstSetup)
		out.Hold = slackViewOfForm(r.Seq.WorstHold)
	}
	return out
}

// slackQuantile is the low-tail quantile slack views report — the mirror of
// the 99.865% delay quantile the serving layer uses everywhere.
const slackQuantile = 1 - 0.99865

// slackViewOfForm flattens a worst-slack canonical form for the wire.
func slackViewOfForm(f *ssta.Form) *SlackView {
	if f == nil {
		return nil
	}
	return &SlackView{MeanPS: f.Mean(), StdPS: f.Std(), QPS: f.Quantile(slackQuantile)}
}

// slackViewOfStat flattens a sweep slack statistic (already quantiled at the
// sweep's low tail) for the wire.
func slackViewOfStat(st *ssta.SlackStat) *SlackView {
	if st == nil {
		return nil
	}
	return &SlackView{MeanPS: st.Mean, StdPS: st.Std, QPS: st.Quantile}
}

// graphKey identifies one server-built flat graph. Its cache identity is
// the canonical ItemFingerprint of the equivalent item spec — the same
// vocabulary the coalescer and micro-batcher key on — so "same graph"
// means the same thing at every layer of the serving front.
type graphKey struct {
	bench   string
	seed    int64
	mult    int
	clocked bool
}

func (k graphKey) fingerprint() Fingerprint {
	return ItemFingerprint(&ItemSpec{Bench: k.bench, Seed: k.seed, Mult: k.mult, Clocked: k.clocked})
}

// graphEntry is a singleflight slot in the graph cache.
type graphEntry struct {
	key  graphKey
	fp   Fingerprint
	done chan struct{}
	g    *ssta.Graph
	plan *ssta.Plan
	err  error
	elem *list.Element // nil while in flight
}

// graphCache memoizes built timing graphs by canonical fingerprint with
// LRU eviction — the serving-layer analogue of core.ExtractCache one level
// up the pipeline. Holding graph identity stable across requests is also
// what lets the extraction cache recognize repeats.
type graphCache struct {
	mu      sync.Mutex
	entries map[Fingerprint]*graphEntry
	lru     list.List
	max     int
	// filling/maxFill bound detached build goroutines exactly like
	// core.ExtractCache: at saturation, misses build inline on the caller
	// (which holds an analysis slot), so abandoned short-deadline requests
	// cannot amplify into unbounded background work.
	filling int
	maxFill int
	hits    int64
	misses  int64
}

func newGraphCache(max int) *graphCache {
	if max <= 0 {
		max = 64
	}
	return &graphCache{
		entries: make(map[Fingerprint]*graphEntry),
		max:     max,
		maxFill: runtime.GOMAXPROCS(0),
	}
}

func (c *graphCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// peek returns the completed cached graph for the key without building or
// waiting. The coordinator's cache.get handler uses it to consult its own
// extract cache on behalf of a worker — serving what it has, never paying
// a graph build for a remote miss.
func (c *graphCache) peek(key graphKey) *ssta.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key.fingerprint()]
	if !ok || e.elem == nil || e.err != nil {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	return e.g
}

// get returns the cached graph for the key, building it on a miss. Like
// core.ExtractCache, the build runs to completion on a detached goroutine
// (warming the cache for followers) while every caller's wait — including
// the initiator's — honors its own ctx.
func (c *graphCache) get(ctx context.Context, flow *ssta.Flow, key graphKey) (*ssta.Graph, *ssta.Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	fp := key.fingerprint()
	c.mu.Lock()
	e, ok := c.entries[fp]
	if ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
	} else {
		e = &graphEntry{key: key, fp: fp, done: make(chan struct{})}
		c.entries[fp] = e
		c.misses++
		detach := c.filling < c.maxFill
		if detach {
			c.filling++
		}
		c.mu.Unlock()
		fill := func() {
			e.g, e.plan, e.err = buildGraph(flow, key)
			c.mu.Lock()
			if detach {
				c.filling--
			}
			if c.entries[fp] == e {
				if e.err != nil {
					delete(c.entries, fp)
				} else {
					e.elem = c.lru.PushFront(e)
					for c.lru.Len() > c.max {
						back := c.lru.Back()
						old := back.Value.(*graphEntry)
						c.lru.Remove(back)
						delete(c.entries, old.fp)
					}
				}
			}
			c.mu.Unlock()
			close(e.done)
		}
		if !detach {
			fill()
			return e.g, e.plan, e.err
		}
		go fill()
	}
	select {
	case <-e.done:
		return e.g, e.plan, e.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

func buildGraph(flow *ssta.Flow, key graphKey) (*ssta.Graph, *ssta.Plan, error) {
	if key.mult > 0 {
		c, err := ssta.ArrayMultiplier(key.mult)
		if err != nil {
			return nil, nil, err
		}
		if key.clocked {
			if c, err = ssta.Clocked(c); err != nil {
				return nil, nil, err
			}
		}
		return flow.Graph(c)
	}
	if key.clocked {
		return flow.ClockedBenchGraph(key.bench, key.seed)
	}
	return flow.BenchGraph(key.bench, key.seed)
}

func (s *Server) cachedGraph(ctx context.Context, key graphKey) (*ssta.Graph, error) {
	g, _, err := s.graphs.get(ctx, s.flow, key)
	return g, err
}

// quadDesign builds (or reuses) the four-instance hierarchical design for
// the spec: module graph from the graph cache, model through the shared
// extraction cache, design through the design cache so its per-mode
// analysis prep survives across requests.
func (s *Server) quadDesign(ctx context.Context, q *QuadSpec) (*ssta.Design, error) {
	if q.Bench == "" {
		return nil, fmt.Errorf("quad: bench must be set")
	}
	if q.Gap < 0 {
		return nil, fmt.Errorf("quad: negative gap %d", q.Gap)
	}
	key := quadKey{graphKey{bench: q.Bench, seed: q.Seed, mult: 0}, q.Gap}
	s.quadMu.Lock()
	if d, ok := s.quads[key]; ok {
		s.quadMu.Unlock()
		return d, nil
	}
	s.quadMu.Unlock()

	g, plan, err := s.graphs.get(ctx, s.flow, key.graphKey)
	if err != nil {
		return nil, err
	}
	model, err := s.extractModel(ctx, key.graphKey, g)
	if err != nil {
		return nil, fmt.Errorf("quad: extract %s: %w", q.Bench, err)
	}
	mod, err := ssta.NewModule(q.Bench, model, plan)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("quad-%s-%d", q.Bench, q.Seed)
	if q.Gap > 0 {
		name = fmt.Sprintf("%s-gap%d", name, q.Gap)
	}
	d, err := s.flow.QuadDesignGap(name, mod, q.Gap)
	if err != nil {
		return nil, err
	}
	s.quadMu.Lock()
	if prev, ok := s.quads[key]; ok {
		d = prev // lost the build race: share the winner and its prep cache
	} else {
		if len(s.quads) >= s.maxQuads {
			// Designs are small next to their modules (which live in the
			// graph/extract caches); dropping the whole map on overflow
			// keeps the bound without LRU bookkeeping.
			s.quads = make(map[quadKey]*ssta.Design)
		}
		s.quads[key] = d
	}
	s.quadMu.Unlock()
	return d, nil
}

type quadKey struct {
	graphKey
	gap int
}
