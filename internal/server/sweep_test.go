package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/ssta"
)

func sweepHTTP(t *testing.T, base string, req SweepRequest) SweepResponse {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/sweep: status %d: %s", resp.StatusCode, data)
	}
	var out SweepResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("/v1/sweep: bad body %q: %v", data, err)
	}
	return out
}

func testSweepSpecs() []SweepScenarioSpec {
	return []SweepScenarioSpec{
		{ScenarioSpec: ssta.ScenarioSpec{Name: "unit"}},
		{ScenarioSpec: ssta.ScenarioSpec{Name: "hot", Derate: 1.15}},
		{ScenarioSpec: ssta.ScenarioSpec{Name: "sigma", GlobSigma: 1.4, RandSigma: 1.2}},
	}
}

func testSweepScenarios() []ssta.Scenario {
	return []ssta.Scenario{
		{Name: "unit"},
		{Name: "hot", Derate: 1.15},
		{Name: "sigma", GlobSigma: 1.4, RandSigma: 1.2},
	}
}

// TestSweepMatchesDirect is the e2e acceptance check: /v1/sweep over HTTP
// equals the direct SweepAnalyze/SweepAnalyzeGraph path at 1e-9, for both
// a flat benchmark item and a hierarchical quad item with a module swap.
func TestSweepMatchesDirect(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	flow := ssta.DefaultFlow()

	// Flat item.
	got := sweepHTTP(t, hs.URL, SweepRequest{
		ItemSpec:  ItemSpec{Bench: "c432", Seed: 1},
		Scenarios: testSweepSpecs(),
	})
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ssta.SweepAnalyzeGraph(context.Background(), g, testSweepScenarios(), ssta.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	compareSweep(t, "flat", got, want)

	// Quad item with a cross-seed module-swap scenario.
	specs := append(testSweepSpecs(), SweepScenarioSpec{
		ScenarioSpec: ssta.ScenarioSpec{Name: "eco"},
		Swaps:        map[string]SwapSpec{"B": {Bench: "c432", Seed: 2}},
	})
	gotQ := sweepHTTP(t, hs.URL, SweepRequest{
		ItemSpec:  ItemSpec{Quad: &QuadSpec{Bench: "c432", Seed: 1}},
		Scenarios: specs,
	})
	model, err := flow.Extract(g, ssta.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, plan, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ssta.NewModule("c432", model, plan)
	if err != nil {
		t.Fatal(err)
	}
	d, err := flow.QuadDesign("quad", mod)
	if err != nil {
		t.Fatal(err)
	}
	g2, plan2, err := flow.BenchGraph("c432", 2)
	if err != nil {
		t.Fatal(err)
	}
	model2, err := flow.Extract(g2, ssta.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mod2, err := ssta.NewModule("c432", model2, plan2)
	if err != nil {
		t.Fatal(err)
	}
	scens := append(testSweepScenarios(), ssta.Scenario{
		Name:  "eco",
		Swaps: map[string]*ssta.Module{"B": mod2},
	})
	wantQ, err := ssta.SweepAnalyze(context.Background(), d, ssta.FullCorrelation, scens, ssta.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	compareSweep(t, "quad", gotQ, wantQ)
	if gotQ.Results[3].Shared {
		t.Fatal("swap scenario claims shared prep")
	}
}

func compareSweep(t *testing.T, label string, got SweepResponse, want *ssta.SweepReport) {
	t.Helper()
	if got.Completed != want.Completed || got.Scenarios != len(want.Results) {
		t.Fatalf("%s: accounting %d/%d, want %d/%d", label, got.Completed, got.Scenarios, want.Completed, len(want.Results))
	}
	for i, w := range want.Results {
		r := got.Results[i]
		if w.Err != nil {
			if r.Error == "" {
				t.Fatalf("%s scenario %q: direct failed (%v), HTTP succeeded", label, w.Name, w.Err)
			}
			continue
		}
		if r.Error != "" {
			t.Fatalf("%s scenario %q: HTTP error %s", label, w.Name, r.Error)
		}
		if math.Abs(r.MeanPS-w.Mean) > 1e-9 || math.Abs(r.StdPS-w.Std) > 1e-9 || math.Abs(r.P9987PS-w.Quantile) > 1e-9 {
			t.Fatalf("%s scenario %q: HTTP (%g, %g, %g) vs direct (%g, %g, %g)",
				label, w.Name, r.MeanPS, r.StdPS, r.P9987PS, w.Mean, w.Std, w.Quantile)
		}
	}
	if math.Abs(got.Envelope.MeanPS-want.Envelope.Mean) > 1e-9 ||
		math.Abs(got.Envelope.StdPS-want.Envelope.Std) > 1e-9 ||
		math.Abs(got.Envelope.P9987PS-want.Envelope.Quantile) > 1e-9 ||
		got.Envelope.Worst != want.Envelope.Worst {
		t.Fatalf("%s: envelope %+v vs direct %+v", label, got.Envelope, want.Envelope)
	}
}

// TestSweepEnvelopeIsMaxOverResults is the wire-level golden: the envelope
// equals the max over the per-scenario results in the same response.
func TestSweepEnvelopeIsMaxOverResults(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	got := sweepHTTP(t, hs.URL, SweepRequest{
		ItemSpec:  ItemSpec{Bench: "c880", Seed: 1},
		Scenarios: testSweepSpecs(),
	})
	var mean, std, q float64
	worst := ""
	for _, r := range got.Results {
		if r.Error != "" {
			t.Fatalf("scenario %q: %s", r.Name, r.Error)
		}
		mean = math.Max(mean, r.MeanPS)
		std = math.Max(std, r.StdPS)
		if r.P9987PS > q {
			q = r.P9987PS
			worst = r.Name
		}
	}
	if got.Envelope.MeanPS != mean || got.Envelope.StdPS != std || got.Envelope.P9987PS != q || got.Envelope.Worst != worst {
		t.Fatalf("envelope %+v is not the max over results (want %g %g %g %q)", got.Envelope, mean, std, q, worst)
	}
}

// TestSweepDeadlinePartialAccounting: a deadline far shorter than the
// sweep still yields a 200 with one definite outcome per scenario and
// Completed < Scenarios.
func TestSweepDeadlinePartialAccounting(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	var specs []SweepScenarioSpec
	for k := 0; k < 24; k++ {
		specs = append(specs, SweepScenarioSpec{
			ScenarioSpec: ssta.ScenarioSpec{Name: fmt.Sprintf("s%d", k), Derate: 1 + float64(k)/100},
		})
	}
	// Warm the graph cache so the timed request spends its deadline on
	// scenarios, not on building c7552 (which alone can exceed it under
	// race instrumentation and would yield a 408 before the sweep starts).
	sweepHTTP(t, hs.URL, SweepRequest{
		ItemSpec:  ItemSpec{Bench: "c7552", Seed: 1},
		Scenarios: specs[:1],
		TimeoutMS: 60000,
	})
	got := sweepHTTP(t, hs.URL, SweepRequest{
		ItemSpec:  ItemSpec{Bench: "c7552", Seed: 1},
		Scenarios: specs,
		Workers:   1,
		TimeoutMS: 200,
	})
	if got.Scenarios != len(specs) {
		t.Fatalf("accounting covers %d of %d scenarios", got.Scenarios, len(specs))
	}
	completed, failed := 0, 0
	for _, r := range got.Results {
		switch {
		case r.Error != "":
			failed++
		case r.MeanPS > 0:
			completed++
		default:
			t.Fatalf("scenario %q has neither value nor error", r.Name)
		}
	}
	if completed != got.Completed || completed+failed != got.Scenarios {
		t.Fatalf("accounting mismatch: completed %d (reported %d), failed %d, total %d",
			completed, got.Completed, failed, got.Scenarios)
	}
	if got.Completed >= got.Scenarios {
		t.Skip("machine finished the whole sweep inside the deadline; partial path not exercised")
	}
}

// TestSweepLoadShedding: with every analysis slot held, /v1/sweep sheds
// load with 429 instead of queueing past its deadline.
func TestSweepLoadShedding(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1})
	s.sem <- struct{}{} // hold the only slot
	defer func() { <-s.sem }()
	resp, data := postJSON(t, hs.URL+"/v1/sweep", SweepRequest{
		ItemSpec:  ItemSpec{Bench: "c432", Seed: 1},
		Scenarios: testSweepSpecs(),
		TimeoutMS: 100,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, data)
	}
}

func TestSweepBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxItems: 4})
	for name, req := range map[string]SweepRequest{
		"no-scenarios":  {ItemSpec: ItemSpec{Bench: "c432", Seed: 1}},
		"no-item":       {Scenarios: testSweepSpecs()},
		"two-items":     {ItemSpec: ItemSpec{Bench: "c432", Mult: 4}, Scenarios: testSweepSpecs()},
		"bad-factor":    {ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: []SweepScenarioSpec{{ScenarioSpec: ssta.ScenarioSpec{Derate: -2}}}},
		"swaps-on-flat": {ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: []SweepScenarioSpec{{Swaps: map[string]SwapSpec{"B": {Bench: "c432"}}}}},
		"swap-no-bench": {ItemSpec: ItemSpec{Quad: &QuadSpec{Bench: "c432"}}, Scenarios: []SweepScenarioSpec{{Swaps: map[string]SwapSpec{"B": {}}}}},
		"too-many": {ItemSpec: ItemSpec{Bench: "c432", Seed: 1}, Scenarios: []SweepScenarioSpec{
			{}, {}, {}, {}, {}}},
	} {
		resp, data := postJSON(t, hs.URL+"/v1/sweep", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", name, resp.StatusCode, data)
		}
	}
	// Unknown fields are rejected.
	resp, data := postJSON(t, hs.URL+"/v1/sweep", map[string]any{"bench": "c432", "frob": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d: %s", resp.StatusCode, data)
	}
}

// TestSweepDefaultScenarios: a request naming no scenarios falls back to
// the server's configured set (sstad -scenarios).
func TestSweepDefaultScenarios(t *testing.T) {
	_, hs := newTestServer(t, Config{DefaultScenarios: testSweepSpecs()})
	got := sweepHTTP(t, hs.URL, SweepRequest{ItemSpec: ItemSpec{Bench: "c432", Seed: 1}})
	if got.Scenarios != 3 || got.Completed != 3 {
		t.Fatalf("default scenario set not served: %+v", got)
	}
	if got.Results[1].Name != "hot" {
		t.Fatalf("default scenario names lost: %+v", got.Results)
	}
}

// TestSweepVsSessionConcurrent races sweeps against session edits over the
// same cached graph — the cross-surface concurrency contract (run under
// -race in CI).
func TestSweepVsSessionConcurrent(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 4})
	resp, data := postJSON(t, hs.URL+"/v1/sessions", map[string]any{"bench": "c880", "seed": 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: %d: %s", resp.StatusCode, data)
	}
	var sv SessionView
	if err := json.Unmarshal(data, &sv); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, data := postJSON(t, hs.URL+"/v1/sweep", SweepRequest{
					ItemSpec:  ItemSpec{Bench: "c880", Seed: 1},
					Scenarios: testSweepSpecs(),
					TimeoutMS: 60000,
				})
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("sweep: %d: %s", resp.StatusCode, data)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		scales := []float64{2, 0.5}
		for i := 0; i < 6; i++ {
			resp, data := postJSON(t, hs.URL+"/v1/sessions/"+sv.ID+"/edits", SessionEditRequest{
				Edits:     []EditSpec{{Op: "scale_delay", Edge: 5, Scale: scales[i%2]}},
				TimeoutMS: 60000,
			})
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("edit: %d: %s", resp.StatusCode, data)
				return
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errCh:
		t.Fatal(err)
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("concurrent sweep/session run timed out")
	}
}

// TestSweepMetrics: the sweep surface shows up on /metrics.
func TestSweepMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	sweepHTTP(t, hs.URL, SweepRequest{
		ItemSpec:  ItemSpec{Bench: "c432", Seed: 1},
		Scenarios: testSweepSpecs(),
	})
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"sstad_sweep_requests_total 1",
		"sstad_sweep_scenarios_total 3",
		"sstad_sweep_scenario_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
