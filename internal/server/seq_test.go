package server

import (
	"strings"
	"testing"

	"repro/ssta"
)

// TestClockedAnalyzeReportsSlack: a clocked bench item answers /v1/analyze
// with setup and hold slack views, while its combinational sibling carries
// neither — and the two are distinct cache identities.
func TestClockedAnalyzeReportsSlack(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	resp := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{
		{Name: "clk", Bench: "c432", Seed: 1, Clocked: true},
		{Name: "comb", Bench: "c432", Seed: 1},
	}})
	clk, comb := resp.Results[0], resp.Results[1]
	if clk.Error != "" || comb.Error != "" {
		t.Fatalf("item errors: clk=%q comb=%q", clk.Error, comb.Error)
	}
	if clk.Setup == nil || clk.Hold == nil {
		t.Fatalf("clocked item missing slack views: setup=%v hold=%v", clk.Setup, clk.Hold)
	}
	if clk.Setup.StdPS <= 0 {
		t.Fatalf("setup slack has no spread: %+v", clk.Setup)
	}
	if clk.Setup.QPS >= clk.Setup.MeanPS {
		t.Fatalf("setup low-tail quantile %g not below mean %g", clk.Setup.QPS, clk.Setup.MeanPS)
	}
	if comb.Setup != nil || comb.Hold != nil {
		t.Fatalf("combinational item grew slack views: setup=%v hold=%v", comb.Setup, comb.Hold)
	}
	// Registering the inputs and outputs must change the graph, not alias
	// the combinational build.
	if clk.Verts <= comb.Verts {
		t.Fatalf("clocked graph verts %d not larger than combinational %d", clk.Verts, comb.Verts)
	}
}

// TestClockedSweepClockScenarios: clock-only scenarios over a clocked item
// share the base prep (they are linear in the canonical form), report hold
// slack, and a longer period yields strictly more setup slack.
func TestClockedSweepClockScenarios(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	out := sweepHTTP(t, hs.URL, SweepRequest{
		ItemSpec: ItemSpec{Bench: "c432", Seed: 1, Clocked: true},
		Scenarios: []SweepScenarioSpec{
			{ScenarioSpec: ssta.ScenarioSpec{Name: "slow", ClockPeriodPS: 900}},
			{ScenarioSpec: ssta.ScenarioSpec{Name: "fast", ClockPeriodPS: 450, ClockJitterPS: 15}},
		},
	})
	if out.Completed != 2 {
		t.Fatalf("completed %d/2: %+v", out.Completed, out.Results)
	}
	slow, fast := out.Results[0], out.Results[1]
	for _, r := range []SweepScenarioResult{slow, fast} {
		if r.Error != "" {
			t.Fatalf("scenario %q failed: %s", r.Name, r.Error)
		}
		if r.Setup == nil || r.Hold == nil {
			t.Fatalf("scenario %q missing slack: setup=%v hold=%v", r.Name, r.Setup, r.Hold)
		}
		if !r.Shared {
			t.Fatalf("clock-only scenario %q did not share base prep", r.Name)
		}
	}
	if slow.Setup.MeanPS <= fast.Setup.MeanPS {
		t.Fatalf("period 900 setup %g not above period 450 setup %g",
			slow.Setup.MeanPS, fast.Setup.MeanPS)
	}
	if out.Verts == 0 || out.Edges == 0 {
		t.Fatalf("sweep lost graph stats: verts=%d edges=%d", out.Verts, out.Edges)
	}
}

// TestClockedQuadRejected: hierarchical quad items are extracted models with
// no register boundary to wrap, so Clocked must be refused per item.
func TestClockedQuadRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{
		{Quad: &QuadSpec{Bench: "c432", Seed: 1}, Clocked: true},
	}})
	if got := resp.Results[0].Error; !strings.Contains(got, "clocked") {
		t.Fatalf("quad+clocked error = %q, want mention of clocked", got)
	}
}
