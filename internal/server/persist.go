package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/ssta"
)

// This file is the durability layer: a write-behind pipeline from the
// daemon's hot state (live sessions, extracted models) into a pluggable
// store.Backend. The request path never writes — it only marks state
// dirty; a single background flusher snapshots, seals and persists with
// bounded retries. The contract is strict degradation: a down, slow or
// full store must never fail or slow a request. Store trouble surfaces
// only in /metrics and /healthz.
//
// Store layout (all keys validated by store.ValidKey):
//
//	sessions/<id>.snap            one sealed sessionCheckpoint per session
//	models/bench-<name>-s<seed>.snap  extracted model of a bench graph
//	models/mult-<n>.snap              extracted model of a multiplier graph
//	preps/quad-<bench>-s<seed>-g<gap>-<mode>.snap
//	                              stamp recording that a quad design's
//	                              per-mode analysis prep was warm
//	quarantine/...                corrupt or version-skewed snapshots,
//	                              moved aside at warm start, never deleted
//
// On boot the server warm-starts: models are decoded and seeded into the
// extraction cache (keyed by the deterministically rebuilt graph), then
// prep stamps rebuild each recorded quad design and stitch it once so the
// per-mode prep cache is hot before the first sweep arrives, then sessions
// are restored — each checkpoint is decoded, re-propagated and
// cross-checked against its recorded mean before it goes live. Anything
// that fails is quarantined, counted, and skipped; recovery is never
// fatal.

const (
	// checkpointKind/Version seal the server-level session checkpoint —
	// the envelope around sessionCheckpoint, which embeds the library's
	// own session snapshot payload.
	checkpointKind    = "sstad-session"
	checkpointVersion = 1

	// prepKind/Version seal a prep stamp: not the prep itself (preps are
	// large and cheap to rebuild from the deterministic design), just the
	// identity needed to rebuild and re-stitch it at warm start.
	prepKind    = "sstad-prep"
	prepVersion = 1

	sessionKeyPrefix = "sessions/"
	modelKeyPrefix   = "models/"
	prepKeyPrefix    = "preps/"
	snapSuffix       = ".snap"

	// degradedAfter is how many consecutive failed flush rounds mark the
	// store degraded in /healthz.
	degradedAfter = 3
)

// sessionCheckpoint is the durable form of one live session: the server
// bookkeeping plus the full library snapshot (graph, sweep scenarios,
// criticality enablement).
type sessionCheckpoint struct {
	ID        string                `json:"id"`
	Name      string                `json:"name"`
	CreatedMS int64                 `json:"created_unix_ms"`
	Edits     int64                 `json:"edits"`
	Session   *ssta.SessionSnapshot `json:"session"`
}

// sessionKey maps a session id onto its store key.
func sessionKey(id string) string { return sessionKeyPrefix + id + snapSuffix }

// modelKey maps a cacheable graph identity onto a durable store key.
// Netlist-derived graphs have no reproducible identity and return false.
func modelKey(k graphKey) (string, bool) {
	// Clocked variants carry a distinct marker: a registered graph's
	// extracted model must never collide with its combinational sibling.
	clk := ""
	if k.clocked {
		clk = "-clk"
	}
	var key string
	switch {
	case k.mult > 0:
		key = fmt.Sprintf("%smult-%d%s%s", modelKeyPrefix, k.mult, clk, snapSuffix)
	case k.bench != "":
		// Bench names are flat identifiers; anything with separators or
		// dots would produce a non-canonical key.
		if strings.ContainsAny(k.bench, "/.") {
			return "", false
		}
		key = fmt.Sprintf("%sbench-%s-s%d%s%s", modelKeyPrefix, k.bench, k.seed, clk, snapSuffix)
	default:
		return "", false
	}
	if store.ValidKey(key) != nil {
		return "", false
	}
	return key, true
}

// parseModelKey inverts modelKey.
func parseModelKey(key string) (graphKey, bool) {
	name, ok := strings.CutPrefix(key, modelKeyPrefix)
	if !ok {
		return graphKey{}, false
	}
	name, ok = strings.CutSuffix(name, snapSuffix)
	if !ok {
		return graphKey{}, false
	}
	clocked := false
	if rest, ok := strings.CutSuffix(name, "-clk"); ok {
		clocked = true
		name = rest
	}
	if rest, ok := strings.CutPrefix(name, "mult-"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return graphKey{}, false
		}
		return graphKey{mult: n, clocked: clocked}, true
	}
	rest, ok := strings.CutPrefix(name, "bench-")
	if !ok {
		return graphKey{}, false
	}
	i := strings.LastIndex(rest, "-s")
	if i <= 0 {
		return graphKey{}, false
	}
	seed, err := strconv.ParseInt(rest[i+2:], 10, 64)
	if err != nil {
		return graphKey{}, false
	}
	return graphKey{bench: rest[:i], seed: seed, clocked: clocked}, true
}

// prepStamp is the durable record of one warm per-mode analysis prep: the
// quad design's reproducible identity plus the correlation mode. The warm
// start rebuilds the design from it and stitches once, repopulating the
// prep cache a restart would otherwise lose.
type prepStamp struct {
	Bench string `json:"bench"`
	Seed  int64  `json:"seed,omitempty"`
	Gap   int    `json:"gap,omitempty"`
	Mode  string `json:"mode"`
}

// modeName is parseMode's canonical inverse.
func modeName(m ssta.Mode) string {
	if m == ssta.GlobalOnly {
		return "global"
	}
	return "full"
}

// prepKey maps a quad design + mode onto its stamp key. Bench names with
// separators have no canonical key, like modelKey.
func prepKey(q *QuadSpec, mode ssta.Mode) (string, bool) {
	if q == nil || q.Bench == "" || strings.ContainsAny(q.Bench, "/.") {
		return "", false
	}
	key := fmt.Sprintf("%squad-%s-s%d-g%d-%s%s",
		prepKeyPrefix, q.Bench, q.Seed, q.Gap, modeName(mode), snapSuffix)
	if store.ValidKey(key) != nil {
		return "", false
	}
	return key, true
}

// encodePrepStamp seals one stamp for the store.
func encodePrepStamp(st prepStamp) ([]byte, error) {
	payload, err := json.Marshal(&st)
	if err != nil {
		return nil, err
	}
	return store.Seal(prepKind, prepVersion, payload), nil
}

// decodePrepStamp is the inverse of encodePrepStamp.
func decodePrepStamp(data []byte) (prepStamp, error) {
	payload, err := store.OpenKind(data, prepKind, prepVersion)
	if err != nil {
		return prepStamp{}, err
	}
	var st prepStamp
	if err := json.Unmarshal(payload, &st); err != nil {
		return prepStamp{}, fmt.Errorf("%w: prep stamp payload: %v", store.ErrCorrupt, err)
	}
	if st.Bench == "" {
		return prepStamp{}, fmt.Errorf("%w: prep stamp missing bench", store.ErrCorrupt)
	}
	if _, err := parseMode(st.Mode); err != nil {
		return prepStamp{}, fmt.Errorf("%w: prep stamp mode: %v", store.ErrCorrupt, err)
	}
	return st, nil
}

// measuredBackend wraps a Backend with per-op counters for /metrics.
// A Get miss (ErrNotFound) is an answer, not a failure.
type measuredBackend struct {
	inner store.Backend
	ops   [5]atomic.Int64 // indexed by storeOpIndex
	errs  [5]atomic.Int64
}

const (
	opIdxPut = iota
	opIdxGet
	opIdxDelete
	opIdxList
	opIdxQuarantine
)

var storeOpNames = [5]string{"put", "get", "delete", "list", "quarantine"}

func (m *measuredBackend) record(idx int, err error) {
	m.ops[idx].Add(1)
	if err != nil && !errors.Is(err, store.ErrNotFound) {
		m.errs[idx].Add(1)
	}
}

func (m *measuredBackend) Kind() string { return m.inner.Kind() }

func (m *measuredBackend) Put(ctx context.Context, key string, data []byte) error {
	err := m.inner.Put(ctx, key, data)
	m.record(opIdxPut, err)
	return err
}

func (m *measuredBackend) Get(ctx context.Context, key string) ([]byte, error) {
	data, err := m.inner.Get(ctx, key)
	m.record(opIdxGet, err)
	return data, err
}

func (m *measuredBackend) Delete(ctx context.Context, key string) error {
	err := m.inner.Delete(ctx, key)
	m.record(opIdxDelete, err)
	return err
}

func (m *measuredBackend) List(ctx context.Context, prefix string) ([]string, error) {
	keys, err := m.inner.List(ctx, prefix)
	m.record(opIdxList, err)
	return keys, err
}

func (m *measuredBackend) Quarantine(ctx context.Context, key string) error {
	err := m.inner.Quarantine(ctx, key)
	m.record(opIdxQuarantine, err)
	return err
}

// persister owns everything durable: the pending write-behind queues, the
// flush bookkeeping, and the warm-start state.
type persister struct {
	srv   *Server
	store *measuredBackend
	every time.Duration

	mu         sync.Mutex
	dirty      map[string]struct{}    // session ids with unflushed edits
	dead       map[string]struct{}    // session ids whose checkpoint must go
	models     map[string]*ssta.Model // durable key -> model awaiting write
	preps      map[string]prepStamp   // durable key -> prep stamp awaiting write
	prepDone   map[string]struct{}    // stamp keys already persisted this process
	oldestMark time.Time              // when the oldest pending entry was enqueued
	lastFlush  time.Time              // last fully successful flush round
	lastErr    error
	consecFail int

	recovering  atomic.Bool
	quarantined atomic.Int64
	restored    atomic.Int64 // sessions brought back at warm start
}

func newPersister(s *Server, backend store.Backend, every time.Duration) *persister {
	return &persister{
		srv:       s,
		store:     &measuredBackend{inner: backend},
		every:     every,
		dirty:     make(map[string]struct{}),
		dead:      make(map[string]struct{}),
		models:    make(map[string]*ssta.Model),
		preps:     make(map[string]prepStamp),
		prepDone:  make(map[string]struct{}),
		lastFlush: time.Now(),
	}
}

// markEnqueuedLocked stamps the flush-lag clock when the queue transitions
// from empty to non-empty. Callers hold p.mu.
func (p *persister) markEnqueuedLocked() {
	if p.oldestMark.IsZero() {
		p.oldestMark = time.Now()
	}
}

func (p *persister) markDirty(id string) {
	p.mu.Lock()
	delete(p.dead, id)
	p.dirty[id] = struct{}{}
	p.markEnqueuedLocked()
	p.mu.Unlock()
}

func (p *persister) markDead(id string) {
	p.mu.Lock()
	delete(p.dirty, id)
	p.dead[id] = struct{}{}
	p.markEnqueuedLocked()
	p.mu.Unlock()
}

func (p *persister) addModel(gk graphKey, m *ssta.Model) {
	key, ok := modelKey(gk)
	if !ok || m == nil {
		return
	}
	p.mu.Lock()
	if _, seen := p.models[key]; !seen {
		p.models[key] = m
		p.markEnqueuedLocked()
	}
	p.mu.Unlock()
}

func (p *persister) addPrep(q *QuadSpec, mode ssta.Mode) {
	key, ok := prepKey(q, mode)
	if !ok {
		return
	}
	p.mu.Lock()
	if _, done := p.prepDone[key]; !done {
		if _, seen := p.preps[key]; !seen {
			p.preps[key] = prepStamp{Bench: q.Bench, Seed: q.Seed, Gap: q.Gap, Mode: modeName(mode)}
			p.markEnqueuedLocked()
		}
	}
	p.mu.Unlock()
}

// pending reports the queue depth (metrics).
func (p *persister) pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.dirty) + len(p.dead) + len(p.models) + len(p.preps)
}

// flushLag is how long the oldest pending entry has waited (zero when
// drained) — the gauge that makes a silently failing store visible.
func (p *persister) flushLag(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.oldestMark.IsZero() {
		return 0
	}
	return now.Sub(p.oldestMark)
}

// status snapshots the health fields for /healthz.
func (p *persister) status() (kind string, lastFlushAge time.Duration, lastErr error, degraded bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Kind(), time.Since(p.lastFlush), p.lastErr, p.consecFail >= degradedAfter
}

// retryPolicy bounds per-entry store attempts inside one flush round. The
// round itself re-runs on the flush ticker, so failed entries are simply
// re-queued rather than retried forever here.
func (p *persister) retryPolicy() store.Backoff {
	b := store.DefaultBackoff()
	b.Base = 10 * time.Millisecond
	b.Cap = p.every
	b.MaxAttempts = 3
	return b
}

// runStoreFlusher drains the write-behind queues on the flush interval
// until shutdown. One goroutine: writes are naturally bounded, and every
// round coalesces all edits since the last — a busy session costs one
// checkpoint write per interval, not one per edit batch. The interval is
// therefore also the crash-loss window (Close flushes the remainder).
func (s *Server) runStoreFlusher(base context.Context) {
	defer s.wg.Done()
	p := s.persist
	tick := time.NewTicker(p.every)
	defer tick.Stop()
	for {
		select {
		case <-base.Done():
			return
		case <-tick.C:
		}
		p.flush(base)
	}
}

// flush drains a snapshot of the pending queues. Entries that fail are
// re-queued so the next round retries them; a fully clean round resets
// the degradation counters.
func (p *persister) flush(ctx context.Context) {
	p.mu.Lock()
	dirty, dead, models, preps := p.dirty, p.dead, p.models, p.preps
	prevMark := p.oldestMark
	p.dirty = make(map[string]struct{})
	p.dead = make(map[string]struct{})
	p.models = make(map[string]*ssta.Model)
	p.preps = make(map[string]prepStamp)
	p.oldestMark = time.Time{}
	p.mu.Unlock()

	// Entries that fail below re-enqueue with the pre-flush timestamp so
	// the flush-lag gauge keeps growing while the store stays down.
	requeueMark := func() {
		if !prevMark.IsZero() && (p.oldestMark.IsZero() || prevMark.Before(p.oldestMark)) {
			p.oldestMark = prevMark
		} else {
			p.markEnqueuedLocked()
		}
	}
	if len(dirty) == 0 && len(dead) == 0 && len(models) == 0 && len(preps) == 0 {
		return
	}

	bo := p.retryPolicy()
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	for id := range dead {
		key := sessionKey(id)
		err := bo.Retry(ctx, func() error { return p.store.Delete(ctx, key) })
		if err != nil && ctx.Err() == nil {
			fail(fmt.Errorf("delete %s: %w", key, err))
			p.mu.Lock()
			p.dead[id] = struct{}{}
			requeueMark()
			p.mu.Unlock()
		}
	}

	for id := range dirty {
		reg, ok := p.srv.sessions.get(id)
		if !ok {
			continue // evicted or deleted since the mark; its dead entry wins
		}
		data, err := encodeCheckpoint(reg)
		if err != nil {
			// A snapshot that cannot encode will not encode next round
			// either; surface it and drop the mark instead of spinning.
			fail(fmt.Errorf("snapshot %s: %w", id, err))
			continue
		}
		key := sessionKey(id)
		err = bo.Retry(ctx, func() error { return p.store.Put(ctx, key, data) })
		if err != nil && ctx.Err() == nil {
			fail(fmt.Errorf("put %s: %w", key, err))
			p.mu.Lock()
			if _, gone := p.dead[id]; !gone {
				p.dirty[id] = struct{}{}
				requeueMark()
			}
			p.mu.Unlock()
		}
	}

	for key, m := range models {
		data, err := m.EncodeSnapshot()
		if err != nil {
			fail(fmt.Errorf("encode %s: %w", key, err))
			continue
		}
		err = bo.Retry(ctx, func() error { return p.store.Put(ctx, key, data) })
		if err != nil && ctx.Err() == nil {
			fail(fmt.Errorf("put %s: %w", key, err))
			p.mu.Lock()
			if _, seen := p.models[key]; !seen {
				p.models[key] = m
				requeueMark()
			}
			p.mu.Unlock()
		}
	}

	for key, st := range preps {
		data, err := encodePrepStamp(st)
		if err != nil {
			fail(fmt.Errorf("encode %s: %w", key, err))
			continue
		}
		err = bo.Retry(ctx, func() error { return p.store.Put(ctx, key, data) })
		if err != nil && ctx.Err() == nil {
			fail(fmt.Errorf("put %s: %w", key, err))
			p.mu.Lock()
			if _, seen := p.preps[key]; !seen {
				p.preps[key] = st
				requeueMark()
			}
			p.mu.Unlock()
			continue
		}
		if err == nil {
			// A design's prep identity never changes; once the stamp is
			// durable, later analyses of the same design stop re-enqueuing it.
			p.mu.Lock()
			p.prepDone[key] = struct{}{}
			p.mu.Unlock()
		}
	}

	p.mu.Lock()
	if firstErr != nil {
		p.lastErr = firstErr
		p.consecFail++
	} else {
		p.lastFlush = time.Now()
		p.lastErr = nil
		p.consecFail = 0
	}
	p.mu.Unlock()
}

// encodeCheckpoint seals one live session into its durable bytes. The
// session snapshot is taken here, on the flusher — the request path only
// marked the id dirty.
func encodeCheckpoint(reg *srvSession) ([]byte, error) {
	reg.mu.Lock()
	edits := reg.edits
	reg.mu.Unlock()
	cp := sessionCheckpoint{
		ID:        reg.id,
		Name:      reg.name,
		CreatedMS: reg.created.UnixMilli(),
		Edits:     edits,
		Session:   reg.sess.Snapshot(),
	}
	payload, err := json.Marshal(&cp)
	if err != nil {
		return nil, err
	}
	return store.Seal(checkpointKind, checkpointVersion, payload), nil
}

// decodeCheckpoint is the inverse of encodeCheckpoint. Corruption and
// version skew surface as store.ErrCorrupt / store.ErrVersion.
func decodeCheckpoint(data []byte) (*sessionCheckpoint, error) {
	payload, err := store.OpenKind(data, checkpointKind, checkpointVersion)
	if err != nil {
		return nil, err
	}
	var cp sessionCheckpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("%w: checkpoint payload: %v", store.ErrCorrupt, err)
	}
	if cp.ID == "" || cp.Session == nil {
		return nil, fmt.Errorf("%w: checkpoint missing id or session", store.ErrCorrupt)
	}
	return &cp, nil
}

// bumpSessionSeq scans existing checkpoints at boot and advances the
// session id counter past them, so sessions created before the async warm
// start finishes cannot collide with ids about to be restored. Runs
// synchronously in New; a failing store degrades to an empty scan.
func (p *persister) bumpSessionSeq(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	keys, err := p.store.List(ctx, sessionKeyPrefix)
	if err != nil {
		return
	}
	var max int64
	for _, key := range keys {
		id, ok := sessionIDFromKey(key)
		if !ok {
			continue
		}
		if n, ok := strings.CutPrefix(id, "sess-"); ok {
			if v, err := strconv.ParseInt(n, 10, 64); err == nil && v > max {
				max = v
			}
		}
	}
	p.srv.sessions.bumpSeq(max)
}

func sessionIDFromKey(key string) (string, bool) {
	id, ok := strings.CutPrefix(key, sessionKeyPrefix)
	if !ok {
		return "", false
	}
	return strings.CutSuffix(id, snapSuffix)
}

// runWarmStart restores durable state in the background: extracted models
// first (cheap, makes restored sessions and early requests hit the cache),
// then sessions. Every failure quarantines and continues — a damaged
// store degrades the warm start, never the boot.
func (s *Server) runWarmStart(base context.Context) {
	defer s.wg.Done()
	p := s.persist
	defer p.recovering.Store(false) // raised synchronously in New
	p.warmStartModels(base)
	p.warmStartPreps(base)
	p.warmStartSessions(base)
}

// quarantine moves a bad snapshot aside (keeping the bytes for forensics)
// and counts it.
func (p *persister) quarantine(ctx context.Context, key string, cause error) {
	p.quarantined.Add(1)
	if err := p.store.Quarantine(ctx, key); err != nil && !errors.Is(err, store.ErrNotFound) {
		log.Printf("sstad: store: quarantine %s: %v (cause: %v)", key, err, cause)
		return
	}
	log.Printf("sstad: store: quarantined %s: %v", key, cause)
}

func (p *persister) warmStartModels(ctx context.Context) {
	keys, err := p.store.List(ctx, modelKeyPrefix)
	if err != nil {
		log.Printf("sstad: store: warm start: list models: %v", err)
		return
	}
	seeded := 0
	for _, key := range keys {
		if ctx.Err() != nil {
			return
		}
		gk, ok := parseModelKey(key)
		if !ok {
			p.quarantine(ctx, key, errors.New("unrecognized model key"))
			continue
		}
		data, err := p.store.Get(ctx, key)
		if err != nil {
			continue
		}
		m, err := ssta.DecodeModelSnapshot(data)
		if err != nil {
			p.quarantine(ctx, key, err)
			continue
		}
		// The extraction cache is keyed by graph identity; rebuild the
		// graph deterministically (bench/seed or mult fully determine it)
		// and seed the cache entry the next extraction would recompute.
		g, _, err := p.srv.graphs.get(ctx, p.srv.flow, gk)
		if err != nil {
			log.Printf("sstad: store: warm start: rebuild graph for %s: %v", key, err)
			continue
		}
		if p.srv.flow.Cache.Seed(g, ssta.ExtractOptions{}, m) {
			seeded++
		}
	}
	if seeded > 0 {
		log.Printf("sstad: store: warm start: seeded %d extracted models", seeded)
	}
}

// warmStartPreps rebuilds each stamped quad design and stitches it once,
// so the restarted daemon's first sweep of that design hits the per-mode
// prep cache instead of paying the partition/PCA/replacement setup again.
// Runs after models (the rebuild reuses the freshly seeded extraction
// cache) and before sessions.
func (p *persister) warmStartPreps(ctx context.Context) {
	keys, err := p.store.List(ctx, prepKeyPrefix)
	if err != nil {
		log.Printf("sstad: store: warm start: list preps: %v", err)
		return
	}
	warmed := 0
	for _, key := range keys {
		if ctx.Err() != nil {
			return
		}
		data, err := p.store.Get(ctx, key)
		if err != nil {
			continue
		}
		st, err := decodePrepStamp(data)
		if err != nil {
			p.quarantine(ctx, key, err)
			continue
		}
		mode, _ := parseMode(st.Mode) // validated by decodePrepStamp
		d, err := p.srv.quadDesign(ctx, &QuadSpec{Bench: st.Bench, Seed: st.Seed, Gap: st.Gap})
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Printf("sstad: store: warm start: rebuild design for %s: %v", key, err)
			continue
		}
		if _, err := d.Stitch(ctx, mode, ssta.AnalyzeOptions{Workers: p.srv.cfg.Workers}); err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Printf("sstad: store: warm start: stitch %s: %v", key, err)
			continue
		}
		p.mu.Lock()
		p.prepDone[key] = struct{}{} // already durable; don't rewrite it
		p.mu.Unlock()
		warmed++
	}
	if warmed > 0 {
		log.Printf("sstad: store: warm start: warmed %d analysis preps", warmed)
	}
}

func (p *persister) warmStartSessions(ctx context.Context) {
	keys, err := p.store.List(ctx, sessionKeyPrefix)
	if err != nil {
		log.Printf("sstad: store: warm start: list sessions: %v", err)
		return
	}
	for _, key := range keys {
		if ctx.Err() != nil {
			return
		}
		// A delete that raced the warm start wins: skip ids already marked
		// dead so a removed session cannot resurrect.
		if id, ok := sessionIDFromKey(key); ok {
			p.mu.Lock()
			_, gone := p.dead[id]
			p.mu.Unlock()
			if gone {
				continue
			}
		}
		data, err := p.store.Get(ctx, key)
		if err != nil {
			continue
		}
		cp, err := decodeCheckpoint(data)
		if err != nil {
			p.quarantine(ctx, key, err)
			continue
		}
		sess, err := p.srv.flow.RestoreSession(ctx, cp.Session)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			p.quarantine(ctx, key, err)
			continue
		}
		created := time.UnixMilli(cp.CreatedMS)
		if !p.srv.sessions.restore(cp.ID, cp.Name, created, cp.Edits, sess) {
			continue // id taken or table full; leave the checkpoint be
		}
		p.restored.Add(1)
	}
	if n := p.restored.Load(); n > 0 {
		log.Printf("sstad: store: warm start: restored %d sessions", n)
	}
}

// finalFlush is the shutdown drain: one synchronous flush with its own
// deadline after the flusher goroutine has exited.
func (p *persister) finalFlush() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Every live session that has seen any edit since its last flush is in
	// dirty already; flush what is pending.
	p.flush(ctx)
}

// --- nil-safe server hooks (no-ops without a configured store) ---

func (s *Server) checkpointSession(id string) {
	if s.persist != nil {
		s.persist.markDirty(id)
	}
}

func (s *Server) dropCheckpoint(id string) {
	if s.persist != nil {
		s.persist.markDead(id)
	}
}

func (s *Server) checkpointModel(gk graphKey, m *ssta.Model) {
	if s.persist != nil {
		s.persist.addModel(gk, m)
	}
}

// checkpointPrep stamps a quad design whose per-mode analysis prep is (or
// is about to be) warm, so a restarted daemon rebuilds the prep before its
// first sweep.
func (s *Server) checkpointPrep(q *QuadSpec, mode ssta.Mode) {
	if s.persist != nil && q != nil {
		s.persist.addPrep(q, mode)
	}
}
