package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/ssta"
)

// clusterBenchScens sizes the sweep; sharding targets wide scenario sets.
var clusterBenchScens = flag.Int("cluster-bench-scenarios", 32, "scenario count for BenchmarkClusterSweep")

// BenchmarkClusterSweep measures the cost of distribution itself: the same
// wide MCMM sweep (32 scenarios by default) against the hierarchical quad-c1355 design served
// standalone versus through a coordinator sharding across two localhost
// workers. On a single-CPU host the workers and the coordinator share one
// core, so the cluster arm can never be faster — the honest number is the
// coordination overhead (RPC framing, shard result encode/decode, remote
// cache chatter, result reassembly) on top of the same shard compute. The
// "rpc" sub-benchmark isolates one framed round trip through the pool.
func BenchmarkClusterSweep(b *testing.B) {
	scens := make([]SweepScenarioSpec, *clusterBenchScens)
	for i := range scens {
		scens[i] = SweepScenarioSpec{ScenarioSpec: ssta.ScenarioSpec{
			Name: fmt.Sprintf("corner-%d", i), Derate: 1 + 0.02*float64(i),
		}}
	}
	body, err := json.Marshal(SweepRequest{
		ItemSpec:  ItemSpec{Quad: &QuadSpec{Bench: "c1355", Seed: 1}, Mode: "full"},
		Scenarios: scens,
	})
	if err != nil {
		b.Fatal(err)
	}

	fire := func(b *testing.B, url string) {
		r, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", r.StatusCode, data)
		}
	}

	run := func(b *testing.B, s *Server) {
		hs := httptest.NewServer(s.Handler())
		defer hs.Close()
		fire(b, hs.URL) // warm graph/extract/prep caches in both arms
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			fire(b, hs.URL)
		}
	}

	b.Run("standalone", func(b *testing.B) {
		s := New(Config{})
		defer s.Close()
		run(b, s)
	})

	b.Run("cluster-2", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		addrs := make([]string, 2)
		for i := range addrs {
			w := New(Config{})
			defer w.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			go func() { _ = cluster.Serve(ctx, ln, w.WorkerService()) }()
			addrs[i] = ln.Addr().String()
		}
		pool := cluster.NewPool(cluster.PoolConfig{Addrs: addrs})
		s := New(Config{Cluster: pool})
		defer s.Close()
		deadline := time.Now().Add(5 * time.Second)
		for len(pool.Healthy()) < 2 {
			if time.Now().After(deadline) {
				b.Fatal("workers never became healthy")
			}
			time.Sleep(10 * time.Millisecond)
		}
		run(b, s)
	})

	// One framed request/response round trip over a live pool connection —
	// the fixed per-dispatch cost the coordinator pays per shard.
	b.Run("rpc", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		w := New(Config{})
		defer w.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		go func() { _ = cluster.Serve(ctx, ln, w.WorkerService()) }()
		pool := cluster.NewPool(cluster.PoolConfig{Addrs: []string{ln.Addr().String()}})
		defer pool.Close()
		pool.Start(ctx)
		n := pool.Nodes()[0]
		deadline := time.Now().Add(5 * time.Second)
		for !n.Healthy() {
			if time.Now().After(deadline) {
				b.Fatal("worker never became healthy")
			}
			time.Sleep(10 * time.Millisecond)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Do(ctx, n, "ping", nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
