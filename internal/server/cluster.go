package server

// Distributed serving: sstad can run as a coordinator fronting a pool of
// worker nodes (ROADMAP "distributed sstad"). The coordinator partitions a
// sweep's scenario set into contiguous shards, dispatches each shard to a
// healthy worker over the cluster RPC transport, and streams per-scenario
// results back so SSE delivery and the per-scenario metrics hook behave
// exactly as in standalone mode. Stateful sessions pin to a worker by
// subject fingerprint (consistent hashing in the pool) and are served
// through a transparent HTTP proxy RPC, so session bodies — including SSE
// edit streams — are byte-identical to a locally served session.
//
// Degradation ladder, in order: a failed shard dispatch retries on the same
// node with jittered backoff, then re-homes to a surviving worker, then
// executes locally on the coordinator; a sweep with no healthy workers runs
// entirely locally. A cluster of one (or zero) workers therefore behaves
// exactly like standalone. Session proxying does not failover (the session's
// state lives on its worker); a dead worker yields 503 until the worker
// returns or the client re-creates the session.
//
// The remote model-cache tier runs in the other direction on the same
// connections: before paying a local extraction, a worker asks the
// coordinator's extract-cache index for the sealed model snapshot
// (cache.get) and seeds its own cache on a hit; after a local extraction it
// uploads the snapshot (cache.put) so the coordinator can serve the next
// worker and persist the model. A miss or a slow coordinator never blocks a
// worker — the consult is bounded by a short timeout and falls back to
// local extraction.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/ssta"
)

// RPC methods of the cluster protocol. Shard and proxy are served by
// workers; the cache methods are served by the coordinator on the same
// pool connections (the transport is symmetric).
const (
	shardMethod    = "sweep.shard"
	proxyMethod    = "http.proxy"
	cacheGetMethod = "cache.get"
	cachePutMethod = "cache.put"
)

const (
	// remoteCacheTimeout bounds a worker's consult of the coordinator's
	// model index; on expiry the worker extracts locally.
	remoteCacheTimeout = 2 * time.Second
	// remoteCachePutTimeout bounds the best-effort async snapshot upload.
	remoteCachePutTimeout = 5 * time.Second
	// maxModelIndex bounds the coordinator's in-memory model index.
	maxModelIndex = 64
	// sessionIDHeader carries the coordinator-allocated session id on a
	// proxied create, so the worker registers the session under the id the
	// coordinator routes by.
	sessionIDHeader = "X-Sstad-Session-Id"
)

// Wire error kinds: per-scenario errors cross the wire as a message plus a
// classification, so the coordinator's metrics accounting (rejected vs
// failed) matches standalone behavior.
const (
	errKindNone = iota
	errKindCanceled
	errKindDeadline
	errKindOther
)

// shardRequest asks a worker to run a contiguous slice of a sweep.
// Scenario names are pre-assigned by the coordinator (global default
// names), so the worker-local Normalize cannot rename them.
type shardRequest struct {
	Item      ItemSpec            `json:"item"`
	Scenarios []SweepScenarioSpec `json:"scenarios"`
	// Indices maps each scenario to its global index in the sweep.
	Indices   []int `json:"indices"`
	Workers   int   `json:"workers,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stream asks for per-scenario event frames as results land. Only set
	// when the coordinator has a live progress consumer (SSE); a sync sweep
	// reads everything from the final response, and skipping the per-result
	// frames avoids a write syscall plus a coordinator wakeup per scenario.
	Stream bool `json:"stream,omitempty"`
}

// wireScenarioResult is one scenario outcome crossing the wire: scalar
// statistics only — canonical delay forms stay on the worker. Setup/Hold
// carry the worst setup/hold slack statistics on sequential subjects.
type wireScenarioResult struct {
	Index     int             `json:"i"`
	Name      string          `json:"name"`
	Mean      float64         `json:"mean,omitempty"`
	Std       float64         `json:"std,omitempty"`
	Quantile  float64         `json:"q,omitempty"`
	Setup     *ssta.SlackStat `json:"setup,omitempty"`
	Hold      *ssta.SlackStat `json:"hold,omitempty"`
	Shared    bool            `json:"shared,omitempty"`
	ElapsedUS int64           `json:"us,omitempty"`
	Err       string          `json:"err,omitempty"`
	ErrKind   int             `json:"errk,omitempty"`
}

// shardResponse carries the shard's results plus the worker-side subject
// graph's size. The graph itself never crosses the wire, so these scalars
// are the only way a coordinator can report verts/edges for a distributed
// sweep (the PR 9 Top-loss bug: quad sweeps through the coordinator came
// back with no graph stats at all).
type shardResponse struct {
	Results []wireScenarioResult `json:"results"`
	Verts   int                  `json:"verts,omitempty"`
	Edges   int                  `json:"edges,omitempty"`
}

// proxyRequest replays one HTTP request against a worker's own mux.
type proxyRequest struct {
	Method string            `json:"method"`
	Path   string            `json:"path"`
	Header map[string]string `json:"header,omitempty"`
	Body   []byte            `json:"body,omitempty"`
}

// proxyChunk is one streamed slice of a proxied response (SSE edit
// streams); the first chunk carries the status and headers.
type proxyChunk struct {
	Status int               `json:"status,omitempty"`
	Header map[string]string `json:"header,omitempty"`
	Data   []byte            `json:"data,omitempty"`
}

// proxyResponse closes a proxied request: the full response when nothing
// streamed, or the trailing bytes of a streamed one.
type proxyResponse struct {
	Status   int               `json:"status"`
	Header   map[string]string `json:"header,omitempty"`
	Body     []byte            `json:"body,omitempty"`
	Streamed bool              `json:"streamed,omitempty"`
}

type cacheGetRequest struct {
	Key string `json:"key"`
}

type cacheGetResponse struct {
	Found bool   `json:"found"`
	Data  []byte `json:"data,omitempty"`
}

type cachePutRequest struct {
	Key  string `json:"key"`
	Data []byte `json:"data"`
}

// remoteScenarioError reconstructs a worker-side scenario error on the
// coordinator: the message survives verbatim while errors.Is still matches
// the context sentinels, so metrics classification is wire-transparent.
type remoteScenarioError struct {
	msg  string
	kind int
}

func (e *remoteScenarioError) Error() string { return e.msg }

func (e *remoteScenarioError) Unwrap() error {
	switch e.kind {
	case errKindCanceled:
		return context.Canceled
	case errKindDeadline:
		return context.DeadlineExceeded
	}
	return nil
}

func errKindOf(err error) int {
	switch {
	case err == nil:
		return errKindNone
	case errors.Is(err, context.Canceled):
		return errKindCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return errKindDeadline
	}
	return errKindOther
}

func wireErrOf(kind int, msg string) error {
	if kind == errKindNone {
		return nil
	}
	if msg == "" {
		msg = "scenario failed on worker"
	}
	switch kind {
	case errKindCanceled:
		if msg == context.Canceled.Error() {
			return context.Canceled
		}
	case errKindDeadline:
		if msg == context.DeadlineExceeded.Error() {
			return context.DeadlineExceeded
		}
	}
	return &remoteScenarioError{msg: msg, kind: kind}
}

func toWire(global int, r *ssta.ScenarioResult) wireScenarioResult {
	w := wireScenarioResult{
		Index:     global,
		Name:      r.Name,
		Shared:    r.Shared,
		ElapsedUS: r.Elapsed.Microseconds(),
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
		w.ErrKind = errKindOf(r.Err)
		return w
	}
	w.Mean, w.Std, w.Quantile = r.Mean, r.Std, r.Quantile
	w.Setup, w.Hold = r.SetupSlack, r.HoldSlack
	return w
}

func fromWire(w *wireScenarioResult) ssta.ScenarioResult {
	return ssta.ScenarioResult{
		Name:       w.Name,
		Mean:       w.Mean,
		Std:        w.Std,
		Quantile:   w.Quantile,
		SetupSlack: w.Setup,
		HoldSlack:  w.Hold,
		Shared:     w.Shared,
		Elapsed:    time.Duration(w.ElapsedUS) * time.Microsecond,
		Err:        wireErrOf(w.ErrKind, w.Err),
	}
}

// clusterState is the coordinator's cluster bookkeeping: the worker pool,
// the session routing table, the model index backing the remote cache
// tier, and the dispatch counters.
type clusterState struct {
	pool *cluster.Pool

	mu         sync.Mutex
	routes     map[string]*cluster.Node
	modelIndex map[string][]byte

	dispatches     atomic.Int64 // shard RPC attempts
	retries        atomic.Int64 // attempts beyond a shard's first
	failovers      atomic.Int64 // shards re-homed off their first node
	localFallbacks atomic.Int64 // executions (whole or shard) run locally
	proxyErrors    atomic.Int64 // session proxy transport failures
	indexHits      atomic.Int64
	indexMisses    atomic.Int64
	putsReceived   atomic.Int64
}

func newClusterState(pool *cluster.Pool) *clusterState {
	return &clusterState{
		pool:       pool,
		routes:     make(map[string]*cluster.Node),
		modelIndex: make(map[string][]byte),
	}
}

func (cl *clusterState) route(id string) *cluster.Node {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.routes[id]
}

func (cl *clusterState) setRoute(id string, n *cluster.Node) {
	cl.mu.Lock()
	cl.routes[id] = n
	cl.mu.Unlock()
	n.Sessions.Add(1)
}

func (cl *clusterState) dropRoute(id string) {
	cl.mu.Lock()
	n := cl.routes[id]
	delete(cl.routes, id)
	cl.mu.Unlock()
	if n != nil {
		n.Sessions.Add(-1)
	}
}

func (cl *clusterState) routedSessions() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.routes)
}

func (cl *clusterState) indexLen() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.modelIndex)
}

func (cl *clusterState) indexGet(key string) ([]byte, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	data, ok := cl.modelIndex[key]
	return data, ok
}

func (cl *clusterState) indexPut(key string, data []byte) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if _, ok := cl.modelIndex[key]; !ok && len(cl.modelIndex) >= maxModelIndex {
		// Same pragmatic bound as the quad-design cache: reset rather than
		// track recency — snapshots are cheap to re-upload.
		cl.modelIndex = make(map[string][]byte)
	}
	cl.modelIndex[key] = data
}

// remoteCacheStats counts this node's consults of the remote model-cache
// tier (worker side; zero on a standalone or coordinator node).
type remoteCacheStats struct {
	hits, misses, puts, putErrs atomic.Int64
}

// peerKey carries the cluster connection a worker-side handler is serving,
// so extraction deep in the request path can consult the coordinator.
type peerKey struct{}

func withPeer(ctx context.Context, c *cluster.Conn) context.Context {
	return context.WithValue(ctx, peerKey{}, c)
}

func peerFromContext(ctx context.Context) *cluster.Conn {
	c, _ := ctx.Value(peerKey{}).(*cluster.Conn)
	return c
}

// WorkerService is the RPC surface a worker node exposes to its
// coordinator: health pings, sweep shard execution, and the transparent
// HTTP proxy that serves pinned sessions.
func (s *Server) WorkerService() cluster.Service {
	return cluster.Service{
		cluster.PingMethod: pingHandler,
		shardMethod:        s.handleShardRPC,
		proxyMethod:        s.handleProxyRPC,
	}
}

// coordinatorService is what the coordinator serves back to workers on the
// pool connections: the remote model-cache tier.
func (s *Server) coordinatorService() cluster.Service {
	return cluster.Service{
		cluster.PingMethod: pingHandler,
		cacheGetMethod:     s.handleCacheGet,
		cachePutMethod:     s.handleCachePut,
	}
}

func pingHandler(context.Context, *cluster.Request) ([]byte, error) { return nil, nil }

// ---------------------------------------------------------------------------
// Coordinator: distributed sweep dispatch

// runSweep executes a prepared sweep: locally when standalone (or when no
// worker is healthy), otherwise sharded across the pool.
func (s *Server) runSweep(ctx context.Context, pr *sweepPrep, opt ssta.SweepOptions) (*ssta.SweepReport, error) {
	cl := s.cluster
	if cl == nil {
		return pr.run(ctx, opt)
	}
	healthy := cl.pool.Healthy()
	if len(healthy) == 0 {
		cl.localFallbacks.Add(1)
		return pr.run(ctx, opt)
	}
	return s.runSweepDistributed(ctx, cl, healthy, pr, opt)
}

func (s *Server) runSweepDistributed(ctx context.Context, cl *clusterState, healthy []*cluster.Node, pr *sweepPrep, opt ssta.SweepOptions) (*ssta.SweepReport, error) {
	start := time.Now()
	n := len(pr.specs)
	if n == 0 || n != len(pr.scens) {
		// A prep without wire specs (shouldn't happen) cannot be sharded.
		cl.localFallbacks.Add(1)
		return pr.run(ctx, opt)
	}

	// Independent copies with globally assigned default names: a worker's
	// Normalize fills names by shard-local index, so unnamed scenarios must
	// be named here with their global index to match standalone output.
	specs := make([]SweepScenarioSpec, n)
	copy(specs, pr.specs)
	scens := make([]ssta.Scenario, n)
	copy(scens, pr.scens)
	for i := range specs {
		if specs[i].Name == "" {
			name := fmt.Sprintf("scenario-%d", i)
			specs[i].Name = name
			scens[i].Name = name
		}
	}

	var timeoutMS int64
	if dl, ok := ctx.Deadline(); ok {
		timeoutMS = int64(time.Until(dl) / time.Millisecond)
	}

	results := make([]ssta.ScenarioResult, n)
	done := make([]bool, n)
	var mu sync.Mutex
	record := func(i int, r ssta.ScenarioResult) {
		if i < 0 || i >= n {
			return
		}
		mu.Lock()
		if done[i] {
			mu.Unlock()
			return
		}
		done[i] = true
		results[i] = r
		mu.Unlock()
		if opt.OnScenarioDone != nil {
			opt.OnScenarioDone(i, &results[i])
		}
	}
	remaining := func(idx []int) []int {
		mu.Lock()
		defer mu.Unlock()
		var left []int
		for _, i := range idx {
			if !done[i] {
				left = append(left, i)
			}
		}
		return left
	}
	// Subject graph size, reassembled from whichever shard (or local
	// fallback) reports it first — the scalar stand-in for the worker-side
	// top graph, which never crosses the wire (PR 9 Top-loss fix).
	var topVerts, topEdges int
	noteTop := func(verts, edges int) {
		if verts <= 0 {
			return
		}
		mu.Lock()
		if topVerts == 0 {
			topVerts, topEdges = verts, edges
		}
		mu.Unlock()
	}

	// Contiguous shards over the healthy nodes, one goroutine per shard.
	nw := len(healthy)
	if nw > n {
		nw = n
	}
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		lo, hi := k*n/nw, (k+1)*n/nw
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		wg.Add(1)
		go func(node *cluster.Node, idx []int) {
			defer wg.Done()
			s.dispatchShard(ctx, cl, node, pr, specs, idx, timeoutMS, opt, record, remaining, noteTop)
		}(healthy[k], idx)
	}
	wg.Wait()

	// Anything still missing (total dispatch and fallback failure) gets the
	// context error, mirroring the engine's fillUnrun accounting.
	for i := 0; i < n; i++ {
		mu.Lock()
		missing := !done[i]
		mu.Unlock()
		if !missing {
			continue
		}
		err := ctx.Err()
		if err == nil {
			err = errors.New("scenario: not run")
		}
		record(i, ssta.ScenarioResult{Name: scens[i].Name, Err: err})
	}

	rep := scenario.NewReport(results, scenario.Options{TopK: opt.TopK, Quantile: opt.Quantile})
	rep.Elapsed = time.Since(start)
	if !pr.isQuad {
		// The shared flat graph is local; report its size as standalone
		// would. A distributed design sweep has no local stitched top — its
		// scalar stats come back in the shard responses instead.
		rep.Top = pr.item.Graph
		rep.TopVerts, rep.TopEdges = pr.item.Graph.NumVerts, len(pr.item.Graph.Edges)
	} else {
		mu.Lock()
		rep.TopVerts, rep.TopEdges = topVerts, topEdges
		mu.Unlock()
	}
	return rep, nil
}

// dispatchShard drives one shard to completion: dispatch to its node,
// retry with jittered backoff, re-home to a survivor, and finally execute
// the remainder locally. Every path records results through record, so the
// per-scenario hook fires exactly once per scenario.
func (s *Server) dispatchShard(ctx context.Context, cl *clusterState, node *cluster.Node, pr *sweepPrep, specs []SweepScenarioSpec, idx []int, timeoutMS int64, opt ssta.SweepOptions, record func(int, ssta.ScenarioResult), remaining func([]int) []int, noteTop func(int, int)) {
	bo := store.Backoff{Base: 25 * time.Millisecond, Cap: 250 * time.Millisecond, MaxAttempts: 3, Jitter: 0.5}
	attempt := 0
	err := bo.Retry(ctx, func() error {
		attempt++
		if attempt > 1 {
			cl.retries.Add(1)
			// Prefer re-homing to a survivor: the common failure is a dead
			// or demoted node, and hammering it wastes the remaining budget.
			if alt := pickOther(cl.pool, node); alt != nil {
				node = alt
				cl.failovers.Add(1)
			}
		}
		left := remaining(idx)
		if len(left) == 0 {
			return nil
		}
		return s.callShard(ctx, cl, node, pr, specs, left, timeoutMS, opt.OnScenarioDone != nil, record, noteTop)
	})
	if err == nil {
		return
	}
	left := remaining(idx)
	if len(left) == 0 || ctx.Err() != nil {
		return
	}
	cl.failovers.Add(1)
	cl.localFallbacks.Add(1)
	s.runShardLocal(ctx, pr, left, opt, record, noteTop)
}

// pickOther returns a healthy node other than cur, if any.
func pickOther(pool *cluster.Pool, cur *cluster.Node) *cluster.Node {
	for _, n := range pool.Healthy() {
		if n != cur {
			return n
		}
	}
	return nil
}

// callShard performs one shard RPC against one node, recording streamed
// per-scenario events as they arrive and the final response as backstop. A
// node that goes unhealthy mid-dispatch (crash, hang) aborts the call so
// the shard can re-home instead of waiting out the request deadline.
func (s *Server) callShard(ctx context.Context, cl *clusterState, node *cluster.Node, pr *sweepPrep, specs []SweepScenarioSpec, idx []int, timeoutMS int64, stream bool, record func(int, ssta.ScenarioResult), noteTop func(int, int)) error {
	sub := make([]SweepScenarioSpec, len(idx))
	for k, i := range idx {
		sub[k] = specs[i]
	}
	req := shardRequest{
		Item:      pr.spec,
		Scenarios: sub,
		Indices:   idx,
		Workers:   pr.workers,
		TimeoutMS: timeoutMS,
		Stream:    stream,
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	cl.dispatches.Add(1)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-watchDone:
				return
			case <-cctx.Done():
				return
			case <-t.C:
				if !node.Healthy() {
					cancel()
					return
				}
			}
		}
	}()

	onEvent := func(b []byte) {
		var ev wireScenarioResult
		if json.Unmarshal(b, &ev) != nil {
			return
		}
		record(ev.Index, fromWire(&ev))
	}
	respBody, err := cl.pool.Do(cctx, node, shardMethod, body, onEvent)
	if err != nil {
		return err
	}
	var resp shardResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return err
	}
	noteTop(resp.Verts, resp.Edges)
	for k := range resp.Results {
		record(resp.Results[k].Index, fromWire(&resp.Results[k]))
	}
	return nil
}

// runShardLocal executes the remaining scenario subset on the coordinator,
// remapping the per-scenario hook back to global indices.
func (s *Server) runShardLocal(ctx context.Context, pr *sweepPrep, idx []int, opt ssta.SweepOptions, record func(int, ssta.ScenarioResult), noteTop func(int, int)) {
	sub := make([]ssta.Scenario, len(idx))
	for k, i := range idx {
		sub[k] = pr.scens[i]
		if sub[k].Name == "" {
			sub[k].Name = fmt.Sprintf("scenario-%d", i)
		}
	}
	lopt := opt
	lopt.OnScenarioDone = func(k int, r *ssta.ScenarioResult) {
		if k >= 0 && k < len(idx) {
			record(idx[k], *r)
		}
	}
	var rep *ssta.SweepReport
	if pr.isQuad {
		rep, _ = ssta.SweepAnalyze(ctx, pr.item.Design, pr.mode, sub, lopt)
	} else {
		rep, _ = ssta.SweepAnalyzeGraph(ctx, pr.item.Graph, sub, lopt)
	}
	if rep != nil {
		noteTop(rep.TopVerts, rep.TopEdges)
	}
}

// ---------------------------------------------------------------------------
// Worker: shard execution

func (s *Server) handleShardRPC(ctx context.Context, req *cluster.Request) ([]byte, error) {
	var sr shardRequest
	if err := json.Unmarshal(req.Body, &sr); err != nil {
		return nil, fmt.Errorf("sweep.shard: bad request: %v", err)
	}
	if len(sr.Scenarios) == 0 || len(sr.Scenarios) != len(sr.Indices) {
		return nil, errors.New("sweep.shard: malformed shard")
	}
	if sr.TimeoutMS > 0 {
		d := time.Duration(sr.TimeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	ctx = withPeer(ctx, req.Conn)
	if err := s.acquireSlotWait(ctx, s.cfg.AdmissionWait); err != nil {
		s.metrics.rejected.Add(1)
		return nil, err
	}
	defer s.releaseSlot()

	item, _, isQuad, mode, err := s.resolveSweepItem(ctx, &sr.Item)
	if err != nil {
		return nil, err
	}
	scens := make([]ssta.Scenario, len(sr.Scenarios))
	for k := range sr.Scenarios {
		sc, err := s.convertScenario(ctx, &sr.Scenarios[k], isQuad)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %v", sr.Indices[k], err)
		}
		scens[k] = sc
	}

	metricsHook := s.scenarioMetricsHook()
	opt := ssta.SweepOptions{
		Workers: sr.Workers,
		OnScenarioDone: func(k int, r *ssta.ScenarioResult) {
			metricsHook(k, r)
			if !sr.Stream || k < 0 || k >= len(sr.Indices) {
				return
			}
			ev := toWire(sr.Indices[k], r)
			// Best effort: the final response repeats every result.
			_ = req.Emit(marshalJSON(ev))
		},
	}
	var rep *ssta.SweepReport
	if isQuad {
		rep, err = ssta.SweepAnalyze(ctx, item.Design, mode, scens, opt)
	} else {
		rep, err = ssta.SweepAnalyzeGraph(ctx, item.Graph, scens, opt)
	}
	if err != nil {
		return nil, err
	}
	out := shardResponse{
		Results: make([]wireScenarioResult, len(rep.Results)),
		Verts:   rep.TopVerts,
		Edges:   rep.TopEdges,
	}
	for k := range rep.Results {
		out.Results[k] = toWire(sr.Indices[k], &rep.Results[k])
	}
	return marshalJSON(out), nil
}

// ---------------------------------------------------------------------------
// Remote model-cache tier

// extractModel resolves the extracted timing model for a cached graph: the
// local extract cache first, then — on a worker — the coordinator's model
// index, and finally a local extraction (checkpointed, and uploaded to the
// coordinator so the tier warms for the other workers).
func (s *Server) extractModel(ctx context.Context, gk graphKey, g *ssta.Graph) (*ssta.Model, error) {
	if m, ok := s.flow.Cache.Lookup(g, ssta.ExtractOptions{}); ok {
		return m, nil
	}
	key, durable := modelKey(gk)
	peer := peerFromContext(ctx)
	if peer != nil && durable {
		if m := s.remoteCacheGet(ctx, peer, key, g); m != nil {
			return m, nil
		}
	}
	m, err := s.flow.ExtractCtx(ctx, g, ssta.ExtractOptions{})
	if err != nil {
		return nil, err
	}
	s.checkpointModel(gk, m)
	if peer != nil && durable {
		s.remoteCachePutAsync(peer, key, m)
	}
	return m, nil
}

func (s *Server) remoteCacheGet(ctx context.Context, peer *cluster.Conn, key string, g *ssta.Graph) *ssta.Model {
	cctx, cancel := context.WithTimeout(ctx, remoteCacheTimeout)
	defer cancel()
	resp, err := peer.Call(cctx, cacheGetMethod, marshalJSON(cacheGetRequest{Key: key}), nil)
	if err != nil {
		s.remoteCache.misses.Add(1)
		return nil
	}
	var out cacheGetResponse
	if json.Unmarshal(resp, &out) != nil || !out.Found {
		s.remoteCache.misses.Add(1)
		return nil
	}
	m, err := ssta.DecodeModelSnapshot(out.Data)
	if err != nil {
		s.remoteCache.misses.Add(1)
		return nil
	}
	s.flow.Cache.Seed(g, ssta.ExtractOptions{}, m)
	s.remoteCache.hits.Add(1)
	return m
}

func (s *Server) remoteCachePutAsync(peer *cluster.Conn, key string, m *ssta.Model) {
	go func() {
		data, err := m.EncodeSnapshot()
		if err != nil {
			s.remoteCache.putErrs.Add(1)
			return
		}
		cctx, cancel := context.WithTimeout(context.Background(), remoteCachePutTimeout)
		defer cancel()
		if _, err := peer.Call(cctx, cachePutMethod, marshalJSON(cachePutRequest{Key: key, Data: data}), nil); err != nil {
			s.remoteCache.putErrs.Add(1)
			return
		}
		s.remoteCache.puts.Add(1)
	}()
}

// handleCacheGet serves the coordinator's extract-cache index: the
// in-memory model index first, falling back to encoding a model the
// coordinator's own extract cache already holds for an already built
// graph. It never builds graphs or extracts on a worker's behalf.
func (s *Server) handleCacheGet(ctx context.Context, req *cluster.Request) ([]byte, error) {
	var q cacheGetRequest
	if err := json.Unmarshal(req.Body, &q); err != nil {
		return nil, fmt.Errorf("cache.get: bad request: %v", err)
	}
	cl := s.cluster
	if cl == nil {
		return marshalJSON(cacheGetResponse{}), nil
	}
	if data, ok := cl.indexGet(q.Key); ok {
		cl.indexHits.Add(1)
		return marshalJSON(cacheGetResponse{Found: true, Data: data}), nil
	}
	if gk, ok := parseModelKey(q.Key); ok {
		if g := s.graphs.peek(gk); g != nil {
			if m, ok := s.flow.Cache.Lookup(g, ssta.ExtractOptions{}); ok {
				if data, err := m.EncodeSnapshot(); err == nil {
					cl.indexPut(q.Key, data)
					cl.indexHits.Add(1)
					return marshalJSON(cacheGetResponse{Found: true, Data: data}), nil
				}
			}
		}
	}
	cl.indexMisses.Add(1)
	return marshalJSON(cacheGetResponse{}), nil
}

// handleCachePut receives a worker's extracted-model snapshot: validated,
// indexed for the other workers, and fed to the persister.
func (s *Server) handleCachePut(ctx context.Context, req *cluster.Request) ([]byte, error) {
	var q cachePutRequest
	if err := json.Unmarshal(req.Body, &q); err != nil {
		return nil, fmt.Errorf("cache.put: bad request: %v", err)
	}
	gk, ok := parseModelKey(q.Key)
	if !ok {
		return nil, fmt.Errorf("cache.put: bad key %q", q.Key)
	}
	m, err := ssta.DecodeModelSnapshot(q.Data)
	if err != nil {
		return nil, fmt.Errorf("cache.put: %v", err)
	}
	cl := s.cluster
	if cl == nil {
		return nil, nil
	}
	cl.indexPut(q.Key, q.Data)
	cl.putsReceived.Add(1)
	s.checkpointModel(gk, m)
	return nil, nil
}

// ---------------------------------------------------------------------------
// Session affinity: coordinator-side routing and the worker-side proxy

// validSessionID bounds the ids a proxied create will honor (they become
// store keys on the worker).
func validSessionID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			continue
		}
		return false
	}
	return true
}

// clusterSessionCreate routes a session create to its affinity worker.
// It reports true when it fully handled the request; false means the
// caller should serve it locally (no healthy node, or dispatch failed —
// the degradation ladder's local fallback), with r.Body restored.
func (s *Server) clusterSessionCreate(w http.ResponseWriter, r *http.Request) bool {
	cl := s.cluster
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return true
	}
	var req SessionCreateRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return true
	}
	fp := ItemFingerprint(&req.ItemSpec)
	node := cl.pool.Pick(fp[:])
	if node == nil {
		cl.localFallbacks.Add(1)
		r.Body = io.NopCloser(bytes.NewReader(raw))
		return false
	}
	id := s.sessions.nextID()
	pq := &proxyRequest{
		Method: http.MethodPost,
		Path:   "/v1/sessions",
		Header: map[string]string{
			"Content-Type":  "application/json",
			sessionIDHeader: id,
		},
		Body: raw,
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()
	status, started, err := s.proxyRoundTrip(ctx, w, node, pq)
	if err != nil {
		cl.proxyErrors.Add(1)
		if started {
			return true // response already underway; nothing safe to add
		}
		// The worker may or may not have created the session; an orphan is
		// reaped by its idle janitor. Serving locally keeps the request
		// answered — the degradation the issue demands.
		cl.failovers.Add(1)
		r.Body = io.NopCloser(bytes.NewReader(raw))
		return false
	}
	if status == http.StatusCreated {
		cl.setRoute(id, node)
	}
	return true
}

// clusterSessionProxy forwards a pinned session request (get, edits —
// including SSE streams — and delete) to the session's worker. Reports
// true when the request was handled (successfully or with an error
// response); false when the id has no route and the caller should serve
// locally.
func (s *Server) clusterSessionProxy(w http.ResponseWriter, r *http.Request, id string) bool {
	cl := s.cluster
	node := cl.route(id)
	if node == nil {
		return false
	}
	var raw []byte
	if r.Body != nil {
		var err error
		raw, err = io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return true
		}
	}
	pq := &proxyRequest{
		Method: r.Method,
		Path:   r.URL.Path,
		Header: map[string]string{},
		Body:   raw,
	}
	for _, h := range []string{"Accept", "Content-Type"} {
		if v := r.Header.Get(h); v != "" {
			pq.Header[h] = v
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()
	status, started, err := s.proxyRoundTrip(ctx, w, node, pq)
	if err != nil {
		cl.proxyErrors.Add(1)
		if !started {
			httpError(w, http.StatusServiceUnavailable, "session worker unavailable")
		}
		return true
	}
	switch {
	case status == http.StatusNotFound:
		// The worker no longer has the session (restart, eviction): drop
		// the stale route so a re-created session can pin afresh.
		cl.dropRoute(id)
	case r.Method == http.MethodDelete && status == http.StatusOK:
		cl.dropRoute(id)
	}
	return true
}

// proxyRoundTrip replays one HTTP request on the node and copies the
// response — streamed chunks as they arrive, then the closing frame —
// onto w. It reports whether any bytes reached w (after which no error
// response can be written).
func (s *Server) proxyRoundTrip(ctx context.Context, w http.ResponseWriter, node *cluster.Node, pq *proxyRequest) (status int, started bool, err error) {
	body, err := json.Marshal(pq)
	if err != nil {
		return 0, false, err
	}
	fl, _ := w.(http.Flusher)
	streamStatus := 0
	onEvent := func(b []byte) {
		var ch proxyChunk
		if json.Unmarshal(b, &ch) != nil {
			return
		}
		if !started {
			started = true
			streamStatus = ch.Status
			for k, v := range ch.Header {
				w.Header().Set(k, v)
			}
			w.WriteHeader(ch.Status)
		}
		if len(ch.Data) > 0 {
			_, _ = w.Write(ch.Data)
		}
		if fl != nil {
			fl.Flush()
		}
	}
	respBody, err := s.cluster.pool.Do(ctx, node, proxyMethod, body, onEvent)
	if err != nil {
		return streamStatus, started, err
	}
	var pr proxyResponse
	if err := json.Unmarshal(respBody, &pr); err != nil {
		return streamStatus, started, err
	}
	if pr.Streamed || started {
		if len(pr.Body) > 0 {
			_, _ = w.Write(pr.Body)
			if fl != nil {
				fl.Flush()
			}
		}
		if streamStatus == 0 {
			streamStatus = pr.Status
		}
		return streamStatus, true, nil
	}
	for k, v := range pr.Header {
		w.Header().Set(k, v)
	}
	w.WriteHeader(pr.Status)
	_, _ = w.Write(pr.Body)
	return pr.Status, true, nil
}

// handleProxyRPC replays a coordinator's HTTP request against this
// worker's own mux, so proxied sessions behave byte-identically to local
// ones. Flushes stream back as event frames (SSE transparency).
func (s *Server) handleProxyRPC(ctx context.Context, req *cluster.Request) ([]byte, error) {
	var pq proxyRequest
	if err := json.Unmarshal(req.Body, &pq); err != nil {
		return nil, fmt.Errorf("http.proxy: bad request: %v", err)
	}
	hr, err := http.NewRequestWithContext(withPeer(ctx, req.Conn), pq.Method, pq.Path, bytes.NewReader(pq.Body))
	if err != nil {
		return nil, fmt.Errorf("http.proxy: %v", err)
	}
	for k, v := range pq.Header {
		hr.Header.Set(k, v)
	}
	pw := &proxyWriter{req: req, header: make(http.Header)}
	s.mux.ServeHTTP(pw, hr)
	return marshalJSON(pw.response()), nil
}

// proxyWriter is the worker-side ResponseWriter behind handleProxyRPC: a
// buffering writer whose Flush ships the buffered bytes to the
// coordinator as one event frame. Implementing http.Flusher is what makes
// the worker's SSE path stream instead of buffer.
type proxyWriter struct {
	req         *cluster.Request
	header      http.Header
	status      int
	wroteHeader bool
	buf         bytes.Buffer
	streamed    bool
	sendErr     error
}

func (p *proxyWriter) Header() http.Header { return p.header }

func (p *proxyWriter) WriteHeader(code int) {
	if !p.wroteHeader {
		p.status = code
		p.wroteHeader = true
	}
}

func (p *proxyWriter) Write(b []byte) (int, error) {
	if !p.wroteHeader {
		p.WriteHeader(http.StatusOK)
	}
	return p.buf.Write(b)
}

func (p *proxyWriter) Flush() {
	if p.sendErr != nil {
		return
	}
	if !p.wroteHeader {
		p.WriteHeader(http.StatusOK)
	}
	ch := proxyChunk{Data: append([]byte(nil), p.buf.Bytes()...)}
	if !p.streamed {
		ch.Status = p.status
		ch.Header = flattenHeader(p.header)
		p.streamed = true
	}
	p.buf.Reset()
	p.sendErr = p.req.Emit(marshalJSON(ch))
}

func (p *proxyWriter) response() proxyResponse {
	if !p.wroteHeader {
		p.status = http.StatusOK
	}
	resp := proxyResponse{
		Status:   p.status,
		Body:     p.buf.Bytes(),
		Streamed: p.streamed,
	}
	if !p.streamed {
		resp.Header = flattenHeader(p.header)
	}
	return resp
}

func flattenHeader(h http.Header) map[string]string {
	if len(h) == 0 {
		return nil
	}
	out := make(map[string]string, len(h))
	for k, vs := range h {
		if len(vs) > 0 {
			out[k] = vs[0]
		}
	}
	return out
}
