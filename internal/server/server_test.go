package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/ssta"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func analyze(t *testing.T, base string, req AnalyzeRequest) AnalyzeResponse {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/analyze: status %d: %s", resp.StatusCode, data)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("/v1/analyze: bad body %q: %v", data, err)
	}
	return out
}

// TestAnalyzeMatchesDirectBatch is the end-to-end acceptance check: a
// generated benchmark and a quad hierarchical design submitted over HTTP
// produce the same delays as the direct ssta.AnalyzeBatch path at 1e-9.
func TestAnalyzeMatchesDirectBatch(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	got := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{
		{Bench: "c432", Seed: 1},
		{Quad: &QuadSpec{Bench: "c432", Seed: 1}, Mode: "full"},
		{Quad: &QuadSpec{Bench: "c432", Seed: 1}, Mode: "global"},
	}})
	if len(got.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(got.Results))
	}
	for k, r := range got.Results {
		if r.Error != "" {
			t.Fatalf("item %d failed: %s", k, r.Error)
		}
	}

	// Direct path on an independent flow: same deterministic pipeline.
	flow := ssta.DefaultFlow()
	g, plan, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := flow.Extract(g, ssta.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ssta.NewModule("c432", model, plan)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := flow.QuadDesign("quad", mod)
	if err != nil {
		t.Fatal(err)
	}
	want := flow.AnalyzeBatch([]ssta.BatchItem{
		{Graph: g},
		{Design: quad, Mode: ssta.FullCorrelation},
		{Design: quad, Mode: ssta.GlobalOnly},
	}, ssta.BatchOptions{Workers: 1})
	for k, r := range want {
		if r.Err != nil {
			t.Fatalf("direct item %d: %v", k, r.Err)
		}
		if d := math.Abs(got.Results[k].MeanPS - r.Delay.Mean()); d > 1e-9 {
			t.Fatalf("item %d mean: http %.12f vs direct %.12f (|d|=%g)",
				k, got.Results[k].MeanPS, r.Delay.Mean(), d)
		}
		if d := math.Abs(got.Results[k].StdPS - r.Delay.Std()); d > 1e-9 {
			t.Fatalf("item %d std: http %.12f vs direct %.12f (|d|=%g)",
				k, got.Results[k].StdPS, r.Delay.Std(), d)
		}
	}
}

// TestAnalyzeNetlistAndMult: the other two flat input kinds round-trip.
func TestAnalyzeNetlistAndMult(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	netlist := `# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
	got := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{
		{Name: "c17", Netlist: netlist},
		{Mult: 4},
	}})
	for k, r := range got.Results {
		if r.Error != "" {
			t.Fatalf("item %d failed: %s", k, r.Error)
		}
		if r.MeanPS <= 0 || r.StdPS <= 0 {
			t.Fatalf("item %d: implausible delay %+v", k, r)
		}
	}
	// The inline c17 must match the embedded netlist's direct analysis.
	direct := ssta.AnalyzeBatch([]ssta.BatchItem{{Circuit: ssta.C17()}}, ssta.BatchOptions{Workers: 1})
	if direct[0].Err != nil {
		t.Fatal(direct[0].Err)
	}
	if d := math.Abs(got.Results[0].MeanPS - direct[0].Delay.Mean()); d > 1e-9 {
		t.Fatalf("netlist c17 mean differs from direct by %g", d)
	}
}

// heavySpecs returns a batch big enough (dozens of distinct c7552 builds
// and analyses) that mid-flight cancellation is observable: fractions of a
// second of work even on a fast machine, with plenty of scheduling points
// for context deadlines to fire.
func heavySpecs(firstSeed int64, n int) ([]ItemSpec, []ssta.BatchItem) {
	specs := make([]ItemSpec, n)
	direct := make([]ssta.BatchItem, n)
	for k := range specs {
		specs[k] = ItemSpec{Bench: "c7552", Seed: firstSeed + int64(k)}
		direct[k] = ssta.BatchItem{Bench: "c7552", Seed: firstSeed + int64(k)}
	}
	return specs, direct
}

// TestServerDeadlineCancelsWork: a request whose deadline is far shorter
// than its batch returns promptly with per-item deadline errors instead of
// running the work to completion.
func TestServerDeadlineCancelsWork(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	// Measure the full batch first so "returns before its work completes"
	// is asserted against this machine's own speed.
	items, direct := heavySpecs(100, 40)
	start := time.Now()
	for _, r := range ssta.DefaultFlow().AnalyzeBatch(direct, ssta.BatchOptions{Workers: 1}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	full := time.Since(start)

	start = time.Now()
	got := analyze(t, hs.URL, AnalyzeRequest{Items: items, TimeoutMS: 30, Workers: 1})
	elapsed := time.Since(start)
	if elapsed >= full {
		t.Fatalf("cancelled request took %v, full batch takes %v", elapsed, full)
	}
	deadline, completed := 0, 0
	for _, r := range got.Results {
		switch {
		case strings.Contains(r.Error, context.DeadlineExceeded.Error()):
			deadline++
		case r.Error == "":
			completed++
		default:
			t.Fatalf("unexpected item error: %s", r.Error)
		}
	}
	if deadline == 0 {
		t.Fatalf("no item reported the deadline (completed %d/%d in %v, full %v)",
			completed, len(items), elapsed, full)
	}
}

// TestClientDisconnectCancels: closing the client side of a slow request
// unblocks quickly (the server observes r.Context() through the batch).
func TestClientDisconnectCancels(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	items, _ := heavySpecs(200, 40)
	body, _ := json.Marshal(AnalyzeRequest{Items: items, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/analyze", bytes.NewReader(body))
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite cancelled client context")
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancelled client blocked for %v", d)
	}
	// The server side must wind down too: wait for its analysis slot to
	// free without the batch having run to completion.
	deadline := time.Now().Add(30 * time.Second)
	for s.activeAnalyses() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server still analyzing long after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobsLifecycle: async submit, poll to completion, equivalence with
// the sync path, and 404 for unknown ids.
func TestJobsLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	sync := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{{Bench: "c880", Seed: 7}}})

	resp, data := postJSON(t, hs.URL+"/v1/jobs", AnalyzeRequest{Items: []ItemSpec{{Bench: "c880", Seed: 7}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || (v.Status != JobQueued && v.Status != JobRunning) {
		t.Fatalf("submit view: %+v", v)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for v.Status != JobDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", v.Status)
		}
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(hs.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d: %s", r.StatusCode, data)
		}
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == JobFailed || v.Status == JobCancelled {
			t.Fatalf("job ended %q: %s", v.Status, v.Error)
		}
	}
	if v.Result == nil || len(v.Result.Results) != 1 || v.Result.Results[0].Error != "" {
		t.Fatalf("job result: %+v", v.Result)
	}
	if d := math.Abs(v.Result.Results[0].MeanPS - sync.Results[0].MeanPS); d > 1e-9 {
		t.Fatalf("async mean differs from sync by %g", d)
	}

	if r, err := http.Get(hs.URL + "/v1/jobs/nope"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v %v", r.StatusCode, err)
	} else {
		r.Body.Close()
	}
}

// TestJobQueueBounded: with one busy worker and a depth-1 queue the third
// submission is refused with 503, and cancelling the running job works.
func TestJobQueueBounded(t *testing.T) {
	_, hs := newTestServer(t, Config{QueueDepth: 1, JobWorkers: 1, MaxConcurrent: 1})
	specs, _ := heavySpecs(300, 60)
	heavy := AnalyzeRequest{Items: specs, Workers: 1}

	resp, data := postJSON(t, hs.URL+"/v1/jobs", heavy)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job A: status %d: %s", resp.StatusCode, data)
	}
	var a JobView
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	// Wait until A occupies the worker so B deterministically queues.
	deadline := time.Now().Add(time.Minute)
	for a.Status != JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job A stuck in %q", a.Status)
		}
		time.Sleep(10 * time.Millisecond)
		r, _ := http.Get(hs.URL + "/v1/jobs/" + a.ID)
		data, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(data, &a); err != nil {
			t.Fatal(err)
		}
	}
	if resp, data = postJSON(t, hs.URL+"/v1/jobs", heavy); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: status %d: %s", resp.StatusCode, data)
	}
	if resp, data = postJSON(t, hs.URL+"/v1/jobs", heavy); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job C admitted past the queue bound: status %d: %s", resp.StatusCode, data)
	}

	// Cancel the running job; it must end cancelled, not run 16 items.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+a.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	deadline = time.Now().Add(time.Minute)
	for a.Status == JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("cancelled job did not stop")
		}
		time.Sleep(10 * time.Millisecond)
		r, _ := http.Get(hs.URL + "/v1/jobs/" + a.ID)
		data, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(data, &a); err != nil {
			t.Fatal(err)
		}
	}
	if a.Status != JobCancelled {
		t.Fatalf("job A ended %q, want %q", a.Status, JobCancelled)
	}
}

// TestHealthzAndMetrics: liveness plus the cache/queue/latency counters,
// including an extraction-cache hit driven by graph identity reuse.
func TestHealthzAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	r, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.Contains(string(data), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", r.StatusCode, data)
	}

	// Same (bench, seed) twice with extract: the second run reuses the
	// cached graph pointer, so the extraction cache must register a hit.
	req := AnalyzeRequest{Items: []ItemSpec{{Bench: "c432", Seed: 5, Extract: true}}}
	for i := 0; i < 2; i++ {
		out := analyze(t, hs.URL, req)
		if out.Results[0].Error != "" {
			t.Fatalf("run %d: %s", i, out.Results[0].Error)
		}
		if out.Results[0].ModelEdges == 0 {
			t.Fatalf("run %d: extraction did not report a model", i)
		}
	}

	r, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(r.Body)
	r.Body.Close()
	text := string(data)
	for _, want := range []string{
		"sstad_extract_cache_hits_total 1",
		"sstad_extract_cache_misses_total 1",
		"sstad_graph_cache_hits_total 1",
		"sstad_items_total 2",
		"sstad_item_latency_seconds_count 2",
		`sstad_requests_total{endpoint="analyze"} 2`,
		"sstad_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestBadRequests: admission-layer validation.
func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxItems: 2})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed", `{"items":`, http.StatusBadRequest},
		{"empty", `{"items":[]}`, http.StatusBadRequest},
		{"unknown field", `{"itemz":[{"bench":"c432"}]}`, http.StatusBadRequest},
		{"too many items", `{"items":[{"bench":"c432"},{"bench":"c432"},{"bench":"c432"}]}`, http.StatusBadRequest},
		{"wrong method", ``, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var resp *http.Response
		var err error
		if tc.name == "wrong method" {
			resp, err = http.Get(hs.URL + "/v1/analyze")
		} else {
			resp, err = http.Post(hs.URL+"/v1/analyze", "application/json", strings.NewReader(tc.body))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}

	// Per-item spec errors surface in the result, not as HTTP failures.
	out := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{
		{Bench: "c432", Mult: 4},
		{Bench: "no-such-bench"},
	}})
	if !strings.Contains(out.Results[0].Error, "exactly one") {
		t.Fatalf("ambiguous item error: %q", out.Results[0].Error)
	}
	if out.Results[1].Error == "" {
		t.Fatal("unknown bench accepted")
	}
}

// TestQuadModeDiffers sanity-checks that the two correlation modes reach
// the server: the paper's proposed mode and the global-only baseline give
// different standard deviations for the same quad design.
func TestQuadModeDiffers(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	out := analyze(t, hs.URL, AnalyzeRequest{Items: []ItemSpec{
		{Quad: &QuadSpec{Bench: "c880", Seed: 3}, Mode: "full"},
		{Quad: &QuadSpec{Bench: "c880", Seed: 3}, Mode: "global"},
	}})
	for k, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("item %d: %s", k, r.Error)
		}
	}
	if out.Results[0].StdPS == out.Results[1].StdPS {
		t.Fatalf("modes indistinguishable: std %g == %g", out.Results[0].StdPS, out.Results[1].StdPS)
	}
}

// TestQueuedCancelCountsFinished: cancelling a job that never reached a
// worker still moves it into the finished lifecycle count.
func TestQueuedCancelCountsFinished(t *testing.T) {
	st := newJobStore(4, 4)
	j, err := st.submit(AnalyzeRequest{Items: []ItemSpec{{Bench: "c432"}}})
	if err != nil {
		t.Fatal(err)
	}
	v, _, ok := st.cancelJob(j.id)
	if !ok || v.Status != JobCancelled {
		t.Fatalf("cancel: %+v ok=%v", v, ok)
	}
	queued, running, finished := st.counts()
	if queued != 0 || running != 0 || finished != 1 {
		t.Fatalf("counts = %d/%d/%d, want 0/0/1", queued, running, finished)
	}
}

// TestQueuedCancelReclaimsCapacity: cancelling a queued job frees its
// queue slot immediately — a follow-up submit must not see "queue full".
func TestQueuedCancelReclaimsCapacity(t *testing.T) {
	st := newJobStore(1, 4)
	a, err := st.submit(AnalyzeRequest{Items: []ItemSpec{{Bench: "c432"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.submit(AnalyzeRequest{}); err == nil {
		t.Fatal("second submit exceeded the depth-1 bound")
	}
	if _, _, ok := st.cancelJob(a.id); !ok {
		t.Fatal("cancel failed")
	}
	b, err := st.submit(AnalyzeRequest{Items: []ItemSpec{{Bench: "c880"}}})
	if err != nil {
		t.Fatalf("submit after queued-cancel: %v", err)
	}
	if j := st.pop(); j == nil || j.id != b.id {
		t.Fatalf("pop returned %+v, want job %s (cancelled job must not surface)", j, b.id)
	}
}
