package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/ssta"
)

// This file is the MCMM surface of the daemon: POST /v1/sweep evaluates
// many scenarios against one item with shared prep (one graph build or one
// design partition/PCA/stitch, then one propagation per scenario over a
// rescaled delay bank). The request holds one analysis slot for the whole
// sweep, like any other analysis; per-scenario failures — including a
// deadline firing mid-sweep — land in the per-scenario results, so the
// response always accounts for every scenario.

// SweepRequest is the body of POST /v1/sweep: one item (same vocabulary as
// /v1/analyze — exactly one of bench, netlist, mult, quad) plus the
// scenario list. An absent/empty scenario list selects the server's
// default scenario set (sstad -scenarios), if one is configured.
type SweepRequest struct {
	ItemSpec
	Scenarios []SweepScenarioSpec `json:"scenarios,omitempty"`
	// Workers bounds how many scenarios propagate concurrently (<=0:
	// server default).
	Workers int `json:"workers,omitempty"`
	// TopK bounds the divergence ranking (<=0: 3).
	TopK int `json:"top_k,omitempty"`
	// TimeoutMS caps the whole sweep. Zero: server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepScenarioSpec is one scenario over the wire: the rescale knobs of
// scenario.Spec plus module swaps, which only the serving layer can
// materialize (through the shared graph and extraction caches).
type SweepScenarioSpec struct {
	ssta.ScenarioSpec
	// Swaps maps instance names to replacement modules for quad items;
	// each module is generated and extracted through the shared caches.
	Swaps map[string]SwapSpec `json:"swaps,omitempty"`
}

// SwapSpec names a replacement module by benchmark identity.
type SwapSpec struct {
	Bench string `json:"bench"`
	Seed  int64  `json:"seed,omitempty"`
}

// SweepScenarioResult is one scenario outcome on the wire. Setup/Hold carry
// the worst statistical setup/hold slack under the scenario's clock when the
// swept subject is sequential; absent on combinational sweeps.
type SweepScenarioResult struct {
	Name      string     `json:"name"`
	Error     string     `json:"error,omitempty"`
	MeanPS    float64    `json:"mean_ps,omitempty"`
	StdPS     float64    `json:"std_ps,omitempty"`
	P9987PS   float64    `json:"p9987_ps,omitempty"`
	Setup     *SlackView `json:"setup,omitempty"`
	Hold      *SlackView `json:"hold,omitempty"`
	Shared    bool       `json:"shared_prep"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// SweepEnvelopeView is the cross-scenario worst case on the wire.
type SweepEnvelopeView struct {
	MeanPS  float64 `json:"mean_ps"`
	StdPS   float64 `json:"std_ps"`
	P9987PS float64 `json:"p9987_ps"`
	Worst   string  `json:"worst"`
}

// DivergenceView is one divergence-ranking entry.
type DivergenceView struct {
	Name  string  `json:"name"`
	Score float64 `json:"score_ps"`
}

// SweepResponse is the body returned by /v1/sweep.
type SweepResponse struct {
	Name         string                `json:"name"`
	Results      []SweepScenarioResult `json:"results"`
	Envelope     SweepEnvelopeView     `json:"envelope"`
	TopDivergent []DivergenceView      `json:"top_divergent,omitempty"`
	// Scenarios and Completed are the sweep accounting: a deadline firing
	// mid-sweep yields Completed < Scenarios with the per-scenario errors
	// naming the cut.
	Scenarios int `json:"scenarios"`
	Completed int `json:"completed"`
	// Verts/Edges are the shared subject graph's size — scalar stats that
	// survive distributed execution, where the graph itself stays on the
	// workers (coordinator shards reassemble them from shard responses).
	Verts     int     `json:"verts,omitempty"`
	Edges     int     `json:"edges,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// convertScenario materializes one wire scenario, resolving swap modules
// through the shared graph and extraction caches.
func (s *Server) convertScenario(ctx context.Context, spec *SweepScenarioSpec, isQuad bool) (ssta.Scenario, error) {
	sc := spec.Scenario()
	if len(spec.Swaps) == 0 {
		return sc, nil
	}
	if !isQuad {
		return sc, fmt.Errorf("scenario %q: swaps apply to quad items only", spec.Name)
	}
	sc.Swaps = make(map[string]*ssta.Module, len(spec.Swaps))
	for inst, sw := range spec.Swaps {
		if sw.Bench == "" {
			return sc, fmt.Errorf("scenario %q: swap for instance %q needs a bench", spec.Name, inst)
		}
		gk := graphKey{bench: sw.Bench, seed: sw.Seed}
		g, plan, err := s.graphs.get(ctx, s.flow, gk)
		if err != nil {
			return sc, err
		}
		model, err := s.extractModel(ctx, gk, g)
		if err != nil {
			return sc, fmt.Errorf("scenario %q: extract %s: %w", spec.Name, sw.Bench, err)
		}
		mod, err := ssta.NewModule(sw.Bench, model, plan)
		if err != nil {
			return sc, err
		}
		sc.Swaps[inst] = mod
	}
	return sc, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decodeJSONStrict(r, &req); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	specs := req.Scenarios
	if len(specs) == 0 {
		specs = s.cfg.DefaultScenarios
	}
	if len(specs) == 0 {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "request has no scenarios and the server has no default scenario set")
		return
	}
	if len(specs) > s.cfg.MaxItems {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("request has %d scenarios, limit %d", len(specs), s.cfg.MaxItems))
		return
	}
	s.metrics.sweepRequests.Add(1)
	if wantsEventStream(r) {
		s.streamSweep(w, r, &req, specs)
		return
	}
	fp := requestFingerprint("sweep",
		&AnalyzeRequest{Items: []ItemSpec{req.ItemSpec}, Workers: req.Workers, TimeoutMS: req.TimeoutMS},
		specs, req.TopK)
	s.serveCoalesced(w, r, "sweep", fp, req.TimeoutMS, func(ctx context.Context) (int, []byte) {
		if s.batch != nil {
			if key, spec, call, batchable := s.sweepBatchCall(&req, specs); batchable {
				return s.batch.do(ctx, key, spec, call)
			}
		}
		return s.doSweep(ctx, &req, specs)
	})
}

// sweepFailure classifies a resolve/convert/run failure exactly like every
// other ctx path in the serving layer: a deadline/cancel is a timeout
// (408), everything else is validation (400) — and counts it.
func (s *Server) sweepFailure(err error, msg string) (int, []byte) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.metrics.itemsRejected.Add(1)
		return http.StatusRequestTimeout, errorBody(http.StatusRequestTimeout, msg)
	}
	s.metrics.badRequests.Add(1)
	return http.StatusBadRequest, errorBody(http.StatusBadRequest, msg)
}

// sweepPrep is a resolved, validated sweep ready to run: the shared
// front-door path, the streaming path and the micro-batcher all converge on
// run().
type sweepPrep struct {
	item    ssta.BatchItem
	name    string
	isQuad  bool
	mode    ssta.Mode
	scens   []ssta.Scenario
	workers int
	// spec and specs are the wire-level subject and scenarios, retained so
	// a clustered coordinator can dispatch shards without re-deriving them
	// (Server.runSweep); the local path ignores them.
	spec  ItemSpec
	specs []SweepScenarioSpec
}

func (p *sweepPrep) run(ctx context.Context, opt ssta.SweepOptions) (*ssta.SweepReport, error) {
	if p.isQuad {
		return ssta.SweepAnalyze(ctx, p.item.Design, p.mode, p.scens, opt)
	}
	return ssta.SweepAnalyzeGraph(ctx, p.item.Graph, p.scens, opt)
}

// prepSweep resolves the subject item and materializes every scenario. On
// failure the prep is nil and (status, body) carry the classified error.
func (s *Server) prepSweep(ctx context.Context, req *SweepRequest, specs []SweepScenarioSpec) (*sweepPrep, int, []byte) {
	item, name, isQuad, mode, err := s.resolveSweepItem(ctx, &req.ItemSpec)
	if err != nil {
		status, body := s.sweepFailure(err, err.Error())
		return nil, status, body
	}
	scens := make([]ssta.Scenario, len(specs))
	for i := range specs {
		sc, err := s.convertScenario(ctx, &specs[i], isQuad)
		if err != nil {
			status, body := s.sweepFailure(err, fmt.Sprintf("scenario %d: %v", i, err))
			return nil, status, body
		}
		scens[i] = sc
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	return &sweepPrep{
		item: item, name: name, isQuad: isQuad, mode: mode, scens: scens, workers: workers,
		spec: req.ItemSpec, specs: specs,
	}, 0, nil
}

// doSweep is the direct (unbatched) sweep execution: one admission slot
// covers the whole sweep — scenario materialization (swap extraction) and
// the propagation fan-out both count as analysis.
func (s *Server) doSweep(ctx context.Context, req *SweepRequest, specs []SweepScenarioSpec) (int, []byte) {
	if err := s.acquireSlotWait(ctx, 0); err != nil {
		s.metrics.rejected.Add(1)
		return http.StatusTooManyRequests, errorBody(http.StatusTooManyRequests, err.Error())
	}
	defer s.releaseSlot()

	pr, status, body := s.prepSweep(ctx, req, specs)
	if pr == nil {
		return status, body
	}
	opt := ssta.SweepOptions{
		Workers:        pr.workers,
		TopK:           req.TopK,
		OnScenarioDone: s.scenarioMetricsHook(),
	}
	start := time.Now()
	rep, err := s.runSweep(ctx, pr, opt)
	if err != nil {
		// A deadline/cancel firing before the per-scenario fan-out (the
		// shared design stitch runs under ctx) is a timeout, not a bad
		// request; remaining sweep-level failures are validation (the
		// scenarios were already normalized above, so this is a bad
		// item/scenario combo).
		return s.sweepFailure(err, err.Error())
	}
	resp := sweepResponseView(pr.name, rep, float64(time.Since(start).Microseconds())/1000)
	return http.StatusOK, marshalJSON(resp)
}

// sweepResponseView flattens a sweep report into the wire response — the
// one assembly both the direct path and the micro-batcher's per-caller
// reassembly go through.
func sweepResponseView(name string, rep *ssta.SweepReport, elapsedMS float64) *SweepResponse {
	resp := &SweepResponse{
		Name:      name,
		Results:   make([]SweepScenarioResult, len(rep.Results)),
		Scenarios: len(rep.Results),
		Completed: rep.Completed,
		Envelope: SweepEnvelopeView{
			MeanPS:  rep.Envelope.Mean,
			StdPS:   rep.Envelope.Std,
			P9987PS: rep.Envelope.Quantile,
			Worst:   rep.Envelope.Worst,
		},
		Verts:     rep.TopVerts,
		Edges:     rep.TopEdges,
		ElapsedMS: elapsedMS,
	}
	for i := range rep.Results {
		resp.Results[i] = sweepScenarioView(&rep.Results[i])
	}
	for _, dv := range rep.TopDivergent {
		resp.TopDivergent = append(resp.TopDivergent, DivergenceView{Name: dv.Name, Score: dv.Score})
	}
	return resp
}

// sweepScenarioView flattens one scenario result for the wire.
func sweepScenarioView(res *ssta.ScenarioResult) SweepScenarioResult {
	out := SweepScenarioResult{
		Name:      res.Name,
		Shared:    res.Shared,
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	} else {
		out.MeanPS, out.StdPS, out.P9987PS = res.Mean, res.Std, res.Quantile
		out.Setup = slackViewOfStat(res.SetupSlack)
		out.Hold = slackViewOfStat(res.HoldSlack)
	}
	return out
}

// resolveSweepItem maps the item spec onto the sweep's subject: a cached
// flat graph (bench/netlist/mult) or a cached quad design.
func (s *Server) resolveSweepItem(ctx context.Context, spec *ItemSpec) (ssta.BatchItem, string, bool, ssta.Mode, error) {
	set := spec.inputs()
	if len(set) != 1 {
		return ssta.BatchItem{}, "", false, 0, fmt.Errorf("sweep needs exactly one input of bench, netlist, mult or quad (got %s)",
			strings.Join(set, ", "))
	}
	mode, err := parseMode(spec.Mode)
	if err != nil {
		return ssta.BatchItem{}, "", false, 0, err
	}
	item, err := s.prepareItem(ctx, spec)
	if err != nil {
		return ssta.BatchItem{}, "", false, 0, err
	}
	if item.Circuit != nil {
		// Netlist items: build the graph here so the sweep sees a *Graph.
		g, _, err := s.flow.Graph(item.Circuit)
		if err != nil {
			return ssta.BatchItem{}, "", false, 0, err
		}
		item.Graph, item.Circuit = g, nil
	}
	return item, item.Name, item.Design != nil, mode, nil
}
