package server

import "testing"

// Stability: the same spec must fingerprint identically across calls and
// across map insertion orders — map-shaped fields are canonicalized.
func TestFingerprintStability(t *testing.T) {
	specs := []ItemSpec{
		{Bench: "c432", Seed: 1},
		{Bench: "c880", Seed: 7, Mode: "global", Extract: true},
		{Netlist: "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n"},
		{Mult: 8},
		{Quad: &QuadSpec{Bench: "c432", Seed: 1, Gap: 2}},
	}
	for i := range specs {
		a, b := ItemFingerprint(&specs[i]), ItemFingerprint(&specs[i])
		if a != b {
			t.Fatalf("spec %d: fingerprint not stable: %v vs %v", i, a, b)
		}
	}

	// EdgeScales and Swaps are maps; two literals with the same content
	// must hash identically regardless of construction order.
	s1 := SweepScenarioSpec{Swaps: map[string]SwapSpec{}}
	s2 := SweepScenarioSpec{Swaps: map[string]SwapSpec{}}
	s1.Name, s2.Name = "a", "a"
	s1.EdgeScales = map[int]float64{}
	s2.EdgeScales = map[int]float64{}
	for _, e := range []int{10, 2, 300, 41} {
		s1.EdgeScales[e] = float64(e) * 1.5
	}
	for _, e := range []int{41, 300, 2, 10} {
		s2.EdgeScales[e] = float64(e) * 1.5
	}
	for _, inst := range []string{"i0", "i3", "i2"} {
		s1.Swaps[inst] = SwapSpec{Bench: "c432", Seed: 5}
	}
	for _, inst := range []string{"i2", "i0", "i3"} {
		s2.Swaps[inst] = SwapSpec{Bench: "c432", Seed: 5}
	}
	if ScenarioFingerprint(&s1) != ScenarioFingerprint(&s2) {
		t.Fatalf("scenario fingerprint depends on map construction order")
	}
}

// Collision resistance across the input vocabulary: every pair of
// distinct specs must fingerprint differently, including the classic
// concatenation traps (bench "c4"+seed 32 vs "c43"+seed 2 style).
func TestFingerprintCollisions(t *testing.T) {
	specs := []ItemSpec{
		{Bench: "c432", Seed: 1},
		{Bench: "c432", Seed: 2},
		{Bench: "c4322", Seed: 1},
		{Bench: "c880", Seed: 1},
		{Netlist: "c432"}, // same bytes as a bench name, different field
		{Netlist: "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n"},
		{Netlist: "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n"},
		{Mult: 4},
		{Mult: 8},
		{Quad: &QuadSpec{Bench: "c432", Seed: 1}},
		{Quad: &QuadSpec{Bench: "c432", Seed: 1, Gap: 1}},
		{Quad: &QuadSpec{Bench: "c432", Seed: 2}},
		{Quad: &QuadSpec{Bench: "c880", Seed: 1}},
	}
	seen := make(map[Fingerprint]int)
	for i := range specs {
		fp := ItemFingerprint(&specs[i])
		if j, dup := seen[fp]; dup {
			t.Fatalf("specs %d and %d collide: %+v vs %+v", j, i, specs[j], specs[i])
		}
		seen[fp] = i
	}

	// Name, mode and extract are labels/selectors, not subject identity:
	// the graph cache and batcher group on the subject alone.
	a := ItemSpec{Bench: "c432", Seed: 1}
	b := ItemSpec{Bench: "c432", Seed: 1, Name: "x", Mode: "global", Extract: true}
	if ItemFingerprint(&a) != ItemFingerprint(&b) {
		t.Fatalf("item fingerprint must ignore name/mode/extract")
	}
}

func TestScenarioFingerprintCollisions(t *testing.T) {
	list := []SweepScenarioSpec{{}}
	add := func(sp SweepScenarioSpec) { list = append(list, sp) }
	add(withDerate(1.1))
	add(withDerate(1.2))
	add(SweepScenarioSpec{})
	list[len(list)-1].CellScale = 1.1
	add(SweepScenarioSpec{})
	list[len(list)-1].NetScale = 1.1
	add(SweepScenarioSpec{})
	list[len(list)-1].GlobSigma = 1.1
	add(SweepScenarioSpec{})
	list[len(list)-1].LocSigma = 1.1
	add(SweepScenarioSpec{})
	list[len(list)-1].RandSigma = 1.1
	add(SweepScenarioSpec{})
	list[len(list)-1].EdgeScales = map[int]float64{3: 1.5}
	add(SweepScenarioSpec{})
	list[len(list)-1].EdgeScales = map[int]float64{3: 1.6}
	add(SweepScenarioSpec{})
	list[len(list)-1].EdgeScales = map[int]float64{4: 1.5}
	add(SweepScenarioSpec{})
	list[len(list)-1].Swaps = map[string]SwapSpec{"u0": {Bench: "c432"}}
	add(SweepScenarioSpec{})
	list[len(list)-1].Swaps = map[string]SwapSpec{"u0": {Bench: "c432", Seed: 3}}
	add(SweepScenarioSpec{})
	list[len(list)-1].Swaps = map[string]SwapSpec{"u1": {Bench: "c432"}}

	seen := make(map[Fingerprint]int)
	for i := range list {
		fp := ScenarioFingerprint(&list[i])
		if j, dup := seen[fp]; dup {
			t.Fatalf("scenarios %d and %d collide: %+v vs %+v", j, i, list[j], list[i])
		}
		seen[fp] = i
	}

	// The transform fingerprint ignores the display name: same knobs under
	// different names dedupe onto one evaluation.
	x, y := withDerate(1.15), withDerate(1.15)
	x.Name, y.Name = "hot", "warm"
	if ScenarioFingerprint(&x) != ScenarioFingerprint(&y) {
		t.Fatalf("scenario fingerprint must ignore the display name")
	}
}

func withDerate(d float64) SweepScenarioSpec {
	var sp SweepScenarioSpec
	sp.Derate = d
	return sp
}

// Request-level identity covers names, knobs and scenario order — the
// coalescer shares response bytes verbatim, so anything response-visible
// must separate fingerprints.
func TestRequestFingerprint(t *testing.T) {
	base := func() *AnalyzeRequest {
		return &AnalyzeRequest{Items: []ItemSpec{{Bench: "c432", Seed: 1}}}
	}
	fp := func(req *AnalyzeRequest, scens []SweepScenarioSpec, topK int) Fingerprint {
		return requestFingerprint("analyze", req, scens, topK)
	}
	a := fp(base(), nil, 0)
	if b := fp(base(), nil, 0); b != a {
		t.Fatalf("request fingerprint not stable")
	}
	named := base()
	named.Items[0].Name = "custom"
	if fp(named, nil, 0) == a {
		t.Fatalf("item name must change the request fingerprint")
	}
	timed := base()
	timed.TimeoutMS = 500
	if fp(timed, nil, 0) == a {
		t.Fatalf("timeout must change the request fingerprint")
	}
	if requestFingerprint("sweep", base(), nil, 0) == a {
		t.Fatalf("endpoint must change the request fingerprint")
	}
	s1 := []SweepScenarioSpec{withDerate(1.1), withDerate(1.2)}
	s2 := []SweepScenarioSpec{withDerate(1.2), withDerate(1.1)}
	if fp(base(), s1, 0) == fp(base(), s2, 0) {
		t.Fatalf("scenario order must change the request fingerprint")
	}
	n1 := []SweepScenarioSpec{withDerate(1.1)}
	n2 := []SweepScenarioSpec{withDerate(1.1)}
	n1[0].Name, n2[0].Name = "a", "b"
	if fp(base(), n1, 0) == fp(base(), n2, 0) {
		t.Fatalf("scenario names must change the request fingerprint")
	}
}
