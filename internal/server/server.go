// Package server is the sstad serving layer: a long-running HTTP/JSON
// front end over the ssta batch engine, the paper's model-reuse story
// turned into a daemon. Extract a module's timing model once, then answer
// many analyses against it cheaply — here the "many analyses" arrive as
// requests, and the reuse lives in three bounded caches (built graphs,
// extracted models, per-design analysis preps).
//
// Endpoints:
//
//	POST /v1/analyze     run a batch synchronously (per-request deadline)
//	POST /v1/sweep       evaluate many MCMM scenarios against one item with
//	                     shared prep (see sweep.go); SSE when the client
//	                     sends Accept: text/event-stream (see sse.go)
//	POST /v1/jobs        submit the same body asynchronously
//	GET  /v1/jobs        bounded newest-first listing of ids + states
//	GET  /v1/jobs/{id}   poll status/result
//	DELETE /v1/jobs/{id} cancel a queued or running job (204 once terminal)
//	GET  /healthz        liveness
//	GET  /metrics        Prometheus text: cache hit rates, queue depth,
//	                     per-item latency
//
// Admission is bounded end to end: a semaphore caps concurrently running
// analyses (sync requests wait on it under their deadline, 429 on
// overload), the async queue is a fixed-depth channel (503 when full), and
// every batch runs under a context whose cancellation reaches individual
// graph vertices via ssta.AnalyzeBatchCtx.
//
// The synchronous front door (analyze + sweep) additionally coalesces and
// micro-batches (see coalesce.go): byte-identical concurrent requests
// share one execution, and — with batching enabled — compatible requests
// against the same subject merge into one shared-prep sweep.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/store"
	"repro/ssta"
)

// Config tunes the server. The zero value serves with sane defaults.
type Config struct {
	// Flow is the analysis context; nil selects ssta.DefaultFlow() with a
	// bounded extraction cache.
	Flow *ssta.Flow
	// MaxConcurrent caps analyses running at once across sync requests and
	// job workers (<=0: 2).
	MaxConcurrent int
	// AdmissionWait caps how long a sync request may wait for an analysis
	// slot before 429 (<=0: half its deadline).
	AdmissionWait time.Duration
	// QueueDepth bounds the async job queue (<=0: 64).
	QueueDepth int
	// JobWorkers is the number of job-draining goroutines (<=0: 1).
	JobWorkers int
	// MaxFinishedJobs bounds retained finished jobs (<=0: 256).
	MaxFinishedJobs int
	// DefaultTimeout applies to requests that set no timeout_ms (<=0: 60s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (<=0: 10m).
	MaxTimeout time.Duration
	// MaxItems bounds items per request (<=0: 256).
	MaxItems int
	// BatchWindow is the micro-batcher's gathering window: compatible
	// requests (same subject and mode, any scenarios) arriving within it
	// are answered from one shared-prep sweep. <=0 disables batching (the
	// default) — coalescing of identical requests stays on regardless.
	BatchWindow time.Duration
	// BatchMax flushes a gathering micro-batch early once this many
	// callers joined (<=1: 8). Only meaningful with BatchWindow > 0.
	BatchMax int
	// MaxBodyBytes bounds request bodies (<=0: 8 MiB).
	MaxBodyBytes int64
	// GraphCacheEntries bounds the built-graph cache (<=0: 64).
	GraphCacheEntries int
	// Workers is the default per-batch worker count when the request sets
	// none (<=0: 1; keep small, item concurrency is already bounded by
	// MaxConcurrent).
	Workers int
	// MaxSessions bounds live timing sessions (<=0: 64).
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this (<=0: 15m).
	SessionTTL time.Duration
	// DefaultScenarios is the scenario set served to /v1/sweep requests
	// that name none (sstad -scenarios). Optional; requests that carry
	// their own scenarios never consult it.
	DefaultScenarios []SweepScenarioSpec
	// Store enables durable state: sessions and extracted models are
	// checkpointed write-behind and restored at boot (sstad -store-dir).
	// Nil serves purely in memory. The store is advisory by contract: a
	// failing backend degrades durability, never requests.
	Store store.Backend
	// StoreFlushInterval paces the write-behind flusher (<=0: 1s).
	StoreFlushInterval time.Duration
	// Cluster, when set, makes this server a coordinator over the given
	// worker pool: sweeps shard across healthy workers, sessions pin to a
	// worker by subject fingerprint, and the pool connections serve the
	// remote model-cache tier back to the workers. The server owns the
	// pool's lifecycle (started in New, closed in Close). Nil — and a pool
	// whose workers are all down — serves exactly like standalone.
	Cluster *cluster.Pool
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.MaxFinishedJobs <= 0 {
		c.MaxFinishedJobs = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxItems <= 0 {
		c.MaxItems = 256
	}
	if c.BatchMax <= 1 {
		c.BatchMax = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.GraphCacheEntries <= 0 {
		c.GraphCacheEntries = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.StoreFlushInterval <= 0 {
		c.StoreFlushInterval = time.Second
	}
	return c
}

// Server is the sstad daemon state. Create with New, expose via Handler,
// stop with Close.
type Server struct {
	cfg      Config
	flow     *ssta.Flow
	mux      *http.ServeMux
	sem      chan struct{} // analysis slots; len(sem) = running analyses
	graphs   *graphCache
	jobs     *jobStore
	sessions *sessionStore
	metrics  *metrics
	coalesce *coalescer
	batch    *batcher // nil when batching is disabled (BatchWindow <= 0)

	// streamWG tracks open streaming (SSE) responses so shutdown can drain
	// them — ordered after baseStop (which aborts their executions) and
	// before the store's final flush (their partial results may checkpoint).
	streamWG sync.WaitGroup

	quadMu   sync.Mutex
	quads    map[quadKey]*ssta.Design
	maxQuads int

	// persist is the durability pipeline; nil without Config.Store.
	persist *persister

	// cluster is the coordinator's dispatch state; nil unless Config.Cluster
	// was set. remoteCache counts this node's consults of the remote
	// model-cache tier (only a worker node ever increments it).
	cluster     *clusterState
	remoteCache remoteCacheStats

	baseCtx  context.Context
	baseStop context.CancelFunc
	wg       sync.WaitGroup
}

// New builds a server and starts its job workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	flow := cfg.Flow
	if flow == nil {
		flow = ssta.DefaultFlow()
	}
	if flow.Cache == nil {
		// The serving layer relies on the extraction cache for both reuse
		// and its /metrics story; install a bounded one if the flow came
		// without.
		flow.Cache = ssta.NewExtractCache()
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		flow:     flow,
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		graphs:   newGraphCache(cfg.GraphCacheEntries),
		jobs:     newJobStore(cfg.QueueDepth, cfg.MaxFinishedJobs),
		sessions: newSessionStore(cfg.MaxSessions, cfg.SessionTTL),
		metrics:  newMetrics(),
		quads:    make(map[quadKey]*ssta.Design),
		maxQuads: cfg.GraphCacheEntries,
		coalesce: newCoalescer(),
		baseCtx:  base,
		baseStop: stop,
	}
	if cfg.BatchWindow > 0 {
		s.batch = newBatcher(s, cfg.BatchMax, cfg.BatchWindow)
	}
	if cfg.Cluster != nil {
		s.cluster = newClusterState(cfg.Cluster)
		cfg.Cluster.SetService(s.coordinatorService())
		cfg.Cluster.Start(base)
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobPoll)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/sessions/{id}/edits", s.handleSessionEdits)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for w := 0; w < cfg.JobWorkers; w++ {
		s.wg.Add(1)
		go s.runJobs(base)
	}
	s.wg.Add(1)
	go s.runSessionJanitor(base)
	if cfg.Store != nil {
		s.persist = newPersister(s, cfg.Store, cfg.StoreFlushInterval)
		// Advance the id counter past every persisted session before the
		// first create can race the asynchronous warm start.
		s.persist.bumpSessionSeq(base)
		// Raised here, synchronously, so /healthz never reports a finished
		// recovery that has not actually started.
		s.persist.recovering.Store(true)
		s.wg.Add(2)
		go s.runWarmStart(base)
		go s.runStoreFlusher(base)
	}
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the job workers and waits for them to drain. In-flight
// batches observe the cancellation cooperatively; open streaming responses
// drain next (the cancellation cuts their sweeps short, and the partial
// events plus an error summary flush to the client before the connection
// closes). With a store configured, a final synchronous flush then
// checkpoints whatever the write-behind pipeline still held — including
// session state checkpointed by draining streams — the graceful half of
// crash safety.
func (s *Server) Close() {
	s.baseStop()
	s.wg.Wait()
	s.streamWG.Wait()
	if s.cluster != nil {
		s.cluster.pool.Close()
	}
	if s.persist != nil {
		s.persist.finalFlush()
	}
}

func (s *Server) activeAnalyses() int { return len(s.sem) }

// requestCtx derives the batch context honoring the client deadline knob.
func (s *Server) requestCtx(parent context.Context, req *AnalyzeRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(parent, d)
}

// decodeRequest parses and structurally validates an analyze body.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (AnalyzeRequest, bool) {
	var req AnalyzeRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return req, false
	}
	if len(req.Items) == 0 {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "request has no items")
		return req, false
	}
	if len(req.Items) > s.cfg.MaxItems {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("request has %d items, limit %d", len(req.Items), s.cfg.MaxItems))
		return req, false
	}
	return req, true
}

// runBatch prepares the wire items and runs them through the batch engine
// under ctx, holding one analysis slot for the duration. admissionWait > 0
// bounds how long the call may block waiting for a slot (jobs pass 0: a
// job worker owns its turn and only gives up with its context). Per-item
// failures (including spec errors and cancellation) land in the item
// results; the returned error is reserved for request-level failures.
func (s *Server) runBatch(ctx context.Context, admissionWait time.Duration, req AnalyzeRequest) (*AnalyzeResponse, error) {
	if err := s.acquireSlotWait(ctx, admissionWait); err != nil {
		return nil, err
	}
	defer s.releaseSlot()

	start := time.Now()
	resp := &AnalyzeResponse{Results: make([]ItemResult, len(req.Items))}
	items := make([]ssta.BatchItem, 0, len(req.Items))
	batchIdx := make([]int, 0, len(req.Items)) // batch position -> request position
	for k := range req.Items {
		item, err := ssta.BatchItem{}, ctx.Err() // stop preparing once the deadline fires
		if err == nil {
			item, err = s.prepareItem(ctx, &req.Items[k])
		}
		if err != nil {
			name := req.Items[k].Name
			if name == "" {
				name = fmt.Sprintf("item[%d]", k)
			}
			resp.Results[k] = ItemResult{Name: name, Error: err.Error()}
			s.metrics.itemsRejected.Add(1)
			continue
		}
		items = append(items, item)
		batchIdx = append(batchIdx, k)
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	results := s.flow.AnalyzeBatchCtx(ctx, items, ssta.BatchOptions{
		Workers:     workers,
		ItemWorkers: req.ItemWorkers,
		OnItemDone: func(_ int, r *ssta.BatchResult) {
			// Items the engine cut short on cancellation are rejections,
			// not latency samples — a deadline burst must not drag the
			// reported mean toward zero.
			if errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded) {
				s.metrics.itemsRejected.Add(1)
				return
			}
			s.metrics.observeItem(r.Elapsed, r.Err != nil)
		},
	})
	for b, r := range results {
		k := batchIdx[b]
		resp.Results[k] = itemResult(&r)
		// Extracted models of reproducible graphs (bench/mult) are durable
		// state: enqueue them for the write-behind store so a restart can
		// re-seed the extraction cache without paying extraction again.
		if r.Err == nil && r.Model != nil {
			spec := &req.Items[k]
			if spec.Quad == nil && spec.Netlist == "" {
				s.checkpointModel(graphKey{bench: spec.Bench, seed: spec.Seed, mult: spec.Mult, clocked: spec.Clocked}, r.Model)
			}
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	s.metrics.analyzeRequests.Add(1)
	// Everything past decode flows through the coalescing/batching front:
	// identical concurrent requests share one execution; with batching on,
	// compatible single-item requests merge onto one shared-prep sweep.
	fp := requestFingerprint("analyze", &req, nil, 0)
	s.serveCoalesced(w, r, "analyze", fp, req.TimeoutMS, func(ctx context.Context) (int, []byte) {
		if s.batch != nil {
			if key, spec, call, batchable := s.analyzeBatchCall(&req); batchable {
				return s.batch.do(ctx, key, spec, call)
			}
		}
		resp, err := s.runBatch(ctx, s.admissionWait(ctx), req)
		if err != nil {
			s.metrics.rejected.Add(1)
			return http.StatusTooManyRequests, errorBody(http.StatusTooManyRequests, err.Error())
		}
		return http.StatusOK, marshalJSON(resp)
	})
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	s.metrics.jobRequests.Add(1)
	j, err := s.jobs.submit(req)
	if err != nil {
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	v, _ := s.jobs.view(j.id)
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleJobPoll(w http.ResponseWriter, r *http.Request) {
	v, ok := s.jobs.view(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleJobList answers GET /v1/jobs with a bounded, newest-first summary
// of known jobs (ids and states). ?limit= overrides the default page of
// 100, clamped to the store's retention-scale bound.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid limit %q", q))
			return
		}
		limit = n
	}
	if limit > 1000 {
		limit = 1000
	}
	jobs := s.jobs.list(limit)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs, "count": len(jobs)})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	v, terminal, ok := s.jobs.cancelJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	if terminal {
		// The job already reached a terminal state; the repeat DELETE had
		// nothing to cancel.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running, _ := s.jobs.counts()
	body := map[string]any{
		"status":          "ok",
		"uptime_seconds":  time.Since(s.metrics.start).Seconds(),
		"active_analyses": s.activeAnalyses(),
		"queued_jobs":     queued,
		"running_jobs":    running,
		"sessions":        s.sessions.len(),
		// Hierarchical sessions restore flat after a restart (their design
		// structure edits are gone); surfaced so operators can tell restored
		// capability loss from live sessions.
		"sessions_restored_flat": s.sessions.countRestoredFlat(),
	}
	serving := map[string]any{
		"coalesce_hits":         s.metrics.coalesceAnalyze.Load() + s.metrics.coalesceSweep.Load(),
		"coalesce_inflight":     s.coalesce.inFlight(),
		"batching":              s.batch != nil,
		"batch_executions":      s.metrics.batchExecutions.Load(),
		"batch_occupancy_sum":   s.metrics.batchOccSum.Load(),
		"streaming_connections": s.metrics.streaming.Load(),
	}
	if s.batch != nil {
		serving["batch_gathering"] = s.batch.gathering()
	}
	body["serving"] = serving
	if p := s.persist; p != nil {
		kind, flushAge, lastErr, degraded := p.status()
		var errs int64
		for i := range p.store.errs {
			errs += p.store.errs[i].Load()
		}
		st := map[string]any{
			"backend":                kind,
			"last_flush_age_seconds": flushAge.Seconds(),
			"pending":                p.pending(),
			"errors":                 errs,
			"quarantined":            p.quarantined.Load(),
			"degraded":               degraded,
		}
		if lastErr != nil {
			st["last_error"] = lastErr.Error()
		}
		body["store"] = st
		body["recovering"] = p.recovering.Load()
	}
	if cl := s.cluster; cl != nil {
		nodes := []map[string]any{}
		for _, n := range cl.pool.Nodes() {
			nv := map[string]any{
				"addr":       n.Addr(),
				"healthy":    n.Healthy(),
				"in_flight":  n.InFlight.Load(),
				"dispatches": n.Dispatches.Load(),
				"errors":     n.Errors.Load(),
				"sessions":   n.Sessions.Load(),
			}
			if !n.LastSeen().IsZero() {
				nv["last_seen_age_seconds"] = time.Since(n.LastSeen()).Seconds()
			}
			if err := n.LastErr(); err != nil {
				nv["last_error"] = err.Error()
			}
			nodes = append(nodes, nv)
		}
		body["cluster"] = map[string]any{
			"nodes":           nodes,
			"routed_sessions": cl.routedSessions(),
			"dispatches":      cl.dispatches.Load(),
			"retries":         cl.retries.Load(),
			"failovers":       cl.failovers.Load(),
			"local_fallbacks": cl.localFallbacks.Load(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// decodeJSONStrict decodes a request body rejecting unknown fields.
func decodeJSONStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg, "status": strconv.Itoa(code)})
}
