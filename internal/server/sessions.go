package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/ssta"
)

// This file is the stateful half of the daemon: timing sessions. A client
// creates a session (paying one full analysis), then streams edit batches
// against it; every batch is re-analyzed incrementally — only the edited
// fan-out cones are re-propagated, or a per-instance restitch for module
// swaps — and answered with the delta. Sessions are evicted after an idle
// TTL so abandoned clients cannot pin graphs forever.
//
//	POST   /v1/sessions            create (body: one item spec)
//	GET    /v1/sessions/{id}       inspect
//	POST   /v1/sessions/{id}/edits apply an edit batch, return the delta
//	DELETE /v1/sessions/{id}       drop
//
// Edit ops over the wire (see EditSpec): scale_delay, set_nominal,
// add_edge, remove_edge on flat sessions; set_net_delay, swap_module on
// hierarchical (quad) sessions.

// SessionCreateRequest is the body of POST /v1/sessions: the same item
// vocabulary as /v1/analyze (exactly one of bench, netlist, mult, quad),
// analyzed once to seed the session.
type SessionCreateRequest struct {
	ItemSpec
	// Scenarios, when present, installs an MCMM sweep on the session: the
	// scenarios are evaluated once here (full propagation each) and every
	// subsequent edit batch re-evaluates all of them incrementally,
	// reporting the refreshed sweep in the edit response. Swap scenarios
	// are rejected — sessions express swaps as edits.
	Scenarios []SweepScenarioSpec `json:"scenarios,omitempty"`
	// TimeoutMS caps the initial full analysis. Zero: server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// EditSpec is one edit of a session batch.
type EditSpec struct {
	// Op is the edit kind: "scale_delay", "set_nominal", "add_edge",
	// "remove_edge" (flat sessions), "set_net_delay", "swap_module"
	// (hierarchical sessions).
	Op string `json:"op"`
	// Edge is the target edge index for scale_delay/set_nominal/remove_edge.
	Edge int `json:"edge,omitempty"`
	// Scale is the positive delay factor for scale_delay.
	Scale float64 `json:"scale,omitempty"`
	// ValuePS is the nominal delay for set_nominal, the constant delay for
	// add_edge, and the wire delay for set_net_delay.
	ValuePS float64 `json:"value_ps,omitempty"`
	// From/To are the endpoints for add_edge.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Net is the design net index for set_net_delay.
	Net int `json:"net,omitempty"`
	// Instance names the target instance for swap_module; Bench/Seed name
	// the replacement module, which is generated, extracted (through the
	// shared extraction cache) and stitched in.
	Instance string `json:"instance,omitempty"`
	Bench    string `json:"bench,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// SessionEditRequest is the body of POST /v1/sessions/{id}/edits.
type SessionEditRequest struct {
	Edits     []EditSpec `json:"edits"`
	TimeoutMS int64      `json:"timeout_ms,omitempty"`
}

// SessionView is the wire representation of a session.
type SessionView struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	Kind       string  `json:"kind"` // "flat" or "hier"
	Verts      int     `json:"verts"`
	Edges      int     `json:"edges"`
	MeanPS     float64 `json:"mean_ps"`
	StdPS      float64 `json:"std_ps"`
	P9987PS    float64 `json:"p9987_ps"`
	Edits      int64   `json:"edits"`
	CreatedMS  int64   `json:"created_unix_ms"`
	LastUsedMS int64   `json:"last_used_unix_ms"`
	// ElapsedMS is the wall-clock cost of the initial full analysis (on the
	// create response) — the price edits then amortize.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Sweep is the session's active MCMM sweep as of the last edit batch,
	// when one was installed at create time.
	Sweep *SweepResponse `json:"sweep,omitempty"`
	// RestoredFlat marks a session that was hierarchical before a daemon
	// restart and came back flat from its checkpoint: delays and sweep are
	// preserved exactly, but design-structure edits (set_net_delay,
	// swap_module) are no longer available on it.
	RestoredFlat bool `json:"restored_flat,omitempty"`
}

// SessionEditResponse is the delta returned for one applied edit batch.
type SessionEditResponse struct {
	Applied         int     `json:"applied"`
	MeanPS          float64 `json:"mean_ps"`
	StdPS           float64 `json:"std_ps"`
	P9987PS         float64 `json:"p9987_ps"`
	RecomputedVerts int     `json:"recomputed_verts"`
	TotalVerts      int     `json:"total_verts"`
	FullReprop      bool    `json:"full_reprop,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	// Sweep is the refreshed active MCMM sweep, when the session installed
	// one at create time.
	Sweep *SweepResponse `json:"sweep,omitempty"`
}

// srvSession is one live session plus its bookkeeping.
type srvSession struct {
	id      string
	name    string
	sess    *ssta.Session
	created time.Time

	mu       sync.Mutex // guards lastUsed/edits (the session serializes itself)
	lastUsed time.Time
	edits    int64
}

func (s *srvSession) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// sessionStore is the bounded session registry with idle-TTL eviction.
type sessionStore struct {
	mu       sync.Mutex
	sessions map[string]*srvSession
	seq      int64
	max      int
	ttl      time.Duration
}

func newSessionStore(max int, ttl time.Duration) *sessionStore {
	if max <= 0 {
		max = 64
	}
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	return &sessionStore{sessions: make(map[string]*srvSession), max: max, ttl: ttl}
}

// add registers a session, failing when the table is full (429 upstream).
func (st *sessionStore) add(name string, sess *ssta.Session) (*srvSession, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.sessions) >= st.max {
		return nil, fmt.Errorf("session table full (%d live)", len(st.sessions))
	}
	st.seq++
	now := time.Now()
	s := &srvSession{
		id:      fmt.Sprintf("sess-%d", st.seq),
		name:    name,
		sess:    sess,
		created: now,
	}
	s.lastUsed = now
	st.sessions[s.id] = s
	return s, nil
}

// addID registers a session under a caller-chosen id — the coordinator
// allocated it and routes by it, so the worker must register it verbatim.
// The sequence advances past numeric "sess-<n>" ids so local creates can
// never collide with coordinator-assigned ones.
func (st *sessionStore) addID(id, name string, sess *ssta.Session) (*srvSession, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.sessions) >= st.max {
		return nil, fmt.Errorf("session table full (%d live)", len(st.sessions))
	}
	if _, taken := st.sessions[id]; taken {
		return nil, fmt.Errorf("session id %q already live", id)
	}
	if rest, ok := strings.CutPrefix(id, "sess-"); ok {
		if n, err := strconv.ParseInt(rest, 10, 64); err == nil && n > st.seq {
			st.seq = n
		}
	}
	now := time.Now()
	s := &srvSession{id: id, name: name, sess: sess, created: now}
	s.lastUsed = now
	st.sessions[id] = s
	return s, nil
}

// nextID reserves a fresh session id without registering anything — the
// coordinator's allocation for a proxied create.
func (st *sessionStore) nextID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	return fmt.Sprintf("sess-%d", st.seq)
}

// countRestoredFlat counts live sessions that restored flat from a
// hierarchical checkpoint (surfaced in /healthz).
func (st *sessionStore) countRestoredFlat() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, s := range st.sessions {
		if s.sess.RestoredFlat() {
			n++
		}
	}
	return n
}

func (st *sessionStore) get(id string) (*srvSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	return s, ok
}

func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sessions[id]; !ok {
		return false
	}
	delete(st.sessions, id)
	return true
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// full reports whether the table is at capacity — the cheap admission
// precheck; add remains the authoritative bound.
func (st *sessionStore) full() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions) >= st.max
}

// evictIdle drops every session idle beyond the TTL and returns the
// evicted ids (the caller also drops their durable checkpoints).
func (st *sessionStore) evictIdle(now time.Time) []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var evicted []string
	for id, s := range st.sessions {
		s.mu.Lock()
		last := s.lastUsed
		s.mu.Unlock()
		if now.Sub(last) > st.ttl {
			delete(st.sessions, id)
			evicted = append(evicted, id)
		}
	}
	return evicted
}

// bumpSeq advances the id counter to at least n, so ids restored from a
// previous run cannot collide with freshly created ones.
func (st *sessionStore) bumpSeq(n int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n > st.seq {
		st.seq = n
	}
}

// restore re-registers a session under its previous identity at warm
// start. It refuses (false) when the id is already live or the table is
// full — restored state never displaces live state.
func (st *sessionStore) restore(id, name string, created time.Time, edits int64, sess *ssta.Session) bool {
	if id == "" {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, taken := st.sessions[id]; taken || len(st.sessions) >= st.max {
		return false
	}
	s := &srvSession{id: id, name: name, sess: sess, created: created}
	s.lastUsed = time.Now()
	s.edits = edits
	st.sessions[id] = s
	return true
}

// runSessionJanitor periodically evicts idle sessions until shutdown.
func (s *Server) runSessionJanitor(base context.Context) {
	defer s.wg.Done()
	interval := s.sessions.ttl / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-base.Done():
			return
		case now := <-tick.C:
			if ids := s.sessions.evictIdle(now); len(ids) > 0 {
				s.metrics.sessionsEvicted.Add(int64(len(ids)))
				for _, id := range ids {
					s.dropCheckpoint(id)
				}
			}
		}
	}
}

// view snapshots a session for the wire.
func (s *srvSession) view() SessionView {
	info := s.sess.Info()
	s.mu.Lock()
	lastUsed, edits := s.lastUsed, s.edits
	s.mu.Unlock()
	v := SessionView{
		ID: s.id, Name: s.name,
		Kind:       "flat",
		Verts:      info.Verts,
		Edges:      info.Edges,
		Edits:      edits,
		CreatedMS:  s.created.UnixMilli(),
		LastUsedMS: lastUsed.UnixMilli(),
	}
	if info.Hier {
		v.Kind = "hier"
	}
	v.RestoredFlat = info.RestoredFlat
	if info.Delay != nil {
		v.MeanPS = info.Delay.Mean()
		v.StdPS = info.Delay.Std()
		v.P9987PS = info.Delay.Quantile(0.99865)
	}
	if rep := s.sess.Sweep(); rep != nil {
		v.Sweep = sweepResponseView(s.name, rep, float64(rep.Elapsed.Microseconds())/1000)
	}
	return v
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	// A coordinator pins the session to a worker by subject fingerprint and
	// proxies the create; dispatch failure falls through to a local create
	// (degradation ladder) with the body restored.
	if s.cluster != nil && s.clusterSessionCreate(w, r) {
		return
	}
	var req SessionCreateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decodeJSONStrict(r, &req); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	// Refuse a full table before paying the initial analysis, so a create
	// storm against a full table sheds load for free instead of burning
	// analysis slots on doomed work (the bound is re-checked at add, which
	// stays authoritative under concurrent creates).
	if s.sessions.full() {
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "session table full")
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), &AnalyzeRequest{TimeoutMS: req.TimeoutMS})
	defer cancel()
	// The full initial analysis holds an analysis slot like any other work.
	if !s.acquireSlot(ctx, w) {
		return
	}
	defer s.releaseSlot()

	start := time.Now()
	sess, name, err := s.buildSession(ctx, &req.ItemSpec)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.metrics.itemsRejected.Add(1)
			httpError(w, http.StatusRequestTimeout, err.Error())
			return
		}
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Scenarios) > 0 {
		if err := s.installSessionSweep(ctx, sess, req.Scenarios); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.metrics.itemsRejected.Add(1)
				httpError(w, http.StatusRequestTimeout, err.Error())
				return
			}
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	var reg *srvSession
	if id := r.Header.Get(sessionIDHeader); id != "" && validSessionID(id) {
		// A proxied create: register under the coordinator-assigned id so
		// its routing table and this worker agree on the session identity.
		reg, err = s.sessions.addID(id, name, sess)
	} else {
		reg, err = s.sessions.add(name, sess)
	}
	if err != nil {
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	s.metrics.sessionsCreated.Add(1)
	s.checkpointSession(reg.id)
	v := reg.view()
	v.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusCreated, v)
}

// installSessionSweep converts the create request's scenario specs and
// installs them as the session's active MCMM sweep. Swaps are rejected at
// conversion (sessions express swaps as edits), matching SetSweep's own
// contract.
func (s *Server) installSessionSweep(ctx context.Context, sess *ssta.Session, specs []SweepScenarioSpec) error {
	if len(specs) > s.cfg.MaxItems {
		return fmt.Errorf("request has %d scenarios, limit %d", len(specs), s.cfg.MaxItems)
	}
	scens := make([]ssta.Scenario, len(specs))
	for i := range specs {
		sc, err := s.convertScenario(ctx, &specs[i], false)
		if err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
		scens[i] = sc
	}
	opt := ssta.SweepOptions{Workers: s.cfg.Workers, OnScenarioDone: s.scenarioMetricsHook()}
	_, err := sess.SetSweep(ctx, scens, opt)
	return err
}

// buildSession constructs the ssta.Session for one item spec. Flat graphs
// come from the shared graph cache (the session clones them); quad designs
// come from the design cache (the session copies their structure), so the
// expensive artifacts — built graphs, extracted models — stay shared.
func (s *Server) buildSession(ctx context.Context, spec *ItemSpec) (*ssta.Session, string, error) {
	set := spec.inputs()
	if len(set) != 1 {
		return nil, "", fmt.Errorf("session needs exactly one input of bench, netlist, mult or quad (got %d)", len(set))
	}
	mode, err := parseMode(spec.Mode)
	if err != nil {
		return nil, "", err
	}
	name := spec.Name
	switch {
	case spec.Quad != nil:
		if spec.Clocked {
			return nil, "", fmt.Errorf("clocked applies to bench, netlist or mult items only")
		}
		d, err := s.quadDesign(ctx, spec.Quad)
		if err != nil {
			return nil, "", err
		}
		s.checkpointPrep(spec.Quad, mode)
		if name == "" {
			name = d.Name
		}
		sess, err := s.flow.NewDesignSession(ctx, d, mode, ssta.AnalyzeOptions{Workers: s.cfg.Workers})
		return sess, name, err
	case spec.Netlist != "":
		c, err := ssta.ParseBench(spec.Name, strings.NewReader(spec.Netlist))
		if err != nil {
			return nil, "", fmt.Errorf("netlist: %w", err)
		}
		if spec.Clocked {
			if c, err = ssta.Clocked(c); err != nil {
				return nil, "", fmt.Errorf("netlist: %w", err)
			}
		}
		g, _, err := s.flow.Graph(c)
		if err != nil {
			return nil, "", err
		}
		if name == "" {
			name = c.Name
		}
		sess, err := s.flow.NewGraphSession(ctx, g)
		return sess, name, err
	default:
		g, err := s.cachedGraph(ctx, graphKey{bench: spec.Bench, seed: spec.Seed, mult: spec.Mult, clocked: spec.Clocked})
		if err != nil {
			return nil, "", err
		}
		if name == "" {
			if spec.Bench != "" {
				name = spec.Bench
			} else {
				name = fmt.Sprintf("mult%d", spec.Mult)
			}
		}
		sess, err := s.flow.NewGraphSession(ctx, g)
		return sess, name, err
	}
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cluster != nil && s.clusterSessionProxy(w, r, id) {
		return
	}
	reg, ok := s.sessions.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session")
		return
	}
	writeJSON(w, http.StatusOK, reg.view())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cluster != nil && s.clusterSessionProxy(w, r, id) {
		return
	}
	if !s.sessions.remove(id) {
		httpError(w, http.StatusNotFound, "unknown session")
		return
	}
	s.metrics.sessionsDeleted.Add(1)
	s.dropCheckpoint(id)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": true})
}

func (s *Server) handleSessionEdits(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cluster != nil && s.clusterSessionProxy(w, r, id) {
		return
	}
	reg, ok := s.sessions.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session")
		return
	}
	var req SessionEditRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decodeJSONStrict(r, &req); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	if len(req.Edits) == 0 {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "request has no edits")
		return
	}
	if len(req.Edits) > s.cfg.MaxItems {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("request has %d edits, limit %d", len(req.Edits), s.cfg.MaxItems))
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), &AnalyzeRequest{TimeoutMS: req.TimeoutMS})
	defer cancel()

	// Take the analysis slot before converting edits: swap_module
	// materialization runs a graph build plus a full model extraction, and
	// the incremental re-analysis itself is still analysis — both must
	// respect the same global concurrency bound as everything else, or an
	// edit storm of distinct swaps would fan out unbounded extractions.
	if !s.acquireSlot(ctx, w) {
		return
	}
	defer s.releaseSlot()

	edits := make([]ssta.Edit, 0, len(req.Edits))
	for k := range req.Edits {
		e, err := s.convertEdit(ctx, &req.Edits[k])
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.metrics.itemsRejected.Add(1)
				httpError(w, http.StatusRequestTimeout, fmt.Sprintf("edit %d: %v", k, err))
				return
			}
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Sprintf("edit %d: %v", k, err))
			return
		}
		edits = append(edits, e)
	}

	reg.touch()
	if wantsEventStream(r) {
		if fl, ok := w.(http.Flusher); ok {
			s.streamEditApply(w, fl, ctx, cancel, reg, edits)
			return
		}
	}
	rep, err := reg.sess.Apply(ctx, edits)
	resp, status, msg, ok := s.settleEditBatch(reg, edits, rep, err)
	if !ok {
		httpError(w, status, msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// settleEditBatch is the post-Apply bookkeeping shared by the synchronous
// and streaming paths: error classification and metrics, applied-prefix
// accounting, checkpointing, and response assembly. On failure ok is false
// and (status, msg) describe the error.
func (s *Server) settleEditBatch(reg *srvSession, edits []ssta.Edit, rep *ssta.EditReport, err error) (resp SessionEditResponse, status int, msg string, ok bool) {
	if err != nil {
		status = applyErrorStatus(err)
		switch status {
		case http.StatusRequestTimeout:
			s.metrics.itemsRejected.Add(1)
		case http.StatusInternalServerError:
			s.metrics.internalErrors.Add(1)
		default:
			s.metrics.badRequests.Add(1)
		}
		msg = err.Error()
		if rep != nil && rep.Applied > 0 {
			// A failed batch is not nothing-happened: its valid prefix stays
			// applied (the library contract), so account those edits and tell
			// the client — resending the batch would double-apply the prefix.
			reg.mu.Lock()
			reg.edits += int64(rep.Applied)
			reg.mu.Unlock()
			s.metrics.editsApplied.Add(int64(rep.Applied))
			s.checkpointSession(reg.id) // the applied prefix is durable state
			msg = fmt.Sprintf("%s; %d of %d edits were applied and remain in effect", msg, rep.Applied, len(edits))
		}
		return SessionEditResponse{}, status, msg, false
	}
	reg.mu.Lock()
	reg.edits += int64(rep.Applied)
	reg.lastUsed = time.Now()
	reg.mu.Unlock()
	s.metrics.observeReanalysis(rep.Elapsed, rep.Applied)
	s.checkpointSession(reg.id)
	resp = SessionEditResponse{
		Applied:         rep.Applied,
		RecomputedVerts: rep.Recomputed,
		TotalVerts:      rep.TotalVerts,
		FullReprop:      rep.FullReprop,
		ElapsedMS:       float64(rep.Elapsed.Microseconds()) / 1000,
	}
	if rep.Delay != nil {
		resp.MeanPS = rep.Delay.Mean()
		resp.StdPS = rep.Delay.Std()
		resp.P9987PS = rep.Delay.Quantile(0.99865)
	}
	if rep.Sweep != nil {
		resp.Sweep = sweepResponseView(reg.name, rep.Sweep, float64(rep.Sweep.Elapsed.Microseconds())/1000)
	}
	return resp, http.StatusOK, "", true
}

// streamEditApply is the SSE arm of POST /v1/sessions/{id}/edits: when the
// session carries an active sweep, each incrementally re-evaluated scenario
// streams out as a `scenario` event, followed by one `summary` event with
// the exact synchronous edit response. Apply failures after the stream
// opens arrive as an `error` event.
func (s *Server) streamEditApply(w http.ResponseWriter, fl http.Flusher, ctx context.Context, cancel context.CancelFunc, reg *srvSession, edits []ssta.Edit) {
	release := s.trackStream(cancel)
	defer release()

	n := 0
	if rep := reg.sess.Sweep(); rep != nil {
		n = len(rep.Results)
	}
	sse := &sseWriter{w: w, fl: fl}
	sse.start()

	// The observer runs on sweep worker goroutines with the session mutex
	// held; events cross a channel sized to the scenario count so the
	// observer never blocks on a slow client.
	events := make(chan SweepScenarioEvent, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			sse.event("scenario", ev)
		}
	}()
	rep, err := reg.sess.ApplyObserved(ctx, edits, func(i int, r *ssta.ScenarioResult) {
		events <- SweepScenarioEvent{Index: i, SweepScenarioResult: sweepScenarioView(r)}
	})
	close(events)
	<-done
	resp, status, msg, ok := s.settleEditBatch(reg, edits, rep, err)
	if !ok {
		sse.eventError(status, msg)
		return
	}
	sse.event("summary", resp)
}

// applyErrorStatus classifies a Session.Apply failure: cancellation maps to
// 408, a failed re-analysis (restitch recovery, incremental update, full
// rebuild — server-side faults) to 500, and everything else — edit
// validation — to 400.
func applyErrorStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusRequestTimeout
	}
	var re *ssta.ReanalysisError
	if errors.As(err, &re) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// convertEdit maps one wire edit onto the library edit type, materializing
// swap-in modules through the shared graph and extraction caches.
func (s *Server) convertEdit(ctx context.Context, e *EditSpec) (ssta.Edit, error) {
	switch strings.ToLower(e.Op) {
	case "scale_delay":
		return ssta.Edit{Op: ssta.EditScaleDelay, Edge: e.Edge, Scale: e.Scale}, nil
	case "set_nominal":
		return ssta.Edit{Op: ssta.EditSetNominal, Edge: e.Edge, Value: e.ValuePS}, nil
	case "add_edge":
		return ssta.Edit{Op: ssta.EditAddEdge, From: e.From, To: e.To, Value: e.ValuePS}, nil
	case "remove_edge":
		return ssta.Edit{Op: ssta.EditRemoveEdge, Edge: e.Edge}, nil
	case "set_net_delay":
		return ssta.Edit{Op: ssta.EditSetNetDelay, Net: e.Net, Value: e.ValuePS}, nil
	case "swap_module":
		if e.Instance == "" || e.Bench == "" {
			return ssta.Edit{}, fmt.Errorf("swap_module needs instance and bench")
		}
		gk := graphKey{bench: e.Bench, seed: e.Seed}
		g, plan, err := s.graphs.get(ctx, s.flow, gk)
		if err != nil {
			return ssta.Edit{}, err
		}
		model, err := s.extractModel(ctx, gk, g)
		if err != nil {
			return ssta.Edit{}, fmt.Errorf("swap_module: extract %s: %w", e.Bench, err)
		}
		mod, err := ssta.NewModule(e.Bench, model, plan)
		if err != nil {
			return ssta.Edit{}, err
		}
		return ssta.Edit{Op: ssta.EditSwapModule, Instance: e.Instance, Module: mod}, nil
	default:
		return ssta.Edit{}, fmt.Errorf("unknown op %q (want scale_delay, set_nominal, add_edge, remove_edge, set_net_delay or swap_module)", e.Op)
	}
}

// acquireSlot takes an analysis slot under ctx, writing the 429 itself on
// failure and reporting whether the caller may proceed.
func (s *Server) acquireSlot(ctx context.Context, w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, fmt.Sprintf("no analysis slot: %v", ctx.Err()))
		return false
	}
}

func (s *Server) releaseSlot() { <-s.sem }
