package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"
)

// Fingerprint is the canonical identity of server-side work: a SHA-256
// over a tag/length-prefixed encoding of the fields that determine an
// analysis outcome. One fingerprint vocabulary keys every identity-driven
// structure in the serving layer — the built-graph cache, the in-flight
// request coalescer, and the micro-batcher's compatibility groups — so
// "the same work" means exactly one thing everywhere.
//
// The encoding is injective by construction: every field is written with
// a distinct tag and an explicit length or fixed width, so two specs
// differing in any encoded field cannot collide short of a SHA-256
// collision. Map-shaped fields (edge scales, swaps) are written in sorted
// key order, making the fingerprint independent of map iteration order.
type Fingerprint [sha256.Size]byte

// String renders a short hex prefix for logs and debugging.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// fpWriter accumulates the canonical encoding. Field helpers never fail:
// sha256's Write cannot error.
type fpWriter struct {
	h   hash.Hash
	buf [10]byte
}

func newFPWriter() *fpWriter { return &fpWriter{h: sha256.New()} }

func (w *fpWriter) tag(t byte) {
	w.buf[0] = t
	w.h.Write(w.buf[:1])
}

func (w *fpWriter) str(t byte, s string) {
	w.tag(t)
	binary.BigEndian.PutUint64(w.buf[:8], uint64(len(s)))
	w.h.Write(w.buf[:8])
	w.h.Write([]byte(s))
}

func (w *fpWriter) i64(t byte, v int64) {
	w.tag(t)
	binary.BigEndian.PutUint64(w.buf[:8], uint64(v))
	w.h.Write(w.buf[:8])
}

func (w *fpWriter) f64(t byte, v float64) {
	w.tag(t)
	binary.BigEndian.PutUint64(w.buf[:8], math.Float64bits(v))
	w.h.Write(w.buf[:8])
}

func (w *fpWriter) sum() Fingerprint {
	var f Fingerprint
	w.h.Sum(f[:0])
	return f
}

// Field tags of the canonical encoding. Values are stable identifiers,
// not wire format — fingerprints never leave the process — but keeping
// them distinct per field is what makes the encoding injective.
const (
	fpTagBench    = 0x01
	fpTagSeed     = 0x02
	fpTagNetlist  = 0x03
	fpTagMult     = 0x04
	fpTagQuad     = 0x05
	fpTagQuadGap  = 0x06
	fpTagMode     = 0x07
	fpTagExtract  = 0x08
	fpTagName     = 0x09
	fpTagDerate   = 0x10
	fpTagCell     = 0x11
	fpTagNet      = 0x12
	fpTagEdgeIdx  = 0x13
	fpTagEdgeVal  = 0x14
	fpTagGlob     = 0x15
	fpTagLoc      = 0x16
	fpTagRand     = 0x17
	fpTagSwapInst = 0x18
	fpTagSwapMod  = 0x19
	fpTagEndpoint = 0x20
	fpTagWorkers  = 0x21
	fpTagItemWkrs = 0x22
	fpTagTimeout  = 0x23
	fpTagTopK     = 0x24
	fpTagCount    = 0x25
	fpTagSub      = 0x26
	fpTagClocked  = 0x27
	fpTagClkPer   = 0x28
	fpTagClkSkew  = 0x29
	fpTagClkJit   = 0x2a
)

// writeItem encodes the analysis subject of one item spec: the input
// selector (bench/netlist/mult/quad) and its parameters. Name, mode and
// extract are NOT part of the subject — Name only labels the response,
// and mode/extract select what is computed over the subject, so callers
// that need them fold them in on top (see requestFingerprint and the
// batcher's group key).
func (w *fpWriter) writeItem(spec *ItemSpec) {
	switch {
	case spec.Quad != nil:
		w.str(fpTagQuad, spec.Quad.Bench)
		w.i64(fpTagSeed, spec.Quad.Seed)
		w.i64(fpTagQuadGap, int64(spec.Quad.Gap))
	case spec.Netlist != "":
		w.str(fpTagNetlist, spec.Netlist)
	case spec.Mult > 0:
		w.i64(fpTagMult, int64(spec.Mult))
	default:
		w.str(fpTagBench, spec.Bench)
		w.i64(fpTagSeed, spec.Seed)
	}
	if spec.Clocked {
		// Tag presence alone distinguishes the registered variant; absence
		// keeps pre-existing combinational fingerprints stable.
		w.i64(fpTagClocked, 1)
	}
}

// ItemFingerprint is the canonical identity of one item's analysis
// subject: which graph or design the work runs against, independent of
// how it is labeled (Name) or what is computed over it (mode, extract).
// It keys the built-graph cache and, combined with the mode, the
// micro-batcher's compatibility groups.
func ItemFingerprint(spec *ItemSpec) Fingerprint {
	w := newFPWriter()
	w.writeItem(spec)
	return w.sum()
}

// writeScenario encodes one wire scenario's transform: every rescale knob
// plus module swaps in sorted instance order. withName additionally folds
// in the display name (request-identity use); without it, two scenarios
// that perform the same transform fingerprint identically regardless of
// what callers named them — the batcher's dedup key.
func (w *fpWriter) writeScenario(sp *SweepScenarioSpec, withName bool) {
	if withName {
		w.str(fpTagName, sp.Name)
	}
	w.f64(fpTagDerate, sp.Derate)
	w.f64(fpTagCell, sp.CellScale)
	w.f64(fpTagNet, sp.NetScale)
	if len(sp.EdgeScales) > 0 {
		idx := make([]int, 0, len(sp.EdgeScales))
		for e := range sp.EdgeScales {
			idx = append(idx, e)
		}
		sort.Ints(idx)
		for _, e := range idx {
			w.i64(fpTagEdgeIdx, int64(e))
			w.f64(fpTagEdgeVal, sp.EdgeScales[e])
		}
	}
	w.f64(fpTagGlob, sp.GlobSigma)
	w.f64(fpTagLoc, sp.LocSigma)
	w.f64(fpTagRand, sp.RandSigma)
	w.f64(fpTagClkPer, sp.ClockPeriodPS)
	w.f64(fpTagClkSkew, sp.ClockSkewPS)
	w.f64(fpTagClkJit, sp.ClockJitterPS)
	if len(sp.Swaps) > 0 {
		insts := make([]string, 0, len(sp.Swaps))
		for inst := range sp.Swaps {
			insts = append(insts, inst)
		}
		sort.Strings(insts)
		for _, inst := range insts {
			sw := sp.Swaps[inst]
			w.str(fpTagSwapInst, inst)
			w.str(fpTagSwapMod, sw.Bench)
			w.i64(fpTagSeed, sw.Seed)
		}
	}
}

// ScenarioFingerprint is the canonical identity of one wire scenario's
// transform, excluding its display name: two callers asking for the same
// derates/sigmas/swaps under different names map to the same fingerprint,
// which is what lets the micro-batcher evaluate the scenario once and
// answer both.
func ScenarioFingerprint(sp *SweepScenarioSpec) Fingerprint {
	w := newFPWriter()
	w.writeScenario(sp, false)
	return w.sum()
}

// requestFingerprint is the full identity of a synchronous request for
// the coalescer: endpoint, every item field including names, the
// scheduling knobs, and the scenario list with names. Two requests with
// equal fingerprints produce byte-identical response bodies, so attaching
// one to the other's in-flight execution is observationally equivalent to
// running it.
func requestFingerprint(endpoint string, req *AnalyzeRequest, scens []SweepScenarioSpec, topK int) Fingerprint {
	w := newFPWriter()
	w.str(fpTagEndpoint, endpoint)
	w.i64(fpTagWorkers, int64(req.Workers))
	w.i64(fpTagItemWkrs, int64(req.ItemWorkers))
	w.i64(fpTagTimeout, req.TimeoutMS)
	w.i64(fpTagTopK, int64(topK))
	w.i64(fpTagCount, int64(len(req.Items)))
	for k := range req.Items {
		spec := &req.Items[k]
		w.tag(fpTagSub)
		w.str(fpTagName, spec.Name)
		w.str(fpTagMode, spec.Mode)
		if spec.Extract {
			w.i64(fpTagExtract, 1)
		}
		w.writeItem(spec)
	}
	w.i64(fpTagCount, int64(len(scens)))
	for i := range scens {
		w.tag(fpTagSub)
		w.writeScenario(&scens[i], true)
	}
	return w.sum()
}
