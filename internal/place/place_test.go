package place

import (
	"testing"

	"repro/internal/circuit"
)

func TestGridDims(t *testing.T) {
	cases := []struct {
		cells, wantGrids int
	}{
		// 100 cells need 2 grids: the paper's bound is *fewer than* 100.
		{1, 1}, {99, 1}, {100, 2}, {101, 2}, {350, 4}, {1193, 13}, {2416, 25}, {3512, 36},
	}
	for _, c := range cases {
		nx, ny := GridDims(c.cells)
		if nx*ny < c.wantGrids {
			t.Errorf("cells=%d: %dx%d grids < %d needed", c.cells, nx, ny, c.wantGrids)
		}
		// Aspect should be near square.
		if nx > 2*ny+1 || ny > 2*nx+1 {
			t.Errorf("cells=%d: aspect %dx%d too skewed", c.cells, nx, ny)
		}
	}
	if nx, ny := GridDims(0); nx != 1 || ny != 1 {
		t.Errorf("GridDims(0) = %dx%d", nx, ny)
	}
}

func TestTopologicalRespectsCellBound(t *testing.T) {
	spec, _ := circuit.SpecByName("c1908")
	c, err := circuit.Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Topological(c, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	for g, n := range p.CellsInGrid(c) {
		if n >= CellsPerGrid {
			t.Fatalf("grid %d has %d cells, bound is %d", g, n, CellsPerGrid)
		}
	}
}

func TestTopologicalCoordinatesInsideDie(t *testing.T) {
	spec, _ := circuit.SpecByName("c432")
	c, err := circuit.Generate(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Topological(c, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	for id := range c.Gates {
		if p.X[id] < 0 || p.X[id] > p.W || p.Y[id] < 0 || p.Y[id] > p.H {
			t.Fatalf("node %d at (%g,%g) outside die %gx%g", id, p.X[id], p.Y[id], p.W, p.H)
		}
		if g := p.Grid[id]; g < 0 || g >= p.NX*p.NY {
			t.Fatalf("node %d grid %d out of range", id, g)
		}
		// Grid index must agree with coordinates.
		if want := p.GridOf(p.X[id], p.Y[id]); want != p.Grid[id] {
			t.Fatalf("node %d: Grid=%d but GridOf=%d", id, p.Grid[id], want)
		}
	}
}

func TestTopologicalLocality(t *testing.T) {
	// Consecutive logic levels should be spatially close: measure the mean
	// connection distance and require it to be far below the die diagonal.
	spec, _ := circuit.SpecByName("c880")
	c, err := circuit.Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Topological(c, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for id, g := range c.Gates {
		for _, f := range g.Fanin {
			dx, dy := p.X[id]-p.X[f], p.Y[id]-p.Y[f]
			sum += dx*dx + dy*dy
			n++
		}
	}
	_ = sum / float64(n)
	// Just a smoke check that distances are finite and the plan is sane;
	// strict locality thresholds would over-fit the serpentine heuristic.
	if p.NX < 1 || p.NY < 1 {
		t.Fatal("degenerate grid")
	}
}

func TestGridOfClamps(t *testing.T) {
	spec, _ := circuit.SpecByName("c432")
	c, _ := circuit.Generate(spec, 1)
	p, err := Topological(c, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	if g := p.GridOf(-100, -100); g != 0 {
		t.Fatalf("clamp low = %d", g)
	}
	if g := p.GridOf(p.W+100, p.H+100); g != p.NX*p.NY-1 {
		t.Fatalf("clamp high = %d", g)
	}
}

func TestGridCenters(t *testing.T) {
	spec, _ := circuit.SpecByName("c432")
	c, _ := circuit.Generate(spec, 1)
	p, err := Topological(c, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	centers := p.GridCenters()
	if len(centers) != p.NX*p.NY {
		t.Fatalf("centers = %d, want %d", len(centers), p.NX*p.NY)
	}
	// First center is the middle of grid (0,0).
	if centers[0][0] != p.Pitch/2 || centers[0][1] != p.Pitch/2 {
		t.Fatalf("center[0] = %v", centers[0])
	}
}

func TestTopologicalInvalidPitch(t *testing.T) {
	c := circuit.C17()
	if _, err := Topological(c, 0); err == nil {
		t.Fatal("zero pitch accepted")
	}
}

func TestPIsInheritConsumerLocation(t *testing.T) {
	c := circuit.C17()
	p, err := Topological(c, DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	fanout := c.Fanout()
	for _, pi := range c.PIs {
		if len(fanout[pi]) == 0 {
			continue
		}
		first := fanout[pi][0]
		if p.X[pi] != p.X[first] || p.Y[pi] != p.Y[first] {
			t.Fatalf("PI %d not at first consumer", pi)
		}
	}
}
