// Package place assigns die locations to circuit cells and bins them into
// correlation grids. The paper (Section VI) partitions each die so that a
// grid holds fewer than 100 cells; locations then select the PCA
// coefficients of the grid a cell belongs to (Section V).
//
// The placement itself is a level-ordered serpentine fill: cells are sorted
// by logic level and placed row by row. This is not a quality placement —
// it only needs to give connected logic spatial locality, which is the
// property the correlation model consumes.
package place

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
)

// CellsPerGrid is the paper's bound: grids are sized so each holds fewer
// than 100 cells.
const CellsPerGrid = 100

// DefaultPitch is the default grid pitch in placement units (um). The
// correlation model works in pitch units, so the absolute value only fixes
// a scale.
const DefaultPitch = 50.0

// Plan is a placed circuit: die geometry, per-node coordinates and the grid
// index of every node.
type Plan struct {
	NX, NY int     // grid counts
	Pitch  float64 // grid pitch
	W, H   float64 // die extent (NX*Pitch, NY*Pitch)

	X, Y []float64 // per-node coordinates (primary inputs sit at their first consumer's position)
	Grid []int     // per-node grid index gy*NX+gx
}

// GridDims returns the grid shape (nx, ny) for a cell count such that every
// grid holds fewer than CellsPerGrid cells (strict, per the paper), with an
// aspect close to square.
func GridDims(cells int) (nx, ny int) {
	if cells < 1 {
		cells = 1
	}
	// Strict bound: ceil(cells/grids) <= CellsPerGrid-1.
	grids := (cells + CellsPerGrid - 2) / (CellsPerGrid - 1)
	nx = int(math.Ceil(math.Sqrt(float64(grids))))
	if nx < 1 {
		nx = 1
	}
	ny = (grids + nx - 1) / nx
	if ny < 1 {
		ny = 1
	}
	return nx, ny
}

// Topological places the circuit's gates on a die in level order with a
// serpentine fill, then assigns grid memberships. Primary inputs take the
// position of their first consumer gate (they have no cell of their own but
// their timing-graph edges need a source location only through the gate
// they feed, so this choice is cosmetic).
func Topological(c *circuit.Circuit, pitch float64) (*Plan, error) {
	if pitch <= 0 {
		return nil, fmt.Errorf("place: invalid pitch %g", pitch)
	}
	order, levels, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	gates := make([]int, 0, c.NumGates())
	for _, id := range order {
		if c.Gates[id].Type != circuit.Input {
			gates = append(gates, id)
		}
	}
	// Stable by (level, id) so the layout is deterministic.
	sort.SliceStable(gates, func(i, j int) bool {
		if levels[gates[i]] != levels[gates[j]] {
			return levels[gates[i]] < levels[gates[j]]
		}
		return gates[i] < gates[j]
	})

	nx, ny := GridDims(len(gates))
	p := &Plan{
		NX: nx, NY: ny, Pitch: pitch,
		W: float64(nx) * pitch, H: float64(ny) * pitch,
		X:    make([]float64, c.NumNodes()),
		Y:    make([]float64, c.NumNodes()),
		Grid: make([]int, c.NumNodes()),
	}

	// Serpentine fill: each grid receives an equal share of cells, grids
	// are visited row by row alternating direction, and cells are spread
	// uniformly inside a grid.
	grids := nx * ny
	perGrid := (len(gates) + grids - 1) / grids
	if perGrid >= CellsPerGrid {
		return nil, fmt.Errorf("place: internal error: %d cells per grid exceeds bound %d", perGrid, CellsPerGrid)
	}
	side := int(math.Ceil(math.Sqrt(float64(perGrid))))
	if side < 1 {
		side = 1
	}
	for i, id := range gates {
		g := i / perGrid
		if g >= grids {
			g = grids - 1
		}
		gy := g / nx
		gx := g % nx
		if gy%2 == 1 { // serpentine
			gx = nx - 1 - gx
		}
		k := i % perGrid
		cx := (float64(k%side) + 0.5) / float64(side)
		cy := (float64(k/side) + 0.5) / float64(side)
		if cy >= 1 {
			cy = 0.999
		}
		p.X[id] = (float64(gx) + cx) * pitch
		p.Y[id] = (float64(gy) + cy) * pitch
		p.Grid[id] = gy*nx + gx
	}

	// Primary inputs inherit their first consumer's location.
	fanout := c.Fanout()
	for _, pi := range c.PIs {
		if len(fanout[pi]) > 0 {
			first := fanout[pi][0]
			p.X[pi], p.Y[pi], p.Grid[pi] = p.X[first], p.Y[first], p.Grid[first]
		}
	}
	return p, nil
}

// GridOf maps a coordinate to its grid index, clamping to the die.
func (p *Plan) GridOf(x, y float64) int {
	gx := int(x / p.Pitch)
	gy := int(y / p.Pitch)
	if gx < 0 {
		gx = 0
	}
	if gx >= p.NX {
		gx = p.NX - 1
	}
	if gy < 0 {
		gy = 0
	}
	if gy >= p.NY {
		gy = p.NY - 1
	}
	return gy*p.NX + gx
}

// GridCenters returns the centers of all grids in index order, for building
// the grid correlation model.
func (p *Plan) GridCenters() [][2]float64 {
	out := make([][2]float64, 0, p.NX*p.NY)
	for gy := 0; gy < p.NY; gy++ {
		for gx := 0; gx < p.NX; gx++ {
			out = append(out, [2]float64{(float64(gx) + 0.5) * p.Pitch, (float64(gy) + 0.5) * p.Pitch})
		}
	}
	return out
}

// CellsInGrid counts placed gates per grid (for validating the <100 bound).
func (p *Plan) CellsInGrid(c *circuit.Circuit) []int {
	counts := make([]int, p.NX*p.NY)
	for id, g := range c.Gates {
		if g.Type == circuit.Input {
			continue
		}
		counts[p.Grid[id]]++
	}
	return counts
}
