package variation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCorrelationAlternativeParameters(t *testing.T) {
	// The fit must work across a range of plausible setups, not just the
	// paper's numbers.
	cases := []struct{ neighbor, floor, rng float64 }{
		{0.90, 0.30, 10},
		{0.80, 0.10, 20},
		{0.60, 0.05, 5},
		{0.96, 0.50, 30},
	}
	for _, c := range cases {
		m, err := NewCorrelationModel(c.neighbor, c.floor, c.rng)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if got := m.Total(1); math.Abs(got-c.neighbor) > 1e-6 {
			t.Errorf("%+v: Total(1) = %g", c, got)
		}
		if got := m.Total(c.rng); math.Abs(got-c.floor) > 1e-6 {
			t.Errorf("%+v: Total(range) = %g", c, got)
		}
		if m.Local(0) != 1 {
			t.Errorf("%+v: Local(0) = %g", c, m.Local(0))
		}
	}
}

func TestCorrelationInfeasibleFit(t *testing.T) {
	// local(1) must stay below (range-1)/range for the convex
	// shifted-exponential family; the error must say so.
	_, err := NewCorrelationModel(0.95, 0.30, 10) // needs local(1)=0.93 > 0.9
	if err == nil {
		t.Fatal("infeasible correlation accepted")
	}
	// The paper's own numbers sit safely inside the feasible region.
	if _, err := NewCorrelationModel(0.92, 0.42, 15); err != nil {
		t.Fatalf("paper parameters rejected: %v", err)
	}
}

func TestCorrelationQuickMonotone(t *testing.T) {
	m, err := DefaultCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 20))
		b = math.Abs(math.Mod(b, 20))
		if a > b {
			a, b = b, a
		}
		return m.Local(a) >= m.Local(b)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridModel1x1(t *testing.T) {
	corr, _ := DefaultCorrelation()
	gm, err := NewGridModel(1, 1, 50, corr)
	if err != nil {
		t.Fatal(err)
	}
	if gm.N() != 1 || gm.Comps != 1 {
		t.Fatalf("1x1 grid: n=%d comps=%d", gm.N(), gm.Comps)
	}
	if math.Abs(gm.A.At(0, 0)) != 1 {
		t.Fatalf("1x1 factor = %g, want +-1", gm.A.At(0, 0))
	}
}

func TestGridModelLongStripRankDeficiency(t *testing.T) {
	// A long strip spans far past the correlation range; the clamped tail
	// can shave eigenvalues but every grid variable must keep unit
	// variance through the retained components.
	corr, _ := DefaultCorrelation()
	gm, err := NewGridModel(40, 1, 50, corr)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Comps < 1 || gm.Comps > gm.N() {
		t.Fatalf("comps = %d of %d", gm.Comps, gm.N())
	}
	for i := 0; i < gm.N(); i++ {
		var s float64
		for _, v := range gm.CoeffRow(i) {
			s += v * v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("grid %d reconstructed variance %g", i, s)
		}
	}
}

func TestGridModelFarGridsUncorrelated(t *testing.T) {
	corr, _ := DefaultCorrelation()
	centers := [][2]float64{{25, 25}, {25 + 16*50, 25}} // 16 pitches apart
	gm, err := NewGridModelFromCenters(50, corr, centers)
	if err != nil {
		t.Fatal(err)
	}
	if got := gm.C.At(0, 1); got != 0 {
		t.Fatalf("beyond-range local correlation = %g, want 0", got)
	}
}
