// Package variation models process variation the way the paper's Section II
// and Section VI describe it: each process parameter decomposes into a
// global part shared by the whole die, a spatially correlated grid-local
// part, and a purely random part (paper eq. 1). The grid-local parts of the
// grids of a die are jointly Gaussian with a distance-based correlation, and
// are decomposed by PCA into independent components (paper eq. 2).
package variation

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Parameter describes one process parameter with variation. Sigma is the
// relative (fraction-of-nominal) standard deviation of the parameter. The
// three shares partition the parameter's variance between the global,
// grid-local and purely random mechanisms and must sum to 1.
type Parameter struct {
	Name        string
	Sigma       float64
	GlobalShare float64
	LocalShare  float64
	RandomShare float64
}

// Validate checks the share partition.
func (p Parameter) Validate() error {
	if p.Sigma < 0 {
		return fmt.Errorf("variation: parameter %q has negative sigma", p.Name)
	}
	for _, s := range []float64{p.GlobalShare, p.LocalShare, p.RandomShare} {
		if s < 0 || s > 1 {
			return fmt.Errorf("variation: parameter %q has share outside [0,1]", p.Name)
		}
	}
	if d := p.GlobalShare + p.LocalShare + p.RandomShare; math.Abs(d-1) > 1e-9 {
		return fmt.Errorf("variation: parameter %q shares sum to %g, want 1", p.Name, d)
	}
	return nil
}

// Nassif90nm returns the three process parameters of the paper's Section VI
// (transistor length, oxide thickness, threshold voltage from Nassif's CICC
// 2001 data) with the variance split chosen so the quoted correlations hold:
// distant cells correlate at 0.42 (global share), same-grid cells at 0.95.
func Nassif90nm() []Parameter {
	return []Parameter{
		{Name: "Leff", Sigma: 0.157, GlobalShare: 0.42, LocalShare: 0.53, RandomShare: 0.05},
		{Name: "Tox", Sigma: 0.053, GlobalShare: 0.42, LocalShare: 0.53, RandomShare: 0.05},
		{Name: "Vth", Sigma: 0.044, GlobalShare: 0.42, LocalShare: 0.53, RandomShare: 0.05},
	}
}

// LoadSigma is the relative standard deviation of the load variation from
// the paper's Section VI ("Load variance was assigned to 15%"). Load
// variation is purely random per delay edge.
const LoadSigma = 0.15

// CorrelationModel is the distance-based grid correlation of Section VI:
// total correlation 0.92 between neighboring grids, decaying exponentially
// to the global floor 0.42 at grid distance Range, and exactly the floor
// beyond. Internally it stores the correlation of the *local* part only
// (the global part contributes the floor uniformly):
//
//	rho_local(d) = (A*exp(-lambda*d) - B) clamped to [0, 1], zero beyond Range
//
// fitted so rho_local(0) = 1 and rho_total(1) = floor + localShare-scaled
// rho_local(1) matches RhoNeighbor.
type CorrelationModel struct {
	RhoNeighbor float64 // total correlation at grid distance 1 (paper: 0.92)
	RhoFloor    float64 // total correlation from global variation (paper: 0.42)
	Range       float64 // grid distance where local correlation reaches 0 (paper: 15)

	a, b, lambda float64
}

// DefaultCorrelation returns the paper's Section VI numbers.
func DefaultCorrelation() (*CorrelationModel, error) {
	return NewCorrelationModel(0.92, 0.42, 15)
}

// NewCorrelationModel fits the shifted-exponential local correlation. The
// local correlation at distance 1 is (rhoNeighbor - rhoFloor)/(1 - rhoFloor),
// interpreting the floor as the global variance share of the correlated
// (global + local) parameter portion.
func NewCorrelationModel(rhoNeighbor, rhoFloor, rng float64) (*CorrelationModel, error) {
	if !(rhoFloor >= 0 && rhoFloor < rhoNeighbor && rhoNeighbor < 1) {
		return nil, fmt.Errorf("variation: need 0 <= floor < neighbor < 1, got %g, %g", rhoFloor, rhoNeighbor)
	}
	if rng <= 1 {
		return nil, fmt.Errorf("variation: correlation range must exceed 1, got %g", rng)
	}
	m := &CorrelationModel{RhoNeighbor: rhoNeighbor, RhoFloor: rhoFloor, Range: rng}
	target := (rhoNeighbor - rhoFloor) / (1 - rhoFloor) // rho_local(1)

	// Solve for lambda with A = 1/(1-e^(-lambda*R)), B = A*e^(-lambda*R)
	// such that A*e^(-lambda) - B = target. The left side decreases
	// monotonically in lambda from 1 (lambda->0) to 0 (lambda->inf), so
	// bisection is safe.
	f := func(l float64) float64 {
		er := math.Exp(-l * rng)
		a := 1 / (1 - er)
		return a*(math.Exp(-l)-er) - target
	}
	// Feasibility: as lambda -> 0 the shape becomes linear 1 - d/range, so
	// the largest achievable local correlation at distance 1 is
	// (range-1)/range; the convex exponential family cannot exceed it.
	if maxLocal := (rng - 1) / rng; target >= maxLocal {
		return nil, fmt.Errorf("variation: neighbor correlation %g needs local(1)=%.3f, above the %.3f limit of a range-%g model",
			rhoNeighbor, target, maxLocal, rng)
	}
	lo, hi := 1e-8, 50.0
	if f(lo) < 0 || f(hi) > 0 {
		return nil, errors.New("variation: correlation fit bracket failed")
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	m.lambda = 0.5 * (lo + hi)
	er := math.Exp(-m.lambda * rng)
	m.a = 1 / (1 - er)
	m.b = m.a * er
	return m, nil
}

// Local returns the correlation of the grid-local parts at grid distance d
// (in units of the default grid pitch). Local(0) = 1, Local(d >= Range) = 0.
func (m *CorrelationModel) Local(d float64) float64 {
	if d <= 0 {
		return 1
	}
	if d >= m.Range {
		return 0
	}
	v := m.a*math.Exp(-m.lambda*d) - m.b
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Total returns the total correlation of the correlated (global + local)
// parameter portion at grid distance d, i.e. floor + (1-floor)*Local(d).
func (m *CorrelationModel) Total(d float64) float64 {
	return m.RhoFloor + (1-m.RhoFloor)*m.Local(d)
}

// GridModel holds the spatial decomposition of one die: an nx x ny grid, the
// local-part correlation matrix over the grids, and its PCA factor A with
// pl = A x for iid standard normal x. Columns of A corresponding to
// near-zero eigenvalues are dropped, so A is n x Comps.
type GridModel struct {
	NX, NY int
	Pitch  float64 // grid pitch (width = height) in placement units
	Corr   *CorrelationModel

	C     *mat.Dense // n x n local correlation matrix (unit diagonal)
	A     *mat.Dense // n x Comps: pl = A x, x ~ iid N(0,1)
	Ainv  *mat.Dense // Comps x n: pseudo-inverse Lambda^(-1/2) E^T, x = Ainv pl
	Comps int
}

// eigDropTol drops PCA components whose eigenvalue is below this fraction of
// the largest eigenvalue (rank deficiency from the clamped correlation tail).
const eigDropTol = 1e-10

// NewGridModel builds the grid model for an nx x ny grid with the given
// pitch and correlation model. Grid distance is the Euclidean distance of
// grid centers in pitch units.
func NewGridModel(nx, ny int, pitch float64, corr *CorrelationModel) (*GridModel, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("variation: invalid grid %dx%d", nx, ny)
	}
	if pitch <= 0 {
		return nil, fmt.Errorf("variation: invalid pitch %g", pitch)
	}
	n := nx * ny
	centers := make([][2]float64, n)
	for gy := 0; gy < ny; gy++ {
		for gx := 0; gx < nx; gx++ {
			centers[gy*nx+gx] = [2]float64{(float64(gx) + 0.5) * pitch, (float64(gy) + 0.5) * pitch}
		}
	}
	return newGridModelFromCenters(nx, ny, pitch, corr, centers)
}

// NewGridModelFromCenters builds a grid model over arbitrary grid centers
// (used for the heterogeneous design-level partition of paper Section V,
// where grids may have different shapes). nx/ny are informational only.
func NewGridModelFromCenters(pitch float64, corr *CorrelationModel, centers [][2]float64) (*GridModel, error) {
	if len(centers) == 0 {
		return nil, errors.New("variation: no grid centers")
	}
	return newGridModelFromCenters(0, 0, pitch, corr, centers)
}

func newGridModelFromCenters(nx, ny int, pitch float64, corr *CorrelationModel, centers [][2]float64) (*GridModel, error) {
	n := len(centers)
	c := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		c.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			dx := (centers[i][0] - centers[j][0]) / pitch
			dy := (centers[i][1] - centers[j][1]) / pitch
			rho := corr.Local(math.Hypot(dx, dy))
			c.Set(i, j, rho)
			c.Set(j, i, rho)
		}
	}
	eig, err := mat.EigenSym(c)
	if err != nil {
		return nil, fmt.Errorf("variation: PCA failed: %w", err)
	}
	// Retain components with eigenvalue above tolerance; clamp small
	// negatives (clamped-exponential correlations are not guaranteed PSD).
	maxEig := math.Max(eig.Values[0], 0)
	comps := 0
	for _, v := range eig.Values {
		if v > eigDropTol*math.Max(maxEig, 1) {
			comps++
		}
	}
	if comps == 0 {
		return nil, errors.New("variation: correlation matrix has no positive eigenvalues")
	}
	a := mat.NewDense(n, comps)
	ainv := mat.NewDense(comps, n)
	for k := 0; k < comps; k++ {
		s := math.Sqrt(eig.Values[k])
		for i := 0; i < n; i++ {
			a.Set(i, k, eig.Vectors.At(i, k)*s)
			ainv.Set(k, i, eig.Vectors.At(i, k)/s)
		}
	}
	return &GridModel{NX: nx, NY: ny, Pitch: pitch, Corr: corr, C: c, A: a, Ainv: ainv, Comps: comps}, nil
}

// N returns the number of grids.
func (g *GridModel) N() int { return g.C.Rows() }

// CoeffRow returns row i of A: the coefficients expressing grid i's local
// variable as a combination of the independent components (paper eq. 2-3).
func (g *GridModel) CoeffRow(grid int) []float64 { return g.A.Row(grid) }

// CholeskyLocal returns the lower Cholesky factor of the local correlation
// matrix, used by Monte Carlo to sample correlated grid locals directly.
func (g *GridModel) CholeskyLocal() (*mat.Dense, error) {
	// The clamped tail can make C very slightly indefinite; PCA already
	// clamps, so rebuild a PSD version from the retained components when
	// plain Cholesky fails.
	l, err := mat.Cholesky(g.C)
	if err == nil {
		return l, nil
	}
	psd, merr := mat.Mul(g.A, g.A.T())
	if merr != nil {
		return nil, merr
	}
	return mat.Cholesky(psd)
}
