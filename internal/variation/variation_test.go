package variation

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestParameterValidate(t *testing.T) {
	for _, p := range Nassif90nm() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Parameter{Name: "x", Sigma: 0.1, GlobalShare: 0.5, LocalShare: 0.5, RandomShare: 0.5}
	if bad.Validate() == nil {
		t.Fatal("shares summing to 1.5 accepted")
	}
	neg := Parameter{Name: "x", Sigma: -1, GlobalShare: 1}
	if neg.Validate() == nil {
		t.Fatal("negative sigma accepted")
	}
	outside := Parameter{Name: "x", Sigma: 0.1, GlobalShare: -0.2, LocalShare: 1.2, RandomShare: 0}
	if outside.Validate() == nil {
		t.Fatal("share outside [0,1] accepted")
	}
}

func TestNassif90nmValues(t *testing.T) {
	ps := Nassif90nm()
	if len(ps) != 3 {
		t.Fatalf("want 3 parameters, got %d", len(ps))
	}
	want := map[string]float64{"Leff": 0.157, "Tox": 0.053, "Vth": 0.044}
	for _, p := range ps {
		if want[p.Name] != p.Sigma {
			t.Errorf("%s sigma = %g, want %g", p.Name, p.Sigma, want[p.Name])
		}
	}
}

func TestCorrelationModelEndpoints(t *testing.T) {
	m, err := DefaultCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if m.Local(0) != 1 {
		t.Fatalf("Local(0) = %g, want 1", m.Local(0))
	}
	// Total(1) must be the quoted neighbor correlation 0.92.
	if got := m.Total(1); math.Abs(got-0.92) > 1e-9 {
		t.Fatalf("Total(1) = %g, want 0.92", got)
	}
	// At and beyond the range, only the global floor remains.
	if got := m.Total(15); math.Abs(got-0.42) > 1e-9 {
		t.Fatalf("Total(15) = %g, want 0.42", got)
	}
	if got := m.Total(40); got != 0.42 {
		t.Fatalf("Total(40) = %g, want 0.42", got)
	}
	if m.Local(15) != 0 || m.Local(100) != 0 {
		t.Fatal("Local beyond range should be exactly 0")
	}
}

func TestCorrelationMonotoneDecreasing(t *testing.T) {
	m, err := DefaultCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for d := 0.0; d <= 20; d += 0.25 {
		v := m.Local(d)
		if v > prev+1e-12 {
			t.Fatalf("Local not monotone at d=%g: %g > %g", d, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("Local(%g) = %g outside [0,1]", d, v)
		}
		prev = v
	}
}

func TestNewCorrelationModelValidation(t *testing.T) {
	if _, err := NewCorrelationModel(0.3, 0.42, 15); err == nil {
		t.Fatal("floor > neighbor accepted")
	}
	if _, err := NewCorrelationModel(1.2, 0.42, 15); err == nil {
		t.Fatal("neighbor > 1 accepted")
	}
	if _, err := NewCorrelationModel(0.92, 0.42, 0.5); err == nil {
		t.Fatal("range <= 1 accepted")
	}
}

func TestGridModelReconstructsCorrelation(t *testing.T) {
	corr, _ := DefaultCorrelation()
	gm, err := NewGridModel(4, 3, 50, corr)
	if err != nil {
		t.Fatal(err)
	}
	if gm.N() != 12 {
		t.Fatalf("N = %d, want 12", gm.N())
	}
	// A A^T must reproduce the (PSD-clamped) correlation matrix.
	rec, err := mat.Mul(gm.A, gm.A.T())
	if err != nil {
		t.Fatal(err)
	}
	d, err := mat.MaxAbsDiff(rec, gm.C)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-6 {
		t.Fatalf("A A^T deviates from C by %g", d)
	}
}

func TestGridModelPseudoInverse(t *testing.T) {
	corr, _ := DefaultCorrelation()
	gm, err := NewGridModel(3, 3, 50, corr)
	if err != nil {
		t.Fatal(err)
	}
	// Ainv * A = identity on the retained components.
	prod, err := mat.Mul(gm.Ainv, gm.A)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mat.MaxAbsDiff(prod, mat.Identity(gm.Comps))
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-8 {
		t.Fatalf("Ainv A deviates from identity by %g", d)
	}
}

func TestGridModelNeighborCorrelation(t *testing.T) {
	corr, _ := DefaultCorrelation()
	gm, err := NewGridModel(5, 1, 50, corr)
	if err != nil {
		t.Fatal(err)
	}
	// Grid 0 and grid 1 are at distance 1 pitch.
	want := corr.Local(1)
	if got := gm.C.At(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("neighbor local correlation = %g, want %g", got, want)
	}
	// Distance 4 along the row.
	want4 := corr.Local(4)
	if got := gm.C.At(0, 4); math.Abs(got-want4) > 1e-12 {
		t.Fatalf("distance-4 correlation = %g, want %g", got, want4)
	}
}

func TestGridModelFromCenters(t *testing.T) {
	corr, _ := DefaultCorrelation()
	centers := [][2]float64{{25, 25}, {75, 25}, {25, 75}, {300, 300}}
	gm, err := NewGridModelFromCenters(50, corr, centers)
	if err != nil {
		t.Fatal(err)
	}
	if gm.N() != 4 {
		t.Fatalf("N = %d", gm.N())
	}
	// The far grid is beyond the correlation range from grid 0:
	// distance = hypot(275,275)/50 = 7.78 pitches -> within range 15, so
	// correlation is positive but small; distance from (25,25) to (75,25)
	// is exactly 1 pitch.
	if got := gm.C.At(0, 1); math.Abs(got-corr.Local(1)) > 1e-12 {
		t.Fatalf("center-based neighbor correlation wrong: %g", got)
	}
	if _, err := NewGridModelFromCenters(50, corr, nil); err == nil {
		t.Fatal("empty centers accepted")
	}
}

func TestGridModelValidation(t *testing.T) {
	corr, _ := DefaultCorrelation()
	if _, err := NewGridModel(0, 3, 50, corr); err == nil {
		t.Fatal("invalid grid accepted")
	}
	if _, err := NewGridModel(2, 2, 0, corr); err == nil {
		t.Fatal("invalid pitch accepted")
	}
}

func TestCholeskyLocal(t *testing.T) {
	corr, _ := DefaultCorrelation()
	gm, err := NewGridModel(4, 4, 50, corr)
	if err != nil {
		t.Fatal(err)
	}
	l, err := gm.CholeskyLocal()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mat.Mul(l, l.T())
	if err != nil {
		t.Fatal(err)
	}
	d, err := mat.MaxAbsDiff(rec, gm.C)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-6 {
		t.Fatalf("Cholesky reconstruction error %g", d)
	}
}

func TestGridCoeffRowVariance(t *testing.T) {
	corr, _ := DefaultCorrelation()
	gm, err := NewGridModel(6, 6, 50, corr)
	if err != nil {
		t.Fatal(err)
	}
	// Each grid's local variable has unit variance: |row of A|^2 = 1.
	for i := 0; i < gm.N(); i++ {
		var s float64
		for _, v := range gm.CoeffRow(i) {
			s += v * v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("grid %d variance = %g, want 1", i, s)
		}
	}
}
