package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Op names a Backend operation for fault filtering.
type Op string

// Backend operations.
const (
	OpPut        Op = "put"
	OpGet        Op = "get"
	OpDelete     Op = "delete"
	OpList       Op = "list"
	OpQuarantine Op = "quarantine"
)

// ErrInjected is the default error injected by a Fault backend.
var ErrInjected = errors.New("store: injected fault")

// FaultConfig selects which operations fail, and how. Deterministic
// triggers (FailEveryN, FailAfter, TornEveryN) count matching operations;
// FailProb draws from a seeded generator so runs replay exactly. Zero
// values disable each trigger.
type FaultConfig struct {
	// FailEveryN fails every Nth matching operation (1-indexed: with N=3
	// the 3rd, 6th, ... fail).
	FailEveryN int
	// FailAfter fails every matching operation once more than FailAfter
	// have completed — FailAfter 0 with any other trigger unset means
	// "fail everything" only when FailProb >= 1; use FailEveryN=1 for
	// always-fail, or FailAfter with Err for fail-from-here-on.
	// A negative FailAfter disables it.
	FailAfter int
	// FailProb fails each matching operation with this probability, drawn
	// from a rand seeded with Seed.
	FailProb float64
	// Seed seeds the FailProb generator.
	Seed int64
	// TornEveryN makes every Nth failing Put a torn write: half the
	// payload is stored, then the error is returned. Only meaningful for
	// backends without atomic Put semantics to simulate — the wrapper
	// bypasses the inner backend's atomicity by writing the prefix as a
	// normal Put.
	TornEveryN int
	// Latency is added to every matching operation before it runs.
	Latency time.Duration
	// Only restricts injection to the given ops; empty means all ops.
	Only map[Op]bool
	// Err overrides ErrInjected as the injected error.
	Err error
}

// Fault wraps a Backend and injects failures according to a FaultConfig.
// Configuration can be swapped at runtime with SetConfig (e.g. to flip a
// healthy store to 100% write failure mid-test and back). Counters report
// how many operations were seen, failed and torn.
type Fault struct {
	inner Backend

	mu    sync.Mutex
	cfg   FaultConfig
	rng   *rand.Rand
	ops   int
	fails int
	torn  int
}

// NewFault wraps inner with fault injection.
func NewFault(inner Backend, cfg FaultConfig) *Fault {
	f := &Fault{inner: inner}
	f.SetConfig(cfg)
	return f
}

// SetConfig replaces the fault configuration and reseeds the probability
// generator. Counters are not reset.
func (f *Fault) SetConfig(cfg FaultConfig) {
	if cfg.FailAfter == 0 {
		cfg.FailAfter = -1
	}
	f.mu.Lock()
	f.cfg = cfg
	f.rng = rand.New(rand.NewSource(cfg.Seed))
	f.mu.Unlock()
}

// Counters returns (operations seen, operations failed, torn writes).
func (f *Fault) Counters() (ops, fails, torn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops, f.fails, f.torn
}

// Inner returns the wrapped backend.
func (f *Fault) Inner() Backend { return f.inner }

// Kind implements Backend.
func (f *Fault) Kind() string { return "fault+" + f.inner.Kind() }

// decide records one matching operation and reports whether to inject,
// and whether a failing Put should be torn.
func (f *Fault) decide(op Op) (inject, tear bool, err error, latency time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cfg := f.cfg
	latency = cfg.Latency
	if len(cfg.Only) > 0 && !cfg.Only[op] {
		return false, false, nil, latency
	}
	f.ops++
	switch {
	case cfg.FailEveryN > 0 && f.ops%cfg.FailEveryN == 0:
		inject = true
	case cfg.FailAfter >= 0 && f.ops > cfg.FailAfter:
		inject = true
	case cfg.FailProb > 0 && f.rng.Float64() < cfg.FailProb:
		inject = true
	}
	if !inject {
		return false, false, nil, latency
	}
	f.fails++
	err = cfg.Err
	if err == nil {
		err = ErrInjected
	}
	err = fmt.Errorf("%s: %w", op, err)
	if op == OpPut && cfg.TornEveryN > 0 && f.fails%cfg.TornEveryN == 0 {
		f.torn++
		tear = true
	}
	return inject, tear, err, latency
}

func (f *Fault) wait(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Put implements Backend.
func (f *Fault) Put(ctx context.Context, key string, data []byte) error {
	inject, tear, ierr, latency := f.decide(OpPut)
	if err := f.wait(ctx, latency); err != nil {
		return err
	}
	if inject {
		if tear {
			// A torn write: the object ends up holding a truncated prefix,
			// as if the process died mid-write on a non-atomic store. The
			// envelope checksum is what catches this at read time.
			_ = f.inner.Put(ctx, key, data[:len(data)/2])
		}
		return ierr
	}
	return f.inner.Put(ctx, key, data)
}

// Get implements Backend.
func (f *Fault) Get(ctx context.Context, key string) ([]byte, error) {
	inject, _, ierr, latency := f.decide(OpGet)
	if err := f.wait(ctx, latency); err != nil {
		return nil, err
	}
	if inject {
		return nil, ierr
	}
	return f.inner.Get(ctx, key)
}

// Delete implements Backend.
func (f *Fault) Delete(ctx context.Context, key string) error {
	inject, _, ierr, latency := f.decide(OpDelete)
	if err := f.wait(ctx, latency); err != nil {
		return err
	}
	if inject {
		return ierr
	}
	return f.inner.Delete(ctx, key)
}

// List implements Backend.
func (f *Fault) List(ctx context.Context, prefix string) ([]string, error) {
	inject, _, ierr, latency := f.decide(OpList)
	if err := f.wait(ctx, latency); err != nil {
		return nil, err
	}
	if inject {
		return nil, ierr
	}
	return f.inner.List(ctx, prefix)
}

// Quarantine implements Backend.
func (f *Fault) Quarantine(ctx context.Context, key string) error {
	inject, _, ierr, latency := f.decide(OpQuarantine)
	if err := f.wait(ctx, latency); err != nil {
		return err
	}
	if inject {
		return ierr
	}
	return f.inner.Quarantine(ctx, key)
}
