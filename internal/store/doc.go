// Package store is the durable-state layer of the serving stack: a small
// pluggable key/value object store used to checkpoint timing sessions and
// extracted-model cache entries so a daemon restart does not drop every
// client mid-ECO (ROADMAP item 5a).
//
// The package deliberately stays dumb and dependency-free: keys are
// slash-separated paths, values are opaque byte blobs, and the only
// intelligence is the snapshot envelope (Seal/Open) that makes every blob
// self-describing — a magic string, a kind, a format version, the payload
// size and a CRC32-C checksum — so torn writes, truncation and version
// skew are detected at read time instead of corrupting a restore.
//
// Backends:
//
//   - FS: directory-backed, crash-safe via write-to-temp + atomic rename
//     (optionally fsynced), with a quarantine area for corrupt objects.
//   - Mem: mutex-guarded map, for tests and in-process checkpointing.
//   - Noop: accepts writes and remembers nothing — persistence disabled.
//   - Fault: a wrapper that deterministically injects errors, torn writes
//     and latency by op count or probability — the test harness that
//     proves the serving layer degrades gracefully when the store does
//     not.
//
// The write-behind pipeline that drives this interface lives in
// internal/server (checkpoint marking, bounded background flusher with
// Backoff retries, warm-start recovery); the snapshot payload formats live
// with their owners (internal/timing GraphSnapshot, ssta SessionSnapshot,
// internal/core model snapshots). The robustness contract threaded through
// all of it: a down, slow or corrupt store must never fail or slow an
// analysis — store trouble surfaces in metrics and health, never in
// request results.
package store
