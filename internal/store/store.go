package store

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// ErrNotFound is returned by Get (and Quarantine) for a key that has no
// object.
var ErrNotFound = errors.New("store: not found")

// Backend is a durable key/value object store. Keys are slash-separated
// relative paths (see ValidKey); values are opaque blobs — callers that
// want integrity protection wrap them with Seal/Open. Implementations must
// be safe for concurrent use and must make Put atomic per key: a reader
// observes either the old object or the new one, never a mix, even across
// a crash.
type Backend interface {
	// Kind names the backend for health reporting ("fs", "mem", ...).
	Kind() string
	// Put stores the object under key, replacing any previous object.
	Put(ctx context.Context, key string, data []byte) error
	// Get returns the object stored under key, or ErrNotFound.
	Get(ctx context.Context, key string) ([]byte, error)
	// Delete removes the object under key. Deleting a missing key is not
	// an error.
	Delete(ctx context.Context, key string) error
	// List returns the keys under the given prefix, sorted. Quarantined
	// objects are excluded.
	List(ctx context.Context, prefix string) ([]string, error)
	// Quarantine moves the object under key aside so it is never served
	// (or listed) again, preserving its bytes for post-mortem inspection
	// where the backend can. Returns ErrNotFound for a missing key.
	Quarantine(ctx context.Context, key string) error
}

// ValidKey checks the key syntax shared by every backend: one or more
// non-empty slash-separated segments of [A-Za-z0-9._=-], no "." or ".."
// segments, no leading or trailing slash. The restriction is what lets the
// filesystem backend map keys onto paths without escaping.
func ValidKey(key string) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	if len(key) > 512 {
		return fmt.Errorf("store: key longer than 512 bytes")
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" {
			return fmt.Errorf("store: key %q has an empty segment", key)
		}
		if seg == "." || seg == ".." {
			return fmt.Errorf("store: key %q has a relative segment", key)
		}
		for _, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			case r == '.', r == '_', r == '-', r == '=':
			default:
				return fmt.Errorf("store: key %q has invalid character %q", key, r)
			}
		}
	}
	return nil
}
