package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// backends under test, each fresh per call.
func testBackends(t *testing.T) map[string]Backend {
	t.Helper()
	fsb, err := NewFS(t.TempDir(), false)
	if err != nil {
		t.Fatalf("NewFS: %v", err)
	}
	fsSync, err := NewFS(t.TempDir(), true)
	if err != nil {
		t.Fatalf("NewFS(sync): %v", err)
	}
	return map[string]Backend{
		"fs":      fsb,
		"fs-sync": fsSync,
		"mem":     NewMem(),
	}
}

func TestBackendRoundTrip(t *testing.T) {
	ctx := context.Background()
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := b.Get(ctx, "sessions/s1.snap"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing: %v, want ErrNotFound", err)
			}
			data := []byte("hello durable world")
			if err := b.Put(ctx, "sessions/s1.snap", data); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := b.Get(ctx, "sessions/s1.snap")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("Get = %q, want %q", got, data)
			}
			// Overwrite replaces.
			if err := b.Put(ctx, "sessions/s1.snap", []byte("v2")); err != nil {
				t.Fatalf("Put v2: %v", err)
			}
			got, _ = b.Get(ctx, "sessions/s1.snap")
			if string(got) != "v2" {
				t.Fatalf("Get after overwrite = %q, want v2", got)
			}
			// List with prefix, sorted.
			if err := b.Put(ctx, "models/m1.snap", []byte("m")); err != nil {
				t.Fatalf("Put model: %v", err)
			}
			if err := b.Put(ctx, "sessions/s0.snap", []byte("s0")); err != nil {
				t.Fatalf("Put s0: %v", err)
			}
			keys, err := b.List(ctx, "sessions/")
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			want := []string{"sessions/s0.snap", "sessions/s1.snap"}
			if !reflect.DeepEqual(keys, want) {
				t.Fatalf("List = %v, want %v", keys, want)
			}
			all, err := b.List(ctx, "")
			if err != nil || len(all) != 3 {
				t.Fatalf("List all = %v (%v), want 3 keys", all, err)
			}
			// Delete is idempotent.
			if err := b.Delete(ctx, "sessions/s0.snap"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if err := b.Delete(ctx, "sessions/s0.snap"); err != nil {
				t.Fatalf("Delete again: %v", err)
			}
			if _, err := b.Get(ctx, "sessions/s0.snap"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get deleted: %v, want ErrNotFound", err)
			}
			// Quarantine hides the object from Get and List.
			if err := b.Quarantine(ctx, "sessions/s1.snap"); err != nil {
				t.Fatalf("Quarantine: %v", err)
			}
			if _, err := b.Get(ctx, "sessions/s1.snap"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get quarantined: %v, want ErrNotFound", err)
			}
			keys, _ = b.List(ctx, "")
			if !reflect.DeepEqual(keys, []string{"models/m1.snap"}) {
				t.Fatalf("List after quarantine = %v", keys)
			}
			if err := b.Quarantine(ctx, "sessions/none"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Quarantine missing: %v, want ErrNotFound", err)
			}
		})
	}
}

func TestNoopBackend(t *testing.T) {
	ctx := context.Background()
	var b Backend = NewNoop()
	if b.Kind() != "noop" {
		t.Fatalf("Kind = %q", b.Kind())
	}
	if err := b.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := b.Get(ctx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get: %v, want ErrNotFound", err)
	}
	if keys, err := b.List(ctx, ""); err != nil || len(keys) != 0 {
		t.Fatalf("List = %v, %v", keys, err)
	}
	if err := b.Delete(ctx, "k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := b.Quarantine(ctx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Quarantine: %v, want ErrNotFound", err)
	}
}

func TestValidKey(t *testing.T) {
	good := []string{"a", "a/b", "sessions/s-1_2.snap", "models/bench-c432=s1.snap",
		strings.Repeat("x", 512)}
	for _, k := range good {
		if err := ValidKey(k); err != nil {
			t.Errorf("ValidKey(%q) = %v, want nil", k, err)
		}
	}
	bad := []string{"", "/a", "a/", "a//b", ".", "..", "a/../b", "a/./b",
		"a b", "a\x00b", "α", strings.Repeat("x", 513)}
	for _, k := range bad {
		if err := ValidKey(k); err == nil {
			t.Errorf("ValidKey(%q) = nil, want error", k)
		}
	}
	ctx := context.Background()
	for name, b := range testBackends(t) {
		if err := b.Put(ctx, "../escape", []byte("x")); err == nil {
			t.Errorf("%s: Put(../escape) accepted", name)
		}
	}
}

func TestFSQuarantineReservedAndPreserved(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fsb, err := NewFS(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsb.Put(ctx, "quarantine/x", []byte("v")); err == nil {
		t.Fatal("Put under quarantine/ accepted")
	}
	if err := fsb.Put(ctx, "sessions/s1.snap", []byte("evidence")); err != nil {
		t.Fatal(err)
	}
	if err := fsb.Quarantine(ctx, "sessions/s1.snap"); err != nil {
		t.Fatal(err)
	}
	// Bytes preserved for post-mortem under the flattened name.
	got, err := os.ReadFile(filepath.Join(dir, "quarantine", "sessions__s1.snap"))
	if err != nil || string(got) != "evidence" {
		t.Fatalf("quarantined bytes: %q, %v", got, err)
	}
	// A second object quarantined at the same key gets a suffixed name.
	if err := fsb.Put(ctx, "sessions/s1.snap", []byte("evidence2")); err != nil {
		t.Fatal(err)
	}
	if err := fsb.Quarantine(ctx, "sessions/s1.snap"); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(filepath.Join(dir, "quarantine", "sessions__s1.snap.1"))
	if err != nil || string(got) != "evidence2" {
		t.Fatalf("second quarantined bytes: %q, %v", got, err)
	}
}

func TestFSListSkipsTempFiles(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fsb, err := NewFS(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsb.Put(ctx, "sessions/s1.snap", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Simulate an interrupted write: a stray temp file in the key dir.
	if err := os.WriteFile(filepath.Join(dir, "sessions", ".tmp-12345"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := fsb.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"sessions/s1.snap"}) {
		t.Fatalf("List = %v, want just the real object", keys)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"answer":42}`)
	blob := Seal("session", 3, payload)
	h, got, err := Open(blob)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if h.Kind != "session" || h.FormatVersion != 3 || h.Size != len(payload) {
		t.Fatalf("header = %+v", h)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
	if p, err := OpenKind(blob, "session", 3); err != nil || !bytes.Equal(p, payload) {
		t.Fatalf("OpenKind: %q, %v", p, err)
	}
	// Empty payload seals fine too.
	if _, _, err := Open(Seal("x", 1, nil)); err != nil {
		t.Fatalf("Open empty payload: %v", err)
	}
}

func TestEnvelopeCorruption(t *testing.T) {
	payload := []byte(`{"answer":42}`)
	blob := Seal("session", 1, payload)

	cases := map[string][]byte{
		"empty":          {},
		"no newline":     bytes.ReplaceAll(blob, []byte("\n"), []byte(" ")),
		"garbage":        []byte("not a snapshot at all"),
		"bad magic":      bytes.Replace(blob, []byte("sstad-snap"), []byte("xxxxx-snap"), 1),
		"truncated":      blob[:len(blob)-4],
		"extra bytes":    append(append([]byte{}, blob...), "tail"...),
		"flipped bit":    flipLastBit(blob),
		"header not obj": []byte("[1,2,3]\npayload"),
	}
	for name, data := range cases {
		if _, _, err := Open(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Open = %v, want ErrCorrupt", name, err)
		}
	}

	// Wrong kind / version are ErrVersion, not ErrCorrupt.
	if _, err := OpenKind(blob, "model", 1); !errors.Is(err, ErrVersion) {
		t.Errorf("wrong kind: %v, want ErrVersion", err)
	}
	if _, err := OpenKind(blob, "session", 2); !errors.Is(err, ErrVersion) {
		t.Errorf("wrong version: %v, want ErrVersion", err)
	}
}

func flipLastBit(b []byte) []byte {
	out := append([]byte{}, b...)
	out[len(out)-1] ^= 1
	return out
}

func TestFaultDeterministicEveryN(t *testing.T) {
	ctx := context.Background()
	f := NewFault(NewMem(), FaultConfig{FailEveryN: 3})
	if f.Kind() != "fault+mem" {
		t.Fatalf("Kind = %q", f.Kind())
	}
	var errs []bool
	for i := 0; i < 9; i++ {
		errs = append(errs, f.Put(ctx, "k", []byte("v")) != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	if !reflect.DeepEqual(errs, want) {
		t.Fatalf("failure pattern %v, want %v", errs, want)
	}
	ops, fails, torn := f.Counters()
	if ops != 9 || fails != 3 || torn != 0 {
		t.Fatalf("counters = %d/%d/%d", ops, fails, torn)
	}
}

func TestFaultFailAfter(t *testing.T) {
	ctx := context.Background()
	f := NewFault(NewMem(), FaultConfig{FailAfter: 2})
	for i := 0; i < 2; i++ {
		if err := f.Put(ctx, "k", []byte("v")); err != nil {
			t.Fatalf("op %d failed early: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := f.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrInjected) {
			t.Fatalf("op after threshold: %v, want ErrInjected", err)
		}
	}
}

func TestFaultProbabilitySeededReplay(t *testing.T) {
	ctx := context.Background()
	// Same seed → identical injected-failure pattern.
	f1 := NewFault(NewMem(), FaultConfig{FailProb: 0.5, Seed: 42})
	f2 := NewFault(NewMem(), FaultConfig{FailProb: 0.5, Seed: 42})
	var p1, p2 []bool
	for i := 0; i < 32; i++ {
		p1 = append(p1, errors.Is(f1.Put(ctx, "k", nil), ErrInjected))
		p2 = append(p2, errors.Is(f2.Put(ctx, "k", nil), ErrInjected))
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same seed diverged:\n%v\n%v", p1, p2)
	}
	injected := 0
	for _, v := range p1 {
		if v {
			injected++
		}
	}
	if injected == 0 || injected == 32 {
		t.Fatalf("prob 0.5 injected %d/32 — generator not wired", injected)
	}
}

func TestFaultTornWrite(t *testing.T) {
	ctx := context.Background()
	mem := NewMem()
	f := NewFault(mem, FaultConfig{FailEveryN: 1, TornEveryN: 1})
	blob := Seal("session", 1, []byte(`{"big":"payload that will be torn in half"}`))
	if err := f.Put(ctx, "sessions/s1.snap", blob); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put: %v, want ErrInjected", err)
	}
	// The inner backend holds a truncated prefix...
	got, err := mem.Get(ctx, "sessions/s1.snap")
	if err != nil {
		t.Fatalf("inner Get: %v", err)
	}
	if len(got) != len(blob)/2 {
		t.Fatalf("torn write stored %d bytes, want %d", len(got), len(blob)/2)
	}
	// ...which the envelope rejects as corrupt.
	if _, _, err := Open(got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(torn) = %v, want ErrCorrupt", err)
	}
	_, _, torn := f.Counters()
	if torn != 1 {
		t.Fatalf("torn counter = %d", torn)
	}
}

func TestFaultOnlyFilterAndRuntimeFlip(t *testing.T) {
	ctx := context.Background()
	f := NewFault(NewMem(), FaultConfig{FailEveryN: 1, Only: map[Op]bool{OpPut: true}})
	if err := f.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put: %v, want ErrInjected", err)
	}
	// Gets are not in the filter: pass through (and don't count as ops).
	if _, err := f.Get(ctx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get: %v, want ErrNotFound passthrough", err)
	}
	// Flip to healthy at runtime.
	f.SetConfig(FaultConfig{})
	if err := f.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
	if got, err := f.Get(ctx, "k"); err != nil || string(got) != "v" {
		t.Fatalf("Get after heal: %q, %v", got, err)
	}
}

func TestFaultCustomErrAndLatency(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("disk on fire")
	f := NewFault(NewMem(), FaultConfig{FailEveryN: 1, Err: boom, Latency: time.Millisecond})
	start := time.Now()
	err := f.Put(ctx, "k", []byte("v"))
	if !errors.Is(err, boom) {
		t.Fatalf("Put: %v, want custom error", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatalf("latency not applied")
	}
	// Latency respects context cancellation.
	slow := NewFault(NewMem(), FaultConfig{Latency: 10 * time.Second})
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := slow.Put(cctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency: %v", err)
	}
}
