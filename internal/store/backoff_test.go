package store

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: 400 * time.Millisecond}
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
		400 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := b.Delay(0); got != 50*time.Millisecond {
		t.Errorf("Delay(0) = %v, want base", got)
	}
}

func TestBackoffJitterBoundsDeterministic(t *testing.T) {
	// Rand pinned to 0 → scale 1-Jitter; pinned just under 1 → near 1+Jitter.
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.5,
		Rand: func() float64 { return 0 }}
	if got := b.jittered(b.Delay(1)); got != 50*time.Millisecond {
		t.Errorf("jittered(base) with rand=0: got %v, want 50ms", got)
	}
	b.Rand = func() float64 { return 1 }
	if got := b.jittered(b.Delay(1)); got != 150*time.Millisecond {
		t.Errorf("jittered(base) with rand=1: got %v, want 150ms", got)
	}
	// Jitter never exceeds the cap.
	b.Cap = 120 * time.Millisecond
	if got := b.jittered(b.Delay(1)); got != 120*time.Millisecond {
		t.Errorf("jittered above cap: got %v, want cap 120ms", got)
	}
}

// fakeClock records requested sleeps without waiting.
type fakeClock struct {
	slept []time.Duration
}

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.slept = append(c.slept, d)
	return nil
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	clock := &fakeClock{}
	b := Backoff{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond,
		MaxAttempts: 10, Sleep: clock.sleep}
	calls := 0
	err := b.Retry(context.Background(), func() error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clock.slept, want)
	}
	for i := range want {
		if clock.slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, clock.slept[i], want[i])
		}
	}
}

func TestRetryExhaustsMaxAttempts(t *testing.T) {
	clock := &fakeClock{}
	b := Backoff{Base: time.Millisecond, Cap: time.Millisecond, MaxAttempts: 3, Sleep: clock.sleep}
	calls := 0
	boom := errors.New("still down")
	err := b.Retry(context.Background(), func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(clock.slept) != 2 {
		t.Fatalf("slept %d times, want 2 (no sleep after final attempt)", len(clock.slept))
	}
}

func TestRetryPermanentShortCircuits(t *testing.T) {
	clock := &fakeClock{}
	b := Backoff{Base: time.Millisecond, Cap: time.Millisecond, MaxAttempts: 10, Sleep: clock.sleep}
	calls := 0
	inner := errors.New("bad key")
	err := b.Retry(context.Background(), func() error { calls++; return Permanent(inner) })
	if !errors.Is(err, inner) {
		t.Fatalf("err = %v, want %v", err, inner)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if len(clock.slept) != 0 {
		t.Fatalf("slept %v, want none", clock.slept)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) should be nil")
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Backoff{Base: time.Millisecond, Cap: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		}}
	calls := 0
	boom := errors.New("down")
	err := b.Retry(ctx, func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled during first sleep)", calls)
	}
	// Already-cancelled context: no call at all.
	calls = 0
	err = b.Retry(ctx, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("calls = %d, want 0", calls)
	}
}
