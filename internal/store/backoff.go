package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Backoff retries an operation with capped, jittered exponential delays.
// The zero value is unusable; use DefaultBackoff or fill in the fields.
// Rand and Sleep exist so tests can drive the schedule deterministically
// without real time.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Cap bounds each delay after jitter.
	Cap time.Duration
	// MaxAttempts bounds total calls to the operation (first try
	// included). Zero or negative means retry forever (until ctx ends or
	// the error is permanent).
	MaxAttempts int
	// Jitter is the fraction of each delay that is randomized: delay is
	// drawn uniformly from [d*(1-Jitter), d*(1+Jitter)], then capped.
	Jitter float64
	// Rand supplies the jitter draws; nil uses a shared seeded source.
	Rand func() float64
	// Sleep waits for d or until ctx is done; nil uses a timer. Tests
	// inject a recorder here.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultBackoff is the flusher's retry schedule: 50ms doubling to a 5s
// cap with ±50% jitter, retrying until the flush deadline cancels it.
func DefaultBackoff() Backoff {
	return Backoff{Base: 50 * time.Millisecond, Cap: 5 * time.Second, Jitter: 0.5}
}

// permanentError marks an error that Retry must not retry.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry stops immediately and returns the
// underlying error. Use it for failures more attempts cannot fix
// (invalid key, corrupt input).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Delay returns the pre-jitter delay before retry number attempt
// (attempt 1 follows the first failure).
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= b.Cap {
			return b.Cap
		}
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	return d
}

// jittered applies Jitter and Cap to a base delay.
func (b Backoff) jittered(d time.Duration) time.Duration {
	if b.Jitter > 0 {
		f := b.Rand
		if f == nil {
			f = defaultRand
		}
		// Uniform in [1-Jitter, 1+Jitter).
		scale := 1 - b.Jitter + 2*b.Jitter*f()
		d = time.Duration(float64(d) * scale)
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Retry runs fn until it succeeds, returns a Permanent error, the context
// ends, or MaxAttempts is exhausted. The returned error is the last error
// from fn (unwrapped from Permanent), or the context error if the wait
// was interrupted.
func (b Backoff) Retry(ctx context.Context, fn func() error) error {
	sleep := b.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (gave up: %v)", lastErr, err)
			}
			return err
		}
		err := fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
		if b.MaxAttempts > 0 && attempt >= b.MaxAttempts {
			return lastErr
		}
		if err := sleep(ctx, b.jittered(b.Delay(attempt))); err != nil {
			return fmt.Errorf("%w (gave up: %v)", lastErr, err)
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

var jitterRng = rand.New(rand.NewSource(1))
var jitterMu = make(chan struct{}, 1)

// defaultRand is a locked draw from a package-level seeded source.
func defaultRand() float64 {
	jitterMu <- struct{}{}
	v := jitterRng.Float64()
	<-jitterMu
	return v
}
