package store

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mem is the in-memory backend: a mutex-guarded map, for tests and for
// processes that want checkpoint semantics without durability. Values are
// copied on Put and Get so callers can never alias store-internal state.
type Mem struct {
	mu          sync.Mutex
	objects     map[string][]byte
	quarantined map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		objects:     make(map[string][]byte),
		quarantined: make(map[string][]byte),
	}
}

// Kind implements Backend.
func (m *Mem) Kind() string { return "mem" }

// Put implements Backend.
func (m *Mem) Put(ctx context.Context, key string, data []byte) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.objects[key] = cp
	m.mu.Unlock()
	return nil
}

// Get implements Backend.
func (m *Mem) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ValidKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	data, ok := m.objects[key]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete implements Backend.
func (m *Mem) Delete(ctx context.Context, key string) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.objects, key)
	m.mu.Unlock()
	return nil
}

// List implements Backend.
func (m *Mem) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	keys := make([]string, 0, len(m.objects))
	for k := range m.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}

// Quarantine implements Backend.
func (m *Mem) Quarantine(ctx context.Context, key string) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objects[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	delete(m.objects, key)
	m.quarantined[key] = data
	return nil
}

// Len reports the number of live (non-quarantined) objects.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.objects)
}

// Quarantined returns the quarantined keys, sorted — test introspection.
func (m *Mem) Quarantined() []string {
	m.mu.Lock()
	keys := make([]string, 0, len(m.quarantined))
	for k := range m.quarantined {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Corrupt overwrites the stored bytes of key in place without copying
// semantics changes — a test hook to simulate at-rest bit rot (the FS
// analogue is writing garbage into the file).
func (m *Mem) Corrupt(key string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.objects[key] = cp
	m.mu.Unlock()
}
