package store

import (
	"context"
	"fmt"
)

// Noop is the persistence-disabled backend: writes succeed and are
// forgotten, reads find nothing. It lets the serving layer keep one code
// path whether or not a store is configured.
type Noop struct{}

// NewNoop returns the no-op backend.
func NewNoop() Noop { return Noop{} }

// Kind implements Backend.
func (Noop) Kind() string { return "noop" }

// Put implements Backend.
func (Noop) Put(ctx context.Context, key string, data []byte) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	return ctx.Err()
}

// Get implements Backend.
func (Noop) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ValidKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
}

// Delete implements Backend.
func (Noop) Delete(ctx context.Context, key string) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	return ctx.Err()
}

// List implements Backend.
func (Noop) List(ctx context.Context, prefix string) ([]string, error) {
	return nil, ctx.Err()
}

// Quarantine implements Backend.
func (Noop) Quarantine(ctx context.Context, key string) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: %s", ErrNotFound, key)
}
