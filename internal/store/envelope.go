package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// Snapshot envelope: every durable object is a one-line JSON header
// followed by the raw payload bytes,
//
//	{"magic":"sstad-snap","kind":"session","format_version":1,"size":N,"crc32c":C}\n<payload>
//
// The header makes the blob self-describing (kind + format version drive
// quarantine decisions on skew) and the size + CRC32-C pair detects
// truncation, torn writes and bit rot before a decoder ever sees the
// payload. The payload itself stays uninterpreted here — typically JSON,
// still greppable on disk.

// envelopeMagic identifies a sealed snapshot.
const envelopeMagic = "sstad-snap"

// maxHeaderBytes bounds the header line scan so a garbage blob with no
// newline fails fast instead of being searched end to end.
const maxHeaderBytes = 1024

// ErrCorrupt marks an object that failed envelope validation: missing or
// malformed header, size mismatch (truncated or torn write), or checksum
// mismatch. Callers quarantine on it.
var ErrCorrupt = errors.New("store: corrupt snapshot")

// ErrVersion marks an object whose kind or format version does not match
// what the caller expects — written by a different (usually newer) build.
// Callers quarantine on it too: skew must never abort a boot.
var ErrVersion = errors.New("store: snapshot version mismatch")

// Header is the decoded envelope header.
type Header struct {
	Magic         string `json:"magic"`
	Kind          string `json:"kind"`
	FormatVersion int    `json:"format_version"`
	Size          int    `json:"size"`
	CRC32C        uint32 `json:"crc32c"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps payload in a checksummed envelope of the given kind and
// format version.
func Seal(kind string, formatVersion int, payload []byte) []byte {
	h := Header{
		Magic:         envelopeMagic,
		Kind:          kind,
		FormatVersion: formatVersion,
		Size:          len(payload),
		CRC32C:        crc32.Checksum(payload, castagnoli),
	}
	// Header marshaling cannot fail: fixed struct of strings and ints.
	hb, err := json.Marshal(&h)
	if err != nil {
		panic(fmt.Sprintf("store: marshal envelope header: %v", err))
	}
	out := make([]byte, 0, len(hb)+1+len(payload))
	out = append(out, hb...)
	out = append(out, '\n')
	out = append(out, payload...)
	return out
}

// Open validates the envelope and returns the header and payload. Every
// failure wraps ErrCorrupt.
func Open(data []byte) (Header, []byte, error) {
	var h Header
	limit := len(data)
	if limit > maxHeaderBytes {
		limit = maxHeaderBytes
	}
	nl := bytes.IndexByte(data[:limit], '\n')
	if nl < 0 {
		return h, nil, fmt.Errorf("%w: no header line", ErrCorrupt)
	}
	if err := json.Unmarshal(data[:nl], &h); err != nil {
		return h, nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if h.Magic != envelopeMagic {
		return h, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, h.Magic)
	}
	payload := data[nl+1:]
	if h.Size != len(payload) {
		return h, nil, fmt.Errorf("%w: payload is %d bytes, header says %d (truncated or torn write)",
			ErrCorrupt, len(payload), h.Size)
	}
	if got := crc32.Checksum(payload, castagnoli); got != h.CRC32C {
		return h, nil, fmt.Errorf("%w: crc32c %08x, header says %08x", ErrCorrupt, got, h.CRC32C)
	}
	return h, payload, nil
}

// OpenKind is Open plus the kind/version check every decoder performs:
// envelope failures wrap ErrCorrupt, a valid envelope of the wrong kind or
// format version wraps ErrVersion.
func OpenKind(data []byte, kind string, formatVersion int) ([]byte, error) {
	h, payload, err := Open(data)
	if err != nil {
		return nil, err
	}
	if h.Kind != kind {
		return nil, fmt.Errorf("%w: kind %q, want %q", ErrVersion, h.Kind, kind)
	}
	if h.FormatVersion != formatVersion {
		return nil, fmt.Errorf("%w: %s format version %d, want %d", ErrVersion, kind, h.FormatVersion, formatVersion)
	}
	return payload, nil
}
