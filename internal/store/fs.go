package store

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// quarantineDir is the subdirectory of an FS root where corrupt objects
// are moved. It is never listed and its keys are invalid Backend keys, so
// quarantined objects can never be served again.
const quarantineDir = "quarantine"

// FS is the directory-backed store: each key maps to a file under the
// root. Writes are crash-safe — data goes to a temporary file in the
// target directory and is atomically renamed over the destination, so a
// kill -9 at any instant leaves either the old object or the new one,
// never a torn mix (a stray temp file at worst, which List ignores).
// With syncWrites, the file is fsynced before the rename and the
// directory after it, extending the guarantee from process crash to power
// loss.
type FS struct {
	root string
	sync bool

	// renameMu serializes quarantine renames so concurrent quarantines of
	// distinct keys cannot race picking the same aside-name.
	renameMu sync.Mutex
}

// NewFS opens (creating if needed) a filesystem store rooted at dir.
func NewFS(dir string, syncWrites bool) (*FS, error) {
	if dir == "" {
		return nil, errors.New("store: empty fs root")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: fs root: %w", err)
	}
	return &FS{root: dir, sync: syncWrites}, nil
}

// Root returns the root directory.
func (f *FS) Root() string { return f.root }

// Kind implements Backend.
func (f *FS) Kind() string { return "fs" }

func (f *FS) path(key string) (string, error) {
	if err := ValidKey(key); err != nil {
		return "", err
	}
	if key == quarantineDir || strings.HasPrefix(key, quarantineDir+"/") {
		return "", fmt.Errorf("store: key %q is reserved", key)
	}
	return filepath.Join(f.root, filepath.FromSlash(key)), nil
}

// Put implements Backend with write-to-temp + atomic rename.
func (f *FS) Put(ctx context.Context, key string, data []byte) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if f.sync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if f.sync {
		if err := syncDir(dir); err != nil {
			return fmt.Errorf("store: put %s: %w", key, err)
		}
	}
	return nil
}

// Get implements Backend.
func (f *FS) Get(ctx context.Context, key string) ([]byte, error) {
	p, err := f.path(key)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: get %s: %w", key, err)
	}
	return data, nil
}

// Delete implements Backend.
func (f *FS) Delete(ctx context.Context, key string) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	return nil
}

// List implements Backend, walking the root and skipping the quarantine
// area and temp files left by interrupted writes.
func (f *FS) List(ctx context.Context, prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(f.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil // raced with a delete
			}
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		rel, rerr := filepath.Rel(f.root, p)
		if rerr != nil {
			return rerr
		}
		key := filepath.ToSlash(rel)
		if d.IsDir() {
			if key == quarantineDir {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			return nil
		}
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", prefix, err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Quarantine implements Backend: the object is renamed into the
// quarantine directory under a flattened, collision-avoiding name, so its
// bytes survive for inspection but it never resolves or lists again.
func (f *FS) Quarantine(ctx context.Context, key string) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	qdir := filepath.Join(f.root, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: quarantine %s: %w", key, err)
	}
	base := strings.ReplaceAll(key, "/", "__")
	f.renameMu.Lock()
	defer f.renameMu.Unlock()
	dst := filepath.Join(qdir, base)
	for n := 1; ; n++ {
		if _, err := os.Lstat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, n))
	}
	if err := os.Rename(p, dst); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return fmt.Errorf("store: quarantine %s: %w", key, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
