package mc

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/canon"
	"repro/internal/stats"
	"repro/internal/timing"
)

// This file extends the structural Monte Carlo oracle to sequential timing:
// scalar shortest-path propagation (the sampling dual of the analytic
// earliest-arrival pass) and per-register setup/hold slack sampling against
// a clock spec. The slack sampler mirrors timing.SequentialSlacks exactly —
// same launch sources, same constraint structure, same jitter placement — so
// disagreement isolates the Clark min/max moment matching, not modeling
// differences.

// shortestFrom runs a scalar shortest-path pass from the given source
// vertices and returns the arrival array (shared scratch; +Inf marks
// unreachable vertices; valid until the next longestFrom/shortestFrom call).
func (s *sampler) shortestFrom(sources []int) []float64 {
	for i := range s.arr {
		s.arr[i] = math.Inf(1)
	}
	for _, src := range sources {
		s.arr[src] = 0
	}
	for _, v := range s.order {
		av := s.arr[v]
		if math.IsInf(av, 1) {
			continue
		}
		for _, ei := range s.g.Out[v] {
			e := &s.g.Edges[ei]
			if cand := av + s.delays[ei]; cand < s.arr[e.To] {
				s.arr[e.To] = cand
			}
		}
	}
	return s.arr
}

// MinDelaySamples draws cfg.Samples realizations of the shortest-path
// circuit delay (min over outputs, every launch source at time zero) — the
// sampling reference for timing.MinDelay.
func MinDelaySamples(g *timing.Graph, cfg Config) ([]float64, error) {
	cfg = cfg.normalize()
	out := make([]float64, cfg.Samples)
	err := forEachSample(g, cfg, func(s *sampler, idx int, rng *rand.Rand) {
		s.draw(rng)
		arr := s.shortestFrom(s.g.LaunchSources())
		best := math.Inf(1)
		for _, o := range s.g.Outputs {
			if arr[o] < best {
				best = arr[o]
			}
		}
		out[idx] = best
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SeqSamples holds per-sample worst-case slack draws over all registers.
type SeqSamples struct {
	WorstSetup []float64
	WorstHold  []float64
}

// SequentialSamples draws cfg.Samples realizations of the design's worst
// setup and hold slack under the clock. Per sample: one parameter draw fixes
// every edge delay and register constraint; scalar longest- and
// shortest-path passes give each register's latest/earliest D arrival; the
// capture-edge jitter is an independent normal per register and per check,
// exactly as the analytic slack forms place it in the private random part.
func SequentialSamples(g *timing.Graph, clock timing.ClockSpec, cfg Config) (*SeqSamples, error) {
	if !g.Sequential() {
		return nil, errors.New("mc: graph has no registers")
	}
	if clock.PeriodPS == 0 {
		clock = timing.DefaultClock()
	}
	cfg = cfg.normalize()
	out := &SeqSamples{
		WorstSetup: make([]float64, cfg.Samples),
		WorstHold:  make([]float64, cfg.Samples),
	}
	launch := g.LaunchSources()
	err := forEachSample(g, cfg, func(s *sampler, idx int, rng *rand.Rand) {
		s.draw(rng)
		// longestFrom and shortestFrom share the arrival scratch; copy the
		// max arrivals at the D pins before running the min pass.
		arrMax := s.longestFrom(launch)
		dMax := make([]float64, len(g.Registers))
		for ri := range g.Registers {
			dMax[ri] = arrMax[g.Registers[ri].D]
		}
		arrMin := s.shortestFrom(launch)

		worstSetup, worstHold := math.Inf(1), math.Inf(1)
		for ri := range g.Registers {
			r := &g.Registers[ri]
			if math.IsInf(dMax[ri], -1) {
				continue // D cone cut off from every launch source
			}
			setupC := sampleConstraint(s, r.Setup.Nominal, r.Setup.Glob, r.SetupLSens, r.Grid, r.Setup.Rand, rng)
			holdC := sampleConstraint(s, r.Hold.Nominal, r.Hold.Glob, r.HoldLSens, r.Grid, r.Hold.Rand, rng)

			setup := (clock.PeriodPS - clock.SkewPS) - setupC - dMax[ri] + clock.JitterPS*rng.NormFloat64()
			hold := arrMin[r.D] - holdC - clock.SkewPS + clock.JitterPS*rng.NormFloat64()
			if setup < worstSetup {
				worstSetup = setup
			}
			if hold < worstHold {
				worstHold = hold
			}
		}
		out.WorstSetup[idx] = worstSetup
		out.WorstHold[idx] = worstHold
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sampleConstraint draws one register constraint value from its structural
// ground truth: global coefficients against the shared parameter draw,
// local sensitivities against the correlated grid locals, and the collapsed
// private randomness as one independent normal.
func sampleConstraint(s *sampler, nominal float64, glob, lsens []float64, grid int, randC float64, rng *rand.Rand) float64 {
	v := nominal
	for p, c := range glob {
		v += c * s.glob[p]
	}
	if grid >= 0 {
		for p, c := range lsens {
			v += c * s.locs[p][grid]
		}
	}
	if randC != 0 {
		v += randC * rng.NormFloat64()
	}
	return v
}

// SeqValidationReport is the outcome of a sequential differential run: one
// report per slack kind.
type SeqValidationReport struct {
	Setup *ValidationReport
	Hold  *ValidationReport
	OK    bool
}

// ValidateSequential is the sequential differential oracle: it computes the
// analytic worst setup/hold slack (timing.SequentialSlacks) and checks both
// against their Monte Carlo estimates within tol.
func ValidateSequential(g *timing.Graph, clock timing.ClockSpec, cfg Config, tol Tolerance) (*SeqValidationReport, error) {
	cfg = cfg.normalize()
	res, err := g.SequentialSlacks(clock)
	if err != nil {
		return nil, err
	}
	samples, err := SequentialSamples(g, res.Clock, cfg)
	if err != nil {
		return nil, err
	}
	check := func(analytic *canon.Form, draws []float64) *ValidationReport {
		s := stats.Summarize(draws)
		rep := &ValidationReport{
			Samples:       cfg.Samples,
			Sampler:       "structural",
			AnalyticMean:  analytic.Mean(),
			AnalyticStd:   analytic.Std(),
			EmpiricalMean: s.Mean,
			EmpiricalStd:  s.Std,
		}
		// Slack means sit near zero by design, so relative error against the
		// mean is ill-conditioned; scale disagreements by the distribution
		// width instead (sigma-relative mean error).
		scale := math.Max(s.Std, 1e-9)
		rep.MeanErr = math.Abs(rep.AnalyticMean-s.Mean) / scale
		rep.SigmaErr = relErr(rep.AnalyticStd, s.Std)
		rep.OK = rep.MeanErr <= tol.Mean && rep.SigmaErr <= tol.Sigma
		return rep
	}
	out := &SeqValidationReport{
		Setup: check(res.WorstSetup, samples.WorstSetup),
		Hold:  check(res.WorstHold, samples.WorstHold),
	}
	out.OK = out.Setup.OK && out.Hold.OK
	return out, nil
}
