package mc

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/place"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/variation"
)

func buildGraph(t *testing.T, c *circuit.Circuit) (*timing.Graph, *place.Plan) {
	t.Helper()
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, _ := variation.DefaultCorrelation()
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := timing.Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	return g, plan
}

func TestStructuralMCMatchesAnalytic(t *testing.T) {
	g, _ := buildGraph(t, circuit.C17())
	md, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MaxDelaySamples(g, Config{Samples: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(samples)
	if rel := math.Abs(s.Mean-md.Mean()) / md.Mean(); rel > 0.02 {
		t.Fatalf("MC mean %g vs analytic %g (rel %g)", s.Mean, md.Mean(), rel)
	}
	if rel := math.Abs(s.Std-md.Std()) / md.Std(); rel > 0.10 {
		t.Fatalf("MC std %g vs analytic %g (rel %g)", s.Std, md.Std(), rel)
	}
}

func TestStructuralAndCanonicalAgree(t *testing.T) {
	// The structural sampler (exact grid covariance) and the canonical
	// sampler (PCA space) must produce the same distribution — this bounds
	// the PCA clamping error.
	spec, _ := circuit.SpecByName("c432")
	c, err := circuit.Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := buildGraph(t, c)
	a, err := MaxDelaySamples(g, Config{Samples: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalMaxDelaySamples(g, Config{Samples: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := stats.Summarize(a), stats.Summarize(b)
	if rel := math.Abs(sa.Mean-sb.Mean) / sa.Mean; rel > 0.01 {
		t.Fatalf("means diverge: %g vs %g", sa.Mean, sb.Mean)
	}
	if rel := math.Abs(sa.Std-sb.Std) / sa.Std; rel > 0.08 {
		t.Fatalf("stds diverge: %g vs %g", sa.Std, sb.Std)
	}
}

func TestAllPairsStats(t *testing.T) {
	g, _ := buildGraph(t, circuit.C17())
	ps, err := AllPairsStats(g, Config{Samples: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := g.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ap.M {
		for j := range ap.M[i] {
			form := ap.M[i][j]
			if (form != nil) != ps.Reachable[i][j] {
				t.Fatalf("pair (%d,%d) reachability mismatch", i, j)
			}
			if form == nil {
				continue
			}
			if rel := math.Abs(ps.Mean[i][j]-form.Mean()) / form.Mean(); rel > 0.02 {
				t.Fatalf("pair (%d,%d): MC mean %g vs analytic %g", i, j, ps.Mean[i][j], form.Mean())
			}
			if rel := math.Abs(ps.Std[i][j]-form.Std()) / form.Std(); rel > 0.12 {
				t.Fatalf("pair (%d,%d): MC std %g vs analytic %g", i, j, ps.Std[i][j], form.Std())
			}
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g, _ := buildGraph(t, circuit.C17())
	a, err := MaxDelaySamples(g, Config{Samples: 500, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxDelaySamples(g, Config{Samples: 500, Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across worker counts: %g vs %g", i, a[i], b[i])
		}
	}
	c, err := MaxDelaySamples(g, Config{Samples: 500, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestRejectsModelGraphs(t *testing.T) {
	g, _ := buildGraph(t, circuit.C17())
	m, err := core.Extract(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MaxDelaySamples(m.Graph, Config{Samples: 10}); err == nil {
		t.Fatal("structural sampling of an extracted model accepted")
	}
	// Canonical sampling of models is fine.
	if _, err := CanonicalMaxDelaySamples(m.Graph, Config{Samples: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchicalAgainstFlattenedMC is the miniature of the paper's Fig. 7
// validation: the proposed hierarchical analysis must match Monte Carlo on
// the flattened design, and the global-only baseline must deviate.
func TestHierarchicalAgainstFlattenedMC(t *testing.T) {
	mult, err := circuit.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	g, plan := buildGraph(t, mult)
	model, err := core.Extract(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := hier.NewModule("mult4", model, plan)
	if err != nil {
		t.Fatal(err)
	}
	mod.Orig = g

	corr, _ := variation.DefaultCorrelation()
	w, h := mod.Width(), mod.Height()
	d := &hier.Design{
		Name: "quad", Width: 2 * w, Height: 2 * h, Pitch: mod.Pitch,
		Corr: corr, Params: variation.Nassif90nm(),
		Instances: []*hier.Instance{
			{Name: "A", Module: mod, OriginX: 0, OriginY: 0},
			{Name: "B", Module: mod, OriginX: 0, OriginY: h},
			{Name: "C", Module: mod, OriginX: w, OriginY: 0},
			{Name: "D", Module: mod, OriginX: w, OriginY: h},
		},
	}
	ins := model.Graph.InputNames
	outs := model.Graph.OutputNames
	for k := 0; k < len(outs) && k < len(ins); k++ {
		d.Nets = append(d.Nets,
			hier.Net{From: hier.PortRef{Instance: "A", Port: outs[k]}, To: hier.PortRef{Instance: "D", Port: ins[k]}},
			hier.Net{From: hier.PortRef{Instance: "B", Port: outs[k]}, To: hier.PortRef{Instance: "C", Port: ins[k]}},
		)
	}
	for _, in := range ins {
		d.PrimaryInputs = append(d.PrimaryInputs,
			hier.PortRef{Instance: "A", Port: in}, hier.PortRef{Instance: "B", Port: in})
	}
	for _, out := range outs {
		d.PrimaryOutputs = append(d.PrimaryOutputs,
			hier.PortRef{Instance: "C", Port: out}, hier.PortRef{Instance: "D", Port: out})
	}

	res, err := d.Analyze(hier.FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	resGlob, err := d.Analyze(hier.GlobalOnly)
	if err != nil {
		t.Fatal(err)
	}
	flat, _, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MaxDelaySamples(flat, Config{Samples: 6000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(samples)

	if rel := math.Abs(res.Delay.Mean()-s.Mean) / s.Mean; rel > 0.02 {
		t.Fatalf("proposed mean %g vs MC %g (rel %g)", res.Delay.Mean(), s.Mean, rel)
	}
	if rel := math.Abs(res.Delay.Std()-s.Std) / s.Std; rel > 0.12 {
		t.Fatalf("proposed std %g vs MC %g (rel %g)", res.Delay.Std(), s.Std, rel)
	}
	// The global-only baseline must underestimate the spread by a clear
	// margin (paper Fig. 7).
	if resGlob.Delay.Std() >= s.Std*0.95 {
		t.Fatalf("global-only std %g not clearly below MC std %g", resGlob.Delay.Std(), s.Std)
	}
	// KS distance of the MC sample against the proposed Gaussian should be
	// small; against the global-only Gaussian visibly larger.
	ecdf, err := stats.NewECDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	ksFull := ecdf.KSAgainst(res.Delay.CDF)
	ksGlob := ecdf.KSAgainst(resGlob.Delay.CDF)
	if ksFull > 0.05 {
		t.Fatalf("KS(proposed, MC) = %g too large", ksFull)
	}
	if ksGlob < ksFull {
		t.Fatalf("global-only KS %g unexpectedly better than proposed %g", ksGlob, ksFull)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalize()
	if c.Samples != 10000 || c.Workers <= 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}
