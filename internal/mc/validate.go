package mc

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/timing"
)

// Tolerance bounds the relative disagreement Validate accepts between the
// canonical-form analytics and the empirical Monte Carlo estimates. Mean
// bounds |analytic mean - MC mean| / MC mean; Sigma the same for standard
// deviations. Sigma tolerances must budget both the model error (Clark max
// is exact only for two jointly Gaussian operands) and the MC estimator
// noise (~ sigma/sqrt(2N) for N samples).
type Tolerance struct {
	Mean  float64
	Sigma float64
}

// ValidationReport is the outcome of one differential run.
type ValidationReport struct {
	Samples int
	// Sampler names the path used: "structural" (parameter-space sampling
	// through the grid Cholesky factor — independent of the PCA machinery)
	// or "canonical" (sampling the canonical space directly — validating
	// only the propagation/Clark machinery).
	Sampler string

	AnalyticMean, AnalyticStd   float64
	EmpiricalMean, EmpiricalStd float64
	// MeanErr and SigmaErr are the relative disagreements the tolerances
	// are checked against.
	MeanErr, SigmaErr float64
	OK                bool
}

func (r *ValidationReport) String() string {
	return fmt.Sprintf("mc: %s sampler, %d samples: mean %.4f vs %.4f (%.3f%%), sigma %.4f vs %.4f (%.3f%%)",
		r.Sampler, r.Samples, r.AnalyticMean, r.EmpiricalMean, 100*r.MeanErr,
		r.AnalyticStd, r.EmpiricalStd, 100*r.SigmaErr)
}

// Validate is the reusable Monte-Carlo differential oracle: it computes the
// canonical-form circuit delay analytically (SSTA propagation with Clark
// max), estimates the same distribution empirically by Monte Carlo, and
// checks that mean and sigma agree within tol. Graphs carrying the
// structural ground truth (grid model + per-edge sensitivities — built
// graphs, flattened designs, and their scenario transforms) are sampled
// structurally; graphs without it (extracted models, stitched tops) fall
// back to sampling the canonical space directly. The report is returned
// even when the check fails; the error is reserved for runs that could not
// be performed at all.
func Validate(g *timing.Graph, cfg Config, tol Tolerance) (*ValidationReport, error) {
	cfg = cfg.normalize()
	delay, err := g.MaxDelay()
	if err != nil {
		return nil, err
	}
	rep := &ValidationReport{
		Samples:      cfg.Samples,
		AnalyticMean: delay.Mean(),
		AnalyticStd:  delay.Std(),
	}
	samples, err := MaxDelaySamples(g, cfg)
	if err == nil {
		rep.Sampler = "structural"
	} else {
		samples, err = CanonicalMaxDelaySamples(g, cfg)
		if err != nil {
			return nil, err
		}
		rep.Sampler = "canonical"
	}
	s := stats.Summarize(samples)
	rep.EmpiricalMean, rep.EmpiricalStd = s.Mean, s.Std
	rep.MeanErr = relErr(rep.AnalyticMean, rep.EmpiricalMean)
	rep.SigmaErr = relErr(rep.AnalyticStd, rep.EmpiricalStd)
	rep.OK = rep.MeanErr <= tol.Mean && rep.SigmaErr <= tol.Sigma
	return rep, nil
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if w := math.Abs(want); w > 1e-12 {
		return d / w
	}
	return d
}
