// Package mc is the Monte Carlo reference engine used to validate the
// analytic SSTA results (paper Section VI uses 10,000-iteration Monte Carlo
// throughout).
//
// The structural sampler draws the *parameter space* directly: one global
// standard normal per parameter, spatially correlated grid locals through
// the Cholesky factor of the grid correlation matrix, and an independent
// standard normal per delay edge. Scalar edge delays then follow from the
// edges' structural sensitivities, and circuit delays from scalar
// longest-path propagation. This path is deliberately independent of the
// PCA decomposition and the Clark max that it validates.
package mc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/mat"
	"repro/internal/timing"
)

// Config controls a Monte Carlo run.
type Config struct {
	Samples int
	Seed    int64
	Workers int // <=0: GOMAXPROCS
}

func (c Config) normalize() Config {
	if c.Samples <= 0 {
		c.Samples = 10000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// sampler holds per-worker scratch state for structural sampling.
type sampler struct {
	g     *timing.Graph
	chol  *mat.Dense
	nGrid int
	nPar  int

	glob   []float64   // per parameter
	locs   [][]float64 // per parameter x per grid
	z      []float64
	delays []float64
	arr    []float64
	order  []int
}

func newSampler(g *timing.Graph) (*sampler, error) {
	if g.Grids == nil {
		return nil, errors.New("mc: graph has no grid model; structural sampling needs the original graph")
	}
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if e.LSens != nil {
			continue
		}
		for _, v := range e.Delay.Loc {
			if v != 0 {
				return nil, fmt.Errorf("mc: edge %d has correlated coefficients but no structural sensitivities (extracted model graphs cannot be sampled structurally)", ei)
			}
		}
	}
	chol, err := g.Grids.CholeskyLocal()
	if err != nil {
		return nil, fmt.Errorf("mc: grid Cholesky: %w", err)
	}
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	nPar := len(g.Params)
	if nPar == 0 {
		nPar = g.Space.Globals
	}
	s := &sampler{
		g: g, chol: chol, nGrid: g.Grids.N(), nPar: nPar,
		glob:   make([]float64, g.Space.Globals),
		locs:   make([][]float64, nPar),
		z:      make([]float64, g.Grids.N()),
		delays: make([]float64, len(g.Edges)),
		arr:    make([]float64, g.NumVerts),
		order:  order,
	}
	for p := range s.locs {
		s.locs[p] = make([]float64, s.nGrid)
	}
	return s, nil
}

// draw fills scalar edge delays for one sample.
func (s *sampler) draw(rng *rand.Rand) {
	for i := range s.glob {
		s.glob[i] = rng.NormFloat64()
	}
	for p := 0; p < s.nPar; p++ {
		for i := range s.z {
			s.z[i] = rng.NormFloat64()
		}
		// locs[p] = chol * z: correlated grid locals.
		loc := s.locs[p]
		for i := 0; i < s.nGrid; i++ {
			row := s.chol.Row(i)
			var v float64
			for k := 0; k <= i; k++ {
				v += row[k] * s.z[k]
			}
			loc[i] = v
		}
	}
	for ei := range s.g.Edges {
		e := &s.g.Edges[ei]
		d := e.Delay.Nominal
		for p, c := range e.Delay.Glob {
			d += c * s.glob[p]
		}
		for p, c := range e.LSens {
			d += c * s.locs[p][e.Grid]
		}
		if e.Delay.Rand != 0 {
			d += e.Delay.Rand * rng.NormFloat64()
		}
		s.delays[ei] = d
	}
}

// longestFrom runs a scalar longest-path pass from the given source
// vertices and returns the arrival array (shared scratch; valid until next
// call).
func (s *sampler) longestFrom(sources []int) []float64 {
	for i := range s.arr {
		s.arr[i] = math.Inf(-1)
	}
	for _, src := range sources {
		s.arr[src] = 0
	}
	for _, v := range s.order {
		av := s.arr[v]
		if math.IsInf(av, -1) {
			continue
		}
		for _, ei := range s.g.Out[v] {
			e := &s.g.Edges[ei]
			if cand := av + s.delays[ei]; cand > s.arr[e.To] {
				s.arr[e.To] = cand
			}
		}
	}
	return s.arr
}

// MaxDelaySamples draws cfg.Samples realizations of the circuit delay (max
// over outputs, every launch source — inputs plus clock roots — at time
// zero). Samples are deterministic in cfg.Seed regardless of worker count.
func MaxDelaySamples(g *timing.Graph, cfg Config) ([]float64, error) {
	cfg = cfg.normalize()
	out := make([]float64, cfg.Samples)
	err := forEachSample(g, cfg, func(s *sampler, idx int, rng *rand.Rand) {
		s.draw(rng)
		arr := s.longestFrom(s.g.LaunchSources())
		best := math.Inf(-1)
		for _, o := range s.g.Outputs {
			if arr[o] > best {
				best = arr[o]
			}
		}
		out[idx] = best
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PairStats accumulates mean/std of the all-pairs input-output delays.
type PairStats struct {
	Inputs  int
	Outputs int
	Samples int
	Mean    [][]float64
	Std     [][]float64
	// Reachable marks pairs with a structural path.
	Reachable [][]bool
}

// AllPairsStats estimates the mean and standard deviation of every
// input-output delay M_ij by exclusive scalar propagation per input — the
// reference for the paper's Table I merr/verr columns.
func AllPairsStats(g *timing.Graph, cfg Config) (*PairStats, error) {
	cfg = cfg.normalize()
	nI, nO := len(g.Inputs), len(g.Outputs)
	sum := newMatrix(nI, nO)
	sumSq := newMatrix(nI, nO)
	var mu sync.Mutex

	err := forEachSampleAggregated(g, cfg,
		func() interface{} {
			return struct{ s, s2 [][]float64 }{newMatrix(nI, nO), newMatrix(nI, nO)}
		},
		func(acc interface{}, s *sampler, idx int, rng *rand.Rand) {
			a := acc.(struct{ s, s2 [][]float64 })
			s.draw(rng)
			for i, in := range s.g.Inputs {
				arr := s.longestFrom([]int{in})
				for j, o := range s.g.Outputs {
					if v := arr[o]; !math.IsInf(v, -1) {
						a.s[i][j] += v
						a.s2[i][j] += v * v
					}
				}
			}
		},
		func(acc interface{}) {
			a := acc.(struct{ s, s2 [][]float64 })
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < nI; i++ {
				for j := 0; j < nO; j++ {
					sum[i][j] += a.s[i][j]
					sumSq[i][j] += a.s2[i][j]
				}
			}
		})
	if err != nil {
		return nil, err
	}

	ps := &PairStats{
		Inputs: nI, Outputs: nO, Samples: cfg.Samples,
		Mean: newMatrix(nI, nO), Std: newMatrix(nI, nO),
		Reachable: make([][]bool, nI),
	}
	// Structural reachability decides which pairs exist.
	rs, err := g.Reachability()
	if err != nil {
		return nil, err
	}
	n := float64(cfg.Samples)
	for i := 0; i < nI; i++ {
		ps.Reachable[i] = make([]bool, nO)
		for j := 0; j < nO; j++ {
			if !rs.ReachesOutput(g.Inputs[i], j) {
				continue
			}
			ps.Reachable[i][j] = true
			m := sum[i][j] / n
			ps.Mean[i][j] = m
			v := sumSq[i][j]/n - m*m
			if v < 0 {
				v = 0
			}
			ps.Std[i][j] = math.Sqrt(v)
		}
	}
	return ps, nil
}

func newMatrix(r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
	}
	return m
}

// forEachSample fans samples out over workers; each sample re-seeds from
// cfg.Seed + index so results are independent of scheduling.
func forEachSample(g *timing.Graph, cfg Config, fn func(*sampler, int, *rand.Rand)) error {
	return forEachSampleAggregated(g, cfg,
		func() interface{} { return nil },
		func(_ interface{}, s *sampler, idx int, rng *rand.Rand) { fn(s, idx, rng) },
		func(interface{}) {})
}

func forEachSampleAggregated(g *timing.Graph, cfg Config,
	newAcc func() interface{},
	fn func(acc interface{}, s *sampler, idx int, rng *rand.Rand),
	merge func(acc interface{})) error {

	if _, err := newSampler(g); err != nil {
		return err
	}
	var wg sync.WaitGroup
	idxCh := make(chan int)
	errCh := make(chan error, 1)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := newSampler(g)
			if err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
			acc := newAcc()
			for idx := range idxCh {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7919))
				fn(acc, s, idx, rng)
			}
			merge(acc)
		}()
	}
	for i := 0; i < cfg.Samples; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// CanonicalMaxDelaySamples samples the canonical space directly (iid
// standard normal globals, PCA components and private randoms) — validating
// only the propagation/Clark machinery, not the PCA fidelity. Works on any
// graph including extracted models.
func CanonicalMaxDelaySamples(g *timing.Graph, cfg Config) ([]float64, error) {
	cfg = cfg.normalize()
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	out := make([]float64, cfg.Samples)
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			glob := make([]float64, g.Space.Globals)
			loc := make([]float64, g.Space.Components)
			arr := make([]float64, g.NumVerts)
			for idx := range idxCh {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7919))
				for i := range glob {
					glob[i] = rng.NormFloat64()
				}
				for i := range loc {
					loc[i] = rng.NormFloat64()
				}
				for i := range arr {
					arr[i] = math.Inf(-1)
				}
				for _, in := range g.LaunchSources() {
					arr[in] = 0
				}
				for _, v := range order {
					if math.IsInf(arr[v], -1) {
						continue
					}
					for _, ei := range g.Out[v] {
						e := &g.Edges[ei]
						d := e.Delay.Sample(glob, loc, rng.NormFloat64())
						if cand := arr[v] + d; cand > arr[e.To] {
							arr[e.To] = cand
						}
					}
				}
				best := math.Inf(-1)
				for _, o := range g.Outputs {
					if arr[o] > best {
						best = arr[o]
					}
				}
				out[idx] = best
			}
		}()
	}
	for i := 0; i < cfg.Samples; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return out, nil
}
