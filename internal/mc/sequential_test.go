package mc

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/stats"
	"repro/internal/timing"
)

func buildClocked(t *testing.T, c *circuit.Circuit) *timing.Graph {
	t.Helper()
	sc, err := circuit.Clocked(c)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := buildGraph(t, sc)
	return g
}

func TestMinDelaySamplesMatchAnalytic(t *testing.T) {
	g := buildClocked(t, circuit.C17())
	md, err := g.MinDelay()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MinDelaySamples(g, Config{Samples: 20000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(samples)
	if rel := math.Abs(s.Mean-md.Mean()) / md.Mean(); rel > 0.02 {
		t.Fatalf("MC min mean %g vs analytic %g (rel %g)", s.Mean, md.Mean(), rel)
	}
	if rel := math.Abs(s.Std-md.Std()) / math.Max(md.Std(), 1e-9); rel > 0.15 {
		t.Fatalf("MC min std %g vs analytic %g (rel %g)", s.Std, md.Std(), rel)
	}
}

func TestValidateSequentialClocked(t *testing.T) {
	g := buildClocked(t, circuit.C17())
	clock := timing.ClockSpec{PeriodPS: 400, SkewPS: 12, JitterPS: 6}
	rep, err := ValidateSequential(g, clock, Config{Samples: 20000, Seed: 21},
		Tolerance{Mean: 0.10, Sigma: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Setup.OK {
		t.Errorf("setup slack disagrees: %v", rep.Setup)
	}
	if !rep.Hold.OK {
		t.Errorf("hold slack disagrees: %v", rep.Hold)
	}
	if !rep.OK {
		t.Errorf("sequential validation failed:\n  setup %v\n  hold  %v", rep.Setup, rep.Hold)
	}
}

func TestValidateSequentialGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping generated-design MC validation in -short mode")
	}
	sc, err := circuit.GenerateClocked(circuit.TopoSpec{
		Name: "mcseq", PIs: 10, POs: 6, Gates: 120, Edges: 250, Depth: 10,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := buildGraph(t, sc)
	rep, err := ValidateSequential(g, timing.DefaultClock(), Config{Samples: 12000, Seed: 31},
		Tolerance{Mean: 0.12, Sigma: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("sequential validation failed:\n  setup %v\n  hold  %v", rep.Setup, rep.Hold)
	}
}

func TestSequentialSamplesRejectsCombinational(t *testing.T) {
	g, _ := buildGraph(t, circuit.C17())
	if _, err := SequentialSamples(g, timing.DefaultClock(), Config{Samples: 10}); err == nil {
		t.Fatal("expected error for combinational graph")
	}
	if _, err := MinDelaySamples(g, Config{Samples: 100, Seed: 1}); err != nil {
		t.Fatalf("MinDelaySamples should work on combinational graphs: %v", err)
	}
}
