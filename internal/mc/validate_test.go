package mc_test

import (
	"math"
	"testing"

	"repro/internal/canon"
	"repro/internal/mc"
	"repro/internal/scenario"
	"repro/internal/timing"
	"repro/ssta"
)

// Differential-oracle tolerances. The analytic engine tracks MC within
// ~1% on means and ~2% on sigmas on the ISCAS85-like benchmarks (the
// paper's Table I reports the same order); the bounds below add headroom
// for MC estimator noise at the respective sample counts
// (sigma/sqrt(2N) ~ 1.8% at 1500 samples, ~0.8% at 8000).
var (
	smokeTol = mc.Tolerance{Mean: 0.03, Sigma: 0.08} // 1500-sample tier-1 smoke
	tier2Tol = mc.Tolerance{Mean: 0.02, Sigma: 0.05} // 8000-sample tier-2
)

func validateGraph(t *testing.T, g *timing.Graph, cfg mc.Config, tol mc.Tolerance, wantSampler string) *mc.ValidationReport {
	t.Helper()
	rep, err := mc.Validate(g, cfg, tol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampler != wantSampler {
		t.Fatalf("sampler %q, want %q", rep.Sampler, wantSampler)
	}
	if !rep.OK {
		t.Fatalf("differential check failed: %v (tol mean %.3f sigma %.3f)", rep, tol.Mean, tol.Sigma)
	}
	return rep
}

// TestValidateSmoke is the tier-1 differential smoke: a small generated
// circuit, structural sampling, 1500 iterations.
func TestValidateSmoke(t *testing.T) {
	flow := ssta.DefaultFlow()
	spec := ssta.TopoSpec{Name: "mcsw", PIs: 8, POs: 4, Gates: 60, Edges: 130, Depth: 8}
	c, err := ssta.Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := flow.Graph(c)
	if err != nil {
		t.Fatal(err)
	}
	validateGraph(t, g, mc.Config{Samples: 1500, Seed: 42}, smokeTol, "structural")

	// The derated sweep-scenario graph must stay sampleable structurally
	// (TransformGraph rescales the structural sensitivities along with the
	// canonical coefficients) and keep tracking its own MC.
	sc := scenario.Scenario{Name: "hot", Derate: 1.2, LocSigma: 1.3}
	validateGraph(t, sc.TransformGraph(g), mc.Config{Samples: 1500, Seed: 7}, smokeTol, "structural")
}

// TestValidateTier2 is the heavier differential pass: two ISCAS85-scale
// generated circuits and one sweep scenario at 8000 iterations with
// tighter tolerances. Skipped under -short.
func TestValidateTier2(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 differential test skipped in short mode")
	}
	flow := ssta.DefaultFlow()
	cfg := mc.Config{Samples: 8000, Seed: 42}
	for _, name := range []string{"c432", "c880"} {
		g, _, err := flow.BenchGraph(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		rep := validateGraph(t, g, cfg, tier2Tol, "structural")

		// One sweep scenario (derated graph): the oracle must confirm both
		// that the transformed analytics track the transformed MC and that
		// the transform actually moved the distribution as specified — a
		// pure global derate scales mean and sigma exactly.
		sc := scenario.Scenario{Name: "derate", Derate: 1.2}
		drep := validateGraph(t, sc.TransformGraph(g), cfg, tier2Tol, "structural")
		if math.Abs(drep.AnalyticMean-1.2*rep.AnalyticMean) > 1e-6 {
			t.Fatalf("%s: derated mean %g, want %g", name, drep.AnalyticMean, 1.2*rep.AnalyticMean)
		}
		if math.Abs(drep.AnalyticStd-1.2*rep.AnalyticStd) > 1e-6 {
			t.Fatalf("%s: derated sigma %g, want %g", name, drep.AnalyticStd, 1.2*rep.AnalyticStd)
		}
	}
}

// TestValidateCanonicalFallback checks that graphs without structural
// ground truth (no grid model) are validated through canonical-space
// sampling.
func TestValidateCanonicalFallback(t *testing.T) {
	space := canon.Space{Globals: 2, Components: 3}
	g := timing.NewGraph(space, 4, nil)
	mk := func(nom float64, seed int) *canon.Form {
		f := space.NewForm()
		f.Nominal = nom
		for i := range f.Glob {
			f.Glob[i] = 0.5 + 0.1*float64(seed+i)
		}
		for i := range f.Loc {
			f.Loc[i] = 0.3 + 0.05*float64(seed+i)
		}
		f.Rand = 0.8
		return f
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if _, err := g.AddEdge(e[0], e[1], mk(10+float64(e[0]), e[0]+e[1]), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetIO([]int{0}, []int{3}, []string{"in"}, []string{"out"}); err != nil {
		t.Fatal(err)
	}
	rep := validateGraph(t, g, mc.Config{Samples: 4000, Seed: 1}, mc.Tolerance{Mean: 0.05, Sigma: 0.10}, "canonical")
	if rep.EmpiricalMean == 0 || rep.EmpiricalStd == 0 {
		t.Fatalf("empirical stats missing: %v", rep)
	}
}

// TestValidateReportsFailure checks an impossible tolerance yields a
// failed (but error-free) report.
func TestValidateReportsFailure(t *testing.T) {
	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mc.Validate(g, mc.Config{Samples: 500, Seed: 1}, mc.Tolerance{Mean: 1e-9, Sigma: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatalf("impossible tolerance passed: %v", rep)
	}
}
