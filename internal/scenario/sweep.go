package scenario

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/canon"
	"repro/internal/hier"
	"repro/internal/timing"
)

// Options tunes a sweep.
type Options struct {
	// Workers bounds how many scenarios propagate concurrently
	// (<=0: GOMAXPROCS).
	Workers int
	// TopK bounds the divergence ranking in the report (<=0: 3).
	TopK int
	// Quantile is the per-scenario/envelope yield quantile
	// (<=0: 0.99865, the 3-sigma signoff point).
	Quantile float64
	// Analyze tunes the shared stitch and any per-swap-scenario stitches
	// of a design sweep.
	Analyze hier.AnalyzeOptions
	// OnScenarioDone, when set, is invoked from the scenario's worker
	// goroutine right after its result (including Elapsed and Err) is
	// final — the serving layer's per-scenario metrics hook. It must be
	// safe to call concurrently for distinct scenarios.
	OnScenarioDone func(i int, r *Result)
}

func (o Options) normalize() Options {
	if o.TopK <= 0 {
		o.TopK = 3
	}
	if o.Quantile <= 0 {
		o.Quantile = 0.99865
	}
	return o
}

// Result is the outcome of one scenario. Err is set when the scenario
// failed (including cancellation mid-sweep); the statistical fields are
// then zero and Delay nil. A successful result normally carries the
// canonical delay form, but results that crossed a process boundary
// (cluster shard dispatch) carry only the scalar statistics — Delay may
// be nil on a completed scenario.
type Result struct {
	Name  string
	Delay *canon.Form
	// Mean, Std and Quantile (at Options.Quantile) of the circuit delay.
	Mean, Std, Quantile float64
	// SetupSlack and HoldSlack summarize the worst-register slack
	// distributions under the scenario's clock; nil on combinational
	// graphs. Their Quantile is the LOW tail (1 - Options.Quantile) — the
	// yield-side slack.
	SetupSlack *SlackStat
	HoldSlack  *SlackStat
	// Shared marks a scenario that ran on the shared stitched graph; false
	// for swap scenarios, which stitch privately.
	Shared  bool
	Elapsed time.Duration
	Err     error
}

// SlackStat is the scalar summary of one slack distribution.
type SlackStat struct {
	Mean, Std, Quantile float64
}

// Envelope is the cross-scenario worst case: the component-wise maximum of
// the per-scenario statistics over every completed scenario. Scenarios are
// alternative operating worlds, not jointly distributed variables, so the
// envelope maximizes statistics rather than Clark-maxing forms. Worst
// names the scenario attaining the quantile maximum — the signoff corner.
type Envelope struct {
	Mean, Std, Quantile float64
	Worst               string
}

// Divergence scores how far a scenario's delay distribution moved from the
// sweep baseline (the first scenario): |mean delta| + |sigma delta|.
type Divergence struct {
	Name  string
	Score float64
}

// Report is the outcome of one sweep: a result per scenario in input
// order, the worst-case envelope, and the most divergent scenarios
// relative to the baseline.
type Report struct {
	Results  []Result
	Envelope Envelope
	// Completed counts scenarios that finished without error; a cancelled sweep
	// reports the partial accounting (completed results keep their values,
	// the rest carry the cancellation error).
	Completed    int
	TopDivergent []Divergence
	Elapsed      time.Duration
	// Top is the shared stitched/flat graph the swap-free scenarios ran on
	// (nil for an all-swap design sweep). The serving layer reports its
	// size to callers that batched an analyze request onto a sweep.
	Top *timing.Graph
	// TopVerts/TopEdges record the shared graph's size as plain scalars so
	// the accounting survives process boundaries (cluster shard responses
	// drop the graph itself). Zero when no shared graph ran.
	TopVerts int
	TopEdges int
}

// NewReport assembles a report from per-scenario results: envelope,
// completion accounting and divergence ranking. Exposed so the session
// layer can re-assemble reports from incrementally maintained results.
func NewReport(results []Result, opt Options) *Report {
	opt = opt.normalize()
	rep := &Report{Results: results}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			continue
		}
		rep.Completed++
		if r.Mean > rep.Envelope.Mean {
			rep.Envelope.Mean = r.Mean
		}
		if r.Std > rep.Envelope.Std {
			rep.Envelope.Std = r.Std
		}
		if r.Quantile > rep.Envelope.Quantile {
			rep.Envelope.Quantile = r.Quantile
			rep.Envelope.Worst = r.Name
		}
	}
	// Divergence vs the baseline (first completed scenario — callers
	// conventionally put the unit scenario first).
	var base *Result
	for i := range results {
		if results[i].Err == nil {
			base = &results[i]
			break
		}
	}
	if base != nil {
		for i := range results {
			r := &results[i]
			if r.Err != nil || r == base {
				continue
			}
			score := abs(r.Mean-base.Mean) + abs(r.Std-base.Std)
			rep.TopDivergent = append(rep.TopDivergent, Divergence{Name: r.Name, Score: score})
		}
		sort.SliceStable(rep.TopDivergent, func(a, b int) bool {
			return rep.TopDivergent[a].Score > rep.TopDivergent[b].Score
		})
		if len(rep.TopDivergent) > opt.TopK {
			rep.TopDivergent = rep.TopDivergent[:opt.TopK]
		}
	}
	return rep
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Normalize validates a scenario list and fills default names, returning
// an independent copy. allowSwaps gates module-swap scenarios (design
// sweeps only).
func Normalize(scens []Scenario, allowSwaps bool) ([]Scenario, error) {
	if len(scens) == 0 {
		return nil, errors.New("scenario: empty scenario list")
	}
	out := make([]Scenario, len(scens))
	copy(out, scens)
	for i := range out {
		if out[i].Name == "" {
			out[i].Name = fmt.Sprintf("scenario-%d", i)
		}
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
		if !allowSwaps && len(out[i].Swaps) > 0 {
			return nil, fmt.Errorf("scenario %q: module swaps require a design sweep", out[i].Name)
		}
	}
	return out, nil
}

// SweepGraph evaluates every scenario against one flat timing graph with
// shared prep: the graph's flat edge-delay bank is built once, and each
// scenario propagates over a privately rescaled copy (or the base bank
// itself for identity scenarios) on the shared worker pool. Per-scenario
// failures — including cancellation mid-sweep — land in Result.Err and
// never abort the rest of the sweep; the returned error is reserved for
// sweep-level validation.
func SweepGraph(ctx context.Context, g *timing.Graph, scens []Scenario, opt Options) (*Report, error) {
	if g == nil {
		return nil, errors.New("scenario: nil graph")
	}
	scens, err := Normalize(scens, false)
	if err != nil {
		return nil, err
	}
	opt = opt.normalize()
	start := time.Now()
	if _, err := g.Order(); err != nil {
		return nil, err
	}
	base := g.EdgeDelays()
	results := make([]Result, len(scens))
	runOne := func(ctx context.Context, i int) {
		sc := &scens[i]
		r := &results[i]
		r.Name = sc.Name
		r.Shared = true
		s0 := time.Now()
		r.Delay, r.Err = runScenario(ctx, g, base, sc, opt.Quantile, r)
		r.Elapsed = time.Since(s0)
		if opt.OnScenarioDone != nil {
			opt.OnScenarioDone(i, r)
		}
	}
	// The pool never sees task errors: every started scenario records its
	// own outcome, so a cancellation mid-sweep yields partial accounting
	// instead of an aborted report.
	_ = timing.ParallelForCtx(ctx, len(scens), opt.Workers, func(ctx context.Context, i int) error {
		runOne(ctx, i)
		return nil
	})
	fillUnrun(ctx, scens, results, opt)
	rep := NewReport(results, opt)
	rep.Elapsed = time.Since(start)
	rep.Top = g
	rep.TopVerts, rep.TopEdges = g.NumVerts, len(g.Edges)
	return rep, nil
}

// fillUnrun accounts for scenarios the pool never started (cancellation
// before their index was claimed): they get the context error so a partial
// report still carries one definite outcome per scenario, and the
// OnScenarioDone hook fires for them too — callers' accounting (the
// serving layer's rejected-scenario counter) must match the report.
func fillUnrun(ctx context.Context, scens []Scenario, results []Result, opt Options) {
	for i := range results {
		r := &results[i]
		if r.Delay == nil && r.Err == nil {
			r.Name = scens[i].Name
			if err := ctx.Err(); err != nil {
				r.Err = err
			} else {
				r.Err = errors.New("scenario: not run")
			}
			if opt.OnScenarioDone != nil {
				opt.OnScenarioDone(i, r)
			}
		}
	}
}

// runScenario rescales the base bank per the scenario and runs one forward
// pass, folding the output arrivals into the circuit delay. The fold order
// matches Graph.MaxDelayCtx exactly.
func runScenario(ctx context.Context, g *timing.Graph, base *canon.Bank, sc *Scenario, q float64, r *Result) (*canon.Form, error) {
	delays := base
	if !sc.Identity() {
		bank := canon.NewBank(g.Space, len(g.Edges))
		sc.scaleBank(g, base, bank)
		delays = bank
	}
	p := g.AcquirePass().WithContext(ctx)
	defer p.Release()
	if err := p.ArrivalsOver(delays, g.LaunchSources()...); err != nil {
		return nil, err
	}
	acc := p.Scratch()
	first := true
	for _, o := range g.Outputs {
		if !p.Reached(o) {
			continue
		}
		if first {
			canon.CopyView(acc, p.At(o))
			first = false
		} else {
			canon.MaxViews(acc, acc, p.At(o))
		}
	}
	if first {
		return nil, errors.New("scenario: no output reachable from any input")
	}
	delay := acc.Form(g.Space)
	r.Mean, r.Std, r.Quantile = delay.Mean(), delay.Std(), delay.Quantile(q)

	// Sequential graphs additionally report worst setup/hold slack under the
	// scenario's clock, over the same scaled bank the delay fold read.
	if g.Sequential() {
		var err error
		r.SetupSlack, r.HoldSlack, err = SeqSlackStats(g, delays, sc.ClockSpec(), q)
		if err != nil {
			return nil, err
		}
	}
	return delay, nil
}

// SeqSlackStats computes the worst setup/hold slack statistics of a
// sequential graph under the given clock, reading edge delays from bank
// (nil: the graph's own delays). q is the high-tail delay quantile of the
// sweep; the slack quantiles are reported at the mirrored low tail — the
// yield-side margin. The session layer shares this with the sweep engine
// so incremental sweep refreshes report identical slack statistics.
func SeqSlackStats(g *timing.Graph, bank *canon.Bank, clock timing.ClockSpec, q float64) (setup, hold *SlackStat, err error) {
	seq, err := g.SequentialSlacksOver(bank, clock)
	if err != nil {
		return nil, nil, err
	}
	lo := 1 - q
	setup = &SlackStat{
		Mean: seq.WorstSetup.Mean(), Std: seq.WorstSetup.Std(),
		Quantile: seq.WorstSetup.Quantile(lo),
	}
	hold = &SlackStat{
		Mean: seq.WorstHold.Mean(), Std: seq.WorstHold.Std(),
		Quantile: seq.WorstHold.Quantile(lo),
	}
	return setup, hold, nil
}

// SweepDesign evaluates every scenario against a hierarchical design with
// shared prep: the design is partitioned, PCA'd and stitched once (through
// its prep cache), and every swap-free scenario re-propagates the shared
// top graph over a rescaled delay bank. Scenarios with module swaps stitch
// a private structural copy of the design (their extraction is assumed
// pre-paid through the shared ExtractCache) and then run the same rescale
// path on their own top graph.
func SweepDesign(ctx context.Context, d *hier.Design, mode hier.Mode, scens []Scenario, opt Options) (*Report, error) {
	if d == nil {
		return nil, errors.New("scenario: nil design")
	}
	scens, err := Normalize(scens, true)
	if err != nil {
		return nil, err
	}
	opt = opt.normalize()
	start := time.Now()

	// Shared stitch, skipped when every scenario swaps structure. Its
	// failure is a sweep-level error: nothing can run without it.
	var top *timing.Graph
	var topDelays *canon.Bank
	for i := range scens {
		if len(scens[i].Swaps) == 0 {
			res, err := d.Stitch(ctx, mode, opt.Analyze)
			if err != nil {
				return nil, err
			}
			top = res.Graph
			topDelays = top.EdgeDelays()
			break
		}
	}

	results := make([]Result, len(scens))
	_ = timing.ParallelForCtx(ctx, len(scens), opt.Workers, func(ctx context.Context, i int) error {
		sc := &scens[i]
		r := &results[i]
		r.Name = sc.Name
		s0 := time.Now()
		if len(sc.Swaps) == 0 {
			r.Shared = true
			r.Delay, r.Err = runScenario(ctx, top, topDelays, sc, opt.Quantile, r)
		} else {
			r.Delay, r.Err = runSwapScenario(ctx, d, mode, sc, opt, r)
		}
		r.Elapsed = time.Since(s0)
		if opt.OnScenarioDone != nil {
			opt.OnScenarioDone(i, r)
		}
		return nil
	})
	fillUnrun(ctx, scens, results, opt)
	rep := NewReport(results, opt)
	rep.Elapsed = time.Since(start)
	rep.Top = top
	if top != nil {
		rep.TopVerts, rep.TopEdges = top.NumVerts, len(top.Edges)
	}
	return rep, nil
}

// runSwapScenario applies the scenario's module swaps to a private
// structural copy, stitches it, and runs the scenario's rescale factors
// over the private top graph.
func runSwapScenario(ctx context.Context, d *hier.Design, mode hier.Mode, sc *Scenario, opt Options, r *Result) (*canon.Form, error) {
	dd := d.CopyStructure()
	for name, m := range sc.Swaps {
		found := false
		for _, inst := range dd.Instances {
			if inst.Name == name {
				inst.Module = m
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("scenario %q: unknown instance %q", sc.Name, name)
		}
	}
	res, err := dd.Stitch(ctx, mode, opt.Analyze)
	if err != nil {
		return nil, err
	}
	return runScenario(ctx, res.Graph, res.Graph.EdgeDelays(), sc, opt.Quantile, r)
}
