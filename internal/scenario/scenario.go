// Package scenario implements the multi-corner/multi-scenario (MCMM) sweep
// engine. The paper's argument is that SSTA replaces exponentially many
// process corners with one statistical pass; a production signoff still
// runs that one pass under many *operating scenarios* — voltage/temperature
// modes, derates, aging margins, per-mode wire loads, module variants. A
// Scenario describes one such named transform of a timing graph, and the
// sweep engine evaluates many scenarios against one shared preparation:
// the graph is built (or the hierarchical design partitioned, PCA'd and
// stitched) exactly once, and each scenario only rescales the flat
// edge-delay bank in place-free fashion (canon.ScalePartsView) and re-runs
// the propagation kernel over it.
//
// Every scenario transform is linear per canonical-form component, so a
// scenario result is numerically identical (1e-9, in practice bitwise) to
// analyzing a graph whose edge delays were explicitly transformed edge by
// edge — see TransformGraph and the package tests.
package scenario

import (
	"fmt"

	"repro/internal/canon"
	"repro/internal/hier"
	"repro/internal/timing"
)

// Scenario is one named transform of a timing graph or hierarchical
// design. All factor fields are multipliers with the convention that zero
// means "unset" (treated as 1), so the zero value is the identity
// scenario; set factors must be positive.
type Scenario struct {
	// Name labels the scenario in reports. Empty names are defaulted to
	// "scenario-<index>" by the sweep.
	Name string

	// Derate multiplies every edge delay — nominal and all variation
	// components — like canon.Form.Scale: a global timing derate.
	Derate float64

	// CellScale multiplies only cell-arc edges (edges carrying variation
	// data: structural sensitivities or nonzero stochastic components);
	// NetScale multiplies only deterministic edges (stitched wire delays).
	// Together they are the per-edge-class derates of an MCMM setup where
	// cells and interconnect age or derate differently.
	CellScale float64
	NetScale  float64

	// EdgeScales multiplies specific edges by index, on top of the class
	// factors — per-cell overrides.
	EdgeScales map[int]float64

	// GlobSigma, LocSigma and RandSigma multiply the global, spatially
	// correlated and purely random variation components respectively,
	// leaving the nominal untouched — sigma margins per variation class.
	GlobSigma float64
	LocSigma  float64
	RandSigma float64

	// ClockPeriodPS, ClockSkewPS and ClockJitterPS set the clock the
	// scenario's setup/hold analysis runs against on sequential graphs
	// (frequency corners, skew margins, jitter budgets). Zero means unset:
	// the period defaults to timing.DefaultClockPeriodPS, skew and jitter to
	// zero. The knobs are pure slack-side parameters — they do not touch the
	// edge-delay bank, so clock scenarios share the base prep (and the base
	// bank, when the rescale knobs are identity). Combinational graphs
	// ignore them.
	ClockPeriodPS float64
	ClockSkewPS   float64
	ClockJitterPS float64

	// Swaps replaces instance modules by name (hierarchical sweeps only).
	// A scenario with swaps changes the design structure, so it cannot
	// share the stitched top graph: it pays its own stitch on a private
	// structural copy of the design (model extraction for the incoming
	// module remains the caller's job, through the shared ExtractCache).
	Swaps map[string]*hier.Module
}

// factor maps the zero-means-unset convention onto a concrete multiplier.
func factor(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

// Validate rejects non-positive factors (zero fields mean "unset" and are
// fine; explicit negatives or NaN-ish inputs are caller bugs).
func (s *Scenario) Validate() error {
	check := func(name string, v float64) error {
		if v != 0 && !(v > 0) {
			return fmt.Errorf("scenario %q: %s %g must be positive", s.Name, name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"derate", s.Derate}, {"cell_scale", s.CellScale}, {"net_scale", s.NetScale},
		{"glob_sigma", s.GlobSigma}, {"loc_sigma", s.LocSigma}, {"rand_sigma", s.RandSigma},
		{"clock_period_ps", s.ClockPeriodPS},
		{"clock_skew_ps", s.ClockSkewPS}, {"clock_jitter_ps", s.ClockJitterPS},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	for ei, v := range s.EdgeScales {
		if !(v > 0) {
			return fmt.Errorf("scenario %q: edge %d scale %g must be positive", s.Name, ei, v)
		}
	}
	return nil
}

// ClockSpec assembles the scenario's clock for setup/hold analysis;
// unset knobs keep the timing package defaults.
func (s *Scenario) ClockSpec() timing.ClockSpec {
	return timing.ClockSpec{
		PeriodPS: s.ClockPeriodPS,
		SkewPS:   s.ClockSkewPS,
		JitterPS: s.ClockJitterPS,
	}
}

// Identity reports whether the scenario leaves the graph untouched (swaps
// aside) — such scenarios propagate over the shared base bank directly.
// Clock knobs never break identity: they parameterize only the slack
// computation, not the delay bank.
func (s *Scenario) Identity() bool {
	return factor(s.Derate) == 1 && factor(s.CellScale) == 1 && factor(s.NetScale) == 1 &&
		factor(s.GlobSigma) == 1 && factor(s.LocSigma) == 1 && factor(s.RandSigma) == 1 &&
		len(s.EdgeScales) == 0
}

// cellEdge classifies an edge: cell arcs carry variation data (structural
// local sensitivities or nonzero stochastic components), stitched wire
// edges are deterministic constants.
func cellEdge(e *timing.Edge) bool {
	if e.LSens != nil {
		return true
	}
	if e.Delay.Rand != 0 {
		return true
	}
	for _, v := range e.Delay.Glob {
		if v != 0 {
			return true
		}
	}
	for _, v := range e.Delay.Loc {
		if v != 0 {
			return true
		}
	}
	return false
}

// edgeFactor returns the all-components multiplier for edge ei of class
// cell (the sigma multipliers are handled separately).
func (s *Scenario) edgeFactor(ei int, cell bool) float64 {
	k := factor(s.Derate)
	if cell {
		k *= factor(s.CellScale)
	} else {
		k *= factor(s.NetScale)
	}
	if v, ok := s.EdgeScales[ei]; ok {
		k *= v
	}
	return k
}

// scaleBank writes the scenario-scaled image of the base delay bank into
// dst (slot per edge index). Tombstoned edges keep garbage slots — the
// propagation kernels never read them.
func (s *Scenario) scaleBank(g *timing.Graph, base, dst *canon.Bank) {
	nGlob := g.Space.Globals
	gs, ls, rs := factor(s.GlobSigma), factor(s.LocSigma), factor(s.RandSigma)
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if e.Removed {
			continue
		}
		k := s.edgeFactor(ei, cellEdge(e))
		canon.ScalePartsView(dst.View(ei), base.View(ei), nGlob, k, gs, ls, rs)
	}
}

// TransformForm returns the scenario's image of one edge delay form, using
// the exact arithmetic of the in-bank kernel (canon.ScalePartsView) so a
// form-by-form transformed graph reproduces the sweep bit for bit. ei and
// cell identify the edge for the class and per-edge factors.
func (s *Scenario) TransformForm(space canon.Space, ei int, cell bool, f *canon.Form) *canon.Form {
	k := s.edgeFactor(ei, cell)
	gs, ls, rs := factor(s.GlobSigma), factor(s.LocSigma), factor(s.RandSigma)
	out := space.NewForm()
	out.Nominal = f.Nominal * k
	kg := k * gs
	for i, v := range f.Glob {
		out.Glob[i] = v * kg
	}
	kl := k * ls
	for i, v := range f.Loc {
		out.Loc[i] = v * kl
	}
	kr := k * rs
	if kr < 0 {
		kr = -kr
	}
	out.Rand = f.Rand * kr
	return out
}

// TransformEdge is TransformForm against a live graph edge, classifying it
// itself — the hook the session layer uses to mirror edits into scenario
// graphs.
func (s *Scenario) TransformEdge(space canon.Space, ei int, e *timing.Edge) *canon.Form {
	return s.TransformForm(space, ei, cellEdge(e), e.Delay)
}

// TransformGraph returns an independent clone of g whose edge delays (and
// structural local sensitivities, so Monte Carlo stays sampleable) are the
// scenario's image of the originals — the explicit materialization of what
// the sweep computes via bank rescaling. Used by the differential tests
// and by sessions that maintain per-scenario incremental state.
func (s *Scenario) TransformGraph(g *timing.Graph) *timing.Graph {
	ng := g.Clone()
	if s.Identity() {
		return ng
	}
	ls := factor(s.LocSigma)
	for ei := range ng.Edges {
		e := &ng.Edges[ei]
		if e.Removed {
			continue
		}
		cell := cellEdge(e)
		e.Delay = s.TransformForm(ng.Space, ei, cell, e.Delay)
		if e.LSens != nil {
			k := s.edgeFactor(ei, cell) * ls
			sens := make([]float64, len(e.LSens))
			for i, v := range e.LSens {
				sens[i] = v * k
			}
			e.LSens = sens
		}
	}
	return ng
}
