package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Spec is the JSON wire form of a scenario's rescale knobs — shared by the
// cmd harnesses (-scenarios flags) and the sstad serving layer. Omitted
// fields keep the zero-means-unset convention of Scenario. Module swaps
// are not expressible here: materializing a module needs the extraction
// pipeline, which is the serving layer's job (see internal/server).
type Spec struct {
	Name          string          `json:"name,omitempty"`
	Derate        float64         `json:"derate,omitempty"`
	CellScale     float64         `json:"cell_scale,omitempty"`
	NetScale      float64         `json:"net_scale,omitempty"`
	EdgeScales    map[int]float64 `json:"edge_scales,omitempty"`
	GlobSigma     float64         `json:"glob_sigma,omitempty"`
	LocSigma      float64         `json:"loc_sigma,omitempty"`
	RandSigma     float64         `json:"rand_sigma,omitempty"`
	ClockPeriodPS float64         `json:"clock_period_ps,omitempty"`
	ClockSkewPS   float64         `json:"clock_skew_ps,omitempty"`
	ClockJitterPS float64         `json:"clock_jitter_ps,omitempty"`
}

// Scenario converts the spec into its library form.
func (sp Spec) Scenario() Scenario {
	return Scenario{
		Name:          sp.Name,
		Derate:        sp.Derate,
		CellScale:     sp.CellScale,
		NetScale:      sp.NetScale,
		EdgeScales:    sp.EdgeScales,
		GlobSigma:     sp.GlobSigma,
		LocSigma:      sp.LocSigma,
		RandSigma:     sp.RandSigma,
		ClockPeriodPS: sp.ClockPeriodPS,
		ClockSkewPS:   sp.ClockSkewPS,
		ClockJitterPS: sp.ClockJitterPS,
	}
}

// ParseJSON decodes a JSON array of scenario specs and validates it.
func ParseJSON(data []byte) ([]Scenario, error) {
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	out := make([]Scenario, len(specs))
	for i, sp := range specs {
		out[i] = sp.Scenario()
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FlagBytes resolves a -scenarios flag value to its raw JSON: inline
// JSON, or @path to a JSON file (surrounding whitespace ignored). Callers
// that decode an extended spec (the serving layer's swap-carrying
// scenarios) share this resolution instead of re-implementing the @file
// convention.
func FlagBytes(v string) ([]byte, error) {
	v = strings.TrimSpace(v)
	if strings.HasPrefix(v, "@") {
		data, err := os.ReadFile(v[1:])
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		return data, nil
	}
	return []byte(v), nil
}

// ParseFlag resolves a -scenarios flag value: inline JSON, or @path to a
// JSON file.
func ParseFlag(v string) ([]Scenario, error) {
	data, err := FlagBytes(v)
	if err != nil {
		return nil, err
	}
	return ParseJSON(data)
}

// SpecOf converts a scenario back into its wire form — the serialization
// side of session-sweep checkpointing. Scenarios carrying module swaps are
// not expressible as a Spec (swaps need the extraction pipeline) and are
// rejected; session sweeps never contain them (Normalize(scens, false)).
func SpecOf(sc Scenario) (Spec, error) {
	if len(sc.Swaps) > 0 {
		return Spec{}, fmt.Errorf("scenario: %q carries module swaps, not expressible as a spec", sc.Name)
	}
	return Spec{
		Name:          sc.Name,
		Derate:        sc.Derate,
		CellScale:     sc.CellScale,
		NetScale:      sc.NetScale,
		EdgeScales:    sc.EdgeScales,
		GlobSigma:     sc.GlobSigma,
		LocSigma:      sc.LocSigma,
		RandSigma:     sc.RandSigma,
		ClockPeriodPS: sc.ClockPeriodPS,
		ClockSkewPS:   sc.ClockSkewPS,
		ClockJitterPS: sc.ClockJitterPS,
	}, nil
}
