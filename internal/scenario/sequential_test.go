package scenario_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/scenario"
	"repro/ssta"
)

func clockedGraph(t testing.TB, seed int64) *ssta.Graph {
	t.Helper()
	c, err := ssta.GenerateClocked(testSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := ssta.DefaultFlow().Graph(c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSweepClockScenarios runs a frequency/skew/jitter sweep on a clocked
// graph and checks that setup/hold slack lands in every result with the
// expected clock arithmetic.
func TestSweepClockScenarios(t *testing.T) {
	g := clockedGraph(t, 11)
	scens := []scenario.Scenario{
		{Name: "default-clock"},
		{Name: "fast", ClockPeriodPS: 350},
		{Name: "slow", ClockPeriodPS: 750},
		{Name: "skewed", ClockPeriodPS: 500, ClockSkewPS: 25},
		{Name: "jittery", ClockPeriodPS: 500, ClockJitterPS: 15},
		{Name: "hot-fast", Derate: 1.15, ClockPeriodPS: 350},
	}
	rep, err := scenario.SweepGraph(context.Background(), g, scens, scenario.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(scens) {
		t.Fatalf("completed %d of %d", rep.Completed, len(scens))
	}
	if rep.TopVerts != g.NumVerts || rep.TopEdges != len(g.Edges) {
		t.Fatalf("report sizes %d/%d, want %d/%d", rep.TopVerts, rep.TopEdges, g.NumVerts, len(g.Edges))
	}
	byName := map[string]*scenario.Result{}
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Err != nil {
			t.Fatalf("scenario %q: %v", r.Name, r.Err)
		}
		if r.SetupSlack == nil || r.HoldSlack == nil {
			t.Fatalf("scenario %q missing slack stats", r.Name)
		}
		byName[r.Name] = r
	}

	// Clock knobs are additive constants on the setup side: period deltas
	// shift the setup slack mean exactly.
	if d := byName["slow"].SetupSlack.Mean - byName["fast"].SetupSlack.Mean; math.Abs(d-400) > 1e-9 {
		t.Fatalf("period shift moved setup mean by %g, want 400", d)
	}
	// Hold slack does not depend on the period.
	if d := byName["slow"].HoldSlack.Mean - byName["fast"].HoldSlack.Mean; math.Abs(d) > 1e-9 {
		t.Fatalf("period shift moved hold mean by %g", d)
	}
	// Skew tightens both checks.
	def := byName["default-clock"]
	if byName["skewed"].SetupSlack.Mean >= def.SetupSlack.Mean {
		t.Fatal("skew did not tighten setup slack")
	}
	if byName["skewed"].HoldSlack.Mean >= def.HoldSlack.Mean {
		t.Fatal("skew did not tighten hold slack")
	}
	// Jitter widens the slack distributions; the worst-register mean can
	// only drop (more variance pulls the statistical minimum down).
	if byName["jittery"].SetupSlack.Std <= def.SetupSlack.Std {
		t.Fatal("jitter did not widen setup slack")
	}
	if byName["jittery"].SetupSlack.Mean > def.SetupSlack.Mean+1e-9 {
		t.Fatal("jitter raised the worst setup slack mean")
	}
	// Derate slows paths: setup slack shrinks vs the same clock.
	if byName["hot-fast"].SetupSlack.Mean >= byName["fast"].SetupSlack.Mean {
		t.Fatal("derate did not shrink setup slack")
	}
	// The low-tail quantile sits below the mean on both checks.
	for _, r := range rep.Results {
		if r.SetupSlack.Quantile >= r.SetupSlack.Mean {
			t.Fatalf("scenario %q setup quantile %g not in the low tail (mean %g)",
				r.Name, r.SetupSlack.Quantile, r.SetupSlack.Mean)
		}
	}
}

// TestCombinationalSweepHasNoSlack pins that combinational sweeps are
// unaffected by the sequential additions.
func TestCombinationalSweepHasNoSlack(t *testing.T) {
	g := testGraph(t, 12)
	rep, err := scenario.SweepGraph(context.Background(), g,
		[]scenario.Scenario{{Name: "unit"}, {Name: "clocked-knob", ClockPeriodPS: 400}},
		scenario.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.SetupSlack != nil || r.HoldSlack != nil {
			t.Fatalf("combinational scenario %q carries slack stats", r.Name)
		}
	}
}

// TestClockSpecJSONRoundTrip covers the wire form of the clock knobs.
func TestClockSpecJSONRoundTrip(t *testing.T) {
	scens, err := scenario.ParseJSON([]byte(`[
		{"name":"clk","clock_period_ps":420,"clock_skew_ps":11,"clock_jitter_ps":4}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	sc := scens[0]
	if sc.ClockPeriodPS != 420 || sc.ClockSkewPS != 11 || sc.ClockJitterPS != 4 {
		t.Fatalf("clock knobs lost in parse: %+v", sc)
	}
	if !sc.Identity() {
		t.Fatal("clock-only scenario must stay identity (shares the base bank)")
	}
	sp, err := scenario.SpecOf(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sp.ClockPeriodPS != 420 || sp.ClockSkewPS != 11 || sp.ClockJitterPS != 4 {
		t.Fatalf("clock knobs lost in SpecOf: %+v", sp)
	}
	if _, err := scenario.ParseJSON([]byte(`[{"clock_period_ps":-5}]`)); err == nil {
		t.Fatal("negative clock period accepted")
	}
}
