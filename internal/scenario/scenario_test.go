package scenario_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/canon"
	"repro/internal/scenario"
	"repro/ssta"
)

var testSpec = ssta.TopoSpec{Name: "sw", PIs: 8, POs: 4, Gates: 60, Edges: 130, Depth: 8}

func testGraph(t testing.TB, seed int64) *ssta.Graph {
	t.Helper()
	c, err := ssta.Generate(testSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := ssta.DefaultFlow().Graph(c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func formDiff(a, b *canon.Form) float64 {
	d := math.Abs(a.Nominal - b.Nominal)
	for i := range a.Glob {
		if v := math.Abs(a.Glob[i] - b.Glob[i]); v > d {
			d = v
		}
	}
	for i := range a.Loc {
		if v := math.Abs(a.Loc[i] - b.Loc[i]); v > d {
			d = v
		}
	}
	if v := math.Abs(a.Rand - b.Rand); v > d {
		d = v
	}
	return d
}

func testScenarios() []scenario.Scenario {
	return []scenario.Scenario{
		{Name: "unit"},
		{Name: "hot", Derate: 1.18},
		{Name: "cold", Derate: 0.91},
		{Name: "aged-cells", CellScale: 1.07},
		{Name: "sigma-up", GlobSigma: 1.5, LocSigma: 1.25, RandSigma: 1.1},
		{Name: "edge-eco", EdgeScales: map[int]float64{3: 1.4, 17: 0.8}},
		{Name: "combo", Derate: 1.05, LocSigma: 1.3, EdgeScales: map[int]float64{5: 1.2}},
	}
}

// TestScaleKernelMatchesTransformForm pins the bit-identity of the in-bank
// rescale kernel and the pointer-form transform the differential paths use.
func TestScaleKernelMatchesTransformForm(t *testing.T) {
	space := canon.Space{Globals: 3, Components: 12}
	rng := rand.New(rand.NewSource(7))
	f := space.NewForm()
	f.Nominal = 42.5
	for i := range f.Glob {
		f.Glob[i] = rng.NormFloat64()
	}
	for i := range f.Loc {
		f.Loc[i] = rng.NormFloat64()
	}
	f.Rand = 1.75
	sc := scenario.Scenario{Derate: 1.13, GlobSigma: 1.4, LocSigma: 0.8, RandSigma: 2.1}
	bank := canon.NewBank(space, 2)
	bank.View(0).LoadForm(f)
	canon.ScalePartsView(bank.View(1), bank.View(0), space.Globals, 1.13, 1.4, 0.8, 2.1)
	got := bank.View(1).Form(space)
	want := sc.TransformForm(space, 0, true, f)
	if formDiff(got, want) != 0 {
		t.Fatalf("kernel and TransformForm disagree: %v vs %v", got, want)
	}
}

// TestSweepGraphMatchesTransformedAnalyze is the per-scenario equivalence
// contract: each sweep result equals a from-scratch analysis of a graph
// whose edges were explicitly transformed, at 1e-9.
func TestSweepGraphMatchesTransformedAnalyze(t *testing.T) {
	g := testGraph(t, 1)
	scens := testScenarios()
	rep, err := scenario.SweepGraph(context.Background(), g, scens, scenario.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(scens) {
		t.Fatalf("completed %d of %d scenarios", rep.Completed, len(scens))
	}
	for i, sc := range scens {
		r := rep.Results[i]
		if r.Err != nil {
			t.Fatalf("scenario %q: %v", sc.Name, r.Err)
		}
		if !r.Shared {
			t.Fatalf("scenario %q did not run on the shared graph", sc.Name)
		}
		want, err := sc.TransformGraph(g).MaxDelay()
		if err != nil {
			t.Fatal(err)
		}
		if d := formDiff(r.Delay, want); d > 1e-9 {
			t.Fatalf("scenario %q: sweep differs from transformed analysis by %g", sc.Name, d)
		}
	}
	// The identity scenario must reproduce the plain analysis exactly.
	base, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if d := formDiff(rep.Results[0].Delay, base); d > 1e-9 {
		t.Fatalf("identity scenario differs from MaxDelay by %g", d)
	}
}

// TestSweepEnvelopeGolden pins the envelope contract: component-wise max
// over per-scenario independent analyses.
func TestSweepEnvelopeGolden(t *testing.T) {
	g := testGraph(t, 2)
	scens := testScenarios()
	rep, err := scenario.SweepGraph(context.Background(), g, scens, scenario.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wantMean, wantStd, wantQ float64
	var worst string
	for _, sc := range scens {
		delay, err := sc.TransformGraph(g).MaxDelay()
		if err != nil {
			t.Fatal(err)
		}
		wantMean = math.Max(wantMean, delay.Mean())
		wantStd = math.Max(wantStd, delay.Std())
		if q := delay.Quantile(0.99865); q > wantQ {
			wantQ = q
			worst = sc.Name
			if sc.Name == "" {
				worst = "scenario-0"
			}
		}
	}
	if math.Abs(rep.Envelope.Mean-wantMean) > 1e-9 ||
		math.Abs(rep.Envelope.Std-wantStd) > 1e-9 ||
		math.Abs(rep.Envelope.Quantile-wantQ) > 1e-9 {
		t.Fatalf("envelope %+v, want mean %g std %g q %g", rep.Envelope, wantMean, wantStd, wantQ)
	}
	if rep.Envelope.Worst != worst {
		t.Fatalf("envelope worst %q, want %q", rep.Envelope.Worst, worst)
	}
}

func TestSweepDivergenceRanking(t *testing.T) {
	g := testGraph(t, 3)
	scens := []scenario.Scenario{
		{Name: "base"},
		{Name: "tiny", Derate: 1.001},
		{Name: "huge", Derate: 1.5},
		{Name: "mid", Derate: 1.1},
	}
	rep, err := scenario.SweepGraph(context.Background(), g, scens, scenario.Options{Workers: 1, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TopDivergent) != 2 {
		t.Fatalf("want 2 divergent entries, got %d", len(rep.TopDivergent))
	}
	if rep.TopDivergent[0].Name != "huge" || rep.TopDivergent[1].Name != "mid" {
		t.Fatalf("divergence ranking wrong: %+v", rep.TopDivergent)
	}
}

func TestSweepValidation(t *testing.T) {
	g := testGraph(t, 4)
	if _, err := scenario.SweepGraph(context.Background(), g, nil, scenario.Options{}); err == nil {
		t.Fatal("empty scenario list accepted")
	}
	if _, err := scenario.SweepGraph(context.Background(), g,
		[]scenario.Scenario{{Name: "bad", Derate: -1}}, scenario.Options{}); err == nil {
		t.Fatal("negative derate accepted")
	}
	if _, err := scenario.SweepGraph(context.Background(), g,
		[]scenario.Scenario{{Name: "bad", EdgeScales: map[int]float64{0: 0}}}, scenario.Options{}); err == nil {
		t.Fatal("zero edge scale accepted")
	}
	if _, err := scenario.SweepGraph(context.Background(), g,
		[]scenario.Scenario{{Name: "swap", Swaps: map[string]*ssta.Module{"A": nil}}}, scenario.Options{}); err == nil {
		t.Fatal("swap scenario accepted on a flat graph sweep")
	}
}

// TestSweepPartialAccounting cancels the sweep after the first scenario
// completes and checks that the report still accounts for every scenario.
func TestSweepPartialAccounting(t *testing.T) {
	g := testGraph(t, 5)
	scens := testScenarios()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	done := 0
	rep, err := scenario.SweepGraph(ctx, g, scens, scenario.Options{
		Workers: 1,
		OnScenarioDone: func(i int, r *scenario.Result) {
			mu.Lock()
			done++
			if done == 1 {
				cancel()
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(scens) {
		t.Fatalf("report has %d results for %d scenarios", len(rep.Results), len(scens))
	}
	if rep.Completed < 1 || rep.Completed >= len(scens) {
		t.Fatalf("completed %d scenarios, want partial (1..%d)", rep.Completed, len(scens)-1)
	}
	failed := 0
	for _, r := range rep.Results {
		if r.Err != nil {
			failed++
		} else if r.Delay == nil {
			t.Fatalf("scenario %q has neither delay nor error", r.Name)
		}
	}
	if failed+rep.Completed != len(scens) {
		t.Fatalf("accounting mismatch: %d completed + %d failed != %d", rep.Completed, failed, len(scens))
	}
	// The hook must fire once per scenario — including the ones the pool
	// never started — so hook-side accounting matches the report.
	mu.Lock()
	defer mu.Unlock()
	if done != len(scens) {
		t.Fatalf("OnScenarioDone fired %d times for %d scenarios", done, len(scens))
	}
}

func TestParseScenarios(t *testing.T) {
	scens, err := scenario.ParseJSON([]byte(`[
		{"name":"unit"},
		{"name":"hot","derate":1.2,"glob_sigma":1.5,"edge_scales":{"3":1.1}}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 2 || scens[1].Derate != 1.2 || scens[1].GlobSigma != 1.5 || scens[1].EdgeScales[3] != 1.1 {
		t.Fatalf("parsed scenarios wrong: %+v", scens)
	}
	if !scens[0].Identity() || scens[1].Identity() {
		t.Fatal("identity classification wrong")
	}
	if _, err := scenario.ParseJSON([]byte(`[{"derate":-2}]`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := scenario.ParseJSON([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
