package core

import (
	"sync"

	"repro/internal/timing"
)

// extractKey identifies one extraction: the module timing graph (by
// identity — graphs are immutable once built) plus the options that change
// the result. Workers is deliberately excluded: it affects only the
// schedule, never the extracted model.
type extractKey struct {
	graph    *timing.Graph
	delta    float64
	noGuard  bool
	maxIters int
}

func newExtractKey(g *timing.Graph, opt Options) extractKey {
	delta := opt.Delta
	if delta == 0 {
		delta = DefaultDelta
	}
	return extractKey{graph: g, delta: delta, noGuard: opt.DisablePathProtection, maxIters: opt.MaxMergeIters}
}

// extractEntry is a singleflight slot: the first caller computes, everyone
// else blocks on done and reads the shared result.
type extractEntry struct {
	done  chan struct{}
	model *Model
	err   error
}

// ExtractCache memoizes timing-model extraction so each distinct module is
// extracted exactly once per option set, no matter how many instances,
// corners or concurrent analyses reference it. It is safe for concurrent
// use; duplicate concurrent requests for the same key are coalesced into a
// single extraction (singleflight).
type ExtractCache struct {
	mu      sync.Mutex
	entries map[extractKey]*extractEntry
	hits    int64
	misses  int64
}

// NewExtractCache returns an empty cache.
func NewExtractCache() *ExtractCache {
	return &ExtractCache{entries: make(map[extractKey]*extractEntry)}
}

// Extract returns the memoized model for (g, opt), running the extraction
// pipeline on a miss. The returned *Model is shared between callers and
// must be treated as immutable.
func (c *ExtractCache) Extract(g *timing.Graph, opt Options) (*Model, error) {
	if c == nil {
		return Extract(g, opt)
	}
	key := newExtractKey(g, opt)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.model, e.err
	}
	e := &extractEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.model, e.err = Extract(g, opt)
	close(e.done)
	if e.err != nil {
		// Do not pin failures: a later retry may succeed (e.g. transient
		// resource exhaustion) and a stale error must not poison the cache.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.model, e.err
}

// Stats reports cache hits and misses so far.
func (c *ExtractCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached models.
func (c *ExtractCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
