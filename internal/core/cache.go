package core

import (
	"container/list"
	"context"
	"runtime"
	"sync"

	"repro/internal/timing"
)

// extractKey identifies one extraction: the module timing graph (by
// identity — graphs are immutable once built) plus the options that change
// the result. Workers is deliberately excluded: it affects only the
// schedule, never the extracted model.
type extractKey struct {
	graph    *timing.Graph
	delta    float64
	noGuard  bool
	maxIters int
}

func newExtractKey(g *timing.Graph, opt Options) extractKey {
	delta := opt.Delta
	if delta == 0 {
		delta = DefaultDelta
	}
	return extractKey{graph: g, delta: delta, noGuard: opt.DisablePathProtection, maxIters: opt.MaxMergeIters}
}

// extractEntry is a singleflight slot: the first caller computes, everyone
// else blocks on done and reads the shared result. Completed entries are
// additionally linked into the cache's LRU list; in-flight entries are not
// (and therefore can never be evicted mid-computation).
type extractEntry struct {
	key   extractKey
	done  chan struct{}
	model *Model
	err   error
	cost  int64
	elem  *list.Element // nil while the extraction is in flight
}

// DefaultCacheEntries is the entry cap installed by NewExtractCache. A
// long-running process analyzing an open-ended stream of distinct graphs
// must not pin every one of them forever; callers that genuinely want an
// unbounded cache can ask for one via NewExtractCacheSized(0, 0).
const DefaultCacheEntries = 256

// ExtractCache memoizes timing-model extraction so each distinct module is
// extracted at most once per option set, no matter how many instances,
// corners or concurrent analyses reference it. It is safe for concurrent
// use; duplicate concurrent requests for the same key are coalesced into a
// single extraction (singleflight).
//
// The cache is size-bounded: completed entries live on an LRU list with a
// configurable entry cap and an optional cost budget (an estimate of the
// retained model bytes), and least-recently-used entries are evicted once
// either bound is exceeded. Eviction only drops the cache's references —
// models already handed out stay valid, and a re-request re-extracts.
type ExtractCache struct {
	mu      sync.Mutex
	entries map[extractKey]*extractEntry
	lru     list.List // completed entries; front = most recently used

	maxEntries int   // <= 0: unbounded
	maxCost    int64 // <= 0: unbounded
	cost       int64 // summed cost of completed entries

	// filling counts detached fill goroutines. Bounding it keeps the
	// cancellable-wait design from becoming an amplification vector: a
	// stream of distinct-key requests with short deadlines may abandon at
	// most maxFill background extractions; beyond that, misses compute
	// inline on the caller (bounded by the caller's own concurrency).
	filling int
	maxFill int

	hits      int64
	misses    int64
	evictions int64
}

// NewExtractCache returns a cache bounded at DefaultCacheEntries entries
// with no cost budget.
func NewExtractCache() *ExtractCache {
	return NewExtractCacheSized(DefaultCacheEntries, 0)
}

// NewExtractCacheSized returns a cache holding at most maxEntries completed
// models whose summed cost estimate stays within maxCost bytes. A zero or
// negative value disables the respective bound; the most recent entry is
// always retained, so a single model larger than maxCost does not thrash.
func NewExtractCacheSized(maxEntries int, maxCost int64) *ExtractCache {
	return &ExtractCache{
		entries:    make(map[extractKey]*extractEntry),
		maxEntries: maxEntries,
		maxCost:    maxCost,
		maxFill:    runtime.GOMAXPROCS(0),
	}
}

// modelCost estimates the resident size of a cached model in bytes: the
// dominant term is one canonical form per edge (nominal + rand + global and
// local sensitivity vectors), plus per-vertex adjacency overhead.
func modelCost(m *Model) int64 {
	if m == nil || m.Graph == nil {
		return 1
	}
	g := m.Graph
	stride := int64(g.Space.Globals+g.Space.Components+2) * 8
	return int64(len(g.Edges))*stride + int64(g.NumVerts)*16
}

// Extract returns the memoized model for (g, opt), running the extraction
// pipeline on a miss. The returned *Model is shared between callers and
// must be treated as immutable.
func (c *ExtractCache) Extract(g *timing.Graph, opt Options) (*Model, error) {
	return c.ExtractCtx(context.Background(), g, opt)
}

// ExtractCtx is Extract with cancellable waiting: every caller — including
// the one that triggered the computation — stops waiting once its ctx
// fires. The extraction itself always runs to completion on a detached
// goroutine: it is shared, singleflight-bounded work whose result warms
// the cache for the waiters and requests that follow, so a cancelled
// initiator must neither block on it nor abort it.
func (c *ExtractCache) ExtractCtx(ctx context.Context, g *timing.Graph, opt Options) (*Model, error) {
	if c == nil {
		return ExtractCtx(ctx, g, opt)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := newExtractKey(g, opt)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
	} else {
		e = &extractEntry{key: key, done: make(chan struct{})}
		c.entries[key] = e
		c.misses++
		detach := c.filling < c.maxFill
		if detach {
			c.filling++
		}
		c.mu.Unlock()
		fill := func() {
			e.model, e.err = Extract(g, opt)
			c.mu.Lock()
			if detach {
				c.filling--
			}
			if c.entries[key] == e {
				if e.err != nil {
					// Do not pin failures: a later retry may succeed (e.g.
					// transient resource exhaustion) and a stale error must
					// not poison the cache.
					delete(c.entries, key)
				} else {
					e.cost = modelCost(e.model)
					e.elem = c.lru.PushFront(e)
					c.cost += e.cost
					c.evictLocked()
				}
			}
			c.mu.Unlock()
			close(e.done)
		}
		if !detach {
			// Fill capacity saturated: compute inline. The wait below
			// resolves immediately; the deadline is honored again once the
			// background fills drain.
			fill()
			return e.model, e.err
		}
		go fill()
	}
	select {
	case <-e.done:
		return e.model, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// evictLocked drops least-recently-used completed entries until both bounds
// hold again, always retaining at least the freshest completed entry.
// In-flight entries are not on the list and are never touched.
func (c *ExtractCache) evictLocked() {
	for c.lru.Len() > 1 &&
		((c.maxEntries > 0 && c.lru.Len() > c.maxEntries) ||
			(c.maxCost > 0 && c.cost > c.maxCost)) {
		back := c.lru.Back()
		e := back.Value.(*extractEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.cost -= e.cost
		c.evictions++
	}
}

// Stats reports cache hits and misses so far.
func (c *ExtractCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheMetrics is a point-in-time snapshot of the cache counters, exposed
// by the serving layer's /metrics endpoint.
type CacheMetrics struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Entries    int   // completed + in-flight
	Cost       int64 // summed cost estimate of completed entries (bytes)
	MaxEntries int   // 0: unbounded
	MaxCost    int64 // 0: unbounded
}

// Metrics snapshots the cache counters.
func (c *ExtractCache) Metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := CacheMetrics{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.entries), Cost: c.cost,
		MaxCost: c.maxCost,
	}
	if c.maxEntries > 0 {
		m.MaxEntries = c.maxEntries
	}
	return m
}

// Len returns the number of cached models (including in-flight ones).
func (c *ExtractCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup peeks for a completed model under (g, opt) without blocking and
// without triggering an extraction. In-flight entries report a miss: the
// caller that wants to wait should use ExtractCtx. A hit counts toward
// the cache's hit statistics; a miss is not counted here because the
// caller typically follows up with ExtractCtx, which does the counting.
// The cluster layer uses this to decide whether to consult the remote
// model-cache tier before paying for a local extraction.
func (c *ExtractCache) Lookup(g *timing.Graph, opt Options) (*Model, bool) {
	if c == nil {
		return nil, false
	}
	key := newExtractKey(g, opt)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.elem == nil || e.err != nil {
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e.elem)
	return e.model, true
}

// Seed installs an already extracted model under (g, opt) without running
// the pipeline — the warm-start path: a restored snapshot re-enters the
// cache so the first post-restart request hits instead of re-extracting.
// An existing entry (completed or in flight) wins and Seed reports false;
// the model must be treated as immutable from here on.
func (c *ExtractCache) Seed(g *timing.Graph, opt Options, m *Model) bool {
	if c == nil || m == nil {
		return false
	}
	key := newExtractKey(g, opt)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &extractEntry{key: key, done: make(chan struct{}), model: m, cost: modelCost(m)}
	close(e.done)
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	c.cost += e.cost
	c.evictLocked()
	return true
}
