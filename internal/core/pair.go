package core

import (
	"fmt"

	"repro/internal/canon"
	"repro/internal/timing"
)

// PairCriticalities returns the per-edge criticality c_ij (paper
// Definition 1) for a single input/output pair, given as indices into
// g.Inputs and g.Outputs. Edges on no i->j path have criticality 0.
//
// It uses the same level-cutset complement construction as
// EdgeCriticalities but evaluates an edge at *every* boundary it crosses
// (taking the maximum), since a single pair is cheap enough not to need the
// home-boundary optimization.
func PairCriticalities(g *timing.Graph, i, j int) ([]float64, error) {
	if i < 0 || i >= len(g.Inputs) {
		return nil, fmt.Errorf("core: input index %d out of range", i)
	}
	if j < 0 || j >= len(g.Outputs) {
		return nil, fmt.Errorf("core: output index %d out of range", j)
	}
	lv, err := g.Levels()
	if err != nil {
		return nil, err
	}
	arr := g.AcquirePass()
	defer arr.Release()
	if err := arr.Arrivals(g.Inputs[i]); err != nil {
		return nil, err
	}
	req := g.AcquirePass()
	defer req.Release()
	if err := req.Required(g.Outputs[j]); err != nil {
		return nil, err
	}
	out := make([]float64, len(g.Edges))
	if !arr.Reached(g.Outputs[j]) {
		return out, nil // pair unreachable: all zero
	}
	delays := g.EdgeDelays()

	maxLevel := lv.MaxLevel
	crossing := make([][]int32, maxLevel+1)
	maxCross := 0
	for e := range g.Edges {
		if g.Edges[e].Removed {
			// Tombstoned edges are on no path; their endpoints may still be
			// reached through live edges, so the alive gate alone would not
			// exclude them.
			continue
		}
		lf, lt := lv.Level[g.Edges[e].From], lv.Level[g.Edges[e].To]
		for k := lf + 1; k <= lt; k++ {
			crossing[k] = append(crossing[k], int32(e))
			if len(crossing[k]) > maxCross {
				maxCross = len(crossing[k])
			}
		}
	}

	scratch := canon.NewBank(g.Space, 3*maxCross+1)
	var des, prefix, suffix []canon.View
	var eids []int32
	for k := 1; k <= maxLevel; k++ {
		scratch.Reset()
		des, eids = des[:0], eids[:0]
		for _, e := range crossing[k] {
			ed := &g.Edges[e]
			if !arr.Reached(ed.From) || !req.Reached(ed.To) {
				continue
			}
			de := scratch.Take()
			canon.AddViews(de, arr.At(ed.From), delays.View(int(e)))
			canon.AddViews(de, de, req.At(ed.To))
			des = append(des, de)
			eids = append(eids, e)
		}
		m := len(des)
		switch {
		case m == 0:
			continue
		case m == 1:
			out[eids[0]] = 1
			continue
		}
		prefix, suffix = prefix[:0], suffix[:0]
		for t := 0; t < m; t++ {
			prefix = append(prefix, scratch.Take())
			suffix = append(suffix, scratch.Take())
		}
		canon.CopyView(prefix[0], des[0])
		for t := 1; t < m; t++ {
			canon.MaxViews(prefix[t], prefix[t-1], des[t])
		}
		canon.CopyView(suffix[m-1], des[m-1])
		for t := m - 2; t >= 0; t-- {
			canon.MaxViews(suffix[t], suffix[t+1], des[t])
		}
		comp := scratch.Take()
		for t := 0; t < m; t++ {
			var c float64
			switch t {
			case 0:
				c = canon.TightnessProbViews(des[t], suffix[1])
			case m - 1:
				c = canon.TightnessProbViews(des[t], prefix[m-2])
			default:
				canon.MaxViews(comp, prefix[t-1], suffix[t+1])
				c = canon.TightnessProbViews(des[t], comp)
			}
			if c > out[eids[t]] {
				out[eids[t]] = c
			}
		}
	}
	return out, nil
}
