package core

import (
	"fmt"

	"repro/internal/canon"
	"repro/internal/timing"
)

// PairCriticalities returns the per-edge criticality c_ij (paper
// Definition 1) for a single input/output pair, given as indices into
// g.Inputs and g.Outputs. Edges on no i->j path have criticality 0.
//
// It uses the same level-cutset complement construction as
// EdgeCriticalities but evaluates an edge at *every* boundary it crosses
// (taking the maximum), since a single pair is cheap enough not to need the
// home-boundary optimization.
func PairCriticalities(g *timing.Graph, i, j int) ([]float64, error) {
	if i < 0 || i >= len(g.Inputs) {
		return nil, fmt.Errorf("core: input index %d out of range", i)
	}
	if j < 0 || j >= len(g.Outputs) {
		return nil, fmt.Errorf("core: output index %d out of range", j)
	}
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	arr, err := g.ArrivalFrom(g.Inputs[i])
	if err != nil {
		return nil, err
	}
	req, err := g.DelayToOutput(g.Outputs[j])
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(g.Edges))
	if arr[g.Outputs[j]] == nil {
		return out, nil // pair unreachable: all zero
	}

	level := make([]int, g.NumVerts)
	maxLevel := 0
	for _, v := range order {
		for _, ei := range g.In[v] {
			if l := level[g.Edges[ei].From] + 1; l > level[v] {
				level[v] = l
			}
		}
		if level[v] > maxLevel {
			maxLevel = level[v]
		}
	}
	crossing := make([][]int32, maxLevel+1)
	for e := range g.Edges {
		lf, lt := level[g.Edges[e].From], level[g.Edges[e].To]
		for k := lf + 1; k <= lt; k++ {
			crossing[k] = append(crossing[k], int32(e))
		}
	}

	arena := newFormArena(g.Space)
	for k := 1; k <= maxLevel; k++ {
		arena.reset()
		var des []*canon.Form
		var eids []int32
		for _, e := range crossing[k] {
			ed := &g.Edges[e]
			af, rf := arr[ed.From], req[ed.To]
			if af == nil || rf == nil {
				continue
			}
			de := arena.next()
			canon.AddInto(de, af, ed.Delay)
			canon.AddInto(de, de, rf)
			des = append(des, de)
			eids = append(eids, e)
		}
		m := len(des)
		switch {
		case m == 0:
			continue
		case m == 1:
			out[eids[0]] = 1
			continue
		}
		prefix := arena.block(m)
		suffix := arena.block(m)
		canon.Copy(prefix[0], des[0])
		for t := 1; t < m; t++ {
			canon.MaxInto(prefix[t], prefix[t-1], des[t])
		}
		canon.Copy(suffix[m-1], des[m-1])
		for t := m - 2; t >= 0; t-- {
			canon.MaxInto(suffix[t], suffix[t+1], des[t])
		}
		comp := arena.next()
		for t := 0; t < m; t++ {
			var c float64
			switch t {
			case 0:
				c = canon.TightnessProb(des[t], suffix[1])
			case m - 1:
				c = canon.TightnessProb(des[t], prefix[m-2])
			default:
				canon.MaxInto(comp, prefix[t-1], suffix[t+1])
				c = canon.TightnessProb(des[t], comp)
			}
			if c > out[eids[t]] {
				out[eids[t]] = c
			}
		}
	}
	return out, nil
}
