package core

import (
	"sync"
	"testing"
)

func TestExtractCacheHit(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	c := NewExtractCache()

	m1, err := c.Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("second extraction did not hit the cache")
	}
	// Delta 0 normalizes to DefaultDelta: same key.
	m3, err := c.Extract(g, Options{Delta: DefaultDelta})
	if err != nil {
		t.Fatal(err)
	}
	if m3 != m1 {
		t.Fatal("Delta=0 and Delta=DefaultDelta should share a cache entry")
	}
	// Workers is schedule-only and must not split the key.
	m4, err := c.Extract(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m4 != m1 {
		t.Fatal("Workers changed the cache key")
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 3 {
		t.Fatalf("stats = %d hits / %d misses, want 3/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

func TestExtractCacheKeyedByOptions(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	c := NewExtractCache()
	loose, err := c.Extract(g, Options{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := c.Extract(g, Options{Delta: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if loose == tight {
		t.Fatal("different deltas share one cache entry")
	}
	if loose.Stats.EdgesModel <= tight.Stats.EdgesModel {
		t.Fatalf("delta 0.01 model (%d edges) not larger than delta 0.20 (%d)",
			loose.Stats.EdgesModel, tight.Stats.EdgesModel)
	}
	// Distinct graphs are distinct keys even with equal options.
	g2 := buildGraph(t, "c432", 2)
	other, err := c.Extract(g2, Options{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if other == loose {
		t.Fatal("different graphs share one cache entry")
	}
}

// TestExtractCacheConcurrent hammers one key from many goroutines: all
// callers must observe the same model and the pipeline must run once.
// Run with -race.
func TestExtractCacheConcurrent(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	c := NewExtractCache()
	const goroutines = 16
	models := make([]*Model, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for k := 0; k < goroutines; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			models[k], errs[k] = c.Extract(g, Options{})
		}(k)
	}
	wg.Wait()
	for k := 0; k < goroutines; k++ {
		if errs[k] != nil {
			t.Fatal(errs[k])
		}
		if models[k] != models[0] {
			t.Fatalf("goroutine %d got a different model", k)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 {
		t.Fatalf("extraction ran %d times, want 1 (hits %d)", misses, hits)
	}
}

func TestExtractCacheMatchesDirect(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	direct, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewExtractCache().Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.EdgesModel != direct.Stats.EdgesModel ||
		cached.Stats.VertsModel != direct.Stats.VertsModel {
		t.Fatalf("cached model shape %d/%d differs from direct %d/%d",
			cached.Stats.EdgesModel, cached.Stats.VertsModel,
			direct.Stats.EdgesModel, direct.Stats.VertsModel)
	}
}

func TestExtractCacheNilReceiver(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	var c *ExtractCache
	if _, err := c.Extract(g, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractCacheErrorNotPinned(t *testing.T) {
	c := NewExtractCache()
	if _, err := c.Extract(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if c.Len() != 0 {
		t.Fatal("failed extraction left a cache entry")
	}
}
