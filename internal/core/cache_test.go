package core

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestExtractCacheHit(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	c := NewExtractCache()

	m1, err := c.Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("second extraction did not hit the cache")
	}
	// Delta 0 normalizes to DefaultDelta: same key.
	m3, err := c.Extract(g, Options{Delta: DefaultDelta})
	if err != nil {
		t.Fatal(err)
	}
	if m3 != m1 {
		t.Fatal("Delta=0 and Delta=DefaultDelta should share a cache entry")
	}
	// Workers is schedule-only and must not split the key.
	m4, err := c.Extract(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m4 != m1 {
		t.Fatal("Workers changed the cache key")
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 3 {
		t.Fatalf("stats = %d hits / %d misses, want 3/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

func TestExtractCacheKeyedByOptions(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	c := NewExtractCache()
	loose, err := c.Extract(g, Options{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := c.Extract(g, Options{Delta: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if loose == tight {
		t.Fatal("different deltas share one cache entry")
	}
	if loose.Stats.EdgesModel <= tight.Stats.EdgesModel {
		t.Fatalf("delta 0.01 model (%d edges) not larger than delta 0.20 (%d)",
			loose.Stats.EdgesModel, tight.Stats.EdgesModel)
	}
	// Distinct graphs are distinct keys even with equal options.
	g2 := buildGraph(t, "c432", 2)
	other, err := c.Extract(g2, Options{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if other == loose {
		t.Fatal("different graphs share one cache entry")
	}
}

// TestExtractCacheConcurrent hammers one key from many goroutines: all
// callers must observe the same model and the pipeline must run once.
// Run with -race.
func TestExtractCacheConcurrent(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	c := NewExtractCache()
	const goroutines = 16
	models := make([]*Model, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for k := 0; k < goroutines; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			models[k], errs[k] = c.Extract(g, Options{})
		}(k)
	}
	wg.Wait()
	for k := 0; k < goroutines; k++ {
		if errs[k] != nil {
			t.Fatal(errs[k])
		}
		if models[k] != models[0] {
			t.Fatalf("goroutine %d got a different model", k)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 {
		t.Fatalf("extraction ran %d times, want 1 (hits %d)", misses, hits)
	}
}

func TestExtractCacheMatchesDirect(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	direct, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewExtractCache().Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.EdgesModel != direct.Stats.EdgesModel ||
		cached.Stats.VertsModel != direct.Stats.VertsModel {
		t.Fatalf("cached model shape %d/%d differs from direct %d/%d",
			cached.Stats.EdgesModel, cached.Stats.VertsModel,
			direct.Stats.EdgesModel, direct.Stats.VertsModel)
	}
}

func TestExtractCacheNilReceiver(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	var c *ExtractCache
	if _, err := c.Extract(g, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractCacheErrorNotPinned(t *testing.T) {
	c := NewExtractCache()
	if _, err := c.Extract(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if c.Len() != 0 {
		t.Fatal("failed extraction left a cache entry")
	}
}

// TestExtractCacheEviction is the regression test for the unbounded-growth
// leak: under a cap of N the cache holds at most N entries after 2N
// distinct extractions, and the overflow shows up as evictions.
func TestExtractCacheEviction(t *testing.T) {
	const cap = 4
	c := NewExtractCacheSized(cap, 0)
	for i := 0; i < 2*cap; i++ {
		// Each call builds a fresh graph: distinct pointer, distinct key.
		if _, err := c.Extract(buildGraph(t, "c17", 1), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got > cap {
		t.Fatalf("cache holds %d entries after %d distinct extractions, cap %d", got, 2*cap, cap)
	}
	m := c.Metrics()
	if m.Evictions != cap {
		t.Fatalf("evictions = %d, want %d", m.Evictions, cap)
	}
	if m.Misses != 2*cap || m.Hits != 0 {
		t.Fatalf("stats = %d hits / %d misses, want 0/%d", m.Hits, m.Misses, 2*cap)
	}
	if m.MaxEntries != cap {
		t.Fatalf("MaxEntries = %d, want %d", m.MaxEntries, cap)
	}
}

// TestExtractCacheLRUOrder: a hit refreshes recency, so the least recently
// *used* entry is the one evicted.
func TestExtractCacheLRUOrder(t *testing.T) {
	c := NewExtractCacheSized(2, 0)
	g1 := buildGraph(t, "c17", 1)
	g2 := buildGraph(t, "c17", 1)
	m1, err := c.Extract(g1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extract(g2, Options{}); err != nil {
		t.Fatal(err)
	}
	// Touch g1 so g2 becomes least recently used, then overflow the cap.
	if m, err := c.Extract(g1, Options{}); err != nil || m != m1 {
		t.Fatalf("g1 hit: model %p want %p (err %v)", m, m1, err)
	}
	if _, err := c.Extract(buildGraph(t, "c17", 1), Options{}); err != nil {
		t.Fatal(err)
	}
	if m, err := c.Extract(g1, Options{}); err != nil || m != m1 {
		t.Fatalf("recently used g1 was evicted (model %p want %p, err %v)", m, m1, err)
	}
	before := c.Metrics().Misses
	if _, err := c.Extract(g2, Options{}); err != nil {
		t.Fatal(err)
	}
	if after := c.Metrics().Misses; after != before+1 {
		t.Fatal("least recently used g2 survived the eviction")
	}
}

// TestExtractCacheCostBound: a byte budget evicts down to the most recent
// entry instead of thrashing to zero.
func TestExtractCacheCostBound(t *testing.T) {
	c := NewExtractCacheSized(0, 1) // every real model exceeds one byte
	g1 := buildGraph(t, "c17", 1)
	g2 := buildGraph(t, "c17", 1)
	if _, err := c.Extract(g1, Options{}); err != nil {
		t.Fatal(err)
	}
	m2, err := c.Extract(g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("cost bound kept %d entries, want 1", got)
	}
	if m, err := c.Extract(g2, Options{}); err != nil || m != m2 {
		t.Fatal("most recent entry was not the retained one")
	}
	if m := c.Metrics(); m.Cost <= 0 || m.Evictions != 1 {
		t.Fatalf("metrics after cost eviction: %+v", m)
	}
}

// TestExtractCacheCtxCancelled: a cancelled caller neither computes nor
// leaves residue in the cache.
func TestExtractCacheCtxCancelled(t *testing.T) {
	c := NewExtractCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExtractCtx(ctx, buildGraph(t, "c17", 1), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatal("cancelled extraction left a cache entry")
	}
}
