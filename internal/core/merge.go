package core

import (
	"repro/internal/canon"
	"repro/internal/timing"
)

// modelGraph is the mutable multigraph the merge operations work on. Edges
// and vertices are soft-deleted; adjacency is rebuilt lazily per pass.
type modelGraph struct {
	space  canon.Space
	nVerts int
	edges  []modelEdge
	inE    [][]int // alive fanin edge ids per vertex
	outE   [][]int // alive fanout edge ids per vertex
	isPort []bool
	vAlive []bool
	dirty  bool
}

type modelEdge struct {
	from, to int
	delay    *canon.Form
	alive    bool
}

// newModelGraph copies a timing graph into mutable form, dropping the edges
// marked for removal.
func newModelGraph(g *timing.Graph, removeEdge []bool) *modelGraph {
	m := &modelGraph{
		space:  g.Space,
		nVerts: g.NumVerts,
		edges:  make([]modelEdge, 0, len(g.Edges)),
		isPort: make([]bool, g.NumVerts),
		vAlive: make([]bool, g.NumVerts),
	}
	for _, v := range g.Inputs {
		m.isPort[v] = true
	}
	for _, v := range g.Outputs {
		m.isPort[v] = true
	}
	for i := range m.vAlive {
		m.vAlive[i] = true
	}
	for ei := range g.Edges {
		if removeEdge != nil && removeEdge[ei] {
			continue
		}
		e := &g.Edges[ei]
		m.edges = append(m.edges, modelEdge{from: e.From, to: e.To, delay: e.Delay.Clone(), alive: true})
	}
	m.rebuild()
	return m
}

func (m *modelGraph) rebuild() {
	m.inE = make([][]int, m.nVerts)
	m.outE = make([][]int, m.nVerts)
	for ei := range m.edges {
		e := &m.edges[ei]
		if !e.alive {
			continue
		}
		m.inE[e.to] = append(m.inE[e.to], ei)
		m.outE[e.from] = append(m.outE[e.from], ei)
	}
	m.dirty = false
}

func (m *modelGraph) killEdge(ei int) {
	e := &m.edges[ei]
	if !e.alive {
		return
	}
	e.alive = false
	m.dirty = true
}

func (m *modelGraph) addEdge(from, to int, delay *canon.Form) int {
	m.edges = append(m.edges, modelEdge{from: from, to: to, delay: delay, alive: true})
	m.dirty = true
	return len(m.edges) - 1
}

func (m *modelGraph) killVertex(v int) {
	m.vAlive[v] = false
	for _, ei := range m.inE[v] {
		m.killEdge(ei)
	}
	for _, ei := range m.outE[v] {
		m.killEdge(ei)
	}
}

// trim removes internal (non-port) vertices that lost all fanin or all
// fanout: paths through them no longer connect an input to an output, so
// they contribute nothing to the delay matrix. Returns true on change.
func (m *modelGraph) trim() bool {
	changed := false
	for {
		if m.dirty {
			m.rebuild()
		}
		round := false
		for v := 0; v < m.nVerts; v++ {
			if !m.vAlive[v] || m.isPort[v] {
				continue
			}
			in, out := len(m.inE[v]), len(m.outE[v])
			if in == 0 || out == 0 {
				m.killVertex(v)
				round = true
			}
		}
		if !round {
			return changed
		}
		changed = true
	}
}

// parallelMerge replaces every bundle of parallel edges (same source and
// sink) by one edge carrying their statistical maximum (paper Fig. 2).
// Returns true on change.
func (m *modelGraph) parallelMerge() bool {
	if m.dirty {
		m.rebuild()
	}
	changed := false
	for v := 0; v < m.nVerts; v++ {
		if !m.vAlive[v] || len(m.outE[v]) < 2 {
			continue
		}
		groups := make(map[int][]int) // sink -> edge ids
		for _, ei := range m.outE[v] {
			groups[m.edges[ei].to] = append(groups[m.edges[ei].to], ei)
		}
		for to, eids := range groups {
			if len(eids) < 2 {
				continue
			}
			merged := m.edges[eids[0]].delay.Clone()
			for _, ei := range eids[1:] {
				canon.MaxInto(merged, merged, m.edges[ei].delay)
			}
			for _, ei := range eids {
				m.killEdge(ei)
			}
			m.addEdge(v, to, merged)
			changed = true
		}
	}
	return changed
}

// serialMerge eliminates internal vertices with a single fanin (forward
// direction, paper Fig. 1a) or a single fanout (reverse direction, Fig. 1b),
// composing the edge delays with statistical sum. Returns true on change.
func (m *modelGraph) serialMerge() bool {
	if m.dirty {
		m.rebuild()
	}
	changed := false
	for v := 0; v < m.nVerts; v++ {
		if !m.vAlive[v] || m.isPort[v] {
			continue
		}
		if m.dirty {
			m.rebuild()
		}
		in, out := m.inE[v], m.outE[v]
		switch {
		case len(in) == 1 && len(out) >= 1:
			src := m.edges[in[0]]
			for _, ei := range out {
				e := m.edges[ei]
				m.addEdge(src.from, e.to, canon.Add(src.delay, e.delay))
			}
			m.killVertex(v)
			changed = true
		case len(out) == 1 && len(in) >= 1:
			dst := m.edges[out[0]]
			for _, ei := range in {
				e := m.edges[ei]
				m.addEdge(e.from, dst.to, canon.Add(e.delay, dst.delay))
			}
			m.killVertex(v)
			changed = true
		}
	}
	return changed
}

// reduce runs trim + merge passes to fixpoint (paper Fig. 3, step 3).
func (m *modelGraph) reduce(maxIters int) {
	if maxIters <= 0 {
		maxIters = 1 << 20
	}
	for iter := 0; iter < maxIters; iter++ {
		changed := m.trim()
		if m.parallelMerge() {
			changed = true
		}
		if m.serialMerge() {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// counts returns alive vertex and edge counts.
func (m *modelGraph) counts() (verts, edges int) {
	if m.dirty {
		m.rebuild()
	}
	for v := 0; v < m.nVerts; v++ {
		if !m.vAlive[v] {
			continue
		}
		// Ports always count; internal vertices count if connected.
		if m.isPort[v] || len(m.inE[v]) > 0 || len(m.outE[v]) > 0 {
			verts++
		}
	}
	for ei := range m.edges {
		if m.edges[ei].alive {
			edges++
		}
	}
	return verts, edges
}
