package core

import (
	"fmt"

	"repro/internal/timing"
)

// Sequential extraction: a clocked module's reduced model must preserve not
// just the port-to-port delay matrix but the register timing paths — clock
// root to every D pin (setup) and the clk->Q launches feeding them. We get
// both from the combinational machinery by extracting a *view* of the graph
// whose port set is widened: the clock roots join the inputs (as "__clk")
// and every register D pin joins the outputs. The all-pairs criticality
// engine and the dominant-path guard then protect sequential paths exactly
// like IO paths, and the rebuilt model keeps D pins as live vertices.
//
// The model's registers keep their setup/hold constraint forms but drop the
// structural anchors that no longer exist after reduction: Q and ClkEdge
// become -1 (merged arcs absorb the clk->Q delay into abstract model edges).
// Setup slack on the reduced model is exact up to the extraction delta; hold
// slack is approximate — edge removal can lengthen the shortest path, so
// reduced-model hold slacks are optimistic bounds and final hold signoff
// should run on the full graph.

// seqView widens a sequential graph's port set for extraction. It returns
// the view (a shallow clone sharing edge forms) and the number of extra
// output ports appended.
func seqView(g *timing.Graph) (*timing.Graph, int, error) {
	view := g.Clone()

	ins := append([]int(nil), g.Inputs...)
	inNames := append([]string(nil), g.InputNames...)
	for i, cr := range g.ClockRoots {
		name := "__clk"
		if len(g.ClockRoots) > 1 {
			name = fmt.Sprintf("__clk%d", i)
		}
		ins = append(ins, cr)
		inNames = append(inNames, name)
	}

	isPort := make(map[int]bool, len(g.Inputs)+len(g.Outputs))
	for _, v := range g.Inputs {
		isPort[v] = true
	}
	for _, v := range g.Outputs {
		isPort[v] = true
	}
	outs := append([]int(nil), g.Outputs...)
	outNames := append([]string(nil), g.OutputNames...)
	extra := 0
	for _, r := range g.Registers {
		// D pins that already are ports (registered POs share their D
		// vertex with an output; input-stage registers capture a PI) are
		// protected without widening.
		if isPort[r.D] {
			continue
		}
		isPort[r.D] = true
		outs = append(outs, r.D)
		outNames = append(outNames, "__regD:"+r.Name)
		extra++
	}
	if err := view.SetIO(ins, outs, inNames, outNames); err != nil {
		return nil, 0, err
	}
	// The widened ports drive extraction only; the view must not re-enter
	// the sequential path itself.
	view.Registers = nil
	view.ClockRoots = nil
	return view, extra, nil
}

// restoreSequential rewrites the widened-view model back into a sequential
// model: strips the extra ports, recovers the clock roots, and remaps the
// register metadata onto reduced-model vertices.
func restoreSequential(orig *timing.Graph, reduced *timing.Graph, extraOuts int) error {
	nIn, nOut := len(orig.Inputs), len(orig.Outputs)

	// Port positions give the old->new vertex correspondence for every
	// vertex we still need to address.
	newID := make(map[int]int, nIn+nOut+extraOuts+len(orig.ClockRoots))
	for i, v := range orig.Inputs {
		newID[v] = reduced.Inputs[i]
	}
	for j, v := range orig.Outputs {
		newID[v] = reduced.Outputs[j]
	}
	k := nOut
	for _, r := range orig.Registers {
		if _, ok := newID[r.D]; ok {
			continue
		}
		if k >= len(reduced.Outputs) {
			return fmt.Errorf("core: register %q D pin missing from reduced model", r.Name)
		}
		newID[r.D] = reduced.Outputs[k]
		k++
	}
	roots := make([]int, len(orig.ClockRoots))
	for i := range orig.ClockRoots {
		roots[i] = reduced.Inputs[nIn+i]
	}

	reduced.Inputs = reduced.Inputs[:nIn]
	reduced.InputNames = reduced.InputNames[:nIn]
	reduced.Outputs = reduced.Outputs[:nOut]
	reduced.OutputNames = reduced.OutputNames[:nOut]
	reduced.ClockRoots = roots

	regs := make([]timing.Register, 0, len(orig.Registers))
	for _, r := range orig.Registers {
		d, ok := newID[r.D]
		if !ok {
			return fmt.Errorf("core: register %q D vertex %d lost in reduction", r.Name, r.D)
		}
		regs = append(regs, timing.Register{
			Name: r.Name, Q: -1, D: d, ClkEdge: -1, Grid: r.Grid,
			Setup: r.Setup, Hold: r.Hold,
			SetupLSens: r.SetupLSens, HoldLSens: r.HoldLSens,
		})
	}
	reduced.Registers = regs
	return nil
}
