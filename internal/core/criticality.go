// Package core implements the paper's first contribution: statistical
// timing-model extraction for combinational modules (Sections III and IV).
//
// The extraction pipeline (paper Fig. 3) is:
//  1. compute the maximum criticality c_m of every edge over all
//     input/output pairs (Definition 1/2, eqs. 13-15),
//  2. remove edges with c_m below the threshold delta,
//  3. apply serial and parallel merge operations iteratively (Figs. 1-2).
//
// The reduced graph is a gray-box timing model with (approximately) the
// same statistical input-output delay matrix as the original module.
package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/canon"
	"repro/internal/stats"
	"repro/internal/timing"
)

// CriticalityResult bundles the outputs of the criticality engine.
type CriticalityResult struct {
	// Cm holds the maximum criticality of each edge over all IO pairs,
	// aligned with g.Edges (paper Definition 2). Under a criticality screen
	// (CriticalityOptions.ScreenDelta) entries at or above the threshold are
	// exact; entries below it may be conservative upper bounds (see
	// EdgeCriticalitiesOpt). Tombstoned edges carry zero.
	Cm []float64
	// Protected marks edges on a per-pair statistically dominant path
	// (greedy max-nominal backward walk). Removing only unprotected edges
	// guarantees every originally connected pair stays connected.
	Protected []bool
	// ScreenedBoundaries counts the per-(pair, boundary) home-edge
	// evaluations the delta-threshold screen pruned — zero in exact mode; a
	// diagnostic for pruning effectiveness, not part of the result proper.
	// (Branch-and-bound skips, which are value-exact and run in both modes,
	// are not counted here.)
	ScreenedBoundaries int64
}

// CriticalityOptions tunes the all-pairs criticality engine.
type CriticalityOptions struct {
	// Workers bounds the per-input fan-out (<=0: GOMAXPROCS).
	Workers int
	// ScreenDelta > 0 enables the delta-threshold criticality screen: a
	// home edge whose cheap criticality upper bound (exact nominal slack
	// over the boundary's sigma sum, see runInput) provably cannot reach
	// ScreenDelta skips its form evaluation and records the bound instead.
	// Cm entries >= ScreenDelta are unaffected (bit-identical to the exact
	// engine); entries below it may be the screen's upper bound instead of
	// the exact criticality, which is indistinguishable to a removal
	// decision at threshold ScreenDelta. Zero (or negative) keeps the exact
	// engine everywhere — the Fig. 6 escape hatch.
	ScreenDelta float64
}

// EdgeCriticalities runs the all-pairs criticality analysis of Section IV-B
// with `workers` concurrent per-input passes (<=0 means GOMAXPROCS).
//
// For every pair (i, j) and edge e it forms the edge path delay
//
//	de = a_e(i) + d(e) + r_e(j)            (paper eq. 15)
//
// and evaluates c_ij = P{de >= complement} (paper eqs. 13-14) with the
// tightness probability of eq. 6.
//
// The complement max{d̄e} is constructed through level cutsets: every i->j
// path crosses each logic-level boundary exactly once, so the edges
// crossing a boundary partition the paths, and the complement of e is the
// statistical max of de over the other crossing edges. Comparing de against
// the *forward-propagated* M_ij instead (the literal reading of eq. 14)
// makes an edge that carries every path of the pair come out near 0.5
// rather than 1, because the canonical form cannot represent the
// correlation between the lumped private-random parts of de and M_ij; the
// cutset complement avoids that representation gap entirely and matches
// Monte Carlo path tracing (see tests).
func EdgeCriticalities(g *timing.Graph, workers int) (*CriticalityResult, error) {
	return EdgeCriticalitiesCtx(context.Background(), g, workers)
}

// EdgeCriticalitiesCtx is EdgeCriticalities with cooperative cancellation:
// the per-input tasks run on a timing.ParallelForCtx pool, so a ctx firing
// (or any task failing) cancels the remaining inputs promptly and worker
// panics resurface on the caller as *timing.PanicError.
func EdgeCriticalitiesCtx(ctx context.Context, g *timing.Graph, workers int) (*CriticalityResult, error) {
	return EdgeCriticalitiesOpt(ctx, g, CriticalityOptions{Workers: workers})
}

// EdgeCriticalitiesOpt is the full-surface criticality entry point: exact
// by default, screened when opt.ScreenDelta > 0 (see CriticalityOptions).
func EdgeCriticalitiesOpt(ctx context.Context, g *timing.Graph, opt CriticalityOptions) (*CriticalityResult, error) {
	nE := len(g.Edges)
	if nE == 0 {
		return &CriticalityResult{}, nil
	}
	en, err := newCritEngine(ctx, g, opt, nil, nil)
	if err != nil {
		return nil, err
	}
	defer en.release()

	workers := timing.Workers(opt.Workers, len(g.Inputs))
	type acc struct {
		cm        []float64
		protected []bool
		ws        *critScratch
	}
	pool := make(chan *acc, workers)
	for w := 0; w < workers; w++ {
		pool <- &acc{
			cm:        make([]float64, nE),
			protected: make([]bool, nE),
			ws:        en.newScratch(),
		}
	}
	accs := make([]*acc, 0, workers)
	defer func() {
		// Drain whatever came back (on success: everything) and release the
		// pooled pass arenas. A worker panic resurfaces via ParallelForCtx
		// after the pool drained, so this defer still sees every scratch.
		for {
			select {
			case a := <-pool:
				a.ws.release()
			default:
				return
			}
		}
	}()
	err = timing.ParallelForCtx(ctx, len(g.Inputs), workers, func(ctx context.Context, i int) error {
		a := <-pool
		defer func() { pool <- a }()
		return en.runInput(ctx, i, a.cm, a.protected, a.ws)
	})
	if err != nil {
		return nil, err
	}
	for len(accs) < workers {
		accs = append(accs, <-pool)
	}
	res := &CriticalityResult{Cm: make([]float64, nE), Protected: make([]bool, nE)}
	for _, a := range accs {
		for e := 0; e < nE; e++ {
			if a.cm[e] > res.Cm[e] {
				res.Cm[e] = a.cm[e]
			}
			if a.protected[e] {
				res.Protected[e] = true
			}
		}
		pool <- a // hand back for the deferred scratch release
	}
	res.ScreenedBoundaries = en.screened.Load()
	return res, nil
}

// critEngine is the prepared state shared by every criticality input row:
// level cutsets, reachability, per-output backward passes, the flat delay
// bank, and the scalar screen tables. One engine serves both the one-shot
// all-pairs run and the per-row recomputation of IncrementalCriticality.
type critEngine struct {
	g   *timing.Graph
	opt CriticalityOptions

	lv       *timing.Levels
	rs       *timing.ReachSets
	crossing [][]int32 // boundary k (1..maxLevel): alive crossing edge ids
	home     []int32   // edge -> home boundary; -1 for tombstoned edges
	maxCross int

	outs [][]int32 // input position -> reachable output positions

	delays *canon.Bank

	// Per-output backward passes. Entries are nil for outputs the engine
	// was not prepared for (incremental refresh prepares only the outputs
	// its recomputed rows touch).
	req []*timing.Pass

	screen bool
	// screenCutZ is the largest z with Phi(z) < ScreenDelta under the
	// engine's CDF (stats.NormTP), so the scalar bound pass can screen in
	// z-space: zb <= screenCutZ exactly when Phi(zb) < ScreenDelta.
	screenCutZ float64
	screened   atomic.Int64 // home evaluations pruned by the screen

	// nonneg records that every live edge delay has a nonnegative shared
	// coefficient vector. Adds and Clark blends (convex combinations)
	// preserve that sign through arrivals, requireds and chains, so every
	// covariance the engine ever folds is provably nonnegative and the
	// bound pass may use the tighter theta bound sqrt(v(de) + oS^2) in
	// place of Cauchy-Schwarz's sig(de) + oS (see runInput).
	nonneg bool
}

// newCritEngine prepares the shared state. rs may carry a pre-computed
// reachability (nil: computed here); needOut selects the outputs to prepare
// backward state for (nil: all).
func newCritEngine(ctx context.Context, g *timing.Graph, opt CriticalityOptions, rs *timing.ReachSets, needOut []bool) (*critEngine, error) {
	// ScreenDelta is a criticality probability: a threshold >= 1 has no
	// z-space crossover and the ulp bracketing below would never
	// terminate. Reject it — options may arrive from untrusted input
	// (a restored session checkpoint, an API request).
	if opt.ScreenDelta >= 1 || math.IsNaN(opt.ScreenDelta) {
		return nil, fmt.Errorf("core: criticality screen delta %g outside [0, 1)", opt.ScreenDelta)
	}
	lv, err := g.Levels()
	if err != nil {
		return nil, err
	}
	if rs == nil {
		if rs, err = g.Reachability(); err != nil {
			return nil, err
		}
	}
	en := &critEngine{
		g: g, opt: opt, lv: lv, rs: rs,
		home:   make([]int32, len(g.Edges)),
		screen: opt.ScreenDelta > 0,
	}
	if en.screen {
		// Bracket the screen threshold in z-space: start from the quantile
		// and nudge by ulps until screenCutZ is the exact crossover of the
		// engine's own CDF.
		q := stats.NormQuantile(opt.ScreenDelta)
		for c, _ := stats.NormTP(q); c >= opt.ScreenDelta; c, _ = stats.NormTP(q) {
			q = math.Nextafter(q, math.Inf(-1))
		}
		for {
			up := math.Nextafter(q, math.Inf(1))
			if c, _ := stats.NormTP(up); c >= opt.ScreenDelta {
				break
			}
			q = up
		}
		en.screenCutZ = q
	}

	// Level-boundary cutsets: an edge u->v with level(u) < k <= level(v)
	// crosses boundary k; its criticality is evaluated once, at its home
	// boundary level(u)+1. Tombstoned edges are on no path and never enter
	// a cutset.
	en.crossing = make([][]int32, lv.MaxLevel+1)
	for e := range g.Edges {
		ed := &g.Edges[e]
		if ed.Removed {
			en.home[e] = -1
			continue
		}
		lf, lt := lv.Level[ed.From], lv.Level[ed.To]
		en.home[e] = lf + 1
		for k := lf + 1; k <= lt; k++ {
			en.crossing[k] = append(en.crossing[k], int32(e))
		}
	}
	for _, c := range en.crossing {
		if len(c) > en.maxCross {
			en.maxCross = len(c)
		}
	}

	// Sparse per-input list of reachable output positions.
	en.outs = make([][]int32, len(g.Inputs))
	for i, in := range g.Inputs {
		for j := range g.Outputs {
			if rs.ReachesOutput(in, j) {
				en.outs[i] = append(en.outs[i], int32(j))
			}
		}
	}

	en.delays = g.EdgeDelays() // build the flat delay bank before fanning out

	en.nonneg = true
	for e := range g.Edges {
		if g.Edges[e].Removed {
			continue
		}
		v := en.delays.View(e)
		for _, c := range v[1 : len(v)-1] {
			if c < 0 {
				en.nonneg = false
				break
			}
		}
		if !en.nonneg {
			break
		}
	}

	// Backward passes: vertex-to-output-j delay arenas, held for the
	// engine's lifetime, one per prepared output.
	en.req = make([]*timing.Pass, len(g.Outputs))
	err = timing.ParallelForCtx(ctx, len(g.Outputs), opt.Workers, func(ctx context.Context, j int) error {
		if needOut != nil && !needOut[j] {
			return nil
		}
		p := g.AcquirePass().WithContext(ctx)
		if err := p.Required(g.Outputs[j]); err != nil {
			p.Release()
			return err
		}
		en.req[j] = p
		return nil
	})
	if err != nil {
		en.release()
		return nil, err
	}
	return en, nil
}

// release returns the engine's pooled pass arenas.
func (en *critEngine) release() {
	for _, p := range en.req {
		if p != nil {
			p.Release()
		}
	}
	en.req = nil
}

// critScratch is the per-worker arena of the input-row loop: one arrival
// pass, the chain-slot bank, the per-pair path-delay cache, the shared
// base-form bank, and the scalar bound buffers. Everything is sized once;
// the row loop never allocates.
type critScratch struct {
	arrP *timing.Pass

	// chains holds one boundary's prefix/suffix Clark maxima: slot t is
	// prefix[t], slot maxCross+t is suffix[t].
	chains *canon.Bank

	// base caches a_e(i) + d(e) per edge for the current input — the half
	// of eq. 15 that does not depend on the output — so it is added once
	// per (input, edge) instead of once per (input, output, edge).
	base   *canon.Bank
	baseOK []bool

	// de holds one boundary's alive path delays a_e(i) + d(e) + r_e(j) in
	// crossing order (slot t for alive[t]), with their tracked variances
	// alongside in deCv/deR2. The bank is sized to the widest cutset —
	// cache-resident under the chain and tightness passes, unlike an
	// edge-count-sized arena.
	de   *canon.Bank
	deCv []float64
	deR2 []float64

	// cmZ carries the z-score whose CDF is the paired cm entry the fold
	// last wrote (-Inf for untouched entries, +Inf for the certain-one
	// cases), so the branch-and-bound and screen tests compare in z-space
	// without evaluating a CDF. It must track exactly the cm slice handed
	// to runInput: the one-shot run pairs each worker scratch with one
	// accumulator for the whole run; the incremental refresh resets cmZ
	// before every fresh row.
	cmZ []float64

	nomDe, sigDe     []float64 // per-alive-edge scalars at one boundary
	prefNom, prefSig []float64
	sufNom, sufSig   []float64

	prefCv, prefR2 []float64 // tracked variances of the chain slots
	sufCv, sufR2   []float64

	des, prefix, suffix []canon.View
	alive, evalHome     []int32
}

// newScratch builds a worker arena sized to the engine's graph.
func (en *critEngine) newScratch() *critScratch {
	g := en.g
	nE := len(g.Edges)
	ws := &critScratch{
		arrP:    g.AcquirePass(),
		chains:  canon.NewBank(g.Space, 2*en.maxCross),
		base:    canon.NewBank(g.Space, nE),
		baseOK:  make([]bool, nE),
		de:      canon.NewBank(g.Space, en.maxCross),
		deCv:    make([]float64, en.maxCross),
		deR2:    make([]float64, en.maxCross),
		cmZ:     make([]float64, nE),
		nomDe:   make([]float64, en.maxCross),
		sigDe:   make([]float64, en.maxCross),
		prefNom: make([]float64, en.maxCross),
		prefSig: make([]float64, en.maxCross),
		sufNom:  make([]float64, en.maxCross),
		sufSig:  make([]float64, en.maxCross),
		prefCv:  make([]float64, en.maxCross),
		prefR2:  make([]float64, en.maxCross),
		sufCv:   make([]float64, en.maxCross),
		sufR2:   make([]float64, en.maxCross),
		prefix:  make([]canon.View, en.maxCross),
		suffix:  make([]canon.View, en.maxCross),
	}
	ws.resetFold()
	return ws
}

// resetFold re-arms the z-space fold state for a zeroed cm row: cmZ slides
// back to -Inf (the z of criticality 0).
func (ws *critScratch) resetFold() {
	negInf := math.Inf(-1)
	for e := range ws.cmZ {
		ws.cmZ[e] = negInf
	}
}

// release gives the scratch's pooled pass back.
func (ws *critScratch) release() {
	if ws.arrP != nil {
		ws.arrP.Release()
		ws.arrP = nil
	}
}

// runInput computes one input's contribution to the criticality result:
// for input position i, it max-folds c_ij over every reachable output j
// into cm (aligned with g.Edges) and ORs the per-pair dominant-path edges
// into protected. Callers either pass per-worker accumulators (one-shot
// run) or a zeroed per-input row (incremental refresh); the fold semantics
// are identical — and because every skipped evaluation provably cannot
// displace the fold's maximum (see the bound analysis below), the final
// folded values are bit-identical across accumulator layouts.
//
// Per boundary the loop runs three stages. First it materializes the
// alive crossing path delays into a compact per-boundary bank sized to the
// widest cutset — small enough to stay cache-resident under the chain and
// tightness passes that re-read every slot several times (an edge spanning
// several levels is re-materialized at each boundary it crosses; the extra
// adds are cheaper than the cache misses of an edge-count-sized arena). Then a
// scalar pass bounds every home edge's criticality in z-space:
//
//	z_e  <=  zb = (nom(de) - maxOther nom) / (sig(de) + maxOther sig)
//
// whenever nom(de) < maxOther nom (otherwise zb = +Inf and the bound is
// the certain 1). The bound is sound against the engine's own Clark
// evaluation: the complement chain's mean dominates every member nominal
// (Clark's max mean dominates both operand means — the Mills-ratio
// inequality phi(z) >= z(1-Phi(z)) — inductively through the chain,
// including the degenerate larger-mean copy and the variance clip, which
// never lowers the mean), its sigma never exceeds the largest member sigma
// (Gaussian Poincare: max(A,B) has gradient a.e. equal to one operand's
// coefficient vector, so Var(max) <= max(VarA, VarB), preserved by the
// representability clip since the blended shared energy is itself a convex
// combination), and theta(de, comp) <= sig(de) + sig(comp) by
// Cauchy-Schwarz. A more negative numerator over a larger denominator only
// lowers z. Because the evaluation kernels return their final z alongside
// Phi(z), the fold tracks (cm, cmZ) pairs and both tests run without a CDF
// call: a home edge with zb <= cmZ[e] is skipped outright (branch-and-bound
// — exact, since the skipped value cannot raise the fold), and under a
// screen, zb at or below the precomputed screenCutZ crossover skips the
// evaluation and folds the bound instead (the one place the pass pays a
// CDF, and only when the bound advances the fold).
//
// Home edges that survive both tests reach the third stage:
// tracked-variance prefix/suffix Clark chains (built only over the index
// range the survivors need) and a fused complement tightness per survivor
// that never materializes the merged complement form. (Truncating the
// complement to "dominant" operands was evaluated and rejected: on the
// boundaries that actually evaluate, nominal gaps never reach even 2 sigma
// of the exact pairwise spread — the crossing operands genuinely compete,
// and no sound dominance test prunes any of them.)
func (en *critEngine) runInput(ctx context.Context, i int, cm []float64, protected []bool, ws *critScratch) error {
	g := en.g
	in := g.Inputs[i]
	arrP := ws.arrP.WithContext(ctx)
	if err := arrP.Arrivals(in); err != nil {
		return err
	}
	for e := range ws.baseOK {
		ws.baseOK[e] = false
	}
	for _, j := range en.outs[i] {
		if err := ctx.Err(); err != nil {
			return err
		}
		out := g.Outputs[j]
		if !arrP.Reached(out) {
			// The output is outside this input's cone: no i->j path exists,
			// so no boundary has an alive crossing edge and there is no
			// dominant path to protect.
			continue
		}
		rq := en.req[j]

		// Dominant-path protection: walk backward from the output along the
		// max-nominal fanin chain.
		for v := out; v != in; {
			bestEdge := -1
			bestNom := 0.0
			for _, ei := range g.In[v] {
				ed := &g.Edges[ei]
				if !arrP.Reached(ed.From) {
					continue
				}
				if nom := arrP.At(ed.From).Nominal() + ed.Delay.Nominal; bestEdge < 0 || nom > bestNom {
					bestEdge, bestNom = int(ei), nom
				}
			}
			if bestEdge < 0 {
				break // defensive: unreachable on a live path
			}
			protected[bestEdge] = true
			v = g.Edges[bestEdge].From
		}

		for k := 1; k <= en.lv.MaxLevel; k++ {
			// Gather crossing edges alive for this pair.
			alive := ws.alive[:0]
			nHome := 0
			for _, e := range en.crossing[k] {
				ed := &g.Edges[e]
				if !arrP.Reached(ed.From) || !rq.Reached(ed.To) {
					continue
				}
				alive = append(alive, e)
				if en.home[e] == int32(k) {
					nHome++
				}
			}
			ws.alive = alive
			m := len(alive)
			if m == 0 {
				continue
			}
			if m == 1 {
				// Single crossing edge: every path of the pair runs
				// through it.
				if en.home[alive[0]] == int32(k) {
					cm[alive[0]] = 1
					ws.cmZ[alive[0]] = math.Inf(1)
				}
				continue
			}
			if nHome == 0 {
				// No alive home edge: nothing is evaluated at this
				// boundary in any mode.
				continue
			}
			// Materialize the alive path delays into the compact
			// per-boundary bank (slot t holds alive[t]). An edge spanning
			// several levels is re-materialized at every boundary it crosses;
			// pair-scoped slot reuse was tried and measured slower — the
			// scattered slot order defeats the prefetcher on the chain and
			// tightness reads, costing more than the saved adds.
			des := ws.des[:0]
			nomDe, sigDe := ws.nomDe[:m], ws.sigDe[:m]
			deCv, deR2 := ws.deCv[:m], ws.deR2[:m]
			for t, e := range alive {
				ed := &g.Edges[e]
				bv := ws.base.View(int(e))
				if !ws.baseOK[e] {
					canon.AddViews(bv, arrP.At(ed.From), en.delays.View(int(e)))
					ws.baseOK[e] = true
				}
				de := ws.de.View(t)
				cv, r2 := canon.AddViewsVar(de, bv, rq.At(ed.To))
				deCv[t], deR2[t] = cv, r2
				des = append(des, de)
				nomDe[t] = de.Nominal()
				sigDe[t] = math.Sqrt(cv + r2)
			}
			ws.des = des
			// Scalar bound pass: leave-one-out nominal/sigma maxima, then
			// the branch-and-bound and screen tests per home edge.
			prefNom, prefSig := ws.prefNom[:m], ws.prefSig[:m]
			sufNom, sufSig := ws.sufNom[:m], ws.sufSig[:m]
			prefNom[0], prefSig[0] = nomDe[0], sigDe[0]
			for t := 1; t < m; t++ {
				prefNom[t] = maxf(prefNom[t-1], nomDe[t])
				prefSig[t] = maxf(prefSig[t-1], sigDe[t])
			}
			sufNom[m-1], sufSig[m-1] = nomDe[m-1], sigDe[m-1]
			for t := m - 2; t >= 0; t-- {
				sufNom[t] = maxf(sufNom[t+1], nomDe[t])
				sufSig[t] = maxf(sufSig[t+1], sigDe[t])
			}
			evalHome := ws.evalHome[:0]
			screened := int64(0)
			for t, e := range alive {
				if en.home[e] != int32(k) {
					continue
				}
				var oN, oS float64
				switch t {
				case 0:
					oN, oS = sufNom[1], sufSig[1]
				case m - 1:
					oN, oS = prefNom[m-2], prefSig[m-2]
				default:
					oN = maxf(prefNom[t-1], sufNom[t+1])
					oS = maxf(prefSig[t-1], sufSig[t+1])
				}
				zb := math.Inf(1)
				if nomDe[t] < oN {
					if en.nonneg {
						// cov(de, comp) >= 0, so theta^2 <= v(de) + v(comp)
						// <= v(de) + oS^2 — up to sqrt(2) tighter than the
						// sign-free Cauchy-Schwarz denominator below.
						zb = (nomDe[t] - oN) / math.Sqrt(deCv[t]+deR2[t]+oS*oS)
					} else {
						zb = (nomDe[t] - oN) / (sigDe[t] + oS)
					}
				}
				if en.screen && zb <= en.screenCutZ {
					// Screen prune: the exact value cannot reach the
					// removal threshold; record the bound.
					if zb > ws.cmZ[e] {
						b, _ := stats.NormTP(zb)
						cm[e], ws.cmZ[e] = b, zb
					}
					screened++
					continue
				}
				if zb <= ws.cmZ[e] {
					// Branch-and-bound: this evaluation cannot raise the
					// fold — skipping it leaves the final Cm exact.
					continue
				}
				evalHome = append(evalHome, int32(t))
			}
			ws.evalHome = evalHome
			if screened > 0 {
				en.screened.Add(screened)
			}
			if len(evalHome) == 0 {
				continue // every home edge skipped: no chains needed
			}
			// Chain demand: the prefix depth and suffix start the surviving
			// home edges actually reference.
			maxPref, loSuf := -1, m
			for _, t32 := range evalHome {
				switch t := int(t32); {
				case t == 0:
					loSuf = 1
				case t == m-1:
					if m-2 > maxPref {
						maxPref = m - 2
					}
				default:
					if t-1 > maxPref {
						maxPref = t - 1
					}
					if t+1 < loSuf {
						loSuf = t + 1
					}
				}
			}
			// Tracked-variance Clark chains, prefix and suffix interleaved.
			// Slot 0 / m-1 alias the path delays directly. A Clark step is one
			// long latency chain (covariance dot -> theta -> CDF -> blend, each
			// feeding the next), and consecutive steps of one fold are serially
			// dependent; the two folds are independent of each other, so
			// alternating their steps hands the out-of-order core two chains to
			// overlap instead of serializing every step back to back. The
			// per-fold step order is unchanged, so the results are bit-identical
			// to running the folds one after the other.
			prefix, suffix := ws.prefix[:m], ws.suffix[:m]
			prefCv, prefR2 := ws.prefCv[:m], ws.prefR2[:m]
			sufCv, sufR2 := ws.sufCv[:m], ws.sufR2[:m]
			if maxPref >= 0 {
				prefix[0] = des[0]
				prefCv[0], prefR2[0] = deCv[0], deR2[0]
			}
			if loSuf < m {
				suffix[m-1] = des[m-1]
				sufCv[m-1], sufR2[m-1] = deCv[m-1], deR2[m-1]
			}
			for pt, st := 1, m-2; pt <= maxPref || st >= loSuf; {
				if pt <= maxPref {
					prefix[pt] = ws.chains.View(pt)
					prefCv[pt], prefR2[pt] = canon.MaxViewsVar(prefix[pt], prefix[pt-1], des[pt],
						prefCv[pt-1], prefR2[pt-1], deCv[pt], deR2[pt])
					pt++
				}
				if st >= loSuf {
					suffix[st] = ws.chains.View(en.maxCross + st)
					sufCv[st], sufR2[st] = canon.MaxViewsVar(suffix[st], suffix[st+1], des[st],
						sufCv[st+1], sufR2[st+1], deCv[st], deR2[st])
					st--
				}
			}
			for _, t32 := range evalHome {
				t := int(t32)
				e := alive[t]
				vDe := deCv[t] + deR2[t]
				var c, zc float64
				switch {
				case t == 0:
					c, zc = canon.TightnessProbVar(des[0], suffix[1], vDe, sufCv[1]+sufR2[1])
				case t == m-1:
					c, zc = canon.TightnessProbVar(des[m-1], prefix[m-2], vDe, prefCv[m-2]+prefR2[m-2])
				default:
					c, zc = canon.CompTightnessViews(des[t], prefix[t-1], suffix[t+1], vDe,
						prefCv[t-1], prefR2[t-1], sufCv[t+1], sufR2[t+1])
				}
				if zc > ws.cmZ[e] {
					cm[e], ws.cmZ[e] = c, zc
				}
			}
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// CriticalityHistogram bins the per-edge maximum criticalities (paper
// Fig. 6 uses 20 bins over [0, 1]).
func CriticalityHistogram(cm []float64, bins int) (*stats.Histogram, error) {
	h, err := stats.NewHistogram(0, 1, bins)
	if err != nil {
		return nil, err
	}
	for _, c := range cm {
		h.Add(c)
	}
	return h, nil
}
