// Package core implements the paper's first contribution: statistical
// timing-model extraction for combinational modules (Sections III and IV).
//
// The extraction pipeline (paper Fig. 3) is:
//  1. compute the maximum criticality c_m of every edge over all
//     input/output pairs (Definition 1/2, eqs. 13-15),
//  2. remove edges with c_m below the threshold delta,
//  3. apply serial and parallel merge operations iteratively (Figs. 1-2).
//
// The reduced graph is a gray-box timing model with (approximately) the
// same statistical input-output delay matrix as the original module.
package core

import (
	"runtime"
	"sync"

	"repro/internal/canon"
	"repro/internal/stats"
	"repro/internal/timing"
)

// CriticalityResult bundles the outputs of the criticality engine.
type CriticalityResult struct {
	// Cm holds the maximum criticality of each edge over all IO pairs,
	// aligned with g.Edges (paper Definition 2).
	Cm []float64
	// Protected marks edges on a per-pair statistically dominant path
	// (greedy max-nominal backward walk). Removing only unprotected edges
	// guarantees every originally connected pair stays connected.
	Protected []bool
}

// EdgeCriticalities runs the all-pairs criticality analysis of Section IV-B
// with `workers` concurrent per-input passes (<=0 means GOMAXPROCS).
//
// For every pair (i, j) and edge e it forms the edge path delay
//
//	de = a_e(i) + d(e) + r_e(j)            (paper eq. 15)
//
// and evaluates c_ij = P{de >= complement} (paper eqs. 13-14) with the
// tightness probability of eq. 6.
//
// The complement max{d̄e} is constructed through level cutsets: every i->j
// path crosses each logic-level boundary exactly once, so the edges
// crossing a boundary partition the paths, and the complement of e is the
// statistical max of de over the other crossing edges. Comparing de against
// the *forward-propagated* M_ij instead (the literal reading of eq. 14)
// makes an edge that carries every path of the pair come out near 0.5
// rather than 1, because the canonical form cannot represent the
// correlation between the lumped private-random parts of de and M_ij; the
// cutset complement avoids that representation gap entirely and matches
// Monte Carlo path tracing (see tests).
func EdgeCriticalities(g *timing.Graph, workers int) (*CriticalityResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nE := len(g.Edges)
	if nE == 0 {
		return &CriticalityResult{}, nil
	}

	// Vertex levels and level-boundary cutsets. An edge u->v with
	// level(u) < k <= level(v) crosses boundary k; its criticality is
	// evaluated at its home boundary level(u)+1.
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	level := make([]int, g.NumVerts)
	maxLevel := 0
	for _, v := range order {
		for _, ei := range g.In[v] {
			if l := level[g.Edges[ei].From] + 1; l > level[v] {
				level[v] = l
			}
		}
		if level[v] > maxLevel {
			maxLevel = level[v]
		}
	}
	crossing := make([][]int32, maxLevel+1) // boundary k: 1..maxLevel
	home := make([]int, nE)
	for e := range g.Edges {
		lf, lt := level[g.Edges[e].From], level[g.Edges[e].To]
		home[e] = lf + 1
		for k := lf + 1; k <= lt; k++ {
			crossing[k] = append(crossing[k], int32(e))
		}
	}
	maxCross := 0
	for _, c := range crossing {
		if len(c) > maxCross {
			maxCross = len(c)
		}
	}
	delays := g.EdgeDelays() // build the flat delay bank before fanning out

	// Backward passes: vertex-to-output-j delay arenas for every output,
	// held flat for the whole run.
	req := make([]*timing.Pass, len(g.Outputs))
	defer func() {
		for _, p := range req {
			if p != nil {
				p.Release()
			}
		}
	}()
	err = timing.ParallelFor(len(g.Outputs), workers, func(j int) error {
		p := g.AcquirePass()
		if err := p.Required(g.Outputs[j]); err != nil {
			p.Release()
			return err
		}
		req[j] = p
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Sparse per-vertex list of outputs reachable from each vertex.
	_, toOut, err := g.Reachability()
	if err != nil {
		return nil, err
	}
	outsAt := make([][]int32, g.NumVerts)
	for v := 0; v < g.NumVerts; v++ {
		for j := range g.Outputs {
			if toOut[v][j/64]&(1<<uint(j%64)) != 0 {
				outsAt[v] = append(outsAt[v], int32(j))
			}
		}
	}

	type workerState struct {
		cm        []float64
		protected []bool
	}
	states := make([]*workerState, 0, workers)
	inputCh := make(chan int)
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	for w := 0; w < workers; w++ {
		st := &workerState{cm: make([]float64, nE), protected: make([]bool, nE)}
		states = append(states, st)
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			// All cutset forms of one boundary live in this flat scratch
			// bank: m path-delay forms, m prefix maxima, m suffix maxima
			// and one complement slot. Sized once to the widest boundary,
			// so the inner loop never allocates.
			scratch := canon.NewBank(g.Space, 3*maxCross+1)
			var des, prefix, suffix []canon.View
			var eids []int32
			arrP := g.AcquirePass()
			defer arrP.Release()
			for i := range inputCh {
				in := g.Inputs[i]
				if err := arrP.Arrivals(in); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				for _, j := range outsAt[in] {
					rq := req[j]
					for k := 1; k <= maxLevel; k++ {
						// Gather crossing edges alive for this pair.
						des = des[:0]
						eids = eids[:0]
						scratch.Reset()
						for _, e := range crossing[k] {
							ed := &g.Edges[e]
							if !arrP.Reached(ed.From) || !rq.Reached(ed.To) {
								continue
							}
							de := scratch.Take()
							canon.AddViews(de, arrP.At(ed.From), delays.View(int(e)))
							canon.AddViews(de, de, rq.At(ed.To))
							des = append(des, de)
							eids = append(eids, e)
						}
						m := len(des)
						if m == 0 {
							continue
						}
						if m == 1 {
							// Single crossing edge: every path of the pair
							// runs through it.
							if home[eids[0]] == k {
								st.cm[eids[0]] = 1
							}
							continue
						}
						// Prefix/suffix statistical maxima give each edge
						// the exact complement within the cutset.
						prefix, suffix = prefix[:0], suffix[:0]
						for t := 0; t < m; t++ {
							prefix = append(prefix, scratch.Take())
							suffix = append(suffix, scratch.Take())
						}
						canon.CopyView(prefix[0], des[0])
						for t := 1; t < m; t++ {
							canon.MaxViews(prefix[t], prefix[t-1], des[t])
						}
						canon.CopyView(suffix[m-1], des[m-1])
						for t := m - 2; t >= 0; t-- {
							canon.MaxViews(suffix[t], suffix[t+1], des[t])
						}
						comp := scratch.Take()
						for t := 0; t < m; t++ {
							e := eids[t]
							if home[e] != k {
								continue
							}
							var c float64
							switch t {
							case 0:
								c = canon.TightnessProbViews(des[t], suffix[1])
							case m - 1:
								c = canon.TightnessProbViews(des[t], prefix[m-2])
							default:
								canon.MaxViews(comp, prefix[t-1], suffix[t+1])
								c = canon.TightnessProbViews(des[t], comp)
							}
							if c > st.cm[e] {
								st.cm[e] = c
							}
						}
					}
					// Dominant-path protection: walk backward from the
					// output along the max-nominal fanin chain.
					out := g.Outputs[j]
					if !arrP.Reached(out) {
						continue
					}
					v := out
					for v != in {
						bestEdge := -1
						bestNom := 0.0
						for _, ei := range g.In[v] {
							ed := &g.Edges[ei]
							if !arrP.Reached(ed.From) {
								continue
							}
							if nom := arrP.At(ed.From).Nominal() + ed.Delay.Nominal; bestEdge < 0 || nom > bestNom {
								bestEdge, bestNom = int(ei), nom
							}
						}
						if bestEdge < 0 {
							break // defensive: unreachable on a live path
						}
						st.protected[bestEdge] = true
						v = g.Edges[bestEdge].From
					}
				}
			}
		}(st)
	}
	for i := range g.Inputs {
		inputCh <- i
	}
	close(inputCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res := &CriticalityResult{Cm: make([]float64, nE), Protected: make([]bool, nE)}
	for _, st := range states {
		for e := 0; e < nE; e++ {
			if st.cm[e] > res.Cm[e] {
				res.Cm[e] = st.cm[e]
			}
			if st.protected[e] {
				res.Protected[e] = true
			}
		}
	}
	return res, nil
}

// CriticalityHistogram bins the per-edge maximum criticalities (paper
// Fig. 6 uses 20 bins over [0, 1]).
func CriticalityHistogram(cm []float64, bins int) (*stats.Histogram, error) {
	h, err := stats.NewHistogram(0, 1, bins)
	if err != nil {
		return nil, err
	}
	for _, c := range cm {
		h.Add(c)
	}
	return h, nil
}
