package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/store"
	"repro/internal/timing"
	"repro/internal/variation"
)

// modelJSON is the on-disk representation of an extracted timing model —
// what an IP vendor would ship instead of the netlist (paper Section III).
type modelJSON struct {
	FormatVersion int         `json:"format_version"`
	Globals       int         `json:"globals"`
	Components    int         `json:"components"`
	NumVerts      int         `json:"num_verts"`
	Inputs        []int       `json:"inputs"`
	Outputs       []int       `json:"outputs"`
	InputNames    []string    `json:"input_names"`
	OutputNames   []string    `json:"output_names"`
	LoadSlopes    []float64   `json:"output_load_slopes,omitempty"`
	RefSlew       float64     `json:"ref_slew,omitempty"`
	InSlewSlopes  []float64   `json:"input_slew_slopes,omitempty"`
	OutPortSlews  []float64   `json:"output_port_slews,omitempty"`
	OutSlewSlopes []float64   `json:"output_slew_slopes,omitempty"`
	Edges         []edgeJSON  `json:"edges"`
	Params        []paramJSON `json:"params,omitempty"`
	Grid          *gridJSON   `json:"grid,omitempty"`
	Stats         *statsJSON  `json:"stats,omitempty"`
}

// gridJSON carries the module's grid geometry and correlation setup so a
// loaded model is self-contained: the design-level variable replacement
// (paper eq. 19) needs the module PCA, which is rebuilt deterministically
// from these values.
type gridJSON struct {
	NX          int     `json:"nx"`
	NY          int     `json:"ny"`
	Pitch       float64 `json:"pitch"`
	RhoNeighbor float64 `json:"rho_neighbor"`
	RhoFloor    float64 `json:"rho_floor"`
	Range       float64 `json:"range"`
}

type edgeJSON struct {
	From    int       `json:"from"`
	To      int       `json:"to"`
	Nominal float64   `json:"nominal"`
	Glob    []float64 `json:"glob"`
	Loc     []float64 `json:"loc"`
	Rand    float64   `json:"rand"`
}

type paramJSON struct {
	Name        string  `json:"name"`
	Sigma       float64 `json:"sigma"`
	GlobalShare float64 `json:"global_share"`
	LocalShare  float64 `json:"local_share"`
	RandomShare float64 `json:"random_share"`
}

type statsJSON struct {
	EdgesOrig  int `json:"edges_orig"`
	VertsOrig  int `json:"verts_orig"`
	EdgesModel int `json:"edges_model"`
	VertsModel int `json:"verts_model"`
}

const modelFormatVersion = 1

// WriteJSON serializes the model.
func (m *Model) WriteJSON(w io.Writer) error {
	g := m.Graph
	mj := modelJSON{
		FormatVersion: modelFormatVersion,
		Globals:       g.Space.Globals,
		Components:    g.Space.Components,
		NumVerts:      g.NumVerts,
		Inputs:        g.Inputs,
		Outputs:       g.Outputs,
		InputNames:    g.InputNames,
		OutputNames:   g.OutputNames,
		LoadSlopes:    g.OutputLoadSlopes,
		RefSlew:       g.RefSlew,
		InSlewSlopes:  g.InputSlewSlopes,
		OutPortSlews:  g.OutputPortSlews,
		OutSlewSlopes: g.OutputSlewSlopes,
		Stats: &statsJSON{
			EdgesOrig:  m.Stats.EdgesOrig,
			VertsOrig:  m.Stats.VertsOrig,
			EdgesModel: m.Stats.EdgesModel,
			VertsModel: m.Stats.VertsModel,
		},
	}
	if g.Grids != nil && g.Grids.NX > 0 && g.Grids.Corr != nil {
		mj.Grid = &gridJSON{
			NX: g.Grids.NX, NY: g.Grids.NY, Pitch: g.Grids.Pitch,
			RhoNeighbor: g.Grids.Corr.RhoNeighbor,
			RhoFloor:    g.Grids.Corr.RhoFloor,
			Range:       g.Grids.Corr.Range,
		}
	}
	for _, p := range g.Params {
		mj.Params = append(mj.Params, paramJSON{
			Name: p.Name, Sigma: p.Sigma,
			GlobalShare: p.GlobalShare, LocalShare: p.LocalShare, RandomShare: p.RandomShare,
		})
	}
	for _, e := range g.Edges {
		mj.Edges = append(mj.Edges, edgeJSON{
			From: e.From, To: e.To,
			Nominal: e.Delay.Nominal, Glob: e.Delay.Glob, Loc: e.Delay.Loc, Rand: e.Delay.Rand,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&mj)
}

// ReadJSON deserializes a model written by WriteJSON.
func ReadJSON(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if mj.FormatVersion != modelFormatVersion {
		return nil, fmt.Errorf("core: unsupported model format version %d", mj.FormatVersion)
	}
	space := canon.Space{Globals: mj.Globals, Components: mj.Components}
	var params []variation.Parameter
	for _, p := range mj.Params {
		params = append(params, variation.Parameter{
			Name: p.Name, Sigma: p.Sigma,
			GlobalShare: p.GlobalShare, LocalShare: p.LocalShare, RandomShare: p.RandomShare,
		})
	}
	g := timing.NewGraph(space, mj.NumVerts, params)
	for i, e := range mj.Edges {
		f := space.NewForm()
		f.Nominal = e.Nominal
		if len(e.Glob) != space.Globals || len(e.Loc) != space.Components {
			return nil, fmt.Errorf("core: edge %d has inconsistent form dimensions", i)
		}
		copy(f.Glob, e.Glob)
		copy(f.Loc, e.Loc)
		f.Rand = e.Rand
		if _, err := g.AddEdge(e.From, e.To, f, nil, 0); err != nil {
			return nil, fmt.Errorf("core: edge %d: %w", i, err)
		}
	}
	if err := g.SetIO(mj.Inputs, mj.Outputs, mj.InputNames, mj.OutputNames); err != nil {
		return nil, err
	}
	if mj.LoadSlopes != nil {
		if len(mj.LoadSlopes) != len(mj.Outputs) {
			return nil, fmt.Errorf("core: %d load slopes for %d outputs", len(mj.LoadSlopes), len(mj.Outputs))
		}
		g.OutputLoadSlopes = mj.LoadSlopes
	}
	g.RefSlew = mj.RefSlew
	if mj.InSlewSlopes != nil {
		if len(mj.InSlewSlopes) != len(mj.Inputs) {
			return nil, fmt.Errorf("core: %d input slew slopes for %d inputs", len(mj.InSlewSlopes), len(mj.Inputs))
		}
		g.InputSlewSlopes = mj.InSlewSlopes
	}
	if mj.OutPortSlews != nil {
		if len(mj.OutPortSlews) != len(mj.Outputs) {
			return nil, fmt.Errorf("core: %d output slews for %d outputs", len(mj.OutPortSlews), len(mj.Outputs))
		}
		g.OutputPortSlews = mj.OutPortSlews
	}
	if mj.OutSlewSlopes != nil {
		if len(mj.OutSlewSlopes) != len(mj.Outputs) {
			return nil, fmt.Errorf("core: %d output slew slopes for %d outputs", len(mj.OutSlewSlopes), len(mj.Outputs))
		}
		g.OutputSlewSlopes = mj.OutSlewSlopes
	}
	if mj.Grid != nil {
		corr, err := variation.NewCorrelationModel(mj.Grid.RhoNeighbor, mj.Grid.RhoFloor, mj.Grid.Range)
		if err != nil {
			return nil, fmt.Errorf("core: model grid correlation: %w", err)
		}
		gm, err := variation.NewGridModel(mj.Grid.NX, mj.Grid.NY, mj.Grid.Pitch, corr)
		if err != nil {
			return nil, fmt.Errorf("core: model grid rebuild: %w", err)
		}
		if len(params) > 0 && len(params)*gm.Comps != space.Components {
			return nil, fmt.Errorf("core: rebuilt grid model has %d components, form space expects %d",
				len(params)*gm.Comps, space.Components)
		}
		g.Grids = gm
	}
	if _, err := g.Order(); err != nil {
		return nil, err
	}
	m := &Model{Graph: g}
	if mj.Stats != nil {
		m.Stats = Stats{
			EdgesOrig:  mj.Stats.EdgesOrig,
			VertsOrig:  mj.Stats.VertsOrig,
			EdgesModel: mj.Stats.EdgesModel,
			VertsModel: mj.Stats.VertsModel,
		}
	}
	return m, nil
}

// ModelSnapshotKind and ModelSnapshotVersion identify a sealed model
// snapshot in the durable store (see internal/store's envelope). The
// payload is exactly the WriteJSON wire form, which carries its own
// format_version for the decoder.
const (
	ModelSnapshotKind    = "sstad-model"
	ModelSnapshotVersion = modelFormatVersion
)

// EncodeSnapshot serializes the model and seals it in a store envelope, the
// write side of the serving layer's extract-cache warm start.
func (m *Model) EncodeSnapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return store.Seal(ModelSnapshotKind, ModelSnapshotVersion, buf.Bytes()), nil
}

// DecodeModelSnapshot opens and decodes a sealed model snapshot. Envelope
// failures surface as store.ErrCorrupt / store.ErrVersion so callers can
// quarantine instead of aborting a warm start.
func DecodeModelSnapshot(data []byte) (*Model, error) {
	payload, err := store.OpenKind(data, ModelSnapshotKind, ModelSnapshotVersion)
	if err != nil {
		return nil, err
	}
	return ReadJSON(bytes.NewReader(payload))
}
