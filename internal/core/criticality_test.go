package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/timing"
)

// critEqual requires two criticality results to be bit-identical on the
// kept side of delta and conservatively ordered below it; with delta == 0
// it requires full bit-identity.
func critEqual(t *testing.T, want, got *CriticalityResult, delta float64, label string) {
	t.Helper()
	if len(want.Cm) != len(got.Cm) {
		t.Fatalf("%s: cm length %d != %d", label, len(got.Cm), len(want.Cm))
	}
	for e := range want.Cm {
		w, g := want.Cm[e], got.Cm[e]
		if (w >= delta) != (g >= delta) {
			t.Fatalf("%s: edge %d decision diverges at delta=%g (want cm %g, got %g)", label, e, delta, w, g)
		}
		if w >= delta || delta == 0 {
			if w != g {
				t.Fatalf("%s: edge %d cm %g != %g (bit-identity violated)", label, e, g, w)
			}
		} else if g < w {
			t.Fatalf("%s: edge %d screened cm %g below exact %g (bound not conservative)", label, e, g, w)
		}
		if want.Protected[e] != got.Protected[e] {
			t.Fatalf("%s: edge %d protected %v != %v", label, e, got.Protected[e], want.Protected[e])
		}
	}
}

// TestScreenMatchesExact locks in the criticality screen's contract on real
// benchmark graphs: identical keep/remove decisions at the screen
// threshold, bit-identical Cm for every kept edge, conservative (never
// lower) Cm for screened-out edges, and untouched protection marks.
func TestScreenMatchesExact(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		t.Run(name, func(t *testing.T) {
			g := buildGraph(t, name, 1)
			exact, err := EdgeCriticalitiesOpt(context.Background(), g, CriticalityOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			screened, err := EdgeCriticalitiesOpt(context.Background(), g,
				CriticalityOptions{Workers: 2, ScreenDelta: DefaultDelta})
			if err != nil {
				t.Fatal(err)
			}
			critEqual(t, exact, screened, DefaultDelta, name)
			var kept int
			for e := range exact.Cm {
				if exact.Cm[e] >= DefaultDelta {
					kept++
				}
			}
			if kept == 0 {
				t.Fatal("no kept edges — benchmark degenerate")
			}
			if exact.ScreenedBoundaries != 0 {
				t.Fatalf("exact mode screened %d boundaries", exact.ScreenedBoundaries)
			}
			if screened.ScreenedBoundaries == 0 {
				t.Fatal("screen never fired — pruning not exercised")
			}
			t.Logf("%s: screened %d boundaries", name, screened.ScreenedBoundaries)
		})
	}
}

// TestExtractScreenEquivalence checks that the default (screened) extraction
// and the ExactCriticality escape hatch produce the same model.
func TestExtractScreenEquivalence(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	fast, err := Extract(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Extract(g, Options{Workers: 2, ExactCriticality: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Stats.RemovedEdges != exact.Stats.RemovedEdges ||
		fast.Stats.ProtectedKept != exact.Stats.ProtectedKept ||
		fast.Stats.EdgesModel != exact.Stats.EdgesModel ||
		fast.Stats.VertsModel != exact.Stats.VertsModel {
		t.Fatalf("screened extraction diverges from exact: %+v vs %+v", fast.Stats, exact.Stats)
	}
}

// TestEdgeCriticalitiesPromptError is the worker-pool hang regression: the
// old hand-rolled pool fed inputs through an unbuffered channel while
// workers exited on the first error, deadlocking the feeder whenever more
// inputs remained than workers. An invalid port (SetIO accepts vertices
// unchecked) with inputs > workers must now surface as a prompt error.
func TestEdgeCriticalitiesPromptError(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	ins := append([]int(nil), g.Inputs...)
	names := append([]string(nil), g.InputNames...)
	ins = append(ins, g.NumVerts+7) // out of range, errors mid-engine
	names = append(names, "bogus")
	if err := g.SetIO(ins, g.Outputs, names, g.OutputNames); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := EdgeCriticalitiesCtx(context.Background(), g, 2)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("want out-of-range error, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("criticality engine hung on failing input (pool regression)")
	}
}

// TestEdgeCriticalitiesCancelled checks both cancellation paths: a dead
// context refuses promptly, and a context cancelled mid-run unwinds the
// pool instead of hanging it.
func TestEdgeCriticalitiesCancelled(t *testing.T) {
	g := buildGraph(t, "c880", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EdgeCriticalitiesCtx(ctx, g, 2); err == nil {
		t.Fatal("pre-cancelled ctx must fail")
	}
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := EdgeCriticalitiesCtx(ctx, g, 2)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done: // nil (finished first) or ctx error — either is fine
	case <-time.After(60 * time.Second):
		t.Fatal("criticality engine ignored cancellation")
	}
}

// critTestGraph builds a deterministic random layered DAG over a small
// space — the incremental-criticality differential workhorse.
func critTestGraph(tb testing.TB, verts int, seed int64) *timing.Graph {
	space := canon.Space{Globals: 2, Components: 4}
	g := timing.NewGraph(space, verts, nil)
	rng := rand.New(rand.NewSource(seed))
	form := func() *canon.Form {
		f := space.NewForm()
		f.Nominal = 5 + 20*rng.Float64()
		for i := range f.Glob {
			f.Glob[i] = rng.NormFloat64()
		}
		for i := range f.Loc {
			f.Loc[i] = 0.5 * rng.NormFloat64()
		}
		f.Rand = 0.5 + rng.Float64()
		return f
	}
	for v := 3; v < verts; v++ {
		fanin := 1 + rng.Intn(3)
		for k := 0; k < fanin; k++ {
			if _, err := g.AddEdge(rng.Intn(v), v, form(), nil, 0); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := g.SetIO(
		[]int{0, 1, 2},
		[]int{verts - 3, verts - 2, verts - 1},
		[]string{"a", "b", "c"},
		[]string{"x", "y", "z"},
	); err != nil {
		tb.Fatal(err)
	}
	return g
}

// checkIncCrit refreshes the tracker and compares against a from-scratch
// run under the same options — bit-identical by the row-stability theorem.
func checkIncCrit(tb testing.TB, g *timing.Graph, inc *timing.Incremental, ic *IncrementalCriticality, opt CriticalityOptions, step int) CriticalityRefreshStats {
	tb.Helper()
	ctx := context.Background()
	if _, err := inc.Update(ctx); err != nil {
		tb.Fatalf("step %d: update: %v", step, err)
	}
	got, st, err := ic.Refresh(ctx)
	if err != nil {
		tb.Fatalf("step %d: refresh: %v", step, err)
	}
	want, err := EdgeCriticalitiesOpt(ctx, g, opt)
	if err != nil {
		tb.Fatalf("step %d: scratch: %v", step, err)
	}
	for e := range want.Cm {
		w := want.Cm[e]
		if g.Edges[e].Removed {
			w = 0
		}
		if got.Cm[e] != w {
			tb.Fatalf("step %d edge %d: incremental cm %g != scratch %g", step, e, got.Cm[e], w)
		}
		wp := want.Protected[e] && !g.Edges[e].Removed
		if got.Protected[e] != wp {
			tb.Fatalf("step %d edge %d: incremental protected %v != scratch %v", step, e, got.Protected[e], wp)
		}
	}
	return st
}

// TestIncrementalCriticalityPartialRefresh uses two disconnected cones to
// pin the affected-set derivation: an edit in one cone must refresh exactly
// one input row and one output pass, and still match a from-scratch run.
func TestIncrementalCriticalityPartialRefresh(t *testing.T) {
	space := canon.Space{Globals: 2, Components: 4}
	g := timing.NewGraph(space, 7, nil)
	form := func(nom float64) *canon.Form {
		f := space.NewForm()
		f.Nominal = nom
		f.Rand = 1
		return f
	}
	// Cone A: diamond 0 -> {2,3} -> 4. Cone B: chain 1 -> 5 -> 6.
	for _, e := range [][2]int{{0, 2}, {0, 3}, {2, 4}, {3, 4}, {1, 5}, {5, 6}} {
		if _, err := g.AddEdge(e[0], e[1], form(float64(3+e[0]+e[1])), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetIO([]int{0, 1}, []int{4, 6}, []string{"a", "b"}, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	inc, err := g.NewIncremental()
	if err != nil {
		t.Fatal(err)
	}
	opt := CriticalityOptions{Workers: 2}
	ic, err := NewIncrementalCriticality(context.Background(), inc, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Edit inside cone B only.
	if err := g.ScaleEdgeDelay(5, 1.5); err != nil {
		t.Fatal(err)
	}
	st := checkIncCrit(t, g, inc, ic, opt, 1)
	if st.Full || st.Inputs != 1 || st.Outputs != 1 {
		t.Fatalf("cone-B edit refreshed %+v, want exactly one row and one output", st)
	}
	// Edit inside cone A: the other single row.
	if err := g.SetEdgeNominal(0, 11); err != nil {
		t.Fatal(err)
	}
	if st = checkIncCrit(t, g, inc, ic, opt, 2); st.Full || st.Inputs != 1 {
		t.Fatalf("cone-A edit refreshed %+v, want one row", st)
	}
	// Remove a diamond arm: still cone A only, and the tombstone must
	// vanish from the fold.
	if err := g.RemoveEdge(2); err != nil {
		t.Fatal(err)
	}
	if st = checkIncCrit(t, g, inc, ic, opt, 3); st.Full || st.Inputs != 1 {
		t.Fatalf("remove edit refreshed %+v, want one row", st)
	}
}

// TestIncrementalCriticalityRandomEdits drives the tracker through a
// randomized edit sequence, comparing against from-scratch runs after every
// edit, exact and screened.
func TestIncrementalCriticalityRandomEdits(t *testing.T) {
	for _, opt := range []CriticalityOptions{
		{Workers: 2},
		{Workers: 2, ScreenDelta: DefaultDelta},
	} {
		g := critTestGraph(t, 22, 99)
		inc, err := g.NewIncremental()
		if err != nil {
			t.Fatal(err)
		}
		ic, err := NewIncrementalCriticality(context.Background(), inc, opt)
		if err != nil {
			t.Fatal(err)
		}
		rng := newTestRand(7)
		partial := 0
		for step := 1; step <= 25; step++ {
			switch rng.Intn(4) {
			case 0:
				_ = g.ScaleEdgeDelay(rng.Intn(len(g.Edges)), 0.5+rng.Float64())
			case 1:
				_ = g.SetEdgeNominal(rng.Intn(len(g.Edges)), 1+20*rng.Float64())
			case 2:
				_, _ = g.AddEdgeLive(rng.Intn(g.NumVerts), rng.Intn(g.NumVerts),
					g.Space.Const(1+5*rng.Float64()), nil, 0)
			case 3:
				_ = g.RemoveEdge(rng.Intn(len(g.Edges)))
			}
			st := checkIncCrit(t, g, inc, ic, opt, step)
			if !st.Full && st.Inputs < len(g.Inputs) {
				partial++
			}
		}
		if partial == 0 {
			t.Error("no edit exercised a partial refresh — affected-set derivation untested")
		}
	}
}

// FuzzIncrementalCriticality drives the incremental criticality tracker
// with the same byte-coded edit-script shape as timing.FuzzGraphEdits: the
// invariants are "no panic" and "refresh == from-scratch, bit for bit, at
// every checkpoint".
func FuzzIncrementalCriticality(f *testing.F) {
	f.Add([]byte{0, 3, 16, 0, 5, 0, 0, 0, 3, 2, 14, 0, 5, 0, 0, 0})
	f.Add([]byte{4, 1, 0, 0, 4, 1, 0, 0, 5, 0, 0, 0, 2, 0, 40, 3, 5, 0, 0, 0})
	f.Add([]byte{3, 19, 2, 1, 1, 6, 55, 0, 5, 0, 0, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		g := critTestGraph(t, 20, 5)
		inc, err := g.NewIncremental()
		if err != nil {
			t.Fatal(err)
		}
		opt := CriticalityOptions{Workers: 2, ScreenDelta: DefaultDelta}
		ic, err := NewIncrementalCriticality(context.Background(), inc, opt)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for len(script) >= 4 {
			op, a, b, c := script[0], script[1], script[2], script[3]
			script = script[4:]
			steps++
			switch op % 6 {
			case 0:
				_ = g.ScaleEdgeDelay(int(a)%len(g.Edges), 0.25+float64(b)/64)
			case 1:
				_ = g.SetEdgeNominal(int(a)%len(g.Edges), float64(b))
			case 2:
				fm := g.Space.NewForm()
				fm.Nominal = float64(b)
				fm.Glob[int(c)%len(fm.Glob)] = float64(c) / 16
				fm.Rand = float64(c) / 64
				_ = g.SetEdgeDelay(int(a)%len(g.Edges), fm)
			case 3:
				_, _ = g.AddEdgeLive(int(a)%g.NumVerts, int(b)%g.NumVerts,
					g.Space.Const(1+float64(c)/8), nil, 0)
			case 4:
				_ = g.RemoveEdge(int(a) % len(g.Edges))
			case 5:
				checkIncCrit(t, g, inc, ic, opt, steps)
			}
		}
		checkIncCrit(t, g, inc, ic, opt, steps+1)
	})
}
