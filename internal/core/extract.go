package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/timing"
)

// DefaultDelta is the paper's criticality threshold (Section VI-A).
const DefaultDelta = 0.05

// Options controls timing-model extraction.
type Options struct {
	// Delta is the criticality threshold; edges with maximum criticality
	// below it are removed. Zero selects DefaultDelta. Negative disables
	// removal (merges only).
	Delta float64
	// Workers bounds the concurrency of the criticality engine
	// (<=0: GOMAXPROCS).
	Workers int
	// DisablePathProtection turns off the dominant-path guard. The paper's
	// bare algorithm can in principle disconnect an IO pair; the guard keeps
	// per-pair dominant paths regardless of their edge criticalities (see
	// DESIGN.md). Exposed for ablation.
	DisablePathProtection bool
	// MaxMergeIters bounds the merge fixpoint loop (0: unbounded).
	MaxMergeIters int
	// ExactCriticality disables the delta-threshold criticality screen and
	// evaluates every cutset boundary's forms (the Fig. 6 escape hatch:
	// sub-threshold Cm entries come out exact instead of as conservative
	// bounds). The kept/removed edge sets are identical either way.
	ExactCriticality bool
}

// Stats records the extraction outcome in the shape of the paper's Table I.
type Stats struct {
	EdgesOrig  int           // Eo
	VertsOrig  int           // Vo
	EdgesModel int           // Em
	VertsModel int           // Vm
	Duration   time.Duration // T

	// Cm holds the per-edge maximum criticalities of the original graph
	// (the data behind the paper's Fig. 6).
	Cm []float64
	// RemovedEdges counts edges dropped by the criticality filter (before
	// merges).
	RemovedEdges int
	// ProtectedKept counts edges below the threshold kept by the
	// dominant-path guard.
	ProtectedKept int
}

// PE returns the edge compression ratio Em/Eo.
func (s Stats) PE() float64 { return ratio(s.EdgesModel, s.EdgesOrig) }

// PV returns the vertex compression ratio Vm/Vo.
func (s Stats) PV() float64 { return ratio(s.VertsModel, s.VertsOrig) }

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Model is an extracted gray-box statistical timing model: a reduced timing
// graph with the same ports (and port names) as the original module and
// approximately the same statistical delay matrix.
type Model struct {
	Graph *timing.Graph
	Stats Stats
}

// Extract runs the full pipeline of the paper's Fig. 3 on a module timing
// graph.
func Extract(g *timing.Graph, opt Options) (*Model, error) {
	return ExtractCtx(context.Background(), g, opt)
}

// ExtractCtx is Extract with cooperative cancellation threaded through the
// criticality engine (the dominant cost).
func ExtractCtx(ctx context.Context, g *timing.Graph, opt Options) (*Model, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if len(g.Inputs) == 0 || len(g.Outputs) == 0 {
		return nil, errors.New("core: graph has no ports")
	}
	delta := opt.Delta
	if delta == 0 {
		delta = DefaultDelta
	}
	start := time.Now()

	// Sequential modules are extracted through a widened-port view so the
	// criticality screen and the dominant-path guard protect clock->D paths
	// like IO paths; see sequential.go.
	orig := g
	extraOuts := 0
	if g.Sequential() {
		var err error
		g, extraOuts, err = seqView(g)
		if err != nil {
			return nil, fmt.Errorf("core: sequential view: %w", err)
		}
	}

	copt := CriticalityOptions{Workers: opt.Workers}
	if delta > 0 && !opt.ExactCriticality {
		// The removal decision only compares Cm against delta, so the
		// criticality screen can prune at exactly that threshold.
		copt.ScreenDelta = delta
	}
	crit, err := EdgeCriticalitiesOpt(ctx, g, copt)
	if err != nil {
		return nil, fmt.Errorf("core: criticality: %w", err)
	}

	remove := make([]bool, len(g.Edges))
	stats := Stats{
		EdgesOrig: len(g.Edges),
		VertsOrig: g.NumVerts,
		Cm:        crit.Cm,
	}
	if delta > 0 {
		for e := range g.Edges {
			if crit.Cm[e] >= delta {
				continue
			}
			if !opt.DisablePathProtection && crit.Protected[e] {
				stats.ProtectedKept++
				continue
			}
			remove[e] = true
			stats.RemovedEdges++
		}
	}

	mg := newModelGraph(g, remove)
	mg.reduce(opt.MaxMergeIters)

	reduced, err := rebuildGraph(g, mg)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild: %w", err)
	}
	if orig.Sequential() {
		if err := restoreSequential(orig, reduced, extraOuts); err != nil {
			return nil, err
		}
	}
	stats.VertsModel = reduced.NumVerts
	stats.EdgesModel = len(reduced.Edges)
	stats.Duration = time.Since(start)
	return &Model{Graph: reduced, Stats: stats}, nil
}

// rebuildGraph compacts the mutable model graph back into an immutable
// timing.Graph, preserving port order and names and the variation context.
func rebuildGraph(orig *timing.Graph, mg *modelGraph) (*timing.Graph, error) {
	if mg.dirty {
		mg.rebuild()
	}
	keep := make([]bool, mg.nVerts)
	for v := 0; v < mg.nVerts; v++ {
		if !mg.vAlive[v] {
			continue
		}
		if mg.isPort[v] || len(mg.inE[v]) > 0 || len(mg.outE[v]) > 0 {
			keep[v] = true
		}
	}
	newID := make([]int, mg.nVerts)
	for i := range newID {
		newID[i] = -1
	}
	n := 0
	for v := 0; v < mg.nVerts; v++ {
		if keep[v] {
			newID[v] = n
			n++
		}
	}
	out := timing.NewGraph(mg.space, n, orig.Params)
	out.Grids = orig.Grids
	for ei := range mg.edges {
		e := &mg.edges[ei]
		if !e.alive {
			continue
		}
		if newID[e.from] < 0 || newID[e.to] < 0 {
			return nil, fmt.Errorf("core: alive edge %d references dropped vertex", ei)
		}
		// Model edges are abstract (merged) delays: no single grid applies,
		// so the structural MC fields stay empty.
		if _, err := out.AddEdge(newID[e.from], newID[e.to], e.delay, nil, 0); err != nil {
			return nil, err
		}
	}
	ins := make([]int, len(orig.Inputs))
	for i, v := range orig.Inputs {
		if newID[v] < 0 {
			return nil, fmt.Errorf("core: input port %d dropped during reduction", i)
		}
		ins[i] = newID[v]
	}
	outs := make([]int, len(orig.Outputs))
	for j, v := range orig.Outputs {
		if newID[v] < 0 {
			return nil, fmt.Errorf("core: output port %d dropped during reduction", j)
		}
		outs[j] = newID[v]
	}
	if err := out.SetIO(ins, outs, orig.InputNames, orig.OutputNames); err != nil {
		return nil, err
	}
	if orig.OutputLoadSlopes != nil {
		out.OutputLoadSlopes = append([]float64(nil), orig.OutputLoadSlopes...)
	}
	out.RefSlew = orig.RefSlew
	if orig.InputSlewSlopes != nil {
		out.InputSlewSlopes = append([]float64(nil), orig.InputSlewSlopes...)
	}
	if orig.OutputPortSlews != nil {
		out.OutputPortSlews = append([]float64(nil), orig.OutputPortSlews...)
	}
	if orig.OutputSlewSlopes != nil {
		out.OutputSlewSlopes = append([]float64(nil), orig.OutputSlewSlopes...)
	}
	if _, err := out.Order(); err != nil {
		return nil, err
	}
	return out, nil
}
