package core

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/place"
	"repro/internal/timing"
	"repro/internal/variation"
)

func buildSeqGraph(t *testing.T, name string, seed int64) *timing.Graph {
	t.Helper()
	var c *circuit.Circuit
	var err error
	if name == "c17" {
		c, err = circuit.Clocked(circuit.C17())
	} else {
		spec, ok := circuit.SpecByName(name)
		if !ok {
			t.Fatalf("unknown spec %q", name)
		}
		c, err = circuit.GenerateClocked(spec, seed)
	}
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, _ := variation.DefaultCorrelation()
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := timing.Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExtractSequentialKeepsRegisters(t *testing.T) {
	g := buildSeqGraph(t, "c17", 1)
	m, err := Extract(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Graph
	if !r.Sequential() {
		t.Fatal("reduced model lost its registers")
	}
	if len(r.Registers) != len(g.Registers) {
		t.Fatalf("register count %d != original %d", len(r.Registers), len(g.Registers))
	}
	if len(r.ClockRoots) != len(g.ClockRoots) {
		t.Fatalf("clock root count %d != original %d", len(r.ClockRoots), len(g.ClockRoots))
	}
	if len(r.Inputs) != len(g.Inputs) || len(r.Outputs) != len(g.Outputs) {
		t.Fatalf("port counts changed: %d/%d vs %d/%d",
			len(r.Inputs), len(r.Outputs), len(g.Inputs), len(g.Outputs))
	}
	for i, rr := range r.Registers {
		if rr.Name != g.Registers[i].Name {
			t.Fatalf("register %d renamed %q -> %q", i, g.Registers[i].Name, rr.Name)
		}
		if rr.Q != -1 || rr.ClkEdge != -1 {
			t.Fatalf("register %q should drop structural anchors, got Q=%d ClkEdge=%d", rr.Name, rr.Q, rr.ClkEdge)
		}
		if rr.D < 0 || rr.D >= r.NumVerts {
			t.Fatalf("register %q D vertex %d out of range", rr.Name, rr.D)
		}
		if rr.Setup == nil || rr.Hold == nil {
			t.Fatalf("register %q lost constraint forms", rr.Name)
		}
	}
}

func TestExtractSequentialSetupSlackPreserved(t *testing.T) {
	g := buildSeqGraph(t, "c432", 3)
	m, err := Extract(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	clock := timing.ClockSpec{PeriodPS: 600, SkewPS: 10, JitterPS: 5}
	full, err := g.SequentialSlacks(clock)
	if err != nil {
		t.Fatal(err)
	}
	red, err := m.Graph.SequentialSlacks(clock)
	if err != nil {
		t.Fatal(err)
	}
	// Setup slack on the model tracks the full graph up to the extraction
	// delta (the clock->D max paths are protected like IO paths).
	dm := math.Abs(full.WorstSetup.Mean() - red.WorstSetup.Mean())
	if scale := math.Abs(full.WorstSetup.Mean()) + full.WorstSetup.Std(); dm > 0.05*scale+2 {
		t.Fatalf("worst setup mean drifted: full %g vs model %g", full.WorstSetup.Mean(), red.WorstSetup.Mean())
	}
	ds := math.Abs(full.WorstSetup.Std() - red.WorstSetup.Std())
	if ds > 0.15*full.WorstSetup.Std()+0.5 {
		t.Fatalf("worst setup std drifted: full %g vs model %g", full.WorstSetup.Std(), red.WorstSetup.Std())
	}
	// Hold slack on the reduced model is an optimistic bound: removing edges
	// can only lengthen the shortest path.
	if red.WorstHold.Mean()+3*red.WorstHold.Std() < full.WorstHold.Mean()-3*full.WorstHold.Std()-1e-6 {
		t.Fatalf("model hold slack %g below full-graph hold slack %g", red.WorstHold.Mean(), full.WorstHold.Mean())
	}
}

func TestExtractSequentialSnapshotRoundTrip(t *testing.T) {
	g := buildSeqGraph(t, "c17", 1)
	m, err := Extract(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Graph.Snapshot()
	back, err := timing.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Registers) != len(m.Graph.Registers) {
		t.Fatalf("round trip lost registers: %d vs %d", len(back.Registers), len(m.Graph.Registers))
	}
	clock := timing.DefaultClock()
	a, err := m.Graph.SequentialSlacks(clock)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.SequentialSlacks(clock)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.WorstSetup.Mean()-b.WorstSetup.Mean()) > 1e-9 {
		t.Fatalf("snapshot changed setup slack: %g vs %g", a.WorstSetup.Mean(), b.WorstSetup.Mean())
	}
}
