package core

import (
	"context"
	"fmt"

	"repro/internal/timing"
)

// IncrementalCriticality maintains the all-pairs edge criticality of a live
// graph across edits, re-deriving only the input rows an edit can affect.
//
// The result of the one-shot engine is a max-fold of independent per-input
// rows: row i depends only on input i's forward cone (its arrival pass),
// the backward cones of the outputs it reaches, the level cutsets, and the
// edge delays. After an edit with seed vertices S, row i is bit-stable
// unless input i reaches some seed in the old or new reachability — the
// arrival pass, the alive sets, the de forms and the protection walk all
// fold exactly the same values otherwise — or unless the edit moved a
// vertex's level (which re-partitions the cutsets even for untouched
// rows). The affected-input set I* is therefore
//
//	I* = { i : i reaches S (old or new) }  ∪  { i : i reaches a
//	       vertex whose level changed }
//
// and a refresh recomputes exactly the rows in I*, keeping the others
// verbatim. The refreshed result equals a from-scratch run bit-for-bit
// (under the same CriticalityOptions); tests lock this in over randomized
// edit sequences.
//
// IncrementalCriticality consumes the seed journal of a timing.Incremental
// (the graph's takeDirty stream has a single consumer — the Incremental —
// so second-tier consumers key off its journal). It follows the same
// single-writer contract: Refresh must not run concurrently with edits or
// with other sessions on the same graph.
type IncrementalCriticality struct {
	inc *timing.Incremental
	opt CriticalityOptions

	// cmIn/protIn are the retained per-input rows, each aligned with
	// g.Edges at the time the row was last computed (rows are grown to the
	// current edge count lazily; new slots start at zero).
	cmIn   [][]float64
	protIn [][]bool

	// Snapshots the affected-set derivation diffs against.
	lv     *timing.Levels
	rs     *timing.ReachSets
	nEdges int

	res      *CriticalityResult
	full     bool  // next refresh must recompute every row
	screened int64 // cumulative screened boundaries since the last full run
}

// CriticalityRefreshStats reports what one Refresh recomputed.
type CriticalityRefreshStats struct {
	// Inputs is the number of input rows re-derived.
	Inputs int
	// Outputs is the number of per-output backward passes rerun.
	Outputs int
	// Full marks a from-scratch refresh (first build, IO retarget, seed
	// overflow, or recovery after a failed refresh).
	Full bool
}

// NewIncrementalCriticality attaches a criticality tracker to an
// incremental timing state and computes the initial full result. The
// tracker enables inc's seed journal; it must be the journal's only
// consumer.
func NewIncrementalCriticality(ctx context.Context, inc *timing.Incremental, opt CriticalityOptions) (*IncrementalCriticality, error) {
	if inc == nil {
		return nil, fmt.Errorf("core: nil incremental state")
	}
	inc.EnableSeedJournal()
	ic := &IncrementalCriticality{inc: inc, opt: opt, full: true}
	if _, _, err := ic.refresh(ctx); err != nil {
		return nil, err
	}
	return ic, nil
}

// Result returns the current criticality snapshot (valid as of the last
// Refresh; callers must not mutate it).
func (ic *IncrementalCriticality) Result() *CriticalityResult { return ic.res }

// Refresh absorbs the edits journaled since the last refresh and returns
// the updated result. The caller must have run inc.Update (or Rebuild)
// first so the journal covers every pending edit; the returned snapshot is
// also retained and available via Result. On error the tracker stays
// usable but degrades to a full recompute on the next call.
func (ic *IncrementalCriticality) Refresh(ctx context.Context) (*CriticalityResult, CriticalityRefreshStats, error) {
	return ic.refresh(ctx)
}

func (ic *IncrementalCriticality) refresh(ctx context.Context) (*CriticalityResult, CriticalityRefreshStats, error) {
	g := ic.inc.Graph()
	fwd, bwd, io, full := ic.inc.TakeSeeds()
	full = full || io || ic.full
	ic.full = true // cleared only on success
	var stats CriticalityRefreshStats

	nE := len(g.Edges)
	nIn := len(g.Inputs)
	lv, err := g.Levels()
	if err != nil {
		return nil, stats, err
	}
	rs, err := g.Reachability()
	if err != nil {
		return nil, stats, err
	}

	// Derive the affected input set (all inputs on a full refresh).
	var affected []int
	needOut := make([]bool, len(g.Outputs))
	if full || ic.rs == nil || len(ic.cmIn) != nIn {
		full = true
		affected = make([]int, nIn)
		for i := range affected {
			affected[i] = i
		}
		for j := range needOut {
			needOut[j] = true
		}
		ic.cmIn = make([][]float64, nIn)
		ic.protIn = make([][]bool, nIn)
		ic.screened = 0
	} else {
		inBits := make([]uint64, rs.WIn)
		seedInputs := func(v int) {
			for w, word := range ic.rs.FromInput(v) {
				inBits[w] |= word
			}
			for w, word := range rs.FromInput(v) {
				inBits[w] |= word
			}
		}
		for _, v := range fwd {
			seedInputs(v)
		}
		for _, v := range bwd {
			seedInputs(v)
		}
		// An edit that shifts levels re-partitions the cutset boundaries:
		// every input reaching a level-changed vertex must re-evaluate.
		for v := 0; v < g.NumVerts && v < len(ic.lv.Level); v++ {
			if lv.Level[v] != ic.lv.Level[v] {
				seedInputs(v)
			}
		}
		for i := 0; i < nIn; i++ {
			if inBits[i>>6]&(1<<(uint(i)&63)) != 0 {
				affected = append(affected, i)
			}
		}
		for _, i := range affected {
			to := rs.ToOutput(g.Inputs[i])
			for j := range needOut {
				if to[j>>6]&(1<<(uint(j)&63)) != 0 {
					needOut[j] = true
				}
			}
		}
	}
	stats.Inputs = len(affected)
	stats.Full = full
	for _, n := range needOut {
		if n {
			stats.Outputs++
		}
	}

	if len(affected) > 0 && nE > 0 {
		en, err := newCritEngine(ctx, g, ic.opt, rs, needOut)
		if err != nil {
			return nil, stats, err
		}
		workers := timing.Workers(ic.opt.Workers, len(affected))
		pool := make(chan *critScratch, workers)
		for w := 0; w < workers; w++ {
			pool <- en.newScratch()
		}
		err = timing.ParallelForCtx(ctx, len(affected), workers, func(ctx context.Context, a int) error {
			i := affected[a]
			cm := growFloatRow(ic.cmIn[i], nE)
			prot := growBoolRow(ic.protIn[i], nE)
			ic.cmIn[i], ic.protIn[i] = cm, prot
			ws := <-pool
			defer func() { pool <- ws }()
			ws.resetFold() // fresh zeroed row: re-arm the z-space fold
			return en.runInput(ctx, i, cm, prot, ws)
		})
		for len(pool) > 0 {
			(<-pool).release()
		}
		screened := en.screened.Load()
		en.release()
		if err != nil {
			return nil, stats, err
		}
		ic.screened += screened
	}

	// Fold the rows, then mask tombstones: a stale (unaffected) row may
	// still carry values for edges removed by a later edit it provably does
	// not reach — those edges are dead regardless of which row names them.
	res := &CriticalityResult{Cm: make([]float64, nE), Protected: make([]bool, nE)}
	for i := 0; i < nIn; i++ {
		for e, c := range ic.cmIn[i] {
			if c > res.Cm[e] {
				res.Cm[e] = c
			}
		}
		for e, p := range ic.protIn[i] {
			if p {
				res.Protected[e] = true
			}
		}
	}
	for e := range g.Edges {
		if g.Edges[e].Removed {
			res.Cm[e] = 0
			res.Protected[e] = false
		}
	}
	res.ScreenedBoundaries = ic.screened

	ic.lv, ic.rs, ic.nEdges = lv, rs, nE
	ic.res = res
	ic.full = false
	return res, stats, nil
}

// growFloatRow returns row resized and zeroed over [0, n).
func growFloatRow(row []float64, n int) []float64 {
	if cap(row) < n {
		return make([]float64, n)
	}
	row = row[:n]
	for e := range row {
		row[e] = 0
	}
	return row
}

// growBoolRow returns row resized and zeroed over [0, n).
func growBoolRow(row []bool, n int) []bool {
	if cap(row) < n {
		return make([]bool, n)
	}
	row = row[:n]
	for e := range row {
		row[e] = false
	}
	return row
}
