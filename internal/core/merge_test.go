package core

import (
	"math"
	"testing"

	"repro/internal/canon"
	"repro/internal/timing"
)

var mergeSpace = canon.Space{Globals: 1, Components: 2}

// handGraph builds a timing graph from explicit edges for merge-op tests.
func handGraph(t *testing.T, nverts int, edges [][2]int, delays []float64, ins, outs []int) *timing.Graph {
	t.Helper()
	g := timing.NewGraph(mergeSpace, nverts, nil)
	for i, e := range edges {
		f := mergeSpace.Const(delays[i])
		f.Rand = 0.1 * delays[i] // give every edge some variance
		if _, err := g.AddEdge(e[0], e[1], f, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	names := func(ids []int, prefix string) []string {
		out := make([]string, len(ids))
		for i := range ids {
			out[i] = prefix + string(rune('a'+i))
		}
		return out
	}
	if err := g.SetIO(ins, outs, names(ins, "i"), names(outs, "o")); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSerialMergeForward reproduces paper Fig. 1(a): vertex k with one
// fanin i->k and fanouts k->j1, k->j2 collapses into direct edges whose
// delays are the statistical sums.
func TestSerialMergeForward(t *testing.T) {
	// 0 = input i, 1 = k, 2/3 = outputs j1, j2.
	g := handGraph(t, 4,
		[][2]int{{0, 1}, {1, 2}, {1, 3}},
		[]float64{10, 5, 7},
		[]int{0}, []int{2, 3})
	mg := newModelGraph(g, nil)
	if !mg.serialMerge() {
		t.Fatal("serial merge found nothing")
	}
	mg.reduce(0)
	verts, edges := mg.counts()
	if verts != 3 || edges != 2 {
		t.Fatalf("after merge: %d verts, %d edges; want 3, 2", verts, edges)
	}
	out, err := rebuildGraph(g, mg)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := out.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	if m := ap.M[0][0].Mean(); math.Abs(m-15) > 1e-12 {
		t.Fatalf("i->j1 delay %g, want 15", m)
	}
	if m := ap.M[0][1].Mean(); math.Abs(m-17) > 1e-12 {
		t.Fatalf("i->j2 delay %g, want 17", m)
	}
	// Variance composes too: 0.1-relative rands add in quadrature.
	wantStd := math.Hypot(1.0, 0.5) // 10*0.1 and 5*0.1
	if s := ap.M[0][0].Std(); math.Abs(s-wantStd) > 1e-9 {
		t.Fatalf("i->j1 std %g, want %g", s, wantStd)
	}
}

// TestSerialMergeReverse is Fig. 1(b): one fanout, several fanins.
func TestSerialMergeReverse(t *testing.T) {
	// 0,1 inputs -> 2 (k) -> 3 output.
	g := handGraph(t, 4,
		[][2]int{{0, 2}, {1, 2}, {2, 3}},
		[]float64{4, 6, 9},
		[]int{0, 1}, []int{3})
	mg := newModelGraph(g, nil)
	mg.reduce(0)
	verts, edges := mg.counts()
	if verts != 3 || edges != 2 {
		t.Fatalf("after merge: %d verts, %d edges; want 3, 2", verts, edges)
	}
	out, err := rebuildGraph(g, mg)
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := out.AllPairsDelays(0)
	if m := ap.M[0][0].Mean(); math.Abs(m-13) > 1e-12 {
		t.Fatalf("i0->o delay %g, want 13", m)
	}
	if m := ap.M[1][0].Mean(); math.Abs(m-15) > 1e-12 {
		t.Fatalf("i1->o delay %g, want 15", m)
	}
}

// TestParallelMerge is Fig. 2: parallel edges collapse to their statistical
// max.
func TestParallelMerge(t *testing.T) {
	g := handGraph(t, 2,
		[][2]int{{0, 1}, {0, 1}, {0, 1}},
		[]float64{10, 12, 8},
		[]int{0}, []int{1})
	mg := newModelGraph(g, nil)
	if !mg.parallelMerge() {
		t.Fatal("parallel merge found nothing")
	}
	mg.reduce(0)
	_, edges := mg.counts()
	if edges != 1 {
		t.Fatalf("edges = %d, want 1", edges)
	}
	out, err := rebuildGraph(g, mg)
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := out.AllPairsDelays(0)
	got := ap.M[0][0]
	// Reference: Clark max of the three forms.
	forms := make([]*canon.Form, 3)
	for i, d := range []float64{10, 12, 8} {
		f := mergeSpace.Const(d)
		f.Rand = 0.1 * d
		forms[i] = f
	}
	want, err := canon.MaxAll(forms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mean()-want.Mean()) > 1e-9 || math.Abs(got.Std()-want.Std()) > 1e-9 {
		t.Fatalf("merged edge %v, want %v", got, want)
	}
}

// TestTrimRemovesOrphanedSubgraph: removing an edge strands an internal
// vertex; trim must cascade it away.
func TestTrimRemovesOrphanedSubgraph(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 with a stub 1 -> 4 (4 internal, no fanout).
	g := handGraph(t, 5,
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 4}},
		[]float64{1, 2, 3, 4},
		[]int{0}, []int{3})
	mg := newModelGraph(g, nil)
	if !mg.trim() {
		t.Fatal("trim found nothing")
	}
	verts, edges := mg.counts()
	if verts != 4 || edges != 3 {
		t.Fatalf("after trim: %d verts, %d edges; want 4, 3", verts, edges)
	}
}

// TestRemovalThenTrimCascade: killing the only edge into a chain removes
// the whole chain.
func TestRemovalThenTrimCascade(t *testing.T) {
	// 0 -> 1 -> 2 -> 3(out); 0 -> 3 direct. Remove 0->1.
	g := handGraph(t, 4,
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}},
		[]float64{1, 2, 3, 10},
		[]int{0}, []int{3})
	remove := []bool{true, false, false, false}
	mg := newModelGraph(g, remove)
	mg.reduce(0)
	verts, edges := mg.counts()
	if verts != 2 || edges != 1 {
		t.Fatalf("after cascade: %d verts, %d edges; want 2, 1", verts, edges)
	}
	out, err := rebuildGraph(g, mg)
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := out.AllPairsDelays(0)
	if m := ap.M[0][0].Mean(); math.Abs(m-10) > 1e-12 {
		t.Fatalf("remaining path %g, want 10", m)
	}
}

// TestMergePreservesDiamond: a reconvergent diamond must reduce to a
// single edge carrying max(top path, bottom path).
func TestMergePreservesDiamond(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3.
	g := handGraph(t, 4,
		[][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}},
		[]float64{5, 6, 4, 8},
		[]int{0}, []int{3})
	mg := newModelGraph(g, nil)
	mg.reduce(0)
	verts, edges := mg.counts()
	if verts != 2 || edges != 1 {
		t.Fatalf("diamond reduced to %d verts, %d edges; want 2, 1", verts, edges)
	}
	out, err := rebuildGraph(g, mg)
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := out.AllPairsDelays(0)
	got := ap.M[0][0]
	top := mergeSpace.Const(11)
	top.Rand = math.Hypot(0.5, 0.6)
	bot := mergeSpace.Const(12)
	bot.Rand = math.Hypot(0.4, 0.8)
	want := canon.Max(top, bot)
	if math.Abs(got.Mean()-want.Mean()) > 1e-9 {
		t.Fatalf("diamond delay mean %g, want %g", got.Mean(), want.Mean())
	}
	if math.Abs(got.Std()-want.Std()) > 1e-9 {
		t.Fatalf("diamond delay std %g, want %g", got.Std(), want.Std())
	}
}

// TestMergeIdempotent: reducing an already-reduced graph changes nothing.
func TestMergeIdempotent(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	m1, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mg := newModelGraph(m1.Graph, nil)
	mg.reduce(0)
	verts, edges := mg.counts()
	if verts != m1.Graph.NumVerts || edges != len(m1.Graph.Edges) {
		t.Fatalf("re-reduction changed the model: %d/%d -> %d/%d",
			m1.Graph.NumVerts, len(m1.Graph.Edges), verts, edges)
	}
}

// TestPortsNeverMerged: input/output vertices survive even when they have
// single fanin/fanout.
func TestPortsNeverMerged(t *testing.T) {
	// chain i -> a -> o: a merges away, ports stay.
	g := handGraph(t, 3,
		[][2]int{{0, 1}, {1, 2}},
		[]float64{3, 4},
		[]int{0}, []int{2})
	mg := newModelGraph(g, nil)
	mg.reduce(0)
	out, err := rebuildGraph(g, mg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumVerts != 2 || len(out.Edges) != 1 {
		t.Fatalf("chain: %d verts, %d edges; want 2, 1", out.NumVerts, len(out.Edges))
	}
	if len(out.Inputs) != 1 || len(out.Outputs) != 1 {
		t.Fatal("ports lost")
	}
	if out.InputNames[0] != "ia" || out.OutputNames[0] != "oa" {
		t.Fatal("port names lost")
	}
}
