package core

import (
	"bytes"
	"math"
	"testing"
)

// TestJSONModelSelfContained verifies the IP-exchange property: a model
// loaded from JSON carries a rebuilt grid model identical to the original,
// so design-level variable replacement works without any side channel.
func TestJSONModelSelfContained(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	m, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph.Grids == nil {
		t.Fatal("loaded model has no grid model")
	}
	if back.Graph.Grids.N() != g.Grids.N() || back.Graph.Grids.Comps != g.Grids.Comps {
		t.Fatalf("grid model shape changed: %d/%d vs %d/%d",
			back.Graph.Grids.N(), back.Graph.Grids.Comps, g.Grids.N(), g.Grids.Comps)
	}
	// The rebuilt PCA must be bitwise-deterministic: same correlation
	// inputs, same Jacobi code path.
	for i := 0; i < g.Grids.N(); i++ {
		a := g.Grids.A.Row(i)
		b := back.Graph.Grids.A.Row(i)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("PCA factor differs at (%d,%d): %g vs %g", i, k, a[k], b[k])
			}
		}
	}
	if back.Graph.OutputLoadSlopes == nil {
		t.Fatal("loaded model lost output load slopes")
	}
	// Variation parameters survive.
	if len(back.Graph.Params) != len(g.Params) {
		t.Fatal("params lost")
	}
	for i := range g.Params {
		if back.Graph.Params[i] != g.Params[i] {
			t.Fatalf("param %d changed: %+v vs %+v", i, back.Graph.Params[i], g.Params[i])
		}
	}
	// Delay behaviour identical.
	d1, err := m.Graph.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := back.Graph.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1.Mean()-d2.Mean()) > 1e-9 || math.Abs(d1.Std()-d2.Std()) > 1e-9 {
		t.Fatal("delay distribution changed through JSON")
	}
}

func TestJSONRejectsInconsistentGrid(t *testing.T) {
	g := buildGraph(t, "c17", 1)
	m, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the grid block: claim a much larger grid.
	s := buf.String()
	corrupted := bytes.ReplaceAll(buf.Bytes(), []byte(`"grid":{"nx":1,"ny":1`), []byte(`"grid":{"nx":9,"ny":9`))
	if bytes.Equal(corrupted, []byte(s)) {
		t.Skip("grid JSON layout changed; corruption pattern missed")
	}
	if _, err := ReadJSON(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("inconsistent grid accepted")
	}
}
