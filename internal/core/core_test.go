package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/canon"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/place"
	"repro/internal/timing"
	"repro/internal/variation"
)

func buildGraph(t *testing.T, name string, seed int64) *timing.Graph {
	t.Helper()
	var c *circuit.Circuit
	if name == "c17" {
		c = circuit.C17()
	} else {
		spec, ok := circuit.SpecByName(name)
		if !ok {
			t.Fatalf("unknown spec %q", name)
		}
		var err error
		c, err = circuit.Generate(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
	}
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, _ := variation.DefaultCorrelation()
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := timing.Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEdgeCriticalitiesRange(t *testing.T) {
	g := buildGraph(t, "c17", 1)
	crit, err := EdgeCriticalities(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(crit.Cm) != len(g.Edges) {
		t.Fatalf("cm count %d != edges %d", len(crit.Cm), len(g.Edges))
	}
	for e, c := range crit.Cm {
		if c < 0 || c > 1 {
			t.Fatalf("edge %d criticality %g outside [0,1]", e, c)
		}
	}
	// Every input/output pair has a dominant path, so some edges must be
	// highly critical.
	var high int
	for _, c := range crit.Cm {
		if c > 0.5 {
			high++
		}
	}
	if high == 0 {
		t.Fatal("no edge with criticality > 0.5 — dominant paths missing")
	}
}

func TestProtectedEdgesConnectPairs(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	crit, err := EdgeCriticalities(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The protected subgraph alone must connect every originally
	// connected pair.
	ap, err := g.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	// Build reachability over protected edges only.
	nowhere := make([]bool, len(g.Edges))
	for e := range nowhere {
		nowhere[e] = !crit.Protected[e]
	}
	mg := newModelGraph(g, nowhere)
	sub, err := rebuildGraph(g, mg)
	if err != nil {
		t.Fatal(err)
	}
	apSub, err := sub.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ap.M {
		for j := range ap.M[i] {
			if ap.M[i][j] != nil && apSub.M[i][j] == nil {
				t.Fatalf("pair (%d,%d) disconnected in protected subgraph", i, j)
			}
		}
	}
}

func TestCriticalityAgainstMonteCarlo(t *testing.T) {
	// Sample the c17 graph, trace the argmax path per (input, output) pair,
	// and compare empirical edge criticality with the analytic one.
	g := buildGraph(t, "c17", 1)
	crit, err := EdgeCriticalities(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	order, _ := g.Order()

	const n = 4000
	counts := make([]float64, len(g.Edges)) // max over pairs of empirical cij
	pairCount := make([][]map[int]int, len(g.Inputs))
	for i := range pairCount {
		pairCount[i] = make([]map[int]int, len(g.Outputs))
		for j := range pairCount[i] {
			pairCount[i][j] = make(map[int]int)
		}
	}
	pairTotal := make([][]int, len(g.Inputs))
	for i := range pairTotal {
		pairTotal[i] = make([]int, len(g.Outputs))
	}

	rng := newTestRand(42)
	glob := make([]float64, g.Space.Globals)
	loc := make([]float64, g.Space.Components)
	delays := make([]float64, len(g.Edges))
	for s := 0; s < n; s++ {
		for i := range glob {
			glob[i] = rng.NormFloat64()
		}
		for i := range loc {
			loc[i] = rng.NormFloat64()
		}
		for e := range g.Edges {
			delays[e] = g.Edges[e].Delay.Sample(glob, loc, rng.NormFloat64())
		}
		for i, in := range g.Inputs {
			// Scalar longest path from input i with argmax predecessor.
			arr := make([]float64, g.NumVerts)
			pred := make([]int, g.NumVerts)
			for v := range arr {
				arr[v] = math.Inf(-1)
				pred[v] = -1
			}
			arr[in] = 0
			for _, v := range order {
				if math.IsInf(arr[v], -1) {
					continue
				}
				for _, ei := range g.Out[v] {
					e := &g.Edges[ei]
					if cand := arr[v] + delays[ei]; cand > arr[e.To] {
						arr[e.To] = cand
						pred[e.To] = int(ei)
					}
				}
			}
			for j, out := range g.Outputs {
				if math.IsInf(arr[out], -1) {
					continue
				}
				pairTotal[i][j]++
				v := out
				for v != in {
					ei := pred[v]
					if ei < 0 {
						break
					}
					pairCount[i][j][ei]++
					v = g.Edges[ei].From
				}
			}
		}
	}
	for e := range g.Edges {
		for i := range g.Inputs {
			for j := range g.Outputs {
				if pairTotal[i][j] == 0 {
					continue
				}
				f := float64(pairCount[i][j][e]) / float64(pairTotal[i][j])
				if f > counts[e] {
					counts[e] = f
				}
			}
		}
	}
	for e := range g.Edges {
		if d := math.Abs(counts[e] - crit.Cm[e]); d > 0.12 {
			t.Errorf("edge %d: MC criticality %.3f vs analytic %.3f (|d|=%.3f)",
				e, counts[e], crit.Cm[e], d)
		}
	}
}

func TestExtractC17NoRemoval(t *testing.T) {
	// With delta < 0 no edges are removed; merges alone must preserve the
	// delay matrix (serial merge is exact, parallel merge is the same Clark
	// max the propagation would apply).
	g := buildGraph(t, "c17", 1)
	apOrig, err := g.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract(g, Options{Delta: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.EdgesModel > m.Stats.EdgesOrig {
		t.Fatalf("model has more edges than original: %d > %d", m.Stats.EdgesModel, m.Stats.EdgesOrig)
	}
	apModel, err := m.Graph.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	compareDelayMatrices(t, apOrig, apModel, 0.01, 0.05)
}

func TestExtractC432DefaultDelta(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	apOrig, err := g.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.EdgesModel >= m.Stats.EdgesOrig {
		t.Fatalf("no compression: %d >= %d", m.Stats.EdgesModel, m.Stats.EdgesOrig)
	}
	if m.Stats.PE() > 0.9 || m.Stats.PV() > 0.9 {
		t.Fatalf("weak compression: pe=%.2f pv=%.2f", m.Stats.PE(), m.Stats.PV())
	}
	apModel, err := m.Graph.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	// Reachability must be preserved (path protection).
	for i := range apOrig.M {
		for j := range apOrig.M[i] {
			if (apOrig.M[i][j] != nil) != (apModel.M[i][j] != nil) {
				t.Fatalf("pair (%d,%d): reachability changed", i, j)
			}
		}
	}
	compareDelayMatrices(t, apOrig, apModel, 0.02, 0.10)
}

// compareDelayMatrices checks the relative mean error and std error of all
// IO delays.
func compareDelayMatrices(t *testing.T, a, b *timing.AllPairs, meanTol, stdTol float64) {
	t.Helper()
	var worstMean, worstStd float64
	for i := range a.M {
		for j := range a.M[i] {
			fa, fb := a.M[i][j], b.M[i][j]
			if fa == nil || fb == nil {
				continue
			}
			if m := math.Abs(fb.Mean()-fa.Mean()) / math.Max(fa.Mean(), 1e-9); m > worstMean {
				worstMean = m
			}
			if s := math.Abs(fb.Std()-fa.Std()) / math.Max(fa.Std(), 1e-9); s > worstStd {
				worstStd = s
			}
		}
	}
	if worstMean > meanTol {
		t.Errorf("worst relative mean error %.4f > %.4f", worstMean, meanTol)
	}
	if worstStd > stdTol {
		t.Errorf("worst relative std error %.4f > %.4f", worstStd, stdTol)
	}
}

func TestExtractPreservesPortNames(t *testing.T) {
	g := buildGraph(t, "c17", 1)
	m, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Graph.InputNames) != len(g.InputNames) || len(m.Graph.OutputNames) != len(g.OutputNames) {
		t.Fatal("port name counts changed")
	}
	for i := range g.InputNames {
		if m.Graph.InputNames[i] != g.InputNames[i] {
			t.Fatalf("input name %d changed: %q vs %q", i, m.Graph.InputNames[i], g.InputNames[i])
		}
	}
}

func TestExtractHigherDeltaSmallerModel(t *testing.T) {
	g := buildGraph(t, "c880", 1)
	small, err := Extract(g, Options{Delta: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Extract(g, Options{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.EdgesModel > big.Stats.EdgesModel {
		t.Fatalf("delta=0.30 model (%d edges) larger than delta=0.01 (%d edges)",
			small.Stats.EdgesModel, big.Stats.EdgesModel)
	}
}

func TestCriticalityHistogramBimodal(t *testing.T) {
	g := buildGraph(t, "c1908", 1)
	crit, err := EdgeCriticalities(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := CriticalityHistogram(crit.Cm, 20)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != len(g.Edges) {
		t.Fatalf("histogram total %d != edges %d", h.Total(), len(g.Edges))
	}
	// Paper Fig. 6: mass concentrates near 0 and 1.
	lo := h.Fraction(0) + h.Fraction(1)
	hi := h.Fraction(18) + h.Fraction(19)
	mid := 1 - lo - hi
	if lo+hi < mid {
		t.Errorf("criticalities not bimodal: ends=%.2f middle=%.2f", lo+hi, mid)
	}
}

func TestExtractOptionsValidation(t *testing.T) {
	if _, err := Extract(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	s := canon.Space{Globals: 1, Components: 1}
	empty := timing.NewGraph(s, 2, nil)
	if _, err := Extract(empty, Options{}); err == nil {
		t.Fatal("portless graph accepted")
	}
}

func TestModelJSONRoundtrip(t *testing.T) {
	g := buildGraph(t, "c17", 1)
	m, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph.NumVerts != m.Graph.NumVerts || len(back.Graph.Edges) != len(m.Graph.Edges) {
		t.Fatal("shape changed through JSON roundtrip")
	}
	apA, _ := m.Graph.AllPairsDelays(0)
	apB, err := back.Graph.AllPairsDelays(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range apA.M {
		for j := range apA.M[i] {
			fa, fb := apA.M[i][j], apB.M[i][j]
			if (fa == nil) != (fb == nil) {
				t.Fatal("reachability changed through JSON")
			}
			if fa != nil && math.Abs(fa.Mean()-fb.Mean()) > 1e-9 {
				t.Fatal("delays changed through JSON")
			}
		}
	}
	if back.Stats.EdgesOrig != m.Stats.EdgesOrig {
		t.Fatal("stats lost")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"format_version": 99}`))); err == nil {
		t.Fatal("wrong version accepted")
	}
}
