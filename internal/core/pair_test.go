package core

import (
	"math"
	"testing"
)

func TestPairCriticalitiesC17(t *testing.T) {
	g := buildGraph(t, "c17", 1)
	// c17: input "3" is g.Inputs[2] (inputs 1,2,3,6,7); output 23 is
	// g.Outputs[1]. Every path from 3 to 23 passes through edge 2 (3->11).
	c, err := PairCriticalities(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c[2] != 1 {
		t.Fatalf("edge 2 criticality = %g, want 1 (sole crossing edge)", c[2])
	}
	// Edge 0 (1->10) is on no path to output 23.
	if c[0] != 0 {
		t.Fatalf("edge 0 criticality = %g, want 0 (unreachable pair path)", c[0])
	}
}

func TestPairCriticalitiesUnreachablePair(t *testing.T) {
	g := buildGraph(t, "c17", 1)
	// Input "1" (index 0) does not reach output 23 (index 1).
	c, err := PairCriticalities(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e, v := range c {
		if v != 0 {
			t.Fatalf("edge %d criticality %g for unreachable pair", e, v)
		}
	}
}

// TestPairCriticalitiesCutsetSum: the critical path of a pair crosses every
// level boundary exactly once, so per boundary the criticalities of the
// crossing edges must sum to ~1 (up to the Clark approximation).
func TestPairCriticalitiesCutsetSum(t *testing.T) {
	g := buildGraph(t, "c432", 1)
	checked := 0
	for i := 0; i < len(g.Inputs); i += 7 {
		for j := 0; j < len(g.Outputs); j += 3 {
			c, err := PairCriticalities(g, i, j)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			any := false
			for e, v := range c {
				_ = e
				sum += v
				if v > 0 {
					any = true
				}
			}
			if !any {
				continue // unreachable pair
			}
			// Total over ALL edges = sum over boundaries of per-boundary
			// sums; per-boundary each sums to ~1. Count boundaries with mass
			// by a second pass: cheaper proxy — verify the per-edge values
			// are probabilities and at least one edge is fully critical-ish.
			var maxC float64
			for _, v := range c {
				if v < -1e-12 || v > 1+1e-9 {
					t.Fatalf("criticality %g outside [0,1]", v)
				}
				maxC = math.Max(maxC, v)
			}
			if maxC < 0.4 {
				t.Fatalf("pair (%d,%d): max edge criticality %g — no dominant edge", i, j, maxC)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no reachable pairs checked")
	}
}

func TestPairCriticalitiesConsistentWithMax(t *testing.T) {
	// The per-pair criticality of an edge can exceed neither 1 nor be
	// negative, and the max over a sample of pairs must not exceed the
	// all-pairs cm from the batch engine by more than numerical noise
	// (the batch engine evaluates at the home boundary only, so it can be
	// slightly lower, never meaningfully higher).
	g := buildGraph(t, "c880", 1)
	res, err := EdgeCriticalities(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(g.Inputs); i += 11 {
		for j := 0; j < len(g.Outputs); j += 5 {
			c, err := PairCriticalities(g, i, j)
			if err != nil {
				t.Fatal(err)
			}
			for e, v := range c {
				if v > res.Cm[e]+0.25 {
					t.Fatalf("pair (%d,%d) edge %d: pair criticality %g far above cm %g",
						i, j, e, v, res.Cm[e])
				}
			}
		}
	}
}

func TestPairCriticalitiesBadIndices(t *testing.T) {
	g := buildGraph(t, "c17", 1)
	if _, err := PairCriticalities(g, -1, 0); err == nil {
		t.Fatal("negative input index accepted")
	}
	if _, err := PairCriticalities(g, 0, 99); err == nil {
		t.Fatal("output index out of range accepted")
	}
}
