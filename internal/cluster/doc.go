// Package cluster is the distributed-serving substrate for sstad: a
// compact binary RPC transport plus a health-checked worker pool with
// consistent-hash placement.
//
// The transport is deliberately small. Every frame on the wire is a
// 4-byte big-endian length prefix followed by a store envelope
// (store.Seal, kind "sstad-rpc"), so each frame carries the same
// version + CRC-32C seal as durable snapshots and torn or corrupt
// frames are detected before a decoder runs. Inside the envelope sits a
// one-line JSON header (frame type, request id, method, error) followed
// by an opaque body. Connections are symmetric: either peer may issue
// requests, return responses, stream mid-request event frames, or
// cancel an in-flight request, all multiplexed over one TCP connection.
// That symmetry is what lets a worker consult the coordinator's model
// cache over the same connection the coordinator uses to dispatch
// shards.
//
// Pool tracks a fixed set of worker addresses, dials lazily, health-
// checks each node with a periodic ping, and places keys on nodes with
// a consistent-hash ring (virtual nodes) so session affinity survives
// membership changes with minimal reshuffling. Dispatch policy —
// retry, failover, local fallback — belongs to the caller; the pool
// only reports node health and moves bytes.
//
// The package knows nothing about timing analysis: methods are strings,
// bodies are bytes. Protocol message shapes live with the server.
package cluster
