package cluster

import (
	"context"
	"errors"
	"net"
	"sync"
)

// Serve accepts RPC connections on ln and serves svc on each until ctx
// ends or the listener fails. It closes every accepted connection on
// the way out and returns the accept error (nil after a clean
// shutdown).
func Serve(ctx context.Context, ln net.Listener, svc Service) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	var mu sync.Mutex
	conns := make(map[*Conn]struct{})
	var wg sync.WaitGroup
	defer func() {
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c := NewConn(ctx, nc, svc)
		mu.Lock()
		conns[c] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-c.Done()
			mu.Lock()
			delete(conns, c)
			mu.Unlock()
		}()
	}
}
