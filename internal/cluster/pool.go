package cluster

import (
	"context"
	"errors"
	"hash/fnv"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// PingMethod is the health-check RPC every worker must serve. The pool
// calls it on every interval tick; any response counts as healthy.
const PingMethod = "ping"

// DialFunc opens a transport connection to a worker address. Tests and
// fault injection substitute their own.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// ringVnodes is how many virtual nodes each worker contributes to the
// placement ring. More vnodes smooth the key distribution.
const ringVnodes = 64

// PoolConfig configures a worker pool.
type PoolConfig struct {
	// Addrs are the worker RPC addresses (host:port).
	Addrs []string
	// Dial opens connections; nil uses a net.Dialer with PingTimeout.
	Dial DialFunc
	// Service is served on the pool's side of every connection, so
	// workers can call back (remote model cache). May be nil.
	Service Service
	// PingInterval is the health-check cadence. Default 500ms.
	PingInterval time.Duration
	// PingTimeout bounds one ping round trip (and the default dial).
	// Default 2s.
	PingTimeout time.Duration
	// FailThreshold is how many consecutive ping failures mark a node
	// unhealthy. Default 1: a dispatch failure or missed ping demotes
	// immediately; the next successful ping promotes back.
	FailThreshold int
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Dial == nil {
		c.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			d := net.Dialer{Timeout: c.PingTimeout}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 500 * time.Millisecond
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 1
	}
	return c
}

// Node is one worker in the pool. Counters are exposed for metrics.
type Node struct {
	addr string

	mu         sync.Mutex
	conn       *Conn
	healthy    bool
	lastErr    error
	lastSeen   time.Time
	consecFail int

	// InFlight is the number of dispatches currently on this node.
	InFlight atomic.Int64
	// Dispatches counts RPCs issued to this node.
	Dispatches atomic.Int64
	// Errors counts RPCs that failed at the transport layer.
	Errors atomic.Int64
	// Sessions counts stateful sessions currently routed to this node.
	Sessions atomic.Int64
}

// Addr reports the node's worker address.
func (n *Node) Addr() string { return n.addr }

// Healthy reports whether the last health check succeeded.
func (n *Node) Healthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}

// LastErr reports the most recent transport failure, if any.
func (n *Node) LastErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastErr
}

// LastSeen reports when the node last answered.
func (n *Node) LastSeen() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastSeen
}

// ErrNoNodes reports a dispatch attempted with no healthy worker.
var ErrNoNodes = errors.New("cluster: no healthy nodes")

// Pool is a fixed-membership worker pool: it dials lazily, health-
// checks every node, and places keys with a consistent-hash ring.
type Pool struct {
	cfg   PoolConfig
	nodes []*Node
	ring  []ringEntry

	mu  sync.Mutex
	svc Service

	stop context.CancelFunc
	wg   sync.WaitGroup
}

type ringEntry struct {
	hash uint64
	node *Node
}

// NewPool builds a pool over the given worker addresses. Call Start to
// begin health checking.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, svc: cfg.Service}
	for _, addr := range cfg.Addrs {
		n := &Node{addr: addr}
		p.nodes = append(p.nodes, n)
		for v := 0; v < ringVnodes; v++ {
			p.ring = append(p.ring, ringEntry{hash: ringHash(addr + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
	return p
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// SetService installs the service served on the pool's side of every
// connection. Must be called before Start.
func (p *Pool) SetService(svc Service) {
	p.mu.Lock()
	p.svc = svc
	p.mu.Unlock()
}

// Start launches the health-check loops. ctx bounds the pool's
// lifetime; when it ends all connections close.
func (p *Pool) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	p.stop = cancel
	for _, n := range p.nodes {
		n := n
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.healthLoop(ctx, n)
		}()
	}
}

// Close stops health checking and closes all connections.
func (p *Pool) Close() {
	if p.stop != nil {
		p.stop()
	}
	p.wg.Wait()
	for _, n := range p.nodes {
		n.mu.Lock()
		c := n.conn
		n.conn = nil
		n.mu.Unlock()
		if c != nil {
			c.Close()
		}
	}
}

// healthLoop pings one node forever, dialing as needed.
func (p *Pool) healthLoop(ctx context.Context, n *Node) {
	t := time.NewTicker(p.cfg.PingInterval)
	defer t.Stop()
	for {
		p.ping(ctx, n)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ping performs one health check round trip.
func (p *Pool) ping(ctx context.Context, n *Node) {
	cctx, cancel := context.WithTimeout(ctx, p.cfg.PingTimeout)
	defer cancel()
	conn, err := p.connFor(cctx, n)
	if err == nil {
		_, err = conn.Call(cctx, PingMethod, nil, nil)
	}
	if err != nil {
		p.noteFailure(n, err)
		return
	}
	n.mu.Lock()
	n.healthy = true
	n.consecFail = 0
	n.lastErr = nil
	n.lastSeen = time.Now()
	n.mu.Unlock()
}

// connFor returns the node's live connection, dialing if needed.
func (p *Pool) connFor(ctx context.Context, n *Node) (*Conn, error) {
	n.mu.Lock()
	if c := n.conn; c != nil {
		select {
		case <-c.Done():
			n.conn = nil
		default:
			n.mu.Unlock()
			return c, nil
		}
	}
	n.mu.Unlock()

	nc, err := p.cfg.Dial(ctx, n.addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	svc := p.svc
	p.mu.Unlock()
	c := NewConn(context.WithoutCancel(ctx), nc, svc)

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.conn != nil {
		// Another dial won the race; keep the established one.
		select {
		case <-n.conn.Done():
			n.conn.Close()
			n.conn = c
		default:
			c.Close()
			return n.conn, nil
		}
	} else {
		n.conn = c
	}
	return n.conn, nil
}

// noteFailure records a transport failure and demotes the node once the
// consecutive-failure threshold is crossed. The dead connection is
// dropped so the next attempt redials.
func (p *Pool) noteFailure(n *Node, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lastErr = err
	n.consecFail++
	if n.consecFail >= p.cfg.FailThreshold {
		n.healthy = false
	}
	if n.conn != nil {
		select {
		case <-n.conn.Done():
			n.conn = nil // dead; next attempt redials
		default:
		}
	}
}

// Do issues one RPC to a node, maintaining in-flight and error
// accounting. A transport failure demotes the node so subsequent
// dispatches skip it until the next successful ping; a RemoteError is
// the handler's problem, not the node's.
func (p *Pool) Do(ctx context.Context, n *Node, method string, body []byte, onEvent func([]byte)) ([]byte, error) {
	conn, err := p.connFor(ctx, n)
	if err != nil {
		n.Errors.Add(1)
		p.noteFailure(n, err)
		return nil, err
	}
	n.Dispatches.Add(1)
	n.InFlight.Add(1)
	defer n.InFlight.Add(-1)
	res, err := conn.Call(ctx, method, body, onEvent)
	if err != nil {
		var remote *RemoteError
		if !errors.As(err, &remote) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			n.Errors.Add(1)
			p.noteFailure(n, err)
		}
	}
	return res, err
}

// Nodes returns all pool members in configuration order.
func (p *Pool) Nodes() []*Node { return p.nodes }

// Healthy returns the currently healthy members in configuration order.
func (p *Pool) Healthy() []*Node {
	var out []*Node
	for _, n := range p.nodes {
		if n.Healthy() {
			out = append(out, n)
		}
	}
	return out
}

// Pick places a key on the ring and returns the first healthy node at
// or after its position, or nil when the pool has no healthy node.
// Placement is stable: a key moves only when its node changes health.
func (p *Pool) Pick(key []byte) *Node {
	if len(p.ring) == 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write(key)
	target := h.Sum64()
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= target })
	for off := 0; off < len(p.ring); off++ {
		e := p.ring[(i+off)%len(p.ring)]
		if e.node.Healthy() {
			return e.node
		}
	}
	return nil
}

// NodeByAddr returns the member with the given address, or nil.
func (p *Pool) NodeByAddr(addr string) *Node {
	for _, n := range p.nodes {
		if n.addr == addr {
			return n
		}
	}
	return nil
}
