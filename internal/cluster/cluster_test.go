package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

func TestFrameRoundTrip(t *testing.T) {
	body := []byte(`{"x":1}`)
	buf, err := encodeFrame(frameHeader{Type: frameRequest, ID: 42, Method: "m"}, body)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	h, got, err := readFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if h.Type != frameRequest || h.ID != 42 || h.Method != "m" {
		t.Fatalf("header round trip: %+v", h)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body round trip: %q", got)
	}
}

func TestFrameTornAndCorrupt(t *testing.T) {
	buf, err := encodeFrame(frameHeader{Type: frameResponse, ID: 1}, []byte("payload"))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Torn: length prefix promises more bytes than arrive.
	if _, _, err := readFrame(bytes.NewReader(buf[:len(buf)-3])); err == nil {
		t.Fatal("torn frame read succeeded")
	}
	// Corrupt: flip a payload bit; the envelope CRC must catch it.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("corrupt frame: got %v, want ErrCorrupt", err)
	}
}

// pipeConns returns two connected transport Conns, the second serving svc.
func pipeConns(t *testing.T, svc Service) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca := NewConn(context.Background(), a, nil)
	cb := NewConn(context.Background(), b, svc)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestCallResponseAndEvents(t *testing.T) {
	svc := Service{
		"echo": func(ctx context.Context, req *Request) ([]byte, error) {
			for i := 0; i < 3; i++ {
				if err := req.Emit([]byte{byte('0' + i)}); err != nil {
					return nil, err
				}
			}
			return req.Body, nil
		},
		"boom": func(ctx context.Context, req *Request) ([]byte, error) {
			return nil, errors.New("kaput")
		},
	}
	caller, _ := pipeConns(t, svc)

	var events []string
	res, err := caller.Call(context.Background(), "echo", []byte("hi"), func(b []byte) {
		events = append(events, string(b))
	})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(res) != "hi" {
		t.Fatalf("response %q", res)
	}
	if len(events) != 3 || events[0] != "0" || events[2] != "2" {
		t.Fatalf("events %v", events)
	}

	_, err = caller.Call(context.Background(), "boom", nil, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "kaput" {
		t.Fatalf("remote error: %v", err)
	}

	_, err = caller.Call(context.Background(), "nope", nil, nil)
	if !errors.As(err, &remote) {
		t.Fatalf("unknown method: %v", err)
	}
}

func TestCallCancelPropagates(t *testing.T) {
	started := make(chan struct{})
	stopped := make(chan struct{})
	svc := Service{
		"wait": func(ctx context.Context, req *Request) ([]byte, error) {
			close(started)
			<-ctx.Done()
			close(stopped)
			return nil, ctx.Err()
		},
	}
	caller, _ := pipeConns(t, svc)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := caller.Call(ctx, "wait", nil, nil)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error: %v", err)
	}
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("cancel frame never reached the handler")
	}
}

func TestConnDeathFailsPendingCalls(t *testing.T) {
	block := make(chan struct{})
	svc := Service{
		"hang": func(ctx context.Context, req *Request) ([]byte, error) {
			<-block
			return nil, nil
		},
	}
	caller, callee := pipeConns(t, svc)
	errc := make(chan error, 1)
	go func() {
		_, err := caller.Call(context.Background(), "hang", nil, nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	callee.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("pending call error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call never failed after conn death")
	}
	close(block)
}

// callerPeer exercises the symmetric direction: the callee's handler
// calls back to a service on the caller's side of the same connection.
func TestSymmetricCallback(t *testing.T) {
	a, b := net.Pipe()
	callerSvc := Service{
		"lookup": func(ctx context.Context, req *Request) ([]byte, error) {
			return append([]byte("found:"), req.Body...), nil
		},
	}
	workerSvc := Service{
		"work": func(ctx context.Context, req *Request) ([]byte, error) {
			return req.Conn.Call(ctx, "lookup", req.Body, nil)
		},
	}
	caller := NewConn(context.Background(), a, callerSvc)
	worker := NewConn(context.Background(), b, workerSvc)
	defer caller.Close()
	defer worker.Close()

	res, err := caller.Call(context.Background(), "work", []byte("k1"), nil)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(res) != "found:k1" {
		t.Fatalf("callback result %q", res)
	}
}

// startWorker serves svc on a real TCP listener and returns its address
// plus a stop function.
func startWorker(t *testing.T, svc Service) (string, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, ln, svc)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return ln.Addr().String(), cancel
}

func pingSvc() Service {
	return Service{
		PingMethod: func(ctx context.Context, req *Request) ([]byte, error) {
			return json.Marshal(map[string]int{"ok": 1})
		},
	}
}

func waitHealthy(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.Healthy()) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("pool never reached %d healthy nodes (have %d)", want, len(p.Healthy()))
}

func TestPoolHealthAndFailover(t *testing.T) {
	addrA, stopA := startWorker(t, pingSvc())
	addrB, _ := startWorker(t, pingSvc())

	p := NewPool(PoolConfig{
		Addrs:        []string{addrA, addrB},
		PingInterval: 20 * time.Millisecond,
		PingTimeout:  time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)
	defer p.Close()

	waitHealthy(t, p, 2)

	// Placement is deterministic and lands on a healthy node.
	n1 := p.Pick([]byte("some-graph-fingerprint"))
	n2 := p.Pick([]byte("some-graph-fingerprint"))
	if n1 == nil || n1 != n2 {
		t.Fatalf("placement unstable: %v vs %v", n1, n2)
	}

	// Kill one worker; the pool demotes it and placement moves over.
	stopA()
	waitHealthy(t, p, 1)
	if got := p.Pick([]byte("some-graph-fingerprint")); got == nil || got.Addr() != addrB {
		t.Fatalf("placement after death: %v", got)
	}
	if p.NodeByAddr(addrA).Healthy() {
		t.Fatal("dead node still healthy")
	}
}

func TestPoolDoCountsAndDemotes(t *testing.T) {
	var served atomic.Int64
	svc := pingSvc()
	svc["job"] = func(ctx context.Context, req *Request) ([]byte, error) {
		served.Add(1)
		return []byte("done"), nil
	}
	addr, stop := startWorker(t, svc)

	p := NewPool(PoolConfig{
		Addrs:        []string{addr},
		PingInterval: 20 * time.Millisecond,
		PingTimeout:  time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)
	defer p.Close()
	waitHealthy(t, p, 1)

	n := p.Nodes()[0]
	res, err := p.Do(context.Background(), n, "job", nil, nil)
	if err != nil || string(res) != "done" {
		t.Fatalf("do: %v %q", err, res)
	}
	if n.Dispatches.Load() == 0 || served.Load() != 1 {
		t.Fatalf("dispatch accounting: %d sent, %d served", n.Dispatches.Load(), served.Load())
	}

	stop()
	waitHealthy(t, p, 0)
	if _, err := p.Do(context.Background(), n, "job", nil, nil); err == nil {
		t.Fatal("dispatch to dead node succeeded")
	}
	if n.Errors.Load() == 0 {
		t.Fatal("transport error not counted")
	}
}

func TestFaultDialerDropAndTear(t *testing.T) {
	svc := pingSvc()
	svc["job"] = func(ctx context.Context, req *Request) ([]byte, error) {
		return []byte("ok"), nil
	}
	addr, _ := startWorker(t, svc)
	base := func(ctx context.Context, a string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", a)
	}

	// Torn frame: the peer sees a CRC/short-read failure and the caller's
	// connection dies deterministically on the first request frame.
	fd := NewFaultDialer(base, FaultConfig{TearAtWrite: 1})
	nc, err := fd.Dial(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewConn(context.Background(), nc, nil)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, "job", []byte("x"), nil); err == nil {
		t.Fatal("call over torn connection succeeded")
	}

	// Dropped connection after the first successful frame: the call's
	// response never arrives and the pending call fails with conn death.
	fd.SetConfig(FaultConfig{DropAfterWrites: 1})
	nc2, err := fd.Dial(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c2 := NewConn(context.Background(), nc2, nil)
	defer c2.Close()
	if _, err := c2.Call(ctx, "job", []byte("x"), nil); err == nil {
		t.Fatal("call over dropped connection succeeded")
	}

	// Latency injection slows but does not break the call.
	fd.SetConfig(FaultConfig{WriteLatency: 5 * time.Millisecond})
	nc3, err := fd.Dial(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c3 := NewConn(context.Background(), nc3, nil)
	defer c3.Close()
	start := time.Now()
	if _, err := c3.Call(ctx, "job", []byte("x"), nil); err != nil {
		t.Fatalf("latent call: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("latency not injected")
	}
	if dials, writes := fd.Counters(); dials != 3 || writes == 0 {
		t.Fatalf("fault counters: %d dials %d writes", dials, writes)
	}
}

func TestPickSkipsUnhealthyDeterministically(t *testing.T) {
	p := NewPool(PoolConfig{Addrs: []string{"a:1", "b:1", "c:1"}})
	for _, n := range p.nodes {
		n.mu.Lock()
		n.healthy = true
		n.mu.Unlock()
	}
	key := []byte("session-key")
	first := p.Pick(key)
	if first == nil {
		t.Fatal("no pick with all healthy")
	}
	// Record where a spread of keys lands, then demote the first node.
	before := make(map[int]*Node)
	for i := 0; i < 64; i++ {
		before[i] = p.Pick([]byte{byte(i), 'k'})
	}
	first.mu.Lock()
	first.healthy = false
	first.mu.Unlock()

	second := p.Pick(key)
	if second == nil || second == first {
		t.Fatalf("pick after demotion: %v", second)
	}
	if p.Pick(key) != second {
		t.Fatal("fallback placement unstable")
	}
	// Consistent hashing: only keys that lived on the demoted node move.
	for i := 0; i < 64; i++ {
		after := p.Pick([]byte{byte(i), 'k'})
		if before[i] != first && after != before[i] {
			t.Fatalf("key %d moved from a healthy node", i)
		}
		if before[i] == first && after == first {
			t.Fatalf("key %d stayed on the demoted node", i)
		}
	}
}
