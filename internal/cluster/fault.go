package cluster

import (
	"context"
	"net"
	"sync"
	"time"
)

// Deterministic transport fault injection, mirroring the store.Fault
// wrapper pattern: wrap the pool's DialFunc, count frames, and fail on
// a schedule. Because the transport writes each frame with exactly one
// Write call, counting Write calls counts frames.

// FaultConfig schedules transport faults. Zero value injects nothing.
type FaultConfig struct {
	// DropAfterWrites closes the connection immediately after the Nth
	// successful frame write (1-based). Zero disables.
	DropAfterWrites int
	// TearAtWrite truncates the Nth frame write halfway and then closes
	// the connection, producing a torn frame at the peer. Zero disables.
	TearAtWrite int
	// WriteLatency delays every frame write.
	WriteLatency time.Duration
	// FailDials makes subsequent dials fail outright.
	FailDials bool
}

// FaultDialer wraps dial so every connection it opens injects the
// faults described by cfg. Counters are per-connection and the config
// can be swapped between dials; reads of cfg are synchronized.
type FaultDialer struct {
	inner DialFunc

	mu     sync.Mutex
	cfg    FaultConfig
	dials  int
	writes int // total frame writes across connections, for assertions
}

// NewFaultDialer wraps inner with fault injection.
func NewFaultDialer(inner DialFunc, cfg FaultConfig) *FaultDialer {
	return &FaultDialer{inner: inner, cfg: cfg}
}

// SetConfig swaps the fault schedule for connections dialed from now on.
func (f *FaultDialer) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// Counters reports total dials and frame writes through this dialer.
func (f *FaultDialer) Counters() (dials, writes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dials, f.writes
}

// Dial is the DialFunc to hand the pool.
func (f *FaultDialer) Dial(ctx context.Context, addr string) (net.Conn, error) {
	f.mu.Lock()
	cfg := f.cfg
	f.dials++
	f.mu.Unlock()
	if cfg.FailDials {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: context.DeadlineExceeded}
	}
	nc, err := f.inner(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: nc, dialer: f, cfg: cfg}, nil
}

// faultConn injects the scheduled faults on one connection.
type faultConn struct {
	net.Conn
	dialer *FaultDialer
	cfg    FaultConfig

	mu     sync.Mutex
	writes int
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.cfg.WriteLatency > 0 {
		time.Sleep(c.cfg.WriteLatency)
	}
	c.mu.Lock()
	c.writes++
	w := c.writes
	c.mu.Unlock()
	c.dialer.mu.Lock()
	c.dialer.writes++
	c.dialer.mu.Unlock()

	if c.cfg.TearAtWrite > 0 && w == c.cfg.TearAtWrite {
		half := len(b) / 2
		n, _ := c.Conn.Write(b[:half])
		c.Conn.Close()
		return n, net.ErrClosed
	}
	n, err := c.Conn.Write(b)
	if err == nil && c.cfg.DropAfterWrites > 0 && w >= c.cfg.DropAfterWrites {
		c.Conn.Close()
	}
	return n, err
}
