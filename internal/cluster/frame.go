package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/store"
)

// Wire format: each frame is
//
//	[4-byte big-endian length][store.Seal("sstad-rpc", 1, payload)]
//
// where payload is a one-line JSON frame header followed by the body:
//
//	{"t":1,"id":7,"m":"sweep.shard"}\n<body bytes>
//
// Reusing the store envelope means every frame carries the snapshot
// magic, a format version, and a CRC-32C over the payload, so a torn
// write or a flipped bit surfaces as store.ErrCorrupt at the reader
// instead of as garbage handed to a decoder.

const (
	// frameKind is the store envelope kind sealed around every frame.
	frameKind = "sstad-rpc"
	// frameVersion is the RPC format version inside the envelope.
	frameVersion = 1
	// maxFrameBytes bounds a single frame (sealed envelope included).
	// Model snapshots are the largest bodies and stay well under this.
	maxFrameBytes = 64 << 20
)

// Frame types. Requests and responses pair by id; events are
// mid-request notifications from callee to caller; cancel propagates
// caller context death to the callee's handler.
const (
	frameRequest  = 1
	frameResponse = 2
	frameEvent    = 3
	frameCancel   = 4
)

// frameHeader is the one-line JSON header inside each frame.
type frameHeader struct {
	Type   int    `json:"t"`
	ID     uint64 `json:"id"`
	Method string `json:"m,omitempty"`
	Error  string `json:"e,omitempty"`
}

// errFrameTooLarge rejects frames beyond maxFrameBytes on either side.
var errFrameTooLarge = errors.New("cluster: frame exceeds size limit")

// encodeFrame assembles one wire frame as a single buffer so the
// transport can hand it to the socket in one Write call (which keeps
// fault-injection counting frame-accurate).
func encodeFrame(h frameHeader, body []byte) ([]byte, error) {
	hb, err := json.Marshal(&h)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal frame header: %w", err)
	}
	payload := make([]byte, 0, len(hb)+1+len(body))
	payload = append(payload, hb...)
	payload = append(payload, '\n')
	payload = append(payload, body...)
	sealed := store.Seal(frameKind, frameVersion, payload)
	if len(sealed) > maxFrameBytes {
		return nil, errFrameTooLarge
	}
	out := make([]byte, 4+len(sealed))
	binary.BigEndian.PutUint32(out, uint32(len(sealed)))
	copy(out[4:], sealed)
	return out, nil
}

// readFrame reads one frame, validating the envelope seal. A short read
// mid-frame (torn write, dropped peer) returns the read error; a frame
// that fails the seal returns an error wrapping store.ErrCorrupt or
// store.ErrVersion.
func readFrame(r io.Reader) (frameHeader, []byte, error) {
	var h frameHeader
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return h, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameBytes {
		return h, nil, errFrameTooLarge
	}
	sealed := make([]byte, n)
	if _, err := io.ReadFull(r, sealed); err != nil {
		return h, nil, fmt.Errorf("cluster: short frame read: %w", err)
	}
	payload, err := store.OpenKind(sealed, frameKind, frameVersion)
	if err != nil {
		return h, nil, err
	}
	nl := bytes.IndexByte(payload, '\n')
	if nl < 0 {
		return h, nil, fmt.Errorf("%w: frame has no header line", store.ErrCorrupt)
	}
	if err := json.Unmarshal(payload[:nl], &h); err != nil {
		return h, nil, fmt.Errorf("%w: frame header: %v", store.ErrCorrupt, err)
	}
	return h, payload[nl+1:], nil
}
