package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Handler serves one RPC method. ctx is canceled when the peer sends a
// cancel frame for the request, the connection dies, or the connection's
// base context ends. Emit streams an event frame back to the caller
// mid-request; the returned bytes become the response body.
type Handler func(ctx context.Context, req *Request) ([]byte, error)

// Service maps method names to handlers. Both ends of a connection may
// serve one: coordinators serve the remote model cache on the same
// connections they dispatch shards over.
type Service map[string]Handler

// Request is the callee-side view of one in-flight RPC.
type Request struct {
	// Conn is the connection the request arrived on, for peer calls
	// back in the other direction.
	Conn *Conn
	// Method is the dispatched method name.
	Method string
	// Body is the raw request body.
	Body []byte
	// Emit sends an event frame to the caller. Safe to call from the
	// handler goroutine until the handler returns.
	Emit func(body []byte) error
}

// ErrConnClosed reports a call attempted on, or interrupted by, a dead
// connection.
var ErrConnClosed = errors.New("cluster: connection closed")

// RemoteError is a handler failure relayed from the peer: the transport
// worked, the method did not.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "cluster: remote: " + e.Msg }

// pending tracks one outbound call awaiting its response frame.
type pending struct {
	done    chan struct{}
	body    []byte
	err     error
	onEvent func(body []byte)
}

// Conn is a symmetric RPC connection: both peers can call, serve,
// stream events, and cancel over one net.Conn. A single reader
// goroutine demultiplexes frames; writes are serialized by a mutex and
// each frame is a single Write on the underlying connection.
type Conn struct {
	nc  net.Conn
	svc Service

	ctx    context.Context
	cancel context.CancelFunc

	wmu sync.Mutex

	mu       sync.Mutex
	calls    map[uint64]*pending
	inflight map[uint64]context.CancelFunc
	err      error
	closed   bool

	nextID atomic.Uint64
	wg     sync.WaitGroup
}

// NewConn wraps nc in an RPC connection serving svc (which may be nil
// for a pure client). ctx bounds the connection's lifetime: when it
// ends the connection closes and all in-flight calls fail.
func NewConn(ctx context.Context, nc net.Conn, svc Service) *Conn {
	cctx, cancel := context.WithCancel(ctx)
	c := &Conn{
		nc:       nc,
		svc:      svc,
		ctx:      cctx,
		cancel:   cancel,
		calls:    make(map[uint64]*pending),
		inflight: make(map[uint64]context.CancelFunc),
	}
	context.AfterFunc(cctx, func() { c.close(ErrConnClosed) })
	c.wg.Add(1)
	go c.readLoop()
	return c
}

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

// Done is closed when the connection is dead.
func (c *Conn) Done() <-chan struct{} { return c.ctx.Done() }

// Close tears the connection down, failing all in-flight calls.
func (c *Conn) Close() error {
	c.close(ErrConnClosed)
	return nil
}

// close marks the connection dead exactly once and fails everything.
func (c *Conn) close(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	calls := c.calls
	c.calls = nil
	cancels := c.inflight
	c.inflight = nil
	c.mu.Unlock()

	c.cancel()
	c.nc.Close()
	for _, p := range calls {
		p.err = err
		close(p.done)
	}
	for _, stop := range cancels {
		stop()
	}
}

// Err reports why the connection died, or nil while it is alive.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// writeFrame serializes one frame onto the wire.
func (c *Conn) writeFrame(h frameHeader, body []byte) error {
	buf, err := encodeFrame(h, body)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.nc.Write(buf); err != nil {
		return fmt.Errorf("cluster: write frame: %w", err)
	}
	return nil
}

// Call issues method with body and waits for the response. onEvent, if
// non-nil, receives each event frame the callee emits before its
// response; it runs on the connection's reader goroutine and must not
// block. When ctx ends first, a cancel frame is sent so the callee's
// handler context dies too.
func (c *Conn) Call(ctx context.Context, method string, body []byte, onEvent func(body []byte)) ([]byte, error) {
	id := c.nextID.Add(1)
	p := &pending{done: make(chan struct{}), onEvent: onEvent}

	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.calls[id] = p
	c.mu.Unlock()

	if err := c.writeFrame(frameHeader{Type: frameRequest, ID: id, Method: method}, body); err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		c.close(err)
		return nil, err
	}

	select {
	case <-p.done:
		return p.body, p.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		// Best-effort: tell the callee to stop working on our behalf.
		_ = c.writeFrame(frameHeader{Type: frameCancel, ID: id}, nil)
		return nil, ctx.Err()
	}
}

// readLoop demultiplexes inbound frames until the connection dies.
func (c *Conn) readLoop() {
	defer c.wg.Done()
	for {
		h, body, err := readFrame(c.nc)
		if err != nil {
			c.close(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		switch h.Type {
		case frameRequest:
			c.serveRequest(h, body)
		case frameResponse:
			c.mu.Lock()
			p := c.calls[h.ID]
			delete(c.calls, h.ID)
			c.mu.Unlock()
			if p == nil {
				continue // caller gave up already
			}
			if h.Error != "" {
				p.err = &RemoteError{Msg: h.Error}
			} else {
				p.body = body
			}
			close(p.done)
		case frameEvent:
			c.mu.Lock()
			p := c.calls[h.ID]
			c.mu.Unlock()
			if p != nil && p.onEvent != nil {
				p.onEvent(body)
			}
		case frameCancel:
			c.mu.Lock()
			stop := c.inflight[h.ID]
			c.mu.Unlock()
			if stop != nil {
				stop()
			}
		default:
			c.close(fmt.Errorf("%w: unknown frame type %d", ErrConnClosed, h.Type))
			return
		}
	}
}

// serveRequest runs the handler for one inbound request in its own
// goroutine so slow methods never stall the reader.
func (c *Conn) serveRequest(h frameHeader, body []byte) {
	handler := c.svc[h.Method]
	if handler == nil {
		_ = c.writeFrame(frameHeader{Type: frameResponse, ID: h.ID,
			Error: fmt.Sprintf("unknown method %q", h.Method)}, nil)
		return
	}
	hctx, stop := context.WithCancel(c.ctx)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		stop()
		return
	}
	c.inflight[h.ID] = stop
	c.mu.Unlock()

	req := &Request{
		Conn:   c,
		Method: h.Method,
		Body:   body,
		Emit: func(b []byte) error {
			return c.writeFrame(frameHeader{Type: frameEvent, ID: h.ID}, b)
		},
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer stop()
		res, err := handler(hctx, req)
		c.mu.Lock()
		delete(c.inflight, h.ID)
		c.mu.Unlock()
		rh := frameHeader{Type: frameResponse, ID: h.ID}
		if err != nil {
			rh.Error = err.Error()
			if rh.Error == "" {
				rh.Error = "handler failed"
			}
			res = nil
		}
		_ = c.writeFrame(rh, res)
	}()
}
