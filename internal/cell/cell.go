// Package cell provides the synthetic standard-cell library that stands in
// for the proprietary 90nm industrial library of the paper's Section VI
// (see DESIGN.md, substitutions). Cell delays are linear in the process
// parameters — exactly the modeling assumption of the paper — with
// per-gate-type base delays, per-pin skew, a fanout load slope, and
// per-parameter relative sensitivities.
package cell

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/variation"
)

// Spec describes the timing of one gate type. All delays are picoseconds.
type Spec struct {
	Type      circuit.GateType
	BaseDelay float64 // intrinsic arc delay
	PinSkew   float64 // additional delay per input pin index
	LoadSlope float64 // delay added per fanout
	// Sens maps parameter index (into Library.Params) to the relative delay
	// sensitivity: d(delay)/delay per unit relative parameter change.
	Sens []float64

	// Slew model (first order): the arc delay grows by SlewSens ps per ps
	// of input transition beyond the reference slew; the cell's output
	// transition is OutSlewBase + OutSlewSlope per fanout.
	SlewSens     float64
	OutSlewBase  float64
	OutSlewSlope float64
}

// Library is a set of cell specs plus the process-variation context they
// are characterized against.
type Library struct {
	Name      string
	Params    []variation.Parameter
	LoadSigma float64 // relative sigma of the purely random load variation
	specs     map[circuit.GateType]Spec
}

// Synthetic90nm returns the default library: 90nm-class arc delays and the
// paper's variation setup (Leff/Tox/Vth sigmas 15.7%/5.3%/4.4%, load 15%).
// Sensitivities are plausible first-order values: delay responds strongest
// to channel length, then threshold voltage, then oxide thickness.
func Synthetic90nm() *Library {
	lib := &Library{
		Name:      "synthetic90nm",
		Params:    variation.Nassif90nm(),
		LoadSigma: variation.LoadSigma,
		specs:     make(map[circuit.GateType]Spec),
	}
	// Sensitivity vector order matches Params: Leff, Tox, Vth.
	sens := func(l, t, v float64) []float64 { return []float64{l, t, v} }
	add := func(gt circuit.GateType, base, skew, slope float64, s []float64) {
		lib.specs[gt] = Spec{
			Type: gt, BaseDelay: base, PinSkew: skew, LoadSlope: slope, Sens: s,
			// First-order slew model: sharper gates regenerate the edge
			// better (smaller output slew), slow inputs cost ~15% of their
			// excess transition in delay.
			SlewSens:     0.15,
			OutSlewBase:  0.9 * base,
			OutSlewSlope: 0.8 * slope,
		}
	}
	add(circuit.Not, 12, 0, 3.0, sens(0.90, 0.40, 0.55))
	add(circuit.Buf, 18, 0, 2.6, sens(0.88, 0.38, 0.52))
	add(circuit.Nand, 16, 0.8, 3.4, sens(0.92, 0.42, 0.56))
	add(circuit.Nor, 19, 1.0, 3.9, sens(0.95, 0.44, 0.60))
	add(circuit.And, 23, 0.8, 3.2, sens(0.90, 0.41, 0.55))
	add(circuit.Or, 25, 1.0, 3.6, sens(0.93, 0.43, 0.58))
	add(circuit.Xor, 31, 1.2, 4.2, sens(0.97, 0.46, 0.62))
	add(circuit.Xnor, 33, 1.2, 4.4, sens(0.97, 0.46, 0.62))
	// The DFF spec characterizes the clock-to-Q launch arc: BaseDelay is the
	// clk->Q delay, and the load slope bills the Q net's fanout like any
	// other cell output. Setup/hold constraints live in RegTiming.
	add(circuit.Dff, 42, 0, 3.1, sens(0.93, 0.43, 0.58))
	return lib
}

// RegTiming holds the setup/hold characterization of the library's register:
// nominal constraint values plus per-parameter relative sensitivities, in the
// same Params order as the cell specs. Setup shrinks the usable clock period;
// hold bounds the earliest the next D value may arrive after the clock edge.
type RegTiming struct {
	Setup float64 // ps required before the capturing edge
	Hold  float64 // ps required after the capturing edge
	// Relative sensitivities per parameter (fraction of nominal per unit
	// relative parameter change), Params order.
	SetupSens []float64
	HoldSens  []float64
	// Relative sigma of the purely random (uncorrelated) constraint
	// variation — the register-internal mismatch component.
	RandSigma float64
}

// RegTiming returns the register constraint characterization. Setup tracks
// process like a gate delay (a slow register needs data earlier); hold moves
// the same direction with roughly half the sensitivity, which keeps the
// setup-hold window physical across the parameter space.
func (l *Library) RegTiming() RegTiming {
	return RegTiming{
		Setup:     35,
		Hold:      8,
		SetupSens: []float64{0.85, 0.40, 0.55},
		HoldSens:  []float64{0.45, 0.20, 0.30},
		RandSigma: 0.05,
	}
}

// RefSlew is the input transition (ps) the arcs are characterized at; it is
// also the default transition assumed at module input ports.
const RefSlew = 30.0

// OutputSlew returns the nominal output transition of a gate driving the
// given fanout.
func (l *Library) OutputSlew(gt circuit.GateType, fanout int) (float64, error) {
	s, err := l.Spec(gt)
	if err != nil {
		return 0, err
	}
	if fanout < 1 {
		fanout = 1
	}
	return s.OutSlewBase + s.OutSlewSlope*float64(fanout), nil
}

// Spec returns the spec for a gate type.
func (l *Library) Spec(gt circuit.GateType) (Spec, error) {
	s, ok := l.specs[gt]
	if !ok {
		return Spec{}, fmt.Errorf("cell: library %q has no spec for gate type %v", l.Name, gt)
	}
	return s, nil
}

// Arc holds the nominal delay and sensitivities of one cell arc (input pin
// to output) at a concrete fanout load.
type Arc struct {
	Nominal float64   // ps
	Sens    []float64 // absolute delay sensitivity per parameter (ps per unit relative change)
	LoadAbs float64   // absolute 1-sigma delay contribution of load variation (ps)
}

// Arc computes the arc delay for a gate type through input pin `pin` when
// the gate drives `fanout` loads, with the input arriving at the reference
// transition. Fanout 0 (a primary output) is billed as one load.
func (l *Library) Arc(gt circuit.GateType, pin, fanout int) (Arc, error) {
	return l.ArcAtSlew(gt, pin, fanout, RefSlew)
}

// ArcAtSlew is Arc with an explicit input transition: the nominal delay
// grows by SlewSens per ps of transition beyond the reference.
func (l *Library) ArcAtSlew(gt circuit.GateType, pin, fanout int, slew float64) (Arc, error) {
	s, err := l.Spec(gt)
	if err != nil {
		return Arc{}, err
	}
	if pin < 0 {
		return Arc{}, fmt.Errorf("cell: negative pin index %d", pin)
	}
	if slew < 0 {
		return Arc{}, fmt.Errorf("cell: negative slew %g", slew)
	}
	if fanout < 1 {
		fanout = 1
	}
	nom := s.BaseDelay + s.PinSkew*float64(pin) + s.LoadSlope*float64(fanout) + s.SlewSens*(slew-RefSlew)
	if nom < 1 {
		nom = 1 // extremely sharp inputs cannot drive the delay negative
	}
	arc := Arc{Nominal: nom, Sens: make([]float64, len(l.Params))}
	for i, k := range s.Sens {
		arc.Sens[i] = nom * k // relative sensitivity scaled to absolute ps
	}
	// Only the load-dependent part of the delay varies with load.
	arc.LoadAbs = s.LoadSlope * float64(fanout) * l.LoadSigma
	return arc, nil
}
