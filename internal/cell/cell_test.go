package cell

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestSynthetic90nmCoversAllGateTypes(t *testing.T) {
	lib := Synthetic90nm()
	types := []circuit.GateType{circuit.Buf, circuit.Not, circuit.And, circuit.Nand,
		circuit.Or, circuit.Nor, circuit.Xor, circuit.Xnor}
	for _, gt := range types {
		s, err := lib.Spec(gt)
		if err != nil {
			t.Errorf("%v: %v", gt, err)
			continue
		}
		if s.BaseDelay <= 0 || s.LoadSlope <= 0 {
			t.Errorf("%v: non-positive delays %+v", gt, s)
		}
		if len(s.Sens) != len(lib.Params) {
			t.Errorf("%v: %d sensitivities for %d params", gt, len(s.Sens), len(lib.Params))
		}
	}
	if _, err := lib.Spec(circuit.Input); err == nil {
		t.Error("Input gate type should have no spec")
	}
}

func TestLibraryVariationSetup(t *testing.T) {
	lib := Synthetic90nm()
	if len(lib.Params) != 3 {
		t.Fatalf("params = %d, want 3", len(lib.Params))
	}
	if lib.LoadSigma != 0.15 {
		t.Fatalf("LoadSigma = %g, want 0.15 (paper Section VI)", lib.LoadSigma)
	}
	for _, p := range lib.Params {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestArcNominalComposition(t *testing.T) {
	lib := Synthetic90nm()
	s, _ := lib.Spec(circuit.Nand)
	a0, err := lib.Arc(circuit.Nand, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := s.BaseDelay + s.LoadSlope
	if math.Abs(a0.Nominal-want) > 1e-12 {
		t.Fatalf("pin0/fanout1 nominal = %g, want %g", a0.Nominal, want)
	}
	// Pin skew increases delay per pin.
	a1, _ := lib.Arc(circuit.Nand, 1, 1)
	if a1.Nominal <= a0.Nominal {
		t.Fatal("pin skew did not increase delay")
	}
	// Load slope increases delay per fanout.
	a4, _ := lib.Arc(circuit.Nand, 0, 4)
	if math.Abs(a4.Nominal-(s.BaseDelay+4*s.LoadSlope)) > 1e-12 {
		t.Fatalf("fanout4 nominal = %g", a4.Nominal)
	}
}

func TestArcSensitivitiesScaleWithNominal(t *testing.T) {
	lib := Synthetic90nm()
	small, _ := lib.Arc(circuit.Not, 0, 1)
	big, _ := lib.Arc(circuit.Not, 0, 8)
	for i := range small.Sens {
		rs := small.Sens[i] / small.Nominal
		rb := big.Sens[i] / big.Nominal
		if math.Abs(rs-rb) > 1e-12 {
			t.Fatalf("relative sensitivity changed with load: %g vs %g", rs, rb)
		}
	}
	if big.LoadAbs <= small.LoadAbs {
		t.Fatal("load variation should grow with fanout")
	}
}

func TestArcEdgeCases(t *testing.T) {
	lib := Synthetic90nm()
	if _, err := lib.Arc(circuit.Nand, -1, 1); err == nil {
		t.Fatal("negative pin accepted")
	}
	// Zero fanout (primary output) is billed as one load.
	a0, err := lib.Arc(circuit.Nand, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := lib.Arc(circuit.Nand, 0, 1)
	if a0.Nominal != a1.Nominal {
		t.Fatal("fanout 0 should equal fanout 1")
	}
	if _, err := lib.Arc(circuit.Input, 0, 1); err == nil {
		t.Fatal("arc for INPUT accepted")
	}
}
