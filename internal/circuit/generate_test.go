package circuit

import (
	"fmt"
	"strings"
	"testing"
)

func TestGenerateMatchesAllSpecs(t *testing.T) {
	for _, spec := range ISCAS85Specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c, err := Generate(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			s, err := c.Stat()
			if err != nil {
				t.Fatal(err)
			}
			if s.PIs != spec.PIs {
				t.Errorf("PIs = %d, want %d", s.PIs, spec.PIs)
			}
			if s.POs != spec.POs {
				t.Errorf("POs = %d, want %d", s.POs, spec.POs)
			}
			if s.Gates != spec.Gates {
				t.Errorf("Gates = %d, want %d", s.Gates, spec.Gates)
			}
			if s.Edges != spec.Edges {
				t.Errorf("Edges (Eo) = %d, want %d", s.Edges, spec.Edges)
			}
			if s.Nodes != spec.Gates+spec.PIs {
				t.Errorf("Nodes (Vo) = %d, want %d", s.Nodes, spec.Gates+spec.PIs)
			}
			if s.Depth != spec.Depth {
				t.Errorf("Depth = %d, want %d", s.Depth, spec.Depth)
			}
			if err := c.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := SpecByName("c432")
	a, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("sizes differ")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type || len(a.Gates[i].Fanin) != len(b.Gates[i].Fanin) {
			t.Fatalf("gate %d differs between identical seeds", i)
		}
		for j := range a.Gates[i].Fanin {
			if a.Gates[i].Fanin[j] != b.Gates[i].Fanin[j] {
				t.Fatalf("gate %d fanin differs between identical seeds", i)
			}
		}
	}
	c, err := Generate(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Gates {
		if a.Gates[i].Type != c.Gates[i].Type {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: different seeds produced identical gate types (possible but unlikely)")
	}
}

func TestGenerateDifferentSeedsAllValid(t *testing.T) {
	spec, _ := SpecByName("c880")
	for seed := int64(0); seed < 5; seed++ {
		c, err := Generate(spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, _ := c.Stat()
		if s.Edges != spec.Edges || s.Depth != spec.Depth {
			t.Fatalf("seed %d: Edges=%d Depth=%d", seed, s.Edges, s.Depth)
		}
	}
}

func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName("c6288"); !ok {
		t.Fatal("c6288 missing")
	}
	if _, ok := SpecByName("c9999"); ok {
		t.Fatal("bogus name found")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []TopoSpec{
		{Name: "no-pi", PIs: 0, POs: 1, Gates: 5, Edges: 10, Depth: 2},
		{Name: "deep", PIs: 2, POs: 1, Gates: 3, Edges: 6, Depth: 5},
		{Name: "few-edges", PIs: 2, POs: 1, Gates: 5, Edges: 4, Depth: 2},
		{Name: "many-edges", PIs: 2, POs: 1, Gates: 2, Edges: 100, Depth: 2},
		{Name: "many-pos", PIs: 2, POs: 10, Gates: 5, Edges: 10, Depth: 2},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", s.Name)
		}
	}
	if err := (TopoSpec{Name: "ok", PIs: 2, POs: 2, Gates: 6, Edges: 12, Depth: 3}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestGenerateTinySpec(t *testing.T) {
	spec := TopoSpec{Name: "tiny", PIs: 3, POs: 2, Gates: 6, Edges: 12, Depth: 3}
	c, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := c.Stat()
	if s.Gates != 6 || s.Edges != 12 || s.Depth != 3 || s.POs != 2 {
		t.Fatalf("tiny stats: %+v", s)
	}
}

func TestGenerateBenchRoundtrip(t *testing.T) {
	spec, _ := SpecByName("c432")
	c, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.WriteBench(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBench(spec.Name, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	so, _ := c.Stat()
	sp, _ := parsed.Stat()
	if so != sp {
		t.Fatalf("roundtrip stats differ:\n%+v\n%+v", so, sp)
	}
}

// TestGeneratePortNamesDeterministic pins the spec-derived port-name
// contract: circuits generated from the same spec expose identical,
// seed-independent port name lists (I1..In inputs, O1..Om outputs in PO
// order), so module models extracted from different seeds can be swapped
// for one another in hierarchical designs.
func TestGeneratePortNamesDeterministic(t *testing.T) {
	for _, name := range []string{"c432", "c880", "c2670"} {
		spec, _ := SpecByName(name)
		portNames := func(seed int64) (ins, outs []string) {
			c, err := Generate(spec, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, pi := range c.PIs {
				ins = append(ins, c.Gates[pi].Name)
			}
			for _, po := range c.POs {
				outs = append(outs, c.Gates[po].Name)
			}
			return ins, outs
		}
		in1, out1 := portNames(1)
		in2, out2 := portNames(7)
		if len(out1) != spec.POs {
			t.Fatalf("%s: %d outputs, want %d", name, len(out1), spec.POs)
		}
		for k := range out1 {
			if want := fmt.Sprintf("O%d", k+1); out1[k] != want {
				t.Fatalf("%s: output %d named %q, want %q", name, k, out1[k], want)
			}
			if out1[k] != out2[k] {
				t.Fatalf("%s: output names differ across seeds: %q vs %q", name, out1[k], out2[k])
			}
		}
		for k := range in1 {
			if in1[k] != in2[k] {
				t.Fatalf("%s: input names differ across seeds: %q vs %q", name, in1[k], in2[k])
			}
		}
	}
}
