package circuit

import (
	"strings"
	"testing"
)

func buildSmall(t *testing.T) *Circuit {
	t.Helper()
	c := New("small")
	a, err := c.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c.AddInput("b")
	n1, err := c.AddGate("n1", Nand, a, b)
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := c.AddGate("n2", Not, n1)
	if err := c.MarkOutput(n2); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBasicConstruction(t *testing.T) {
	c := buildSmall(t)
	if c.NumNodes() != 4 || c.NumGates() != 2 || c.NumEdges() != 3 {
		t.Fatalf("counts: nodes=%d gates=%d edges=%d", c.NumNodes(), c.NumGates(), c.NumEdges())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	id, ok := c.NodeByName("n1")
	if !ok || c.Gates[id].Type != Nand {
		t.Fatal("NodeByName failed")
	}
}

func TestConstructionErrors(t *testing.T) {
	c := New("x")
	if _, err := c.AddInput(""); err == nil {
		t.Fatal("empty name accepted")
	}
	a, _ := c.AddInput("a")
	if _, err := c.AddInput("a"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := c.AddGate("g", Input, a); err == nil {
		t.Fatal("AddGate with Input type accepted")
	}
	if _, err := c.AddGate("g", And, a); err == nil {
		t.Fatal("1-input AND accepted")
	}
	if _, err := c.AddGate("g", Not, a, a); err == nil {
		t.Fatal("2-input NOT accepted")
	}
	if _, err := c.AddGate("g", And); err == nil {
		t.Fatal("0-input gate accepted")
	}
	if _, err := c.AddGate("g", And, a, 99); err == nil {
		t.Fatal("unknown fanin accepted")
	}
	if err := c.MarkOutput(50); err == nil {
		t.Fatal("MarkOutput of unknown node accepted")
	}
}

func TestValidateDangling(t *testing.T) {
	c := New("dangle")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	g, _ := c.AddGate("g", And, a, b)
	_, _ = c.AddGate("h", Not, g) // h dangles
	_ = c.MarkOutput(g)
	if err := c.Validate(); err == nil {
		t.Fatal("dangling gate not caught")
	}
}

func TestValidateNoIO(t *testing.T) {
	c := New("empty")
	if err := c.Validate(); err == nil {
		t.Fatal("no-PI circuit accepted")
	}
	_, _ = c.AddInput("a")
	if err := c.Validate(); err == nil {
		t.Fatal("no-PO circuit accepted")
	}
}

func TestLevelize(t *testing.T) {
	c := buildSmall(t)
	order, levels, err := c.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order len %d", len(order))
	}
	n1, _ := c.NodeByName("n1")
	n2, _ := c.NodeByName("n2")
	if levels[n1] != 1 || levels[n2] != 2 {
		t.Fatalf("levels: n1=%d n2=%d", levels[n1], levels[n2])
	}
	d, _ := c.Depth()
	if d != 2 {
		t.Fatalf("depth %d", d)
	}
	// Topological property: every fanin precedes its gate.
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for id, g := range c.Gates {
		for _, f := range g.Fanin {
			if pos[f] >= pos[id] {
				t.Fatalf("order violates topology: %d before %d", id, f)
			}
		}
	}
}

func TestSimulateC17(t *testing.T) {
	c := C17()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// c17: out22 = NAND(n10, n16), out23 = NAND(n16, n19)
	// with n10 = NAND(i1,i3), n11 = NAND(i3,i6), n16 = NAND(i2,n11),
	// n19 = NAND(n11,i7). Check against direct evaluation for all 32 input
	// combinations.
	for m := 0; m < 32; m++ {
		in := []bool{m&1 != 0, m&2 != 0, m&4 != 0, m&8 != 0, m&16 != 0}
		got, err := c.SimulateOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		i1, i2, i3, i6, i7 := in[0], in[1], in[2], in[3], in[4]
		n10 := !(i1 && i3)
		n11 := !(i3 && i6)
		n16 := !(i2 && n11)
		n19 := !(n11 && i7)
		want22 := !(n10 && n16)
		want23 := !(n16 && n19)
		if got[0] != want22 || got[1] != want23 {
			t.Fatalf("m=%d: got %v, want [%v %v]", m, got, want22, want23)
		}
	}
}

func TestSimulateGateTypes(t *testing.T) {
	c := New("alltypes")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	gAnd, _ := c.AddGate("and", And, a, b)
	gNand, _ := c.AddGate("nand", Nand, a, b)
	gOr, _ := c.AddGate("or", Or, a, b)
	gNor, _ := c.AddGate("nor", Nor, a, b)
	gXor, _ := c.AddGate("xor", Xor, a, b)
	gXnor, _ := c.AddGate("xnor", Xnor, a, b)
	gNot, _ := c.AddGate("not", Not, a)
	gBuf, _ := c.AddGate("buf", Buf, b)
	for _, id := range []int{gAnd, gNand, gOr, gNor, gXor, gXnor, gNot, gBuf} {
		_ = c.MarkOutput(id)
	}
	for m := 0; m < 4; m++ {
		av, bv := m&1 != 0, m&2 != 0
		got, err := c.SimulateOutputs([]bool{av, bv})
		if err != nil {
			t.Fatal(err)
		}
		want := []bool{av && bv, !(av && bv), av || bv, !(av || bv), av != bv, av == bv, !av, bv}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d output %d: got %v want %v", m, i, got[i], want[i])
			}
		}
	}
}

func TestSimulateInputCountMismatch(t *testing.T) {
	c := C17()
	if _, err := c.Simulate([]bool{true}); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

func TestStat(t *testing.T) {
	c := C17()
	s, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if s.PIs != 5 || s.POs != 2 || s.Gates != 6 || s.Nodes != 11 || s.Edges != 12 || s.Depth != 3 {
		t.Fatalf("c17 stats: %+v", s)
	}
	if s.MaxFan != 2 || s.AvgFan != 2 {
		t.Fatalf("fan stats: %+v", s)
	}
}

func TestMarkOutputIdempotent(t *testing.T) {
	c := buildSmall(t)
	n2, _ := c.NodeByName("n2")
	if err := c.MarkOutput(n2); err != nil {
		t.Fatal(err)
	}
	if len(c.POs) != 1 {
		t.Fatalf("duplicate MarkOutput added PO: %v", c.POs)
	}
}

func TestBenchRoundtrip(t *testing.T) {
	orig := C17()
	var sb strings.Builder
	if err := orig.WriteBench(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBench("c17", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	so, _ := orig.Stat()
	sp, _ := parsed.Stat()
	sp.Name = so.Name
	if so != sp {
		t.Fatalf("roundtrip stats differ: %+v vs %+v", so, sp)
	}
	// Functional equivalence on all input patterns.
	for m := 0; m < 32; m++ {
		in := []bool{m&1 != 0, m&2 != 0, m&4 != 0, m&8 != 0, m&16 != 0}
		a, _ := orig.SimulateOutputs(in)
		b, err := parsed.SimulateOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("m=%d: outputs differ", m)
			}
		}
	}
}

func TestParseBenchForwardReference(t *testing.T) {
	src := `
# forward reference: g2 defined before its fanin g1
INPUT(a)
INPUT(b)
OUTPUT(g2)
g2 = NOT(g1)
g1 = AND(a, b)
`
	c, err := ParseBench("fwd", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 {
		t.Fatalf("gates = %d", c.NumGates())
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"dff arity", "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n"},
		{"dff undefined d", "INPUT(a)\nOUTPUT(q)\nq = DFF(m)\n"},
		{"garbage", "INPUT(a)\nOUTPUT(a)\nnot a line\n"},
		{"unknown gate", "INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = FROB(a, b)\n"},
		{"undefined output", "INPUT(a)\nINPUT(b)\nOUTPUT(zz)\ng = AND(a, b)\n"},
		{"undefined fanin", "INPUT(a)\nOUTPUT(g)\ng = NOT(qq)\n"},
		{"malformed directive", "INPUT a\nOUTPUT(a)\n"},
		{"empty arg", "INPUT()\n"},
	}
	for _, tc := range cases {
		if _, err := ParseBench(tc.name, strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestGateTypeString(t *testing.T) {
	if Nand.String() != "NAND" || Input.String() != "INPUT" {
		t.Fatal("GateType.String wrong")
	}
	if GateType(200).String() == "" {
		t.Fatal("out-of-range GateType.String empty")
	}
}
