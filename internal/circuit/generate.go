package circuit

import (
	"fmt"
	"math/rand"
)

// TopoSpec describes the structural footprint of a benchmark circuit: the
// counts that determine its timing graph (vertices Vo = Gates + PIs, edges
// Eo = total fanin connections) plus the logic depth.
type TopoSpec struct {
	Name  string
	PIs   int
	POs   int
	Gates int
	Edges int // total fanin connections (= timing-graph edge count Eo)
	Depth int
}

// ISCAS85Specs holds the structural footprints of the ten ISCAS85
// benchmarks used in the paper's Table I. Gate/PI/PO counts and depths
// follow Hansen, Yalcin & Hayes ("Unveiling the ISCAS-85 benchmarks") and
// the paper's Eo/Vo columns: Vo = Gates + PIs and Eo = fanin connections.
var ISCAS85Specs = []TopoSpec{
	{Name: "c432", PIs: 36, POs: 7, Gates: 160, Edges: 336, Depth: 17},
	{Name: "c499", PIs: 41, POs: 32, Gates: 202, Edges: 408, Depth: 11},
	{Name: "c880", PIs: 60, POs: 26, Gates: 383, Edges: 729, Depth: 24},
	{Name: "c1355", PIs: 41, POs: 32, Gates: 546, Edges: 1064, Depth: 24},
	{Name: "c1908", PIs: 33, POs: 25, Gates: 880, Edges: 1498, Depth: 40},
	{Name: "c2670", PIs: 233, POs: 140, Gates: 1193, Edges: 2076, Depth: 32},
	{Name: "c3540", PIs: 50, POs: 22, Gates: 1669, Edges: 2939, Depth: 47},
	{Name: "c5315", PIs: 178, POs: 123, Gates: 2307, Edges: 4386, Depth: 49},
	{Name: "c6288", PIs: 32, POs: 32, Gates: 2416, Edges: 4800, Depth: 124},
	{Name: "c7552", PIs: 207, POs: 108, Gates: 3512, Edges: 6144, Depth: 43},
}

// SpecByName looks up an ISCAS85 spec by benchmark name.
func SpecByName(name string) (TopoSpec, bool) {
	for _, s := range ISCAS85Specs {
		if s.Name == name {
			return s, true
		}
	}
	return TopoSpec{}, false
}

// maxFanin caps generated gate fanin; the ISCAS85 set has gates up to 9
// inputs.
const maxFanin = 9

// Validate checks that the spec is realizable by the generator.
func (s TopoSpec) Validate() error {
	switch {
	case s.PIs < 1 || s.POs < 1 || s.Gates < 1:
		return fmt.Errorf("circuit: spec %q needs positive PI/PO/gate counts", s.Name)
	case s.Depth < 1 || s.Depth > s.Gates:
		return fmt.Errorf("circuit: spec %q depth %d out of range [1, %d]", s.Name, s.Depth, s.Gates)
	case s.Edges < s.Gates:
		return fmt.Errorf("circuit: spec %q has fewer edges (%d) than gates (%d); min fanin is 1", s.Name, s.Edges, s.Gates)
	case s.Edges > s.Gates*maxFanin:
		return fmt.Errorf("circuit: spec %q has too many edges (%d) for max fanin %d", s.Name, s.Edges, maxFanin)
	case s.POs > s.Gates:
		return fmt.Errorf("circuit: spec %q has more outputs (%d) than gates", s.Name, s.POs)
	}
	return nil
}

// Generate builds a deterministic pseudo-random combinational circuit whose
// structural footprint matches the spec exactly: PI/PO counts, gate count,
// total fanin-connection count (Eo), and logic depth. It is used as a
// topology-matched stand-in for the ISCAS85 netlists, which are not
// redistributed with this repository (see DESIGN.md, substitutions).
//
// The construction is leveled, so the result is acyclic by construction:
// every gate takes its first fanin from the previous level (fixing its
// level) and remaining fanins from any lower level, preferring nodes that do
// not yet drive anything so that no gate is left dangling.
func Generate(spec TopoSpec, seed int64) (*Circuit, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	d := spec.Depth

	// --- Level sizes: distribute gates evenly over levels 1..d, keeping the
	// last level no larger than the PO count (its gates all become POs).
	size := make([]int, d+1)
	base, rem := spec.Gates/d, spec.Gates%d
	for l := 1; l <= d; l++ {
		size[l] = base
		if l <= rem {
			size[l]++
		}
	}
	if size[d] > spec.POs {
		over := size[d] - spec.POs
		size[d] = spec.POs
		for l := 1; over > 0; l = l%(d-1) + 1 {
			size[l]++
			over--
			if d == 1 {
				return nil, fmt.Errorf("circuit: spec %q cannot satisfy PO bound at depth 1", spec.Name)
			}
		}
	}

	// --- Node table. Ids: PIs first, then gates level by level.
	n := spec.PIs + spec.Gates
	level := make([]int, n)
	levelNodes := make([][]int, d+1)
	for i := 0; i < spec.PIs; i++ {
		levelNodes[0] = append(levelNodes[0], i)
	}
	id := spec.PIs
	for l := 1; l <= d; l++ {
		for k := 0; k < size[l]; k++ {
			level[id] = l
			levelNodes[l] = append(levelNodes[l], id)
			id++
		}
	}
	// Prefix counts of nodes strictly below each level, for random picks.
	below := make([][]int, d+1) // below[l] = all node ids with level < l
	acc := []int{}
	for l := 0; l <= d; l++ {
		below[l] = append([]int(nil), acc...)
		acc = append(acc, levelNodes[l]...)
	}

	// --- Fanin counts: everyone starts at 1; distribute the surplus.
	fanins := make([][]int, n)
	want := make([]int, n)
	capOf := make([]int, n)
	gateIDs := make([]int, 0, spec.Gates)
	capTotal := 0
	for i := spec.PIs; i < n; i++ {
		want[i] = 1
		c := maxFanin
		if avail := len(below[level[i]]); avail < c {
			c = avail
		}
		capOf[i] = c
		capTotal += c
		gateIDs = append(gateIDs, i)
	}
	if spec.Edges > capTotal {
		return nil, fmt.Errorf("circuit: spec %q infeasible: %d edges exceed the %d fanin slots reachable at depth %d with %d inputs",
			spec.Name, spec.Edges, capTotal, spec.Depth, spec.PIs)
	}
	surplus := spec.Edges - spec.Gates
	for attempts := 0; surplus > 0 && attempts < 20*len(gateIDs); attempts++ {
		g := gateIDs[rng.Intn(len(gateIDs))]
		if want[g] >= capOf[g] {
			continue
		}
		want[g]++
		surplus--
	}
	// Rejection sampling stalls when few gates have room; finish
	// deterministically (capacity is guaranteed above).
	for _, g := range gateIDs {
		for surplus > 0 && want[g] < capOf[g] {
			want[g]++
			surplus--
		}
	}

	// --- Wiring. unused[l] holds nodes at level l that do not yet drive
	// anything; they are consumed preferentially.
	fanoutCnt := make([]int, n)
	unused := make([][]int, d+1)
	for l := 0; l <= d; l++ {
		unused[l] = append([]int(nil), levelNodes[l]...)
	}
	popUnused := func(l int, exclude []int) (int, bool) {
		pool := unused[l]
		for tries := 0; tries < len(pool); tries++ {
			i := rng.Intn(len(pool))
			v := pool[i]
			if containsInt(exclude, v) {
				continue
			}
			pool[i] = pool[len(pool)-1]
			unused[l] = pool[:len(pool)-1]
			return v, true
		}
		return 0, false
	}
	popUnusedBelow := func(l int, exclude []int) (int, bool) {
		// Pick a random non-empty unused pool below l, weighted by size.
		total := 0
		for ll := 0; ll < l; ll++ {
			total += len(unused[ll])
		}
		if total == 0 {
			return 0, false
		}
		k := rng.Intn(total)
		for ll := 0; ll < l; ll++ {
			if k < len(unused[ll]) {
				if v, ok := popUnused(ll, exclude); ok {
					return v, true
				}
				// This pool only held excluded nodes; fall through to others.
				k = 0
				continue
			}
			k -= len(unused[ll])
		}
		// Retry any pool linearly.
		for ll := l - 1; ll >= 0; ll-- {
			if v, ok := popUnused(ll, exclude); ok {
				return v, true
			}
		}
		return 0, false
	}
	randomBelow := func(l int, exclude []int) (int, bool) {
		cands := below[l]
		for tries := 0; tries < 4*len(cands); tries++ {
			v := cands[rng.Intn(len(cands))]
			if !containsInt(exclude, v) {
				return v, true
			}
		}
		for _, v := range cands {
			if !containsInt(exclude, v) {
				return v, true
			}
		}
		return 0, false
	}

	for l := 1; l <= d; l++ {
		for _, g := range levelNodes[l] {
			fan := make([]int, 0, want[g])
			// First fanin from level l-1 pins the gate's logic level.
			src, ok := popUnused(l-1, fan)
			if !ok {
				prev := levelNodes[l-1]
				src = prev[rng.Intn(len(prev))]
			}
			fan = append(fan, src)
			fanoutCnt[src]++
			for len(fan) < want[g] {
				v, ok := popUnusedBelow(l, fan)
				if !ok {
					v, ok = randomBelow(l, fan)
					if !ok {
						return nil, fmt.Errorf("circuit: spec %q: no distinct fanin available for gate %d", spec.Name, g)
					}
				}
				fan = append(fan, v)
				fanoutCnt[v]++
			}
			fanins[g] = fan
		}
	}

	// --- Repair pass: nodes below the last level that still drive nothing
	// are swapped into an existing fanin slot whose current source has other
	// fanout. Slot 0 (the level-pinning edge) is only used when the node
	// sits exactly one level below the gate.
	var dangling []int
	for l := 0; l < d; l++ {
		dangling = append(dangling, unused[l]...)
	}
	for _, u := range dangling {
		if fanoutCnt[u] > 0 {
			continue
		}
		if !swapIn(u, level, fanins, fanoutCnt, gateIDs, rng) {
			return nil, fmt.Errorf("circuit: spec %q: cannot connect dangling node %d (level %d)", spec.Name, u, level[u])
		}
	}

	// --- Outputs: every last-level gate plus random high-level gates.
	poSet := make(map[int]bool, spec.POs)
	var pos []int
	for _, g := range levelNodes[d] {
		poSet[g] = true
		pos = append(pos, g)
	}
	// Prefer late-level gates for the remaining POs, matching real netlists.
	for l := d - 1; l >= 1 && len(pos) < spec.POs; l-- {
		perm := rng.Perm(len(levelNodes[l]))
		for _, k := range perm {
			if len(pos) >= spec.POs {
				break
			}
			g := levelNodes[l][k]
			if !poSet[g] {
				poSet[g] = true
				pos = append(pos, g)
			}
		}
	}
	if len(pos) != spec.POs {
		return nil, fmt.Errorf("circuit: spec %q: could only place %d of %d outputs", spec.Name, len(pos), spec.POs)
	}

	// --- Materialize the Circuit. Port names are spec-derived, not
	// seed-derived: inputs are I1..I<PIs> and the gates chosen as outputs are
	// named O1..O<POs> (in pos order) instead of keeping their N<id> names.
	// Two circuits generated from the same spec therefore expose identical
	// port-name sets regardless of seed, so module models extracted from
	// different seeds can be swapped for one another in a hierarchical
	// design (ports are matched by name when stitching).
	poName := make(map[int]string, len(pos))
	for k, p := range pos {
		poName[p] = fmt.Sprintf("O%d", k+1)
	}
	c := New(spec.Name)
	for i := 0; i < spec.PIs; i++ {
		if _, err := c.AddInput(fmt.Sprintf("I%d", i+1)); err != nil {
			return nil, err
		}
	}
	for _, g := range gateIDs {
		t := pickGateType(rng, len(fanins[g]))
		name, isPO := poName[g]
		if !isPO {
			name = fmt.Sprintf("N%d", g)
		}
		if _, err := c.AddGate(name, t, fanins[g]...); err != nil {
			return nil, err
		}
	}
	for _, p := range pos {
		if err := c.MarkOutput(p); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: generated netlist invalid: %w", err)
	}
	return c, nil
}

// swapIn connects dangling source u by redirecting an existing fanin
// connection to it (keeping the total edge count unchanged), or — when no
// single gate offers a legal slot — by removing a redundant edge at one
// gate and adding an edge to u at another. A removal is legal only if the
// source keeps other fanout and the gate keeps a fanin at level-1 (its
// logic level must not drop, or downstream levels would cascade).
func swapIn(u int, level []int, fanins [][]int, fanoutCnt []int, gateIDs []int, rng *rand.Rand) bool {
	slotRemovable := func(g, slot int) bool {
		fan := fanins[g]
		src := fan[slot]
		if fanoutCnt[src] < 2 {
			return false
		}
		if level[src] != level[g]-1 {
			return true // not a level pinner
		}
		for s2, other := range fan {
			if s2 != slot && level[other] == level[g]-1 {
				return true // another pinner remains
			}
		}
		return false
	}

	// Same-gate swap: replace a removable slot with u directly. Replacing
	// the unique pinner is also fine when u itself sits at level-1.
	start := rng.Intn(len(gateIDs))
	for k := 0; k < len(gateIDs); k++ {
		g := gateIDs[(start+k)%len(gateIDs)]
		if level[g] <= level[u] {
			continue
		}
		fan := fanins[g]
		if containsInt(fan, u) {
			continue
		}
		for slot, src := range fan {
			if fanoutCnt[src] < 2 {
				continue
			}
			if !slotRemovable(g, slot) && level[u] != level[g]-1 {
				continue
			}
			fanoutCnt[src]--
			fan[slot] = u
			fanoutCnt[u]++
			return true
		}
	}

	// Two-site fallback: append u to some gate above it, and drop a
	// removable edge elsewhere to keep the edge count exact.
	addAt := -1
	for k := 0; k < len(gateIDs); k++ {
		g := gateIDs[(start+k)%len(gateIDs)]
		if level[g] > level[u] && len(fanins[g]) < maxFanin && !containsInt(fanins[g], u) {
			addAt = g
			break
		}
	}
	if addAt < 0 {
		return false
	}
	for k := 0; k < len(gateIDs); k++ {
		g := gateIDs[(start+k)%len(gateIDs)]
		if g == addAt || len(fanins[g]) <= 1 {
			continue
		}
		for slot := range fanins[g] {
			if !slotRemovable(g, slot) {
				continue
			}
			src := fanins[g][slot]
			fanoutCnt[src]--
			fanins[g] = append(fanins[g][:slot], fanins[g][slot+1:]...)
			fanins[addAt] = append(fanins[addAt], u)
			fanoutCnt[u]++
			return true
		}
	}
	return false
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// pickGateType chooses a plausible ISCAS85-style gate type for the fanin
// count.
func pickGateType(rng *rand.Rand, fanin int) GateType {
	if fanin == 1 {
		if rng.Float64() < 0.7 {
			return Not
		}
		return Buf
	}
	r := rng.Float64()
	switch {
	case fanin == 2 && r < 0.10:
		return Xor
	case fanin == 2 && r < 0.15:
		return Xnor
	case r < 0.45:
		return Nand
	case r < 0.65:
		return Nor
	case r < 0.85:
		return And
	default:
		return Or
	}
}
