// Package circuit provides the gate-level netlist substrate: a gate-level
// circuit IR with D-flip-flop registers, an ISCAS85/89 .bench parser and
// writer, a logic simulator, a deterministic generator of topology-matched
// ISCAS85-like benchmarks (used because the original netlists are not
// distributed with this repository) with a clocked (registered) variant,
// and a structural array-multiplier generator (c6288 is a 16x16 multiplier).
package circuit

import (
	"errors"
	"fmt"
)

// GateType enumerates the supported primitives. Input is a primary input
// pseudo-gate with no fanin; Dff is a D-flip-flop register whose single
// fanin is its D pin and whose node value is its Q output.
type GateType uint8

// Gate types. Input denotes a primary input.
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Dff
	numGateTypes
)

var gateTypeNames = [...]string{
	Input: "INPUT", Buf: "BUFF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR", Dff: "DFF",
}

// String returns the .bench spelling of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// Gate is one node of the netlist. Fanin holds node indices of the gate
// inputs in pin order.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int
}

// Circuit is a gate-level netlist, combinational or sequential. Node
// indices are positions in Gates; primary inputs are Gates entries with
// Type == Input, registers are entries with Type == Dff. A Dff node is a
// D/Q boundary point: its Fanin[0] is the D-pin source, and the node value
// seen by its fanout is the Q output — for timing, Q launches from the
// clock, not from D, which is what keeps register feedback loops acyclic.
type Circuit struct {
	Name  string
	Gates []Gate
	PIs   []int // node ids of primary inputs
	POs   []int // node ids of observed outputs (regular gates)
	Regs  []int // node ids of DFF registers, in insertion order

	byName map[string]int
	fanout [][]int // lazily built
	order  []int   // lazily built topological order
	levels []int   // lazily built level per node
}

// New creates an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// AddInput appends a primary input node and returns its id.
func (c *Circuit) AddInput(name string) (int, error) {
	return c.addNode(Gate{Name: name, Type: Input})
}

// AddGate appends a logic gate and returns its id. Fanin ids must already
// exist.
func (c *Circuit) AddGate(name string, t GateType, fanin ...int) (int, error) {
	if t == Input {
		return 0, fmt.Errorf("circuit: use AddInput for primary inputs (%q)", name)
	}
	if t == Dff {
		return 0, fmt.Errorf("circuit: use AddDFF for registers (%q)", name)
	}
	if len(fanin) == 0 {
		return 0, fmt.Errorf("circuit: gate %q has no fanin", name)
	}
	for _, f := range fanin {
		if f < 0 || f >= len(c.Gates) {
			return 0, fmt.Errorf("circuit: gate %q references unknown node %d", name, f)
		}
	}
	switch t {
	case Buf, Not:
		if len(fanin) != 1 {
			return 0, fmt.Errorf("circuit: %s gate %q needs exactly 1 input, got %d", t, name, len(fanin))
		}
	default:
		if len(fanin) < 2 {
			return 0, fmt.Errorf("circuit: %s gate %q needs at least 2 inputs, got %d", t, name, len(fanin))
		}
	}
	fan := make([]int, len(fanin))
	copy(fan, fanin)
	return c.addNode(Gate{Name: name, Type: t, Fanin: fan})
}

// AddDFF appends a D-flip-flop register node and returns its id. The single
// fanin d is the D-pin source; the node itself represents the Q output. The
// .bench parser patches d after the fact for forward references through
// register feedback (see ParseBench), so AddDFF also accepts d == -1 as an
// explicit "resolve later" placeholder that must be patched before use.
func (c *Circuit) AddDFF(name string, d int) (int, error) {
	if d != -1 && (d < 0 || d >= len(c.Gates)) {
		return 0, fmt.Errorf("circuit: register %q references unknown node %d", name, d)
	}
	return c.addNode(Gate{Name: name, Type: Dff, Fanin: []int{d}})
}

func (c *Circuit) addNode(g Gate) (int, error) {
	if g.Name == "" {
		return 0, errors.New("circuit: empty node name")
	}
	if _, dup := c.byName[g.Name]; dup {
		return 0, fmt.Errorf("circuit: duplicate node name %q", g.Name)
	}
	id := len(c.Gates)
	c.Gates = append(c.Gates, g)
	c.byName[g.Name] = id
	if g.Type == Input {
		c.PIs = append(c.PIs, id)
	}
	if g.Type == Dff {
		c.Regs = append(c.Regs, id)
	}
	c.invalidate()
	return id, nil
}

// MarkOutput declares node id a primary output.
func (c *Circuit) MarkOutput(id int) error {
	if id < 0 || id >= len(c.Gates) {
		return fmt.Errorf("circuit: MarkOutput of unknown node %d", id)
	}
	for _, o := range c.POs {
		if o == id {
			return nil
		}
	}
	c.POs = append(c.POs, id)
	return nil
}

// NodeByName returns the id of a named node.
func (c *Circuit) NodeByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

func (c *Circuit) invalidate() {
	c.fanout = nil
	c.order = nil
	c.levels = nil
}

// NumNodes returns the node count (gates + primary inputs). This is the
// vertex count Vo of the paper's timing graph.
func (c *Circuit) NumNodes() int { return len(c.Gates) }

// NumGates returns the count of logic gates (excluding primary inputs;
// registers count as gates — they are placed cells with timing arcs).
func (c *Circuit) NumGates() int { return len(c.Gates) - len(c.PIs) }

// NumRegs returns the register (DFF) count.
func (c *Circuit) NumRegs() int { return len(c.Regs) }

// Sequential reports whether the circuit contains registers.
func (c *Circuit) Sequential() bool { return len(c.Regs) > 0 }

// NumEdges returns the total fanin connection count, the edge count Eo of
// the paper's timing graph.
func (c *Circuit) NumEdges() int {
	n := 0
	for _, g := range c.Gates {
		n += len(g.Fanin)
	}
	return n
}

// Fanout returns, for each node, the ids of gates it drives. The result is
// cached; callers must not mutate it. Unpatched register placeholders
// (fanin -1, a mid-parse state) are skipped.
func (c *Circuit) Fanout() [][]int {
	if c.fanout == nil {
		c.fanout = make([][]int, len(c.Gates))
		for id, g := range c.Gates {
			for _, f := range g.Fanin {
				if f < 0 {
					continue
				}
				c.fanout[f] = append(c.fanout[f], id)
			}
		}
	}
	return c.fanout
}

// Levelize returns a topological order of all nodes and the logic level of
// each node (PIs at level 0, a gate one above its deepest fanin). Register
// (DFF) nodes sit at level 0 like primary inputs: their Q output launches
// from the clock, so the D-pin edge into a register does not constrain its
// level — which is exactly what keeps legitimate register feedback loops
// (Q combinationally feeding its own D) out of the cycle check, while pure
// combinational cycles still error.
func (c *Circuit) Levelize() (order []int, levels []int, err error) {
	if c.order != nil {
		return c.order, c.levels, nil
	}
	n := len(c.Gates)
	// Duplicate fanins each count once: indegree is the fanin length.
	// Registers take indegree 0 — the D edge is a capture, not a dependency.
	indeg := make([]int, n)
	for id, g := range c.Gates {
		if g.Type == Dff {
			continue
		}
		indeg[id] = len(g.Fanin)
	}
	fanout := c.Fanout()
	queue := make([]int, 0, n)
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	order = make([]int, 0, n)
	levels = make([]int, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, to := range fanout[id] {
			if c.Gates[to].Type == Dff {
				continue // capture edge: no ordering constraint on Q
			}
			if l := levels[id] + 1; l > levels[to] {
				levels[to] = l
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != n {
		return nil, nil, errors.New("circuit: netlist contains a combinational cycle")
	}
	c.order, c.levels = order, levels
	return order, levels, nil
}

// Depth returns the maximum logic level.
func (c *Circuit) Depth() (int, error) {
	_, levels, err := c.Levelize()
	if err != nil {
		return 0, err
	}
	d := 0
	for _, l := range levels {
		if l > d {
			d = l
		}
	}
	return d, nil
}

// Validate performs structural checks: acyclicity, every non-output node
// drives something, every PI is used, outputs exist.
func (c *Circuit) Validate() error {
	if len(c.PIs) == 0 {
		return errors.New("circuit: no primary inputs")
	}
	if len(c.POs) == 0 {
		return errors.New("circuit: no primary outputs")
	}
	for _, r := range c.Regs {
		if d := c.Gates[r].Fanin[0]; d < 0 || d >= len(c.Gates) {
			return fmt.Errorf("circuit: register %q (id %d) has unresolved D pin", c.Gates[r].Name, r)
		}
	}
	if _, _, err := c.Levelize(); err != nil {
		return err
	}
	isPO := make(map[int]bool, len(c.POs))
	for _, o := range c.POs {
		isPO[o] = true
	}
	fanout := c.Fanout()
	for id, g := range c.Gates {
		if len(fanout[id]) == 0 && !isPO[id] {
			return fmt.Errorf("circuit: node %q (id %d) is dangling (no fanout, not an output)", g.Name, id)
		}
	}
	return nil
}

// Simulate evaluates the circuit for the given primary input values (in
// c.PIs order) and returns the values of all nodes.
func (c *Circuit) Simulate(inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.PIs) {
		return nil, fmt.Errorf("circuit: Simulate got %d inputs, want %d", len(inputs), len(c.PIs))
	}
	order, _, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	vals := make([]bool, len(c.Gates))
	for i, pi := range c.PIs {
		vals[pi] = inputs[i]
	}
	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == Input {
			continue
		}
		if g.Type == Dff {
			// Single-vector simulation evaluates the reset state: every
			// register's Q output reads as false.
			vals[id] = false
			continue
		}
		vals[id] = evalGate(g.Type, g.Fanin, vals)
	}
	return vals, nil
}

// SimulateOutputs evaluates the circuit and returns the PO values in c.POs
// order.
func (c *Circuit) SimulateOutputs(inputs []bool) ([]bool, error) {
	vals, err := c.Simulate(inputs)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(c.POs))
	for i, po := range c.POs {
		out[i] = vals[po]
	}
	return out, nil
}

func evalGate(t GateType, fanin []int, vals []bool) bool {
	switch t {
	case Buf:
		return vals[fanin[0]]
	case Not:
		return !vals[fanin[0]]
	case And, Nand:
		v := true
		for _, f := range fanin {
			v = v && vals[f]
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, f := range fanin {
			v = v || vals[f]
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, f := range fanin {
			v = v != vals[f]
		}
		if t == Xnor {
			return !v
		}
		return v
	default:
		panic(fmt.Sprintf("circuit: evalGate on %v", t))
	}
}

// Stats is a structural summary of a circuit.
type Stats struct {
	Name   string
	PIs    int
	POs    int
	Gates  int
	Regs   int // DFF registers (also counted in Gates)
	Nodes  int // Vo: gates + PIs
	Edges  int // Eo: fanin connections
	Depth  int
	MaxFan int // largest fanin
	AvgFan float64
}

// Stat computes the structural summary.
func (c *Circuit) Stat() (Stats, error) {
	d, err := c.Depth()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Name:  c.Name,
		PIs:   len(c.PIs),
		POs:   len(c.POs),
		Gates: c.NumGates(),
		Regs:  c.NumRegs(),
		Nodes: c.NumNodes(),
		Edges: c.NumEdges(),
		Depth: d,
	}
	for _, g := range c.Gates {
		if len(g.Fanin) > s.MaxFan {
			s.MaxFan = len(g.Fanin)
		}
	}
	if s.Gates > 0 {
		s.AvgFan = float64(s.Edges) / float64(s.Gates)
	}
	return s, nil
}
