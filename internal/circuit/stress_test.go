package circuit

import "testing"

func TestGenerateStressAllSpecsManySeeds(t *testing.T) {
	for _, spec := range ISCAS85Specs {
		for seed := int64(0); seed < 10; seed++ {
			c, err := Generate(spec, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec.Name, seed, err)
			}
			s, _ := c.Stat()
			if s.Edges != spec.Edges || s.Depth != spec.Depth || s.POs != spec.POs {
				t.Fatalf("%s seed %d: stats %+v", spec.Name, seed, s)
			}
		}
	}
}
