package circuit

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBenchWhitespaceAndCase(t *testing.T) {
	src := `
# odd formatting
  INPUT( a )
INPUT(b)

OUTPUT(  y  )
y = nand( a ,   b )
`
	c, err := ParseBench("ws", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	id, ok := c.NodeByName("y")
	if !ok || c.Gates[id].Type != Nand {
		t.Fatal("lower-case gate function not accepted")
	}
	if _, ok := c.NodeByName("a"); !ok {
		t.Fatal("padded INPUT argument not trimmed")
	}
}

func TestParseBenchInvAlias(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\ny = INV(a)\n"
	c, err := ParseBench("inv", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := c.NodeByName("y")
	if c.Gates[id].Type != Not {
		t.Fatal("INV should map to NOT")
	}
}

func TestParseBenchDuplicateFanin(t *testing.T) {
	// AND(a, a) is legal in .bench; the parallel-merge machinery handles
	// the duplicate timing edges later.
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, a)\nz = BUF(b)\nOUTPUT(z)\n"
	c, err := ParseBench("dup", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", c.NumEdges())
	}
	out, err := c.SimulateOutputs([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != true || out[1] != false {
		t.Fatalf("AND(a,a) simulation wrong: %v", out)
	}
}

func TestGenerateFanInBounds(t *testing.T) {
	spec, _ := SpecByName("c3540")
	c, err := Generate(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates {
		if len(g.Fanin) > maxFanin {
			t.Fatalf("gate %q fanin %d exceeds cap %d", g.Name, len(g.Fanin), maxFanin)
		}
		// No duplicate fanins from the generator.
		seen := map[int]bool{}
		for _, f := range g.Fanin {
			if seen[f] {
				t.Fatalf("gate %q has duplicate fanin %d", g.Name, f)
			}
			seen[f] = true
		}
	}
}

func TestGenerateAllSinksAreOutputs(t *testing.T) {
	spec, _ := SpecByName("c1355")
	c, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	isPO := map[int]bool{}
	for _, o := range c.POs {
		isPO[o] = true
	}
	fan := c.Fanout()
	for id := range c.Gates {
		if len(fan[id]) == 0 && !isPO[id] {
			t.Fatalf("node %d is a sink but not an output", id)
		}
	}
}

func TestGenerateQuickRandomSpecs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gates := 20 + rng.Intn(200)
		depth := 2 + rng.Intn(10)
		if depth > gates {
			depth = gates
		}
		edges := gates + rng.Intn(gates*2)
		pis := 2 + rng.Intn(20)
		pos := 1 + rng.Intn(10)
		if pos > gates {
			pos = gates
		}
		spec := TopoSpec{Name: "q", PIs: pis, POs: pos, Gates: gates, Edges: edges, Depth: depth}
		if spec.Validate() != nil {
			return true // infeasible spec: fine
		}
		c, err := Generate(spec, seed)
		if err != nil {
			// The generator may legitimately fail on extreme shapes; it
			// must not, however, return a malformed circuit.
			return true
		}
		s, err := c.Stat()
		if err != nil {
			return false
		}
		return s.Gates == gates && s.Edges == edges && s.Depth == depth &&
			s.PIs == pis && s.POs == pos && c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplier2x2Exhaustive(t *testing.T) {
	c, err := ArrayMultiplier(2)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 4; x++ {
		for y := uint64(0); y < 4; y++ {
			if got := simulateMult(t, c, 2, x, y); got != x*y {
				t.Fatalf("%d*%d = %d, got %d", x, y, x*y, got)
			}
		}
	}
}

func TestWriteBenchDeterministic(t *testing.T) {
	spec, _ := SpecByName("c432")
	c, err := Generate(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := c.WriteBench(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBench(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteBench output not deterministic")
	}
}

func TestSimulateXorParityWide(t *testing.T) {
	c := New("parity")
	var ins []int
	for i := 0; i < 5; i++ {
		id, _ := c.AddInput(string(rune('a' + i)))
		ins = append(ins, id)
	}
	x, err := c.AddGate("x", Xor, ins...)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.MarkOutput(x)
	for m := 0; m < 32; m++ {
		in := make([]bool, 5)
		parity := false
		for i := range in {
			in[i] = m&(1<<i) != 0
			parity = parity != in[i]
		}
		out, err := c.SimulateOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != parity {
			t.Fatalf("parity(%05b) = %v, want %v", m, out[0], parity)
		}
	}
}

func TestLevelizeCycleDetection(t *testing.T) {
	// Construct a cycle by editing fanin directly (the builder API cannot
	// create one).
	c := New("cyc")
	a, _ := c.AddInput("a")
	g1, _ := c.AddGate("g1", Not, a)
	g2, _ := c.AddGate("g2", Not, g1)
	_ = c.MarkOutput(g2)
	c.Gates[g1].Fanin[0] = g2 // g1 <- g2 <- g1
	c.invalidate()
	if _, _, err := c.Levelize(); err == nil {
		t.Fatal("cycle not detected")
	}
}
