package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in the ISCAS85/89 .bench format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(z)
//	n1 = NAND(a, b)
//	s1 = DFF(n1)
//
// Combinational primitives and DFF registers are both accepted. A DFF line
// declares a register whose Q output carries the left-hand name; its single
// argument is the D-pin source, which may be defined anywhere in the file —
// including combinationally downstream of the register's own Q (feedback).
// Callers that cannot handle registers should use ParseBenchCombinational.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return parseBench(name, r, true)
}

// ParseBenchCombinational reads a .bench netlist like ParseBench but rejects
// sequential elements: a DFF line yields a descriptive error instead of a
// register. This is the validated combinational-only mode for callers whose
// downstream analysis assumes a pure DAG of logic gates.
func ParseBenchCombinational(name string, r io.Reader) (*Circuit, error) {
	return parseBench(name, r, false)
}

func parseBench(name string, r io.Reader, allowSeq bool) (*Circuit, error) {
	c := New(name)
	type pendingGate struct {
		line   int
		name   string
		gate   string
		inputs []string
	}
	type pendingReg struct {
		line int
		id   int    // placeholder DFF node, Fanin[0] == -1 until patched
		d    string // D-pin source name, resolved after all gates exist
	}
	var pending []pendingGate
	var regs []pendingReg
	var outputs []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case matchDirective(line, "INPUT"):
			arg, err := directiveArg(line, "INPUT", lineNo)
			if err != nil {
				return nil, err
			}
			if _, err := c.AddInput(arg); err != nil {
				return nil, fmt.Errorf("bench line %d: %w", lineNo, err)
			}
		case matchDirective(line, "OUTPUT"):
			arg, err := directiveArg(line, "OUTPUT", lineNo)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: cannot parse %q", lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close_ := strings.LastIndex(rhs, ")")
			if open < 0 || close_ < open {
				return nil, fmt.Errorf("bench line %d: malformed gate expression %q", lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			args := strings.Split(rhs[open+1:close_], ",")
			for i := range args {
				args[i] = strings.TrimSpace(args[i])
			}
			if fn == "DFF" {
				if !allowSeq {
					return nil, fmt.Errorf("bench line %d: sequential element DFF not supported (combinational modules only)", lineNo)
				}
				if len(args) != 1 || args[0] == "" {
					return nil, fmt.Errorf("bench line %d: DFF %q needs exactly one D input", lineNo, lhs)
				}
				// Register the Q name immediately (with a placeholder D pin)
				// so combinational gates reading through register feedback can
				// resolve it; the D source is patched after all gates exist.
				id, err := c.AddDFF(lhs, -1)
				if err != nil {
					return nil, fmt.Errorf("bench line %d: %w", lineNo, err)
				}
				regs = append(regs, pendingReg{line: lineNo, id: id, d: args[0]})
				continue
			}
			pending = append(pending, pendingGate{line: lineNo, name: lhs, gate: fn, inputs: args})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read error: %w", err)
	}

	// Gates can reference names defined later in the file; resolve by
	// repeatedly adding gates whose fanins are all known. Sorting each round
	// keeps the construction deterministic.
	remaining := pending
	for len(remaining) > 0 {
		var next []pendingGate
		progress := false
		for _, pg := range remaining {
			ids := make([]int, 0, len(pg.inputs))
			ok := true
			for _, in := range pg.inputs {
				id, found := c.byName[in]
				if !found {
					ok = false
					break
				}
				ids = append(ids, id)
			}
			if !ok {
				next = append(next, pg)
				continue
			}
			t, err := gateTypeFromBench(pg.gate)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %w", pg.line, err)
			}
			if _, err := c.AddGate(pg.name, t, ids...); err != nil {
				return nil, fmt.Errorf("bench line %d: %w", pg.line, err)
			}
			progress = true
		}
		if !progress {
			sort.Slice(next, func(i, j int) bool { return next[i].line < next[j].line })
			return nil, fmt.Errorf("bench line %d: gate %q has unresolvable fanin (undefined signal or cycle)",
				next[0].line, next[0].name)
		}
		remaining = next
	}

	// Patch register D pins now that every signal name exists. This is what
	// lets a DFF reference a gate defined later in the file, or sit on a
	// feedback loop through its own Q output.
	for _, pr := range regs {
		dID, ok := c.byName[pr.d]
		if !ok {
			return nil, fmt.Errorf("bench line %d: DFF %q references undefined signal %q",
				pr.line, c.Gates[pr.id].Name, pr.d)
		}
		c.Gates[pr.id].Fanin[0] = dID
	}
	if len(regs) > 0 {
		c.invalidate()
	}

	for _, out := range outputs {
		id, ok := c.byName[out]
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s) references undefined signal", out)
		}
		if err := c.MarkOutput(id); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("bench: invalid netlist: %w", err)
	}
	return c, nil
}

func matchDirective(line, dir string) bool {
	u := strings.ToUpper(line)
	return strings.HasPrefix(u, dir) && strings.Contains(line, "(")
}

func directiveArg(line, dir string, lineNo int) (string, error) {
	open := strings.Index(line, "(")
	close_ := strings.LastIndex(line, ")")
	if open < 0 || close_ < open {
		return "", fmt.Errorf("bench line %d: malformed %s directive %q", lineNo, dir, line)
	}
	arg := strings.TrimSpace(line[open+1 : close_])
	if arg == "" {
		return "", fmt.Errorf("bench line %d: empty %s argument", lineNo, dir)
	}
	return arg, nil
}

func gateTypeFromBench(fn string) (GateType, error) {
	switch fn {
	case "BUF", "BUFF":
		return Buf, nil
	case "NOT", "INV":
		return Not, nil
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	default:
		return 0, fmt.Errorf("unknown gate function %q", fn)
	}
}

// WriteBench writes the circuit in .bench format. ParseBench(WriteBench(c))
// reproduces the circuit structure.
func (c *Circuit) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	if c.Sequential() {
		fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates, %d dffs\n",
			len(c.PIs), len(c.POs), c.NumGates(), c.NumRegs())
	} else {
		fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", len(c.PIs), len(c.POs), c.NumGates())
	}
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[pi].Name)
	}
	for _, po := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[po].Name)
	}
	for _, g := range c.Gates {
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// C17 returns the classic ISCAS85 c17 benchmark (the only one small enough
// to embed verbatim; all six NAND gates).
func C17() *Circuit {
	c := New("c17")
	g1, _ := c.AddInput("1")
	g2, _ := c.AddInput("2")
	g3, _ := c.AddInput("3")
	g6, _ := c.AddInput("6")
	g7, _ := c.AddInput("7")
	g10, _ := c.AddGate("10", Nand, g1, g3)
	g11, _ := c.AddGate("11", Nand, g3, g6)
	g16, _ := c.AddGate("16", Nand, g2, g11)
	g19, _ := c.AddGate("19", Nand, g11, g7)
	g22, _ := c.AddGate("22", Nand, g10, g16)
	g23, _ := c.AddGate("23", Nand, g16, g19)
	_ = c.MarkOutput(g22)
	_ = c.MarkOutput(g23)
	return c
}
