package circuit

import "fmt"

// Clocked wraps a combinational circuit in a single register stage on each
// side: every primary input is captured by an input register before it feeds
// logic, and every primary output is captured by an output register. The
// result is a sequential circuit whose register-to-register paths are exactly
// the original input-to-output paths, which makes it the canonical clocked
// benchmark for setup/hold analysis.
//
// Port names are stable with respect to the combinational original: the new
// circuit's primary inputs keep the original PI names, and its primary
// outputs are the capture registers, which take the original PO names (the
// PO logic gates are renamed name+"_d", the input registers name+"_r"). Two
// circuits generated from the same spec — clocked or not — therefore expose
// identical port-name sets, so extracted models remain swappable in
// hierarchical designs.
func Clocked(c *Circuit) (*Circuit, error) {
	if c.Sequential() {
		return nil, fmt.Errorf("circuit: Clocked(%q): circuit already contains registers", c.Name)
	}
	isPI := make(map[int]bool, len(c.PIs))
	for _, pi := range c.PIs {
		isPI[pi] = true
	}
	isPO := make(map[int]bool, len(c.POs))
	for _, po := range c.POs {
		if isPI[po] {
			return nil, fmt.Errorf("circuit: Clocked(%q): output %q is a primary input", c.Name, c.Gates[po].Name)
		}
		isPO[po] = true
	}

	out := New(c.Name + "_seq")
	newID := make([]int, len(c.Gates))
	// Input stage: a fresh PI under the original name, captured by a
	// register named name+"_r"; logic reads the register's Q.
	for _, pi := range c.PIs {
		name := c.Gates[pi].Name
		in, err := out.AddInput(name)
		if err != nil {
			return nil, err
		}
		r, err := out.AddDFF(name+"_r", in)
		if err != nil {
			return nil, err
		}
		newID[pi] = r
	}
	// Logic: copied in id order. Circuits built through Add* always have
	// fanin ids below the gate id, so every remapped fanin already exists.
	for id, g := range c.Gates {
		if g.Type == Input {
			continue
		}
		name := g.Name
		if isPO[id] {
			name += "_d"
		}
		fan := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fan[i] = newID[f]
		}
		gid, err := out.AddGate(name, g.Type, fan...)
		if err != nil {
			return nil, err
		}
		newID[id] = gid
	}
	// Output stage: capture registers under the original PO names.
	for _, po := range c.POs {
		cap_, err := out.AddDFF(c.Gates[po].Name, newID[po])
		if err != nil {
			return nil, err
		}
		if err := out.MarkOutput(cap_); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: Clocked(%q): %w", c.Name, err)
	}
	return out, nil
}

// GenerateClocked builds the clocked (registered) variant of the generated
// benchmark for the spec: Generate followed by Clocked.
func GenerateClocked(spec TopoSpec, seed int64) (*Circuit, error) {
	g, err := Generate(spec, seed)
	if err != nil {
		return nil, err
	}
	return Clocked(g)
}
