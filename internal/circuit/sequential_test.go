package circuit

import (
	"strings"
	"testing"
)

// TestParseBenchSequential parses a small clocked netlist with register
// feedback and checks the D/Q structure.
func TestParseBenchSequential(t *testing.T) {
	src := `
# toggle-ish: register feedback through a NAND
INPUT(a)
INPUT(en)
OUTPUT(q)
OUTPUT(z)
q = DFF(d)
d = NAND(a, q)
z = AND(en, q)
`
	c, err := ParseBench("seq", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Sequential() || c.NumRegs() != 1 {
		t.Fatalf("regs = %d, want 1", c.NumRegs())
	}
	qID, _ := c.NodeByName("q")
	dID, _ := c.NodeByName("d")
	if c.Gates[qID].Type != Dff || c.Gates[qID].Fanin[0] != dID {
		t.Fatalf("register q fanin = %v, want [%d]", c.Gates[qID].Fanin, dID)
	}
	// Feedback: d reads q, q captures d — Levelize must not call this a cycle.
	if _, _, err := c.Levelize(); err != nil {
		t.Fatalf("levelize: %v", err)
	}
	_, levels, _ := c.Levelize()
	if levels[qID] != 0 {
		t.Fatalf("register level = %d, want 0 (launches from clock)", levels[qID])
	}
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Regs != 1 {
		t.Fatalf("Stats.Regs = %d", st.Regs)
	}

	// A genuine combinational cycle must still error.
	cyc := "INPUT(a)\nOUTPUT(x)\nx = NAND(a, y)\ny = NAND(a, x)\n"
	if _, err := ParseBench("cyc", strings.NewReader(cyc)); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

// TestParseBenchCombinationalMode pins the validated combinational-only
// parse mode: sequential netlists get an explicit error, combinational ones
// parse identically to ParseBench.
func TestParseBenchCombinationalMode(t *testing.T) {
	seq := "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"
	if _, err := ParseBenchCombinational("seq", strings.NewReader(seq)); err == nil {
		t.Fatal("combinational mode accepted a DFF")
	} else if !strings.Contains(err.Error(), "DFF") {
		t.Fatalf("error does not name DFF: %v", err)
	}
	comb := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n"
	if _, err := ParseBenchCombinational("comb", strings.NewReader(comb)); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialWriteRoundTrip checks WriteBench/ParseBench round-trips a
// registered netlist with identical structure.
func TestSequentialWriteRoundTrip(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(a, q)\n"
	c, err := ParseBench("rt", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := c.WriteBench(&out); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench("rt2", strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, out.String())
	}
	s1, _ := c.Stat()
	s2, _ := c2.Stat()
	s1.Name, s2.Name = "", ""
	if s1 != s2 {
		t.Fatalf("round trip changed structure: %+v vs %+v", s1, s2)
	}
}

// TestClocked checks the registered wrapper of a combinational benchmark:
// structure, port-name stability against the original, and determinism.
func TestClocked(t *testing.T) {
	base := C17()
	c, err := Clocked(base)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.NumRegs(), len(base.PIs)+len(base.POs); got != want {
		t.Fatalf("regs = %d, want %d", got, want)
	}
	if len(c.PIs) != len(base.PIs) || len(c.POs) != len(base.POs) {
		t.Fatalf("ports changed: %d/%d vs %d/%d", len(c.PIs), len(c.POs), len(base.PIs), len(base.POs))
	}
	// Port names are preserved: PIs keep their names, POs are the capture
	// registers under the original output names.
	for i, pi := range base.PIs {
		if c.Gates[c.PIs[i]].Name != base.Gates[pi].Name {
			t.Fatalf("PI %d renamed: %q vs %q", i, c.Gates[c.PIs[i]].Name, base.Gates[pi].Name)
		}
	}
	for i, po := range base.POs {
		g := c.Gates[c.POs[i]]
		if g.Name != base.Gates[po].Name {
			t.Fatalf("PO %d renamed: %q vs %q", i, g.Name, base.Gates[po].Name)
		}
		if g.Type != Dff {
			t.Fatalf("PO %d is %v, want DFF capture register", i, g.Type)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Combinational depth is preserved between the register stages
	// (registers sit at level 0 and capture edges carry no level constraint).
	d0, _ := base.Depth()
	d1, _ := c.Depth()
	if d1 != d0 {
		t.Fatalf("clocked depth = %d, want %d", d1, d0)
	}

	// Clocking twice is an error; generation is deterministic per seed.
	if _, err := Clocked(c); err == nil {
		t.Fatal("Clocked accepted a sequential circuit")
	}
	spec := TopoSpec{Name: "tiny", PIs: 4, POs: 2, Gates: 12, Edges: 24, Depth: 3}
	a, err := GenerateClocked(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateClocked(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := a.Stat()
	sb, _ := b.Stat()
	if sa != sb {
		t.Fatalf("GenerateClocked not deterministic: %+v vs %+v", sa, sb)
	}
	if sa.Regs != spec.PIs+spec.POs {
		t.Fatalf("generated regs = %d, want %d", sa.Regs, spec.PIs+spec.POs)
	}
}
