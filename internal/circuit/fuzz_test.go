package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzNetlistParse drives the .bench reader with arbitrary bytes. The
// invariants: the parser never panics, and any netlist it accepts is
// structurally valid (Validate passes inside ParseBench) and round-trips
// through WriteBench with an identical structural footprint.
func FuzzNetlistParse(f *testing.F) {
	var c17 bytes.Buffer
	if err := C17().WriteBench(&c17); err != nil {
		f.Fatal(err)
	}
	f.Add(c17.Bytes())
	f.Add([]byte("# comment only\n"))
	f.Add([]byte("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n"))
	// Forward reference: gates may use names defined later in the file.
	f.Add([]byte("INPUT(a)\nOUTPUT(z)\nz = NOT(m)\nm = BUFF(a)\n"))
	f.Add([]byte("INPUT(a)\nOUTPUT(z)\nz = DFF(a)\n")) // sequential: accepted (registers are modeled)
	// Register feedback: the D source reads through the register's own Q.
	f.Add([]byte("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(a, q)\n"))
	f.Add([]byte("INPUT(a)\nOUTPUT(z)\nz = DFF(a, a)\n"))     // DFF arity: rejected
	f.Add([]byte("INPUT(a)\nOUTPUT(z)\nz = DFF(m)\n"))        // undefined D source
	f.Add([]byte("INPUT(a)\nOUTPUT(z)\nz = XOR(a, a)\n"))     // duplicate fanin
	f.Add([]byte("INPUT(a)\nOUTPUT(z)\nz = FROB(a, a)\n"))    // unknown gate fn
	f.Add([]byte("INPUT(a)\nOUTPUT(z)\nz = NOT(z)\n"))        // self-cycle
	f.Add([]byte("INPUT()\nOUTPUT(z)\nz=NOT(a)\n"))           // empty directive arg
	f.Add([]byte("garbage line\nINPUT(a)\nz = NOT(a\n"))      // malformed
	f.Add([]byte("INPUT(a)\ninput(b)\nOUTPUT(Z)\nZ=or(a,b)")) // case forms

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // the scanner caps lines at 1 MiB; big inputs only cost time
		}
		c, err := ParseBench("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted netlists must be valid and round-trip structurally.
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid netlist: %v", err)
		}
		// The combinational-only mode accepts exactly the register-free
		// subset of what ParseBench accepts.
		_, combErr := ParseBenchCombinational("fuzzc", bytes.NewReader(data))
		if c.Sequential() && combErr == nil {
			t.Fatal("ParseBenchCombinational accepted a sequential netlist")
		}
		if !c.Sequential() && combErr != nil {
			t.Fatalf("ParseBenchCombinational rejected a combinational netlist: %v", combErr)
		}
		var out strings.Builder
		if err := c.WriteBench(&out); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		c2, err := ParseBench("fuzz2", strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\nnetlist:\n%s", err, out.String())
		}
		s1, err := c.Stat()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := c2.Stat()
		if err != nil {
			t.Fatal(err)
		}
		s1.Name, s2.Name = "", ""
		if s1 != s2 {
			t.Fatalf("round trip changed structure: %+v vs %+v", s1, s2)
		}
	})
}
