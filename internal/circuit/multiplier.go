package circuit

import "fmt"

// ArrayMultiplier builds a structural n x n unsigned array multiplier:
// n*n AND partial products reduced column-wise with full/half adders built
// from XOR/AND/OR primitives, finished by a ripple-carry adder. c6288, the
// module used in the paper's hierarchical experiment, is a 16x16 multiplier
// (Hansen, Yalcin & Hayes); ArrayMultiplier(16) is its open structural
// equivalent. The returned circuit has 2n inputs (a0..a(n-1), b0..b(n-1),
// LSB first) and 2n product outputs (p0..p(2n-1)).
func ArrayMultiplier(n int) (*Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuit: ArrayMultiplier width %d < 1", n)
	}
	c := New(fmt.Sprintf("mult%dx%d", n, n))
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		var err error
		if a[i], err = c.AddInput(fmt.Sprintf("a%d", i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		var err error
		if b[i], err = c.AddInput(fmt.Sprintf("b%d", i)); err != nil {
			return nil, err
		}
	}

	gateSeq := 0
	newGate := func(t GateType, fanin ...int) (int, error) {
		gateSeq++
		return c.AddGate(fmt.Sprintf("g%d_%s", gateSeq, t), t, fanin...)
	}
	halfAdder := func(x, y int) (sum, carry int, err error) {
		if sum, err = newGate(Xor, x, y); err != nil {
			return
		}
		carry, err = newGate(And, x, y)
		return
	}
	fullAdder := func(x, y, z int) (sum, carry int, err error) {
		t, err := newGate(Xor, x, y)
		if err != nil {
			return 0, 0, err
		}
		if sum, err = newGate(Xor, t, z); err != nil {
			return 0, 0, err
		}
		c1, err := newGate(And, x, y)
		if err != nil {
			return 0, 0, err
		}
		c2, err := newGate(And, t, z)
		if err != nil {
			return 0, 0, err
		}
		carry, err = newGate(Or, c1, c2)
		return sum, carry, err
	}

	// Partial products, bucketed by bit weight.
	cols := make([][]int, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pp, err := newGate(And, a[j], b[i])
			if err != nil {
				return nil, err
			}
			cols[i+j] = append(cols[i+j], pp)
		}
	}

	// Carry-save reduction: compress every column to at most two bits.
	for w := 0; w < 2*n; w++ {
		for len(cols[w]) >= 3 {
			x, y, z := cols[w][0], cols[w][1], cols[w][2]
			cols[w] = cols[w][3:]
			sum, carry, err := fullAdder(x, y, z)
			if err != nil {
				return nil, err
			}
			cols[w] = append(cols[w], sum)
			cols[w+1] = append(cols[w+1], carry)
		}
	}

	// Final ripple-carry addition across columns.
	carry := -1
	product := make([]int, 0, 2*n)
	for w := 0; w < 2*n; w++ {
		bits := cols[w]
		if carry >= 0 {
			bits = append(bits, carry)
			carry = -1
		}
		switch len(bits) {
		case 0:
			// Only possible for the top column of degenerate widths; the
			// product bit is constant zero and is omitted.
			continue
		case 1:
			product = append(product, bits[0])
		case 2:
			s, cy, err := halfAdder(bits[0], bits[1])
			if err != nil {
				return nil, err
			}
			product = append(product, s)
			carry = cy
		case 3:
			s, cy, err := fullAdder(bits[0], bits[1], bits[2])
			if err != nil {
				return nil, err
			}
			product = append(product, s)
			carry = cy
		default:
			return nil, fmt.Errorf("circuit: column %d kept %d bits after reduction", w, len(bits))
		}
	}
	if carry >= 0 {
		product = append(product, carry)
	}
	for i, p := range product {
		// Give product bits stable names via buffers only when the node
		// already drives other logic; plain renaming is not possible, so we
		// simply mark the node as an output.
		if err := c.MarkOutput(p); err != nil {
			return nil, fmt.Errorf("circuit: product bit %d: %w", i, err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: multiplier invalid: %w", err)
	}
	return c, nil
}
