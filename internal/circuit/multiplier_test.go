package circuit

import "testing"

// simulateMult multiplies x*y through the structural netlist.
func simulateMult(t *testing.T, c *Circuit, n int, x, y uint64) uint64 {
	t.Helper()
	in := make([]bool, 2*n)
	for i := 0; i < n; i++ {
		in[i] = x&(1<<uint(i)) != 0
		in[n+i] = y&(1<<uint(i)) != 0
	}
	out, err := c.SimulateOutputs(in)
	if err != nil {
		t.Fatal(err)
	}
	var p uint64
	for i, b := range out {
		if b {
			p |= 1 << uint(i)
		}
	}
	return p
}

func TestArrayMultiplier4x4Exhaustive(t *testing.T) {
	c, err := ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PIs) != 8 || len(c.POs) != 8 {
		t.Fatalf("IO counts: %d in, %d out", len(c.PIs), len(c.POs))
	}
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			if got := simulateMult(t, c, 4, x, y); got != x*y {
				t.Fatalf("%d*%d = %d, got %d", x, y, x*y, got)
			}
		}
	}
}

func TestArrayMultiplier8x8Sampled(t *testing.T) {
	c, err := ArrayMultiplier(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2]uint64{{0, 0}, {255, 255}, {1, 255}, {37, 201}, {128, 2}, {99, 100}, {17, 17}}
	for _, tc := range cases {
		if got := simulateMult(t, c, 8, tc[0], tc[1]); got != tc[0]*tc[1] {
			t.Fatalf("%d*%d = %d, got %d", tc[0], tc[1], tc[0]*tc[1], got)
		}
	}
}

func TestArrayMultiplier16Structure(t *testing.T) {
	c, err := ArrayMultiplier(16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if s.PIs != 32 || s.POs != 32 {
		t.Fatalf("16x16 IO: %d in, %d out", s.PIs, s.POs)
	}
	// The real c6288 has 2416 gates; the open structural equivalent lands in
	// the same range (AND array + adder cells).
	if s.Gates < 1200 || s.Gates > 3000 {
		t.Fatalf("16x16 gate count %d outside plausible range", s.Gates)
	}
	if s.Depth < 30 {
		t.Fatalf("16x16 depth %d implausibly shallow", s.Depth)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check functionality at full width.
	if got := simulateMult(t, c, 16, 65535, 65535); got != 65535*65535 {
		t.Fatalf("65535^2 = %d, got %d", uint64(65535*65535), got)
	}
	if got := simulateMult(t, c, 16, 12345, 54321); got != 12345*54321 {
		t.Fatalf("12345*54321: got %d", got)
	}
}

func TestArrayMultiplierWidth1(t *testing.T) {
	c, err := ArrayMultiplier(1)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 2; x++ {
		for y := uint64(0); y < 2; y++ {
			if got := simulateMult(t, c, 1, x, y); got != x*y {
				t.Fatalf("%d*%d: got %d", x, y, got)
			}
		}
	}
}

func TestArrayMultiplierInvalidWidth(t *testing.T) {
	if _, err := ArrayMultiplier(0); err == nil {
		t.Fatal("width 0 accepted")
	}
}
