package timing

import (
	"strings"
	"testing"

	"repro/internal/canon"
)

// TestStaleDelayBankCannotServeEdits is the regression fence for the flat
// edge-delay bank: after the bank has been built (second pass), every edit
// path must leave it either patched or structurally invalidated, so a
// post-edit pass can never read the pre-edit delay.
func TestStaleDelayBankCannotServeEdits(t *testing.T) {
	build := func() *Graph { return buildC17(t) }

	// Two passes force the flat bank into existence.
	warm := func(g *Graph) {
		for i := 0; i < 2; i++ {
			if _, err := g.MaxDelay(); err != nil {
				t.Fatal(err)
			}
		}
		if !g.hasDelayBank() {
			t.Fatal("flat delay bank not built after two passes")
		}
	}

	t.Run("SetEdgeDelay", func(t *testing.T) {
		g := build()
		warm(g)
		want := build() // same graph, edit applied before any pass
		f := want.Edges[3].Delay.Clone()
		f.Nominal += 50
		if err := want.SetEdgeDelay(3, f); err != nil {
			t.Fatal(err)
		}
		if err := g.SetEdgeDelay(3, f); err != nil {
			t.Fatal(err)
		}
		got, err := g.MaxDelay()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := want.MaxDelay()
		if err != nil {
			t.Fatal(err)
		}
		if d := formDiff(got, ref); d > passTol {
			t.Fatalf("post-edit pass differs from fresh graph by %g — stale bank served", d)
		}
		if base, _ := build().MaxDelay(); formDiff(got, base) < 1e-6 {
			t.Fatal("edit had no effect on the delay — edit not applied")
		}
	})

	t.Run("ScaleEdgeDelay", func(t *testing.T) {
		g := build()
		warm(g)
		before, _ := g.MaxDelay()
		if err := g.ScaleEdgeDelay(0, 4.0); err != nil {
			t.Fatal(err)
		}
		after, err := g.MaxDelay()
		if err != nil {
			t.Fatal(err)
		}
		if formDiff(before, after) < 1e-9 {
			t.Fatal("scaling an edge 4x did not change the delay — stale bank served")
		}
	})

	t.Run("AddEdgeLive", func(t *testing.T) {
		g := build()
		warm(g)
		before, _ := g.MaxDelay()
		// A heavy bypass edge from the first input to the last vertex.
		if _, err := g.AddEdgeLive(g.Inputs[0], g.NumVerts-1, g.Space.Const(1000), nil, 0); err != nil {
			t.Fatal(err)
		}
		after, err := g.MaxDelay()
		if err != nil {
			t.Fatal(err)
		}
		if after.Mean() < before.Mean()+500 {
			t.Fatalf("added 1000ps edge not visible: %g -> %g", before.Mean(), after.Mean())
		}
	})

	t.Run("RemoveEdge", func(t *testing.T) {
		g := build()
		warm(g)
		ei, err := g.AddEdgeLive(g.Inputs[0], g.NumVerts-1, g.Space.Const(1000), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		heavy, _ := g.MaxDelay()
		if err := g.RemoveEdge(ei); err != nil {
			t.Fatal(err)
		}
		after, err := g.MaxDelay()
		if err != nil {
			t.Fatal(err)
		}
		if after.Mean() >= heavy.Mean()-500 {
			t.Fatalf("removed 1000ps edge still visible: %g -> %g", heavy.Mean(), after.Mean())
		}
		ref, _ := build().MaxDelay()
		if d := formDiff(after, ref); d > passTol {
			t.Fatalf("add+remove does not round-trip: differs by %g", d)
		}
	})
}

func TestAddEdgeLiveRejectsCycles(t *testing.T) {
	g := buildC17(t)
	g.takeDirty() // drop construction-time metadata so the check below is precise
	ref, _ := g.MaxDelay()
	// Any back edge along an existing edge closes a cycle.
	e := g.Edges[0]
	if _, err := g.AddEdgeLive(e.To, e.From, g.Space.Const(1), nil, 0); err == nil {
		t.Fatal("cycle-closing edge accepted")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The rejected edit must not have mutated anything.
	after, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if d := formDiff(ref, after); d != 0 {
		t.Fatalf("rejected edit changed the graph (diff %g)", d)
	}
	if g.dirtyFull || len(g.fwdDirty) != 0 {
		t.Fatal("rejected edit left dirty metadata behind")
	}
}

func TestEditValidation(t *testing.T) {
	g := buildC17(t)
	if err := g.SetEdgeDelay(len(g.Edges), g.Space.Const(1)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.ScaleEdgeDelay(0, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := g.ScaleEdgeDelay(0, -1); err == nil {
		t.Fatal("negative scale accepted")
	}
	if err := g.SetEdgeDelay(0, (canon.Space{Globals: 1, Components: 1}).NewForm()); err == nil {
		t.Fatal("wrong-space form accepted")
	}
	if err := g.RemoveEdge(2); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(2); err == nil {
		t.Fatal("double removal accepted")
	}
	if err := g.ScaleEdgeDelay(2, 2); err == nil {
		t.Fatal("edit of removed edge accepted")
	}
	if err := g.RetargetIO([]int{-1}, nil, []string{"x"}, nil); err == nil {
		t.Fatal("out-of-range input accepted")
	}
}

// TestRetargetIOValidatesBeforeMutation fences the validate-before-mutate
// contract of the edit API: a rejected retarget must not leave half-recorded
// dirty seeds behind.
func TestRetargetIOValidatesBeforeMutation(t *testing.T) {
	g := buildC17(t)
	// Absorb the construction-time metadata (raw AddEdge marks the whole
	// graph dirty) so the fences below see only what RetargetIO leaves.
	if _, err := g.NewIncremental(); err != nil {
		t.Fatal(err)
	}
	if err := g.RetargetIO(g.Inputs, g.Outputs, g.InputNames[:len(g.InputNames)-1], g.OutputNames); err == nil {
		t.Fatal("input name count mismatch accepted")
	}
	if g.dirtyPending() {
		t.Fatal("rejected retarget (name count) left dirty metadata behind")
	}
	if err := g.RetargetIO([]int{g.NumVerts}, g.Outputs, []string{"x"}, g.OutputNames); err == nil {
		t.Fatal("out-of-range input accepted")
	}
	if g.dirtyPending() {
		t.Fatal("rejected retarget (vertex range) left dirty metadata behind")
	}
}

func TestCloneIsolation(t *testing.T) {
	g := buildC17(t)
	ref, _ := g.MaxDelay()
	cl := g.Clone()
	if err := cl.ScaleEdgeDelay(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddEdgeLive(cl.Inputs[0], cl.NumVerts-1, cl.Space.Const(500), nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveEdge(1); err != nil {
		t.Fatal(err)
	}
	after, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if d := formDiff(ref, after); d != 0 {
		t.Fatalf("editing the clone changed the original (diff %g)", d)
	}
	if len(g.Edges) != 12 || g.Edges[1].Removed {
		t.Fatal("clone edits leaked structure into the original")
	}
}
