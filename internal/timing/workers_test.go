package timing

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0, 100); got < 1 {
		t.Fatalf("Workers(0, 100) = %d", got)
	}
	if got := Workers(-3, 100); got < 1 {
		t.Fatalf("Workers(-3, 100) = %d", got)
	}
	if got := Workers(16, 4); got != 4 {
		t.Fatalf("Workers(16, 4) = %d, want 4 (clamped to n)", got)
	}
	if got := Workers(2, 100); got != 2 {
		t.Fatalf("Workers(2, 100) = %d, want 2", got)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		var hits [n]atomic.Int32
		err := ParallelFor(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForSerialOrder(t *testing.T) {
	var order []int
	err := ParallelFor(10, 1, func(i int) error {
		order = append(order, i) // no lock: workers=1 must be single-threaded
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ParallelFor(100, workers, func(i int) error {
			if i == 42 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestParallelForErrorStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ParallelFor(1_000_000, 2, func(i int) error {
		calls.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if n := calls.Load(); n > 1000 {
		t.Fatalf("error did not stop distribution: %d calls", n)
	}
}

func TestParallelForEmpty(t *testing.T) {
	if err := ParallelFor(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForPanicIsRecaught(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if pe.Value != "boom" || pe.Index != 7 {
					t.Fatalf("workers=%d: PanicError = {%v %v}", workers, pe.Index, pe.Value)
				}
				if len(pe.Stack) == 0 {
					t.Fatalf("workers=%d: PanicError carries no worker stack", workers)
				}
			}()
			_ = ParallelFor(100, workers, func(i int) error {
				if i == 7 {
					panic("boom")
				}
				return nil
			})
			t.Fatalf("workers=%d: ParallelFor returned instead of panicking", workers)
		}()
	}
}

func TestParallelForPanicStopsDistribution(t *testing.T) {
	var calls atomic.Int32
	func() {
		defer func() { _ = recover() }()
		_ = ParallelFor(1_000_000, 2, func(i int) error {
			calls.Add(1)
			panic("boom")
		})
	}()
	if n := calls.Load(); n > 1000 {
		t.Fatalf("panic did not stop distribution: %d calls", n)
	}
}

func TestParallelForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := ParallelForCtx(ctx, 100, workers, func(context.Context, int) error {
			t.Fatal("task ran under a cancelled context")
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// A blocking task must observe the deadline through the derived ctx: the
// pool returns promptly with the ctx error instead of waiting one full fn.
func TestParallelForCtxBlockingFnObservesDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := ParallelForCtx(ctx, 8, 4, func(ctx context.Context, i int) error {
		<-ctx.Done() // simulate work that blocks until cancelled
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("pool took %v to observe a 30ms deadline", d)
	}
}

// One failing task must cancel the derived ctx so concurrently blocking
// tasks unblock; the first real error wins over the induced ctx errors.
func TestParallelForCtxErrorCancelsInFlight(t *testing.T) {
	boom := errors.New("boom")
	err := ParallelForCtx(context.Background(), 4, 4, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// Indices abandoned because the caller's ctx expired must surface as an
// error — a partial sweep must never look like a completed one.
func TestParallelForCtxAbandonedIndicesError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	err := ParallelForCtx(ctx, 1000, 2, func(ctx context.Context, i int) error {
		if calls.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (calls=%d)", err, calls.Load())
	}
	if n := calls.Load(); int(n) >= 1000 {
		t.Fatalf("cancellation did not stop distribution: %d calls", n)
	}
}

// A panic must resurface on the caller even when a routine error (or the
// cancellation it triggers) was recorded first — a real fault is never
// downgraded to a cancellation.
func TestParallelForCtxPanicNotSwallowedByError(t *testing.T) {
	boom := errors.New("boom")
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok || pe.Value != "late panic" {
			t.Fatalf("recovered %v, want *PanicError{late panic}", r)
		}
	}()
	started := make(chan struct{})
	_ = ParallelForCtx(context.Background(), 2, 2, func(ctx context.Context, i int) error {
		if i == 0 {
			<-started   // task 1 is in flight before the error is recorded
			return boom // recorded first, cancels the pool
		}
		close(started)
		<-ctx.Done() // guarantee the error came first
		panic("late panic")
	})
	t.Fatal("ParallelForCtx returned instead of re-panicking")
}
