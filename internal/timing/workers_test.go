package timing

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0, 100); got < 1 {
		t.Fatalf("Workers(0, 100) = %d", got)
	}
	if got := Workers(-3, 100); got < 1 {
		t.Fatalf("Workers(-3, 100) = %d", got)
	}
	if got := Workers(16, 4); got != 4 {
		t.Fatalf("Workers(16, 4) = %d, want 4 (clamped to n)", got)
	}
	if got := Workers(2, 100); got != 2 {
		t.Fatalf("Workers(2, 100) = %d, want 2", got)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		var hits [n]atomic.Int32
		err := ParallelFor(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForSerialOrder(t *testing.T) {
	var order []int
	err := ParallelFor(10, 1, func(i int) error {
		order = append(order, i) // no lock: workers=1 must be single-threaded
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ParallelFor(100, workers, func(i int) error {
			if i == 42 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestParallelForErrorStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ParallelFor(1_000_000, 2, func(i int) error {
		calls.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if n := calls.Load(); n > 1000 {
		t.Fatalf("error did not stop distribution: %d calls", n)
	}
}

func TestParallelForEmpty(t *testing.T) {
	if err := ParallelFor(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
