package timing

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/canon"
)

// snapTestGraph builds a small hand graph, applies a few edits so the
// snapshot carries tombstones and live order, and returns it.
func snapTestGraph(t *testing.T) *Graph {
	t.Helper()
	space := canon.Space{Globals: 2, Components: 3}
	g := NewGraph(space, 6, nil)
	form := func(nom float64, seed int) *canon.Form {
		f := space.NewForm()
		f.Nominal = nom
		for i := range f.Glob {
			f.Glob[i] = 0.1 * float64(seed+i)
		}
		for i := range f.Loc {
			f.Loc[i] = 0.01 * float64(seed+i)
		}
		f.Rand = 0.05 * float64(seed)
		return f
	}
	edges := [][2]int{{0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5}}
	for i, e := range edges {
		if _, err := g.AddEdge(e[0], e[1], form(10+float64(i), i+1), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetIO([]int{0, 1}, []int{5}, []string{"a", "b"}, []string{"y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Order(); err != nil {
		t.Fatal(err)
	}
	// Some edit history: a tombstone and a live addition.
	if err := g.RemoveEdge(3); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdgeLive(1, 4, form(7, 9), nil, 0); err != nil {
		t.Fatal(err)
	}
	g.takeDirty()
	return g
}

func TestGraphSnapshotRoundTripExact(t *testing.T) {
	g := snapTestGraph(t)
	snap := g.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded GraphSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	rg, err := FromSnapshot(&decoded)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}

	if rg.NumVerts != g.NumVerts || len(rg.Edges) != len(g.Edges) {
		t.Fatalf("shape: %d/%d verts, %d/%d edges", rg.NumVerts, g.NumVerts, len(rg.Edges), len(g.Edges))
	}
	for i := range g.Edges {
		a, b := &g.Edges[i], &rg.Edges[i]
		if a.From != b.From || a.To != b.To || a.Removed != b.Removed || a.Grid != b.Grid {
			t.Fatalf("edge %d structure mismatch: %+v vs %+v", i, a, b)
		}
		// Bit-exact delay forms: JSON round-trips float64 exactly.
		if a.Delay.Nominal != b.Delay.Nominal || a.Delay.Rand != b.Delay.Rand ||
			!reflect.DeepEqual(a.Delay.Glob, b.Delay.Glob) || !reflect.DeepEqual(a.Delay.Loc, b.Delay.Loc) {
			t.Fatalf("edge %d delay not bit-identical", i)
		}
	}
	for v := 0; v < g.NumVerts; v++ {
		if !reflect.DeepEqual(g.In[v], rg.In[v]) || !reflect.DeepEqual(g.Out[v], rg.Out[v]) {
			t.Fatalf("vertex %d adjacency mismatch: in %v/%v out %v/%v",
				v, g.In[v], rg.In[v], g.Out[v], rg.Out[v])
		}
	}
	gOrder, _ := g.Order()
	rOrder, _ := rg.Order()
	if !reflect.DeepEqual(gOrder, rOrder) {
		t.Fatalf("order mismatch: %v vs %v", gOrder, rOrder)
	}
	if !reflect.DeepEqual(g.Inputs, rg.Inputs) || !reflect.DeepEqual(g.Outputs, rg.Outputs) ||
		!reflect.DeepEqual(g.InputNames, rg.InputNames) || !reflect.DeepEqual(g.OutputNames, rg.OutputNames) {
		t.Fatal("IO mismatch")
	}

	// Propagated delay is bit-identical: same forms, same adjacency order,
	// same topological order.
	d1, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := rg.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if d1.Nominal != d2.Nominal || d1.Rand != d2.Rand ||
		!reflect.DeepEqual(d1.Glob, d2.Glob) || !reflect.DeepEqual(d1.Loc, d2.Loc) {
		t.Fatalf("propagated delay not bit-identical: %v vs %v", d1.Mean(), d2.Mean())
	}

	// Snapshot of the restored graph encodes to the same bytes.
	data2, err := json.Marshal(rg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("re-encoded snapshot differs")
	}
}

func TestGraphSnapshotRestoredGraphIsEditable(t *testing.T) {
	g := snapTestGraph(t)
	rg, err := FromSnapshot(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	inc, err := rg.NewIncrementalCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.ScaleEdgeDelay(0, 1.5); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Update(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.MaxDelay(); err != nil {
		t.Fatal(err)
	}
}

func TestFromSnapshotRejectsInvalid(t *testing.T) {
	base := func() *GraphSnapshot { return snapTestGraph(t).Snapshot() }
	cases := map[string]func(*GraphSnapshot){
		"negative verts":    func(s *GraphSnapshot) { s.NumVerts = -1 },
		"huge verts":        func(s *GraphSnapshot) { s.NumVerts = maxSnapshotVerts + 1 },
		"edge from range":   func(s *GraphSnapshot) { s.Edges[0].From = 99 },
		"edge to negative":  func(s *GraphSnapshot) { s.Edges[0].To = -2 },
		"self loop":         func(s *GraphSnapshot) { s.Edges[0].To = s.Edges[0].From },
		"glob dim":          func(s *GraphSnapshot) { s.Edges[0].Glob = []float64{1} },
		"loc dim":           func(s *GraphSnapshot) { s.Edges[0].Loc = []float64{1} },
		"input range":       func(s *GraphSnapshot) { s.Inputs[0] = 100 },
		"output range":      func(s *GraphSnapshot) { s.Outputs[0] = -1 },
		"io name count":     func(s *GraphSnapshot) { s.InputNames = s.InputNames[:1] },
		"slope count":       func(s *GraphSnapshot) { s.OutputLoadSlopes = []float64{1, 2, 3} },
		"order short":       func(s *GraphSnapshot) { s.Order = s.Order[:2] },
		"order repeat":      func(s *GraphSnapshot) { s.Order[1] = s.Order[0] },
		"order range":       func(s *GraphSnapshot) { s.Order[0] = 77 },
		"order nontopo":     func(s *GraphSnapshot) { s.Order[0], s.Order[len(s.Order)-1] = s.Order[len(s.Order)-1], s.Order[0] },
		"lsens count":       func(s *GraphSnapshot) { s.Edges[0].LSens = []float64{1, 2} },
		"negative globals":  func(s *GraphSnapshot) { s.Globals = -1 },
		"huge components":   func(s *GraphSnapshot) { s.Components = maxSnapshotComponents + 1 },
		"grid out of range": func(s *GraphSnapshot) { s.Grid = &GridSnapshot{NX: 64, NY: 64, Pitch: 1} },
	}
	for name, mutate := range cases {
		s := base()
		mutate(s)
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s: FromSnapshot accepted invalid snapshot", name)
		}
	}
	// A cycle without a stored order is caught by the order computation.
	s := base()
	s.Order = nil
	s.Edges = append(s.Edges, EdgeSnapshot{From: 5, To: 0, Glob: make([]float64, s.Globals), Loc: make([]float64, s.Components)})
	if _, err := FromSnapshot(s); err == nil {
		t.Error("cycle: FromSnapshot accepted cyclic snapshot")
	}
}
