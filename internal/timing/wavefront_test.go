package timing

import (
	"testing"

	"repro/internal/canon"
)

// TestLevelsWavefronts checks the cached level structure on the fuzz base
// graph: level consistency with fan-in, wave partitioning, and monotone
// detection on a freshly computed Kahn order.
func TestLevelsWavefronts(t *testing.T) {
	g := fuzzBaseGraph(t)
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if !lv.Monotone {
		t.Fatal("fresh Kahn order must be level-monotone")
	}
	for e := range g.Edges {
		ed := &g.Edges[e]
		if lv.Level[ed.To] <= lv.Level[ed.From] {
			t.Fatalf("edge %d->%d: level %d !< %d", ed.From, ed.To, lv.Level[ed.From], lv.Level[ed.To])
		}
	}
	seen := 0
	for k := 0; k <= lv.MaxLevel; k++ {
		for _, vi := range lv.Wave[lv.Starts[k]:lv.Starts[k+1]] {
			if int(lv.Level[vi]) != k {
				t.Fatalf("vertex %d in wave %d has level %d", vi, k, lv.Level[vi])
			}
			seen++
		}
	}
	if seen != g.NumVerts {
		t.Fatalf("waves cover %d of %d vertices", seen, g.NumVerts)
	}
	lv2, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv2 != lv {
		t.Fatal("Levels not cached across calls")
	}
}

// TestLevelsNonMonotoneAfterRemove constructs the order-preserving edit
// that leaves a cached topological order with decreasing levels: removing
// an edge keeps the order but can drop its target's level below that of
// earlier-ordered vertices. The kernels must detect this and still produce
// correct results through the plain order loop.
func TestLevelsNonMonotoneAfterRemove(t *testing.T) {
	// a=0, b=1, u=2, v=3; edges a->b, b->u, a->v. Kahn order [a,b,v,u]
	// carries levels (0,1,1,2); removing b->u drops u to level 0 while the
	// (still valid) cached order keeps u last: (0,1,1,0) is non-monotone.
	g := NewGraph(fuzzSpace, 4, nil)
	form := func(nom float64) *canon.Form {
		f := fuzzSpace.NewForm()
		f.Nominal = nom
		f.Rand = 0.5
		return f
	}
	mustEdge(t, g, 0, 1, form(3))
	bu, err := g.AddEdge(1, 2, form(4), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, 0, 3, form(5))
	if err := g.SetIO([]int{0}, []int{3}, []string{"a"}, []string{"v"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Order(); err != nil {
		t.Fatal(err)
	}
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if !lv.Monotone {
		t.Fatalf("pre-edit order should be monotone (levels %v)", lv.Level)
	}
	if err := g.RemoveEdge(bu); err != nil {
		t.Fatal(err)
	}
	lv, err = g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv.Monotone {
		t.Fatalf("order with levels %v over cached order should be non-monotone", lv.Level)
	}
	if lv.Level[2] != 0 {
		t.Fatalf("u level %d after losing its only fanin", lv.Level[2])
	}
	p := g.AcquirePass()
	defer p.Release()
	if err := p.Arrivals(g.Inputs...); err != nil {
		t.Fatal(err)
	}
	if p.Reached(2) {
		t.Fatal("u still reached after removing its only fanin")
	}
	if got := p.At(3).Nominal(); got != 5 {
		t.Fatalf("arrival at v: nominal %g, want 5", got)
	}
	pp := g.AcquirePass().WithWorkers(4)
	defer pp.Release()
	if err := pp.Arrivals(g.Inputs...); err != nil {
		t.Fatal(err)
	}
	if pp.Reached(2) || pp.At(3).Nominal() != 5 {
		t.Fatal("parallel pass diverges on non-monotone order")
	}
}

// TestWavefrontParallelMatchesSerial locks in the parallel kernels'
// bit-identity contract on real benchmark graphs: every arrival and
// required form must match the serial pass exactly (not just within
// tolerance), for forward and backward passes, at several worker counts.
func TestWavefrontParallelMatchesSerial(t *testing.T) {
	names := []string{"c432", "c880"}
	if !testing.Short() {
		names = append(names, "c7552")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			g := buildBench(t, name, 7)
			ser := g.AcquirePass()
			defer ser.Release()
			if err := ser.Arrivals(g.Inputs...); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				par := g.AcquirePass().WithWorkers(workers)
				if err := par.Arrivals(g.Inputs...); err != nil {
					t.Fatal(err)
				}
				compareExact(t, g, ser, par, "forward", workers)
				par.Release()
			}
			if err := ser.Required(g.Outputs...); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				par := g.AcquirePass().WithWorkers(workers)
				if err := par.Required(g.Outputs...); err != nil {
					t.Fatal(err)
				}
				compareExact(t, g, ser, par, "backward", workers)
				par.Release()
			}
		})
	}
}

// compareExact requires bit-identical pass results: same reach mask, same
// form words.
func compareExact(t *testing.T, g *Graph, want, got *Pass, dir string, workers int) {
	t.Helper()
	for v := 0; v < g.NumVerts; v++ {
		if want.Reached(v) != got.Reached(v) {
			t.Fatalf("%s workers=%d vertex %d: reach %v != %v", dir, workers, v, got.Reached(v), want.Reached(v))
		}
		if !want.Reached(v) {
			continue
		}
		wv, gv := want.At(v), got.At(v)
		for k := range wv {
			if wv[k] != gv[k] {
				t.Fatalf("%s workers=%d vertex %d word %d: %g != %g (bit-identity violated)",
					dir, workers, v, k, gv[k], wv[k])
			}
		}
	}
}

// TestPassPoolMixedSizes pins the size-classed pool contract: recycling a
// small buffer must never starve (or poison) a later, larger request, and a
// steady-state workload alternating between two graph sizes performs no
// slab allocations.
func TestPassPoolMixedSizes(t *testing.T) {
	// A small recycled slab must not be handed back for a bigger request.
	putSlab(make([]float64, 64))
	if s := takeSlab(1 << 12); cap(s) < 1<<12 {
		t.Fatalf("takeSlab(%d) returned cap %d", 1<<12, cap(s))
	}
	putMask(make([]bool, 64))
	if m := takeMask(4000); cap(m) < 4000 || len(m) != 4000 {
		t.Fatalf("takeMask(4000) returned len %d cap %d", len(m), cap(m))
	}
	// Steady state across mixed graph sizes: the per-class pools serve both
	// request sizes without fresh slab allocations. The fence bounds the
	// small per-acquire bookkeeping (Pass/Bank headers, pool boxing); a
	// dropped-buffer regression re-allocates vertex-count-sized slabs every
	// iteration and blows well past it.
	small := fuzzBaseGraph(t)
	big := buildBench(t, "c880", 7)
	run := func() {
		for _, g := range []*Graph{small, big} {
			p := g.AcquirePass()
			if err := p.Arrivals(g.Inputs...); err != nil {
				t.Fatal(err)
			}
			p.Release()
		}
	}
	run() // warm the pools and the cached levels/orders
	allocs := testing.AllocsPerRun(20, run)
	if allocs > 12 {
		t.Fatalf("mixed-size pass loop allocates %.1f objects per iteration", allocs)
	}
}
