package timing

import (
	"errors"
	"fmt"

	"repro/internal/canon"
)

// This file computes statistical setup/hold slack for the registers of a
// sequential timing graph, following the register-to-register recipe of
// "Timing Model Extraction for Sequential Circuits Considering Process
// Variations" (arXiv 1705.04976): launch clock -> clk->Q arc -> combinational
// path -> D pin, checked against the capture edge one period later (setup)
// or the same edge (hold). Constraints, arrivals and slacks are all
// canonical forms, so the slack distributions stay correlated with the
// parameter space exactly like delays do.

// ClockSpec describes the clock a sequential analysis is run against. All
// values are picoseconds. Skew is the deterministic worst-case launch/capture
// edge separation: it tightens setup (the capture edge may come SkewPS early)
// and hold (the capture edge may come SkewPS late) symmetrically. Jitter is
// the 1-sigma cycle-to-cycle clock uncertainty; it enters the slack forms as
// an independent random contribution (RSS with the path randomness).
type ClockSpec struct {
	PeriodPS float64
	SkewPS   float64
	JitterPS float64
}

// DefaultClockPeriodPS is the clock period assumed when a sequential design
// is analyzed without an explicit clock — roughly 2 GHz, comfortable for the
// synthetic 90nm library's benchmark depths.
const DefaultClockPeriodPS = 500.0

// DefaultClock returns the clock used when none is specified.
func DefaultClock() ClockSpec { return ClockSpec{PeriodPS: DefaultClockPeriodPS} }

// normalize fills the default period and rejects negatives.
func (c ClockSpec) normalize() (ClockSpec, error) {
	if c.PeriodPS == 0 {
		c.PeriodPS = DefaultClockPeriodPS
	}
	if c.PeriodPS < 0 || c.SkewPS < 0 || c.JitterPS < 0 {
		return c, fmt.Errorf("timing: negative clock spec %+v", c)
	}
	return c, nil
}

// RegSlack holds one register's statistical slack forms. Setup is
// (T - skew) - setup - latestArrival(D) with clock jitter in the random
// part; Hold is earliestArrival(D) - hold - skew likewise. Negative slack
// mass is failure probability.
type RegSlack struct {
	Name  string
	Setup *canon.Form
	Hold  *canon.Form
}

// SeqResult is the sequential analysis of a graph under one clock.
type SeqResult struct {
	Clock ClockSpec
	Regs  []RegSlack
	// WorstSetup/WorstHold are the statistical minima of the per-register
	// slacks — the design-level setup and hold margins.
	WorstSetup *canon.Form
	WorstHold  *canon.Form
}

// SequentialSlacks computes per-register statistical setup and hold slack
// under the given clock, launching max and min arrival passes from the
// graph's launch sources (inputs and clock roots).
func (g *Graph) SequentialSlacks(clock ClockSpec) (*SeqResult, error) {
	return g.SequentialSlacksOver(nil, clock)
}

// SequentialSlacksOver is SequentialSlacks reading edge delays from the
// given bank instead of the graph's own — the scenario-sweep hook. A nil
// bank uses the graph's delays.
func (g *Graph) SequentialSlacksOver(delays *canon.Bank, clock ClockSpec) (*SeqResult, error) {
	if !g.Sequential() {
		return nil, errors.New("timing: graph has no registers")
	}
	clock, err := clock.normalize()
	if err != nil {
		return nil, err
	}
	sources := g.LaunchSources()

	late := g.AcquirePass()
	defer late.Release()
	early := g.AcquirePass()
	defer early.Release()
	if delays != nil {
		if err := late.ArrivalsOver(delays, sources...); err != nil {
			return nil, err
		}
		if err := early.ArrivalsMinOver(delays, sources...); err != nil {
			return nil, err
		}
	} else {
		if err := late.Arrivals(sources...); err != nil {
			return nil, err
		}
		if err := early.ArrivalsMin(sources...); err != nil {
			return nil, err
		}
	}

	res := &SeqResult{Clock: clock, Regs: make([]RegSlack, 0, len(g.Registers))}
	setups := make([]*canon.Form, 0, len(g.Registers))
	holds := make([]*canon.Form, 0, len(g.Registers))
	for _, r := range g.Registers {
		if r.D < 0 || r.D >= g.NumVerts {
			return nil, fmt.Errorf("timing: register %q D vertex %d out of range", r.Name, r.D)
		}
		if !late.Reached(r.D) {
			// The D cone is cut off from every launch source (possible on
			// aggressively reduced models); the register is unconstrained.
			continue
		}
		arrMax := late.At(r.D).Form(g.Space)
		arrMin := early.At(r.D).Form(g.Space)

		// Setup: the data must beat the capture edge at T - skew by the
		// setup requirement. Jitter rides on the capture edge as an
		// independent random term (the Sub RSS-combines it with the path
		// and constraint randomness).
		capture := g.Space.NewForm()
		capture.Nominal = clock.PeriodPS - clock.SkewPS
		capture.Rand = clock.JitterPS
		setup := canon.Sub(capture, canon.Add(arrMax, r.Setup))

		// Hold: the earliest next-cycle data must stay beyond the hold
		// requirement after a capture edge that may arrive skew late.
		edge := g.Space.NewForm()
		edge.Nominal = clock.SkewPS
		edge.Rand = clock.JitterPS
		hold := canon.Sub(arrMin, canon.Add(edge, r.Hold))

		res.Regs = append(res.Regs, RegSlack{Name: r.Name, Setup: setup, Hold: hold})
		setups = append(setups, setup)
		holds = append(holds, hold)
	}
	if len(res.Regs) == 0 {
		return nil, errors.New("timing: no register D pin reachable from any launch source")
	}
	if res.WorstSetup, err = canon.MinAll(setups); err != nil {
		return nil, err
	}
	if res.WorstHold, err = canon.MinAll(holds); err != nil {
		return nil, err
	}
	return res, nil
}

// SegMatrix holds the register-to-register path segmentation of a sequential
// graph: M[i][j] is the maximum statistical combinational delay from launch
// point i to capture point j (nil when no path exists). Launch points are
// the registers' Q outputs (excluding the clk->Q arc) followed by the
// primary inputs; capture points are the registers' D pins followed by the
// primary outputs.
type SegMatrix struct {
	LaunchNames  []string
	CaptureNames []string
	M            [][]*canon.Form
}

// RegToReg computes the path segmentation matrix with one exclusive forward
// pass per launch point, fanned out over workers (<=0 means GOMAXPROCS) —
// the sequential analogue of AllPairsDelays.
func (g *Graph) RegToReg(workers int) (*SegMatrix, error) {
	if !g.Sequential() {
		return nil, errors.New("timing: graph has no registers")
	}
	if _, err := g.Order(); err != nil {
		return nil, err
	}
	g.EdgeDelays() // build the flat delay bank before fanning out

	launches := make([]int, 0, len(g.Registers)+len(g.Inputs))
	launchNames := make([]string, 0, cap(launches))
	for _, r := range g.Registers {
		if r.Q < 0 {
			continue // extracted-model register: Q vertex reduced away
		}
		launches = append(launches, r.Q)
		launchNames = append(launchNames, r.Name)
	}
	for i, in := range g.Inputs {
		launches = append(launches, in)
		launchNames = append(launchNames, g.InputNames[i])
	}
	captures := make([]int, 0, len(g.Registers)+len(g.Outputs))
	captureNames := make([]string, 0, cap(captures))
	for _, r := range g.Registers {
		captures = append(captures, r.D)
		captureNames = append(captureNames, r.Name)
	}
	for j, out := range g.Outputs {
		captures = append(captures, out)
		captureNames = append(captureNames, g.OutputNames[j])
	}

	sm := &SegMatrix{
		LaunchNames:  launchNames,
		CaptureNames: captureNames,
		M:            make([][]*canon.Form, len(launches)),
	}
	err := ParallelFor(len(launches), workers, func(i int) error {
		p := g.AcquirePass()
		defer p.Release()
		if err := p.Arrivals(launches[i]); err != nil {
			return err
		}
		row := make([]*canon.Form, len(captures))
		for j, cpt := range captures {
			if cpt == launches[i] {
				continue // zero-length self segment carries no information
			}
			row[j] = p.Form(cpt)
		}
		sm.M[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sm, nil
}
