package timing

import (
	"math"
	"testing"
)

func TestTopPathsC17(t *testing.T) {
	g := buildC17(t)
	paths, err := g.TopPaths(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	md, _ := g.MaxDelay()
	prev := math.Inf(1)
	for i, p := range paths {
		// Structure: consecutive edges must chain between the vertices.
		if len(p.Edges) != len(p.Vertices)-1 {
			t.Fatalf("path %d: %d edges for %d vertices", i, len(p.Edges), len(p.Vertices))
		}
		for k, ei := range p.Edges {
			e := g.Edges[ei]
			if e.From != p.Vertices[k] || e.To != p.Vertices[k+1] {
				t.Fatalf("path %d: edge %d does not chain", i, k)
			}
		}
		if p.Vertices[0] != g.Inputs[p.Input] || p.Vertices[len(p.Vertices)-1] != g.Outputs[p.Output] {
			t.Fatalf("path %d does not run input->output", i)
		}
		// Ranking is by descending criticality.
		if p.Criticality > prev+1e-12 {
			t.Fatalf("paths not sorted by criticality: %g after %g", p.Criticality, prev)
		}
		prev = p.Criticality
		// A single path cannot out-delay the circuit distribution by much.
		if p.Delay.Mean() > md.Mean()+1e-9 {
			t.Fatalf("path %d mean %g above circuit delay %g", i, p.Delay.Mean(), md.Mean())
		}
		if p.Criticality < 0 || p.Criticality > 1 {
			t.Fatalf("path %d criticality %g", i, p.Criticality)
		}
	}
	// The top path should be a strong contender for the circuit maximum.
	if paths[0].Criticality < 0.2 {
		t.Fatalf("top path criticality %g suspiciously low", paths[0].Criticality)
	}
}

func TestTopPathsTruncation(t *testing.T) {
	g := buildBench(t, "c432", 1)
	p3, err := g.TopPaths(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p3) != 3 {
		t.Fatalf("got %d paths, want 3", len(p3))
	}
	if _, err := g.TopPaths(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSlacksSignAndMonotonicity(t *testing.T) {
	g := buildC17(t)
	md, _ := g.MaxDelay()
	// Generous required time: all slacks comfortably positive.
	loose, err := g.Slacks(md.Mean() + 10*md.Std())
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range loose {
		if s == nil {
			continue
		}
		if s.Mean() <= 0 {
			t.Fatalf("vertex %d slack %g under loose constraint", v, s.Mean())
		}
	}
	// Impossible required time: the critical vertices go negative.
	tight, err := g.Slacks(md.Mean() - 10*md.Std())
	if err != nil {
		t.Fatal(err)
	}
	sawNegative := false
	for _, s := range tight {
		if s != nil && s.Mean() < 0 {
			sawNegative = true
		}
	}
	if !sawNegative {
		t.Fatal("no negative slack under impossible constraint")
	}
	// Slack variance equals the path-delay variance (required time is
	// deterministic).
	for v, s := range loose {
		if s == nil || tight[v] == nil {
			continue
		}
		if math.Abs(s.Std()-tight[v].Std()) > 1e-9 {
			t.Fatal("slack sigma should not depend on the required time")
		}
	}
}

func TestSlacksCoverage(t *testing.T) {
	g := buildC17(t)
	slacks, err := g.Slacks(100)
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex of c17 lies on some input-output path.
	for v, s := range slacks {
		if s == nil {
			t.Fatalf("vertex %d has no slack but c17 has no dead logic", v)
		}
	}
}
