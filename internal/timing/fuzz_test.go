package timing

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/canon"
)

// fuzzSpace/fuzzVerts fix the graph the edit fuzzer mutates: big enough to
// have interesting cones and order-violating edge candidates, small enough
// that one fuzz iteration (build + edits + repeated full-pass differential
// checks) stays in the microsecond range.
var fuzzSpace = canon.Space{Globals: 2, Components: 4}

const fuzzVerts = 28

// fuzzBaseGraph builds a deterministic layered DAG with pseudo-random
// delay forms: 4 inputs, 4 outputs, ~3 fanins per internal vertex.
func fuzzBaseGraph(tb testing.TB) *Graph {
	g := NewGraph(fuzzSpace, fuzzVerts, nil)
	rng := rand.New(rand.NewSource(1234))
	form := func() *canon.Form {
		f := fuzzSpace.NewForm()
		f.Nominal = 5 + 20*rng.Float64()
		for i := range f.Glob {
			f.Glob[i] = rng.NormFloat64()
		}
		for i := range f.Loc {
			f.Loc[i] = 0.5 * rng.NormFloat64()
		}
		f.Rand = 0.5 + rng.Float64()
		return f
	}
	for v := 4; v < fuzzVerts; v++ {
		fanin := 1 + rng.Intn(3)
		for k := 0; k < fanin; k++ {
			from := rng.Intn(v)
			if _, err := g.AddEdge(from, v, form(), nil, 0); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := g.SetIO(
		[]int{0, 1, 2, 3},
		[]int{fuzzVerts - 4, fuzzVerts - 3, fuzzVerts - 2, fuzzVerts - 1},
		[]string{"a", "b", "c", "d"},
		[]string{"w", "x", "y", "z"},
	); err != nil {
		tb.Fatal(err)
	}
	return g
}

// fuzzCheck compares the incremental state (after absorbing all pending
// edits) against from-scratch forward/backward passes at 1e-9, the
// engine's equivalence contract.
func fuzzCheck(tb testing.TB, g *Graph, inc *Incremental, step int) {
	if _, err := inc.Update(context.Background()); err != nil {
		tb.Fatalf("step %d: update: %v", step, err)
	}
	p := g.AcquirePass()
	defer p.Release()
	if err := p.Arrivals(g.Inputs...); err != nil {
		tb.Fatalf("step %d: full pass: %v", step, err)
	}
	for v := 0; v < g.NumVerts; v++ {
		want := p.Form(v)
		got, err := inc.Arrival(v)
		if err != nil {
			tb.Fatalf("step %d vertex %d: %v", step, v, err)
		}
		if (got == nil) != (want == nil) {
			tb.Fatalf("step %d vertex %d: reachability diverged (inc %v, full %v)", step, v, got != nil, want != nil)
		}
		if got != nil && formDiff(got, want) > 1e-9 {
			tb.Fatalf("step %d vertex %d: incremental arrival differs from full pass by %g",
				step, v, formDiff(got, want))
		}
	}
	if err := p.Required(g.Outputs...); err != nil {
		tb.Fatalf("step %d: full backward pass: %v", step, err)
	}
	for v := 0; v < g.NumVerts; v++ {
		want := p.Form(v)
		got, err := inc.Required(v)
		if err != nil {
			tb.Fatalf("step %d vertex %d: required: %v", step, v, err)
		}
		if (got == nil) != (want == nil) {
			tb.Fatalf("step %d vertex %d: required reachability diverged", step, v)
		}
		if got != nil && formDiff(got, want) > 1e-9 {
			tb.Fatalf("step %d vertex %d: incremental required differs from full pass by %g",
				step, v, formDiff(got, want))
		}
	}
}

// FuzzGraphEdits drives the graph edit API + incremental engine with a
// byte-coded edit script: every 4-byte chunk is one operation (scale, set
// delay/nominal, add — including order-violating and cycle-closing
// candidates —, remove — including double-removes of tombstoned edges —,
// retarget IO, or an explicit differential checkpoint). The invariants are
// "no panic on any input" and "incremental == from-scratch at 1e-9 at
// every checkpoint and at the end".
func FuzzGraphEdits(f *testing.F) {
	f.Add([]byte{
		0, 5, 16, 0, // scale edge 5
		1, 9, 55, 0, // set nominal
		3, 2, 14, 0, // add edge (likely order-respecting)
		6, 0, 0, 0, // checkpoint
		4, 3, 0, 0, // remove edge 3
		4, 3, 0, 0, // double-remove (tombstone error path)
		3, 20, 4, 0, // add edge high->low (order-violating or cycle)
		5, 1, 0, 0, // retarget IO
		6, 0, 0, 0, // checkpoint
	})
	f.Add([]byte{2, 0, 200, 3, 2, 1, 0, 9, 6, 0, 0, 0})
	f.Add([]byte{3, 27, 0, 1, 3, 26, 1, 2, 4, 0, 0, 0, 6, 0, 0, 0})
	f.Add([]byte{5, 0, 0, 0, 5, 2, 0, 0, 6, 0, 0, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512] // bound per-input cost, scripts repeat ops anyway
		}
		g := fuzzBaseGraph(t)
		inc, err := g.NewIncremental()
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.EnableRequired(context.Background()); err != nil {
			t.Fatal(err)
		}
		steps := 0
		for len(script) >= 4 {
			op, a, b, c := script[0], script[1], script[2], script[3]
			script = script[4:]
			steps++
			switch op % 7 {
			case 0: // scale edge
				scale := 0.25 + float64(b)/64 // (0.25 .. 4.25)
				_ = g.ScaleEdgeDelay(int(a)%len(g.Edges), scale)
			case 1: // set nominal
				_ = g.SetEdgeNominal(int(a)%len(g.Edges), float64(b))
			case 2: // set delay (byte-derived form)
				fm := fuzzSpace.NewForm()
				fm.Nominal = float64(b)
				fm.Glob[int(c)%len(fm.Glob)] = float64(c) / 16
				fm.Loc[int(a)%len(fm.Loc)] = float64(a) / 32
				fm.Rand = float64(c) / 64
				_ = g.SetEdgeDelay(int(a)%len(g.Edges), fm)
			case 3: // add edge — cycle and order-violation candidates included
				from, to := int(a)%g.NumVerts, int(b)%g.NumVerts
				delay := fuzzSpace.Const(1 + float64(c)/8)
				_, _ = g.AddEdgeLive(from, to, delay, nil, 0)
			case 4: // remove edge — tombstoned targets included
				_ = g.RemoveEdge(int(a) % len(g.Edges))
			case 5: // retarget IO: rotate the IO sets over a fixed vertex menu
				r := int(a) % 4
				ins := []int{0, 1, 2, 3}
				outs := []int{fuzzVerts - 4, fuzzVerts - 3, fuzzVerts - 2, fuzzVerts - 1}
				names := []string{"p", "q", "r", "s"}
				_ = g.RetargetIO(
					append(ins[r:], ins[:r]...),
					append(outs[r:], outs[:r]...),
					names, names)
			case 6: // differential checkpoint
				fuzzCheck(t, g, inc, steps)
			}
		}
		fuzzCheck(t, g, inc, steps+1)
	})
}
