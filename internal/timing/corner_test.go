package timing

import (
	"math"
	"testing"
)

func TestCornerDelayPessimism(t *testing.T) {
	// The point of SSTA (paper introduction): the all-sources 3-sigma
	// corner is more pessimistic than the statistical 3-sigma quantile,
	// because it ignores that independent variations rarely align.
	g := buildBench(t, "c880", 1)
	corner, err := g.CornerDelay(3)
	if err != nil {
		t.Fatal(err)
	}
	md, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	q3 := md.Quantile(0.99865) // 3-sigma yield point
	if corner <= q3 {
		t.Fatalf("corner %g not above statistical 3-sigma point %g", corner, q3)
	}
	pessimism := (corner - q3) / q3
	if pessimism < 0.02 {
		t.Fatalf("pessimism %g suspiciously small", pessimism)
	}
	if pessimism > 1.0 {
		t.Fatalf("pessimism %g implausibly large", pessimism)
	}
}

func TestCornerDelayZeroIsNominal(t *testing.T) {
	g := buildC17(t)
	c0, err := g.CornerDelay(0)
	if err != nil {
		t.Fatal(err)
	}
	nom, err := g.NominalDelay()
	if err != nil {
		t.Fatal(err)
	}
	if c0 != nom {
		t.Fatalf("CornerDelay(0)=%g != NominalDelay()=%g", c0, nom)
	}
	// The nominal longest path equals the nominal of the max-delay form
	// only up to the Clark mean bump, so compare loosely from below.
	md, _ := g.MaxDelay()
	if nom > md.Mean()+1e-9 {
		t.Fatalf("nominal %g exceeds statistical mean %g", nom, md.Mean())
	}
	if nom < 0.8*md.Mean() {
		t.Fatalf("nominal %g far below statistical mean %g", nom, md.Mean())
	}
}

func TestCornerDelayMonotoneInK(t *testing.T) {
	g := buildC17(t)
	prev := -math.MaxFloat64
	for _, k := range []float64{0, 0.5, 1, 2, 3, 6} {
		c, err := g.CornerDelay(k)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Fatalf("corner not strictly increasing at k=%g: %g <= %g", k, c, prev)
		}
		prev = c
	}
}

func TestCornerDelayRejectsNegativeK(t *testing.T) {
	g := buildC17(t)
	if _, err := g.CornerDelay(-1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestOutputLoadSlopesRecorded(t *testing.T) {
	g := buildC17(t)
	if len(g.OutputLoadSlopes) != len(g.Outputs) {
		t.Fatalf("load slopes %d != outputs %d", len(g.OutputLoadSlopes), len(g.Outputs))
	}
	for k, s := range g.OutputLoadSlopes {
		if s <= 0 {
			t.Fatalf("output %d load slope %g", k, s)
		}
	}
}
