// Package timing implements the statistical timing graph of the paper's
// Section II: vertices are circuit pins (one per gate output and primary
// input), edges carry canonical first-order delay forms, and arrival times
// are propagated with statistical sum and Clark max.
//
// Besides the canonical form, every edge also carries the structural
// ground-truth data (nominal, per-parameter sensitivities, grid index,
// private-random sigma) so the Monte Carlo engine can sample the parameter
// space directly — independent of the PCA machinery it validates.
package timing

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/canon"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/place"
	"repro/internal/variation"
)

// Edge is one delay edge of the timing graph.
type Edge struct {
	From, To int
	Delay    *canon.Form

	// Ground-truth structural data for Monte Carlo (see package comment).
	// LSens[p] is the absolute delay sensitivity (ps) to the grid-local part
	// of parameter p; the sampled local value of grid Grid multiplies it.
	LSens []float64
	Grid  int

	// Removed marks a tombstoned edge (see Graph.RemoveEdge): it stays in
	// Edges so edge indices remain stable, but no adjacency list references
	// it and the propagation kernels never read it. Consumers that iterate
	// Edges directly (Monte Carlo, corner enumeration, criticality) require
	// tombstone-free graphs; the edit API is for session-owned graphs that
	// only run arrival/required propagation.
	Removed bool
}

// Register is one D-flip-flop of a sequential timing graph. The register's
// Q output is vertex Q, launched from the clock root through a clk->Q delay
// edge (ClkEdge); the data path being captured ends at vertex D — there is
// no D->Q edge, which is what keeps register feedback loops acyclic. Setup
// and Hold are the register's constraint values as canonical forms in the
// graph's space; SetupLSens/HoldLSens carry the absolute per-parameter local
// sensitivities at grid Grid for the Monte Carlo engine, mirroring
// Edge.LSens.
type Register struct {
	Name    string
	Q       int // vertex id of the Q output
	D       int // vertex id whose arrival the D pin captures
	ClkEdge int // edge index of the clock-root -> Q launch arc (-1 if absent)
	Grid    int // placement grid (-1 when the graph has no spatial model)

	Setup, Hold           *canon.Form
	SetupLSens, HoldLSens []float64
}

// Graph is a statistical timing graph.
type Graph struct {
	Space  canon.Space
	Params []variation.Parameter
	Grids  *variation.GridModel // nil for hand-built graphs without spatial model

	NumVerts int
	Edges    []Edge
	In       [][]int32 // fanin edge indices per vertex
	Out      [][]int32 // fanout edge indices per vertex

	Inputs  []int
	Outputs []int

	// Sequential metadata. Registers holds one entry per D-flip-flop;
	// ClockRoots the virtual clock source vertices (one for a flat graph,
	// one per registered instance in a stitched hierarchical top). Both are
	// empty for combinational graphs.
	Registers  []Register
	ClockRoots []int
	// Port names in Inputs/Outputs order, used to stitch module models into
	// a hierarchical design.
	InputNames  []string
	OutputNames []string

	// OutputLoadSlopes optionally holds, per output port, the additional
	// nominal delay (ps) the driving cell incurs per extra fanout beyond the
	// single load assumed during characterization. It enables load-aware
	// model use at design level — the paper's stated future work.
	OutputLoadSlopes []float64

	// Slew (slope) characterization at the module boundary, the other half
	// of the paper's future work. RefSlew is the input transition assumed
	// at the module's inputs during characterization; InputSlewSlopes holds
	// the delay added per ps of input transition beyond RefSlew, per input
	// port; OutputPortSlews the nominal output transition per output port;
	// OutputSlewSlopes the transition added per extra external load.
	RefSlew          float64
	InputSlewSlopes  []float64
	OutputPortSlews  []float64
	OutputSlewSlopes []float64

	// orderMu guards the lazy computation of order so concurrent passes
	// on a shared graph (AnalyzeBatch reusing one item.Graph, parallel
	// MaxDelay queries) publish it safely. AddEdge still must not run
	// concurrently with any reader.
	orderMu sync.Mutex
	order   []int

	// topoGen counts adjacency mutations (edge additions and removals). The
	// cached level structure keys on it because some edits — RemoveEdge,
	// order-preserving AddEdgeLive — keep the cached topological order valid
	// while still moving levels. Bumped under the single-writer contract.
	topoGen     uint64
	levelsCache levelsCache

	// delayMu guards delayBank, the lazily built flat copy of the edge
	// delay forms the propagation kernels run on (see EdgeDelays).
	delayMu   sync.Mutex
	delayBank *canon.Bank

	// passes counts propagation passes run on this graph; the flat delay
	// bank is built once a second pass shows the build cost will amortize.
	passes atomic.Int64

	// Edit/dirty metadata consumed by the incremental engine (edit.go,
	// incremental.go): seed vertices whose arrival (fwdDirty) or required
	// time (bwdDirty) may have changed since the last Incremental.Update,
	// plus coarse flags for IO retargeting and metadata overflow. Mutations
	// and dirty consumption follow the same single-writer contract as
	// AddEdge: they must not run concurrently with any reader.
	fwdDirty  []int
	bwdDirty  []int
	dirtyIO   bool
	dirtyFull bool
}

// NewGraph creates an empty graph with nverts vertices.
func NewGraph(space canon.Space, nverts int, params []variation.Parameter) *Graph {
	return &Graph{
		Space:    space,
		Params:   params,
		NumVerts: nverts,
		In:       make([][]int32, nverts),
		Out:      make([][]int32, nverts),
	}
}

// AddEdge appends a delay edge and returns its index. The delay form must
// belong to the graph's space. For post-construction edits on a graph with
// live incremental state prefer AddEdgeLive, which rejects cycles up front
// and records precise dirty seeds; plain AddEdge conservatively marks the
// whole graph dirty.
func (g *Graph) AddEdge(from, to int, delay *canon.Form, lsens []float64, grid int) (int, error) {
	idx, err := g.addEdge(from, to, delay, lsens, grid)
	if err == nil {
		g.dirtyFull = true
	}
	return idx, err
}

func (g *Graph) addEdge(from, to int, delay *canon.Form, lsens []float64, grid int) (int, error) {
	if from < 0 || from >= g.NumVerts || to < 0 || to >= g.NumVerts {
		return 0, fmt.Errorf("timing: edge %d->%d outside vertex range %d", from, to, g.NumVerts)
	}
	if from == to {
		return 0, fmt.Errorf("timing: self-loop on vertex %d", from)
	}
	if !delay.In(g.Space) {
		return 0, fmt.Errorf("timing: edge %d->%d delay form not in graph space", from, to)
	}
	idx := len(g.Edges)
	g.Edges = append(g.Edges, Edge{From: from, To: to, Delay: delay, LSens: lsens, Grid: grid})
	g.Out[from] = append(g.Out[from], int32(idx))
	g.In[to] = append(g.In[to], int32(idx))
	g.order = nil
	g.topoGen++
	return idx, nil
}

// EdgeDelays returns the flat bank holding a copy of every edge delay form,
// one slot per edge index, building it on first use. The propagation and
// criticality kernels read edge delays from this bank so the innermost
// loops run over contiguous memory instead of chasing per-edge pointers.
//
// The bank is a cache: a stale bank is detected by edge count, so plain
// AddEdge growth rebuilds it transparently (AddEdge itself stays
// lock-free), but callers that mutate an existing Edge.Delay form in place
// must call InvalidateDelays themselves. The returned bank is shared —
// treat it as read-only.
func (g *Graph) EdgeDelays() *canon.Bank {
	g.delayMu.Lock()
	defer g.delayMu.Unlock()
	if g.delayBank == nil || g.delayBank.Cap() != len(g.Edges) {
		b := canon.NewBank(g.Space, len(g.Edges))
		for i := range g.Edges {
			b.View(i).LoadForm(g.Edges[i].Delay)
		}
		g.delayBank = b
	}
	return g.delayBank
}

// InvalidateDelays drops the cached flat edge-delay bank; the next
// propagation rebuilds it. Required after mutating an Edge.Delay in place.
func (g *Graph) InvalidateDelays() {
	g.delayMu.Lock()
	g.delayBank = nil
	g.delayMu.Unlock()
}

// SetIO declares the input and output vertices with their port names. The
// copies are allocated capacity-exactly (append-to-nil rounds capacity up
// to a size class).
func (g *Graph) SetIO(inputs, outputs []int, inNames, outNames []string) error {
	if len(inputs) != len(inNames) || len(outputs) != len(outNames) {
		return errors.New("timing: port name count mismatch")
	}
	g.Inputs = exactInts(inputs)
	g.Outputs = exactInts(outputs)
	g.InputNames = make([]string, len(inNames))
	copy(g.InputNames, inNames)
	g.OutputNames = make([]string, len(outNames))
	copy(g.OutputNames, outNames)
	return nil
}

// Sequential reports whether the graph carries register metadata.
func (g *Graph) Sequential() bool { return len(g.Registers) > 0 }

// LaunchSources returns the vertices every full forward pass launches from:
// the primary inputs plus, on sequential graphs, the clock roots (register Q
// outputs launch from the clock through their clk->Q edges). Combinational
// graphs get exactly g.Inputs; the result must be treated as read-only.
func (g *Graph) LaunchSources() []int {
	if len(g.ClockRoots) == 0 {
		return g.Inputs
	}
	out := make([]int, 0, len(g.Inputs)+len(g.ClockRoots))
	out = append(out, g.Inputs...)
	out = append(out, g.ClockRoots...)
	return out
}

// Order returns a topological order of the vertices, computing and caching
// it on first use. Safe for concurrent readers; the returned slice is
// immutable once published.
func (g *Graph) Order() ([]int, error) {
	g.orderMu.Lock()
	defer g.orderMu.Unlock()
	if g.order != nil {
		return g.order, nil
	}
	indeg := make([]int, g.NumVerts)
	for v := range g.In {
		indeg[v] = len(g.In[v])
	}
	queue := make([]int, 0, g.NumVerts)
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.NumVerts)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.Out[v] {
			to := g.Edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != g.NumVerts {
		return nil, errors.New("timing: graph contains a cycle")
	}
	g.order = order
	return order, nil
}

// Build constructs the statistical timing graph of a placed circuit against
// a cell library and grid model: one vertex per circuit node, one edge per
// gate fanin connection (paper Section II). The canonical space has one
// global per parameter and one component block per parameter.
//
// Sequential circuits get one extra virtual clock-root vertex (id
// c.NumNodes()): each register's Q vertex is launched from it through a
// clk->Q delay edge, and the register's D-pin capture is recorded in
// g.Registers instead of a graph edge — register feedback therefore cannot
// create a cycle. A primary output that is itself a register maps to its
// D-source vertex in g.Outputs (the data arrival being captured), keeping
// MaxDelay and extraction meaningful on clocked designs.
func Build(c *circuit.Circuit, lib *cell.Library, plan *place.Plan, gm *variation.GridModel) (*Graph, error) {
	if len(lib.Params) == 0 {
		return nil, errors.New("timing: library has no variation parameters")
	}
	if gm == nil {
		return nil, errors.New("timing: nil grid model")
	}
	space := canon.Space{Globals: len(lib.Params), Components: len(lib.Params) * gm.Comps}
	nv := c.NumNodes()
	clkRoot := -1
	if c.Sequential() {
		clkRoot = nv
		nv++
	}
	g := NewGraph(space, nv, lib.Params)
	g.Grids = gm
	g.RefSlew = cell.RefSlew
	fanout := c.Fanout()

	// Nominal output transition per node: primary inputs arrive at the
	// reference transition; gates regenerate according to their cell spec
	// and fanout. The slew model is first order (output slew independent of
	// input slew), so one local pass suffices.
	outSlew := make([]float64, c.NumNodes())
	for id, gate := range c.Gates {
		if gate.Type == circuit.Input {
			outSlew[id] = cell.RefSlew
			continue
		}
		nf := len(fanout[id])
		if nf < 1 {
			nf = 1
		}
		s, err := lib.OutputSlew(gate.Type, nf)
		if err != nil {
			return nil, fmt.Errorf("timing: gate %q: %w", gate.Name, err)
		}
		outSlew[id] = s
	}

	for id, gate := range c.Gates {
		if gate.Type == circuit.Input {
			continue
		}
		nf := len(fanout[id])
		if nf < 1 {
			nf = 1 // primary output drives one (virtual) load
		}
		grid := plan.Grid[id]
		if grid < 0 || grid >= gm.N() {
			return nil, fmt.Errorf("timing: gate %d grid %d outside model (%d grids)", id, grid, gm.N())
		}
		if gate.Type == circuit.Dff {
			// Register: the Q output launches from the clock root through the
			// clk->Q arc (pin 0, clock arriving at the reference transition);
			// the D-pin connection becomes capture metadata, not an edge.
			arc, err := lib.Arc(circuit.Dff, 0, nf)
			if err != nil {
				return nil, fmt.Errorf("timing: register %q: %w", gate.Name, err)
			}
			delay, lsens := formFromArc(space, lib.Params, gm, arc, grid)
			ei, err := g.AddEdge(clkRoot, id, delay, lsens, grid)
			if err != nil {
				return nil, err
			}
			rt := lib.RegTiming()
			setup, setupL := formFromConstraint(space, lib.Params, gm, rt.Setup, rt.SetupSens, rt.RandSigma, grid)
			hold, holdL := formFromConstraint(space, lib.Params, gm, rt.Hold, rt.HoldSens, rt.RandSigma, grid)
			g.Registers = append(g.Registers, Register{
				Name: gate.Name, Q: id, D: gate.Fanin[0], ClkEdge: ei, Grid: grid,
				Setup: setup, Hold: hold, SetupLSens: setupL, HoldLSens: holdL,
			})
			continue
		}
		for pin, src := range gate.Fanin {
			arc, err := lib.ArcAtSlew(gate.Type, pin, nf, outSlew[src])
			if err != nil {
				return nil, fmt.Errorf("timing: gate %q: %w", gate.Name, err)
			}
			delay, lsens := formFromArc(space, lib.Params, gm, arc, grid)
			if _, err := g.AddEdge(src, id, delay, lsens, grid); err != nil {
				return nil, err
			}
		}
	}
	if clkRoot >= 0 {
		g.ClockRoots = []int{clkRoot}
	}

	inNames := make([]string, len(c.PIs))
	for i, pi := range c.PIs {
		inNames[i] = c.Gates[pi].Name
	}
	// A registered primary output exposes the data arrival its capture
	// register sees: the output vertex is the register's D source, under the
	// register's (port) name.
	outVerts := make([]int, len(c.POs))
	outNames := make([]string, len(c.POs))
	for i, po := range c.POs {
		outNames[i] = c.Gates[po].Name
		if c.Gates[po].Type == circuit.Dff {
			outVerts[i] = c.Gates[po].Fanin[0]
		} else {
			outVerts[i] = po
		}
	}
	if err := g.SetIO(c.PIs, outVerts, inNames, outNames); err != nil {
		return nil, err
	}
	// Record the boundary characterization for load- and slew-aware model
	// use at design level (paper future work): delay added per extra
	// external fanout, per-input-port delay slope against input transition,
	// and the nominal transition each output port presents downstream.
	g.OutputLoadSlopes = make([]float64, len(c.POs))
	g.OutputPortSlews = make([]float64, len(c.POs))
	g.OutputSlewSlopes = make([]float64, len(c.POs))
	for i, po := range c.POs {
		if spec, err := lib.Spec(c.Gates[po].Type); err == nil {
			g.OutputLoadSlopes[i] = spec.LoadSlope
			g.OutputPortSlews[i] = outSlew[po]
			g.OutputSlewSlopes[i] = spec.OutSlewSlope
		}
	}
	g.InputSlewSlopes = make([]float64, len(c.PIs))
	for i, pi := range c.PIs {
		// Mean slew sensitivity of the arcs the port feeds.
		var sum float64
		var n int
		for _, consumer := range fanout[pi] {
			if spec, err := lib.Spec(c.Gates[consumer].Type); err == nil {
				sum += spec.SlewSens
				n++
			}
		}
		if n > 0 {
			g.InputSlewSlopes[i] = sum / float64(n)
		}
	}
	if _, err := g.Order(); err != nil {
		return nil, err
	}
	return g, nil
}

// Clone returns an independent copy of the graph for session-style
// mutation: the edge list, adjacency lists and IO declarations are deep
// copied, while the delay forms, sensitivity vectors and boundary
// characterization slices are shared — the edit API never mutates a form in
// place (SetEdgeDelay replaces the pointer), so sharing them is safe and
// keeps cloning O(V+E) instead of O(V+E)·dim. The clone starts with clean
// edit metadata and no cached delay bank.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Space:            g.Space,
		Params:           g.Params,
		Grids:            g.Grids,
		NumVerts:         g.NumVerts,
		Edges:            make([]Edge, len(g.Edges)),
		In:               make([][]int32, len(g.In)),
		Out:              make([][]int32, len(g.Out)),
		Inputs:           exactInts(g.Inputs),
		Outputs:          exactInts(g.Outputs),
		Registers:        append([]Register(nil), g.Registers...),
		ClockRoots:       exactInts(g.ClockRoots),
		InputNames:       append([]string(nil), g.InputNames...),
		OutputNames:      append([]string(nil), g.OutputNames...),
		OutputLoadSlopes: g.OutputLoadSlopes,
		RefSlew:          g.RefSlew,
		InputSlewSlopes:  g.InputSlewSlopes,
		OutputPortSlews:  g.OutputPortSlews,
		OutputSlewSlopes: g.OutputSlewSlopes,
	}
	copy(ng.Edges, g.Edges)
	for v := range g.In {
		ng.In[v] = append([]int32(nil), g.In[v]...)
		ng.Out[v] = append([]int32(nil), g.Out[v]...)
	}
	// The cached order is immutable once published and stays valid for the
	// clone until its topology diverges (edits nil it per graph).
	g.orderMu.Lock()
	ng.order = g.order
	g.orderMu.Unlock()
	return ng
}

// formFromArc converts a cell arc at a grid location into the canonical
// form (paper eq. 3) plus the MC structural sensitivities.
func formFromArc(space canon.Space, params []variation.Parameter, gm *variation.GridModel, arc cell.Arc, grid int) (*canon.Form, []float64) {
	f := space.NewForm()
	f.Nominal = arc.Nominal
	lsens := make([]float64, len(params))
	var rand2 float64
	row := gm.CoeffRow(grid)
	for p, par := range params {
		abs := arc.Sens[p] * par.Sigma
		f.Glob[p] = abs * sqrt(par.GlobalShare)
		ls := abs * sqrt(par.LocalShare)
		lsens[p] = ls
		base := p * gm.Comps
		for k, a := range row {
			f.Loc[base+k] = ls * a
		}
		r := abs * sqrt(par.RandomShare)
		rand2 += r * r
	}
	rand2 += arc.LoadAbs * arc.LoadAbs
	f.Rand = sqrt(rand2)
	return f, lsens
}

// formFromConstraint converts a register constraint characterization
// (nominal value plus relative per-parameter sensitivities and a relative
// private mismatch sigma) at a grid location into a canonical form plus the
// absolute local sensitivities for Monte Carlo — the constraint analogue of
// formFromArc.
func formFromConstraint(space canon.Space, params []variation.Parameter, gm *variation.GridModel, nominal float64, relSens []float64, randSigma float64, grid int) (*canon.Form, []float64) {
	f := space.NewForm()
	f.Nominal = nominal
	lsens := make([]float64, len(params))
	var rand2 float64
	row := gm.CoeffRow(grid)
	for p, par := range params {
		abs := nominal * relSens[p] * par.Sigma
		f.Glob[p] = abs * sqrt(par.GlobalShare)
		ls := abs * sqrt(par.LocalShare)
		lsens[p] = ls
		base := p * gm.Comps
		for k, a := range row {
			f.Loc[base+k] = ls * a
		}
		r := abs * sqrt(par.RandomShare)
		rand2 += r * r
	}
	mismatch := nominal * randSigma
	rand2 += mismatch * mismatch
	f.Rand = sqrt(rand2)
	return f, lsens
}

// sqrt clamps tiny negative share values (from float rounding) to zero.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
