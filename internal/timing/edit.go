package timing

import (
	"fmt"

	"repro/internal/canon"
)

// This file is the mutation API of a live timing graph — the entry point of
// the incremental engine. Every edit keeps the graph's derived state
// consistent (the cached flat edge-delay bank is patched or transparently
// rebuilt, the topological order is preserved where it provably stays
// valid) and records dirty seed vertices so a subsequent Incremental.Update
// re-propagates only the affected fan-out/fan-in cones.
//
// Edits follow the same single-writer contract as AddEdge: they must not
// run concurrently with any reader (passes, incremental updates, other
// edits). The ssta.Session layer serializes them behind one mutex.

// dirtyOverflow caps the dirty-seed lists: once more seeds accumulate than
// the graph has vertices, precise tracking cannot beat a full re-propagation
// and the metadata collapses to the dirtyFull flag.
func (g *Graph) markDirty(fwdSeed, bwdSeed int) {
	if g.dirtyFull {
		return
	}
	if fwdSeed >= 0 {
		g.fwdDirty = append(g.fwdDirty, fwdSeed)
	}
	if bwdSeed >= 0 {
		g.bwdDirty = append(g.bwdDirty, bwdSeed)
	}
	if len(g.fwdDirty) > g.NumVerts || len(g.bwdDirty) > g.NumVerts {
		g.dirtyFull = true
		g.fwdDirty, g.bwdDirty = nil, nil
	}
}

// takeDirty hands the accumulated edit metadata to the (single) consumer
// and resets it.
func (g *Graph) takeDirty() (fwd, bwd []int, io, full bool) {
	fwd, bwd, io, full = g.fwdDirty, g.bwdDirty, g.dirtyIO, g.dirtyFull
	g.fwdDirty, g.bwdDirty, g.dirtyIO, g.dirtyFull = nil, nil, false, false
	return fwd, bwd, io, full
}

// dirtyPending reports whether the graph carries edit metadata not yet
// absorbed by an Incremental.Update (or Rebuild).
func (g *Graph) dirtyPending() bool {
	return g.dirtyFull || g.dirtyIO || len(g.fwdDirty) > 0 || len(g.bwdDirty) > 0
}

// liveEdge validates an edge index for mutation.
func (g *Graph) liveEdge(ei int) (*Edge, error) {
	if ei < 0 || ei >= len(g.Edges) {
		return nil, fmt.Errorf("timing: edge index %d out of range (%d edges)", ei, len(g.Edges))
	}
	e := &g.Edges[ei]
	if e.Removed {
		return nil, fmt.Errorf("timing: edge %d already removed", ei)
	}
	return e, nil
}

// SetEdgeDelay replaces the delay form of an edge. The previous form is
// never mutated (it may be shared with clones or caches); the cached flat
// delay bank is patched in place so it can never serve the stale value.
func (g *Graph) SetEdgeDelay(ei int, delay *canon.Form) error {
	e, err := g.liveEdge(ei)
	if err != nil {
		return err
	}
	if !delay.In(g.Space) {
		return fmt.Errorf("timing: edge %d delay form not in graph space", ei)
	}
	e.Delay = delay
	g.delayMu.Lock()
	if g.delayBank != nil && g.delayBank.Cap() == len(g.Edges) {
		g.delayBank.View(ei).LoadForm(delay)
	}
	g.delayMu.Unlock()
	g.markDirty(e.To, e.From)
	return nil
}

// ScaleEdgeDelay multiplies every component of an edge's delay form by a
// positive factor — the canonical single-knob ECO edit (a resized driver, a
// re-bought cell). The form is cloned, not mutated.
func (g *Graph) ScaleEdgeDelay(ei int, scale float64) error {
	if !(scale > 0) {
		return fmt.Errorf("timing: edge %d scale %g must be positive", ei, scale)
	}
	e, err := g.liveEdge(ei)
	if err != nil {
		return err
	}
	return g.SetEdgeDelay(ei, e.Delay.Scale(scale))
}

// SetEdgeNominal replaces only the mean of an edge's delay, keeping its
// sensitivities — a nominal-delay ECO (wire resize, added repeater). The
// form is cloned, not mutated.
func (g *Graph) SetEdgeNominal(ei int, nominal float64) error {
	e, err := g.liveEdge(ei)
	if err != nil {
		return err
	}
	f := e.Delay.Clone()
	f.Nominal = nominal
	return g.SetEdgeDelay(ei, f)
}

// AddEdgeLive appends a delay edge to a live graph: it rejects edges that
// would create a cycle before mutating anything, and records precise dirty
// seeds instead of AddEdge's conservative whole-graph invalidation. The
// cached flat delay bank is invalidated structurally — its capacity no
// longer matches the edge count, so the next pass rebuilds it.
//
// When the new edge already respects the cached topological order, that
// order is kept: contribution order at every untouched vertex — and
// therefore every stored incremental arrival — stays exactly what a full
// pass would produce. An order-violating (but acyclic) edge forces an
// order recomputation, which reorders Clark-max operands at vertices far
// outside the edit's cone; the stored state is then conservatively marked
// fully dirty instead of being patched against a shifted order.
func (g *Graph) AddEdgeLive(from, to int, delay *canon.Form, lsens []float64, grid int) (int, error) {
	if from < 0 || from >= g.NumVerts || to < 0 || to >= g.NumVerts {
		return 0, fmt.Errorf("timing: edge %d->%d outside vertex range %d", from, to, g.NumVerts)
	}
	if g.reaches(to, from) {
		return 0, fmt.Errorf("timing: edge %d->%d would create a cycle", from, to)
	}
	g.orderMu.Lock()
	order := g.order
	g.orderMu.Unlock()
	keepOrder := false
	if order != nil {
		posFrom, posTo := -1, -1
		for k, v := range order {
			if v == from {
				posFrom = k
			} else if v == to {
				posTo = k
			}
		}
		keepOrder = posFrom >= 0 && posTo >= 0 && posFrom < posTo
	}
	idx, err := g.addEdge(from, to, delay, lsens, grid)
	if err != nil {
		return 0, err
	}
	if keepOrder {
		g.order = order
		g.markDirty(to, from)
	} else {
		g.dirtyFull = true
	}
	return idx, nil
}

// RemoveEdge tombstones an edge: it disappears from the adjacency lists
// (and therefore from every propagation), while Edges keeps its slot so
// edge indices stay stable. The cached topological order remains valid —
// removing an edge can only relax ordering constraints — and the delay
// bank's slot simply goes unreferenced.
func (g *Graph) RemoveEdge(ei int) error {
	e, err := g.liveEdge(ei)
	if err != nil {
		return err
	}
	g.Out[e.From] = dropEdgeIndex(g.Out[e.From], int32(ei))
	g.In[e.To] = dropEdgeIndex(g.In[e.To], int32(ei))
	e.Removed = true
	g.topoGen++
	g.markDirty(e.To, e.From)
	return nil
}

// RetargetIO redeclares the graph's input and output ports. Old and new
// endpoint vertices are seeded dirty in both directions so an incremental
// state re-bases its arrival sources and required sinks.
func (g *Graph) RetargetIO(inputs, outputs []int, inNames, outNames []string) error {
	// Validate everything — including what SetIO would reject — before
	// marking any seed dirty, so a failed edit leaves no metadata behind.
	if len(inputs) != len(inNames) || len(outputs) != len(outNames) {
		return fmt.Errorf("timing: port name count mismatch (%d inputs / %d names, %d outputs / %d names)",
			len(inputs), len(inNames), len(outputs), len(outNames))
	}
	for _, v := range inputs {
		if v < 0 || v >= g.NumVerts {
			return fmt.Errorf("timing: input vertex %d out of range", v)
		}
	}
	for _, v := range outputs {
		if v < 0 || v >= g.NumVerts {
			return fmt.Errorf("timing: output vertex %d out of range", v)
		}
	}
	for _, v := range g.Inputs {
		g.markDirty(v, -1)
	}
	for _, v := range g.Outputs {
		g.markDirty(-1, v)
	}
	if err := g.SetIO(inputs, outputs, inNames, outNames); err != nil {
		return err
	}
	for _, v := range g.Inputs {
		g.markDirty(v, -1)
	}
	for _, v := range g.Outputs {
		g.markDirty(-1, v)
	}
	g.dirtyIO = true
	return nil
}

// reaches reports whether dst is reachable from src along Out edges — the
// cycle check of AddEdgeLive, run before any mutation.
func (g *Graph) reaches(src, dst int) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, g.NumVerts)
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range g.Out[v] {
			to := g.Edges[ei].To
			if to == dst {
				return true
			}
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}

// dropEdgeIndex removes one edge index from an adjacency list in place,
// preserving the order of the remaining entries (contribution order is part
// of the numerical contract).
func dropEdgeIndex(list []int32, ei int32) []int32 {
	for k, v := range list {
		if v == ei {
			return append(list[:k], list[k+1:]...)
		}
	}
	return list
}
