package timing

import (
	"errors"
	"fmt"

	"repro/internal/canon"
)

// ArrivalAll propagates arrival times from all inputs simultaneously (every
// input at time zero) and returns the arrival form per vertex. Vertices not
// reachable from any input have a nil entry.
func (g *Graph) ArrivalAll() ([]*canon.Form, error) {
	return g.arrivalFrom(g.Inputs)
}

// ArrivalFrom propagates arrival times exclusively from one input vertex
// (paper Section IV-B: arrival "exclusively from vi"). Unreachable vertices
// are nil.
func (g *Graph) ArrivalFrom(src int) ([]*canon.Form, error) {
	return g.arrivalFrom([]int{src})
}

func (g *Graph) arrivalFrom(sources []int) ([]*canon.Form, error) {
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	arr := make([]*canon.Form, g.NumVerts)
	for _, s := range sources {
		if s < 0 || s >= g.NumVerts {
			return nil, fmt.Errorf("timing: source vertex %d out of range", s)
		}
		arr[s] = g.Space.Const(0)
	}
	scratch := g.Space.NewForm()
	for _, v := range order {
		av := arr[v]
		if av == nil {
			continue
		}
		for _, ei := range g.Out[v] {
			e := &g.Edges[ei]
			canon.AddInto(scratch, av, e.Delay)
			if cur := arr[e.To]; cur == nil {
				arr[e.To] = scratch.Clone()
			} else {
				canon.MaxInto(cur, cur, scratch)
			}
		}
	}
	return arr, nil
}

// DelayToOutput computes, for every vertex, the maximum statistical delay
// from that vertex to the given output vertex — the negated required time
// of the paper's eq. 15 when the required time at the output is zero.
// Vertices that cannot reach the output are nil.
func (g *Graph) DelayToOutput(out int) ([]*canon.Form, error) {
	if out < 0 || out >= g.NumVerts {
		return nil, fmt.Errorf("timing: output vertex %d out of range", out)
	}
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	req := make([]*canon.Form, g.NumVerts)
	req[out] = g.Space.Const(0)
	scratch := g.Space.NewForm()
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, ei := range g.Out[v] {
			e := &g.Edges[ei]
			rt := req[e.To]
			if rt == nil {
				continue
			}
			canon.AddInto(scratch, rt, e.Delay)
			if cur := req[v]; cur == nil {
				req[v] = scratch.Clone()
			} else {
				canon.MaxInto(cur, cur, scratch)
			}
		}
	}
	return req, nil
}

// MaxDelay returns the statistical maximum delay over all outputs with all
// inputs arriving at time zero — the circuit delay distribution.
func (g *Graph) MaxDelay() (*canon.Form, error) {
	arr, err := g.ArrivalAll()
	if err != nil {
		return nil, err
	}
	var forms []*canon.Form
	for _, o := range g.Outputs {
		if arr[o] != nil {
			forms = append(forms, arr[o])
		}
	}
	if len(forms) == 0 {
		return nil, errors.New("timing: no output reachable from any input")
	}
	return canon.MaxAll(forms)
}

// AllPairs holds the maximum input-output delay forms M_ij (paper eq. 12).
// M[i][j] is nil when output j is not reachable from input i.
type AllPairs struct {
	Inputs  []int
	Outputs []int
	M       [][]*canon.Form
}

// AllPairsDelays computes the full delay matrix with one exclusive forward
// propagation per input (Sapatnekar's all-pairs scheme), fanning the passes
// out over `workers` goroutines (<=0 means GOMAXPROCS).
func (g *Graph) AllPairsDelays(workers int) (*AllPairs, error) {
	if _, err := g.Order(); err != nil {
		return nil, err
	}
	ap := &AllPairs{
		Inputs:  append([]int(nil), g.Inputs...),
		Outputs: append([]int(nil), g.Outputs...),
		M:       make([][]*canon.Form, len(g.Inputs)),
	}
	err := ParallelFor(len(g.Inputs), workers, func(i int) error {
		arr, err := g.ArrivalFrom(g.Inputs[i])
		if err != nil {
			return err
		}
		row := make([]*canon.Form, len(g.Outputs))
		for j, o := range g.Outputs {
			row[j] = arr[o]
		}
		ap.M[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ap, nil
}

// Reachability returns per-vertex bitsets marking which inputs reach each
// vertex (forward) — used to prune criticality work.
func (g *Graph) Reachability() (fromInput [][]uint64, toOutput [][]uint64, err error) {
	order, err := g.Order()
	if err != nil {
		return nil, nil, err
	}
	wIn := (len(g.Inputs) + 63) / 64
	wOut := (len(g.Outputs) + 63) / 64
	fromInput = make([][]uint64, g.NumVerts)
	toOutput = make([][]uint64, g.NumVerts)
	for v := 0; v < g.NumVerts; v++ {
		fromInput[v] = make([]uint64, wIn)
		toOutput[v] = make([]uint64, wOut)
	}
	for i, in := range g.Inputs {
		fromInput[in][i/64] |= 1 << uint(i%64)
	}
	for _, v := range order {
		fv := fromInput[v]
		for _, ei := range g.Out[v] {
			tv := fromInput[g.Edges[ei].To]
			for w := range fv {
				tv[w] |= fv[w]
			}
		}
	}
	for j, out := range g.Outputs {
		toOutput[out][j/64] |= 1 << uint(j%64)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		tv := toOutput[v]
		for _, ei := range g.In[v] {
			sv := toOutput[g.Edges[ei].From]
			for w := range tv {
				sv[w] |= tv[w]
			}
		}
	}
	return fromInput, toOutput, nil
}
