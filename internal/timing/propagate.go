package timing

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/canon"
)

// Pass is a reusable propagation arena: one flat canon.Bank with a slot per
// vertex plus one scratch slot, and a per-vertex reached mask. A forward
// (Arrivals) or backward (Required) pass writes its result forms into the
// bank in place, so a full pass over the graph performs no per-vertex
// allocations — the paper's all-pairs extraction scheme (eq. 12) runs one
// such pass per input, and pooled passes make that loop allocation-free.
//
// Acquire with Graph.AcquirePass, give it back with Release. A Pass is
// bound to the graph that created it and is not safe for concurrent use;
// concurrent workers each acquire their own. Backing slabs are recycled
// through a global pool, so both repeated passes over one graph (the
// all-pairs workers) and passes over a stream of fresh graphs (the
// hierarchical engine, the batch scheduler) stay at O(1) allocations —
// and reused slabs are never re-zeroed.
type Pass struct {
	g     *Graph
	bank  *canon.Bank
	reach []bool
	// ctx, when set via WithContext, is polled every ctxCheckStride
	// vertices during Arrivals/Required so a long pass observes
	// cancellation between vertices instead of running to completion.
	ctx context.Context
}

// ctxCheckStride is how many vertices a pass processes between context
// polls: frequent enough for sub-millisecond cancellation latency on any
// realistic graph, rare enough that the atomic load never shows up in
// profiles.
const ctxCheckStride = 256

// WithContext attaches a cancellation context to the pass and returns it.
// A nil ctx (the AcquirePass default) disables polling entirely.
func (p *Pass) WithContext(ctx context.Context) *Pass {
	p.ctx = ctx
	return p
}

// stepCtx polls a (possibly nil) context on stride boundaries.
func stepCtx(ctx context.Context, step int) error {
	if ctx != nil && step%ctxCheckStride == 0 {
		return ctx.Err()
	}
	return nil
}

// The pass pools are global so arena slabs outlive individual graphs: a
// flow that builds a fresh top-level graph per analysis (the hierarchical
// engine, the batch scheduler) still recycles the same storage instead of
// allocating and zeroing megabyte slabs each time. Slab contents are never
// zeroed on reuse — every kernel fully overwrites its destination slot and
// the reach mask is reset at the start of each pass.
var (
	passSlabPool = sync.Pool{} // *[]float64 — bank backing storage
	passMaskPool = sync.Pool{} // *[]bool   — reach masks
)

// AcquirePass returns a propagation arena for the graph, recycling pooled
// storage when available.
func (g *Graph) AcquirePass() *Pass {
	var slab []float64
	if s, ok := passSlabPool.Get().(*[]float64); ok {
		slab = *s
	}
	var mask []bool
	if m, ok := passMaskPool.Get().(*[]bool); ok && cap(*m) >= g.NumVerts {
		mask = (*m)[:g.NumVerts]
	} else {
		mask = make([]bool, g.NumVerts)
	}
	return &Pass{
		g:     g,
		bank:  canon.NewBankOver(g.Space, g.NumVerts+1, slab),
		reach: mask,
	}
}

// Release returns the pass's storage to the pool. The pass and every View
// obtained from it must not be used afterwards.
func (p *Pass) Release() {
	slab, mask := p.bank.Data(), p.reach
	passSlabPool.Put(&slab)
	passMaskPool.Put(&mask)
	p.bank, p.reach, p.ctx = nil, nil, nil
}

// Reached reports whether the last pass reached vertex v.
func (p *Pass) Reached(v int) bool { return p.reach[v] }

// At returns the flat view of vertex v's form from the last pass. The
// contents are meaningful only when Reached(v); the view is invalidated by
// the next pass or Release.
func (p *Pass) At(v int) canon.View { return p.bank.View(v) }

// Scratch returns the pass's spare slot — free for caller-side folds (e.g.
// a running max over outputs) between passes.
func (p *Pass) Scratch() canon.View { return p.bank.View(p.g.NumVerts) }

// Form materializes vertex v's form from the last pass, or nil when the
// pass did not reach v.
func (p *Pass) Form(v int) *canon.Form {
	if !p.reach[v] {
		return nil
	}
	return p.bank.View(v).Form(p.g.Space)
}

// Forms materializes the whole pass as a per-vertex pointer-form slice with
// nil entries for unreached vertices — the pointer-based API shape.
func (p *Pass) Forms() []*canon.Form {
	out := make([]*canon.Form, p.g.NumVerts)
	for v := range out {
		if p.reach[v] {
			out[v] = p.bank.View(v).Form(p.g.Space)
		}
	}
	return out
}

// delaySource decides where a pass reads edge delays from. A graph's first
// pass reads the pointer forms directly — building the flat bank costs one
// extra sweep over every edge and only pays off when passes repeat (the
// all-pairs scheme, criticality, repeated queries). From the second pass on
// the cached flat bank is used. Both paths perform identical floating-point
// operations, so the choice never changes results.
func (p *Pass) delaySource() *canon.Bank {
	g := p.g
	if g.passes.Add(1) > 1 || g.hasDelayBank() {
		return g.EdgeDelays()
	}
	return nil
}

func (g *Graph) hasDelayBank() bool {
	g.delayMu.Lock()
	defer g.delayMu.Unlock()
	return g.delayBank != nil
}

// Arrivals runs a forward propagation from the given source vertices (all
// arriving at time zero) into the pass arena. With a single source this is
// the paper's exclusive propagation ("arrival exclusively from vi",
// Section IV-B).
func (p *Pass) Arrivals(sources ...int) error {
	return forwardPass(p.g, p.bank, p.reach, p.delaySource(), p.ctx, sources)
}

// forwardPass is the forward propagation kernel shared by pooled passes and
// the persistent incremental state: arrivals are written into bank (slot
// g.NumVerts is scratch) with the per-vertex reach mask. A nil delays bank
// reads the pointer forms directly (a graph's first pass, before the flat
// bank is built); both paths perform identical floating-point operations.
func forwardPass(g *Graph, bank *canon.Bank, reach []bool, delays *canon.Bank, ctx context.Context, sources []int) error {
	order, err := g.Order()
	if err != nil {
		return err
	}
	for i := range reach {
		reach[i] = false
	}
	for _, s := range sources {
		if s < 0 || s >= g.NumVerts {
			return fmt.Errorf("timing: source vertex %d out of range", s)
		}
		bank.View(s).SetConst(0)
		reach[s] = true
	}
	scratch := bank.View(g.NumVerts)
	for step, v := range order {
		if err := stepCtx(ctx, step); err != nil {
			return err
		}
		if !reach[v] {
			continue
		}
		av := bank.View(v)
		for _, ei := range g.Out[v] {
			to := g.Edges[ei].To
			if delays != nil {
				canon.AddViews(scratch, av, delays.View(int(ei)))
			} else {
				canon.AddFormView(scratch, av, g.Edges[ei].Delay)
			}
			tv := bank.View(to)
			if !reach[to] {
				canon.CopyView(tv, scratch)
				reach[to] = true
			} else {
				canon.MaxViews(tv, tv, scratch)
			}
		}
	}
	return nil
}

// ArrivalsOver runs the forward propagation reading edge delays from the
// given bank instead of the graph's own — the MCMM sweep hook: one shared
// graph, many scenario-scaled delay banks, each propagated through the same
// kernel. The bank must hold one slot per edge index (tombstoned slots are
// never read) in the graph's space; it is read-only during the pass.
func (p *Pass) ArrivalsOver(delays *canon.Bank, sources ...int) error {
	if delays == nil {
		return errors.New("timing: ArrivalsOver needs a delay bank")
	}
	if delays.Cap() < len(p.g.Edges) {
		return fmt.Errorf("timing: delay bank has %d slots for %d edges", delays.Cap(), len(p.g.Edges))
	}
	return forwardPass(p.g, p.bank, p.reach, delays, p.ctx, sources)
}

// RequiredOver mirrors ArrivalsOver for backward propagation.
func (p *Pass) RequiredOver(delays *canon.Bank, outputs ...int) error {
	if delays == nil {
		return errors.New("timing: RequiredOver needs a delay bank")
	}
	if delays.Cap() < len(p.g.Edges) {
		return fmt.Errorf("timing: delay bank has %d slots for %d edges", delays.Cap(), len(p.g.Edges))
	}
	return backwardPass(p.g, p.bank, p.reach, delays, p.ctx, outputs)
}

// Required runs a backward propagation into the pass arena: after it, At(v)
// holds the maximum statistical delay from v to any of the given output
// vertices — the negated required time of the paper's eq. 15 when the
// required time at the outputs is zero.
func (p *Pass) Required(outputs ...int) error {
	return backwardPass(p.g, p.bank, p.reach, p.delaySource(), p.ctx, outputs)
}

// backwardPass is the backward propagation kernel shared by pooled passes
// and the persistent incremental state (see forwardPass).
func backwardPass(g *Graph, bank *canon.Bank, reach []bool, delays *canon.Bank, ctx context.Context, outputs []int) error {
	order, err := g.Order()
	if err != nil {
		return err
	}
	for i := range reach {
		reach[i] = false
	}
	for _, o := range outputs {
		if o < 0 || o >= g.NumVerts {
			return fmt.Errorf("timing: output vertex %d out of range", o)
		}
		bank.View(o).SetConst(0)
		reach[o] = true
	}
	scratch := bank.View(g.NumVerts)
	for i := len(order) - 1; i >= 0; i-- {
		if err := stepCtx(ctx, len(order)-1-i); err != nil {
			return err
		}
		v := order[i]
		vv := bank.View(v)
		for _, ei := range g.Out[v] {
			to := g.Edges[ei].To
			if !reach[to] {
				continue
			}
			if delays != nil {
				canon.AddViews(scratch, bank.View(to), delays.View(int(ei)))
			} else {
				canon.AddFormView(scratch, bank.View(to), g.Edges[ei].Delay)
			}
			if !reach[v] {
				canon.CopyView(vv, scratch)
				reach[v] = true
			} else {
				canon.MaxViews(vv, vv, scratch)
			}
		}
	}
	return nil
}

// ArrivalAll propagates arrival times from all inputs simultaneously (every
// input at time zero) and returns the arrival form per vertex. Vertices not
// reachable from any input have a nil entry.
func (g *Graph) ArrivalAll() ([]*canon.Form, error) {
	return g.arrivalForms(g.Inputs)
}

// ArrivalFrom propagates arrival times exclusively from one input vertex
// (paper Section IV-B: arrival "exclusively from vi"). Unreachable vertices
// are nil.
func (g *Graph) ArrivalFrom(src int) ([]*canon.Form, error) {
	return g.arrivalForms([]int{src})
}

func (g *Graph) arrivalForms(sources []int) ([]*canon.Form, error) {
	p := g.AcquirePass()
	defer p.Release()
	if err := p.Arrivals(sources...); err != nil {
		return nil, err
	}
	return p.Forms(), nil
}

// DelayToOutput computes, for every vertex, the maximum statistical delay
// from that vertex to the given output vertex. Vertices that cannot reach
// the output are nil.
func (g *Graph) DelayToOutput(out int) ([]*canon.Form, error) {
	p := g.AcquirePass()
	defer p.Release()
	if err := p.Required(out); err != nil {
		return nil, err
	}
	return p.Forms(), nil
}

// MaxDelay returns the statistical maximum delay over all outputs with all
// inputs arriving at time zero — the circuit delay distribution. The fold
// over outputs runs in the pass arena, so the whole computation allocates
// only the returned form.
func (g *Graph) MaxDelay() (*canon.Form, error) {
	return g.MaxDelayCtx(nil)
}

// MaxDelayCtx is MaxDelay with cooperative cancellation: the forward pass
// polls ctx between vertices and returns its error once it fires. A nil
// ctx disables polling (MaxDelay calls through with nil).
func (g *Graph) MaxDelayCtx(ctx context.Context) (*canon.Form, error) {
	p := g.AcquirePass().WithContext(ctx)
	defer p.Release()
	if err := p.Arrivals(g.Inputs...); err != nil {
		return nil, err
	}
	acc := p.Scratch()
	first := true
	for _, o := range g.Outputs {
		if !p.Reached(o) {
			continue
		}
		if first {
			canon.CopyView(acc, p.At(o))
			first = false
		} else {
			canon.MaxViews(acc, acc, p.At(o))
		}
	}
	if first {
		return nil, errors.New("timing: no output reachable from any input")
	}
	return acc.Form(g.Space), nil
}

// AllPairs holds the maximum input-output delay forms M_ij (paper eq. 12).
// M[i][j] is nil when output j is not reachable from input i.
type AllPairs struct {
	Inputs  []int
	Outputs []int
	M       [][]*canon.Form
}

// AllPairsDelays computes the full delay matrix with one exclusive forward
// propagation per input (Sapatnekar's all-pairs scheme), fanning the passes
// out over `workers` goroutines (<=0 means GOMAXPROCS). Each pass runs in a
// pooled arena, so the per-input cost allocates only the output row.
func (g *Graph) AllPairsDelays(workers int) (*AllPairs, error) {
	if _, err := g.Order(); err != nil {
		return nil, err
	}
	g.EdgeDelays() // build the flat delay bank before fanning out
	ap := &AllPairs{
		Inputs:  exactInts(g.Inputs),
		Outputs: exactInts(g.Outputs),
		M:       make([][]*canon.Form, len(g.Inputs)),
	}
	err := ParallelFor(len(g.Inputs), workers, func(i int) error {
		p := g.AcquirePass()
		defer p.Release()
		if err := p.Arrivals(g.Inputs[i]); err != nil {
			return err
		}
		row := make([]*canon.Form, len(g.Outputs))
		for j, o := range g.Outputs {
			row[j] = p.Form(o)
		}
		ap.M[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ap, nil
}

// Reachability returns per-vertex bitsets marking which inputs reach each
// vertex (forward) — used to prune criticality work.
func (g *Graph) Reachability() (fromInput [][]uint64, toOutput [][]uint64, err error) {
	order, err := g.Order()
	if err != nil {
		return nil, nil, err
	}
	wIn := (len(g.Inputs) + 63) / 64
	wOut := (len(g.Outputs) + 63) / 64
	fromInput = make([][]uint64, g.NumVerts)
	toOutput = make([][]uint64, g.NumVerts)
	for v := 0; v < g.NumVerts; v++ {
		fromInput[v] = make([]uint64, wIn)
		toOutput[v] = make([]uint64, wOut)
	}
	for i, in := range g.Inputs {
		fromInput[in][i/64] |= 1 << uint(i%64)
	}
	for _, v := range order {
		fv := fromInput[v]
		for _, ei := range g.Out[v] {
			tv := fromInput[g.Edges[ei].To]
			for w := range fv {
				tv[w] |= fv[w]
			}
		}
	}
	for j, out := range g.Outputs {
		toOutput[out][j/64] |= 1 << uint(j%64)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		tv := toOutput[v]
		for _, ei := range g.In[v] {
			sv := toOutput[g.Edges[ei].From]
			for w := range tv {
				sv[w] |= tv[w]
			}
		}
	}
	return fromInput, toOutput, nil
}

// exactInts copies a slice with exact capacity (append-to-nil rounds up).
func exactInts(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}
