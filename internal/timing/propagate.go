package timing

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/canon"
)

// Pass is a reusable propagation arena: one flat canon.Bank with a slot per
// vertex plus one scratch slot, and a per-vertex reached mask. A forward
// (Arrivals) or backward (Required) pass writes its result forms into the
// bank in place, so a full pass over the graph performs no per-vertex
// allocations — the paper's all-pairs extraction scheme (eq. 12) runs one
// such pass per input, and pooled passes make that loop allocation-free.
//
// Acquire with Graph.AcquirePass, give it back with Release. A Pass is
// bound to the graph that created it and is not safe for concurrent use;
// concurrent workers each acquire their own. Backing slabs are recycled
// through a global pool, so both repeated passes over one graph (the
// all-pairs workers) and passes over a stream of fresh graphs (the
// hierarchical engine, the batch scheduler) stay at O(1) allocations —
// and reused slabs are never re-zeroed.
type Pass struct {
	g     *Graph
	bank  *canon.Bank
	reach []bool
	// ctx, when set via WithContext, is polled every ctxCheckStride
	// vertices during Arrivals/Required so a long pass observes
	// cancellation between vertices instead of running to completion.
	ctx context.Context
	// workers > 1 selects the intra-level parallel wavefront kernels; see
	// WithWorkers. Zero (the AcquirePass default) runs serially.
	workers int
}

// ctxCheckStride is how many vertices a pass processes between context
// polls: frequent enough for sub-millisecond cancellation latency on any
// realistic graph, rare enough that the atomic load never shows up in
// profiles.
const ctxCheckStride = 256

// WithContext attaches a cancellation context to the pass and returns it.
// A nil ctx (the AcquirePass default) disables polling entirely.
func (p *Pass) WithContext(ctx context.Context) *Pass {
	p.ctx = ctx
	return p
}

// WithWorkers selects intra-level parallel propagation: each level of the
// graph's wavefront structure (Graph.Levels) is fanned out over a bounded
// ParallelForCtx pool, with per-worker scratch and a fan-in gather order
// that reproduces the serial pass bit for bit (see Levels.FaninSorted).
// n <= 0 selects GOMAXPROCS; n == 1 restores the serial kernel. Wide,
// shallow graphs benefit; on narrow levels the pass drops back to the
// serial kernel per level, so results never depend on the worker count.
func (p *Pass) WithWorkers(n int) *Pass {
	p.workers = Workers(n, 1<<30)
	return p
}

// stepCtx polls a (possibly nil) context on stride boundaries.
func stepCtx(ctx context.Context, step int) error {
	if ctx != nil && step%ctxCheckStride == 0 {
		return ctx.Err()
	}
	return nil
}

// The pass pools are global so arena slabs outlive individual graphs: a
// flow that builds a fresh top-level graph per analysis (the hierarchical
// engine, the batch scheduler) still recycles the same storage instead of
// allocating and zeroing megabyte slabs each time. Slab contents are never
// zeroed on reuse — every kernel fully overwrites its destination slot and
// the reach mask is reset at the start of each pass.
//
// Each pool is split into power-of-two size classes: a Get from class c
// always yields capacity >= 1<<c, so a workload mixing graph sizes recycles
// storage instead of dropping undersized buffers on the floor (small-graph
// slabs no longer collide with big-graph requests and vice versa).
const passPoolClasses = 28

var (
	passSlabPools [passPoolClasses]sync.Pool // *[]float64 — bank backing storage
	passMaskPools [passPoolClasses]sync.Pool // *[]bool    — reach masks
)

// poolClass maps a required capacity to the smallest class whose buffers
// can hold it: class c holds buffers with capacity >= 1<<c.
func poolClass(need int) int {
	if need <= 1 {
		return 0
	}
	return bits.Len(uint(need - 1))
}

// takeSlab returns a float64 buffer with capacity >= need from the pool,
// allocating a class-sized one on a miss. need above the largest class is
// served unpooled.
func takeSlab(need int) []float64 {
	c := poolClass(need)
	if c >= passPoolClasses {
		return make([]float64, need)
	}
	if s, ok := passSlabPools[c].Get().(*[]float64); ok {
		return *s
	}
	return make([]float64, 1<<c)
}

// putSlab recycles a buffer into the class it can serve: the largest c with
// 1<<c <= cap, so every future Get from that class fits. Oversized buffers
// (beyond the class table) are dropped.
func putSlab(s []float64) {
	if cap(s) == 0 {
		return
	}
	c := bits.Len(uint(cap(s))) - 1
	if c >= passPoolClasses {
		return
	}
	passSlabPools[c].Put(&s)
}

// takeMask and putMask mirror takeSlab/putSlab for reach masks.
func takeMask(need int) []bool {
	c := poolClass(need)
	if c >= passPoolClasses {
		return make([]bool, need)
	}
	if m, ok := passMaskPools[c].Get().(*[]bool); ok {
		return (*m)[:need]
	}
	return make([]bool, 1<<c)[:need]
}

func putMask(m []bool) {
	if cap(m) == 0 {
		return
	}
	c := bits.Len(uint(cap(m))) - 1
	if c >= passPoolClasses {
		return
	}
	passMaskPools[c].Put(&m)
}

// AcquirePass returns a propagation arena for the graph, recycling pooled
// storage when available.
func (g *Graph) AcquirePass() *Pass {
	return &Pass{
		g:     g,
		bank:  canon.NewBankOver(g.Space, g.NumVerts+1, takeSlab((g.NumVerts+1)*g.Space.Stride())),
		reach: takeMask(g.NumVerts),
	}
}

// Release returns the pass's storage to the pool. The pass and every View
// obtained from it must not be used afterwards.
func (p *Pass) Release() {
	putSlab(p.bank.Data())
	putMask(p.reach)
	p.bank, p.reach, p.ctx = nil, nil, nil
}

// Reached reports whether the last pass reached vertex v.
func (p *Pass) Reached(v int) bool { return p.reach[v] }

// At returns the flat view of vertex v's form from the last pass. The
// contents are meaningful only when Reached(v); the view is invalidated by
// the next pass or Release.
func (p *Pass) At(v int) canon.View { return p.bank.View(v) }

// Scratch returns the pass's spare slot — free for caller-side folds (e.g.
// a running max over outputs) between passes.
func (p *Pass) Scratch() canon.View { return p.bank.View(p.g.NumVerts) }

// Form materializes vertex v's form from the last pass, or nil when the
// pass did not reach v.
func (p *Pass) Form(v int) *canon.Form {
	if !p.reach[v] {
		return nil
	}
	return p.bank.View(v).Form(p.g.Space)
}

// Forms materializes the whole pass as a per-vertex pointer-form slice with
// nil entries for unreached vertices — the pointer-based API shape.
func (p *Pass) Forms() []*canon.Form {
	out := make([]*canon.Form, p.g.NumVerts)
	for v := range out {
		if p.reach[v] {
			out[v] = p.bank.View(v).Form(p.g.Space)
		}
	}
	return out
}

// delaySource decides where a pass reads edge delays from. A graph's first
// pass reads the pointer forms directly — building the flat bank costs one
// extra sweep over every edge and only pays off when passes repeat (the
// all-pairs scheme, criticality, repeated queries). From the second pass on
// the cached flat bank is used. Both paths perform identical floating-point
// operations, so the choice never changes results.
func (p *Pass) delaySource() *canon.Bank {
	g := p.g
	if g.passes.Add(1) > 1 || g.hasDelayBank() {
		return g.EdgeDelays()
	}
	return nil
}

func (g *Graph) hasDelayBank() bool {
	g.delayMu.Lock()
	defer g.delayMu.Unlock()
	return g.delayBank != nil
}

// Arrivals runs a forward propagation from the given source vertices (all
// arriving at time zero) into the pass arena. With a single source this is
// the paper's exclusive propagation ("arrival exclusively from vi",
// Section IV-B).
func (p *Pass) Arrivals(sources ...int) error {
	if p.workers > 1 {
		delays := p.delaySource()
		if delays == nil {
			delays = p.g.EdgeDelays()
		}
		return forwardPassParallel(p.g, p.bank, p.reach, delays, p.ctx, sources, p.workers)
	}
	return forwardPass(p.g, p.bank, p.reach, p.delaySource(), p.ctx, sources)
}

// seedSources resets the reach mask and seeds the given vertices at time
// zero — the shared preamble of every propagation kernel. The kind string
// names the vertex role in range errors ("source" or "output").
func seedSources(g *Graph, bank *canon.Bank, reach []bool, seeds []int, kind string) error {
	for i := range reach {
		reach[i] = false
	}
	for _, s := range seeds {
		if s < 0 || s >= g.NumVerts {
			return fmt.Errorf("timing: %s vertex %d out of range", kind, s)
		}
		bank.View(s).SetConst(0)
		reach[s] = true
	}
	return nil
}

// forwardPass is the serial forward propagation kernel shared by pooled
// passes and the persistent incremental state: arrivals are written into
// bank (slot g.NumVerts is scratch) with the per-vertex reach mask. A nil
// delays bank reads the pointer forms directly (a graph's first pass,
// before the flat bank is built); both paths perform identical
// floating-point operations.
//
// Vertices are visited in level-batched wavefronts when the cached
// topological order is level-monotone — the same visit sequence as the
// plain order loop, with the per-level bounds hoisted out of the hot loop —
// and in plain topological order otherwise, so the contribution order at
// every vertex is the same either way.
func forwardPass(g *Graph, bank *canon.Bank, reach []bool, delays *canon.Bank, ctx context.Context, sources []int) error {
	lv, err := g.Levels()
	if err != nil {
		return err
	}
	if err := seedSources(g, bank, reach, sources, "source"); err != nil {
		return err
	}
	scratch := bank.View(g.NumVerts)
	edges, out := g.Edges, g.Out
	push := func(v int) {
		if !reach[v] {
			return
		}
		av := bank.View(v)
		for _, ei := range out[v] {
			to := edges[ei].To
			if delays != nil {
				canon.AddViews(scratch, av, delays.View(int(ei)))
			} else {
				canon.AddFormView(scratch, av, edges[ei].Delay)
			}
			tv := bank.View(to)
			if !reach[to] {
				canon.CopyView(tv, scratch)
				reach[to] = true
			} else {
				canon.MaxViews(tv, tv, scratch)
			}
		}
	}
	if lv.Monotone {
		step := 0
		for k := 0; k <= lv.MaxLevel; k++ {
			wave := lv.Wave[lv.Starts[k]:lv.Starts[k+1]]
			for _, vi := range wave {
				if err := stepCtx(ctx, step); err != nil {
					return err
				}
				step++
				push(int(vi))
			}
		}
		return nil
	}
	order, err := g.Order()
	if err != nil {
		return err
	}
	for step, v := range order {
		if err := stepCtx(ctx, step); err != nil {
			return err
		}
		push(v)
	}
	return nil
}

// parallelLevelMin is the minimum wavefront width (per worker) worth
// fanning out: below it the per-level pool coordination costs more than
// the gather work and the level runs on the serial kernel instead. The
// choice never affects results — gather order is fixed per vertex.
const parallelLevelMin = 4

// forwardPassParallel is the intra-level parallel forward kernel: levels
// run in sequence, vertices within a level gather their fan-in
// concurrently. Gathering folds each vertex's fan-in sorted by source
// topological position — exactly the order in which the serial push kernel
// delivers contributions (In[v] cannot see them in any other relative
// order: addEdge appends to every adjacency list in one global sequence) —
// so the result is bit-identical to forwardPass regardless of worker count
// or intra-level scheduling.
func forwardPassParallel(g *Graph, bank *canon.Bank, reach []bool, delays *canon.Bank, ctx context.Context, sources []int, workers int) error {
	if ctx == nil {
		ctx = context.Background() // ParallelForCtx needs a non-nil parent
	}
	lv, err := g.Levels()
	if err != nil {
		return err
	}
	if err := seedSources(g, bank, reach, sources, "source"); err != nil {
		return err
	}
	stride := g.Space.Stride()
	slab := takeSlab(workers * stride)
	defer putSlab(slab)
	tmps := canon.NewBankOver(g.Space, workers, slab)

	gather := func(v int, tmp canon.View) {
		av := bank.View(v)
		// At gather time reach[v] is true only for pre-seeded sources, whose
		// slot already holds the zero-time constant; contributions fold on
		// top of it, exactly as the push kernel would.
		reached := reach[v]
		for _, ei := range lv.FaninSorted(v) {
			e := &g.Edges[ei]
			if !reach[e.From] {
				continue
			}
			canon.AddViews(tmp, bank.View(e.From), delays.View(int(ei)))
			if !reached {
				canon.CopyView(av, tmp)
				reached = true
			} else {
				canon.MaxViews(av, av, tmp)
			}
		}
		reach[v] = reached
	}

	for k := 1; k <= lv.MaxLevel; k++ {
		wave := lv.Wave[lv.Starts[k]:lv.Starts[k+1]]
		n := len(wave)
		chunks := workers
		if n < chunks*parallelLevelMin {
			if err := stepCtx(ctx, 0); err != nil {
				return err
			}
			tmp := tmps.View(0)
			for _, vi := range wave {
				gather(int(vi), tmp)
			}
			continue
		}
		err := ParallelForCtx(ctx, chunks, chunks, func(_ context.Context, c int) error {
			tmp := tmps.View(c)
			for _, vi := range wave[n*c/chunks : n*(c+1)/chunks] {
				gather(int(vi), tmp)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ArrivalsOver runs the forward propagation reading edge delays from the
// given bank instead of the graph's own — the MCMM sweep hook: one shared
// graph, many scenario-scaled delay banks, each propagated through the same
// kernel. The bank must hold one slot per edge index (tombstoned slots are
// never read) in the graph's space; it is read-only during the pass.
func (p *Pass) ArrivalsOver(delays *canon.Bank, sources ...int) error {
	if delays == nil {
		return errors.New("timing: ArrivalsOver needs a delay bank")
	}
	if delays.Cap() < len(p.g.Edges) {
		return fmt.Errorf("timing: delay bank has %d slots for %d edges", delays.Cap(), len(p.g.Edges))
	}
	if p.workers > 1 {
		return forwardPassParallel(p.g, p.bank, p.reach, delays, p.ctx, sources, p.workers)
	}
	return forwardPass(p.g, p.bank, p.reach, delays, p.ctx, sources)
}

// RequiredOver mirrors ArrivalsOver for backward propagation.
func (p *Pass) RequiredOver(delays *canon.Bank, outputs ...int) error {
	if delays == nil {
		return errors.New("timing: RequiredOver needs a delay bank")
	}
	if delays.Cap() < len(p.g.Edges) {
		return fmt.Errorf("timing: delay bank has %d slots for %d edges", delays.Cap(), len(p.g.Edges))
	}
	if p.workers > 1 {
		return backwardPassParallel(p.g, p.bank, p.reach, delays, p.ctx, outputs, p.workers)
	}
	return backwardPass(p.g, p.bank, p.reach, delays, p.ctx, outputs)
}

// Required runs a backward propagation into the pass arena: after it, At(v)
// holds the maximum statistical delay from v to any of the given output
// vertices — the negated required time of the paper's eq. 15 when the
// required time at the outputs is zero.
func (p *Pass) Required(outputs ...int) error {
	if p.workers > 1 {
		delays := p.delaySource()
		if delays == nil {
			delays = p.g.EdgeDelays()
		}
		return backwardPassParallel(p.g, p.bank, p.reach, delays, p.ctx, outputs, p.workers)
	}
	return backwardPass(p.g, p.bank, p.reach, p.delaySource(), p.ctx, outputs)
}

// backwardPass is the serial backward propagation kernel shared by pooled
// passes and the persistent incremental state (see forwardPass). The
// backward kernel is already a per-vertex gather over Out[v], so the
// wavefront batching changes only the visit grouping, never the
// contribution order.
func backwardPass(g *Graph, bank *canon.Bank, reach []bool, delays *canon.Bank, ctx context.Context, outputs []int) error {
	lv, err := g.Levels()
	if err != nil {
		return err
	}
	if err := seedSources(g, bank, reach, outputs, "output"); err != nil {
		return err
	}
	scratch := bank.View(g.NumVerts)
	gatherOut := func(v int) {
		vv := bank.View(v)
		for _, ei := range g.Out[v] {
			to := g.Edges[ei].To
			if !reach[to] {
				continue
			}
			if delays != nil {
				canon.AddViews(scratch, bank.View(to), delays.View(int(ei)))
			} else {
				canon.AddFormView(scratch, bank.View(to), g.Edges[ei].Delay)
			}
			if !reach[v] {
				canon.CopyView(vv, scratch)
				reach[v] = true
			} else {
				canon.MaxViews(vv, vv, scratch)
			}
		}
	}
	if lv.Monotone {
		step := 0
		for k := lv.MaxLevel; k >= 0; k-- {
			wave := lv.Wave[lv.Starts[k]:lv.Starts[k+1]]
			for i := len(wave) - 1; i >= 0; i-- {
				if err := stepCtx(ctx, step); err != nil {
					return err
				}
				step++
				gatherOut(int(wave[i]))
			}
		}
		return nil
	}
	order, err := g.Order()
	if err != nil {
		return err
	}
	for i := len(order) - 1; i >= 0; i-- {
		if err := stepCtx(ctx, len(order)-1-i); err != nil {
			return err
		}
		gatherOut(order[i])
	}
	return nil
}

// backwardPassParallel fans each level's backward gathers out over a
// bounded pool. The backward kernel gathers over Out[v] in adjacency order
// for both the serial and parallel path, so intra-level scheduling cannot
// change any result bit.
func backwardPassParallel(g *Graph, bank *canon.Bank, reach []bool, delays *canon.Bank, ctx context.Context, outputs []int, workers int) error {
	if ctx == nil {
		ctx = context.Background() // ParallelForCtx needs a non-nil parent
	}
	lv, err := g.Levels()
	if err != nil {
		return err
	}
	if err := seedSources(g, bank, reach, outputs, "output"); err != nil {
		return err
	}
	stride := g.Space.Stride()
	slab := takeSlab(workers * stride)
	defer putSlab(slab)
	tmps := canon.NewBankOver(g.Space, workers, slab)

	gather := func(v int, tmp canon.View) {
		vv := bank.View(v)
		reached := reach[v] // pre-seeded outputs hold the zero constant
		for _, ei := range g.Out[v] {
			to := g.Edges[ei].To
			if !reach[to] {
				continue
			}
			canon.AddViews(tmp, bank.View(to), delays.View(int(ei)))
			if !reached {
				canon.CopyView(vv, tmp)
				reached = true
			} else {
				canon.MaxViews(vv, vv, tmp)
			}
		}
		reach[v] = reached
	}

	for k := lv.MaxLevel - 1; k >= 0; k-- {
		wave := lv.Wave[lv.Starts[k]:lv.Starts[k+1]]
		n := len(wave)
		chunks := workers
		if n < chunks*parallelLevelMin {
			if err := stepCtx(ctx, 0); err != nil {
				return err
			}
			tmp := tmps.View(0)
			for _, vi := range wave {
				gather(int(vi), tmp)
			}
			continue
		}
		err := ParallelForCtx(ctx, chunks, chunks, func(_ context.Context, c int) error {
			tmp := tmps.View(c)
			for _, vi := range wave[n*c/chunks : n*(c+1)/chunks] {
				gather(int(vi), tmp)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ArrivalAll propagates arrival times from all inputs simultaneously (every
// input at time zero) and returns the arrival form per vertex. Vertices not
// reachable from any input have a nil entry.
func (g *Graph) ArrivalAll() ([]*canon.Form, error) {
	return g.arrivalForms(g.Inputs)
}

// ArrivalFrom propagates arrival times exclusively from one input vertex
// (paper Section IV-B: arrival "exclusively from vi"). Unreachable vertices
// are nil.
func (g *Graph) ArrivalFrom(src int) ([]*canon.Form, error) {
	return g.arrivalForms([]int{src})
}

func (g *Graph) arrivalForms(sources []int) ([]*canon.Form, error) {
	p := g.AcquirePass()
	defer p.Release()
	if err := p.Arrivals(sources...); err != nil {
		return nil, err
	}
	return p.Forms(), nil
}

// DelayToOutput computes, for every vertex, the maximum statistical delay
// from that vertex to the given output vertex. Vertices that cannot reach
// the output are nil.
func (g *Graph) DelayToOutput(out int) ([]*canon.Form, error) {
	p := g.AcquirePass()
	defer p.Release()
	if err := p.Required(out); err != nil {
		return nil, err
	}
	return p.Forms(), nil
}

// MaxDelay returns the statistical maximum delay over all outputs with all
// inputs arriving at time zero — the circuit delay distribution. The fold
// over outputs runs in the pass arena, so the whole computation allocates
// only the returned form.
func (g *Graph) MaxDelay() (*canon.Form, error) {
	return g.MaxDelayCtx(nil)
}

// MaxDelayCtx is MaxDelay with cooperative cancellation: the forward pass
// polls ctx between vertices and returns its error once it fires. A nil
// ctx disables polling (MaxDelay calls through with nil). On sequential
// graphs the pass launches from the clock roots as well as the inputs, so
// register-launched logic is covered.
func (g *Graph) MaxDelayCtx(ctx context.Context) (*canon.Form, error) {
	p := g.AcquirePass().WithContext(ctx)
	defer p.Release()
	if err := p.Arrivals(g.LaunchSources()...); err != nil {
		return nil, err
	}
	acc := p.Scratch()
	first := true
	for _, o := range g.Outputs {
		if !p.Reached(o) {
			continue
		}
		if first {
			canon.CopyView(acc, p.At(o))
			first = false
		} else {
			canon.MaxViews(acc, acc, p.At(o))
		}
	}
	if first {
		return nil, errors.New("timing: no output reachable from any input")
	}
	return acc.Form(g.Space), nil
}

// AllPairs holds the maximum input-output delay forms M_ij (paper eq. 12).
// M[i][j] is nil when output j is not reachable from input i.
type AllPairs struct {
	Inputs  []int
	Outputs []int
	M       [][]*canon.Form
}

// AllPairsDelays computes the full delay matrix with one exclusive forward
// propagation per input (Sapatnekar's all-pairs scheme), fanning the passes
// out over `workers` goroutines (<=0 means GOMAXPROCS). Each pass runs in a
// pooled arena, so the per-input cost allocates only the output row.
func (g *Graph) AllPairsDelays(workers int) (*AllPairs, error) {
	if _, err := g.Order(); err != nil {
		return nil, err
	}
	g.EdgeDelays() // build the flat delay bank before fanning out
	ap := &AllPairs{
		Inputs:  exactInts(g.Inputs),
		Outputs: exactInts(g.Outputs),
		M:       make([][]*canon.Form, len(g.Inputs)),
	}
	err := ParallelFor(len(g.Inputs), workers, func(i int) error {
		p := g.AcquirePass()
		defer p.Release()
		if err := p.Arrivals(g.Inputs[i]); err != nil {
			return err
		}
		row := make([]*canon.Form, len(g.Outputs))
		for j, o := range g.Outputs {
			row[j] = p.Form(o)
		}
		ap.M[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ap, nil
}

// ReachSets holds the graph's IO reachability bitsets in two strided
// []uint64 slabs — one FromInput row and one ToOutput row per vertex, each
// a fixed number of words, so building them costs two slab allocations
// instead of two slices per vertex.
type ReachSets struct {
	WIn, WOut int // words per vertex in the respective slab
	fromInput []uint64
	toOutput  []uint64
}

// FromInput returns the bitset of inputs (by position in Graph.Inputs)
// reaching vertex v. The slice aliases the shared slab — treat as read-only.
func (r *ReachSets) FromInput(v int) []uint64 {
	return r.fromInput[v*r.WIn : (v+1)*r.WIn]
}

// ToOutput returns the bitset of outputs (by position in Graph.Outputs)
// reachable from vertex v. Read-only, like FromInput.
func (r *ReachSets) ToOutput(v int) []uint64 {
	return r.toOutput[v*r.WOut : (v+1)*r.WOut]
}

// InputReaches reports whether input position i reaches vertex v.
func (r *ReachSets) InputReaches(i, v int) bool {
	return r.fromInput[v*r.WIn+i/64]&(1<<uint(i%64)) != 0
}

// ReachesOutput reports whether vertex v reaches output position j.
func (r *ReachSets) ReachesOutput(v, j int) bool {
	return r.toOutput[v*r.WOut+j/64]&(1<<uint(j%64)) != 0
}

// Reachability returns per-vertex bitsets marking which inputs reach each
// vertex (forward) and which outputs each vertex reaches (backward) — used
// to prune criticality work. It runs once per extraction; the flattened
// slab layout keeps it at two bulk allocations.
func (g *Graph) Reachability() (*ReachSets, error) {
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	r := &ReachSets{
		WIn:  (len(g.Inputs) + 63) / 64,
		WOut: (len(g.Outputs) + 63) / 64,
	}
	// SetIO accepts the port lists unvalidated; reject bad vertices here
	// with an error rather than an index panic (the criticality engine
	// depends on this surfacing promptly — see the pool-hang regression
	// test in internal/core).
	for _, in := range g.Inputs {
		if in < 0 || in >= g.NumVerts {
			return nil, fmt.Errorf("timing: input vertex %d out of range", in)
		}
	}
	for _, out := range g.Outputs {
		if out < 0 || out >= g.NumVerts {
			return nil, fmt.Errorf("timing: output vertex %d out of range", out)
		}
	}
	r.fromInput = make([]uint64, g.NumVerts*r.WIn)
	r.toOutput = make([]uint64, g.NumVerts*r.WOut)
	for i, in := range g.Inputs {
		r.fromInput[in*r.WIn+i/64] |= 1 << uint(i%64)
	}
	for _, v := range order {
		fv := r.FromInput(v)
		for _, ei := range g.Out[v] {
			tv := r.FromInput(g.Edges[ei].To)
			for w := range fv {
				tv[w] |= fv[w]
			}
		}
	}
	for j, out := range g.Outputs {
		r.toOutput[out*r.WOut+j/64] |= 1 << uint(j%64)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		tv := r.ToOutput(v)
		for _, ei := range g.In[v] {
			sv := r.ToOutput(g.Edges[ei].From)
			for w := range tv {
				sv[w] |= tv[w]
			}
		}
	}
	return r, nil
}

// exactInts copies a slice with exact capacity (append-to-nil rounds up).
func exactInts(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}
