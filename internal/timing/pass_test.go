package timing

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/canon"
)

// --- pointer-based reference implementations -------------------------------
//
// These are the pre-arena propagation loops, kept verbatim as the golden
// reference the flat-bank engine is checked against (1e-12).

func refArrivalFrom(g *Graph, sources []int) ([]*canon.Form, error) {
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	arr := make([]*canon.Form, g.NumVerts)
	for _, s := range sources {
		if s < 0 || s >= g.NumVerts {
			return nil, fmt.Errorf("timing: source vertex %d out of range", s)
		}
		arr[s] = g.Space.Const(0)
	}
	scratch := g.Space.NewForm()
	for _, v := range order {
		av := arr[v]
		if av == nil {
			continue
		}
		for _, ei := range g.Out[v] {
			e := &g.Edges[ei]
			canon.AddInto(scratch, av, e.Delay)
			if cur := arr[e.To]; cur == nil {
				arr[e.To] = scratch.Clone()
			} else {
				canon.MaxInto(cur, cur, scratch)
			}
		}
	}
	return arr, nil
}

func refDelayToOutput(g *Graph, out int) ([]*canon.Form, error) {
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	req := make([]*canon.Form, g.NumVerts)
	req[out] = g.Space.Const(0)
	scratch := g.Space.NewForm()
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, ei := range g.Out[v] {
			e := &g.Edges[ei]
			rt := req[e.To]
			if rt == nil {
				continue
			}
			canon.AddInto(scratch, rt, e.Delay)
			if cur := req[v]; cur == nil {
				req[v] = scratch.Clone()
			} else {
				canon.MaxInto(cur, cur, scratch)
			}
		}
	}
	return req, nil
}

const passTol = 1e-12

func formDiff(a, b *canon.Form) float64 {
	rel := func(x, y float64) float64 {
		d := math.Abs(x - y)
		s := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		return d / s
	}
	d := rel(a.Nominal, b.Nominal)
	for i := range a.Glob {
		if r := rel(a.Glob[i], b.Glob[i]); r > d {
			d = r
		}
	}
	for i := range a.Loc {
		if r := rel(a.Loc[i], b.Loc[i]); r > d {
			d = r
		}
	}
	if r := rel(a.Rand, b.Rand); r > d {
		d = r
	}
	return d
}

func compareFormSlices(t *testing.T, what string, got, want []*canon.Form) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for v := range got {
		switch {
		case got[v] == nil && want[v] == nil:
		case got[v] == nil || want[v] == nil:
			t.Fatalf("%s: vertex %d reachability mismatch (got %v, want %v)",
				what, v, got[v], want[v])
		default:
			if d := formDiff(got[v], want[v]); d > passTol {
				t.Fatalf("%s: vertex %d differs by %g (> %g)", what, v, d, passTol)
			}
		}
	}
}

// TestPassMatchesPointerReferenceGolden checks the arena engine against the
// pointer-based reference on real generated circuits: forward exclusive
// passes per input, the all-inputs pass, and every backward pass.
func TestPassMatchesPointerReferenceGolden(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		g := buildBench(t, name, 1)
		t.Run(name, func(t *testing.T) {
			arrAll, err := g.ArrivalAll()
			if err != nil {
				t.Fatal(err)
			}
			refAll, err := refArrivalFrom(g, g.Inputs)
			if err != nil {
				t.Fatal(err)
			}
			compareFormSlices(t, "ArrivalAll", arrAll, refAll)

			for _, in := range g.Inputs[:3] {
				got, err := g.ArrivalFrom(in)
				if err != nil {
					t.Fatal(err)
				}
				want, err := refArrivalFrom(g, []int{in})
				if err != nil {
					t.Fatal(err)
				}
				compareFormSlices(t, fmt.Sprintf("ArrivalFrom(%d)", in), got, want)
			}
			for _, out := range g.Outputs {
				got, err := g.DelayToOutput(out)
				if err != nil {
					t.Fatal(err)
				}
				want, err := refDelayToOutput(g, out)
				if err != nil {
					t.Fatal(err)
				}
				compareFormSlices(t, fmt.Sprintf("DelayToOutput(%d)", out), got, want)
			}

			// MaxDelay folds in the arena; the reference folds pointer forms.
			got, err := g.MaxDelay()
			if err != nil {
				t.Fatal(err)
			}
			var forms []*canon.Form
			for _, o := range g.Outputs {
				if refAll[o] != nil {
					forms = append(forms, refAll[o])
				}
			}
			want, err := canon.MaxAll(forms)
			if err != nil {
				t.Fatal(err)
			}
			if d := formDiff(got, want); d > passTol {
				t.Fatalf("MaxDelay differs by %g", d)
			}
		})
	}
}

// TestAllPairsMatchesReference checks the pooled-arena all-pairs matrix
// against per-input reference passes.
func TestAllPairsMatchesReference(t *testing.T) {
	g := buildBench(t, "c432", 1)
	ap, err := g.AllPairsDelays(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range g.Inputs {
		want, err := refArrivalFrom(g, []int{in})
		if err != nil {
			t.Fatal(err)
		}
		for j, o := range g.Outputs {
			switch {
			case ap.M[i][j] == nil && want[o] == nil:
			case ap.M[i][j] == nil || want[o] == nil:
				t.Fatalf("pair (%d,%d): reachability mismatch", i, j)
			default:
				if d := formDiff(ap.M[i][j], want[o]); d > passTol {
					t.Fatalf("pair (%d,%d) differs by %g", i, j, d)
				}
			}
		}
	}
}

// TestArrivalPassAllocs is the tentpole's allocation contract: once the
// pool is warm, a full exclusive forward pass in an arena performs no
// per-vertex allocations (the pre-arena engine allocated one form clone per
// reached vertex — O(vertices) per pass).
func TestArrivalPassAllocs(t *testing.T) {
	g := buildBench(t, "c880", 1)
	g.EdgeDelays() // exclude the one-time flat delay-bank build
	in := g.Inputs[0]
	// Warm the pool.
	p := g.AcquirePass()
	if err := p.Arrivals(in); err != nil {
		t.Fatal(err)
	}
	p.Release()
	allocs := testing.AllocsPerRun(20, func() {
		p := g.AcquirePass()
		if err := p.Arrivals(in); err != nil {
			t.Fatal(err)
		}
		p.Release()
	})
	// O(1): the occasional sync.Pool miss under GC, never O(vertices).
	if allocs > 4 {
		t.Fatalf("ArrivalFrom pass allocates %.0f objects/run, want O(1) (<=4); graph has %d vertices",
			allocs, g.NumVerts)
	}
	allocs = testing.AllocsPerRun(20, func() {
		p := g.AcquirePass()
		if err := p.Required(g.Outputs[0]); err != nil {
			t.Fatal(err)
		}
		p.Release()
	})
	if allocs > 4 {
		t.Fatalf("Required pass allocates %.0f objects/run, want O(1) (<=4)", allocs)
	}
}

// TestMaxDelayAllocs pins the full-circuit delay query to O(1) allocations
// beyond the returned form.
func TestMaxDelayAllocs(t *testing.T) {
	g := buildBench(t, "c432", 1)
	if _, err := g.MaxDelay(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := g.MaxDelay(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("MaxDelay allocates %.0f objects/run, want O(1) (<=8)", allocs)
	}
}

// TestPassSourceValidation mirrors the pointer API's range errors.
func TestPassSourceValidation(t *testing.T) {
	g := buildC17(t)
	p := g.AcquirePass()
	defer p.Release()
	if err := p.Arrivals(-1); err == nil {
		t.Fatal("Arrivals(-1) did not fail")
	}
	if err := p.Arrivals(g.NumVerts); err == nil {
		t.Fatal("Arrivals(NumVerts) did not fail")
	}
	if err := p.Required(-1); err == nil {
		t.Fatal("Required(-1) did not fail")
	}
	if err := p.Required(g.NumVerts); err == nil {
		t.Fatal("Required(NumVerts) did not fail")
	}
}

// TestConcurrentPassesOnSharedGraph hammers a freshly built graph (no
// cached order, no delay bank) from several goroutines at once, covering
// the lazy Order/EdgeDelays publication and the global slab pool under the
// race detector.
func TestConcurrentPassesOnSharedGraph(t *testing.T) {
	g := buildBench(t, "c432", 1)
	want, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	g2 := buildBench(t, "c432", 1) // same circuit, cold caches
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got, err := g2.MaxDelay()
				if err != nil {
					errs <- err
					return
				}
				if d := formDiff(got, want); d > passTol {
					errs <- fmt.Errorf("worker %d: concurrent MaxDelay differs by %g", w, d)
					return
				}
				p := g2.AcquirePass()
				if err := p.Required(g2.Outputs[w%len(g2.Outputs)]); err != nil {
					errs <- err
					return
				}
				p.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEdgeDelaysInvalidation: the flat delay bank follows graph edits.
func TestEdgeDelaysInvalidation(t *testing.T) {
	space := canon.Space{Globals: 1, Components: 1}
	g := NewGraph(space, 3, nil)
	if _, err := g.AddEdge(0, 1, space.Const(5), nil, 0); err != nil {
		t.Fatal(err)
	}
	db := g.EdgeDelays()
	if db.Cap() != 1 || db.View(0).Nominal() != 5 {
		t.Fatalf("delay bank: %+v", db)
	}
	if _, err := g.AddEdge(1, 2, space.Const(7), nil, 0); err != nil {
		t.Fatal(err)
	}
	db = g.EdgeDelays()
	if db.Cap() != 2 || db.View(1).Nominal() != 7 {
		t.Fatal("delay bank not rebuilt after AddEdge")
	}
	// In-place mutation needs the explicit invalidation hook.
	g.Edges[0].Delay.Nominal = 9
	g.InvalidateDelays()
	if got := g.EdgeDelays().View(0).Nominal(); got != 9 {
		t.Fatalf("delay bank after InvalidateDelays: %g, want 9", got)
	}
}

// TestMaxDelayCtxCancelled: a cancelled context stops the forward pass
// between vertices instead of running it to completion.
func TestMaxDelayCtxCancelled(t *testing.T) {
	space := canon.Space{Globals: 1, Components: 1}
	const n = 600 // > ctxCheckStride so mid-pass polls are exercised
	g := NewGraph(space, n, nil)
	for v := 0; v+1 < n; v++ {
		if _, err := g.AddEdge(v, v+1, space.Const(1), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetIO([]int{0}, []int{n - 1}, []string{"a"}, []string{"z"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.MaxDelayCtx(context.Background()); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.MaxDelayCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}
}
