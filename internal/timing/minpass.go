package timing

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/canon"
)

// This file is the earliest-arrival (shortest-path) dual of the forward
// propagation kernels in propagate.go: identical wavefront scheduling and
// gather ordering, with canon.MinViews folding contributions instead of
// MaxViews. Hold analysis needs the earliest statistical arrival at every
// register D pin; everything about bit-reproducibility (level-monotone
// visit order, fan-in gathers sorted by source topological position) carries
// over unchanged, so the parallel min pass matches the serial one bit for
// bit at any worker count.

// ArrivalsMin runs a forward earliest-arrival propagation from the given
// source vertices (all launching at time zero) into the pass arena: after
// it, At(v) holds the statistical minimum arrival over all paths from the
// sources to v.
func (p *Pass) ArrivalsMin(sources ...int) error {
	if p.workers > 1 {
		delays := p.delaySource()
		if delays == nil {
			delays = p.g.EdgeDelays()
		}
		return forwardPassMinParallel(p.g, p.bank, p.reach, delays, p.ctx, sources, p.workers)
	}
	return forwardPassMin(p.g, p.bank, p.reach, p.delaySource(), p.ctx, sources)
}

// ArrivalsMinOver is ArrivalsMin reading edge delays from the given bank
// instead of the graph's own — the scenario-sweep hook, mirroring
// ArrivalsOver.
func (p *Pass) ArrivalsMinOver(delays *canon.Bank, sources ...int) error {
	if delays == nil {
		return errors.New("timing: ArrivalsMinOver needs a delay bank")
	}
	if delays.Cap() < len(p.g.Edges) {
		return fmt.Errorf("timing: delay bank has %d slots for %d edges", delays.Cap(), len(p.g.Edges))
	}
	if p.workers > 1 {
		return forwardPassMinParallel(p.g, p.bank, p.reach, delays, p.ctx, sources, p.workers)
	}
	return forwardPassMin(p.g, p.bank, p.reach, delays, p.ctx, sources)
}

// forwardPassMin is the serial earliest-arrival kernel: forwardPass with the
// per-vertex fold flipped to the Clark min. See forwardPass for the visit
// order contract.
func forwardPassMin(g *Graph, bank *canon.Bank, reach []bool, delays *canon.Bank, ctx context.Context, sources []int) error {
	lv, err := g.Levels()
	if err != nil {
		return err
	}
	if err := seedSources(g, bank, reach, sources, "source"); err != nil {
		return err
	}
	scratch := bank.View(g.NumVerts)
	edges, out := g.Edges, g.Out
	push := func(v int) {
		if !reach[v] {
			return
		}
		av := bank.View(v)
		for _, ei := range out[v] {
			to := edges[ei].To
			if delays != nil {
				canon.AddViews(scratch, av, delays.View(int(ei)))
			} else {
				canon.AddFormView(scratch, av, edges[ei].Delay)
			}
			tv := bank.View(to)
			if !reach[to] {
				canon.CopyView(tv, scratch)
				reach[to] = true
			} else {
				canon.MinViews(tv, tv, scratch)
			}
		}
	}
	if lv.Monotone {
		step := 0
		for k := 0; k <= lv.MaxLevel; k++ {
			wave := lv.Wave[lv.Starts[k]:lv.Starts[k+1]]
			for _, vi := range wave {
				if err := stepCtx(ctx, step); err != nil {
					return err
				}
				step++
				push(int(vi))
			}
		}
		return nil
	}
	order, err := g.Order()
	if err != nil {
		return err
	}
	for step, v := range order {
		if err := stepCtx(ctx, step); err != nil {
			return err
		}
		push(v)
	}
	return nil
}

// forwardPassMinParallel is the intra-level parallel earliest-arrival
// kernel: forwardPassParallel with the gather fold flipped to the Clark min.
// Fan-in gathers run sorted by source topological position, so the result is
// bit-identical to forwardPassMin at any worker count.
func forwardPassMinParallel(g *Graph, bank *canon.Bank, reach []bool, delays *canon.Bank, ctx context.Context, sources []int, workers int) error {
	if ctx == nil {
		ctx = context.Background() // ParallelForCtx needs a non-nil parent
	}
	lv, err := g.Levels()
	if err != nil {
		return err
	}
	if err := seedSources(g, bank, reach, sources, "source"); err != nil {
		return err
	}
	stride := g.Space.Stride()
	slab := takeSlab(workers * stride)
	defer putSlab(slab)
	tmps := canon.NewBankOver(g.Space, workers, slab)

	gather := func(v int, tmp canon.View) {
		av := bank.View(v)
		reached := reach[v] // pre-seeded sources hold the zero constant
		for _, ei := range lv.FaninSorted(v) {
			e := &g.Edges[ei]
			if !reach[e.From] {
				continue
			}
			canon.AddViews(tmp, bank.View(e.From), delays.View(int(ei)))
			if !reached {
				canon.CopyView(av, tmp)
				reached = true
			} else {
				canon.MinViews(av, av, tmp)
			}
		}
		reach[v] = reached
	}

	for k := 1; k <= lv.MaxLevel; k++ {
		wave := lv.Wave[lv.Starts[k]:lv.Starts[k+1]]
		n := len(wave)
		chunks := workers
		if n < chunks*parallelLevelMin {
			if err := stepCtx(ctx, 0); err != nil {
				return err
			}
			tmp := tmps.View(0)
			for _, vi := range wave {
				gather(int(vi), tmp)
			}
			continue
		}
		err := ParallelForCtx(ctx, chunks, chunks, func(_ context.Context, c int) error {
			tmp := tmps.View(c)
			for _, vi := range wave[n*c/chunks : n*(c+1)/chunks] {
				gather(int(vi), tmp)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// EarliestArrivalAll propagates earliest arrivals from every launch source
// (inputs plus clock roots) and returns the per-vertex forms; unreachable
// vertices are nil.
func (g *Graph) EarliestArrivalAll() ([]*canon.Form, error) {
	p := g.AcquirePass()
	defer p.Release()
	if err := p.ArrivalsMin(g.LaunchSources()...); err != nil {
		return nil, err
	}
	return p.Forms(), nil
}

// MinDelay returns the statistical minimum delay over all outputs with every
// launch source at time zero — the shortest-path dual of MaxDelay, the
// quantity hold analysis bounds from below.
func (g *Graph) MinDelay() (*canon.Form, error) {
	p := g.AcquirePass()
	defer p.Release()
	if err := p.ArrivalsMin(g.LaunchSources()...); err != nil {
		return nil, err
	}
	acc := p.Scratch()
	first := true
	for _, o := range g.Outputs {
		if !p.Reached(o) {
			continue
		}
		if first {
			canon.CopyView(acc, p.At(o))
			first = false
		} else {
			canon.MinViews(acc, acc, p.At(o))
		}
	}
	if first {
		return nil, errors.New("timing: no output reachable from any launch source")
	}
	return acc.Form(g.Space), nil
}
