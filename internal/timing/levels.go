package timing

import "sync"

// Levels is the cached level structure of an acyclic timing graph: the
// longest-path level of every vertex, the vertices batched into per-level
// wavefronts, and a fan-in gather plan. One level structure serves three
// consumers — the wavefront propagation kernels (propagate.go), the
// criticality engine's level-cutset construction (internal/core), and the
// incremental criticality cone analysis — so the ad-hoc level computation
// each of them used to repeat lives here exactly once.
type Levels struct {
	// Level[v] is the length of the longest edge path ending at v; vertices
	// without fan-in sit at level 0. Every edge goes from a strictly lower
	// level to a higher one, so the level boundaries are the paper's cutsets:
	// every input-to-output path crosses each boundary between consecutive
	// levels exactly once.
	Level    []int32
	MaxLevel int

	// TopoPos[v] is v's position in the topological order the structure was
	// built on — the contribution-order key of the propagation kernels.
	TopoPos []int32

	// Wave holds all vertices grouped by level: Wave[Starts[k]:Starts[k+1]]
	// is level k, in topological order within the level. When the cached
	// topological order is itself level-monotone (always the case for a
	// freshly computed Kahn order), Wave is that order element for element
	// and Monotone reports true: wavefront iteration then replays the serial
	// pass's contribution order exactly. Order-preserving live edits can
	// leave a valid cached order that is not level-sorted; the propagation
	// kernels detect that through Monotone and fall back to plain order
	// iteration, keeping bit-identity with the incremental engine's stored
	// forms.
	Wave     []int32
	Starts   []int32
	Monotone bool

	// gather/gatherOff form a CSR plan over the fan-in edge indices of every
	// vertex, sorted by the topological position of the source vertex
	// (stable). Folding a vertex's fan-in in this order reproduces, bit for
	// bit, the contribution order of the push-based serial pass — the same
	// argument (and the same sort key) as Incremental.sortedFanin — which is
	// what makes intra-level parallel gathering exact.
	gather    []int32
	gatherOff []int32
}

// FaninSorted returns v's fan-in edge indices sorted by source topological
// position — the exact contribution order of a full forward pass at v.
func (lv *Levels) FaninSorted(v int) []int32 {
	return lv.gather[lv.gatherOff[v]:lv.gatherOff[v+1]]
}

// levelsCache is the lazily built Levels structure plus the inputs it was
// derived from: the published order slice and the graph's topology
// generation (adjacency edits bump it without necessarily touching the
// order — RemoveEdge and order-preserving AddEdgeLive keep the cached order
// but can still move levels).
type levelsCache struct {
	mu     sync.Mutex
	levels *Levels
	order  []int
	gen    uint64
}

// Levels returns the graph's level structure, computing and caching it on
// first use. Safe for concurrent readers under the graph's usual contract
// (mutations must not run concurrently with any reader); the returned
// structure is immutable once published.
func (g *Graph) Levels() (*Levels, error) {
	order, err := g.Order()
	if err != nil {
		return nil, err
	}
	c := &g.levelsCache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.levels != nil && c.gen == g.topoGen && sameOrder(order, c.order) {
		return c.levels, nil
	}
	c.levels = buildLevels(g, order)
	c.order = order
	c.gen = g.topoGen
	return c.levels, nil
}

// buildLevels computes the level structure for one topological order.
func buildLevels(g *Graph, order []int) *Levels {
	n := g.NumVerts
	lv := &Levels{
		Level:   make([]int32, n),
		TopoPos: make([]int32, n),
	}
	var maxL int32
	for pos, v := range order {
		lv.TopoPos[v] = int32(pos)
		var l int32
		for _, ei := range g.In[v] {
			if fl := lv.Level[g.Edges[ei].From] + 1; fl > l {
				l = fl
			}
		}
		lv.Level[v] = l
		if l > maxL {
			maxL = l
		}
	}
	lv.MaxLevel = int(maxL)

	lv.Monotone = true
	var prev int32
	for _, v := range order {
		if l := lv.Level[v]; l < prev {
			lv.Monotone = false
			break
		} else {
			prev = l
		}
	}

	// Counting sort of the order into per-level waves; iteration in order
	// keeps the grouping stable, so waves are topologically sorted within a
	// level even when the order is not globally level-monotone.
	starts := make([]int32, maxL+2)
	for _, v := range order {
		starts[lv.Level[v]+1]++
	}
	for k := 1; k < len(starts); k++ {
		starts[k] += starts[k-1]
	}
	lv.Starts = starts
	lv.Wave = make([]int32, len(order))
	if lv.Monotone {
		for i, v := range order {
			lv.Wave[i] = int32(v)
		}
	} else {
		fill := append([]int32(nil), starts[:maxL+1]...)
		for _, v := range order {
			k := lv.Level[v]
			lv.Wave[fill[k]] = int32(v)
			fill[k]++
		}
	}

	// Fan-in gather plan, sorted by source topological position. Fan-ins
	// are gate-arity tiny and appended in a single global edge sequence, so
	// they arrive almost sorted; insertion sort is both cheap and stable.
	lv.gatherOff = make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		lv.gatherOff[v] = int32(total)
		total += len(g.In[v])
	}
	lv.gatherOff[n] = int32(total)
	lv.gather = make([]int32, total)
	for v := 0; v < n; v++ {
		buf := lv.gather[lv.gatherOff[v]:lv.gatherOff[v+1]]
		copy(buf, g.In[v])
		for i := 1; i < len(buf); i++ {
			ei := buf[i]
			p := lv.TopoPos[g.Edges[ei].From]
			j := i - 1
			for j >= 0 && lv.TopoPos[g.Edges[buf[j]].From] > p {
				buf[j+1] = buf[j]
				j--
			}
			buf[j+1] = ei
		}
	}
	return lv
}
