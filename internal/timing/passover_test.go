package timing

import (
	"testing"

	"repro/internal/canon"
)

// TestArrivalsOverMatchesOwnBank: propagating over the graph's own delay
// bank through the substituted-bank entry point is bit-identical to a
// plain pass, and a rescaled bank reproduces a graph whose edges were
// explicitly scaled.
func TestArrivalsOverMatchesOwnBank(t *testing.T) {
	g := buildC17(t)
	ref := g.AcquirePass()
	defer ref.Release()
	if err := ref.Arrivals(g.Inputs...); err != nil {
		t.Fatal(err)
	}
	p := g.AcquirePass()
	defer p.Release()
	if err := p.ArrivalsOver(g.EdgeDelays(), g.Inputs...); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVerts; v++ {
		if p.Reached(v) != ref.Reached(v) {
			t.Fatalf("vertex %d: reach diverged", v)
		}
		if p.Reached(v) && formDiff(p.Form(v), ref.Form(v)) > passTol {
			t.Fatalf("vertex %d: ArrivalsOver differs from Arrivals by %g", v, formDiff(p.Form(v), ref.Form(v)))
		}
	}

	// Scaled bank == explicitly scaled graph.
	const k = 1.25
	scaled := canon.NewBank(g.Space, len(g.Edges))
	for ei := range g.Edges {
		canon.ScalePartsView(scaled.View(ei), g.EdgeDelays().View(ei), g.Space.Globals, k, 1, 1, 1)
	}
	sg := g.Clone()
	for ei := range sg.Edges {
		if err := sg.ScaleEdgeDelay(ei, k); err != nil {
			t.Fatal(err)
		}
	}
	want := sg.AcquirePass()
	defer want.Release()
	if err := want.Arrivals(sg.Inputs...); err != nil {
		t.Fatal(err)
	}
	if err := p.ArrivalsOver(scaled, g.Inputs...); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVerts; v++ {
		if p.Reached(v) && formDiff(p.Form(v), want.Form(v)) > 1e-9 {
			t.Fatalf("vertex %d: scaled-bank pass differs from scaled graph by %g", v, formDiff(p.Form(v), want.Form(v)))
		}
	}

	// Backward twin.
	if err := ref.Required(g.Outputs...); err != nil {
		t.Fatal(err)
	}
	if err := p.RequiredOver(g.EdgeDelays(), g.Outputs...); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVerts; v++ {
		if p.Reached(v) != ref.Reached(v) {
			t.Fatalf("vertex %d: required reach diverged", v)
		}
		if p.Reached(v) && formDiff(p.Form(v), ref.Form(v)) > passTol {
			t.Fatalf("vertex %d: RequiredOver differs from Required", v)
		}
	}
}

func TestArrivalsOverRejectsBadBank(t *testing.T) {
	g := buildC17(t)
	p := g.AcquirePass()
	defer p.Release()
	if err := p.ArrivalsOver(nil, g.Inputs...); err == nil {
		t.Fatal("nil bank accepted")
	}
	short := canon.NewBank(g.Space, len(g.Edges)-1)
	if err := p.ArrivalsOver(short, g.Inputs...); err == nil {
		t.Fatal("undersized bank accepted")
	}
	if err := p.RequiredOver(short, g.Outputs...); err == nil {
		t.Fatal("undersized bank accepted by RequiredOver")
	}
}
