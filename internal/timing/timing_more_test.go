package timing

import (
	"math"
	"testing"

	"repro/internal/canon"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/place"
	"repro/internal/variation"
)

func TestBuildRejectsBadInputs(t *testing.T) {
	c := circuit.C17()
	lib := cell.Synthetic90nm()
	plan, _ := place.Topological(c, place.DefaultPitch)
	if _, err := Build(c, lib, plan, nil); err == nil {
		t.Fatal("nil grid model accepted")
	}
	empty := &cell.Library{}
	corr, _ := variation.DefaultCorrelation()
	gm, _ := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if _, err := Build(c, empty, plan, gm); err == nil {
		t.Fatal("library without parameters accepted")
	}
}

func TestArrivalFromBadSource(t *testing.T) {
	g := buildC17(t)
	if _, err := g.ArrivalFrom(-1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := g.ArrivalFrom(g.NumVerts + 5); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := g.DelayToOutput(-2); err == nil {
		t.Fatal("negative output accepted")
	}
}

func TestSlewAwareDelaysDifferFromRefSlew(t *testing.T) {
	// Gates driven by sharp internal edges must have arcs different from a
	// pure reference-slew characterization; the difference is bounded by
	// the slew sensitivity times the slew range.
	g := buildC17(t)
	lib := cell.Synthetic90nm()
	spec, _ := lib.Spec(circuit.Nand)
	arcRef, _ := lib.Arc(circuit.Nand, 0, 1)
	var sawDifferent bool
	for _, e := range g.Edges {
		if e.Delay.Nominal != arcRef.Nominal && math.Abs(e.Delay.Nominal-arcRef.Nominal) < spec.SlewSens*100 {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Fatal("no slew-adjusted arcs found — slew-aware build inactive?")
	}
}

func TestBoundaryCharacterizationShapes(t *testing.T) {
	g := buildBench(t, "c432", 1)
	if g.RefSlew != cell.RefSlew {
		t.Fatalf("RefSlew = %g", g.RefSlew)
	}
	if len(g.InputSlewSlopes) != len(g.Inputs) {
		t.Fatal("input slew slopes shape")
	}
	if len(g.OutputPortSlews) != len(g.Outputs) || len(g.OutputSlewSlopes) != len(g.Outputs) ||
		len(g.OutputLoadSlopes) != len(g.Outputs) {
		t.Fatal("output characterization shape")
	}
	for i := range g.Inputs {
		if g.InputSlewSlopes[i] <= 0 {
			t.Fatalf("input %d slew slope %g (every PI drives at least one gate)", i, g.InputSlewSlopes[i])
		}
	}
}

func TestMaxDelayDeterministic(t *testing.T) {
	g := buildBench(t, "c499", 2)
	a, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean() != b.Mean() || a.Std() != b.Std() {
		t.Fatal("MaxDelay not deterministic")
	}
}

func TestAllPairsWorkerInvariance(t *testing.T) {
	g := buildBench(t, "c432", 1)
	a, err := g.AllPairsDelays(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AllPairsDelays(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.M {
		for j := range a.M[i] {
			fa, fb := a.M[i][j], b.M[i][j]
			if (fa == nil) != (fb == nil) {
				t.Fatal("worker count changed reachability")
			}
			if fa != nil && (fa.Mean() != fb.Mean() || fa.Std() != fb.Std()) {
				t.Fatal("worker count changed results")
			}
		}
	}
}

func TestCornerOnExtractedModelPath(t *testing.T) {
	// The corner fallback for edges without structural data uses the PCA
	// block norms; exercise it via a hand-built graph with Loc-only edges.
	s := canon.Space{Globals: 2, Components: 4}
	g := NewGraph(s, 3, nil)
	f1 := s.Const(10)
	f1.Loc[0], f1.Loc[1] = 3, 4 // block norm 5 for param 0
	f2 := s.Const(20)
	f2.Glob[1] = 2
	f2.Rand = 1
	if _, err := g.AddEdge(0, 1, f1, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2, f2, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.SetIO([]int{0}, []int{2}, []string{"in"}, []string{"out"}); err != nil {
		t.Fatal(err)
	}
	c, err := g.CornerDelay(1)
	if err != nil {
		t.Fatal(err)
	}
	// Edge 1: 10 + (5 + 0) = 15; edge 2: 20 + (2 + 1) = 23. Total 38.
	if math.Abs(c-38) > 1e-9 {
		t.Fatalf("corner = %g, want 38", c)
	}
}

func TestGraphWithNoEdgesToOutput(t *testing.T) {
	s := canon.Space{Globals: 1, Components: 1}
	g := NewGraph(s, 2, nil)
	if err := g.SetIO([]int{0}, []int{1}, []string{"in"}, []string{"out"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.MaxDelay(); err == nil {
		t.Fatal("unreachable output should error")
	}
}
