package timing

import (
	"errors"
	"math"
)

// CornerDelay computes the deterministic corner-based STA delay that the
// paper's introduction criticizes as overly pessimistic: every variation
// source of every edge is simultaneously pushed to its +k-sigma value and
// the worst path delay is taken.
//
// For edges with structural data the per-edge corner is
//
//	d = nominal + k * (sum_p |global_p| + sum_p |local_p| + rand)
//
// treating each physical source (global, per-grid local, private random) as
// an independently worst-cased variable. Model edges without structural
// sensitivities use the PCA block norm per parameter instead, which is the
// closest equivalent. Correlations between edges are ignored — that is the
// point of a corner.
func (g *Graph) CornerDelay(k float64) (float64, error) {
	if k < 0 {
		return 0, errors.New("timing: corner sigma multiplier must be non-negative")
	}
	order, err := g.Order()
	if err != nil {
		return 0, err
	}
	corner := make([]float64, len(g.Edges))
	for ei := range g.Edges {
		corner[ei] = g.edgeCorner(ei, k)
	}
	arr := make([]float64, g.NumVerts)
	for i := range arr {
		arr[i] = math.Inf(-1)
	}
	for _, in := range g.Inputs {
		arr[in] = 0
	}
	for _, v := range order {
		if math.IsInf(arr[v], -1) {
			continue
		}
		for _, ei := range g.Out[v] {
			e := &g.Edges[ei]
			if cand := arr[v] + corner[ei]; cand > arr[e.To] {
				arr[e.To] = cand
			}
		}
	}
	best := math.Inf(-1)
	for _, o := range g.Outputs {
		if arr[o] > best {
			best = arr[o]
		}
	}
	if math.IsInf(best, -1) {
		return 0, errors.New("timing: no output reachable")
	}
	return best, nil
}

func (g *Graph) edgeCorner(ei int, k float64) float64 {
	e := &g.Edges[ei]
	var spread float64
	for _, v := range e.Delay.Glob {
		spread += math.Abs(v)
	}
	if e.LSens != nil {
		for _, v := range e.LSens {
			spread += math.Abs(v)
		}
	} else if g.Space.Components > 0 {
		// Model edge: per-parameter block norm of the PCA coefficients is
		// the sigma of that parameter's correlated part.
		nP := g.Space.Globals
		if nP == 0 {
			nP = 1
		}
		block := g.Space.Components / nP
		if block == 0 {
			block = g.Space.Components
		}
		for p := 0; p*block < len(e.Delay.Loc); p++ {
			var s2 float64
			for _, v := range e.Delay.Loc[p*block : (p+1)*block] {
				s2 += v * v
			}
			spread += math.Sqrt(s2)
		}
	}
	spread += e.Delay.Rand
	return e.Delay.Nominal + k*spread
}

// NominalDelay is the zero-variation longest path (the k = 0 corner).
func (g *Graph) NominalDelay() (float64, error) {
	return g.CornerDelay(0)
}
