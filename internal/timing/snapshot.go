package timing

import (
	"fmt"

	"repro/internal/canon"
	"repro/internal/variation"
)

// This file is the durable representation of a live timing graph — the
// session-checkpoint payload (ROADMAP item 5a). Unlike the extracted-model
// serializer in internal/core, which persists clean boundary models, a
// GraphSnapshot captures a graph mid-edit-history: tombstoned edges keep
// their slots (edge indices are API surface for the edit vocabulary), the
// Monte Carlo ground-truth data rides along, and the cached topological
// order is preserved because Clark-max contribution order — and therefore
// the exact propagated numbers — depends on it.
//
// FromSnapshot validates everything before trusting it: the snapshot may
// come off a disk that lied (the store envelope catches torn bytes, not a
// hostile or skewed payload), and it is fuzzed. Bounds are checked before
// any size-proportional allocation.

// Snapshot size caps: generous multiples of the largest graphs the repo
// builds (tens of thousands of vertices), small enough that a hostile
// snapshot cannot make FromSnapshot allocate unbounded memory.
const (
	maxSnapshotVerts      = 1 << 21
	maxSnapshotEdges      = 1 << 23
	maxSnapshotGlobals    = 1 << 12
	maxSnapshotComponents = 1 << 18
	maxSnapshotGridCells  = 1 << 10
)

// EdgeSnapshot is one edge of a GraphSnapshot, tombstones included.
type EdgeSnapshot struct {
	From    int       `json:"from"`
	To      int       `json:"to"`
	Nominal float64   `json:"nominal"`
	Glob    []float64 `json:"glob,omitempty"`
	Loc     []float64 `json:"loc,omitempty"`
	Rand    float64   `json:"rand,omitempty"`
	LSens   []float64 `json:"lsens,omitempty"`
	Grid    int       `json:"grid,omitempty"`
	Removed bool      `json:"removed,omitempty"`
}

// RegisterSnapshot is one register of a sequential GraphSnapshot, carrying
// the constraint forms and the Monte Carlo ground-truth sensitivities.
type RegisterSnapshot struct {
	Name    string `json:"name"`
	Q       int    `json:"q"`
	D       int    `json:"d"`
	ClkEdge int    `json:"clk_edge"`
	Grid    int    `json:"grid,omitempty"`

	SetupNominal float64   `json:"setup_nominal"`
	SetupGlob    []float64 `json:"setup_glob,omitempty"`
	SetupLoc     []float64 `json:"setup_loc,omitempty"`
	SetupRand    float64   `json:"setup_rand,omitempty"`
	SetupLSens   []float64 `json:"setup_lsens,omitempty"`

	HoldNominal float64   `json:"hold_nominal"`
	HoldGlob    []float64 `json:"hold_glob,omitempty"`
	HoldLoc     []float64 `json:"hold_loc,omitempty"`
	HoldRand    float64   `json:"hold_rand,omitempty"`
	HoldLSens   []float64 `json:"hold_lsens,omitempty"`
}

// ParamSnapshot mirrors variation.Parameter.
type ParamSnapshot struct {
	Name        string  `json:"name"`
	Sigma       float64 `json:"sigma"`
	GlobalShare float64 `json:"global_share"`
	LocalShare  float64 `json:"local_share"`
	RandomShare float64 `json:"random_share"`
}

// GridSnapshot carries the grid geometry and correlation knobs from which
// the PCA grid model is rebuilt deterministically (same convention as the
// extracted-model serializer).
type GridSnapshot struct {
	NX          int     `json:"nx"`
	NY          int     `json:"ny"`
	Pitch       float64 `json:"pitch"`
	RhoNeighbor float64 `json:"rho_neighbor"`
	RhoFloor    float64 `json:"rho_floor"`
	Range       float64 `json:"range"`
}

// GraphSnapshot is the complete durable state of a timing graph.
type GraphSnapshot struct {
	Globals    int `json:"globals"`
	Components int `json:"components"`
	NumVerts   int `json:"num_verts"`

	Edges []EdgeSnapshot `json:"edges"`

	Inputs      []int    `json:"inputs,omitempty"`
	Outputs     []int    `json:"outputs,omitempty"`
	InputNames  []string `json:"input_names,omitempty"`
	OutputNames []string `json:"output_names,omitempty"`

	Registers  []RegisterSnapshot `json:"registers,omitempty"`
	ClockRoots []int              `json:"clock_roots,omitempty"`

	OutputLoadSlopes []float64 `json:"output_load_slopes,omitempty"`
	RefSlew          float64   `json:"ref_slew,omitempty"`
	InputSlewSlopes  []float64 `json:"input_slew_slopes,omitempty"`
	OutputPortSlews  []float64 `json:"output_port_slews,omitempty"`
	OutputSlewSlopes []float64 `json:"output_slew_slopes,omitempty"`

	Params []ParamSnapshot `json:"params,omitempty"`
	Grid   *GridSnapshot   `json:"grid,omitempty"`

	// Order is the cached topological order at snapshot time. It is part
	// of the numerical contract: Clark-max folds fanin contributions in
	// adjacency order along this order, so restoring a different (even
	// valid) order could move results within propagation tolerance.
	Order []int `json:"order,omitempty"`
}

// Snapshot captures the graph's durable state. It follows the reader side
// of the single-writer contract: do not call it concurrently with edits.
func (g *Graph) Snapshot() *GraphSnapshot {
	s := &GraphSnapshot{
		Globals:          g.Space.Globals,
		Components:       g.Space.Components,
		NumVerts:         g.NumVerts,
		Edges:            make([]EdgeSnapshot, len(g.Edges)),
		Inputs:           g.Inputs,
		Outputs:          g.Outputs,
		InputNames:       g.InputNames,
		OutputNames:      g.OutputNames,
		OutputLoadSlopes: g.OutputLoadSlopes,
		RefSlew:          g.RefSlew,
		InputSlewSlopes:  g.InputSlewSlopes,
		OutputPortSlews:  g.OutputPortSlews,
		OutputSlewSlopes: g.OutputSlewSlopes,
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		s.Edges[i] = EdgeSnapshot{
			From: e.From, To: e.To,
			Nominal: e.Delay.Nominal, Glob: e.Delay.Glob, Loc: e.Delay.Loc, Rand: e.Delay.Rand,
			LSens: e.LSens, Grid: e.Grid, Removed: e.Removed,
		}
	}
	for i := range g.Registers {
		r := &g.Registers[i]
		s.Registers = append(s.Registers, RegisterSnapshot{
			Name: r.Name, Q: r.Q, D: r.D, ClkEdge: r.ClkEdge, Grid: r.Grid,
			SetupNominal: r.Setup.Nominal, SetupGlob: r.Setup.Glob, SetupLoc: r.Setup.Loc,
			SetupRand: r.Setup.Rand, SetupLSens: r.SetupLSens,
			HoldNominal: r.Hold.Nominal, HoldGlob: r.Hold.Glob, HoldLoc: r.Hold.Loc,
			HoldRand: r.Hold.Rand, HoldLSens: r.HoldLSens,
		})
	}
	s.ClockRoots = g.ClockRoots
	for _, p := range g.Params {
		s.Params = append(s.Params, ParamSnapshot{
			Name: p.Name, Sigma: p.Sigma,
			GlobalShare: p.GlobalShare, LocalShare: p.LocalShare, RandomShare: p.RandomShare,
		})
	}
	if g.Grids != nil && g.Grids.NX > 0 && g.Grids.Corr != nil {
		s.Grid = &GridSnapshot{
			NX: g.Grids.NX, NY: g.Grids.NY, Pitch: g.Grids.Pitch,
			RhoNeighbor: g.Grids.Corr.RhoNeighbor,
			RhoFloor:    g.Grids.Corr.RhoFloor,
			Range:       g.Grids.Corr.Range,
		}
	}
	g.orderMu.Lock()
	s.Order = g.order
	g.orderMu.Unlock()
	return s
}

// FromSnapshot reconstructs a graph from a snapshot, validating every
// index, dimension and the topological order before trusting it. The
// result is numerically identical to the snapshotted graph: edge slots
// (tombstones included), adjacency order and cached topological order are
// restored exactly.
func FromSnapshot(s *GraphSnapshot) (*Graph, error) {
	if s.Globals < 0 || s.Globals > maxSnapshotGlobals {
		return nil, fmt.Errorf("timing: snapshot globals %d out of range", s.Globals)
	}
	if s.Components < 0 || s.Components > maxSnapshotComponents {
		return nil, fmt.Errorf("timing: snapshot components %d out of range", s.Components)
	}
	if s.NumVerts < 0 || s.NumVerts > maxSnapshotVerts {
		return nil, fmt.Errorf("timing: snapshot vertex count %d out of range", s.NumVerts)
	}
	if len(s.Edges) > maxSnapshotEdges {
		return nil, fmt.Errorf("timing: snapshot edge count %d out of range", len(s.Edges))
	}
	if len(s.Params) > maxSnapshotGlobals {
		return nil, fmt.Errorf("timing: snapshot parameter count %d out of range", len(s.Params))
	}

	space := canon.Space{Globals: s.Globals, Components: s.Components}
	var params []variation.Parameter
	for _, p := range s.Params {
		params = append(params, variation.Parameter{
			Name: p.Name, Sigma: p.Sigma,
			GlobalShare: p.GlobalShare, LocalShare: p.LocalShare, RandomShare: p.RandomShare,
		})
	}
	g := NewGraph(space, s.NumVerts, params)

	var gridN int // grid count for per-edge grid index validation; 0 = no model
	if s.Grid != nil {
		if s.Grid.NX < 1 || s.Grid.NY < 1 || s.Grid.NX*s.Grid.NY > maxSnapshotGridCells {
			return nil, fmt.Errorf("timing: snapshot grid %dx%d out of range", s.Grid.NX, s.Grid.NY)
		}
		corr, err := variation.NewCorrelationModel(s.Grid.RhoNeighbor, s.Grid.RhoFloor, s.Grid.Range)
		if err != nil {
			return nil, fmt.Errorf("timing: snapshot grid correlation: %w", err)
		}
		gm, err := variation.NewGridModel(s.Grid.NX, s.Grid.NY, s.Grid.Pitch, corr)
		if err != nil {
			return nil, fmt.Errorf("timing: snapshot grid rebuild: %w", err)
		}
		if len(params) > 0 && len(params)*gm.Comps != space.Components {
			return nil, fmt.Errorf("timing: rebuilt grid model has %d components, form space expects %d",
				len(params)*gm.Comps, space.Components)
		}
		g.Grids = gm
		gridN = gm.N()
	}

	// Edges: every slot is restored, tombstones included; only live edges
	// enter the adjacency lists, in index order — exactly the invariant a
	// live graph maintains (insertions append in index order, removals
	// preserve relative order).
	for i := range s.Edges {
		e := &s.Edges[i]
		if e.From < 0 || e.From >= s.NumVerts || e.To < 0 || e.To >= s.NumVerts {
			return nil, fmt.Errorf("timing: snapshot edge %d (%d->%d) outside vertex range %d", i, e.From, e.To, s.NumVerts)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("timing: snapshot edge %d is a self-loop on %d", i, e.From)
		}
		if len(e.Glob) != 0 && len(e.Glob) != space.Globals {
			return nil, fmt.Errorf("timing: snapshot edge %d has %d global coefficients, space has %d", i, len(e.Glob), space.Globals)
		}
		if len(e.Loc) != 0 && len(e.Loc) != space.Components {
			return nil, fmt.Errorf("timing: snapshot edge %d has %d local coefficients, space has %d", i, len(e.Loc), space.Components)
		}
		if len(e.LSens) != 0 && len(e.LSens) != len(params) {
			return nil, fmt.Errorf("timing: snapshot edge %d has %d sensitivities, %d parameters", i, len(e.LSens), len(params))
		}
		if gridN > 0 && (e.Grid < 0 || e.Grid >= gridN) {
			return nil, fmt.Errorf("timing: snapshot edge %d grid %d outside model (%d grids)", i, e.Grid, gridN)
		}
		f := space.NewForm()
		f.Nominal = e.Nominal
		copy(f.Glob, e.Glob)
		copy(f.Loc, e.Loc)
		f.Rand = e.Rand
		var lsens []float64
		if len(e.LSens) > 0 {
			lsens = append([]float64(nil), e.LSens...)
		}
		idx := len(g.Edges)
		g.Edges = append(g.Edges, Edge{
			From: e.From, To: e.To, Delay: f,
			LSens: lsens, Grid: e.Grid, Removed: e.Removed,
		})
		if !e.Removed {
			g.Out[e.From] = append(g.Out[e.From], int32(idx))
			g.In[e.To] = append(g.In[e.To], int32(idx))
		}
	}

	for _, v := range s.Inputs {
		if v < 0 || v >= s.NumVerts {
			return nil, fmt.Errorf("timing: snapshot input vertex %d out of range", v)
		}
	}
	for _, v := range s.Outputs {
		if v < 0 || v >= s.NumVerts {
			return nil, fmt.Errorf("timing: snapshot output vertex %d out of range", v)
		}
	}
	if err := g.SetIO(s.Inputs, s.Outputs, s.InputNames, s.OutputNames); err != nil {
		return nil, err
	}
	check := func(name string, got []float64, want int) error {
		if got != nil && len(got) != want {
			return fmt.Errorf("timing: snapshot has %d %s for %d ports", len(got), name, want)
		}
		return nil
	}
	if err := check("output load slopes", s.OutputLoadSlopes, len(s.Outputs)); err != nil {
		return nil, err
	}
	if err := check("input slew slopes", s.InputSlewSlopes, len(s.Inputs)); err != nil {
		return nil, err
	}
	if err := check("output port slews", s.OutputPortSlews, len(s.Outputs)); err != nil {
		return nil, err
	}
	if err := check("output slew slopes", s.OutputSlewSlopes, len(s.Outputs)); err != nil {
		return nil, err
	}
	g.OutputLoadSlopes = s.OutputLoadSlopes
	g.RefSlew = s.RefSlew
	g.InputSlewSlopes = s.InputSlewSlopes
	g.OutputPortSlews = s.OutputPortSlews
	g.OutputSlewSlopes = s.OutputSlewSlopes

	if len(s.Registers) > maxSnapshotVerts {
		return nil, fmt.Errorf("timing: snapshot register count %d out of range", len(s.Registers))
	}
	restoreForm := func(i int, kind string, nominal float64, glob, loc []float64, rand float64, lsens []float64) (*canon.Form, []float64, error) {
		if len(glob) != 0 && len(glob) != space.Globals {
			return nil, nil, fmt.Errorf("timing: snapshot register %d has %d %s global coefficients, space has %d", i, len(glob), kind, space.Globals)
		}
		if len(loc) != 0 && len(loc) != space.Components {
			return nil, nil, fmt.Errorf("timing: snapshot register %d has %d %s local coefficients, space has %d", i, len(loc), kind, space.Components)
		}
		if len(lsens) != 0 && len(lsens) != len(params) {
			return nil, nil, fmt.Errorf("timing: snapshot register %d has %d %s sensitivities, %d parameters", i, len(lsens), kind, len(params))
		}
		f := space.NewForm()
		f.Nominal = nominal
		copy(f.Glob, glob)
		copy(f.Loc, loc)
		f.Rand = rand
		var ls []float64
		if len(lsens) > 0 {
			ls = append([]float64(nil), lsens...)
		}
		return f, ls, nil
	}
	for i := range s.Registers {
		r := &s.Registers[i]
		// Q == -1 marks an extracted-model register whose Q vertex was
		// reduced away; D must always resolve.
		if r.Q < -1 || r.Q >= s.NumVerts || r.D < 0 || r.D >= s.NumVerts {
			return nil, fmt.Errorf("timing: snapshot register %d (Q %d, D %d) outside vertex range %d", i, r.Q, r.D, s.NumVerts)
		}
		if r.ClkEdge < -1 || r.ClkEdge >= len(s.Edges) {
			return nil, fmt.Errorf("timing: snapshot register %d clk edge %d outside edge range %d", i, r.ClkEdge, len(s.Edges))
		}
		if gridN > 0 && (r.Grid < -1 || r.Grid >= gridN) {
			return nil, fmt.Errorf("timing: snapshot register %d grid %d outside model (%d grids)", i, r.Grid, gridN)
		}
		setup, setupL, err := restoreForm(i, "setup", r.SetupNominal, r.SetupGlob, r.SetupLoc, r.SetupRand, r.SetupLSens)
		if err != nil {
			return nil, err
		}
		hold, holdL, err := restoreForm(i, "hold", r.HoldNominal, r.HoldGlob, r.HoldLoc, r.HoldRand, r.HoldLSens)
		if err != nil {
			return nil, err
		}
		g.Registers = append(g.Registers, Register{
			Name: r.Name, Q: r.Q, D: r.D, ClkEdge: r.ClkEdge, Grid: r.Grid,
			Setup: setup, Hold: hold, SetupLSens: setupL, HoldLSens: holdL,
		})
	}
	for _, v := range s.ClockRoots {
		if v < 0 || v >= s.NumVerts {
			return nil, fmt.Errorf("timing: snapshot clock root %d out of range", v)
		}
	}
	g.ClockRoots = exactInts(s.ClockRoots)

	if s.Order != nil {
		if err := validateOrder(g, s.Order); err != nil {
			return nil, err
		}
		g.order = append([]int(nil), s.Order...)
	} else if _, err := g.Order(); err != nil {
		return nil, err // snapshot encodes a cyclic graph
	}
	return g, nil
}

// validateOrder checks that order is a permutation of the vertices that
// respects every live edge — the conditions under which restoring it is
// safe and exact.
func validateOrder(g *Graph, order []int) error {
	if len(order) != g.NumVerts {
		return fmt.Errorf("timing: snapshot order has %d entries for %d vertices", len(order), g.NumVerts)
	}
	pos := make([]int, g.NumVerts)
	for i := range pos {
		pos[i] = -1
	}
	for k, v := range order {
		if v < 0 || v >= g.NumVerts {
			return fmt.Errorf("timing: snapshot order entry %d out of range", v)
		}
		if pos[v] >= 0 {
			return fmt.Errorf("timing: snapshot order repeats vertex %d", v)
		}
		pos[v] = k
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Removed {
			continue
		}
		if pos[e.From] >= pos[e.To] {
			return fmt.Errorf("timing: snapshot order violates edge %d (%d->%d)", i, e.From, e.To)
		}
	}
	return nil
}
