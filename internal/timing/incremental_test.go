package timing

import (
	"context"
	"math/rand"
	"testing"
)

// applyRandomEdit applies one random supported edit to g, mirroring it on
// ref so the two graphs stay structurally identical. It returns false when
// the drawn edit was inapplicable (e.g. the candidate edge would close a
// cycle) and nothing was changed.
func applyRandomEdit(t *testing.T, rng *rand.Rand, g, ref *Graph) bool {
	t.Helper()
	pick := func(gr *Graph) int {
		for {
			ei := rng.Intn(len(gr.Edges))
			if !gr.Edges[ei].Removed {
				return ei
			}
		}
	}
	switch op := rng.Intn(4); op {
	case 0: // scale
		ei := pick(g)
		scale := 0.5 + rng.Float64()*1.5
		if err := g.ScaleEdgeDelay(ei, scale); err != nil {
			t.Fatal(err)
		}
		if err := ref.ScaleEdgeDelay(ei, scale); err != nil {
			t.Fatal(err)
		}
	case 1: // set nominal
		ei := pick(g)
		nom := 10 + rng.Float64()*200
		if err := g.SetEdgeNominal(ei, nom); err != nil {
			t.Fatal(err)
		}
		if err := ref.SetEdgeNominal(ei, nom); err != nil {
			t.Fatal(err)
		}
	case 2: // add edge between random order-compatible vertices
		from := rng.Intn(g.NumVerts)
		to := rng.Intn(g.NumVerts)
		if from == to {
			return false
		}
		delay := g.Space.Const(5 + rng.Float64()*100)
		if _, err := g.AddEdgeLive(from, to, delay, nil, 0); err != nil {
			return false // would close a cycle; skip
		}
		if _, err := ref.AddEdgeLive(from, to, delay, nil, 0); err != nil {
			t.Fatalf("ref rejected edge the live graph accepted: %v", err)
		}
	case 3: // remove edge (keep at least one fanin of each output intact by retrying on disconnects later)
		ei := pick(g)
		if err := g.RemoveEdge(ei); err != nil {
			t.Fatal(err)
		}
		if err := ref.RemoveEdge(ei); err != nil {
			t.Fatal(err)
		}
	}
	return true
}

// TestIncrementalMatchesFullRandomEdits is the flat-graph golden test: N
// random edits applied through the edit API with incremental re-propagation
// must match a from-scratch full pass over an identically edited graph at
// 1e-9, arrival by arrival.
func TestIncrementalMatchesFullRandomEdits(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		t.Run(name, func(t *testing.T) {
			base := buildBench(t, name, 1)
			g := base.Clone()
			ref := base.Clone()
			inc, err := g.NewIncremental()
			if err != nil {
				t.Fatal(err)
			}
			if err := inc.EnableRequired(context.Background()); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			const edits = 40
			checkEvery := 5
			for n := 0; n < edits; n++ {
				if !applyRandomEdit(t, rng, g, ref) {
					continue
				}
				if _, err := inc.Update(context.Background()); err != nil {
					t.Fatal(err)
				}
				if n%checkEvery != 0 {
					continue
				}
				// Full from-scratch forward pass on the reference graph.
				p := ref.AcquirePass()
				if err := p.Arrivals(ref.Inputs...); err != nil {
					t.Fatal(err)
				}
				for v := 0; v < g.NumVerts; v++ {
					if p.Reached(v) != inc.Reached(v) {
						t.Fatalf("edit %d: vertex %d reach %v vs full %v", n, v, inc.Reached(v), p.Reached(v))
					}
					if !p.Reached(v) {
						continue
					}
					got, err := inc.Arrival(v)
					if err != nil {
						t.Fatal(err)
					}
					if d := formDiff(got, p.Form(v)); d > 1e-9 {
						t.Fatalf("edit %d: vertex %d arrival differs by %g", n, v, d)
					}
				}
				p.Release()
				// Required times against a full backward pass.
				q := ref.AcquirePass()
				if err := q.Required(ref.Outputs...); err != nil {
					t.Fatal(err)
				}
				for v := 0; v < g.NumVerts; v++ {
					got, err := inc.Required(v)
					if err != nil {
						t.Fatal(err)
					}
					if (got == nil) != !q.Reached(v) {
						t.Fatalf("edit %d: vertex %d required reach mismatch", n, v)
					}
					if got == nil {
						continue
					}
					if d := formDiff(got, q.Form(v)); d > 1e-9 {
						t.Fatalf("edit %d: vertex %d required differs by %g", n, v, d)
					}
				}
				q.Release()
				// And the headline number. Random removals may disconnect
				// every output; both engines must then agree on the error.
				want, werr := ref.MaxDelay()
				got, gerr := inc.MaxDelay()
				if (werr != nil) != (gerr != nil) {
					t.Fatalf("edit %d: max delay errors disagree: %v vs %v", n, gerr, werr)
				}
				if werr == nil {
					if d := formDiff(got, want); d > 1e-9 {
						t.Fatalf("edit %d: max delay differs by %g", n, d)
					}
				}
			}
		})
	}
}

// TestIncrementalRetargetIO re-bases the sources/sinks and checks against a
// full pass.
func TestIncrementalRetargetIO(t *testing.T) {
	g := buildBench(t, "c432", 1)
	inc, err := g.NewIncremental()
	if err != nil {
		t.Fatal(err)
	}
	// Drop the first half of the inputs and the last output.
	nIn := len(g.Inputs)/2 + 1
	ins := append([]int(nil), g.Inputs[:nIn]...)
	inNames := append([]string(nil), g.InputNames[:nIn]...)
	outs := append([]int(nil), g.Outputs[:len(g.Outputs)-1]...)
	outNames := append([]string(nil), g.OutputNames[:len(g.Outputs)-1]...)
	if err := g.RetargetIO(ins, outs, inNames, outNames); err != nil {
		t.Fatal(err)
	}
	st, err := inc.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Fatal("IO retarget fell back to full rebuild")
	}
	got, err := inc.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if d := formDiff(got, want); d > 1e-9 {
		t.Fatalf("post-retarget delay differs by %g", d)
	}
}

// TestEnableRequiredRejectsPendingEdits fences EnableRequired against
// unabsorbed edit metadata: with a RetargetIO pending, its syncIO would
// rebase the sources/outputs early and the later Update would seed
// new-and-new instead of old-and-new endpoints, so former sources would
// keep stale arrival state. The call must refuse until Update absorbed the
// edits.
func TestEnableRequiredRejectsPendingEdits(t *testing.T) {
	g := buildBench(t, "c432", 1)
	inc, err := g.NewIncremental()
	if err != nil {
		t.Fatal(err)
	}
	nIn := len(g.Inputs)/2 + 1
	ins := append([]int(nil), g.Inputs[:nIn]...)
	inNames := append([]string(nil), g.InputNames[:nIn]...)
	outs := append([]int(nil), g.Outputs...)
	outNames := append([]string(nil), g.OutputNames...)
	if err := g.RetargetIO(ins, outs, inNames, outNames); err != nil {
		t.Fatal(err)
	}
	if err := inc.EnableRequired(context.Background()); err == nil {
		t.Fatal("EnableRequired accepted a graph with pending edits")
	}
	if _, err := inc.Update(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := inc.EnableRequired(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The required state seeded after the absorb must match a full pass.
	q := g.AcquirePass()
	defer q.Release()
	if err := q.Required(g.Outputs...); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVerts; v++ {
		got, err := inc.Required(v)
		if err != nil {
			t.Fatal(err)
		}
		if (got == nil) != !q.Reached(v) {
			t.Fatalf("vertex %d required reach mismatch", v)
		}
		if got == nil {
			continue
		}
		if d := formDiff(got, q.Form(v)); d > 1e-9 {
			t.Fatalf("vertex %d required differs by %g", v, d)
		}
	}
}

// TestIncrementalRawAddEdgeFallsBack checks the conservative path: a raw
// AddEdge (no cycle guard, no seeds) must force a full rebuild rather than
// serve stale state.
func TestIncrementalRawAddEdgeFallsBack(t *testing.T) {
	g := buildC17(t)
	inc, err := g.NewIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(g.Inputs[0], g.NumVerts-1, g.Space.Const(1000), nil, 0); err != nil {
		t.Fatal(err)
	}
	st, err := inc.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatal("raw AddEdge did not force a full rebuild")
	}
	got, _ := inc.MaxDelay()
	want, _ := g.MaxDelay()
	if d := formDiff(got, want); d > 1e-12 {
		t.Fatalf("rebuilt state differs by %g", d)
	}
}

// TestIncrementalConeSmallerThanGraph is the acceptance fence: a
// single-edge edit on the largest generated benchmark must re-propagate
// measurably fewer vertices than a full pass. The edited edge is chosen
// deterministically with a mid-sized fan-out cone so the assertion tests
// the engine, not a lucky leaf.
func TestIncrementalConeSmallerThanGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("c7552 build in -short mode")
	}
	g := buildBench(t, "c7552", 1)
	inc, err := g.NewIncremental()
	if err != nil {
		t.Fatal(err)
	}
	// Fan-out cone size per vertex, to pick a representative edge.
	coneSize := func(v int) int {
		seen := make([]bool, g.NumVerts)
		stack := []int{v}
		seen[v] = true
		n := 0
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n++
			for _, ei := range g.Out[x] {
				to := g.Edges[ei].To
				if !seen[to] {
					seen[to] = true
					stack = append(stack, to)
				}
			}
		}
		return n
	}
	// First edge whose head has a cone of at least 32 vertices but at most
	// a quarter of the graph.
	edit := -1
	for ei := range g.Edges {
		if c := coneSize(g.Edges[ei].To); c >= 32 && c <= g.NumVerts/4 {
			edit = ei
			break
		}
	}
	if edit < 0 {
		t.Fatal("no edge with a mid-sized cone found")
	}
	cone := coneSize(g.Edges[edit].To)
	if err := g.ScaleEdgeDelay(edit, 1.25); err != nil {
		t.Fatal(err)
	}
	st, err := inc.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Fatal("single-edge edit fell back to full rebuild")
	}
	if st.Forward == 0 {
		t.Fatal("edit re-propagated nothing")
	}
	if st.Forward > cone {
		t.Fatalf("re-propagated %d vertices, more than the %d-vertex cone", st.Forward, cone)
	}
	if st.Forward >= g.NumVerts/2 {
		t.Fatalf("re-propagated %d of %d vertices — not measurably fewer than a full pass",
			st.Forward, g.NumVerts)
	}
	t.Logf("c7552: %d verts, cone %d, recomputed %d", g.NumVerts, cone, st.Forward)
	// The result still matches a full pass.
	got, err := inc.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if d := formDiff(got, want); d > 1e-9 {
		t.Fatalf("incremental delay differs from full by %g", d)
	}
}

// TestIncrementalCancellation interrupts an update and checks the state
// recovers via full rebuild instead of serving a half-swept arena.
func TestIncrementalCancellation(t *testing.T) {
	g := buildBench(t, "c880", 1)
	inc, err := g.NewIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ScaleEdgeDelay(0, 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.Update(ctx); err == nil {
		// The cone may be swept before the first ctx poll; that is fine —
		// the state is then consistent and nothing needs recovery.
		t.Skip("update completed before cancellation was observed")
	}
	if _, err := inc.MaxDelay(); err == nil {
		t.Fatal("stale state served a delay")
	}
	st, err := inc.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatal("recovery did not rebuild")
	}
	got, _ := inc.MaxDelay()
	want, _ := g.MaxDelay()
	if d := formDiff(got, want); d > 1e-12 {
		t.Fatalf("recovered state differs by %g", d)
	}
}
