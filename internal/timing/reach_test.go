package timing

import (
	"fmt"
	"testing"

	"repro/internal/canon"
)

// wideGraph builds a graph with n parallel input->mid->output lanes plus
// one extra "hub" input feeding every lane's mid vertex, so reachability
// sets span multiple 64-bit words and differ per vertex.
//
// Layout: vertices [0,n) inputs, [n,2n) mids, [2n,3n) outputs, 3n = hub.
func wideGraph(t *testing.T, n int) *Graph {
	t.Helper()
	space := canon.Space{Globals: 1, Components: 1}
	g := NewGraph(space, 3*n+1, nil)
	hub := 3 * n
	ins := make([]int, 0, n+1)
	outs := make([]int, 0, n)
	names := func(prefix string, k int) string { return fmt.Sprintf("%s%d", prefix, k) }
	var inNames, outNames []string
	for i := 0; i < n; i++ {
		mustEdge(t, g, i, n+i, space.Const(1))
		mustEdge(t, g, n+i, 2*n+i, space.Const(1))
		mustEdge(t, g, hub, n+i, space.Const(2))
		ins = append(ins, i)
		outs = append(outs, 2*n+i)
		inNames = append(inNames, names("in", i))
		outNames = append(outNames, names("out", i))
	}
	ins = append(ins, hub)
	inNames = append(inNames, "hub")
	if err := g.SetIO(ins, outs, inNames, outNames); err != nil {
		t.Fatal(err)
	}
	return g
}

func mustEdge(t *testing.T, g *Graph, from, to int, f *canon.Form) {
	t.Helper()
	if _, err := g.AddEdge(from, to, f, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func bit(w []uint64, i int) bool { return w[i/64]&(1<<uint(i%64)) != 0 }

// TestReachabilityMultiWord exercises the bitset propagation with >64
// inputs and outputs, so every set spans two words.
func TestReachabilityMultiWord(t *testing.T) {
	const n = 70 // 71 inputs, 70 outputs: two uint64 words each
	g := wideGraph(t, n)
	rs, err := g.Reachability()
	if err != nil {
		t.Fatal(err)
	}
	if rs.WIn != 2 || rs.WOut != 2 {
		t.Fatalf("want 2-word bitsets, got %d/%d", rs.WIn, rs.WOut)
	}
	hubIdx := n // index of "hub" in g.Inputs
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Lane input i reaches exactly lane i's mid and output.
			wantFwd := i == j
			if got := bit(rs.FromInput(n+j), i); got != wantFwd {
				t.Fatalf("fromInput[mid %d] bit %d = %v, want %v", j, i, got, wantFwd)
			}
			if got := bit(rs.FromInput(2*n+j), i); got != wantFwd {
				t.Fatalf("fromInput[out %d] bit %d = %v, want %v", j, i, got, wantFwd)
			}
			// Output j is reached from vertex-side: mid/out of lane j only.
			if got := bit(rs.ToOutput(n+i), j); got != wantFwd {
				t.Fatalf("toOutput[mid %d] bit %d = %v, want %v", i, j, got, wantFwd)
			}
		}
		// The hub (input index n, in the second word) reaches every lane.
		if !bit(rs.FromInput(n+i), hubIdx) || !bit(rs.FromInput(2*n+i), hubIdx) {
			t.Fatalf("hub bit missing on lane %d", i)
		}
		// Every lane input sees exactly its own output (both words checked).
		if !bit(rs.ToOutput(i), i) {
			t.Fatalf("toOutput[in %d] missing own bit", i)
		}
		for j := 0; j < n; j++ {
			if j != i && bit(rs.ToOutput(i), j) {
				t.Fatalf("toOutput[in %d] has spurious bit %d", i, j)
			}
		}
	}
	// The hub reaches all outputs, including those with index >= 64.
	for j := 0; j < n; j++ {
		if !bit(rs.ToOutput(3*n), j) {
			t.Fatalf("toOutput[hub] missing bit %d", j)
		}
	}
}

// TestDelayToOutputUnreachableVertices: vertices that cannot reach the
// queried output must come back nil (pointer API) / unreached (pass API).
func TestDelayToOutputUnreachableVertices(t *testing.T) {
	const n = 3
	g := wideGraph(t, n)
	out0 := g.Outputs[0] // lane 0's output
	req, err := g.DelayToOutput(out0)
	if err != nil {
		t.Fatal(err)
	}
	// Reaching: lane 0 (in, mid, out) and the hub.
	for _, v := range []int{0, n, 2 * n, 3 * n} {
		if req[v] == nil {
			t.Fatalf("vertex %d should reach output %d", v, out0)
		}
	}
	// Every other lane's vertices cannot.
	for lane := 1; lane < n; lane++ {
		for _, v := range []int{lane, n + lane, 2*n + lane} {
			if req[v] != nil {
				t.Fatalf("vertex %d must NOT reach output %d, got %v", v, out0, req[v])
			}
		}
	}
	// Pass-level view agrees.
	p := g.AcquirePass()
	defer p.Release()
	if err := p.Required(out0); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVerts; v++ {
		if (req[v] != nil) != p.Reached(v) {
			t.Fatalf("vertex %d: Forms/Reached disagree", v)
		}
		if f := p.Form(v); (f == nil) == (req[v] != nil) {
			t.Fatalf("vertex %d: Form nil-ness disagrees", v)
		}
	}
	// Delay from hub to out0: hub->mid0 (2) + mid0->out0 (1).
	if got := req[3*n].Nominal; got != 3 {
		t.Fatalf("hub delay-to-output nominal %g, want 3", got)
	}
}
