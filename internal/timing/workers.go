package timing

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select GOMAXPROCS,
// and the count is never larger than n (the number of work items).
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// PanicError is a panic captured on a pooled worker goroutine: the panic
// value plus the stack of the worker at the point of the panic. ParallelFor
// re-panics it on the calling goroutine, so a panicking task crashes the
// caller (who may recover) instead of the whole process.
type PanicError struct {
	Index int    // work-item index whose fn panicked
	Value any    // the original panic value
	Stack []byte // worker stack at the point of the panic
}

// Error formats the panic with its worker stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("timing: panic in parallel task %d: %v\n\nworker stack:\n%s", e.Index, e.Value, e.Stack)
}

// ParallelFor runs fn(i) for every i in [0, n) on a bounded pool of
// `workers` goroutines (<=0: GOMAXPROCS). It is ParallelForCtx with a
// background context; see there for error and panic semantics.
func ParallelFor(n, workers int, fn func(i int) error) error {
	return ParallelForCtx(context.Background(), n, workers, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// ParallelForCtx runs fn(ctx, i) for every i in [0, n) on a bounded pool of
// `workers` goroutines (<=0: GOMAXPROCS). With workers == 1 the calls run
// serially on the calling goroutine in index order, so a serial reference
// path and the parallel path share one implementation.
//
// Cancellation is cooperative. The ctx passed to fn is derived from the
// caller's: it is cancelled as soon as the caller's ctx is done or any task
// fails, so a long-running or blocking fn can observe pool-wide shutdown.
// Unclaimed indices are never started once the derived ctx is cancelled.
// The first task error is returned; when the pool stops because the
// caller's ctx was done before every index completed, the ctx error is
// returned. fn must be safe to call concurrently for distinct indices.
//
// A panicking task does not kill the process: the panic is captured as a
// *PanicError (carrying the worker stack), cancels the pool, and is
// re-panicked on the calling goroutine once the pool has drained. With
// workers == 1 the panic propagates natively, the calling goroutine being
// the one that ran fn.
func ParallelForCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		once      sync.Once
		firstE    error
		panicOnce sync.Once
		panicE    *PanicError
		wg        sync.WaitGroup
	)
	// fail records the pool's result error exactly once and cancels the
	// derived ctx so in-flight tasks and unclaimed indices stop promptly.
	// Workers that subsequently observe the cancelled ctx report ctx.Err(),
	// but once keeps the original cause; only when the caller's own ctx
	// expires first is the ctx error itself the result. Panics are tracked
	// in their own slot so a panic arriving after a routine error (or a
	// cancellation) is never silently downgraded — it must resurface on
	// the caller, whatever else went wrong first.
	fail := func(err error) {
		if pe, ok := err.(*PanicError); ok {
			panicOnce.Do(func() { panicE = pe })
		} else {
			once.Do(func() { firstE = err })
		}
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Claim-then-check: an index abandoned because the pool is
				// shutting down must surface as an error, never as a
				// silently skipped item.
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := protectedCall(ctx, i, fn); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicE != nil {
		panic(panicE)
	}
	return firstE
}

// protectedCall invokes fn(ctx, i), converting a panic into a *PanicError
// so one bad task cancels the pool instead of crashing the process.
func protectedCall(ctx context.Context, i int, fn func(context.Context, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}
