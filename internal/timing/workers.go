package timing

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select GOMAXPROCS,
// and the count is never larger than n (the number of work items).
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ParallelFor runs fn(i) for every i in [0, n) on a bounded pool of
// `workers` goroutines (<=0: GOMAXPROCS). With workers == 1 the calls run
// serially on the calling goroutine in index order, so a serial reference
// path and the parallel path share one implementation. The first error
// stops the distribution of further indices and is returned; fn must be
// safe to call concurrently for distinct indices.
func ParallelFor(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstE  error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstE = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstE
}
