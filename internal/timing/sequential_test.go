package timing

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/canon"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/place"
	"repro/internal/variation"
)

// buildSeq builds the full stack for a clocked circuit.
func buildSeq(t *testing.T, c *circuit.Circuit) *Graph {
	t.Helper()
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := variation.DefaultCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func clockedC17(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Clocked(circuit.C17())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBuildSequentialStructure pins the sequential graph shape: one virtual
// clock root, one clk->Q edge per register, no D->Q edge, registered POs
// mapped to their D sources.
func TestBuildSequentialStructure(t *testing.T) {
	c := clockedC17(t)
	g := buildSeq(t, c)
	if !g.Sequential() {
		t.Fatal("graph not sequential")
	}
	if g.NumVerts != c.NumNodes()+1 {
		t.Fatalf("verts = %d, want %d (+1 clock root)", g.NumVerts, c.NumNodes())
	}
	if len(g.ClockRoots) != 1 || g.ClockRoots[0] != c.NumNodes() {
		t.Fatalf("clock roots = %v", g.ClockRoots)
	}
	if len(g.Registers) != c.NumRegs() {
		t.Fatalf("registers = %d, want %d", len(g.Registers), c.NumRegs())
	}
	clk := g.ClockRoots[0]
	if got, want := len(g.Out[clk]), c.NumRegs(); got != want {
		t.Fatalf("clock root drives %d edges, want %d", got, want)
	}
	for _, r := range g.Registers {
		e := &g.Edges[r.ClkEdge]
		if e.From != clk || e.To != r.Q {
			t.Fatalf("register %q clk edge %d->%d, want %d->%d", r.Name, e.From, e.To, clk, r.Q)
		}
		if r.Setup.Nominal <= 0 || r.Hold.Nominal <= 0 {
			t.Fatalf("register %q constraints %g/%g not positive", r.Name, r.Setup.Nominal, r.Hold.Nominal)
		}
		if r.Setup.Std() == 0 || r.Hold.Std() == 0 {
			t.Fatalf("register %q constraints carry no variation", r.Name)
		}
		// No data edge may enter the Q vertex: only the clock launch.
		if len(g.In[r.Q]) != 1 {
			t.Fatalf("register %q Q has %d fanin edges, want 1 (clock only)", r.Name, len(g.In[r.Q]))
		}
	}
	// Registered POs expose the D source vertex under the register name.
	for i, o := range g.Outputs {
		if o == g.ClockRoots[0] {
			t.Fatalf("output %d is the clock root", i)
		}
		found := false
		for _, r := range g.Registers {
			if r.Name == g.OutputNames[i] && r.D == o {
				found = true
			}
		}
		if !found {
			t.Fatalf("output port %q (vertex %d) is not a capture register's D source", g.OutputNames[i], o)
		}
	}
	if len(g.LaunchSources()) != len(g.Inputs)+1 {
		t.Fatalf("launch sources = %v", g.LaunchSources())
	}
	if _, err := g.MaxDelay(); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialSlacksSmoke runs the setup/hold analysis on the clocked c17
// and sanity-checks the slack forms.
func TestSequentialSlacksSmoke(t *testing.T) {
	g := buildSeq(t, clockedC17(t))
	res, err := g.SequentialSlacks(ClockSpec{PeriodPS: 500, SkewPS: 20, JitterPS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regs) != len(g.Registers) {
		t.Fatalf("slacks for %d of %d registers", len(res.Regs), len(g.Registers))
	}
	for _, rs := range res.Regs {
		if rs.Setup == nil || rs.Hold == nil {
			t.Fatalf("register %q missing slack", rs.Name)
		}
		// A 500ps clock leaves the shallow c17 paths comfortable margins.
		if rs.Setup.Mean() <= 0 {
			t.Fatalf("register %q setup slack mean %g <= 0 at 500ps", rs.Name, rs.Setup.Mean())
		}
		// Jitter must show up in the private randomness.
		if rs.Setup.Rand < 10 || rs.Hold.Rand < 10 {
			t.Fatalf("register %q slack rand %g/%g misses the 10ps jitter", rs.Name, rs.Setup.Rand, rs.Hold.Rand)
		}
	}
	if res.WorstSetup == nil || res.WorstHold == nil {
		t.Fatal("missing worst slacks")
	}
	// The worst slack cannot beat any individual register's slack by mean.
	for _, rs := range res.Regs {
		if res.WorstSetup.Mean() > rs.Setup.Mean()+1e-9 {
			t.Fatalf("worst setup %g above register %q setup %g", res.WorstSetup.Mean(), rs.Name, rs.Setup.Mean())
		}
	}

	// Tightening the clock must shrink setup slack and leave hold alone.
	tight, err := g.SequentialSlacks(ClockSpec{PeriodPS: 300, SkewPS: 20, JitterPS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.WorstSetup.Mean() - tight.WorstSetup.Mean(); math.Abs(d-200) > 1e-9 {
		t.Fatalf("setup slack moved by %g for a 200ps period change", d)
	}
	if math.Abs(res.WorstHold.Mean()-tight.WorstHold.Mean()) > 1e-12 {
		t.Fatal("hold slack depends on the period")
	}

	// Combinational graphs reject sequential analysis.
	comb := buildC17(t)
	if _, err := comb.SequentialSlacks(DefaultClock()); err == nil {
		t.Fatal("SequentialSlacks accepted a combinational graph")
	}
}

// TestMinPropagationIdentity pins ArrivalsMin against the negated-max
// identity: min-propagating a graph equals negating every delay, running the
// max pass, and negating the result.
func TestMinPropagationIdentity(t *testing.T) {
	g := buildC17(t)
	p := g.AcquirePass()
	defer p.Release()
	if err := p.ArrivalsMin(g.Inputs...); err != nil {
		t.Fatal(err)
	}
	got := make([]*canon.Form, g.NumVerts)
	for v := 0; v < g.NumVerts; v++ {
		got[v] = p.Form(v)
	}

	neg := NewGraph(g.Space, g.NumVerts, g.Params)
	for _, e := range g.Edges {
		if _, err := neg.AddEdge(e.From, e.To, e.Delay.Scale(-1), nil, e.Grid); err != nil {
			t.Fatal(err)
		}
	}
	np := neg.AcquirePass()
	defer np.Release()
	if err := np.Arrivals(g.Inputs...); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVerts; v++ {
		want := np.Form(v)
		if (got[v] == nil) != (want == nil) {
			t.Fatalf("vertex %d reach mismatch", v)
		}
		if got[v] == nil {
			continue
		}
		w := want.Scale(-1)
		if math.Abs(got[v].Mean()-w.Mean()) > 1e-9 || math.Abs(got[v].Std()-w.Std()) > 1e-9 {
			t.Fatalf("vertex %d: min (%g, %g) vs -max(-d) (%g, %g)",
				v, got[v].Mean(), got[v].Std(), w.Mean(), w.Std())
		}
	}
}

// TestMinPassParallelMatchesSerial is the golden bit-reproducibility test
// for the earliest-arrival kernel: the parallel wavefront pass must match
// the serial pass within 1e-9 (they are designed to be bit-identical; the
// test asserts the documented tolerance).
func TestMinPassParallelMatchesSerial(t *testing.T) {
	c, err := circuit.GenerateClocked(circuit.TopoSpec{
		Name: "minpar", PIs: 12, POs: 8, Gates: 160, Edges: 330, Depth: 12,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	g := buildSeq(t, c)
	sources := g.LaunchSources()

	serial := g.AcquirePass()
	defer serial.Release()
	if err := serial.ArrivalsMin(sources...); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par := g.AcquirePass().WithWorkers(workers)
		if err := par.ArrivalsMin(sources...); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVerts; v++ {
			if serial.Reached(v) != par.Reached(v) {
				t.Fatalf("workers=%d vertex %d reach mismatch", workers, v)
			}
			if !serial.Reached(v) {
				continue
			}
			sv, pv := serial.At(v), par.At(v)
			for i := range sv {
				if math.Abs(sv[i]-pv[i]) > 1e-9 {
					t.Fatalf("workers=%d vertex %d slot %d: serial %g parallel %g",
						workers, v, i, sv[i], pv[i])
				}
			}
		}
		par.Release()
	}
}

// TestRegToRegSegmentation checks the launch/capture path matrix on the
// clocked c17: every capture register's D must be reachable from at least
// one launch register Q (the input stage feeds the logic).
func TestRegToRegSegmentation(t *testing.T) {
	g := buildSeq(t, clockedC17(t))
	sm, err := g.RegToReg(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.M) != len(g.Registers)+len(g.Inputs) {
		t.Fatalf("launch rows = %d", len(sm.M))
	}
	nCap := len(g.Registers) + len(g.Outputs)
	reached := make([]bool, nCap)
	for _, row := range sm.M {
		if len(row) != nCap {
			t.Fatalf("capture cols = %d, want %d", len(row), nCap)
		}
		for j, f := range row {
			if f != nil {
				reached[j] = true
				if f.Mean() < 0 {
					t.Fatal("negative segment delay")
				}
			}
		}
	}
	isLaunch := make(map[int]bool)
	for _, r := range g.Registers {
		isLaunch[r.Q] = true
	}
	for _, in := range g.Inputs {
		isLaunch[in] = true
	}
	for j, r := range g.Registers {
		// Input-stage registers capture a raw PI — a launch point itself,
		// reported as a (skipped) zero-length self segment. Every other
		// capture point must be covered by some launch.
		if !reached[j] && !isLaunch[r.D] {
			t.Fatalf("capture point %q unreached by every launch", sm.CaptureNames[j])
		}
	}
}

// TestSequentialSnapshotRoundTrip checks that registers and clock roots
// survive the durable snapshot, JSON encoding included, and that slacks
// computed on the restored graph match exactly.
func TestSequentialSnapshotRoundTrip(t *testing.T) {
	g := buildSeq(t, clockedC17(t))
	snap := g.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back GraphSnapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	g2, err := FromSnapshot(&back)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Registers) != len(g.Registers) || len(g2.ClockRoots) != len(g.ClockRoots) {
		t.Fatalf("sequential metadata lost: %d/%d registers, %d/%d roots",
			len(g2.Registers), len(g.Registers), len(g2.ClockRoots), len(g.ClockRoots))
	}
	clock := ClockSpec{PeriodPS: 400, SkewPS: 15, JitterPS: 5}
	a, err := g.SequentialSlacks(clock)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g2.SequentialSlacks(clock)
	if err != nil {
		t.Fatal(err)
	}
	if a.WorstSetup.Mean() != b.WorstSetup.Mean() || a.WorstHold.Std() != b.WorstHold.Std() {
		t.Fatalf("restored slacks differ: setup %g vs %g", a.WorstSetup.Mean(), b.WorstSetup.Mean())
	}

	// A hostile register index must be rejected.
	bad := *snap
	bad.Registers = append([]RegisterSnapshot(nil), snap.Registers...)
	bad.Registers[0].Q = snap.NumVerts + 3
	if _, err := FromSnapshot(&bad); err == nil {
		t.Fatal("FromSnapshot accepted out-of-range register Q")
	}

	// Clone carries the metadata too.
	cl := g.Clone()
	if len(cl.Registers) != len(g.Registers) || len(cl.ClockRoots) != len(g.ClockRoots) {
		t.Fatal("Clone dropped sequential metadata")
	}
}
