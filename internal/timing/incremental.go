package timing

import (
	"context"
	"errors"

	"repro/internal/canon"
)

// IncrementalTol is the early-termination threshold of the dirty-cone
// sweeps: a recomputed canonical form whose every component is within this
// absolute distance of the stored one is treated as unchanged and its cone
// is not pursued further. The residual it can leave behind is orders of
// magnitude below the 1e-9 equivalence the engine guarantees against a
// from-scratch pass.
const IncrementalTol = 1e-12

// Incremental is the persistent propagation state of a mutable graph — the
// paper's ECO argument turned into a data structure. A full forward pass is
// paid once at construction; after that, every batch of edits made through
// the Graph edit API (SetEdgeDelay, AddEdgeLive, RemoveEdge, RetargetIO,
// ...) is absorbed by Update, which re-propagates arrival times only
// through the dirty fan-out cones of the edited edges, terminating early
// where recomputed forms match the stored ones within IncrementalTol.
// Required times are maintained the same way through fan-in cones once
// EnableRequired is called.
//
// Unlike the pooled Pass arenas, the banks here are owned by the
// Incremental and live as long as the session does. An Incremental is bound
// to its graph and follows the graph's single-writer contract: Update and
// the graph's edit API must not run concurrently with each other or with
// any reader. At most one Incremental may consume a graph's edit stream;
// creating a second one detaches the first.
//
// Numerical contract: within one vertex the fan-in contributions are folded
// in topological order of their source vertices — the exact operation order
// of a full forward pass — so a sweep that recomputes a vertex reproduces
// the full pass bit for bit; divergence can enter only through cones cut at
// IncrementalTol.
type Incremental struct {
	g *Graph

	arr   *canon.Bank // arrival per vertex + 2 scratch slots
	reach []bool

	req      *canon.Bank // required-time state, nil until EnableRequired
	reqReach []bool

	order     []int // snapshot of the graph order the state was built on
	topoPos   []int // vertex -> position in order
	sources   []int // arrival sources (graph inputs at last sync)
	sourceSet []bool
	outputs   []int // required sinks (graph outputs at last sync)
	outputSet []bool

	affected []bool  // per-vertex mark of the sweep in progress
	inbuf    []int32 // fan-in sort scratch

	stale bool // a failed update left the state unusable until Rebuild

	// Seed journal (EnableSeedJournal): dirty seeds absorbed by Update
	// accumulate here for a second-tier consumer. Graph.takeDirty has
	// exactly one consumer — this Incremental — so anything else keyed to
	// the same edit stream (incremental criticality) reads the journal
	// instead, at its own, possibly slower, cadence.
	journalOn  bool
	jFwd, jBwd []int
	jIO, jFull bool
}

// UpdateStats reports what one Update actually did.
type UpdateStats struct {
	// Forward is the number of vertices whose arrival was recomputed;
	// Backward the number of required-time recomputations (zero unless
	// EnableRequired). After a full rebuild both count every vertex swept.
	Forward  int
	Backward int
	// Full marks a fallback to full re-propagation (metadata overflow, a
	// raw AddEdge, or recovery from an interrupted update).
	Full bool
}

// NewIncremental builds persistent incremental state for the graph, paying
// one full forward pass from the graph's inputs.
func (g *Graph) NewIncremental() (*Incremental, error) {
	return g.NewIncrementalCtx(context.Background())
}

// NewIncrementalCtx is NewIncremental with cooperative cancellation.
func (g *Graph) NewIncrementalCtx(ctx context.Context) (*Incremental, error) {
	inc := &Incremental{g: g}
	if err := inc.Rebuild(ctx); err != nil {
		return nil, err
	}
	return inc, nil
}

// Rebuild discards the incremental state and recomputes it with full
// passes — the recovery path after an interrupted update, and the
// implementation of UpdateStats.Full.
func (inc *Incremental) Rebuild(ctx context.Context) error {
	g := inc.g
	inc.stale = true
	inc.journalSeeds(nil, nil, false, true) // full passes refresh everything
	g.takeDirty()                           // absorbed wholesale by the full pass
	order, err := g.Order()
	if err != nil {
		return err
	}
	inc.syncOrder(order)
	inc.syncIO()
	if inc.arr == nil {
		inc.arr = canon.NewBank(g.Space, g.NumVerts+2)
		inc.reach = make([]bool, g.NumVerts)
		inc.affected = make([]bool, g.NumVerts)
	}
	if err := forwardPass(g, inc.arr, inc.reach, g.EdgeDelays(), ctx, inc.sources); err != nil {
		return err
	}
	if inc.req != nil {
		if err := backwardPass(g, inc.req, inc.reqReach, g.EdgeDelays(), ctx, inc.outputs); err != nil {
			return err
		}
	}
	inc.stale = false
	return nil
}

// EnableRequired switches on required-time maintenance: one full backward
// pass now, incremental fan-in cone sweeps on every subsequent Update.
func (inc *Incremental) EnableRequired(ctx context.Context) error {
	if inc.req != nil {
		return nil
	}
	if inc.stale {
		return errors.New("timing: incremental state is stale; Rebuild first")
	}
	g := inc.g
	// Unabsorbed edits would be half-seen here: syncIO below rebases the
	// sources/outputs onto the graph's new IO, so a pending RetargetIO would
	// later seed new-and-new instead of old-and-new endpoints, leaving the
	// former sources never re-swept. Require a clean slate instead.
	if g.dirtyPending() {
		return errors.New("timing: graph has pending edits; Update before EnableRequired")
	}
	inc.req = canon.NewBank(g.Space, g.NumVerts+2)
	inc.reqReach = make([]bool, g.NumVerts)
	inc.syncIO()
	if err := backwardPass(g, inc.req, inc.reqReach, g.EdgeDelays(), ctx, inc.outputs); err != nil {
		inc.req, inc.reqReach = nil, nil
		return err
	}
	return nil
}

// Update absorbs every edit made to the graph since the last Update (or
// construction), re-propagating through the affected cones only. On error
// (cancellation mid-sweep) the state is marked stale and the next Update
// falls back to a full rebuild.
func (inc *Incremental) Update(ctx context.Context) (UpdateStats, error) {
	g := inc.g
	fwd, bwd, io, full := g.takeDirty()
	inc.journalSeeds(fwd, bwd, io, full || inc.stale)
	if full || inc.stale {
		st := UpdateStats{Forward: g.NumVerts, Full: true}
		if inc.req != nil {
			st.Backward = g.NumVerts
		}
		return st, inc.Rebuild(ctx)
	}
	order, err := g.Order()
	if err != nil {
		return UpdateStats{}, err
	}
	if !sameOrder(order, inc.order) {
		inc.syncOrder(order)
	}
	if io {
		// Re-seed the union of old and new endpoints: endpoints present in
		// both sets recompute to their stored values and terminate the
		// sweep immediately.
		fwd = append(fwd, inc.sources...)
		fwd = append(fwd, g.Inputs...)
		if inc.req != nil {
			bwd = append(bwd, inc.outputs...)
			bwd = append(bwd, g.Outputs...)
		}
		inc.syncIO()
	}
	delays := g.EdgeDelays()
	var st UpdateStats
	if st.Forward, err = inc.sweepForward(ctx, delays, fwd); err != nil {
		inc.stale = true
		inc.journalSeeds(nil, nil, false, true) // interrupted sweep: partial state
		return st, err
	}
	if inc.req != nil {
		if st.Backward, err = inc.sweepBackward(ctx, delays, bwd); err != nil {
			inc.stale = true
			inc.journalSeeds(nil, nil, false, true)
			return st, err
		}
	}
	return st, nil
}

// EnableSeedJournal switches on seed journaling: from now on every Update
// records the dirty seeds it absorbs (and whether it fell back to a full
// rebuild or re-based IO) until TakeSeeds drains them. Downstream state
// keyed to the same edit stream — incremental criticality — refreshes from
// the journal at its own cadence, since the graph's own dirty metadata is
// consumed wholesale by Update.
func (inc *Incremental) EnableSeedJournal() {
	inc.journalOn = true
}

// TakeSeeds drains the seed journal: the forward/backward dirty seed
// vertices accumulated since the previous TakeSeeds, plus whether any
// update in between re-based IO or fell back to a full rebuild (full is
// also set when the journal overflowed — precise tracking stops paying
// beyond a graph's worth of seeds — or when journaling was enabled after
// updates had already run).
func (inc *Incremental) TakeSeeds() (fwd, bwd []int, io, full bool) {
	fwd, bwd, io, full = inc.jFwd, inc.jBwd, inc.jIO, inc.jFull
	inc.jFwd, inc.jBwd, inc.jIO, inc.jFull = nil, nil, false, false
	return fwd, bwd, io, full
}

// journalSeeds appends one Update's absorbed seeds to the journal.
func (inc *Incremental) journalSeeds(fwd, bwd []int, io, full bool) {
	if !inc.journalOn {
		return
	}
	if full || inc.jFull {
		inc.jFwd, inc.jBwd, inc.jIO, inc.jFull = nil, nil, false, true
		return
	}
	inc.jFwd = append(inc.jFwd, fwd...)
	inc.jBwd = append(inc.jBwd, bwd...)
	inc.jIO = inc.jIO || io
	if len(inc.jFwd)+len(inc.jBwd) > inc.g.NumVerts {
		inc.jFwd, inc.jBwd, inc.jIO, inc.jFull = nil, nil, false, true
	}
}

// sweepForward re-propagates arrivals through the fan-out cones of the
// seed vertices, in topological order, stopping each branch as soon as a
// recomputed form matches the stored one.
func (inc *Incremental) sweepForward(ctx context.Context, delays *canon.Bank, seeds []int) (int, error) {
	if len(seeds) == 0 {
		return 0, nil
	}
	g := inc.g
	minPos := len(inc.order)
	pending := 0
	for _, v := range seeds {
		if !inc.affected[v] {
			inc.affected[v] = true
			pending++
			if p := inc.topoPos[v]; p < minPos {
				minPos = p
			}
		}
	}
	acc := inc.arr.View(g.NumVerts)
	tmp := inc.arr.View(g.NumVerts + 1)
	recomputed := 0
	for k := minPos; k < len(inc.order) && pending > 0; k++ {
		v := inc.order[k]
		if !inc.affected[v] {
			continue
		}
		inc.affected[v] = false
		pending--
		if err := stepCtx(ctx, recomputed); err != nil {
			inc.clearAffected()
			return recomputed, err
		}
		recomputed++
		if inc.recomputeArrival(v, delays, acc, tmp) {
			for _, ei := range g.Out[v] {
				to := g.Edges[ei].To
				if !inc.affected[to] {
					inc.affected[to] = true
					pending++
				}
			}
		}
	}
	return recomputed, nil
}

// recomputeArrival rebuilds one vertex's arrival from its fan-in and
// reports whether it changed beyond IncrementalTol. Contributions fold in
// topological order of their source vertices (see the type comment).
func (inc *Incremental) recomputeArrival(v int, delays *canon.Bank, acc, tmp canon.View) bool {
	g := inc.g
	in := inc.sortedFanin(v)
	reached := false
	if inc.sourceSet[v] {
		acc.SetConst(0)
		reached = true
	}
	for _, ei := range in {
		e := &g.Edges[ei]
		if !inc.reach[e.From] {
			continue
		}
		canon.AddViews(tmp, inc.arr.View(e.From), delays.View(int(ei)))
		if !reached {
			canon.CopyView(acc, tmp)
			reached = true
		} else {
			canon.MaxViews(acc, acc, tmp)
		}
	}
	return inc.commit(inc.arr.View(v), acc, &inc.reach[v], reached)
}

// sweepBackward mirrors sweepForward for required times: fan-in cones in
// reverse topological order.
func (inc *Incremental) sweepBackward(ctx context.Context, delays *canon.Bank, seeds []int) (int, error) {
	if len(seeds) == 0 {
		return 0, nil
	}
	g := inc.g
	maxPos := -1
	pending := 0
	for _, v := range seeds {
		if !inc.affected[v] {
			inc.affected[v] = true
			pending++
			if p := inc.topoPos[v]; p > maxPos {
				maxPos = p
			}
		}
	}
	acc := inc.req.View(g.NumVerts)
	tmp := inc.req.View(g.NumVerts + 1)
	recomputed := 0
	for k := maxPos; k >= 0 && pending > 0; k-- {
		v := inc.order[k]
		if !inc.affected[v] {
			continue
		}
		inc.affected[v] = false
		pending--
		if err := stepCtx(ctx, recomputed); err != nil {
			inc.clearAffected()
			return recomputed, err
		}
		recomputed++
		if inc.recomputeRequired(v, delays, acc, tmp) {
			for _, ei := range g.In[v] {
				from := g.Edges[ei].From
				if !inc.affected[from] {
					inc.affected[from] = true
					pending++
				}
			}
		}
	}
	return recomputed, nil
}

// recomputeRequired rebuilds one vertex's required time from its fan-out.
// A full backward pass gathers out-edge contributions in adjacency order
// already, so no sorting is needed to match it bit for bit.
func (inc *Incremental) recomputeRequired(v int, delays *canon.Bank, acc, tmp canon.View) bool {
	g := inc.g
	reached := false
	if inc.outputSet[v] {
		acc.SetConst(0)
		reached = true
	}
	for _, ei := range g.Out[v] {
		e := &g.Edges[ei]
		if !inc.reqReach[e.To] {
			continue
		}
		canon.AddViews(tmp, inc.req.View(e.To), delays.View(int(ei)))
		if !reached {
			canon.CopyView(acc, tmp)
			reached = true
		} else {
			canon.MaxViews(acc, acc, tmp)
		}
	}
	return inc.commit(inc.req.View(v), acc, &inc.reqReach[v], reached)
}

// commit stores a recomputed form and reports whether it differed from the
// stored state: a reachability flip always propagates, otherwise the cone
// is cut when every component matches within IncrementalTol. The fresh
// value is stored even on a cut, so sub-tolerance residues never compound
// at a vertex across updates.
func (inc *Incremental) commit(dst, acc canon.View, reach *bool, reached bool) bool {
	if reached != *reach {
		*reach = reached
		if reached {
			canon.CopyView(dst, acc)
		}
		return true
	}
	if !reached {
		return false
	}
	changed := false
	for i := range dst {
		if d := dst[i] - acc[i]; d > IncrementalTol || d < -IncrementalTol {
			changed = true
			break
		}
	}
	canon.CopyView(dst, acc)
	return changed
}

// sortedFanin returns v's fan-in edge indices ordered by the topological
// position of their source vertex (stable for equal positions) — the
// contribution order of a full forward pass.
func (inc *Incremental) sortedFanin(v int) []int32 {
	in := inc.g.In[v]
	buf := append(inc.inbuf[:0], in...)
	// Insertion sort: fan-ins are tiny (gate arity) and almost sorted.
	for i := 1; i < len(buf); i++ {
		ei := buf[i]
		p := inc.topoPos[inc.g.Edges[ei].From]
		j := i - 1
		for j >= 0 && inc.topoPos[inc.g.Edges[buf[j]].From] > p {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = ei
	}
	inc.inbuf = buf
	return buf
}

func (inc *Incremental) clearAffected() {
	for i := range inc.affected {
		inc.affected[i] = false
	}
}

func (inc *Incremental) syncOrder(order []int) {
	inc.order = order
	if inc.topoPos == nil {
		inc.topoPos = make([]int, inc.g.NumVerts)
	}
	for k, v := range order {
		inc.topoPos[v] = k
	}
}

func (inc *Incremental) syncIO() {
	g := inc.g
	inc.sources = exactInts(g.Inputs)
	if inc.sourceSet == nil {
		inc.sourceSet = make([]bool, g.NumVerts)
	}
	for i := range inc.sourceSet {
		inc.sourceSet[i] = false
	}
	for _, s := range inc.sources {
		inc.sourceSet[s] = true
	}
	inc.outputs = exactInts(g.Outputs)
	if inc.outputSet == nil {
		inc.outputSet = make([]bool, g.NumVerts)
	}
	for i := range inc.outputSet {
		inc.outputSet[i] = false
	}
	for _, o := range inc.outputs {
		inc.outputSet[o] = true
	}
}

func sameOrder(a, b []int) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Reached reports whether vertex v is reachable from the current sources.
func (inc *Incremental) Reached(v int) bool { return inc.reach[v] }

// Arrival materializes vertex v's arrival form, or nil when unreached.
// Valid only after a successful Update (or construction).
func (inc *Incremental) Arrival(v int) (*canon.Form, error) {
	if inc.stale {
		return nil, errors.New("timing: incremental state is stale; Update or Rebuild first")
	}
	if !inc.reach[v] {
		return nil, nil
	}
	return inc.arr.View(v).Form(inc.g.Space), nil
}

// Required materializes vertex v's maximum delay to any output, or nil
// when v reaches none. EnableRequired must have been called.
func (inc *Incremental) Required(v int) (*canon.Form, error) {
	if inc.req == nil {
		return nil, errors.New("timing: required maintenance not enabled")
	}
	if inc.stale {
		return nil, errors.New("timing: incremental state is stale; Update or Rebuild first")
	}
	if !inc.reqReach[v] {
		return nil, nil
	}
	return inc.req.View(v).Form(inc.g.Space), nil
}

// MaxDelay folds the stored arrivals over the graph's outputs — the same
// operation order as Graph.MaxDelay's fold, read from persistent state
// instead of a fresh pass.
func (inc *Incremental) MaxDelay() (*canon.Form, error) {
	if inc.stale {
		return nil, errors.New("timing: incremental state is stale; Update or Rebuild first")
	}
	g := inc.g
	acc := inc.arr.View(g.NumVerts)
	first := true
	for _, o := range g.Outputs {
		if !inc.reach[o] {
			continue
		}
		if first {
			canon.CopyView(acc, inc.arr.View(o))
			first = false
		} else {
			canon.MaxViews(acc, acc, inc.arr.View(o))
		}
	}
	if first {
		return nil, errors.New("timing: no output reachable from any input")
	}
	return acc.Form(g.Space), nil
}

// Graph returns the graph the state is bound to.
func (inc *Incremental) Graph() *Graph { return inc.g }
