package timing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/canon"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/place"
	"repro/internal/variation"
)

// buildC17 builds the full stack for c17.
func buildC17(t *testing.T) *Graph {
	t.Helper()
	c := circuit.C17()
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := variation.DefaultCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildBench(t *testing.T, name string, seed int64) *Graph {
	t.Helper()
	spec, ok := circuit.SpecByName(name)
	if !ok {
		t.Fatalf("unknown spec %s", name)
	}
	c, err := circuit.Generate(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, _ := variation.DefaultCorrelation()
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildC17Structure(t *testing.T) {
	g := buildC17(t)
	if g.NumVerts != 11 {
		t.Fatalf("verts = %d, want 11 (Vo of c17)", g.NumVerts)
	}
	if len(g.Edges) != 12 {
		t.Fatalf("edges = %d, want 12 (Eo of c17)", len(g.Edges))
	}
	if len(g.Inputs) != 5 || len(g.Outputs) != 2 {
		t.Fatalf("IO: %d/%d", len(g.Inputs), len(g.Outputs))
	}
	for _, e := range g.Edges {
		if e.Delay.Mean() <= 0 {
			t.Fatal("edge with non-positive nominal delay")
		}
		if e.Delay.Std() <= 0 {
			t.Fatal("edge with zero variance — variation missing")
		}
		if len(e.LSens) != len(g.Params) {
			t.Fatal("LSens length mismatch")
		}
	}
}

func TestEdgeFormMatchesStructuralVariance(t *testing.T) {
	// The canonical form's variance must equal the structural decomposition:
	// Var = |Glob|^2 + sum_p LSens_p^2 (unit-variance grid local) + Rand^2.
	g := buildC17(t)
	for i, e := range g.Edges {
		var want float64
		for _, v := range e.Delay.Glob {
			want += v * v
		}
		for _, v := range e.LSens {
			want += v * v
		}
		want += e.Delay.Rand * e.Delay.Rand
		if got := e.Delay.Variance(); math.Abs(got-want) > 1e-6*want {
			t.Fatalf("edge %d: form variance %g vs structural %g", i, got, want)
		}
	}
}

func TestArrivalAllAgainstPathEnumeration(t *testing.T) {
	// On c17 the paths are few; enumerate them and compare the propagated
	// output mean against the max-of-path-sums computed with the same Clark
	// operator but different association order. Means must agree within the
	// Clark approximation tolerance.
	g := buildC17(t)
	arr, err := g.ArrivalAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range g.Outputs {
		if arr[out] == nil {
			t.Fatal("unreachable output")
		}
	}

	// Path enumeration via DFS from each input.
	var paths []*canon.Form
	var walk func(v int, acc *canon.Form)
	walk = func(v int, acc *canon.Form) {
		if v == g.Outputs[0] {
			paths = append(paths, acc.Clone())
			return
		}
		for _, ei := range g.Out[v] {
			e := &g.Edges[ei]
			walk(e.To, canon.Add(acc, e.Delay))
		}
	}
	for _, in := range g.Inputs {
		walk(in, g.Space.Const(0))
	}
	if len(paths) == 0 {
		t.Fatal("no paths found")
	}
	pathMax, err := canon.MaxAll(paths)
	if err != nil {
		t.Fatal(err)
	}
	got := arr[g.Outputs[0]]
	if rel := math.Abs(got.Mean()-pathMax.Mean()) / pathMax.Mean(); rel > 0.02 {
		t.Fatalf("propagated mean %g vs path-enumerated %g (rel %g)", got.Mean(), pathMax.Mean(), rel)
	}
	if rel := math.Abs(got.Std()-pathMax.Std()) / pathMax.Std(); rel > 0.15 {
		t.Fatalf("propagated std %g vs path-enumerated %g (rel %g)", got.Std(), pathMax.Std(), rel)
	}
}

func TestArrivalAllAgainstMonteCarlo(t *testing.T) {
	// Ground truth: sample the shared variables and run scalar longest path.
	g := buildC17(t)
	md, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	const n = 20000
	order, _ := g.Order()
	glob := make([]float64, g.Space.Globals)
	loc := make([]float64, g.Space.Components)
	var sum, sumsq float64
	for s := 0; s < n; s++ {
		for i := range glob {
			glob[i] = rng.NormFloat64()
		}
		for i := range loc {
			loc[i] = rng.NormFloat64()
		}
		arr := make([]float64, g.NumVerts)
		for i := range arr {
			arr[i] = math.Inf(-1)
		}
		for _, in := range g.Inputs {
			arr[in] = 0
		}
		for _, v := range order {
			if math.IsInf(arr[v], -1) {
				continue
			}
			for _, ei := range g.Out[v] {
				e := &g.Edges[ei]
				d := e.Delay.Sample(glob, loc, rng.NormFloat64())
				if cand := arr[v] + d; cand > arr[e.To] {
					arr[e.To] = cand
				}
			}
		}
		best := math.Inf(-1)
		for _, o := range g.Outputs {
			if arr[o] > best {
				best = arr[o]
			}
		}
		sum += best
		sumsq += best * best
	}
	mcMean := sum / n
	mcStd := math.Sqrt(sumsq/n - mcMean*mcMean)
	if rel := math.Abs(md.Mean()-mcMean) / mcMean; rel > 0.02 {
		t.Fatalf("SSTA mean %g vs MC %g (rel %g)", md.Mean(), mcMean, rel)
	}
	if rel := math.Abs(md.Std()-mcStd) / mcStd; rel > 0.10 {
		t.Fatalf("SSTA std %g vs MC %g (rel %g)", md.Std(), mcStd, rel)
	}
}

func TestArrivalFromExclusive(t *testing.T) {
	g := buildC17(t)
	// Input "1" (vertex g.Inputs[0]) reaches output 22 but not 23
	// (c17: 22 = NAND(10,16), 10 = NAND(1,3); 23 = NAND(16,19) where
	// 16 = NAND(2,11), 19 = NAND(11,7) — no path from input 1 to 23).
	arr, err := g.ArrivalFrom(g.Inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if arr[g.Outputs[0]] == nil {
		t.Fatal("input 1 should reach output 22")
	}
	if arr[g.Outputs[1]] != nil {
		t.Fatal("input 1 should NOT reach output 23")
	}
	if arr[g.Inputs[1]] != nil {
		t.Fatal("other inputs must not be sources in exclusive propagation")
	}
}

func TestDelayToOutput(t *testing.T) {
	g := buildC17(t)
	req, err := g.DelayToOutput(g.Outputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if req[g.Outputs[0]].Mean() != 0 {
		t.Fatal("delay from output to itself should be 0")
	}
	// Output 23 cannot reach output 22.
	if req[g.Outputs[1]] != nil {
		t.Fatal("sibling output should not reach output 22")
	}
	// Consistency: arrival(o) from all inputs == max over inputs of
	// (delay from input i to o). Check means within Clark tolerance.
	arrAll, _ := g.ArrivalAll()
	var viaReq []*canon.Form
	for _, in := range g.Inputs {
		if req[in] != nil {
			viaReq = append(viaReq, req[in])
		}
	}
	m, err := canon.MaxAll(viaReq)
	if err != nil {
		t.Fatal(err)
	}
	want := arrAll[g.Outputs[0]]
	if rel := math.Abs(m.Mean()-want.Mean()) / want.Mean(); rel > 0.02 {
		t.Fatalf("backward/forward mismatch: %g vs %g", m.Mean(), want.Mean())
	}
}

func TestAllPairsDelays(t *testing.T) {
	g := buildC17(t)
	ap, err := g.AllPairsDelays(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.M) != 5 {
		t.Fatalf("rows = %d", len(ap.M))
	}
	// M[0][0] (input 1 -> output 22): exists; M[0][1]: nil.
	if ap.M[0][0] == nil || ap.M[0][1] != nil {
		t.Fatal("reachability wrong in all-pairs matrix")
	}
	// Each M_ij mean must be at least the smallest edge delay and at most
	// the all-input arrival at that output.
	arrAll, _ := g.ArrivalAll()
	for i := range ap.M {
		for j, m := range ap.M[i] {
			if m == nil {
				continue
			}
			if m.Mean() <= 0 {
				t.Fatalf("M[%d][%d] mean %g <= 0", i, j, m.Mean())
			}
			if m.Mean() > arrAll[g.Outputs[j]].Mean()+1e-9 {
				t.Fatalf("M[%d][%d] exceeds all-input arrival", i, j)
			}
		}
	}
}

func TestAllPairsMatchesExclusivePasses(t *testing.T) {
	g := buildBench(t, "c432", 1)
	ap, err := g.AllPairsDelays(8)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a few rows against direct exclusive propagation.
	for _, i := range []int{0, len(g.Inputs) / 2, len(g.Inputs) - 1} {
		arr, err := g.ArrivalFrom(g.Inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j, o := range g.Outputs {
			want := arr[o]
			got := ap.M[i][j]
			if (want == nil) != (got == nil) {
				t.Fatalf("row %d col %d: reachability mismatch", i, j)
			}
			if want != nil && math.Abs(want.Mean()-got.Mean()) > 1e-9 {
				t.Fatalf("row %d col %d: %g vs %g", i, j, got.Mean(), want.Mean())
			}
		}
	}
}

func TestReachability(t *testing.T) {
	g := buildC17(t)
	rs, err := g.Reachability()
	if err != nil {
		t.Fatal(err)
	}
	// Input 0 ("1") reaches output 22 (index 0) but not 23 (index 1).
	out22 := g.Outputs[0]
	out23 := g.Outputs[1]
	if !rs.InputReaches(0, out22) {
		t.Fatal("input 0 should reach output 22")
	}
	if rs.InputReaches(0, out23) {
		t.Fatal("input 0 should not reach output 23")
	}
	in0 := g.Inputs[0]
	if !rs.ReachesOutput(in0, 0) {
		t.Fatal("output 22 should be reachable from input 0")
	}
	if rs.ReachesOutput(in0, 1) {
		t.Fatal("output 23 should not be reachable from input 0")
	}
}

func TestGraphConstructionErrors(t *testing.T) {
	s := canon.Space{Globals: 1, Components: 2}
	g := NewGraph(s, 3, nil)
	if _, err := g.AddEdge(0, 5, s.Const(1), nil, 0); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := g.AddEdge(1, 1, s.Const(1), nil, 0); err == nil {
		t.Fatal("self loop accepted")
	}
	wrong := canon.Space{Globals: 2, Components: 2}.Const(1)
	if _, err := g.AddEdge(0, 1, wrong, nil, 0); err == nil {
		t.Fatal("wrong-space form accepted")
	}
	if err := g.SetIO([]int{0}, []int{1}, []string{"a", "b"}, []string{"z"}); err == nil {
		t.Fatal("name count mismatch accepted")
	}
}

func TestGraphCycleDetection(t *testing.T) {
	s := canon.Space{Globals: 1, Components: 1}
	g := NewGraph(s, 2, nil)
	if _, err := g.AddEdge(0, 1, s.Const(1), nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 0, s.Const(1), nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Order(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestMaxDelayIncreasesWithDepth(t *testing.T) {
	shallow := buildBench(t, "c499", 1) // depth 11
	deep := buildBench(t, "c6288", 1)   // depth 124
	ms, err := shallow.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	md, err := deep.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if md.Mean() <= ms.Mean() {
		t.Fatalf("depth-124 delay %g should exceed depth-11 delay %g", md.Mean(), ms.Mean())
	}
}
