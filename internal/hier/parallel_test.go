package hier

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/canon"
)

// formsAgree reports the maximum absolute coefficient difference between
// two canonical forms.
func formsAgree(a, b *canon.Form) float64 {
	if a == nil || b == nil {
		if a == b {
			return 0
		}
		return math.Inf(1)
	}
	d := math.Abs(a.Nominal - b.Nominal)
	for k := range a.Glob {
		if v := math.Abs(a.Glob[k] - b.Glob[k]); v > d {
			d = v
		}
	}
	for k := range a.Loc {
		if v := math.Abs(a.Loc[k] - b.Loc[k]); v > d {
			d = v
		}
	}
	if v := math.Abs(a.Rand - b.Rand); v > d {
		d = v
	}
	return d
}

// assertResultsIdentical checks two analysis results coefficient-by-
// coefficient: the engine options must never change the numbers.
func assertResultsIdentical(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	const tol = 1e-9
	if d := formsAgree(ref.Delay, got.Delay); d > tol {
		t.Fatalf("%s: delay form differs by %g", label, d)
	}
	if len(ref.OutputArrivals) != len(got.OutputArrivals) {
		t.Fatalf("%s: %d output arrivals, want %d", label, len(got.OutputArrivals), len(ref.OutputArrivals))
	}
	for k := range ref.OutputArrivals {
		if d := formsAgree(ref.OutputArrivals[k], got.OutputArrivals[k]); d > tol {
			t.Fatalf("%s: output %d arrival differs by %g", label, k, d)
		}
	}
	if len(ref.Graph.Edges) != len(got.Graph.Edges) {
		t.Fatalf("%s: stitched graph has %d edges, want %d", label, len(got.Graph.Edges), len(ref.Graph.Edges))
	}
}

// TestParallelAndCachedMatchSerial is the core engine equivalence: for both
// modes, every engine configuration (serial uncached reference vs cached,
// parallel, cached+parallel) produces identical results to 1e-9.
func TestParallelAndCachedMatchSerial(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	for _, mode := range []Mode{FullCorrelation, GlobalOnly} {
		ref, err := d.AnalyzeOpt(mode, AnalyzeOptions{Workers: 1, DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
		variants := []AnalyzeOptions{
			{Workers: 1},                     // serial, cached (cold then warm below)
			{Workers: 4},                     // parallel, cached
			{Workers: 0},                     // GOMAXPROCS
			{Workers: 4, DisableCache: true}, // parallel, uncached
			{Workers: 1},                     // serial again: warm cache hit
		}
		for vi, opt := range variants {
			got, err := d.AnalyzeOpt(mode, opt)
			if err != nil {
				t.Fatalf("mode %v variant %d: %v", mode, vi, err)
			}
			assertResultsIdentical(t, fmt.Sprintf("mode %v variant %d (%+v)", mode, vi, opt), ref, got)
		}
	}
}

// TestFlattenParallelMatchesSerial checks the flattening path (originals +
// replacement) edge-by-edge across engine options.
func TestFlattenParallelMatchesSerial(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	ref, _, err := d.FlattenOpt(AnalyzeOptions{Workers: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := d.FlattenOpt(AnalyzeOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Edges) != len(par.Edges) {
		t.Fatalf("edge count %d != %d", len(par.Edges), len(ref.Edges))
	}
	for k := range ref.Edges {
		if d := formsAgree(ref.Edges[k].Delay, par.Edges[k].Delay); d > 1e-9 {
			t.Fatalf("edge %d delay differs by %g", k, d)
		}
		if ref.Edges[k].Grid != par.Edges[k].Grid {
			t.Fatalf("edge %d grid %d != %d", k, par.Edges[k].Grid, ref.Edges[k].Grid)
		}
	}
}

// TestPrepCacheReusedAndInvalidated pins the caching contract: repeated
// analyses share one prep, geometry edits rebuild it.
func TestPrepCacheReusedAndInvalidated(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	if _, err := d.Analyze(FullCorrelation); err != nil {
		t.Fatal(err)
	}
	first := d.preps[FullCorrelation]
	if first == nil || first.p == nil {
		t.Fatal("prep not cached after Analyze")
	}
	if _, err := d.Analyze(FullCorrelation); err != nil {
		t.Fatal(err)
	}
	if d.preps[FullCorrelation] != first {
		t.Fatal("second Analyze recomputed the prep")
	}
	// Flatten shares the FullCorrelation prep with Analyze.
	if _, _, err := d.Flatten(); err != nil {
		t.Fatal(err)
	}
	if d.preps[FullCorrelation] != first {
		t.Fatal("Flatten recomputed the prep")
	}

	// Geometry edit: widen the die. The fingerprint changes, the partition
	// gains filler grids, and the prep must be rebuilt.
	d.Width += 4 * d.Pitch
	res, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if d.preps[FullCorrelation] == first {
		t.Fatal("geometry change did not invalidate the prep cache")
	}
	if res.Partition.Filler == 0 {
		t.Fatal("widened die should produce filler grids")
	}

	// Explicit invalidation drops everything.
	d.InvalidatePrep()
	if d.preps != nil {
		t.Fatal("InvalidatePrep left entries behind")
	}
}

// TestConcurrentAnalyze hammers one design from many goroutines across
// modes and worker counts; every result must match the serial reference.
// Run with -race to exercise the prep singleflight.
func TestConcurrentAnalyze(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	refs := map[Mode]*Result{}
	for _, mode := range []Mode{FullCorrelation, GlobalOnly} {
		r, err := d.AnalyzeOpt(mode, AnalyzeOptions{Workers: 1, DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
		refs[mode] = r
	}
	d.InvalidatePrep() // force the concurrent run to race on prep creation

	const goroutines = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for k := 0; k < goroutines; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			mode := FullCorrelation
			if k%2 == 1 {
				mode = GlobalOnly
			}
			got, err := d.AnalyzeOpt(mode, AnalyzeOptions{Workers: 1 + k%3})
			if err != nil {
				errCh <- err
				return
			}
			ref := refs[mode]
			if dd := formsAgree(ref.Delay, got.Delay); dd > 1e-9 {
				errCh <- fmt.Errorf("goroutine %d mode %v: delay differs by %g", k, mode, dd)
			}
		}(k)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestAnalyzeCtxCancelled: a dead context stops the analysis — prep,
// stitching and the forward pass all observe it — and a later analysis
// with a live context is unaffected (the aborted prep is not cached).
func TestAnalyzeCtxCancelled(t *testing.T) {
	mod := buildModule(t, "m4ctx", 4)
	d := twoByTwo(t, mod)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := d.AnalyzeCtx(ctx, FullCorrelation, AnalyzeOptions{Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if _, err := d.AnalyzeCtx(context.Background(), FullCorrelation, AnalyzeOptions{Workers: 1}); err != nil {
		t.Fatalf("analysis after cancelled attempt: %v", err)
	}
}
