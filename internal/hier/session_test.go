package hier

import (
	"context"
	"testing"

	"repro/internal/circuit"
)

var sessionSpec = circuit.TopoSpec{Name: "g90", PIs: 10, POs: 5, Gates: 90, Edges: 190, Depth: 10}

// sessionDesign builds a quad design around a generated module plus a
// same-footprint replacement module (same spec, different seed).
func sessionDesign(t *testing.T) (*Design, *Module, *Module) {
	t.Helper()
	mod := genModule(t, sessionSpec, 1)
	alt := genModule(t, sessionSpec, 2)
	if alt.NX != mod.NX || alt.NY != mod.NY || alt.Pitch != mod.Pitch {
		t.Fatalf("generated modules differ in footprint: %dx%d vs %dx%d",
			mod.NX, mod.NY, alt.NX, alt.NY)
	}
	return twoByTwo(t, mod), mod, alt
}

func sessionDelayDiff(t *testing.T, s *Session, want *Design, mode Mode) float64 {
	t.Helper()
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	res, err := want.Analyze(mode)
	if err != nil {
		t.Fatal(err)
	}
	return formsAgree(got, res.Delay)
}

func TestSessionMatchesAnalyze(t *testing.T) {
	d, _, _ := sessionDesign(t)
	for _, mode := range []Mode{FullCorrelation, GlobalOnly} {
		s, err := NewSession(context.Background(), d.CopyStructure(), mode, AnalyzeOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if diff := sessionDelayDiff(t, s, d, mode); diff > 1e-9 {
			t.Fatalf("mode %v: session stitch differs from Analyze by %g", mode, diff)
		}
	}
}

func TestSessionSwapModule(t *testing.T) {
	d, mod, alt := sessionDesign(t)
	for _, mode := range []Mode{FullCorrelation, GlobalOnly} {
		s, err := NewSession(context.Background(), d.CopyStructure(), mode, AnalyzeOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Swap instance B to the re-characterized module; the from-scratch
		// reference is a fresh design with the same swap applied.
		if err := s.SwapModule(context.Background(), "B", alt); err != nil {
			t.Fatal(err)
		}
		want := d.CopyStructure()
		want.Instances[1].Module = alt
		if diff := sessionDelayDiff(t, s, want, mode); diff > 1e-9 {
			t.Fatalf("mode %v: post-swap session differs from Analyze by %g", mode, diff)
		}
		// Swap back: the session must return to the original answer.
		if err := s.SwapModule(context.Background(), "B", mod); err != nil {
			t.Fatal(err)
		}
		if diff := sessionDelayDiff(t, s, d, mode); diff > 1e-9 {
			t.Fatalf("mode %v: swap round-trip differs from Analyze by %g", mode, diff)
		}
	}
}

func TestSessionSwapUnknownInstance(t *testing.T) {
	d, _, alt := sessionDesign(t)
	s, err := NewSession(context.Background(), d.CopyStructure(), FullCorrelation, AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwapModule(context.Background(), "nope", alt); err == nil {
		t.Fatal("unknown instance accepted")
	}
	if err := s.SwapModule(context.Background(), "A", nil); err == nil {
		t.Fatal("nil module accepted")
	}
	// The failed swaps must not have corrupted the session.
	if diff := sessionDelayDiff(t, s, d, FullCorrelation); diff > 1e-9 {
		t.Fatalf("failed swap corrupted the session (diff %g)", diff)
	}
}

// TestSessionSwapInterrupted checks the transactional contract: a swap
// cancelled mid-derivation must leave the session fully on its previous
// state — design, prep, caches and top graph — and a later swap succeeds.
func TestSessionSwapInterrupted(t *testing.T) {
	d, _, alt := sessionDesign(t)
	s, err := NewSession(context.Background(), d.CopyStructure(), FullCorrelation, AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.SwapModule(ctx, "B", alt); err == nil {
		t.Fatal("cancelled swap reported success")
	}
	if s.Stale() {
		t.Fatal("failed swap left the session stale")
	}
	if s.Design().Instances[1].Module == alt {
		t.Fatal("failed swap committed the module")
	}
	if diff := sessionDelayDiff(t, s, d, FullCorrelation); diff > 1e-9 {
		t.Fatalf("failed swap corrupted the session (diff %g)", diff)
	}
	// The same swap applies cleanly afterwards.
	if err := s.SwapModule(context.Background(), "B", alt); err != nil {
		t.Fatal(err)
	}
	want := d.CopyStructure()
	want.Instances[1].Module = alt
	if diff := sessionDelayDiff(t, s, want, FullCorrelation); diff > 1e-9 {
		t.Fatalf("post-recovery swap differs from Analyze by %g", diff)
	}
}

func TestSessionSetNetDelay(t *testing.T) {
	d, _, _ := sessionDesign(t)
	s, err := NewSession(context.Background(), d.CopyStructure(), FullCorrelation, AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetNetDelay(0, 35); err != nil {
		t.Fatal(err)
	}
	want := d.CopyStructure()
	want.Nets[0].Delay = 35
	if diff := sessionDelayDiff(t, s, want, FullCorrelation); diff > 1e-9 {
		t.Fatalf("net-delay edit differs from Analyze by %g", diff)
	}
	if err := s.SetNetDelay(-1, 1); err == nil {
		t.Fatal("negative net index accepted")
	}
	if err := s.SetNetDelay(0, -5); err == nil {
		t.Fatal("negative delay accepted")
	}
	// A restitch (module swap) must preserve the edited net delay.
	if err := s.SwapModule(context.Background(), "A", s.Design().Instances[0].Module); err != nil {
		t.Fatal(err)
	}
	if diff := sessionDelayDiff(t, s, want, FullCorrelation); diff > 1e-9 {
		t.Fatalf("restitch lost the net-delay edit (diff %g)", diff)
	}
}
