package hier

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/canon"
	"repro/internal/mat"
	"repro/internal/timing"
	"repro/internal/variation"
)

// Package-wide prep-cache counters. The prep cache is per-Design, so
// aggregate statistics live here: the serving layer exposes them to
// prove that warm-started designs skip the dominant setup cost (the
// partition + PCA + replacement matrices) after a restart.
var (
	prepHits   atomic.Int64
	prepMisses atomic.Int64
)

// PrepCacheStats reports aggregate prep-cache hits (an analysis reused a
// cached per-mode prep) and misses (a prep had to be computed) across
// all designs in the process.
func PrepCacheStats() (hits, misses int64) {
	return prepHits.Load(), prepMisses.Load()
}

// prep is the per-design, per-mode analysis model: everything Analyze
// derives from the design geometry alone, independent of the per-call
// propagation. For FullCorrelation that is the heterogeneous partition, its
// PCA and the per-instance replacement matrices (the dominant setup cost);
// for GlobalOnly the per-instance component block offsets. A prep is
// immutable once built and safe to share between concurrent analyses.
type prep struct {
	mode         Mode
	space        canon.Space
	part         *Partition   // FullCorrelation only
	repl         []*mat.Dense // FullCorrelation only, one per instance
	instLocStart []int        // GlobalOnly only, len(instances)+1
}

// prepSlot is a singleflight cache slot: the first analysis for a mode
// computes the prep, concurrent analyses block on done and share it.
type prepSlot struct {
	fp   designFP
	done chan struct{}
	p    *prep
	err  error
}

// designFP captures every design property the prep depends on, so a
// mutated design (moved instance, swapped module) transparently invalidates
// the cached prep instead of serving stale grids. It retains the Module and
// CorrelationModel pointers it compares, so a pointer match can never be a
// recycled allocation at the same address.
type designFP struct {
	width, height, pitch float64
	corr                 *variation.CorrelationModel
	nParams              int
	insts                []instFP
}

type instFP struct {
	name   string
	module *Module
	x, y   float64
}

func (d *Design) fingerprint() designFP {
	fp := designFP{
		width: d.Width, height: d.Height, pitch: d.Pitch,
		corr: d.Corr, nParams: len(d.Params),
		insts: make([]instFP, len(d.Instances)),
	}
	for i, inst := range d.Instances {
		fp.insts[i] = instFP{name: inst.Name, module: inst.Module, x: inst.OriginX, y: inst.OriginY}
	}
	return fp
}

func (a designFP) equal(b designFP) bool {
	if a.width != b.width || a.height != b.height || a.pitch != b.pitch ||
		a.corr != b.corr || a.nParams != b.nParams || len(a.insts) != len(b.insts) {
		return false
	}
	for i := range a.insts {
		if a.insts[i] != b.insts[i] {
			return false
		}
	}
	return true
}

// getPrep returns the cached prep for the mode, computing it on first use
// or after the design changed. Concurrent callers for the same mode are
// coalesced into one computation; a waiter whose ctx fires stops waiting.
// The computing caller runs under its own ctx — a cancellation there
// surfaces as an error and removes the failed slot. A waiter that
// coalesced onto such an aborted computation must not inherit the other
// caller's context error: if its own ctx is still live it retries against
// the (now empty) slot instead of failing spuriously.
func (d *Design) getPrep(ctx context.Context, mode Mode, opt AnalyzeOptions) (*prep, error) {
	if opt.DisableCache {
		return d.computePrep(ctx, mode, opt.Workers)
	}
	fp := d.fingerprint()
	for {
		d.prepMu.Lock()
		if d.preps == nil {
			d.preps = make(map[Mode]*prepSlot)
		}
		if s := d.preps[mode]; s != nil && s.fp.equal(fp) {
			d.prepMu.Unlock()
			select {
			case <-s.done:
				if errors.Is(s.err, context.Canceled) || errors.Is(s.err, context.DeadlineExceeded) {
					if ctx.Err() == nil {
						continue // the computer was cancelled, we were not: retry
					}
					return nil, ctx.Err()
				}
				if s.err == nil {
					prepHits.Add(1)
				}
				return s.p, s.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		prepMisses.Add(1)
		s := &prepSlot{fp: fp, done: make(chan struct{})}
		d.preps[mode] = s
		d.prepMu.Unlock()

		s.p, s.err = d.computePrep(ctx, mode, opt.Workers)
		if s.err != nil {
			// Remove the failed slot BEFORE waking waiters: a retrying
			// waiter must find an empty slot (and recompute), not loop on
			// this one until we win the mutex again.
			d.prepMu.Lock()
			if d.preps[mode] == s {
				delete(d.preps, mode)
			}
			d.prepMu.Unlock()
		}
		close(s.done)
		return s.p, s.err
	}
}

// InvalidatePrep drops any cached analysis prep. Analyze detects geometry
// changes on its own via the design fingerprint; this is only needed after
// mutations the fingerprint cannot see, such as editing a module's model
// graph in place.
func (d *Design) InvalidatePrep() {
	d.prepMu.Lock()
	d.preps = nil
	d.prepMu.Unlock()
}

// computePrep derives the per-mode analysis model, fanning the
// per-instance replacement matrices out over the worker pool.
func (d *Design) computePrep(ctx context.Context, mode Mode, workers int) (*prep, error) {
	nP := len(d.Params)
	p := &prep{mode: mode}
	switch mode {
	case FullCorrelation:
		part, err := d.partition()
		if err != nil {
			return nil, err
		}
		p.part = part
		p.space = canon.Space{Globals: nP, Components: nP * part.Grids.Comps}
		p.repl = make([]*mat.Dense, len(d.Instances))
		err = timing.ParallelForCtx(ctx, len(d.Instances), workers, func(_ context.Context, i int) error {
			r, err := replacementMatrix(d.Instances[i].Module.gridModel(), part, i)
			if err != nil {
				return fmt.Errorf("hier: instance %q: %w", d.Instances[i].Name, err)
			}
			p.repl[i] = r
			return nil
		})
		if err != nil {
			return nil, err
		}
	case GlobalOnly:
		p.instLocStart = make([]int, len(d.Instances)+1)
		for i, inst := range d.Instances {
			p.instLocStart[i+1] = p.instLocStart[i] + nP*inst.Module.gridModel().Comps
		}
		p.space = canon.Space{Globals: nP, Components: p.instLocStart[len(d.Instances)]}
	default:
		return nil, fmt.Errorf("hier: unknown mode %d", mode)
	}
	return p, nil
}
