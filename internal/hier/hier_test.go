package hier

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/canon"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/timing"
	"repro/internal/variation"
)

// buildModule extracts a timing model from an n x n multiplier and keeps
// the original graph for flattening.
func buildModule(t *testing.T, name string, width int) *Module {
	t.Helper()
	c, err := circuit.ArrayMultiplier(width)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, _ := variation.DefaultCorrelation()
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := timing.Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Extract(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModule(name, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	mod.Orig = g
	return mod
}

// twoByTwo builds the paper-style experiment at reduced scale: four
// instances of one multiplier module in two columns, first-column outputs
// cross-connected to second-column inputs.
func twoByTwo(t *testing.T, mod *Module) *Design {
	t.Helper()
	corr, _ := variation.DefaultCorrelation()
	w, h := mod.Width(), mod.Height()
	d := &Design{
		Name: "quad", Width: 2 * w, Height: 2 * h, Pitch: mod.Pitch,
		Corr: corr, Params: variation.Nassif90nm(),
		Instances: []*Instance{
			{Name: "A", Module: mod, OriginX: 0, OriginY: 0},
			{Name: "B", Module: mod, OriginX: 0, OriginY: h},
			{Name: "C", Module: mod, OriginX: w, OriginY: 0},
			{Name: "D", Module: mod, OriginX: w, OriginY: h},
		},
	}
	outs := mod.Model.Graph.OutputNames
	ins := mod.Model.Graph.InputNames
	n := len(outs)
	if len(ins) < n {
		n = len(ins)
	}
	for k := 0; k < n; k++ {
		// Cross connection: A -> D, B -> C.
		d.Nets = append(d.Nets,
			Net{From: PortRef{"A", outs[k]}, To: PortRef{"D", ins[k]}},
			Net{From: PortRef{"B", outs[k]}, To: PortRef{"C", ins[k]}},
		)
	}
	for _, in := range ins {
		d.PrimaryInputs = append(d.PrimaryInputs, PortRef{"A", in}, PortRef{"B", in})
	}
	// Inputs of C and D not fed by nets become primary inputs too.
	if len(ins) > n {
		for _, in := range ins[n:] {
			d.PrimaryInputs = append(d.PrimaryInputs, PortRef{"C", in}, PortRef{"D", in})
		}
	}
	for _, out := range outs {
		d.PrimaryOutputs = append(d.PrimaryOutputs, PortRef{"C", out}, PortRef{"D", out})
	}
	return d
}

func TestValidateAccepts(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	base := func() *Design { return twoByTwo(t, mod) }

	d := base()
	d.Instances[1].OriginX = 1 // overlaps instance A
	d.Instances[1].OriginY = 0
	if err := d.Validate(); err == nil {
		t.Error("overlapping instances accepted")
	}

	d = base()
	d.Instances[0].OriginX = d.Width // outside die
	if err := d.Validate(); err == nil {
		t.Error("instance outside die accepted")
	}

	d = base()
	d.Nets = append(d.Nets, Net{From: PortRef{"A", "nope"}, To: PortRef{"D", d.Instances[0].Module.Model.Graph.InputNames[0]}})
	if err := d.Validate(); err == nil {
		t.Error("bogus port accepted")
	}

	d = base()
	d.Nets = append(d.Nets, d.Nets[0]) // duplicate driver
	if err := d.Validate(); err == nil {
		t.Error("double-driven port accepted")
	}

	d = base()
	d.PrimaryInputs = nil
	if err := d.Validate(); err == nil {
		t.Error("design without primary inputs accepted")
	}

	d = base()
	d.Pitch = d.Pitch * 2 // module grids no longer preserved
	if err := d.Validate(); err == nil {
		t.Error("pitch mismatch accepted")
	}
}

func TestPartitionGeometry(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	part, err := d.partition()
	if err != nil {
		t.Fatal(err)
	}
	wantInstGrids := 4 * mod.NX * mod.NY
	if len(part.Centers) != wantInstGrids+part.Filler {
		t.Fatalf("centers %d != inst %d + filler %d", len(part.Centers), wantInstGrids, part.Filler)
	}
	// The 2x2 abutted layout covers the die completely: no filler.
	if part.Filler != 0 {
		t.Fatalf("abutted layout should have no filler grids, got %d", part.Filler)
	}
	// Paper Section V: the sub-matrix of the design covariance belonging to
	// one instance equals the module covariance (same grid distances).
	mgm := mod.Model.Graph.Grids
	n := mgm.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := part.Grids.C.At(part.InstStart[2]+i, part.InstStart[2]+j)
			want := mgm.C.At(i, j)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("design C[%d,%d]=%g != module C=%g", i, j, got, want)
			}
		}
	}
}

func TestPartitionWithFiller(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	corr, _ := variation.DefaultCorrelation()
	d := &Design{
		Name: "sparse", Width: 4 * mod.Width(), Height: 2 * mod.Height(), Pitch: mod.Pitch,
		Corr: corr, Params: variation.Nassif90nm(),
		Instances: []*Instance{
			{Name: "A", Module: mod, OriginX: 0, OriginY: 0},
			{Name: "B", Module: mod, OriginX: 3 * mod.Width(), OriginY: mod.Height()},
		},
	}
	part, err := d.partition()
	if err != nil {
		t.Fatal(err)
	}
	if part.Filler == 0 {
		t.Fatal("sparse layout should produce filler grids")
	}
	total := int(d.Width/d.Pitch) * int(d.Height/d.Pitch)
	if got := len(part.Centers); got != total {
		t.Fatalf("total grids %d != %d die cells (abutting grid-aligned modules)", got, total)
	}
}

// TestReplacementPreservesIntraModuleStatistics is the core algebraic
// property of eq. 19: rewriting a module's forms into the design space must
// not change any within-module mean, variance or covariance.
func TestReplacementPreservesIntraModuleStatistics(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	flat, _, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	orig := mod.Orig
	nE := len(orig.Edges)
	// Instance A's edges occupy the first nE edges of the flat graph.
	for k := 0; k < nE; k += 7 {
		fo := orig.Edges[k].Delay
		ff := flat.Edges[k].Delay
		if math.Abs(fo.Mean()-ff.Mean()) > 1e-9 {
			t.Fatalf("edge %d mean changed: %g -> %g", k, fo.Mean(), ff.Mean())
		}
		if math.Abs(fo.Variance()-ff.Variance()) > 1e-6*fo.Variance() {
			t.Fatalf("edge %d variance changed: %g -> %g", k, fo.Variance(), ff.Variance())
		}
	}
	// Pairwise covariances.
	idx := []int{0, nE / 3, 2 * nE / 3, nE - 1}
	for _, a := range idx {
		for _, b := range idx {
			co := canon.Cov(orig.Edges[a].Delay, orig.Edges[b].Delay)
			cf := canon.Cov(flat.Edges[a].Delay, flat.Edges[b].Delay)
			if math.Abs(co-cf) > 1e-6*(1+math.Abs(co)) {
				t.Fatalf("cov(%d,%d) changed: %g -> %g", a, b, co, cf)
			}
		}
	}
}

// TestReplacementCreatesInterModuleCorrelation checks the whole point of
// the paper: corresponding edges of two instances of the same module must
// correlate according to their grid distance once replaced.
func TestReplacementCreatesInterModuleCorrelation(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	flat, part, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	nE := len(mod.Orig.Edges)
	corr, _ := variation.DefaultCorrelation()

	// Same edge in instance A (block 0) and instance B (block 1).
	for _, k := range []int{0, nE / 2, nE - 1} {
		ea := flat.Edges[k]
		eb := flat.Edges[nE+k]
		// Expected correlation from the structural decomposition.
		var gg, ll, rr float64
		for _, v := range ea.Delay.Glob {
			gg += v * v
		}
		for _, v := range ea.LSens {
			ll += v * v
		}
		rr = ea.Delay.Rand * ea.Delay.Rand
		ca := part.Centers[ea.Grid]
		cb := part.Centers[eb.Grid]
		dist := math.Hypot(ca[0]-cb[0], ca[1]-cb[1]) / d.Pitch
		want := (gg + ll*corr.Local(dist)) / (gg + ll + rr)
		got := canon.Corr(ea.Delay, eb.Delay)
		if math.Abs(got-want) > 5e-3 {
			t.Fatalf("edge %d: inter-instance corr %g, want %g (grid dist %g)", k, got, want, dist)
		}
		if got <= 0.3 {
			t.Fatalf("edge %d: correlation %g suspiciously low", k, got)
		}
	}

	// Without replacement (GlobalOnly) the correlation collapses to the
	// global share only.
	resG, err := d.buildTop(context.Background(), GlobalOnly, true, AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ea := resG.Graph.Edges[0]
	eb := resG.Graph.Edges[nE]
	var gg, tot float64
	for _, v := range ea.Delay.Glob {
		gg += v * v
	}
	tot = ea.Delay.Variance()
	want := gg / tot
	got := canon.Corr(ea.Delay, eb.Delay)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("GlobalOnly corr %g, want pure global share %g", got, want)
	}
}

func TestAnalyzeBothModes(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	full, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	glob, err := d.Analyze(GlobalOnly)
	if err != nil {
		t.Fatal(err)
	}
	if full.Delay == nil || glob.Delay == nil {
		t.Fatal("nil delay")
	}
	// Means should be close (correlation mostly affects spread).
	if rel := math.Abs(full.Delay.Mean()-glob.Delay.Mean()) / full.Delay.Mean(); rel > 0.05 {
		t.Fatalf("mode means diverge: %g vs %g", full.Delay.Mean(), glob.Delay.Mean())
	}
	// The paper's Fig. 7: ignoring local correlation visibly changes the
	// distribution — with cross-module paths the full-correlation delay has
	// the larger spread.
	if full.Delay.Std() <= glob.Delay.Std() {
		t.Fatalf("expected Std(full)=%g > Std(globalOnly)=%g", full.Delay.Std(), glob.Delay.Std())
	}
	for _, f := range full.OutputArrivals {
		if f == nil {
			t.Fatal("unreachable primary output in full mode")
		}
	}
}

// TestHierarchicalMatchesFlatAnalytic compares the hierarchical result
// (models + replacement) against flat SSTA on the flattened design.
func TestHierarchicalMatchesFlatAnalytic(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	full, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	flat, _, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	fg, err := flat.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(full.Delay.Mean()-fg.Mean()) / fg.Mean(); rel > 0.02 {
		t.Fatalf("hier mean %g vs flat %g (rel %g)", full.Delay.Mean(), fg.Mean(), rel)
	}
	if rel := math.Abs(full.Delay.Std()-fg.Std()) / fg.Std(); rel > 0.10 {
		t.Fatalf("hier std %g vs flat %g (rel %g)", full.Delay.Std(), fg.Std(), rel)
	}
}

func TestFlattenRequiresOrig(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	mod.Orig = nil
	d := twoByTwo(t, mod)
	if _, _, err := d.Flatten(); err == nil {
		t.Fatal("Flatten without original graphs accepted")
	}
}

func TestAnalyzeDetectsCycle(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	// Add a back edge D -> A creating a module-level cycle.
	out := mod.Model.Graph.OutputNames[0]
	in := mod.Model.Graph.InputNames[0]
	d.Nets = append(d.Nets, Net{From: PortRef{"D", out}, To: PortRef{"A", in}})
	// A.in[0] is also a primary input -> validation rejects double drive;
	// drop it from the primary inputs first.
	var pis []PortRef
	for _, p := range d.PrimaryInputs {
		if !(p.Instance == "A" && p.Port == in) {
			pis = append(pis, p)
		}
	}
	d.PrimaryInputs = pis
	if _, err := d.Analyze(FullCorrelation); err == nil {
		t.Fatal("cyclic design accepted")
	}
}

func TestModeString(t *testing.T) {
	if FullCorrelation.String() == "" || GlobalOnly.String() == "" || Mode(9).String() == "" {
		t.Fatal("Mode.String empty")
	}
}

func TestNewModuleValidation(t *testing.T) {
	if _, err := NewModule("x", nil, &place.Plan{}); err == nil {
		t.Fatal("nil model accepted")
	}
	mod := buildModule(t, "ok", 4)
	wrong := &place.Plan{NX: mod.NX + 1, NY: mod.NY, Pitch: mod.Pitch}
	if _, err := NewModule("x", mod.Model, wrong); err == nil {
		t.Fatal("grid mismatch accepted")
	}
}

func TestNetWithWireDelay(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	for i := range d.Nets {
		d.Nets[i].Delay = 25 // ps of wire delay on every inter-module net
	}
	slow, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Nets {
		d.Nets[i].Delay = 0
	}
	fast, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Delay.Mean() <= fast.Delay.Mean() {
		t.Fatalf("wire delay did not slow the design: %g vs %g", slow.Delay.Mean(), fast.Delay.Mean())
	}
}

func TestAnalyzeElapsedAndSpaces(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	res, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	nP := len(d.Params)
	if res.Space.Globals != nP {
		t.Fatalf("globals = %d, want %d", res.Space.Globals, nP)
	}
	if res.Space.Components != nP*res.Partition.Grids.Comps {
		t.Fatalf("components = %d, want %d", res.Space.Components, nP*res.Partition.Grids.Comps)
	}
	_ = fmt.Sprintf("%v", res.Mode)
}
