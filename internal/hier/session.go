package hier

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/mat"
	"repro/internal/timing"
)

// Session is a live, mutable hierarchical design: the stitched top-level
// graph plus everything needed to restitch it incrementally. Where Analyze
// rebuilds the world on every call, a session splits the prep path into
// per-instance units — the design-level partition/PCA, one replacement
// matrix per instance, and one cache of rewritten (design-space) edges per
// instance — so swapping or re-characterizing a single instance re-derives
// only that instance's units and recommits the rest from cache. Model
// re-extraction for the incoming module is the caller's job (through the
// shared ExtractCache), which is what keeps an ECO's cost proportional to
// the changed module, not the design.
//
// The session owns its Design (callers hand over a private copy, e.g. from
// CopyStructure) and its top graph. It is not safe for concurrent use; the
// ssta session layer serializes access.
type Session struct {
	d    *Design
	mode Mode
	opt  AnalyzeOptions

	pp       *prep
	prepared [][]preppedEdge // unscaled design-space edges per instance
	top      *timing.Graph
	netEdges []int // top edge index per design net
	stale    bool  // an interrupted restitch left top unusable
}

// NewSession builds the per-instance prep and stitches the initial top
// graph. The design is owned by the session afterwards.
func NewSession(ctx context.Context, d *Design, mode Mode, opt AnalyzeOptions) (*Session, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	s := &Session{d: d, mode: mode, opt: opt}
	if err := s.rebuild(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// Graph returns the live stitched top-level graph. Edge-level edits through
// the timing edit API apply directly to it; the session replaces the graph
// object on restitch (after SwapModule), so callers must re-fetch it then.
func (s *Session) Graph() (*timing.Graph, error) {
	if s.stale {
		return nil, errors.New("hier: session top graph is stale after an interrupted restitch")
	}
	return s.top, nil
}

// Design returns the session-owned design.
func (s *Session) Design() *Design { return s.d }

// Stale reports whether an interrupted restitch left the top graph
// unusable; Restitch recovers.
func (s *Session) Stale() bool { return s.stale }

// Restitch recommits the top graph from the per-instance caches — the
// recovery path after an interrupted SwapModule.
func (s *Session) Restitch(ctx context.Context) error { return s.stitch(ctx) }

// Mode returns the correlation mode the session was built with.
func (s *Session) Mode() Mode { return s.mode }

// NetEdge returns the top-graph edge index carrying design net i.
func (s *Session) NetEdge(i int) (int, error) {
	if i < 0 || i >= len(s.netEdges) {
		return 0, fmt.Errorf("hier: net index %d out of range (%d nets)", i, len(s.netEdges))
	}
	return s.netEdges[i], nil
}

// SetNetDelay changes the constant wire delay of design net i, updating
// both the design description (so later restitches keep it) and the live
// top-graph edge (so the incremental propagation sees it as a dirty seed).
func (s *Session) SetNetDelay(i int, ps float64) error {
	if s.stale {
		return errors.New("hier: session is stale after an interrupted restitch")
	}
	if i < 0 || i >= len(s.d.Nets) {
		return fmt.Errorf("hier: net index %d out of range (%d nets)", i, len(s.d.Nets))
	}
	if ps < 0 {
		return fmt.Errorf("hier: negative net delay %g", ps)
	}
	s.d.Nets[i].Delay = ps
	return s.top.SetEdgeDelay(s.netEdges[i], s.pp.space.Const(ps))
}

// SwapModule replaces the module of one instance — the paper's ECO case.
// For a same-footprint swap (identical NX/NY/pitch, the abutted-IP
// scenario) the design-level partition and PCA survive untouched, only the
// swapped instance's replacement matrix and rewritten-edge cache are
// recomputed, and the top graph is recommitted from the per-instance
// caches. A footprint change falls back to a full re-prep inside the
// session.
//
// The swap is transactional: on any error — validation, cancellation
// mid-rewrite, an interrupted restitch — every piece of session state
// (design, prep, caches) is restored and the previous top graph keeps
// serving; a swap either fully applies or fully does not. On success the
// top graph is a new object; callers holding incremental propagation state
// must rebase onto Graph().
func (s *Session) SwapModule(ctx context.Context, name string, m *Module) error {
	if s.stale {
		return errors.New("hier: session is stale after an interrupted restitch; Restitch first")
	}
	inst, i, err := s.d.instance(name)
	if err != nil {
		return err
	}
	if m == nil || m.Model == nil || m.Model.Graph == nil {
		return errors.New("hier: nil replacement module")
	}
	old := inst.Module
	inst.Module = m
	if err := s.d.Validate(); err != nil {
		inst.Module = old
		return err
	}

	fullReprep := m.NX != old.NX || m.NY != old.NY || m.Pitch != old.Pitch
	nInst := len(s.d.Instances)
	newPP := s.pp
	if !fullReprep && s.mode == GlobalOnly {
		nP := len(s.d.Params)
		start := make([]int, nInst+1)
		for j, in := range s.d.Instances {
			start[j+1] = start[j] + nP*in.Module.gridModel().Comps
		}
		if start[nInst] != s.pp.instLocStart[nInst] {
			// Component count changed: the private-block space itself is
			// different, every instance's block offsets move.
			fullReprep = true
		} else {
			cp := *s.pp
			cp.instLocStart = start
			newPP = &cp
		}
	}

	// Fallible phase: derive the new prep and rewritten-edge caches into
	// locals; session state is untouched until everything succeeded.
	var newPrepared [][]preppedEdge
	switch {
	case fullReprep:
		// Footprint or space change: the heterogeneous partition itself
		// moves, every instance re-derives.
		newPP, newPrepared, err = s.deriveAll(ctx)
	default:
		if s.mode == FullCorrelation && m.gridModel() != old.gridModel() {
			cp := *s.pp
			cp.repl = append([]*mat.Dense(nil), s.pp.repl...)
			cp.repl[i], err = replacementMatrix(m.gridModel(), s.pp.part, i)
			if err != nil {
				err = fmt.Errorf("hier: instance %q: %w", name, err)
				break
			}
			newPP = &cp
		}
		var pi []preppedEdge
		if pi, err = s.prepareInstance(ctx, i, newPP); err == nil {
			newPrepared = append([][]preppedEdge(nil), s.prepared...)
			newPrepared[i] = pi
		}
	}
	if err != nil {
		inst.Module = old
		return err
	}

	// Commit, then restitch; an interrupted stitch rolls everything back
	// (stitch replaces the top graph only at its very end, so the previous
	// top is still intact and consistent with the restored state).
	oldPP, oldPrepared := s.pp, s.prepared
	s.pp, s.prepared = newPP, newPrepared
	if err := s.stitch(ctx); err != nil {
		inst.Module = old
		s.pp, s.prepared = oldPP, oldPrepared
		s.stale = false
		return err
	}
	return nil
}

// rebuild recomputes the whole per-instance prep and restitches — the
// initial build path. State is committed only after every fallible step
// succeeded; an interrupted stitch leaves the session stale (NewSession
// then fails construction outright).
func (s *Session) rebuild(ctx context.Context) error {
	pp, prepared, err := s.deriveAll(ctx)
	if err != nil {
		return err
	}
	s.pp, s.prepared = pp, prepared
	return s.stitch(ctx)
}

// deriveAll computes the full prep and every instance's rewritten-edge
// cache into fresh values, leaving session state untouched.
func (s *Session) deriveAll(ctx context.Context) (*prep, [][]preppedEdge, error) {
	pp, err := s.d.computePrep(ctx, s.mode, s.opt.Workers)
	if err != nil {
		return nil, nil, err
	}
	prepared := make([][]preppedEdge, len(s.d.Instances))
	for i := range s.d.Instances {
		if prepared[i], err = s.prepareInstance(ctx, i, pp); err != nil {
			return nil, nil, err
		}
	}
	return pp, prepared, nil
}

// prepareInstance rewrites one instance's model edges into the design
// space (unscaled — boundary conditions are applied at commit time) under
// the given prep, on the session's worker pool.
func (s *Session) prepareInstance(ctx context.Context, i int, pp *prep) ([]preppedEdge, error) {
	inst := s.d.Instances[i]
	ig := inst.Module.Model.Graph
	mgmComps := inst.Module.gridModel().Comps
	nP := len(s.d.Params)
	out := make([]preppedEdge, len(ig.Edges))
	nChunks := (len(ig.Edges) + rewriteChunkSize - 1) / rewriteChunkSize
	err := timing.ParallelForCtx(ctx, nChunks, s.opt.Workers, func(_ context.Context, c int) error {
		lo := c * rewriteChunkSize
		hi := lo + rewriteChunkSize
		if hi > len(ig.Edges) {
			hi = len(ig.Edges)
		}
		for k := lo; k < hi; k++ {
			pe, err := rewriteEdgeRaw(&ig.Edges[k], i, pp, nP, mgmComps, false)
			if err != nil {
				return err
			}
			out[k] = pe
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// stitch commits the per-instance caches into a fresh top-level graph,
// mirroring buildTop's structure (and therefore its numerical results) with
// the expensive rewriting replaced by cache reads plus cheap boundary
// scaling.
func (s *Session) stitch(ctx context.Context) error {
	s.stale = true
	d := s.d
	instIdx := make(map[string]int, len(d.Instances))
	for i, inst := range d.Instances {
		instIdx[inst.Name] = i
	}
	ports := d.portIndexes(false)

	base := make([]int, len(d.Instances))
	total := 0
	for i, inst := range d.Instances {
		base[i] = total
		total += inst.Module.Model.Graph.NumVerts
	}
	top := timing.NewGraph(s.pp.space, total, d.Params)
	if s.pp.part != nil {
		top.Grids = s.pp.part.Grids
	}

	extraTo, extraFrom, err := d.boundaryExtras(ctx, false, instIdx, ports, s.opt.Workers)
	if err != nil {
		return err
	}
	for i, inst := range d.Instances {
		ig := inst.Module.Model.Graph
		for k := range s.prepared[i] {
			pe := s.prepared[i][k]
			if scale := boundaryScale(&ig.Edges[k], extraTo[i], extraFrom[i]); scale != 1 {
				pe = scaleEdge(pe, scale)
			}
			if _, err := top.AddEdge(base[i]+pe.from, base[i]+pe.to, pe.f, pe.lsens, pe.grid); err != nil {
				return err
			}
		}
	}

	lookup := func(p PortRef, wantInput bool) (int, error) {
		idx, ok := instIdx[p.Instance]
		if !ok {
			return 0, fmt.Errorf("hier: unknown instance %q", p.Instance)
		}
		ig := d.Instances[idx].Module.Model.Graph
		pm := ports[ig]
		if wantInput {
			if k, ok := pm.in[p.Port]; ok {
				return base[idx] + ig.Inputs[k], nil
			}
		} else if k, ok := pm.out[p.Port]; ok {
			return base[idx] + ig.Outputs[k], nil
		}
		return 0, fmt.Errorf("hier: port %v not found", p)
	}
	netEdges := make([]int, len(d.Nets))
	for j, n := range d.Nets {
		from, err := lookup(n.From, false)
		if err != nil {
			return err
		}
		to, err := lookup(n.To, true)
		if err != nil {
			return err
		}
		ei, err := top.AddEdge(from, to, s.pp.space.Const(n.Delay), nil, 0)
		if err != nil {
			return err
		}
		netEdges[j] = ei
	}

	ins := make([]int, len(d.PrimaryInputs))
	inNames := make([]string, len(d.PrimaryInputs))
	for k, p := range d.PrimaryInputs {
		v, err := lookup(p, true)
		if err != nil {
			return err
		}
		ins[k] = v
		inNames[k] = p.Instance + "." + p.Port
	}
	outs := make([]int, len(d.PrimaryOutputs))
	outNames := make([]string, len(d.PrimaryOutputs))
	for k, p := range d.PrimaryOutputs {
		v, err := lookup(p, false)
		if err != nil {
			return err
		}
		outs[k] = v
		outNames[k] = p.Instance + "." + p.Port
	}
	if err := top.SetIO(ins, outs, inNames, outNames); err != nil {
		return err
	}
	if _, err := top.Order(); err != nil {
		return fmt.Errorf("hier: stitched design: %w", err)
	}
	s.top, s.netEdges = top, netEdges
	s.stale = false
	return nil
}
