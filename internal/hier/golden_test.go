package hier

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/timing"
	"repro/internal/variation"
)

// genModule builds a timing model from a generated pseudo-random circuit,
// keeping the original graph for ground-truth flattening.
func genModule(t *testing.T, spec circuit.TopoSpec, seed int64) *Module {
	t.Helper()
	c, err := circuit.Generate(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, _ := variation.DefaultCorrelation()
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := timing.Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Extract(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModule(spec.Name, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	mod.Orig = g
	return mod
}

// TestGoldenHierMatchesFlatten is the table-driven golden equivalence
// suite: on generated circuits of several sizes and seeds, the
// hierarchical analysis (serial, parallel and cached) must match the
// Flatten-based flat analysis within tolerance, and the engine variants
// must match each other to 1e-9.
func TestGoldenHierMatchesFlatten(t *testing.T) {
	specs := []circuit.TopoSpec{
		{Name: "g60", PIs: 8, POs: 4, Gates: 60, Edges: 130, Depth: 8},
		{Name: "g140", PIs: 12, POs: 6, Gates: 140, Edges: 300, Depth: 12},
		{Name: "g240", PIs: 16, POs: 8, Gates: 240, Edges: 500, Depth: 16},
	}
	seeds := []int64{1, 7}
	const (
		meanTol = 0.03 // model extraction approximates; paper-level accuracy
		stdTol  = 0.15
	)
	for _, spec := range specs {
		for _, seed := range seeds {
			spec, seed := spec, seed
			t.Run(fmt.Sprintf("%s/seed%d", spec.Name, seed), func(t *testing.T) {
				mod := genModule(t, spec, seed)
				d := twoByTwo(t, mod)

				flat, _, err := d.Flatten()
				if err != nil {
					t.Fatal(err)
				}
				want, err := flat.MaxDelay()
				if err != nil {
					t.Fatal(err)
				}

				serial, err := d.AnalyzeOpt(FullCorrelation, AnalyzeOptions{Workers: 1, DisableCache: true})
				if err != nil {
					t.Fatal(err)
				}
				parallel, err := d.AnalyzeOpt(FullCorrelation, AnalyzeOptions{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				cached, err := d.AnalyzeOpt(FullCorrelation, AnalyzeOptions{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}

				// Engine variants agree exactly.
				assertResultsIdentical(t, "parallel vs serial", serial, parallel)
				assertResultsIdentical(t, "cached vs serial", serial, cached)

				// Hierarchical vs flat ground truth within model tolerance.
				if rel := math.Abs(serial.Delay.Mean()-want.Mean()) / want.Mean(); rel > meanTol {
					t.Errorf("mean: hier %g vs flat %g (rel %.4f > %.2f)",
						serial.Delay.Mean(), want.Mean(), rel, meanTol)
				}
				if rel := math.Abs(serial.Delay.Std()-want.Std()) / want.Std(); rel > stdTol {
					t.Errorf("std: hier %g vs flat %g (rel %.4f > %.2f)",
						serial.Delay.Std(), want.Std(), rel, stdTol)
				}
			})
		}
	}
}
