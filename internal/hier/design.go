// Package hier implements the paper's second contribution (Section V):
// hierarchical statistical timing analysis at design level using
// pre-characterized gray-box timing models.
//
// The die of the top design is partitioned into heterogeneous grids: the
// areas covered by module instances keep exactly the grids used during
// their model generation (offset by the instance origin), and the remaining
// area is partitioned with the default grid pitch (paper Fig. 4). The
// design-level correlated grid variables are decomposed with PCA, and every
// module model's independent random variables are replaced per eq. 19
//
//	x = A^+ B_n x_t
//
// so all instances share one independent set x_t, which restores the
// correlation between modules contributed by spatially correlated local
// variation. Arrival times are then propagated over the stitched top-level
// graph (paper Fig. 5).
package hier

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/timing"
	"repro/internal/variation"
)

// Module is a pre-characterized timing model as shipped by an IP vendor:
// the reduced gray-box graph plus the grid geometry of its model
// generation. Orig optionally carries the original (unreduced) timing graph
// to enable ground-truth flattening; a real vendor would omit it.
type Module struct {
	Name   string
	Model  *core.Model
	Orig   *timing.Graph // optional
	NX, NY int
	Pitch  float64
}

// NewModule bundles an extracted model with its placement geometry.
func NewModule(name string, model *core.Model, plan *place.Plan) (*Module, error) {
	if model == nil || model.Graph == nil {
		return nil, errors.New("hier: nil model")
	}
	if model.Graph.Grids == nil {
		return nil, errors.New("hier: model graph carries no grid model")
	}
	if got, want := model.Graph.Grids.N(), plan.NX*plan.NY; got != want {
		return nil, fmt.Errorf("hier: grid model has %d grids, placement plan %d", got, want)
	}
	return &Module{Name: name, Model: model, NX: plan.NX, NY: plan.NY, Pitch: plan.Pitch}, nil
}

// Width returns the module die width.
func (m *Module) Width() float64 { return float64(m.NX) * m.Pitch }

// Height returns the module die height.
func (m *Module) Height() float64 { return float64(m.NY) * m.Pitch }

// Instance is a placed occurrence of a module.
type Instance struct {
	Name    string
	Module  *Module
	OriginX float64
	OriginY float64
}

// PortRef names a port of an instance (by the port names of the module's
// timing model).
type PortRef struct {
	Instance string
	Port     string
}

// Net is a point-to-point connection from an instance output port to an
// instance input port, with an optional constant wire delay (zero for
// abutted modules, as in the paper's experiment).
type Net struct {
	From  PortRef
	To    PortRef
	Delay float64
}

// Design is a hierarchical top-level design.
type Design struct {
	Name   string
	Width  float64
	Height float64
	Pitch  float64 // default grid pitch for the uncovered area
	Corr   *variation.CorrelationModel
	Params []variation.Parameter

	Instances []*Instance
	Nets      []Net
	// PrimaryInputs and PrimaryOutputs expose instance ports at the top.
	PrimaryInputs  []PortRef
	PrimaryOutputs []PortRef

	// Cached per-mode analysis prep (partition, PCA, replacement matrices),
	// keyed by mode and guarded by a design fingerprint so geometry edits
	// invalidate it. See cache.go.
	prepMu sync.Mutex
	preps  map[Mode]*prepSlot
}

// CopyStructure returns an independent structural copy of the design for
// session-style mutation: the instance and net lists are deep copied (so a
// module swap or net-delay edit cannot leak into the original), while the
// immutable heavyweights — modules, correlation model, parameters — are
// shared. The copy starts with an empty prep cache.
func (d *Design) CopyStructure() *Design {
	nd := &Design{
		Name: d.Name, Width: d.Width, Height: d.Height, Pitch: d.Pitch,
		Corr: d.Corr, Params: d.Params,
		Instances:      make([]*Instance, len(d.Instances)),
		Nets:           append([]Net(nil), d.Nets...),
		PrimaryInputs:  append([]PortRef(nil), d.PrimaryInputs...),
		PrimaryOutputs: append([]PortRef(nil), d.PrimaryOutputs...),
	}
	for i, inst := range d.Instances {
		cp := *inst
		nd.Instances[i] = &cp
	}
	return nd
}

// instance returns the instance with the given name.
func (d *Design) instance(name string) (*Instance, int, error) {
	for i, inst := range d.Instances {
		if inst.Name == name {
			return inst, i, nil
		}
	}
	return nil, 0, fmt.Errorf("hier: unknown instance %q", name)
}

// Validate checks geometric and connectivity consistency.
func (d *Design) Validate() error {
	if d.Width <= 0 || d.Height <= 0 || d.Pitch <= 0 {
		return fmt.Errorf("hier: invalid die %gx%g pitch %g", d.Width, d.Height, d.Pitch)
	}
	if d.Corr == nil {
		return errors.New("hier: nil correlation model")
	}
	if len(d.Params) == 0 {
		return errors.New("hier: no variation parameters")
	}
	if len(d.Instances) == 0 {
		return errors.New("hier: no instances")
	}
	seen := make(map[string]bool)
	for _, inst := range d.Instances {
		if inst.Name == "" || seen[inst.Name] {
			return fmt.Errorf("hier: duplicate or empty instance name %q", inst.Name)
		}
		seen[inst.Name] = true
		if inst.Module == nil {
			return fmt.Errorf("hier: instance %q has no module", inst.Name)
		}
		if inst.Module.Pitch != d.Pitch {
			return fmt.Errorf("hier: instance %q pitch %g differs from design pitch %g (module grids must be preserved)",
				inst.Name, inst.Module.Pitch, d.Pitch)
		}
		if inst.OriginX < 0 || inst.OriginY < 0 ||
			inst.OriginX+inst.Module.Width() > d.Width+1e-9 ||
			inst.OriginY+inst.Module.Height() > d.Height+1e-9 {
			return fmt.Errorf("hier: instance %q extends outside the die", inst.Name)
		}
	}
	// Pairwise overlap check.
	for i := 0; i < len(d.Instances); i++ {
		for j := i + 1; j < len(d.Instances); j++ {
			a, b := d.Instances[i], d.Instances[j]
			if a.OriginX < b.OriginX+b.Module.Width()-1e-9 &&
				b.OriginX < a.OriginX+a.Module.Width()-1e-9 &&
				a.OriginY < b.OriginY+b.Module.Height()-1e-9 &&
				b.OriginY < a.OriginY+a.Module.Height()-1e-9 {
				return fmt.Errorf("hier: instances %q and %q overlap", a.Name, b.Name)
			}
		}
	}
	// Port references and single-driver rule.
	driven := make(map[PortRef]bool)
	for _, n := range d.Nets {
		if err := d.checkPort(n.From, false); err != nil {
			return err
		}
		if err := d.checkPort(n.To, true); err != nil {
			return err
		}
		if n.Delay < 0 {
			return fmt.Errorf("hier: net %v has negative delay", n)
		}
		if driven[n.To] {
			return fmt.Errorf("hier: input port %v driven by multiple nets", n.To)
		}
		driven[n.To] = true
	}
	for _, p := range d.PrimaryInputs {
		if err := d.checkPort(p, true); err != nil {
			return err
		}
		if driven[p] {
			return fmt.Errorf("hier: primary input %v also driven by a net", p)
		}
	}
	if len(d.PrimaryInputs) == 0 || len(d.PrimaryOutputs) == 0 {
		return errors.New("hier: design has no primary inputs or outputs")
	}
	for _, p := range d.PrimaryOutputs {
		if err := d.checkPort(p, false); err != nil {
			return err
		}
	}
	return nil
}

// checkPort verifies that the referenced port exists; wantInput selects the
// port direction.
func (d *Design) checkPort(p PortRef, wantInput bool) error {
	inst, _, err := d.instance(p.Instance)
	if err != nil {
		return err
	}
	names := inst.Module.Model.Graph.OutputNames
	if wantInput {
		names = inst.Module.Model.Graph.InputNames
	}
	for _, n := range names {
		if n == p.Port {
			return nil
		}
	}
	dir := "output"
	if wantInput {
		dir = "input"
	}
	return fmt.Errorf("hier: instance %q has no %s port %q", p.Instance, dir, p.Port)
}
